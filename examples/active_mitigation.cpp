// Scenario: a self-spawning evasive sample turns into a fork bomb under
// Scarecrow (paper Section VI-C). The default engine only records the loop
// and raises alarms; with active mitigation enabled it terminates the
// spawner past a threshold.
//
// Build & run:  cmake --build build && ./build/examples/active_mitigation
#include <cstdio>

#include "core/eval.h"
#include "env/environments.h"
#include "malware/sample.h"
#include "trace/analysis.h"

using namespace scarecrow;

int main() {
  auto machine = env::buildEndUserMachine();
  malware::ProgramRegistry registry;

  malware::SampleSpec spawner;
  spawner.id = "forkbomb01";
  spawner.family = "demo";
  spawner.techniques = {malware::Technique::kIsDebuggerPresent};
  spawner.reaction = malware::Reaction::kSelfSpawnAndExit;
  spawner.pacingMs = 300;
  registry.addSample(std::move(spawner));

  core::EvaluationHarness harness(*machine);

  // Record-only (the paper's deployed behaviour).
  const core::EvalOutcome recordOnly =
      harness.evaluate({.sampleId = "forkbomb-record",
                        .imagePath = "C:\\dl\\forkbomb01.exe",
                        .factory = registry.factory()});
  std::printf("record-only:    %zu self-spawns in one minute (%u alerts "
              "raised, no interruption)\n",
              recordOnly.verdict.selfSpawnsWithScarecrow,
              recordOnly.selfSpawnAlerts);

  // Active mitigation: kill the loop after 25 respawns.
  core::Config mitigating;
  mitigating.mitigateSelfSpawn = true;
  mitigating.selfSpawnKillThreshold = 25;
  const core::EvalOutcome mitigated =
      harness.evaluate({.sampleId = "forkbomb-mitigated",
                        .imagePath = "C:\\dl\\forkbomb01.exe",
                        .factory = registry.factory(),
                        .config = mitigating});
  std::printf("with mitigation: %zu self-spawns, loop terminated at the "
              "threshold\n",
              mitigated.verdict.selfSpawnsWithScarecrow);

  const bool ok = recordOnly.verdict.selfSpawnsWithScarecrow > 100 &&
                  mitigated.verdict.selfSpawnsWithScarecrow <= 27 &&
                  recordOnly.verdict.deactivated &&
                  mitigated.verdict.deactivated;
  std::printf("both configurations deactivate the sample: %s\n",
              ok ? "yes" : "NO (bug)");
  return ok ? 0 : 1;
}
