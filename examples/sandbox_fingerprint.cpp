// Scenario: run the Pafish fingerprinting tool on three environments, with
// and without Scarecrow, and watch them become indistinguishable (paper
// Table II / Section IV-C2).
//
// Build & run:  cmake --build build && ./build/examples/sandbox_fingerprint
#include <cstdio>

#include "env/environments.h"
#include "fingerprint/harness.h"

using namespace scarecrow;

namespace {

void report(const char* label, winsys::Machine& machine,
            bool injectCuckoo) {
  fingerprint::FingerprintRunOptions off;
  off.injectCuckooMonitor = injectCuckoo;
  fingerprint::FingerprintRunOptions on = off;
  on.withScarecrow = true;

  const fingerprint::PafishReport plain =
      fingerprint::runPafishOn(machine, off);
  const fingerprint::PafishReport deceived =
      fingerprint::runPafishOn(machine, on);

  std::printf("%-24s triggered %2zu / 56 checks;  with Scarecrow: %2zu\n",
              label, plain.totalTriggered(), deceived.totalTriggered());
  std::printf("  newly triggered with Scarecrow:");
  int shown = 0;
  for (const auto& check : deceived.checks) {
    if (check.triggered && !plain.triggered(check.name) && shown++ < 6)
      std::printf(" %s", check.name.c_str());
  }
  if (shown > 6) std::printf(" (+%d more)", shown - 6);
  std::printf("\n");
}

}  // namespace

int main() {
  auto bareMetal = env::buildBareMetalSandbox();
  auto vmSandbox = env::buildVBoxCuckooSandbox({.hardened = false});
  auto endUser = env::buildEndUserMachine();

  report("bare-metal sandbox", *bareMetal, false);
  report("VirtualBox + Cuckoo", *vmSandbox, true);
  report("end-user machine", *endUser, false);

  std::printf(
      "\nWith Scarecrow enabled, all three environments present the same "
      "analysis-environment surface to evasive logic.\n");
  return 0;
}
