// Scenario: the paper's Figure 3 evaluation pipeline at corpus scale — a
// BatchEvaluator with four private machines drains the Joe Security sample
// set through a shared request queue, the analyst gets per-sample verdicts
// in submission order, one merged telemetry dump for the whole batch, and a
// Markdown incident report for one sample. Before any sample runs, the
// static coverage analyzer proves what the deployment can deceive.
//
// Build & run:  cmake --build build && ./build/examples/analysis_cluster
#include <cstdio>

#include "analysis/coverage.h"
#include "analysis/lint.h"
#include "core/batch.h"
#include "core/report.h"
#include "obs/export.h"
#include "env/environments.h"
#include "malware/joe.h"

using namespace scarecrow;

int main() {
  malware::ProgramRegistry registry;
  const auto expected = malware::registerJoeSamples(registry);

  // Static pre-flight: prove the deployed database's coverage without
  // running a single sample, and lint it for dead or contradictory rules.
  const core::ResourceDb db = core::buildDefaultResourceDb();
  const analysis::CoverageReport coverage = analysis::analyzeCoverage(db);
  const analysis::LintReport lint = analysis::lintResourceDb(db);
  std::printf("static coverage: %s (lint: %zu findings over %zu entries)\n\n",
              coverage.summary().c_str(), lint.findings.size(),
              lint.entriesChecked);

  std::vector<core::EvalRequest> requests;
  for (const auto& row : expected)
    requests.push_back({.sampleId = row.idPrefix,
                        .imagePath = "C:\\submissions\\" + row.idPrefix +
                                     ".exe",
                        .factory = registry.factory()});

  core::BatchOptions options;
  options.workerCount = 4;
  core::BatchEvaluator batch([] { return env::buildBareMetalSandbox(); },
                             options);
  std::printf("batch: %zu workers, %zu queued samples\n", batch.workerCount(),
              requests.size());

  const std::vector<core::BatchResult> results = batch.evaluateAll(requests);

  std::size_t deactivated = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const core::BatchResult& result = results[i];
    if (!result.ok()) {
      std::printf("%-8s %s: %s\n", requests[i].sampleId.c_str(),
                  core::batchStatusName(result.status), result.error.c_str());
      continue;
    }
    const trace::DeactivationVerdict& verdict = result.outcome.verdict;
    if (verdict.deactivated) ++deactivated;
    std::printf("%-8s %-14s worker=%zu trigger=%s\n",
                requests[i].sampleId.c_str(),
                verdict.deactivated ? "deactivated" : "NOT deactivated",
                result.workerIndex,
                verdict.firstTrigger.empty() ? "-"
                                             : verdict.firstTrigger.c_str());
  }
  std::printf("\n%zu / %zu deactivated (paper: 12 / 13)\n", deactivated,
              expected.size());

  // One aggregate dump for the whole corpus: every worker's counters
  // summed, histogram buckets combined.
  const obs::MetricsSnapshot merged = batch.mergedTelemetry();
  std::printf("\nbatch telemetry (all %zu workers merged):\n%s",
              batch.workerCount(),
              obs::Exporter(obs::ExportFormat::kJson).render(merged).c_str());

  // A full incident report for the ransomware sample, straight from the
  // batch outcome — identical to what a serial harness would have produced.
  // The static-coverage proof rides along as a report appendix.
  core::ReportOptions reportOptions;
  reportOptions.appendixSections.push_back(
      analysis::renderCoverageSection(coverage));
  for (std::size_t i = 0; i < results.size(); ++i)
    if (requests[i].sampleId == "61f847b" && results[i].ok())
      std::printf("\n%s\n",
                  core::renderIncidentReport("61f847b", results[i].outcome,
                                             reportOptions)
                      .c_str());
  return deactivated == 12 ? 0 : 1;
}
