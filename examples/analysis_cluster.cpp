// Scenario: the paper's Figure 3 evaluation pipeline at corpus scale. The
// static pre-flight proves, before any sample runs, both what the deployed
// database can deceive (coverage + lint) and the minimal covering plan over
// the whole profile universe. Then the Joe Security sample set drains
// through one of three sweeps:
//
//   --sweep=covering  (default) the covering-routed sweep: each sample is
//                     submitted ONCE to a resident core::EvalService under
//                     the covering its technique set routes to — the plan's
//                     ~O(samples) sweep, verdict-identical to the full
//                     universe sweep (tests/coverings_drift_test.cpp and
//                     bench_coverings hold that byte-equality);
//   --sweep=full      the O(samples x profiles) reference sweep: every
//                     sample under every universe profile, aggregated to
//                     "deactivated under any profile" — what the router
//                     makes redundant, kept for side-by-side comparison;
//   --sweep=batch     the pre-covering pipeline: a BatchEvaluator with four
//                     private machines under the default deployment, plus
//                     the merged telemetry dump and the Markdown incident
//                     report for one sample.
//
// Chaos sweep (DESIGN.md §11): pass --fault-plan to replay the same corpus
// with a deterministic fault schedule armed — injection failures, lost
// hooks, dropped IPC. The router preserves the request's fault plan when it
// stamps a covering, so chaos composes with any sweep mode.
//
// Build & run:  cmake --build build && ./build/examples/analysis_cluster
//   reference:  ./build/examples/analysis_cluster --sweep=full
//   chaos:      ./build/examples/analysis_cluster
//                 --fault-plan='inject-dll:p=0.25;ipc-send:p=0.2'
//                 --fault-seed=42
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "analysis/coverage.h"
#include "analysis/coverings.h"
#include "analysis/lint.h"
#include "core/batch.h"
#include "core/report.h"
#include "core/service.h"
#include "obs/export.h"
#include "env/environments.h"
#include "malware/joe.h"

using namespace scarecrow;

namespace {

std::vector<core::EvalRequest> buildRequests(
    const std::vector<malware::JoeExpectation>& expected,
    const malware::ProgramRegistry& registry, const faults::FaultPlan& plan) {
  std::vector<core::EvalRequest> requests;
  for (const auto& row : expected) {
    core::EvalRequest request;
    request.sampleId = row.idPrefix;
    request.imagePath = "C:\\submissions\\" + row.idPrefix + ".exe";
    request.factory = registry.factory();
    request.config.faultPlan = plan;
    requests.push_back(std::move(request));
  }
  return requests;
}

core::EvalService makeService() {
  core::ServiceOptions options;
  options.shardCount = 2;
  options.workersPerShard = 2;
  return core::EvalService([] { return env::buildBareMetalSandbox(); },
                           options);
}

/// The covering-routed sweep: |samples| submissions, verdicts identical to
/// the full universe sweep. Returns the deactivated count.
std::size_t runCoveringMode(const std::vector<core::EvalRequest>& requests,
                            const malware::ProgramRegistry& registry,
                            const analysis::CoveringRouter& router) {
  core::EvalService service = makeService();
  const std::vector<analysis::RoutedOutcome> routed =
      analysis::runCoveringSweep(
          service, router, requests,
          [&registry](const core::EvalRequest& request) {
            return registry.findSpec(request.sampleId + ".exe");
          });

  std::size_t deactivated = 0, runs = 0;
  for (std::size_t i = 0; i < routed.size(); ++i) {
    const analysis::RoutedOutcome& outcome = routed[i];
    runs += outcome.runs.size();
    if (outcome.deactivated()) ++deactivated;
    for (const analysis::RoutedRun& run : outcome.runs) {
      if (run.status != core::BatchStatus::kOk) {
        std::printf("%-8s FAILED under %s: %s\n", requests[i].sampleId.c_str(),
                    run.profile.c_str(), run.error.c_str());
        continue;
      }
      const trace::DeactivationVerdict& verdict = run.outcome.verdict;
      std::printf("%-8s %-14s covering=%-26s trigger=%s%s\n",
                  requests[i].sampleId.c_str(),
                  verdict.deactivated ? "deactivated" : "NOT deactivated",
                  run.profile.c_str(),
                  verdict.firstTrigger.empty() ? "-"
                                               : verdict.firstTrigger.c_str(),
                  outcome.broadcast ? " (broadcast)" : "");
    }
  }
  std::printf("\ncovering-routed sweep: %zu evaluations for %zu samples "
              "(full sweep: %zu)\n",
              runs, requests.size(),
              requests.size() * router.universe().size());
  return deactivated;
}

/// The O(samples x profiles) reference sweep the router makes redundant.
std::size_t runFullMode(const std::vector<core::EvalRequest>& requests,
                        const std::vector<analysis::CoveringProfile>& universe) {
  core::EvalService service = makeService();
  std::vector<std::pair<std::size_t, core::Ticket>> tickets;
  for (const analysis::CoveringProfile& profile : universe)
    for (std::size_t i = 0; i < requests.size(); ++i)
      tickets.push_back(
          {i, service.submit(analysis::stampProfile(profile, requests[i]))});

  std::vector<bool> deactivatedAny(requests.size(), false);
  for (auto& [index, ticket] : tickets) {
    const auto result = service.wait(ticket);
    if (result.has_value() && result->ok() &&
        result->outcome.verdict.deactivated)
      deactivatedAny[index] = true;
  }
  std::size_t deactivated = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (deactivatedAny[i]) ++deactivated;
    std::printf("%-8s %s under at least one of %zu profiles\n",
                requests[i].sampleId.c_str(),
                deactivatedAny[i] ? "deactivated" : "NOT deactivated",
                universe.size());
  }
  std::printf("\nfull universe sweep: %zu evaluations for %zu samples\n",
              tickets.size(), requests.size());
  return deactivated;
}

/// The pre-covering pipeline: BatchEvaluator, merged telemetry, incident
/// report. Returns the deactivated count.
std::size_t runBatchMode(const std::vector<core::EvalRequest>& requests,
                         const analysis::CoverageReport& coverage,
                         const faults::FaultPlan& plan) {
  core::BatchOptions options;
  options.workerCount = 4;
  core::BatchEvaluator batch([] { return env::buildBareMetalSandbox(); },
                             options);
  std::printf("batch: %zu workers, %zu queued samples\n", batch.workerCount(),
              requests.size());

  const std::vector<core::BatchResult> results = batch.evaluateAll(requests);

  std::size_t deactivated = 0;
  std::size_t degraded = 0;
  std::uint64_t faultsInjected = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const core::BatchResult& result = results[i];
    if (!result.ok()) {
      std::printf("%-8s %s: %s\n", requests[i].sampleId.c_str(),
                  core::batchStatusName(result.status), result.error.c_str());
      continue;
    }
    const trace::DeactivationVerdict& verdict = result.outcome.verdict;
    const core::ResilienceVerdict& resilience = result.outcome.resilience;
    if (verdict.deactivated) ++deactivated;
    if (resilience.degraded()) ++degraded;
    faultsInjected += resilience.faultsInjected;
    std::printf("%-8s %-14s worker=%zu trigger=%s",
                requests[i].sampleId.c_str(),
                verdict.deactivated ? "deactivated" : "NOT deactivated",
                result.workerIndex,
                verdict.firstTrigger.empty() ? "-"
                                             : verdict.firstTrigger.c_str());
    if (!plan.empty())
      std::printf(" | %s faults=%u retries=%u dropped=%llu",
                  faults::protectionLevelName(resilience.protectionLevel),
                  resilience.faultsInjected, resilience.injectRetries,
                  static_cast<unsigned long long>(
                      resilience.ipcMessagesDropped));
    std::printf("\n");
  }
  if (!plan.empty())
    std::printf("\nchaos summary: %llu faults fired, %zu / %zu samples "
                "finished degraded\n",
                static_cast<unsigned long long>(faultsInjected), degraded,
                results.size());

  // One aggregate dump for the whole corpus: every worker's counters
  // summed, histogram buckets combined.
  const obs::MetricsSnapshot merged = batch.mergedTelemetry();
  std::printf("\nbatch telemetry (all %zu workers merged):\n%s",
              batch.workerCount(),
              obs::Exporter(obs::ExportFormat::kJson).render(merged).c_str());

  // A full incident report for the ransomware sample, straight from the
  // batch outcome — identical to what a serial harness would have produced.
  // The static-coverage proof rides along as a report appendix.
  core::ReportOptions reportOptions;
  reportOptions.appendixSections.push_back(
      analysis::renderCoverageSection(coverage));
  for (std::size_t i = 0; i < results.size(); ++i)
    if (requests[i].sampleId == "61f847b" && results[i].ok())
      std::printf("\n%s\n",
                  core::renderIncidentReport("61f847b", results[i].outcome,
                                             reportOptions)
                      .c_str());
  return deactivated;
}

}  // namespace

int main(int argc, char** argv) {
  std::string planSpec;
  std::uint64_t planSeed = 0;
  std::string sweep = "covering";
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--fault-plan=", 13) == 0) {
      planSpec = arg + 13;
    } else if (std::strncmp(arg, "--fault-seed=", 13) == 0) {
      planSeed = std::strtoull(arg + 13, nullptr, 10);
    } else if (std::strncmp(arg, "--sweep=", 8) == 0) {
      sweep = arg + 8;
    } else {
      sweep.clear();  // force the usage path below
    }
    if (sweep != "covering" && sweep != "full" && sweep != "batch") {
      std::fprintf(stderr,
                   "usage: %s [--sweep=covering|full|batch] "
                   "[--fault-plan=<site[:k=v,...];...>] [--fault-seed=<n>]\n",
                   argv[0]);
      return 2;
    }
  }

  faults::FaultPlan plan;
  if (!planSpec.empty()) {
    try {
      plan = faults::FaultPlan::parse(planSpec, planSeed);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad --fault-plan: %s\n", e.what());
      return 2;
    }
    std::printf("chaos sweep armed: %s\n\n", plan.describe().c_str());
  }

  malware::ProgramRegistry registry;
  const auto expected = malware::registerJoeSamples(registry);

  // Static pre-flight: prove the deployed database's coverage without
  // running a single sample, lint it for dead or contradictory rules, and
  // plan the minimal covering over the whole profile universe.
  const core::ResourceDb db = core::buildDefaultResourceDb();
  const analysis::CoverageReport coverage = analysis::analyzeCoverage(db);
  const analysis::LintReport lint = analysis::lintResourceDb(db);
  std::printf("static coverage: %s (lint: %zu findings over %zu entries)\n",
              coverage.summary().c_str(), lint.findings.size(),
              lint.entriesChecked);

  auto universe = analysis::defaultProfileUniverse();
  auto coveringPlan = analysis::planCoverings(universe);
  const analysis::LintReport coveringLint =
      analysis::lintCoveringPlan(coveringPlan);
  std::printf("covering plan:   %s (covering-dead profiles flagged: %zu)\n",
              coveringPlan.summary().c_str(), coveringLint.findings.size());
  for (const analysis::CoveringPick& pick : coveringPlan.coverings)
    std::printf("  -> %-26s fires %zu techniques (%zu newly covered)\n",
                pick.profile.c_str(), pick.fires.size(), pick.covered.size());
  std::printf("\n");

  const std::vector<core::EvalRequest> requests =
      buildRequests(expected, registry, plan);

  std::size_t deactivated = 0;
  if (sweep == "covering") {
    const analysis::CoveringRouter router(std::move(universe),
                                          std::move(coveringPlan));
    deactivated = runCoveringMode(requests, registry, router);
  } else if (sweep == "full") {
    deactivated = runFullMode(requests, universe);
  } else {
    deactivated = runBatchMode(requests, coverage, plan);
  }

  std::printf("\n%zu / %zu deactivated (paper: 12 / 13)\n", deactivated,
              expected.size());
  // Under a fault plan the Table I replication is expected to drift (that
  // is the point of the sweep); gate the exit code on it only when clean.
  if (!plan.empty()) return 0;
  return deactivated == 12 ? 0 : 1;
}
