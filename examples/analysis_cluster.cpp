// Scenario: the paper's Figure 3 evaluation pipeline, end to end — a
// multi-machine analysis cluster processes the Joe Security sample set,
// uploads traces to the proxy, and the analyst gets per-sample verdicts
// plus a Markdown incident report for one sample.
//
// Build & run:  cmake --build build && ./build/examples/analysis_cluster
#include <cstdio>

#include "core/cluster.h"
#include "core/report.h"
#include "env/environments.h"
#include "malware/joe.h"

using namespace scarecrow;

int main() {
  malware::ProgramRegistry registry;
  const auto expected = malware::registerJoeSamples(registry);

  core::Cluster cluster(4, [] { return env::buildBareMetalSandbox(); });
  for (const auto& row : expected)
    cluster.submit({row.idPrefix,
                    "C:\\submissions\\" + row.idPrefix + ".exe"});

  std::printf("cluster: %zu machines, %zu queued samples\n",
              cluster.machineCount(), cluster.pendingJobs());
  cluster.runAll(registry.factory());
  std::printf("completed %zu jobs, %zu Deep Freeze resets, %zu traces "
              "uploaded to the proxy\n\n",
              cluster.stats().jobsCompleted, cluster.stats().machineResets,
              cluster.stats().tracesUploaded);

  std::size_t deactivated = 0;
  for (const auto& row : expected) {
    const auto verdict =
        cluster.collector().judge(row.idPrefix, row.idPrefix + ".exe");
    if (!verdict.has_value()) continue;
    if (verdict->deactivated) ++deactivated;
    std::printf("%-8s %-14s trigger=%s\n", row.idPrefix.c_str(),
                verdict->deactivated ? "deactivated" : "NOT deactivated",
                verdict->firstTrigger.empty() ? "-"
                                              : verdict->firstTrigger.c_str());
  }
  std::printf("\n%zu / %zu deactivated (paper: 12 / 13)\n", deactivated,
              expected.size());

  // A full incident report for the ransomware sample.
  auto machine = env::buildBareMetalSandbox();
  core::EvaluationHarness harness(*machine);
  const core::EvalOutcome outcome = harness.evaluate(
      "61f847b", "C:\\submissions\\61f847b.exe", registry.factory());
  std::printf("\n%s\n",
              core::renderIncidentReport("61f847b", outcome).c_str());
  return deactivated == 12 ? 0 : 1;
}
