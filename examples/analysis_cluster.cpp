// Scenario: the paper's Figure 3 evaluation pipeline at corpus scale — a
// BatchEvaluator with four private machines drains the Joe Security sample
// set through a shared request queue, the analyst gets per-sample verdicts
// in submission order, one merged telemetry dump for the whole batch, and a
// Markdown incident report for one sample. Before any sample runs, the
// static coverage analyzer proves what the deployment can deceive.
//
// Chaos sweep (DESIGN.md §11): pass --fault-plan to replay the same corpus
// with a deterministic fault schedule armed — injection failures, lost
// hooks, dropped IPC — and read per-sample ResilienceVerdicts next to the
// deactivation verdicts. Same plan + same seed ⇒ same output, every run.
//
// Build & run:  cmake --build build && ./build/examples/analysis_cluster
//   chaos:      ./build/examples/analysis_cluster \
//                 --fault-plan='inject-dll:p=0.25;ipc-send:p=0.2' \
//                 --fault-seed=42
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/coverage.h"
#include "analysis/lint.h"
#include "core/batch.h"
#include "core/report.h"
#include "obs/export.h"
#include "env/environments.h"
#include "malware/joe.h"

using namespace scarecrow;

int main(int argc, char** argv) {
  std::string planSpec;
  std::uint64_t planSeed = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--fault-plan=", 13) == 0) {
      planSpec = arg + 13;
    } else if (std::strncmp(arg, "--fault-seed=", 13) == 0) {
      planSeed = std::strtoull(arg + 13, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--fault-plan=<site[:k=v,...];...>] "
                   "[--fault-seed=<n>]\n",
                   argv[0]);
      return 2;
    }
  }

  faults::FaultPlan plan;
  if (!planSpec.empty()) {
    try {
      plan = faults::FaultPlan::parse(planSpec, planSeed);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad --fault-plan: %s\n", e.what());
      return 2;
    }
    std::printf("chaos sweep armed: %s\n\n", plan.describe().c_str());
  }

  malware::ProgramRegistry registry;
  const auto expected = malware::registerJoeSamples(registry);

  // Static pre-flight: prove the deployed database's coverage without
  // running a single sample, and lint it for dead or contradictory rules.
  const core::ResourceDb db = core::buildDefaultResourceDb();
  const analysis::CoverageReport coverage = analysis::analyzeCoverage(db);
  const analysis::LintReport lint = analysis::lintResourceDb(db);
  std::printf("static coverage: %s (lint: %zu findings over %zu entries)\n\n",
              coverage.summary().c_str(), lint.findings.size(),
              lint.entriesChecked);

  std::vector<core::EvalRequest> requests;
  for (const auto& row : expected) {
    core::EvalRequest request{.sampleId = row.idPrefix,
                              .imagePath = "C:\\submissions\\" +
                                           row.idPrefix + ".exe",
                              .factory = registry.factory()};
    request.config.faultPlan = plan;
    requests.push_back(std::move(request));
  }

  core::BatchOptions options;
  options.workerCount = 4;
  core::BatchEvaluator batch([] { return env::buildBareMetalSandbox(); },
                             options);
  std::printf("batch: %zu workers, %zu queued samples\n", batch.workerCount(),
              requests.size());

  const std::vector<core::BatchResult> results = batch.evaluateAll(requests);

  std::size_t deactivated = 0;
  std::size_t degraded = 0;
  std::uint64_t faultsInjected = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const core::BatchResult& result = results[i];
    if (!result.ok()) {
      std::printf("%-8s %s: %s\n", requests[i].sampleId.c_str(),
                  core::batchStatusName(result.status), result.error.c_str());
      continue;
    }
    const trace::DeactivationVerdict& verdict = result.outcome.verdict;
    const core::ResilienceVerdict& resilience = result.outcome.resilience;
    if (verdict.deactivated) ++deactivated;
    if (resilience.degraded()) ++degraded;
    faultsInjected += resilience.faultsInjected;
    std::printf("%-8s %-14s worker=%zu trigger=%s",
                requests[i].sampleId.c_str(),
                verdict.deactivated ? "deactivated" : "NOT deactivated",
                result.workerIndex,
                verdict.firstTrigger.empty() ? "-"
                                             : verdict.firstTrigger.c_str());
    if (!plan.empty())
      std::printf(" | %s faults=%u retries=%u dropped=%llu",
                  faults::protectionLevelName(resilience.protectionLevel),
                  resilience.faultsInjected, resilience.injectRetries,
                  static_cast<unsigned long long>(
                      resilience.ipcMessagesDropped));
    std::printf("\n");
  }
  std::printf("\n%zu / %zu deactivated (paper: 12 / 13)\n", deactivated,
              expected.size());
  if (!plan.empty())
    std::printf("chaos summary: %llu faults fired, %zu / %zu samples "
                "finished degraded\n",
                static_cast<unsigned long long>(faultsInjected), degraded,
                results.size());

  // One aggregate dump for the whole corpus: every worker's counters
  // summed, histogram buckets combined.
  const obs::MetricsSnapshot merged = batch.mergedTelemetry();
  std::printf("\nbatch telemetry (all %zu workers merged):\n%s",
              batch.workerCount(),
              obs::Exporter(obs::ExportFormat::kJson).render(merged).c_str());

  // A full incident report for the ransomware sample, straight from the
  // batch outcome — identical to what a serial harness would have produced.
  // The static-coverage proof rides along as a report appendix.
  core::ReportOptions reportOptions;
  reportOptions.appendixSections.push_back(
      analysis::renderCoverageSection(coverage));
  for (std::size_t i = 0; i < results.size(); ++i)
    if (requests[i].sampleId == "61f847b" && results[i].ok())
      std::printf("\n%s\n",
                  core::renderIncidentReport("61f847b", results[i].outcome,
                                             reportOptions)
                      .c_str());
  // Under a fault plan the Table I replication is expected to drift (that
  // is the point of the sweep); gate the exit code on it only when clean.
  if (!plan.empty()) return 0;
  return deactivated == 12 ? 0 : 1;
}
