// Quickstart: protect an end-user machine from an unknown, evasive binary.
//
//   1. Build a simulated end-user machine.
//   2. Create the Scarecrow deception engine and controller.
//   3. Launch the untrusted program through the controller (injected).
//   4. Inspect the fingerprint attempts Scarecrow observed and verify that
//      the payload never ran.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/controller.h"
#include "core/engine.h"
#include "env/environments.h"
#include "malware/kasidet.h"
#include "obs/export.h"
#include "support/strings.h"
#include "trace/analysis.h"
#include "winapi/runner.h"

using namespace scarecrow;

int main() {
  // A realistic, actively-used Windows 7 desktop.
  std::unique_ptr<winsys::Machine> machine = env::buildEndUserMachine();
  std::printf("machine: %s (user %s, %u cores, %s RAM)\n",
              machine->label.c_str(), machine->sysinfo().userName.c_str(),
              machine->sysinfo().processorCount,
              support::formatBytes(machine->sysinfo().totalPhysicalMemory)
                  .c_str());

  // The untrusted download: Kasidet, a worm with >10 evasive checks.
  malware::ProgramRegistry registry;
  malware::registerKasidet(registry);
  machine->vfs().createFile(std::string("C:\\Users\\alice\\Downloads\\") +
                                malware::kKasidetImage,
                            1 << 20);

  // Scarecrow: default configuration == the paper's deployed engine.
  core::DeceptionEngine engine(core::Config{}, core::buildDefaultResourceDb());
  std::printf("scarecrow: %zu deception APIs hooked (%zu total with "
              "extension + propagation), %zu deceptive files, "
              "%zu processes, %zu DLLs, %zu windows\n",
              engine.deceptionApiCount(), engine.hookedApiCount(),
              engine.resources().fileCount(),
              engine.resources().processCount(),
              engine.resources().dllCount(),
              engine.resources().windowCount());

  winapi::UserSpace userspace;
  userspace.programFactory = registry.factory();
  core::Controller controller(*machine, userspace, engine);
  controller.launch(std::string("C:\\Users\\alice\\Downloads\\") +
                    malware::kKasidetImage);

  winapi::Runner runner(*machine, userspace);
  winapi::RunOptions options;
  options.budgetMs = core::Config::kDefaultBudgetMs;
  runner.drain(options);
  controller.pump();

  std::printf("\nfingerprint attempts observed:\n");
  for (const core::FingerprintReport& report : controller.reports())
    std::printf("  %-28s -> %s (x%u)\n", report.api.c_str(),
                report.resource.c_str(), report.count);

  const trace::Trace trace = machine->recorder().takeTrace();
  const auto payload =
      trace::significantActivities(trace, malware::kKasidetImage);
  std::printf("\npayload activities executed: %zu%s\n", payload.size(),
              payload.empty() ? "  — the worm deactivated itself" : "");

  // Everything the engine observed, as deterministic telemetry: hook hit
  // counters, alert counters, dispatch latency, and the pipeline spans.
  std::printf("\ntelemetry snapshot:\n%s",
              controller.telemetryJson().c_str());

  // The causal decision trace, as a Chrome trace-event file: one track per
  // process, hook dispatches and deceptions as instants, correlation
  // chains as flow arrows.
  const char* tracePath = "scarecrow_trace.json";
  const std::vector<obs::DecisionEvent> decisions =
      machine->flightRecorder().snapshot();
  const std::string traceJson =
      obs::Exporter(obs::ExportFormat::kChromeTrace)
          .withDecisions(decisions, machine->flightRecorder().droppedCount())
          .render(machine->metrics().snapshot());
  if (std::FILE* f = std::fopen(tracePath, "w")) {
    std::fwrite(traceJson.data(), 1, traceJson.size(), f);
    std::fclose(f);
    std::printf("\ndecision trace written to %s — open it in "
                "https://ui.perfetto.dev (or chrome://tracing)\n",
                tracePath);
  }
  return payload.empty() ? 0 : 1;
}
