// Scenario: WannaCry lands on a workstation (paper Case II).
//
// Runs the kill-switch variant twice — on an unprotected machine, where it
// encrypts the user's documents, and under Scarecrow, whose NX-domain
// sinkhole convinces the worm it is being analyzed. Prints the filesystem
// damage in both cases and, like the benches, reports through
// bench::Reporter: the headline numbers land in
// ransomware_defense_telemetry.{json,prom} (merged with the run's full
// telemetry snapshot) and BENCH_ransomware_defense.json, so the scenario
// leaves the same machine-readable record a bench run would.
//
// Build & run:  cmake --build build && ./build/examples/ransomware_defense
#include <cstdio>

#include "bench_common.h"
#include "core/eval.h"
#include "env/environments.h"
#include "malware/ransomware.h"
#include "support/strings.h"

using namespace scarecrow;

namespace {

std::size_t countEncrypted(const trace::Trace& trace) {
  std::size_t n = 0;
  for (const trace::Event& e : trace.events)
    if (e.kind == trace::EventKind::kFileWrite &&
        support::iendsWith(e.target, ".WCRY"))
      ++n;
  return n;
}

}  // namespace

int main() {
  auto machine = env::buildEndUserMachine();
  malware::ProgramRegistry registry;
  malware::registerRansomware(registry);

  core::EvaluationHarness harness(*machine);
  const core::EvalOutcome outcome = harness.evaluate(
      {.sampleId = "wannacry",
       .imagePath = std::string("C:\\Users\\alice\\Downloads\\") +
                    malware::kWannaCryImage,
       .factory = registry.factory()});

  const std::size_t encryptedWithout = countEncrypted(outcome.traceWithout);
  const std::size_t encryptedWith = countEncrypted(outcome.traceWith);
  std::printf("without Scarecrow: %zu documents encrypted to .WCRY\n",
              encryptedWithout);
  std::printf("with Scarecrow:    %zu documents encrypted\n", encryptedWith);
  std::printf("kill-switch trigger reported: %s\n",
              outcome.verdict.firstTrigger.c_str());
  std::printf("verdict: %s\n",
              outcome.verdict.deactivated
                  ? "DEACTIVATED — the worm believed it was sinkholed"
                  : "NOT deactivated");

  bench::Reporter reporter("ransomware_defense");
  reporter.addValue("encrypted_without_scarecrow", encryptedWithout);
  reporter.addValue("encrypted_with_scarecrow", encryptedWith);
  reporter.addValue("deactivated", outcome.verdict.deactivated ? 1 : 0);
  reporter.addSnapshot(outcome.telemetry);
  const int reportRc = reporter.finish();
  return outcome.verdict.deactivated ? reportRc : 1;
}
