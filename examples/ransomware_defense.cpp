// Scenario: WannaCry lands on a workstation (paper Case II).
//
// Runs the kill-switch variant twice — on an unprotected machine, where it
// encrypts the user's documents, and under Scarecrow, whose NX-domain
// sinkhole convinces the worm it is being analyzed. Prints the filesystem
// damage in both cases.
//
// Build & run:  cmake --build build && ./build/examples/ransomware_defense
#include <cstdio>

#include "core/eval.h"
#include "env/environments.h"
#include "malware/ransomware.h"
#include "support/strings.h"

using namespace scarecrow;

namespace {

std::size_t countEncrypted(const trace::Trace& trace) {
  std::size_t n = 0;
  for (const trace::Event& e : trace.events)
    if (e.kind == trace::EventKind::kFileWrite &&
        support::iendsWith(e.target, ".WCRY"))
      ++n;
  return n;
}

}  // namespace

int main() {
  auto machine = env::buildEndUserMachine();
  malware::ProgramRegistry registry;
  malware::registerRansomware(registry);

  core::EvaluationHarness harness(*machine);
  const core::EvalOutcome outcome = harness.evaluate(
      {.sampleId = "wannacry",
       .imagePath = std::string("C:\\Users\\alice\\Downloads\\") +
                    malware::kWannaCryImage,
       .factory = registry.factory()});

  std::printf("without Scarecrow: %zu documents encrypted to .WCRY\n",
              countEncrypted(outcome.traceWithout));
  std::printf("with Scarecrow:    %zu documents encrypted\n",
              countEncrypted(outcome.traceWith));
  std::printf("kill-switch trigger reported: %s\n",
              outcome.verdict.firstTrigger.c_str());
  std::printf("verdict: %s\n",
              outcome.verdict.deactivated
                  ? "DEACTIVATED — the worm believed it was sinkholed"
                  : "NOT deactivated");
  return outcome.verdict.deactivated ? 0 : 1;
}
