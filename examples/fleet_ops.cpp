// Scenario: fleet observability from ledger files alone (DESIGN.md §13/§14).
//
// A resident corpus-evaluation service does not get to keep its
// MetricsSnapshots in memory forever — operators arrive after the fact,
// holding nothing but the JSONL run ledger the service left on disk. This
// example plays both sides:
//
//   demo mode (default, --shards N selects the fleet width): stands up one
//   resident core::EvalService sharded N ways over the Joe corpus, every
//   shard streaming run/window/worker records into a shared ledger under
//   its own shard label. The samples the service routes to the last shard
//   run a deterministic chaos plan with an SLO rule armed
//   ("inject.failures:count<1" per window), so the ledger also carries
//   breach records. Then it turns around and queries the file it wrote.
//
//   query mode (--query ledger.jsonl ...): the operator side. Merges the
//   worker summary records into one fleet telemetry view, ranks the
//   fingerprint techniques that triggered deactivation (top-K), derives
//   windowed evaluation throughput from the window records, and prints the
//   SLO breach timeline.
//
// Base request config comes from core::Config::fromEnv(), so e.g.
// SCARECROW_TS_WINDOW_MS / SCARECROW_SLO override the demo defaults
// (explicit field > environment > default — see README).
//
// Build & run:  cmake --build build && ./build/examples/fleet_ops
//   wider fleet: ./build/examples/fleet_ops --shards 4
//   operator:    ./build/examples/fleet_ops --query fleet_ledger.jsonl
//   crash drill: ./build/examples/fleet_ops --kill-after 4, then --resume
//                (DESIGN.md §16 — the admission journal makes the killed
//                sweep resumable from the ledger alone)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/eval.h"
#include "core/service.h"
#include "env/environments.h"
#include "malware/joe.h"
#include "obs/ledger.h"

using namespace scarecrow;

namespace {

std::vector<obs::LedgerRecord> readAll(
    const std::vector<std::string>& paths) {
  std::vector<obs::LedgerRecord> records;
  for (const std::string& path : paths) {
    // Generation-aware read: a ledger that rotated mid-run contributes
    // `<path>.N … <path>.1` before `<path>`, oldest first.
    std::vector<obs::LedgerRecord> part = obs::readLedgerGenerations(path);
    std::printf("read %zu records from %s (all generations)\n", part.size(),
                path.c_str());
    records.insert(records.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
  }
  return records;
}

void queryFleet(const std::vector<obs::LedgerRecord>& records) {
  // --- fleet totals from the worker summary records ---------------------
  const obs::MetricsSnapshot fleet = obs::reconstructFleetTelemetry(records);
  std::printf("\nfleet totals (reconstructed from worker records):\n");
  for (const char* name :
       {"batch.requests", "batch.failures", "engine.alerts",
        "inject.failures", "obs.slo_breach"}) {
    // Sum across labels: inject.failures is labelled by fault site and
    // obs.slo_breach by rule spec, and the dashboard wants the roll-up.
    std::uint64_t total = 0;
    for (const obs::CounterSample& c : fleet.counters)
      if (c.name == name) total += c.value;
    std::printf("  %-18s %llu\n", name,
                static_cast<unsigned long long>(total));
  }

  // --- top-K triggering techniques from the run records -----------------
  std::map<std::string, std::uint64_t> triggers;
  std::uint64_t runs = 0, deactivated = 0;
  for (const obs::LedgerRecord& r : records) {
    if (r.kind != obs::LedgerRecordKind::kRun) continue;
    ++runs;
    if (r.verdict == "deactivated") ++deactivated;
    if (!r.firstTrigger.empty()) ++triggers[r.firstTrigger];
  }
  std::vector<std::pair<std::string, std::uint64_t>> ranked(triggers.begin(),
                                                            triggers.end());
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  std::printf("\n%llu runs, %llu deactivated; top triggering techniques:\n",
              static_cast<unsigned long long>(runs),
              static_cast<unsigned long long>(deactivated));
  const std::size_t topK = ranked.size() < 5 ? ranked.size() : 5;
  for (std::size_t i = 0; i < topK; ++i)
    std::printf("  %zu. %-24s %llu\n", i + 1, ranked[i].first.c_str(),
                static_cast<unsigned long long>(ranked[i].second));

  // --- windowed throughput from the window records ----------------------
  // Each supervised run leaves exactly one "eval.ipc_pump" span (the last
  // pipeline phase before the end-of-run flush) in the window delta it
  // completed in; counting those per window id is the evaluation
  // throughput curve, straight from disk. (The whole-run span itself
  // closes after the flush and so never lands inside a window.)
  std::map<std::uint64_t, std::uint64_t> perWindow;
  for (const obs::LedgerRecord& r : records) {
    if (r.kind != obs::LedgerRecordKind::kWindow) continue;
    std::uint64_t finished = 0;
    for (const obs::Span& span : r.snapshot.spans)
      if (span.name == "eval.ipc_pump") ++finished;
    perWindow[r.windowId] += finished;
  }
  if (!perWindow.empty()) {
    std::printf("\nwindowed throughput (supervised runs per window):\n");
    for (const auto& [windowId, finished] : perWindow)
      std::printf("  window %-4llu %llu\n",
                  static_cast<unsigned long long>(windowId),
                  static_cast<unsigned long long>(finished));
  }

  // --- breach timeline --------------------------------------------------
  std::vector<const obs::LedgerRecord*> breaches;
  for (const obs::LedgerRecord& r : records)
    if (r.kind == obs::LedgerRecordKind::kBreach) breaches.push_back(&r);
  std::stable_sort(breaches.begin(), breaches.end(),
                   [](const obs::LedgerRecord* a, const obs::LedgerRecord* b) {
                     return a->windowId < b->windowId;
                   });
  std::printf("\nSLO breach timeline (%zu breaches):\n", breaches.size());
  for (const obs::LedgerRecord* b : breaches)
    std::printf("  window %-4llu %s observed=%s bound=%s\n",
                static_cast<unsigned long long>(b->windowId),
                b->rule.c_str(), b->observed.c_str(), b->threshold.c_str());
}

/// The demo's request shape for one Joe sample — shared by the fresh
/// sweep and recovery's RequestBuilder so a resumed request is
/// byte-identical to what the killed run admitted.
core::EvalRequest buildRequest(const malware::ProgramRegistry& registry,
                               const std::string& sampleId,
                               std::size_t shardOfSample,
                               std::size_t shards) {
  core::EvalRequest request{.sampleId = sampleId,
                            .imagePath =
                                "C:\\submissions\\" + sampleId + ".exe",
                            .factory = registry.factory()};
  // Environment first (SCARECROW_TS_WINDOW_MS / SCARECROW_SLO), demo
  // defaults only where the operator set nothing: stream one windowed
  // delta per 10 s of virtual time.
  request.config = core::Config::fromEnv();
  if (request.config.telemetryWindowMs == 0)
    request.config.telemetryWindowMs = 10'000;
  if (shardOfSample == shards - 1) {
    // The last shard's slice of the corpus runs deterministic chaos +
    // the SLO that catches it: any injection failure inside a window
    // violates "stay under one failure".
    request.config.faultPlan = faults::FaultPlan::parse("inject-dll:p=0.5", 7);
    if (request.config.sloSpec.empty())
      request.config.sloSpec = "inject.failures{fault}:count<1";
  }
  return request;
}

int runFleet(std::size_t shards, const std::string& ledgerPath,
             std::size_t killAfter, bool resume) {
  if (!resume) std::remove(ledgerPath.c_str());  // fresh ledger per demo run

  core::ServiceOptions options;
  options.shardCount = shards;
  options.workersPerShard = 2;
  options.telemetry.ledgerPath = ledgerPath;
  core::EvalService service([] { return env::buildBareMetalSandbox(); },
                            options);

  malware::ProgramRegistry registry;
  const auto expected = malware::registerJoeSamples(registry);

  if (resume) {
    // Crash recovery: replay the admission journal the killed run left on
    // disk, adopt the completed prefix, re-admit the residue with its
    // original request indices pinned.
    const core::RecoveryReport report = service.recover(
        ledgerPath, [&](const std::string& sampleId, const std::string&) {
          return buildRequest(registry, sampleId,
                              service.shardFor(sampleId), shards);
        });
    std::size_t ok = 0;
    for (const auto& resubmission : report.resubmitted) {
      const auto result = service.wait(resubmission.ticket);
      if (result.has_value() && result->ok()) ++ok;
    }
    service.flushTelemetry();
    std::printf("resume: %llu journaled, %zu already complete, %zu residue "
                "re-run (%zu ok)\n",
                static_cast<unsigned long long>(report.journaled),
                report.completed.size(), report.residue.size(), ok);
    return ok == report.resubmitted.size() ? 0 : 1;
  }

  std::vector<core::Ticket> tickets;
  std::size_t chaosSamples = 0;
  for (const auto& row : expected) {
    const std::size_t shard = service.shardFor(row.idPrefix);
    if (shard == shards - 1) ++chaosSamples;
    tickets.push_back(
        service.submit(buildRequest(registry, row.idPrefix, shard, shards)));
  }

  if (killAfter != 0) {
    // Crash drill: wait for the first K submissions, then die the way
    // SIGKILL would — queued work dropped, no telemetry flush. The
    // admission journal makes the loss recoverable: rerun with --resume.
    const std::size_t k = killAfter < tickets.size() ? killAfter
                                                     : tickets.size();
    // Kill at the Kth *completion* (not the Kth submission — waiting on
    // specific tickets could let the whole corpus drain first), so the
    // rest of the corpus genuinely dies queued or in flight.
    while (service.stats().completed < k)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    service.kill();
    std::printf("killed after %zu/%zu completions; admission journal in %s "
                "holds the residue — rerun with --resume\n",
                k, tickets.size(), ledgerPath.c_str());
    return 0;
  }

  std::vector<std::size_t> okPerShard(service.shardCount(), 0);
  std::size_t ok = 0;
  for (const core::Ticket& ticket : tickets) {
    const auto result = service.wait(ticket);
    if (result.has_value() && result->ok()) {
      ++ok;
      ++okPerShard[ticket.shard];
    }
  }
  // Settle the telemetry epoch: streams the per-shard worker summary
  // records the operator-side reconstruction feeds on.
  service.flushTelemetry();

  for (std::size_t shard = 0; shard < okPerShard.size(); ++shard)
    std::printf("shard %zu: %zu samples evaluated%s\n", shard,
                okPerShard[shard],
                shard == okPerShard.size() - 1 ? " under chaos" : "");
  std::printf("fleet: %zu/%zu samples ok across %zu shards (%zu under "
              "chaos), %llu ledger records -> %s\n",
              ok, tickets.size(), service.shardCount(), chaosSamples,
              static_cast<unsigned long long>(
                  service.ledger()->recordsWritten()),
              ledgerPath.c_str());
  return ok == tickets.size() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  constexpr const char* kUsage =
      "usage: %s [--shards N] [--kill-after K] [--resume] "
      "[--query ledger.jsonl ...]\n";
  std::size_t shards = 2;
  std::size_t killAfter = 0;
  bool resume = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--query") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, kUsage, argv[0]);
        return 2;
      }
      queryFleet(readAll({argv + i + 1, argv + argc}));
      return 0;
    }
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      if (shards == 0) shards = 1;
      continue;
    }
    if (std::strcmp(argv[i], "--kill-after") == 0 && i + 1 < argc) {
      killAfter =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      continue;
    }
    if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
      continue;
    }
    std::fprintf(stderr, kUsage, argv[0]);
    return 2;
  }

  // Demo: a sharded resident service writes one labelled ledger, then the
  // operator queries what landed on disk. With --kill-after the service
  // dies mid-sweep (journal intact, telemetry torn); --resume replays the
  // journal and finishes only what the crash lost.
  int rc = runFleet(shards, "fleet_ledger.jsonl", killAfter, resume);
  if (killAfter == 0) queryFleet(readAll({"fleet_ledger.jsonl"}));
  return rc;
}
