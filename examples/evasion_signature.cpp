// Scenario: continuous learning of new deceptive resources (paper
// Section II-C, MalGene feed).
//
// A new evasive sample probes a sandbox artifact Scarecrow does not yet
// fake. We run it in two environments, extract the MalGene evasion
// signature from the trace deviation, merge the probed resource into the
// deception database, and show that the sample is deactivated afterwards.
//
// Build & run:  cmake --build build && ./build/examples/evasion_signature
#include <cstdio>

#include "core/collector.h"
#include "core/controller.h"
#include "core/engine.h"
#include "env/environments.h"
#include "support/strings.h"
#include "trace/malgene.h"
#include "winapi/api.h"
#include "winapi/runner.h"

using namespace scarecrow;

namespace {

/// A sample probing a niche artifact absent from the curated database.
class NovelEvader : public winapi::GuestProgram {
 public:
  void run(winapi::Api& api) override {
    if (winapi::ok(api.NtOpenKeyEx(
            "SOFTWARE\\FancySandbox\\AnalysisAgent")))  // niche artifact
      api.ExitProcess(0);                                // evade
    api.WriteFileA("C:\\Users\\Public\\stolen.dat", "exfil");
    api.ExitProcess(0);
  }
};

trace::Trace runOn(winsys::Machine& machine, core::DeceptionEngine* engine) {
  winapi::UserSpace userspace;
  userspace.programFactory =
      [](const std::string& image,
         const std::string&) -> std::unique_ptr<winapi::GuestProgram> {
    if (support::iendsWith(image, "novel.exe"))
      return std::make_unique<NovelEvader>();
    return nullptr;
  };
  winapi::Runner runner(machine, userspace);
  machine.recorder().clear();
  if (engine != nullptr) {
    core::Controller controller(machine, userspace, *engine);
    controller.launch("C:\\dl\\novel.exe");
    runner.drain({});
  } else {
    runner.run("C:\\dl\\novel.exe", {});
  }
  return machine.recorder().takeTrace();
}

}  // namespace

int main() {
  // Environment A: an (older) sandbox image that carries the artifact.
  auto sandboxWithArtifact = env::buildVBoxCuckooSandbox({});
  sandboxWithArtifact->registry().ensureKey(
      "SOFTWARE\\FancySandbox\\AnalysisAgent");
  // Environment B: the bare-metal reference.
  auto bareMetal = env::buildBareMetalSandbox();

  const trace::Trace evading = runOn(*sandboxWithArtifact, nullptr);
  const trace::Trace detonating = runOn(*bareMetal, nullptr);

  const trace::EvasionSignature signature =
      trace::extractEvasionSignature(evading, detonating);
  std::printf("MalGene signature found=%s probed resource: %s\n",
              signature.found ? "Y" : "N",
              signature.probedResource.c_str());

  core::ResourceDb db = core::buildDefaultResourceDb();
  const bool learned =
      core::SandboxResourceCollector::mergeEvasionSignature(db, signature);
  std::printf("merged into deception DB: %s\n", learned ? "yes" : "no");

  // The sample is now deactivated on a plain end-user machine.
  auto endUser = env::buildEndUserMachine();
  core::DeceptionEngine engine(core::Config{}, std::move(db));
  const trace::Trace guarded = runOn(*endUser, &engine);
  bool exfiltrated = false;
  for (const trace::Event& e : guarded.events)
    if (e.kind == trace::EventKind::kFileWrite &&
        support::icontains(e.target, "stolen"))
      exfiltrated = true;
  std::printf("after learning, payload executed on end host: %s\n",
              exfiltrated ? "YES (bug!)" : "no — deactivated");
  return exfiltrated ? 1 : 0;
}
