// In-line hooking engine (paper Section III-A, Figure 1).
//
// Installing a hook overwrites the first five bytes of the target function
// with `JMP rel32` (0xE9 xx xx xx xx), after moving the displaced bytes to
// a trampoline. Anti-hook logic detects this by checking whether the entry
// still starts with the hot-patch prologue `mov edi, edi` (8B FF) — the
// exact check reproduced in Figure 1. The paper's point: the *visibility*
// of these hooks is a feature, because sandboxes hook the same APIs.
#pragma once

#include <vector>

#include "winapi/api_ids.h"
#include "winapi/userspace.h"

namespace scarecrow::hooking {

/// Writes the JMP patch into the prologue of `id` within one process's
/// image. Idempotent. Returns false if the function was already hooked.
bool installInlineHook(winapi::ProcessApiState& state, winapi::ApiId id);

/// Restores the displaced bytes from the trampoline. Returns false if the
/// function was not hooked.
bool removeInlineHook(winapi::ProcessApiState& state, winapi::ApiId id);

/// True if the function entry of `id` carries a JMP patch.
bool isHooked(const winapi::ProcessApiState& state, winapi::ApiId id) noexcept;

/// The detection predicate of Figure 1: returns true ("hooked") when the
/// first two bytes are NOT `mov edi, edi`.
bool checkHook(const std::array<std::uint8_t, 8>& entryBytes) noexcept;

/// All currently hooked ApiIds in a process image.
std::vector<winapi::ApiId> hookedApis(const winapi::ProcessApiState& state);

}  // namespace scarecrow::hooking
