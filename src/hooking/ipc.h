// IPC channel between an injected DLL and its controller process.
//
// scarecrow.dll reports fingerprint attempts and self-spawn activity to
// scarecrow.exe over this channel; the controller pushes configuration
// updates back (paper Figure 2). Messages are also mirrored into the kernel
// trace as kAlert events so the evaluation pipeline can attribute the first
// trigger per sample (Table I's "Trigger" column).
//
// Every message carries a channel-assigned `seq` (send order is the
// ordering contract the controller relies on) and an optional correlation
// id that ties the message to the hook-side DecisionEvent that caused it,
// so one fingerprint attempt is a single causal chain across the
// DLL/controller process boundary (obs/flight_recorder.h). When a flight
// recorder is bound, every send is recorded as a kIpcSend decision event;
// the controller records the matching kIpcDrain on its side.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"

namespace scarecrow::hooking {

enum class IpcKind : std::uint8_t {
  kFingerprintAttempt,  // a deceptive resource was probed
  kSelfSpawnAlert,      // target respawned its own image
  kProcessInjected,     // DLL injected into a (child) process
  kConfigUpdate,        // controller -> dll
};

const char* ipcKindName(IpcKind kind) noexcept;

struct IpcMessage {
  IpcKind kind = IpcKind::kFingerprintAttempt;
  std::uint32_t pid = 0;
  std::uint64_t timeMs = 0;
  std::string api;       // API (or pseudo-channel) that fired
  std::string resource;  // deceptive resource involved
  /// Monotonic send order, assigned by IpcChannel::send. Drain order must
  /// equal send order (asserted in controller_test).
  std::uint64_t seq = 0;
  /// Causal chain id from the flight recorder (0 = uncorrelated).
  std::uint64_t correlationId = 0;
};

class IpcChannel {
 public:
  /// Records every send as a kIpcSend decision event. Pass nullptr to
  /// detach. The recorder is not owned.
  void bindFlightRecorder(obs::FlightRecorder* recorder) noexcept {
    flight_ = recorder;
  }

  /// Enqueues the message, assigning its seq. Returns the assigned seq.
  std::uint64_t send(IpcMessage message) {
    message.seq = nextSeq_++;
    if (flight_ != nullptr) {
      obs::DecisionEvent e;
      e.timeMs = message.timeMs;
      e.pid = message.pid;
      e.correlationId = message.correlationId;
      e.kind = obs::DecisionKind::kIpcSend;
      e.api = message.api;
      e.argument = obs::digestArgument(message.resource);
      e.link = ipcKindName(message.kind);
      e.value = std::to_string(message.seq);
      flight_->record(std::move(e));
    }
    queue_.push_back(std::move(message));
    return queue_.back().seq;
  }

  /// Removes and returns all pending messages in send order (controller
  /// poll).
  std::vector<IpcMessage> drain() {
    std::vector<IpcMessage> out;
    out.swap(queue_);
    return out;
  }

  const std::vector<IpcMessage>& pending() const noexcept { return queue_; }
  bool empty() const noexcept { return queue_.empty(); }

 private:
  std::vector<IpcMessage> queue_;
  std::uint64_t nextSeq_ = 0;
  obs::FlightRecorder* flight_ = nullptr;
};

}  // namespace scarecrow::hooking
