// IPC channel between an injected DLL and its controller process.
//
// scarecrow.dll reports fingerprint attempts and self-spawn activity to
// scarecrow.exe over this channel; the controller pushes configuration
// updates back (paper Figure 2). Messages are also mirrored into the kernel
// trace as kAlert events so the evaluation pipeline can attribute the first
// trigger per sample (Table I's "Trigger" column).
//
// Every message carries a channel-assigned `seq` (send order is the
// ordering contract the controller relies on) and an optional correlation
// id that ties the message to the hook-side DecisionEvent that caused it,
// so one fingerprint attempt is a single causal chain across the
// DLL/controller process boundary (obs/flight_recorder.h). When a flight
// recorder is bound, every send is recorded as a kIpcSend decision event;
// the controller records the matching kIpcDrain on its side.
//
// Robustness (DESIGN.md §11): the queue is bounded — beyond the capacity
// the oldest message is dropped and counted in `ipc.messages_dropped`
// (label "capacity") — and two fault sites run through it: kIpcSend drops
// a message at send time (label "fault") and kIpcDrain truncates a drain
// to the front half of the queue, modelling a stalled or lossy pump. The
// channel degrades by losing telemetry, never by growing without bound or
// reordering what survives.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/hot_timer.h"
#include "obs/metrics.h"

namespace scarecrow::faults {
class FaultInjector;
}

namespace scarecrow::hooking {

enum class IpcKind : std::uint8_t {
  kFingerprintAttempt,  // a deceptive resource was probed
  kSelfSpawnAlert,      // target respawned its own image
  kProcessInjected,     // DLL injected into a (child) process
  kInjectFailed,        // DLL injection into a child FAILED (re-inject me)
  kConfigUpdate,        // controller -> dll
};

const char* ipcKindName(IpcKind kind) noexcept;

struct IpcMessage {
  IpcKind kind = IpcKind::kFingerprintAttempt;
  std::uint32_t pid = 0;
  std::uint64_t timeMs = 0;
  std::string api;       // API (or pseudo-channel) that fired
  std::string resource;  // deceptive resource involved
  /// Monotonic send order, assigned by IpcChannel::send. Drain order must
  /// equal send order (asserted in controller_test); a dropped message
  /// still consumes its seq, so surviving seqs stay increasing.
  std::uint64_t seq = 0;
  /// Causal chain id from the flight recorder (0 = uncorrelated).
  std::uint64_t correlationId = 0;
};

class IpcChannel {
 public:
  /// Records every send as a kIpcSend decision event. Pass nullptr to
  /// detach. The recorder is not owned.
  void bindFlightRecorder(obs::FlightRecorder* recorder) noexcept {
    flight_ = recorder;
  }

  /// Drop counters land here (looked up lazily so a clean channel adds no
  /// zero-valued series to exports). Not owned; pass nullptr to detach.
  void bindMetrics(obs::MetricsRegistry* metrics) noexcept {
    metrics_ = metrics;
  }

  /// Arms the kIpcSend / kIpcDrain fault sites. Not owned.
  void setFaultInjector(faults::FaultInjector* faults) noexcept {
    faults_ = faults;
  }

  /// Wall-clock ns timing for send() (HotSite::kIpcSend) and drain()
  /// (HotSite::kIpcDrain). Not owned; nullptr (the default) or a disarmed
  /// plane costs one check per call.
  void bindHotTimers(obs::HotTimerPlane* hotTimers) noexcept {
    hot_ = hotTimers;
  }

  /// Bounds the queue (drop-oldest beyond it). 0 = unbounded.
  void setCapacity(std::size_t capacity) noexcept { capacity_ = capacity; }
  std::size_t capacity() const noexcept { return capacity_; }

  /// Enqueues the message, assigning its seq. Returns the assigned seq
  /// (also when the message was dropped by a fault or the capacity bound).
  std::uint64_t send(IpcMessage message);

  /// Removes and returns pending messages in send order (controller poll).
  /// Under an armed kIpcDrain fault the call returns only the front half
  /// of the queue; the rest stays pending for a later pump.
  std::vector<IpcMessage> drain();

  const std::vector<IpcMessage>& pending() const noexcept { return queue_; }
  bool empty() const noexcept { return queue_.empty(); }

  /// Messages lost to send faults plus capacity overflow.
  std::uint64_t droppedTotal() const noexcept { return dropped_; }
  std::uint64_t drainTruncations() const noexcept { return truncations_; }

 private:
  void noteDrop(const char* reason);

  std::vector<IpcMessage> queue_;
  std::uint64_t nextSeq_ = 0;
  std::size_t capacity_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t truncations_ = 0;
  obs::FlightRecorder* flight_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::HotTimerPlane* hot_ = nullptr;
  faults::FaultInjector* faults_ = nullptr;
};

}  // namespace scarecrow::hooking
