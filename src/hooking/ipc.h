// IPC channel between an injected DLL and its controller process.
//
// scarecrow.dll reports fingerprint attempts and self-spawn activity to
// scarecrow.exe over this channel; the controller pushes configuration
// updates back (paper Figure 2). Messages are also mirrored into the kernel
// trace as kAlert events so the evaluation pipeline can attribute the first
// trigger per sample (Table I's "Trigger" column).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace scarecrow::hooking {

enum class IpcKind : std::uint8_t {
  kFingerprintAttempt,  // a deceptive resource was probed
  kSelfSpawnAlert,      // target respawned its own image
  kProcessInjected,     // DLL injected into a (child) process
  kConfigUpdate,        // controller -> dll
};

struct IpcMessage {
  IpcKind kind = IpcKind::kFingerprintAttempt;
  std::uint32_t pid = 0;
  std::uint64_t timeMs = 0;
  std::string api;       // API (or pseudo-channel) that fired
  std::string resource;  // deceptive resource involved
};

class IpcChannel {
 public:
  void send(IpcMessage message) { queue_.push_back(std::move(message)); }

  /// Removes and returns all pending messages (controller poll).
  std::vector<IpcMessage> drain() {
    std::vector<IpcMessage> out;
    out.swap(queue_);
    return out;
  }

  const std::vector<IpcMessage>& pending() const noexcept { return queue_; }
  bool empty() const noexcept { return queue_.empty(); }

 private:
  std::vector<IpcMessage> queue_;
};

}  // namespace scarecrow::hooking
