#include "hooking/ipc.h"

#include "faults/fault_injector.h"

namespace scarecrow::hooking {

const char* ipcKindName(IpcKind kind) noexcept {
  switch (kind) {
    case IpcKind::kFingerprintAttempt: return "fingerprint_attempt";
    case IpcKind::kSelfSpawnAlert: return "self_spawn_alert";
    case IpcKind::kProcessInjected: return "process_injected";
    case IpcKind::kInjectFailed: return "inject_failed";
    case IpcKind::kConfigUpdate: return "config_update";
  }
  return "?";
}

void IpcChannel::noteDrop(const char* reason) {
  ++dropped_;
  if (metrics_ != nullptr)
    metrics_->counter("ipc.messages_dropped", reason).inc();
}

std::uint64_t IpcChannel::send(IpcMessage message) {
  obs::HotScope hotScope(hot_, obs::HotSite::kIpcSend);
  message.seq = nextSeq_++;
  // The kIpcSend decision is recorded before any drop: the DLL side did
  // send the message; losing it is the channel's fault, and the trace must
  // show the attempt so attribution can explain the missing drain.
  if (flight_ != nullptr) {
    obs::DecisionEvent e;
    e.timeMs = message.timeMs;
    e.pid = message.pid;
    e.correlationId = message.correlationId;
    e.kind = obs::DecisionKind::kIpcSend;
    e.api = message.api;
    e.argument = obs::digestArgument(message.resource);
    e.link = ipcKindName(message.kind);
    e.value = std::to_string(message.seq);
    flight_->record(std::move(e));
  }
  const std::uint64_t seq = message.seq;
  if (faults_ != nullptr &&
      faults_->shouldFire(faults::FaultSite::kIpcSend, message.api)) {
    noteDrop("fault");
    return seq;
  }
  queue_.push_back(std::move(message));
  if (capacity_ != 0 && queue_.size() > capacity_) {
    queue_.erase(queue_.begin());
    noteDrop("capacity");
  }
  return seq;
}

std::vector<IpcMessage> IpcChannel::drain() {
  obs::HotScope hotScope(hot_, obs::HotSite::kIpcDrain);
  std::vector<IpcMessage> out;
  if (faults_ != nullptr && !queue_.empty() &&
      faults_->shouldFire(faults::FaultSite::kIpcDrain)) {
    // Truncated drain: hand over the front half, keep the tail queued.
    // Nothing is lost — a later pump picks the remainder up — but the
    // controller sees it late, which is exactly the hazard under test.
    const std::size_t take = (queue_.size() + 1) / 2;
    out.assign(std::make_move_iterator(queue_.begin()),
               std::make_move_iterator(queue_.begin() +
                                       static_cast<std::ptrdiff_t>(take)));
    queue_.erase(queue_.begin(),
                 queue_.begin() + static_cast<std::ptrdiff_t>(take));
    ++truncations_;
    if (metrics_ != nullptr)
      metrics_->counter("ipc.drain_truncations").inc();
    return out;
  }
  out.swap(queue_);
  return out;
}

}  // namespace scarecrow::hooking
