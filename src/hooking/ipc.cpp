#include "hooking/ipc.h"

namespace scarecrow::hooking {

const char* ipcKindName(IpcKind kind) noexcept {
  switch (kind) {
    case IpcKind::kFingerprintAttempt: return "fingerprint_attempt";
    case IpcKind::kSelfSpawnAlert: return "self_spawn_alert";
    case IpcKind::kProcessInjected: return "process_injected";
    case IpcKind::kConfigUpdate: return "config_update";
  }
  return "?";
}

}  // namespace scarecrow::hooking
