#include "hooking/injector.h"

#include "faults/fault_injector.h"
#include "obs/hot_timer.h"
#include "obs/span.h"
#include "support/log.h"
#include "support/strings.h"

namespace scarecrow::hooking {

namespace {

/// Shared failure path: structured log + reason-labelled counter +
/// kInjectFail decision, so no caller can lose an injection silently.
bool injectFailed(winsys::Machine& machine, std::uint32_t pid,
                  const DllImage& dll, const char* reason) {
  support::logError("inject", "dll injection failed",
                    {{"dll", dll.name},
                     {"pid", pid},
                     {"reason", reason}});
  machine.metrics().counter("inject.failures", reason).inc();
  obs::DecisionEvent e;
  e.timeMs = machine.clock().nowMs();
  e.pid = pid;
  e.kind = obs::DecisionKind::kInjectFail;
  e.api = "injectDll";
  e.argument = dll.name;
  e.value = reason;
  machine.flightRecorder().record(std::move(e));
  return false;
}

}  // namespace

bool injectDll(winsys::Machine& machine, winapi::UserSpace& userspace,
               std::uint32_t pid, const DllImage& dll,
               faults::FaultInjector* faults) {
  obs::HotScope hotScope(&machine.hotTimers(), obs::HotSite::kInject);
  winsys::Process* target = machine.processes().find(pid);
  if (target == nullptr)
    return injectFailed(machine, pid, dll, "no-such-process");
  if (target->state == winsys::ProcessState::kTerminated)
    return injectFailed(machine, pid, dll, "terminated");
  if (isInjected(userspace, pid, dll.name)) return true;
  if (faults != nullptr &&
      faults->shouldFire(faults::FaultSite::kInjectDll, target->imageName))
    return injectFailed(machine, pid, dll, "fault");

  obs::ScopedSpan span(machine.metrics(), machine.clock(), "hooking.inject");
  machine.metrics().counter("hooking.injections", dll.name).inc();
  {
    obs::DecisionEvent e;
    e.timeMs = machine.clock().nowMs();
    e.pid = pid;
    e.kind = obs::DecisionKind::kInjection;
    e.api = "injectDll";
    e.argument = dll.name;
    e.value = target->imageName;
    machine.flightRecorder().record(std::move(e));
  }

  // Map the module into the target: visible through GetModuleHandle, like
  // EasyHook's runtime DLL.
  target->modules.push_back(
      {dll.name, "C:\\Program Files\\Scarecrow\\" + dll.name});
  winapi::ProcessApiState& state = userspace.stateFor(pid);
  state.injectedDlls.push_back(dll.name);
  machine.emit(pid, trace::EventKind::kDllLoad, dll.name, "injected");

  if (dll.onLoad) {
    winapi::Api api(machine, userspace, pid);
    dll.onLoad(api);
  }
  return true;
}

bool isInjected(const winapi::UserSpace& userspace, std::uint32_t pid,
                const std::string& dllName) {
  const winapi::ProcessApiState* state = userspace.findState(pid);
  if (state == nullptr) return false;
  for (const std::string& name : state->injectedDlls)
    if (support::iequals(name, dllName)) return true;
  return false;
}

}  // namespace scarecrow::hooking
