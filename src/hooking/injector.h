// DLL injection (paper Section III-A, EasyHook-style).
//
// A DllImage is injectable code: a name plus an entry point that runs in
// the target's context and typically installs in-line hooks. Injection
// appends the module to the target's module list (GetModuleHandle sees it,
// like EasyHook's helper DLL), records a DllLoad kernel event, and invokes
// the entry point. Child propagation — CreateProcess(suspended) → inject →
// resume — is implemented by the deception engine's CreateProcess hook on
// top of this primitive.
//
// Failures are loud (DESIGN.md §11): every failed injection — dead target,
// vanished process, or an armed kInjectDll fault — emits a structured
// error log, an `inject.failures` counter labelled with the reason, and a
// kInjectFail decision event, so a supervised run that silently lost its
// hooks is impossible. Callers (Controller::launch, the CreateProcess
// child-propagation hook) layer retry and degradation policy on top.
#pragma once

#include <functional>
#include <string>

#include "winapi/api.h"
#include "winapi/userspace.h"
#include "winsys/machine.h"

namespace scarecrow::faults {
class FaultInjector;
}

namespace scarecrow::hooking {

struct DllImage {
  std::string name = "injected.dll";
  /// Runs inside the target process right after the module is mapped.
  std::function<void(winapi::Api& api)> onLoad;
};

/// Injects `dll` into process `pid`. Returns false — after logging, a
/// reason-labelled `inject.failures` counter tick, and a kInjectFail
/// decision event — if the process does not exist, is terminated, or an
/// armed kInjectDll fault fires (`faults` may be nullptr = no fault site).
bool injectDll(winsys::Machine& machine, winapi::UserSpace& userspace,
               std::uint32_t pid, const DllImage& dll,
               faults::FaultInjector* faults = nullptr);

/// True if `dll` was already injected into `pid`.
bool isInjected(const winapi::UserSpace& userspace, std::uint32_t pid,
                const std::string& dllName);

}  // namespace scarecrow::hooking
