#include "hooking/inline_hook.h"

namespace scarecrow::hooking {

using winapi::ApiId;
using winapi::kApiCount;
using winapi::Prologue;
using winapi::ProcessApiState;

namespace {

Prologue& slot(ProcessApiState& state, ApiId id) {
  return state.prologues[static_cast<std::size_t>(id)];
}

const Prologue& slot(const ProcessApiState& state, ApiId id) {
  return state.prologues[static_cast<std::size_t>(id)];
}

}  // namespace

bool installInlineHook(ProcessApiState& state, ApiId id) {
  Prologue& p = slot(state, id);
  if (p.hooked) return false;
  p.trampoline = p.bytes;  // displace original bytes to the trampoline
  // JMP rel32 to the hook body; the displacement encodes the ApiId so each
  // patched entry is distinguishable in memory dumps.
  p.bytes = {0xE9,
             static_cast<std::uint8_t>(id),
             0x10, 0x40, 0x00,
             0x90, 0x90, 0x90};  // NOP padding after the 5-byte patch
  p.hooked = true;
  return true;
}

bool removeInlineHook(ProcessApiState& state, ApiId id) {
  Prologue& p = slot(state, id);
  if (!p.hooked) return false;
  p.bytes = p.trampoline;
  p.hooked = false;
  return true;
}

bool isHooked(const ProcessApiState& state, ApiId id) noexcept {
  return slot(state, id).hooked;
}

bool checkHook(const std::array<std::uint8_t, 8>& entryBytes) noexcept {
  return !(entryBytes[0] == 0x8B && entryBytes[1] == 0xFF);
}

std::vector<ApiId> hookedApis(const ProcessApiState& state) {
  std::vector<ApiId> out;
  for (std::size_t i = 0; i < kApiCount; ++i)
    if (state.prologues[i].hooked) out.push_back(static_cast<ApiId>(i));
  return out;
}

}  // namespace scarecrow::hooking
