#include "faults/fault_plan.h"

#include <stdexcept>

#include "support/strings.h"

namespace scarecrow::faults {

using support::iequals;
using support::split;

const char* faultSiteName(FaultSite site) noexcept {
  switch (site) {
    case FaultSite::kInjectDll: return "inject-dll";
    case FaultSite::kHookInstall: return "hook-install";
    case FaultSite::kIpcSend: return "ipc-send";
    case FaultSite::kIpcDrain: return "ipc-drain";
    case FaultSite::kChildPropagation: return "child-propagation";
    case FaultSite::kResourceDbLookup: return "db-lookup";
    case FaultSite::kWorkerCrash: return "worker-crash";
    case FaultSite::kLedgerAppend: return "ledger-append";
  }
  return "?";
}

std::optional<FaultSite> faultSiteFromName(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    const auto site = static_cast<FaultSite>(i);
    if (iequals(name, faultSiteName(site))) return site;
  }
  if (iequals(name, "inject")) return FaultSite::kInjectDll;
  if (iequals(name, "propagation")) return FaultSite::kChildPropagation;
  return std::nullopt;
}

const char* protectionLevelName(ProtectionLevel level) noexcept {
  switch (level) {
    case ProtectionLevel::kFullDeception: return "full-deception";
    case ProtectionLevel::kPartialDeception: return "partial-deception";
    case ProtectionLevel::kMonitorOnly: return "monitor-only";
  }
  return "?";
}

FaultPlan FaultPlan::parse(const std::string& spec, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  for (const std::string& clause : split(spec, ';')) {
    if (clause.empty()) continue;
    const std::size_t colon = clause.find(':');
    const std::string siteName = clause.substr(0, colon);
    const std::optional<FaultSite> site = faultSiteFromName(siteName);
    if (!site.has_value())
      throw std::invalid_argument("unknown fault site: " + siteName);
    FaultRule rule;
    rule.site = *site;
    if (colon != std::string::npos) {
      for (const std::string& kv : split(clause.substr(colon + 1), ',')) {
        if (kv.empty()) continue;
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos)
          throw std::invalid_argument("fault rule option needs key=value: " +
                                      kv);
        const std::string key = kv.substr(0, eq);
        const std::string value = kv.substr(eq + 1);
        if (iequals(key, "p")) {
          rule.probability = std::stod(value);
        } else if (iequals(key, "every")) {
          rule.everyNth = static_cast<std::uint32_t>(std::stoul(value));
        } else if (iequals(key, "max")) {
          rule.maxFires = static_cast<std::uint32_t>(std::stoul(value));
        } else if (iequals(key, "api")) {
          rule.apiFilter = value;
        } else {
          throw std::invalid_argument("unknown fault rule option: " + key);
        }
      }
    }
    plan.rules.push_back(std::move(rule));
  }
  return plan;
}

std::string FaultPlan::describe() const {
  std::string out = "seed=" + std::to_string(seed);
  for (const FaultRule& rule : rules) {
    out += ' ';
    out += faultSiteName(rule.site);
    out += ":p=" + std::to_string(rule.probability);
    if (rule.everyNth != 0)
      out += ",every=" + std::to_string(rule.everyNth);
    if (rule.maxFires != 0) out += ",max=" + std::to_string(rule.maxFires);
    if (!rule.apiFilter.empty()) out += ",api=" + rule.apiFilter;
  }
  return out;
}

}  // namespace scarecrow::faults
