// Deterministic fault-injection plan for the deception pipeline.
//
// Scarecrow's guarantee is that deception is on when the malware probes
// (paper §III); the reproduction's robustness guarantee is that when a
// pipeline step fails, it fails loudly and boundedly instead of silently
// leaving a process unprotected. A FaultPlan describes which named seams
// fail and how often; a FaultInjector (fault_injector.h) armed with a
// (seed, plan) pair replays the exact same fault schedule byte-for-byte,
// so a chaos sweep over the Table I corpus is as reproducible as a clean
// one. The degradation ladder the consumers walk when faults land —
// kFullDeception → kPartialDeception → kMonitorOnly — lives here too.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace scarecrow::faults {

/// The named seams a plan can arm, one per pipeline step that can lose
/// protection (DESIGN.md §11 site catalog).
enum class FaultSite : std::uint8_t {
  kInjectDll,         // Controller::launch's injectDll returns false
  kHookInstall,       // one API's in-line hook fails to install
  kIpcSend,           // DLL→controller message dropped at send
  kIpcDrain,          // controller drain returns only part of the queue
  kChildPropagation,  // CreateProcess-hook descendant injection fails
  kResourceDbLookup,  // deception database lookup errors (served as a miss)
  kWorkerCrash,       // an EvalService worker thread dies mid-attempt
  kLedgerAppend,      // a run-ledger append fails (simulated disk error)
};

/// Number of fault sites; keep in sync with the last enumerator.
inline constexpr std::size_t kFaultSiteCount =
    static_cast<std::size_t>(FaultSite::kLedgerAppend) + 1;

/// Exhaustive over FaultSite (no default; -Werror=switch enforces it).
/// These are also the spelling `FaultPlan::parse` accepts.
const char* faultSiteName(FaultSite site) noexcept;

/// Inverse of faultSiteName, case-insensitive. Also accepts the aliases
/// "inject" (kInjectDll) and "propagation" (kChildPropagation).
std::optional<FaultSite> faultSiteFromName(std::string_view name) noexcept;

/// How far down the ladder a supervised run ended (best state first; the
/// ladder only descends within a run).
enum class ProtectionLevel : std::uint8_t {
  kFullDeception,     // every configured hook installed, nothing lost
  kPartialDeception,  // some hooks quarantined / children missed / IPC lost
  kMonitorOnly,       // injection never succeeded; kernel trace only
};

inline constexpr std::size_t kProtectionLevelCount =
    static_cast<std::size_t>(ProtectionLevel::kMonitorOnly) + 1;

/// Exhaustive over ProtectionLevel (-Werror=switch).
const char* protectionLevelName(ProtectionLevel level) noexcept;

/// One armed seam. A rule fires on a check when, in order: the detail
/// matches `apiFilter` (when set), `maxFires` is not exhausted, the check
/// is the everyNth-th eligible one (when set), and a Bernoulli trial with
/// `probability` passes (drawn from the site's private Rng stream).
struct FaultRule {
  FaultSite site = FaultSite::kInjectDll;
  /// Chance an eligible check fires, in [0, 1]. 1.0 draws nothing from
  /// the Rng, so all-deterministic plans never touch the stream.
  double probability = 1.0;
  /// Fire only on every Nth eligible check (0 or 1 = every one).
  std::uint32_t everyNth = 0;
  /// Total fires before the rule disarms (0 = unbounded; 1 = one-shot).
  std::uint32_t maxFires = 0;
  /// Case-insensitive exact match against the site detail (the API name
  /// for kHookInstall, the image name for injection sites). Empty matches
  /// everything.
  std::string apiFilter;
};

/// A complete fault schedule: (seed, rules). Value semantics — it travels
/// inside core::Config so every EvalRequest carries its own plan and a
/// BatchEvaluator worker replays exactly what a serial harness would.
struct FaultPlan {
  /// Seeds the per-site Rng streams; two injectors built from equal
  /// (seed, rules) produce identical schedules for identical call traces.
  std::uint64_t seed = 0;
  std::vector<FaultRule> rules;

  bool empty() const noexcept { return rules.empty(); }

  /// Parses a compact spec: semicolon-separated rules of the form
  ///   site[:key=value[,key=value...]]
  /// with keys `p` (probability), `every` (everyNth), `max` (maxFires),
  /// and `api` (apiFilter), e.g.
  ///   "inject:p=0.3;hook-install:api=IsDebuggerPresent,max=1;ipc-send:every=4"
  /// Throws std::invalid_argument on an unknown site or key.
  static FaultPlan parse(const std::string& spec, std::uint64_t seed = 0);

  /// Round-trippable rendering of the plan ("seed=7 inject:p=0.3 ...").
  std::string describe() const;
};

}  // namespace scarecrow::faults
