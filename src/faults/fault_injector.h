// Seeded, deterministic fault injection (DESIGN.md §11).
//
// A FaultInjector is armed with a FaultPlan and consulted at every named
// seam of the deception pipeline via shouldFire(site, detail). Each site
// owns a private Rng stream forked from the plan seed, so checking one
// site never perturbs another's schedule and a (seed, plan) pair replays
// byte-identically for an identical call trace — which the simulator
// guarantees. The hot-path contract mirrors obs::Counter: a disarmed site
// check is a single array load (< 2 ns, see BM_FaultSiteCheck), so fault
// sites can stay compiled into the hook hot path permanently.
//
// Every fire is observable: a `faults.fired{site}` counter in the bound
// metrics registry and a kFaultInjected decision event in the bound
// flight recorder, so TriggerAttribution can explain why a sample went
// unprotected.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "faults/fault_plan.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "support/clock.h"
#include "support/rng.h"

namespace scarecrow::faults {

class FaultInjector {
 public:
  /// Disarmed: every shouldFire returns false from the fast path.
  FaultInjector() = default;

  /// Armed per `plan`. Rules keep plan order within a site (first match
  /// fires).
  explicit FaultInjector(const FaultPlan& plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Observability sinks; none are owned and all may be null. The clock
  /// timestamps kFaultInjected decision events.
  void bind(obs::MetricsRegistry* metrics, obs::FlightRecorder* flight,
            const support::VirtualClock* clock) noexcept {
    metrics_ = metrics;
    flight_ = flight;
    clock_ = clock;
  }

  /// The hot-path predicate: false in one array load when `site` has no
  /// rules armed.
  bool armed(FaultSite site) const noexcept {
    return armed_[static_cast<std::size_t>(site)];
  }
  bool anyArmed() const noexcept { return anyArmed_; }

  /// One fault-site check. `detail` names the concrete thing at the seam
  /// (API name, image path) and is matched against rule apiFilters.
  /// Returns true when the step must fail. The disarmed path is inline —
  /// one array load and a branch, no call — so permanent sites are free.
  bool shouldFire(FaultSite site, std::string_view detail = {}) {
    if (!armed_[static_cast<std::size_t>(site)]) return false;
    return checkArmed(site, detail);
  }

  std::uint64_t checkCount(FaultSite site) const noexcept {
    return sites_[static_cast<std::size_t>(site)].checks;
  }
  std::uint64_t fireCount(FaultSite site) const noexcept {
    return sites_[static_cast<std::size_t>(site)].fires;
  }
  std::uint64_t totalFires() const noexcept { return totalFires_; }

  /// "site=fires/checks ..." over armed sites — a compact schedule
  /// fingerprint the determinism tests compare across replays.
  std::string scheduleDigest() const;

 private:
  struct RuleState {
    FaultRule rule;
    std::uint64_t eligibleChecks = 0;
    std::uint64_t fires = 0;
  };
  struct SiteState {
    std::vector<RuleState> rules;
    support::Rng rng{0};
    std::uint64_t checks = 0;
    std::uint64_t fires = 0;
    obs::Counter* firedCounter = nullptr;  // looked up lazily on first fire
  };

  bool checkArmed(FaultSite site, std::string_view detail);
  void noteFire(SiteState& site, FaultSite which, std::string_view detail);

  std::array<SiteState, kFaultSiteCount> sites_{};
  std::array<bool, kFaultSiteCount> armed_{};
  bool anyArmed_ = false;
  std::uint64_t totalFires_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  const support::VirtualClock* clock_ = nullptr;
};

}  // namespace scarecrow::faults
