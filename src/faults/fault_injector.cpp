#include "faults/fault_injector.h"

#include "support/strings.h"

namespace scarecrow::faults {

FaultInjector::FaultInjector(const FaultPlan& plan) {
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    // Independent per-site streams: the SplitMix64 seeding inside Rng
    // decorrelates these related seeds, and keeping the streams separate
    // means arming (or checking) one site never shifts another's draws.
    sites_[i].rng =
        support::Rng(plan.seed + 0x9E3779B97F4A7C15ULL * (i + 1));
  }
  for (const FaultRule& rule : plan.rules) {
    SiteState& site = sites_[static_cast<std::size_t>(rule.site)];
    site.rules.push_back({rule, 0, 0});
    armed_[static_cast<std::size_t>(rule.site)] = true;
    anyArmed_ = true;
  }
}

bool FaultInjector::checkArmed(FaultSite site, std::string_view detail) {
  SiteState& state = sites_[static_cast<std::size_t>(site)];
  ++state.checks;
  for (RuleState& rule : state.rules) {
    const FaultRule& r = rule.rule;
    if (!r.apiFilter.empty() && !support::iequals(detail, r.apiFilter))
      continue;
    if (r.maxFires != 0 && rule.fires >= r.maxFires) continue;
    ++rule.eligibleChecks;
    if (r.everyNth > 1 && rule.eligibleChecks % r.everyNth != 0) continue;
    if (r.probability < 1.0 && !state.rng.chance(r.probability)) continue;
    ++rule.fires;
    noteFire(state, site, detail);
    return true;
  }
  return false;
}

void FaultInjector::noteFire(SiteState& site, FaultSite which,
                             std::string_view detail) {
  ++site.fires;
  ++totalFires_;
  if (metrics_ != nullptr) {
    if (site.firedCounter == nullptr)
      site.firedCounter =
          &metrics_->counter("faults.fired", faultSiteName(which));
    site.firedCounter->inc();
  }
  if (flight_ != nullptr) {
    obs::DecisionEvent e;
    e.timeMs = clock_ != nullptr ? clock_->nowMs() : 0;
    e.kind = obs::DecisionKind::kFaultInjected;
    e.api = faultSiteName(which);
    e.argument = obs::digestArgument(detail);
    e.value = std::to_string(site.fires);
    flight_->record(std::move(e));
  }
}

std::string FaultInjector::scheduleDigest() const {
  std::string out;
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    if (!armed_[i]) continue;
    if (!out.empty()) out += ' ';
    out += faultSiteName(static_cast<FaultSite>(i));
    out += '=';
    out += std::to_string(sites_[i].fires);
    out += '/';
    out += std::to_string(sites_[i].checks);
  }
  return out.empty() ? "disarmed" : out;
}

}  // namespace scarecrow::faults
