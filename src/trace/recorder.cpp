#include "trace/recorder.h"

namespace scarecrow::trace {

void Recorder::record(std::uint64_t timeMs, std::uint32_t pid,
                      const std::string& process, EventKind kind,
                      std::string target, std::string detail) {
  if (kind == EventKind::kApiCall && !captureApiCalls_) return;
  Event e;
  e.seq = nextSeq_++;
  e.timeMs = timeMs;
  e.pid = pid;
  e.process = process;
  e.kind = kind;
  e.target = std::move(target);
  e.detail = std::move(detail);
  trace_.events.push_back(std::move(e));
}

Trace Recorder::takeTrace() {
  Trace out = std::move(trace_);
  trace_ = Trace{};
  nextSeq_ = 0;
  return out;
}

void Recorder::clear() {
  trace_ = Trace{};
  nextSeq_ = 0;
}

}  // namespace scarecrow::trace
