// Trace collector: the evaluation proxy of the paper's Figure 3.
//
// Machines upload traces in real time ("to avoid possible corruption of
// runtime traces"); the collector pairs them by sample id and configuration
// so the analysis stage can diff with/without-Scarecrow executions.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "trace/analysis.h"
#include "trace/event.h"

namespace scarecrow::trace {

class Collector {
 public:
  void upload(Trace trace);

  const Trace* find(const std::string& sampleId,
                    bool scarecrowEnabled) const noexcept;

  /// All sample ids with at least one uploaded trace.
  std::vector<std::string> sampleIds() const;

  /// Judges a sample for which both configurations were uploaded.
  std::optional<DeactivationVerdict> judge(
      const std::string& sampleId, const std::string& sampleImage) const;

  std::size_t size() const noexcept;
  void clear();

 private:
  struct Pair {
    std::optional<Trace> without;
    std::optional<Trace> with;
  };
  std::map<std::string, Pair> traces_;
};

}  // namespace scarecrow::trace
