// MalGene-style evasion-signature extraction (Kirat & Vigna, CCS'15).
//
// MalGene compares the traces of one sample from two environments (one the
// sample evades, one where it detonates), aligns the event sequences, and
// reports the *first deviation point* — the system resource the sample
// probed just before the traces diverge. The paper uses MalGene both to
// label its 1,054-sample corpus as evasive and (Section II-C) as a source
// of new deceptive resources for Scarecrow; it also notes MalGene's caveat:
// only the FIRST deviating resource is reported even when the sample checks
// several.
#pragma once

#include <string>
#include <vector>

#include "trace/event.h"

namespace scarecrow::trace {

struct EvasionSignature {
  bool found = false;
  /// Index (in each trace) where the aligned traces first diverge.
  std::size_t divergenceA = 0;
  std::size_t divergenceB = 0;
  /// The last common event before divergence — the probed resource.
  std::string probedResource;
  /// The first events unique to each side after the split.
  std::string branchA;
  std::string branchB;
};

/// Aligns two traces by event signature (kind + target) and locates the
/// first *behavioural* deviation. Local event reordering (scheduler and
/// I/O jitter moves adjacent events around between runs) is resynchronized
/// over a small window before declaring a divergence, mirroring MalGene's
/// sequence-alignment step.
EvasionSignature extractEvasionSignature(const Trace& a, const Trace& b,
                                         std::size_t resyncWindow = 3);

/// Convenience: true when the two traces deviate at all — the evasive-label
/// criterion used to admit samples into the MalGene corpus.
bool tracesDeviate(const Trace& a, const Trace& b);

/// Whole-trace alignment statistics via unique-event anchors (signatures
/// occurring exactly once in each trace, matched by longest increasing
/// subsequence so ordering is preserved).
struct AlignmentStats {
  std::size_t eventsA = 0;
  std::size_t eventsB = 0;
  std::size_t anchors = 0;         // order-consistent unique matches
  double similarity = 0.0;         // 2*anchors / (uniqueA + uniqueB)
};

AlignmentStats alignTraces(const Trace& a, const Trace& b);

}  // namespace scarecrow::trace
