#include "trace/event.h"

namespace scarecrow::trace {

const char* eventKindName(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kProcessCreate: return "ProcessCreate";
    case EventKind::kProcessExit: return "ProcessExit";
    case EventKind::kThreadCreate: return "ThreadCreate";
    case EventKind::kFileCreate: return "FileCreate";
    case EventKind::kFileWrite: return "FileWrite";
    case EventKind::kFileRead: return "FileRead";
    case EventKind::kFileDelete: return "FileDelete";
    case EventKind::kRegOpenKey: return "RegOpenKey";
    case EventKind::kRegQueryValue: return "RegQueryValue";
    case EventKind::kRegSetValue: return "RegSetValue";
    case EventKind::kRegCreateKey: return "RegCreateKey";
    case EventKind::kRegDeleteKey: return "RegDeleteKey";
    case EventKind::kDnsQuery: return "DnsQuery";
    case EventKind::kHttpRequest: return "HttpRequest";
    case EventKind::kTcpConnect: return "TcpConnect";
    case EventKind::kDllLoad: return "DllLoad";
    case EventKind::kDllUnload: return "DllUnload";
    case EventKind::kApiCall: return "ApiCall";
    case EventKind::kAlert: return "Alert";
  }
  return "?";
}

std::string describe(const Event& event) {
  std::string out = eventKindName(event.kind);
  out += ' ';
  out += event.process;
  out += " -> ";
  out += event.target;
  if (!event.detail.empty()) {
    out += " [";
    out += event.detail;
    out += ']';
  }
  return out;
}

}  // namespace scarecrow::trace
