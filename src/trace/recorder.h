// Trace recorder: the in-machine analogue of the Fibratus agent.
//
// The machine holds exactly one Recorder; winsys components push events into
// it as side effects of guest activity. The evaluation harness swaps fresh
// recorders per run (the paper uploads traces to a proxy in real time; we
// model the proxy as the Collector in collector.h).
#pragma once

#include <cstdint>
#include <string>

#include "trace/event.h"

namespace scarecrow::trace {

class Recorder {
 public:
  Recorder() = default;

  /// Appends an event, stamping sequence number (time is caller-provided so
  /// the machine clock stays the single source of truth).
  void record(std::uint64_t timeMs, std::uint32_t pid,
              const std::string& process, EventKind kind, std::string target,
              std::string detail = {});

  /// Enables/disables capture of kApiCall events (they are voluminous; the
  /// kernel-activity categories the paper analyses are always captured).
  void setCaptureApiCalls(bool on) noexcept { captureApiCalls_ = on; }
  bool captureApiCalls() const noexcept { return captureApiCalls_; }

  const Trace& trace() const noexcept { return trace_; }
  Trace takeTrace();

  void setSampleId(std::string id) { trace_.sampleId = std::move(id); }
  void setScarecrowEnabled(bool on) noexcept {
    trace_.scarecrowEnabled = on;
  }

  void clear();

 private:
  Trace trace_;
  std::uint64_t nextSeq_ = 0;
  bool captureApiCalls_ = false;
};

}  // namespace scarecrow::trace
