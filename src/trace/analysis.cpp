#include "trace/analysis.h"

#include <algorithm>

#include "support/strings.h"

namespace scarecrow::trace {
namespace {

bool isSignificantKind(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kProcessCreate:
    case EventKind::kFileCreate:
    case EventKind::kFileWrite:
    case EventKind::kFileDelete:
    case EventKind::kRegSetValue:
    case EventKind::kRegCreateKey:
    case EventKind::kRegDeleteKey:
      return true;
    default:
      return false;
  }
}

std::string canonical(const Event& e) {
  std::string out = eventKindName(e.kind);
  out += ':';
  out += support::toLower(e.target);
  return out;
}

}  // namespace

std::set<std::string> significantActivities(const Trace& trace,
                                            const std::string& sampleImage) {
  std::set<std::string> out;
  for (const Event& e : trace.events) {
    if (!isSignificantKind(e.kind)) continue;
    if ((e.kind == EventKind::kProcessCreate ||
         e.kind == EventKind::kFileDelete) &&
        support::iequals(support::baseName(e.target), sampleImage))
      continue;  // self-spawn / self-delete: evasion mechanics, not payload
    out.insert(canonical(e));
  }
  return out;
}

std::size_t selfSpawnCount(const Trace& trace,
                           const std::string& sampleImage) {
  std::size_t n = 0;
  for (const Event& e : trace.events) {
    if (e.kind != EventKind::kProcessCreate) continue;
    if (support::iequals(support::baseName(e.target), sampleImage)) ++n;
  }
  return n;
}

bool usedIsDebuggerPresent(const Trace& trace) {
  for (const Event& e : trace.events) {
    if ((e.kind == EventKind::kAlert || e.kind == EventKind::kApiCall) &&
        (support::icontains(e.target, "IsDebuggerPresent") ||
         support::icontains(e.detail, "IsDebuggerPresent")))
      return true;
  }
  return false;
}

std::string firstTrigger(const Trace& trace) {
  for (const Event& e : trace.events) {
    if (e.kind == EventKind::kAlert &&
        support::istartsWith(e.target, "fingerprint"))
      return e.detail;
  }
  return {};
}

const char* deactivationReasonName(DeactivationReason reason) noexcept {
  switch (reason) {
    case DeactivationReason::kNotDeactivated: return "not-deactivated";
    case DeactivationReason::kSelfSpawnLoop: return "self-spawn-loop";
    case DeactivationReason::kSuppressedActivities:
      return "suppressed-activities";
    case DeactivationReason::kIndeterminate: return "indeterminate";
  }
  return "?";
}

DeactivationVerdict judgeDeactivation(const Trace& withoutScarecrow,
                                      const Trace& withScarecrow,
                                      const std::string& sampleImage,
                                      std::size_t selfSpawnThreshold) {
  DeactivationVerdict verdict;
  verdict.selfSpawnsWithScarecrow =
      selfSpawnCount(withScarecrow, sampleImage);
  verdict.isDebuggerPresentUsed = usedIsDebuggerPresent(withScarecrow);
  verdict.firstTrigger = firstTrigger(withScarecrow);

  const auto sigWithout = significantActivities(withoutScarecrow, sampleImage);
  const auto sigWith = significantActivities(withScarecrow, sampleImage);

  for (const auto& activity : sigWithout)
    if (sigWith.find(activity) == sigWith.end())
      verdict.suppressedActivities.push_back(activity);
  for (const auto& activity : sigWith)
    if (sigWithout.find(activity) != sigWithout.end())
      verdict.leakedActivities.push_back(activity);

  if (verdict.selfSpawnsWithScarecrow > selfSpawnThreshold) {
    verdict.deactivated = true;
    verdict.reason = DeactivationReason::kSelfSpawnLoop;
    return verdict;
  }
  if (sigWithout.empty()) {
    // The sample does nothing observable even when unconstrained (Selfdel):
    // effectiveness cannot be determined.
    verdict.reason = DeactivationReason::kIndeterminate;
    return verdict;
  }
  if (!verdict.suppressedActivities.empty() &&
      verdict.leakedActivities.empty()) {
    verdict.deactivated = true;
    verdict.reason = DeactivationReason::kSuppressedActivities;
    return verdict;
  }
  verdict.reason = DeactivationReason::kNotDeactivated;
  return verdict;
}

}  // namespace scarecrow::trace
