#include "trace/serialize.h"

#include <charconv>

#include "support/strings.h"

namespace scarecrow::trace {
namespace {

constexpr const char* kHeaderMagic = "#scarecrow-trace v1";

std::optional<EventKind> kindFromName(std::string_view name) {
  for (std::size_t k = 0; k < kEventKindCount; ++k)
    if (name == eventKindName(static_cast<EventKind>(k)))
      return static_cast<EventKind>(k);
  return std::nullopt;
}

template <typename T>
bool parseNumber(std::string_view text, T& out) {
  const auto result =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return result.ec == std::errc{} &&
         result.ptr == text.data() + text.size();
}

}  // namespace

std::string escapeField(const std::string& field) {
  std::string out;
  out.reserve(field.size());
  for (char c : field) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string unescapeField(const std::string& field) {
  std::string out;
  out.reserve(field.size());
  for (std::size_t i = 0; i < field.size(); ++i) {
    if (field[i] != '\\' || i + 1 == field.size()) {
      out.push_back(field[i]);
      continue;
    }
    switch (field[++i]) {
      case '\\': out.push_back('\\'); break;
      case 't': out.push_back('\t'); break;
      case 'n': out.push_back('\n'); break;
      default:  // unknown escape: keep verbatim
        out.push_back('\\');
        out.push_back(field[i]);
    }
  }
  return out;
}

std::string serializeTrace(const Trace& trace) {
  std::string out = kHeaderMagic;
  out += ' ';
  out += escapeField(trace.sampleId);
  out += ' ';
  out += trace.scarecrowEnabled ? '1' : '0';
  out += '\n';
  for (const Event& e : trace.events) {
    out += std::to_string(e.seq);
    out += '\t';
    out += std::to_string(e.timeMs);
    out += '\t';
    out += std::to_string(e.pid);
    out += '\t';
    out += escapeField(e.process);
    out += '\t';
    out += eventKindName(e.kind);
    out += '\t';
    out += escapeField(e.target);
    out += '\t';
    out += escapeField(e.detail);
    out += '\n';
  }
  return out;
}

std::optional<Trace> deserializeTrace(const std::string& text) {
  const auto lines = support::split(text, '\n');
  if (lines.empty()) return std::nullopt;

  // Header: "#scarecrow-trace v1 <sampleId> <0|1>"
  const std::string& header = lines[0];
  if (!support::istartsWith(header, kHeaderMagic)) return std::nullopt;
  const auto headerFields = support::split(header, ' ');
  if (headerFields.size() != 4) return std::nullopt;
  Trace trace;
  trace.sampleId = unescapeField(headerFields[2]);
  if (headerFields[3] != "0" && headerFields[3] != "1") return std::nullopt;
  trace.scarecrowEnabled = headerFields[3] == "1";

  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;  // trailing newline
    const auto fields = support::split(lines[i], '\t');
    if (fields.size() != 7) return std::nullopt;
    Event e;
    if (!parseNumber(fields[0], e.seq)) return std::nullopt;
    if (!parseNumber(fields[1], e.timeMs)) return std::nullopt;
    if (!parseNumber(fields[2], e.pid)) return std::nullopt;
    e.process = unescapeField(fields[3]);
    const auto kind = kindFromName(fields[4]);
    if (!kind.has_value()) return std::nullopt;
    e.kind = *kind;
    e.target = unescapeField(fields[5]);
    e.detail = unescapeField(fields[6]);
    trace.events.push_back(std::move(e));
  }
  return trace;
}

}  // namespace scarecrow::trace
