#include "trace/collector.h"

namespace scarecrow::trace {

void Collector::upload(Trace trace) {
  Pair& pair = traces_[trace.sampleId];
  if (trace.scarecrowEnabled)
    pair.with = std::move(trace);
  else
    pair.without = std::move(trace);
}

const Trace* Collector::find(const std::string& sampleId,
                             bool scarecrowEnabled) const noexcept {
  auto it = traces_.find(sampleId);
  if (it == traces_.end()) return nullptr;
  const auto& slot = scarecrowEnabled ? it->second.with : it->second.without;
  return slot.has_value() ? &*slot : nullptr;
}

std::vector<std::string> Collector::sampleIds() const {
  std::vector<std::string> out;
  out.reserve(traces_.size());
  for (const auto& [id, pair] : traces_) out.push_back(id);
  return out;
}

std::optional<DeactivationVerdict> Collector::judge(
    const std::string& sampleId, const std::string& sampleImage) const {
  auto it = traces_.find(sampleId);
  if (it == traces_.end() || !it->second.without || !it->second.with)
    return std::nullopt;
  return judgeDeactivation(*it->second.without, *it->second.with,
                           sampleImage);
}

std::size_t Collector::size() const noexcept {
  std::size_t n = 0;
  for (const auto& [id, pair] : traces_)
    n += (pair.without ? 1 : 0) + (pair.with ? 1 : 0);
  return n;
}

void Collector::clear() { traces_.clear(); }

}  // namespace scarecrow::trace
