#include "trace/malgene.h"

#include <algorithm>
#include <map>

#include "support/strings.h"

namespace scarecrow::trace {
namespace {

std::string signatureOf(const Event& e) {
  std::string out = eventKindName(e.kind);
  out += ':';
  out += support::toLower(e.target);
  return out;
}

std::vector<std::string> signatures(const Trace& t) {
  std::vector<std::string> out;
  out.reserve(t.events.size());
  for (const Event& e : t.events) {
    if (e.kind == EventKind::kAlert) continue;  // engine-side, not guest
    out.push_back(signatureOf(e));
  }
  return out;
}

/// Attempts to resynchronize sa[i..] with sb[j..] after a mismatch: looks
/// for a position pair within `window` where the signatures agree again and
/// the skipped events of one side all appear among the skipped events of
/// the other (pure reordering, not new behaviour).
bool resync(const std::vector<std::string>& sa,
            const std::vector<std::string>& sb, std::size_t i, std::size_t j,
            std::size_t window, std::size_t& outI, std::size_t& outJ) {
  for (std::size_t da = 0; da <= window; ++da) {
    for (std::size_t db = 0; db <= window; ++db) {
      if (da == 0 && db == 0) continue;
      const std::size_t ni = i + da;
      const std::size_t nj = j + db;
      // Two valid resync points: a common signature ahead in both traces,
      // or both traces ending (a trailing swap with no anchor after it).
      const bool bothEnd = ni == sa.size() && nj == sb.size();
      if (!bothEnd && (ni >= sa.size() || nj >= sb.size())) continue;
      if (!bothEnd && sa[ni] != sb[nj]) continue;
      // The skipped slices must be permutations of each other.
      std::vector<std::string> skippedA(sa.begin() + static_cast<long>(i),
                                        sa.begin() + static_cast<long>(ni));
      std::vector<std::string> skippedB(sb.begin() + static_cast<long>(j),
                                        sb.begin() + static_cast<long>(nj));
      std::sort(skippedA.begin(), skippedA.end());
      std::sort(skippedB.begin(), skippedB.end());
      if (skippedA == skippedB) {
        outI = ni;
        outJ = nj;
        return true;
      }
    }
  }
  return false;
}

}  // namespace

EvasionSignature extractEvasionSignature(const Trace& a, const Trace& b,
                                         std::size_t resyncWindow) {
  EvasionSignature sig;
  const auto sa = signatures(a);
  const auto sb = signatures(b);

  // Two-cursor walk with bounded resynchronization: identical behaviour up
  // to jitter, until the decisive probe splits the executions.
  std::size_t i = 0, j = 0;
  std::string lastCommon;
  while (i < sa.size() && j < sb.size()) {
    if (sa[i] == sb[j]) {
      lastCommon = sa[i];
      ++i;
      ++j;
      continue;
    }
    std::size_t ni = 0, nj = 0;
    if (resyncWindow > 0 && resync(sa, sb, i, j, resyncWindow, ni, nj)) {
      // Pure local reordering: skip over it without recording a deviation.
      i = ni;
      j = nj;
      continue;
    }
    break;
  }

  if (i == sa.size() && j == sb.size()) {
    sig.found = false;  // behaviourally identical traces
    return sig;
  }

  sig.found = true;
  sig.divergenceA = i;
  sig.divergenceB = j;
  sig.probedResource = lastCommon;
  if (i < sa.size()) sig.branchA = sa[i];
  if (j < sb.size()) sig.branchB = sb[j];

  // MalGene caveat reproduced deliberately: we report only the FIRST
  // deviation-causing resource; later probes in multi-technique samples are
  // invisible to this analysis (paper Section II-C).
  return sig;
}

bool tracesDeviate(const Trace& a, const Trace& b) {
  return extractEvasionSignature(a, b).found;
}

AlignmentStats alignTraces(const Trace& a, const Trace& b) {
  AlignmentStats stats;
  const auto sa = signatures(a);
  const auto sb = signatures(b);
  stats.eventsA = sa.size();
  stats.eventsB = sb.size();

  // Unique-signature positions per trace.
  std::map<std::string, int> countA, countB;
  for (const auto& s : sa) ++countA[s];
  for (const auto& s : sb) ++countB[s];
  std::map<std::string, std::size_t> posB;
  for (std::size_t j = 0; j < sb.size(); ++j)
    if (countB[sb[j]] == 1) posB[sb[j]] = j;

  std::size_t uniqueA = 0, uniqueB = 0;
  for (const auto& [s, n] : countA)
    if (n == 1) ++uniqueA;
  for (const auto& [s, n] : countB)
    if (n == 1) ++uniqueB;

  // Candidate anchor pairs in A-order; keep the longest increasing
  // subsequence of B positions so anchors respect both orders.
  std::vector<std::size_t> bPositions;
  for (const auto& s : sa) {
    if (countA[s] != 1) continue;
    auto it = posB.find(s);
    if (it != posB.end()) bPositions.push_back(it->second);
  }
  std::vector<std::size_t> tails;  // patience-style LIS
  for (std::size_t p : bPositions) {
    auto it = std::lower_bound(tails.begin(), tails.end(), p);
    if (it == tails.end())
      tails.push_back(p);
    else
      *it = p;
  }
  stats.anchors = tails.size();
  const std::size_t denom = uniqueA + uniqueB;
  stats.similarity =
      denom == 0 ? (sa.empty() && sb.empty() ? 1.0 : 0.0)
                 : 2.0 * static_cast<double>(stats.anchors) /
                       static_cast<double>(denom);
  return stats;
}

}  // namespace scarecrow::trace
