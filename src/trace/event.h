// Kernel-activity event model.
//
// The paper traces Windows kernel activity with Fibratus: process/thread
// creation and termination, file-system I/O, registry operations, network
// activity, and DLL load/unload. Every evaluation verdict in Section IV is
// computed over these traces (deactivation detection, self-spawn loops,
// significant-activity diffing), so the event model is the contract between
// the simulated machine and the analysis pipeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace scarecrow::trace {

enum class EventKind : std::uint8_t {
  kProcessCreate,
  kProcessExit,
  kThreadCreate,
  kFileCreate,
  kFileWrite,
  kFileRead,
  kFileDelete,
  kRegOpenKey,
  kRegQueryValue,
  kRegSetValue,
  kRegCreateKey,
  kRegDeleteKey,
  kDnsQuery,
  kHttpRequest,
  kTcpConnect,
  kDllLoad,
  kDllUnload,
  kApiCall,    // user-level API invocation (used for trigger attribution)
  kAlert,      // deception-engine alert (fingerprint attempt, self-spawn)
};

/// Number of event kinds; keep in sync with the last enumerator. Code that
/// iterates kinds (serialization, name tables, tests) uses this instead of
/// hard-coding the last member.
inline constexpr std::size_t kEventKindCount =
    static_cast<std::size_t>(EventKind::kAlert) + 1;

/// Exhaustive over EventKind: the switch has no default, and the build
/// compiles with -Werror=switch, so adding a kind without naming it is a
/// compile error rather than a fallthrough string.
const char* eventKindName(EventKind kind) noexcept;

/// One kernel event. `target` is the primary object (path, key, domain,
/// child image name); `detail` carries secondary data (value name, bytes,
/// resolved IP, API argument).
struct Event {
  std::uint64_t seq = 0;
  std::uint64_t timeMs = 0;
  std::uint32_t pid = 0;
  std::string process;  // image name of the acting process
  EventKind kind = EventKind::kApiCall;
  std::string target;
  std::string detail;
};

/// A complete recorded execution trace for one run of one sample.
struct Trace {
  std::string sampleId;
  bool scarecrowEnabled = false;
  std::vector<Event> events;

  std::size_t size() const noexcept { return events.size(); }
  bool empty() const noexcept { return events.empty(); }
};

/// Compact single-line rendering used in logs and the MalGene alignment.
std::string describe(const Event& event);

}  // namespace scarecrow::trace
