// Trace serialization: newline-delimited records for uploading traces from
// agents to the collector proxy and for archiving runs (the paper streams
// traces off-box "in real time to avoid possible corruption").
//
// Format (one event per line, tab-separated, header line first):
//   #scarecrow-trace v1 <sampleId> <0|1 scarecrow>
//   seq \t timeMs \t pid \t process \t kind \t target \t detail
// Tabs/newlines/backslashes inside fields are escaped (\t, \n, \\).
#pragma once

#include <optional>
#include <string>

#include "trace/event.h"

namespace scarecrow::trace {

std::string serializeTrace(const Trace& trace);

/// Parses a serialized trace; returns nullopt on malformed input (bad
/// header, wrong field count, non-numeric fields, unknown event kind).
std::optional<Trace> deserializeTrace(const std::string& text);

/// Field-level escaping helpers (exposed for tests).
std::string escapeField(const std::string& field);
std::string unescapeField(const std::string& field);

}  // namespace scarecrow::trace
