// Trace analysis: the paper's Section IV evaluation methodology.
//
// Deactivation of an evasive sample is decided exactly the way the paper
// decides it, from kernel traces alone:
//  1. *Self-spawn loop*: with Scarecrow enabled the sample re-spawns itself
//     more than 10 times (IsDebuggerPresent-style evasion turned into an
//     everlasting loop that never reaches the payload).
//  2. *Suppressed activities*: significant activities (new processes, file
//     writes, registry modifications) present in the trace WITHOUT
//     Scarecrow but absent in the trace WITH Scarecrow.
//  3. *Indeterminate*: the sample shows no significant activity even
//     without Scarecrow (the Selfdel family), so effectiveness cannot be
//     established.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "trace/event.h"

namespace scarecrow::trace {

/// A significant activity: canonical "kind:target" string. Process creates
/// of the sample's own image are excluded (they are the self-spawn signal,
/// not a payload).
std::set<std::string> significantActivities(const Trace& trace,
                                            const std::string& sampleImage);

/// Number of times the sample spawned its own image.
std::size_t selfSpawnCount(const Trace& trace, const std::string& sampleImage);

/// True if the trace shows the sample calling IsDebuggerPresent (via the
/// deception engine's fingerprint alerts or captured API calls).
bool usedIsDebuggerPresent(const Trace& trace);

/// The first deception-engine fingerprint alert in the trace — the paper's
/// Table I "Trigger" column. Empty if none.
std::string firstTrigger(const Trace& trace);

enum class DeactivationReason {
  kNotDeactivated,
  kSelfSpawnLoop,
  kSuppressedActivities,
  kIndeterminate,
};

const char* deactivationReasonName(DeactivationReason reason) noexcept;

struct DeactivationVerdict {
  bool deactivated = false;
  DeactivationReason reason = DeactivationReason::kNotDeactivated;
  std::size_t selfSpawnsWithScarecrow = 0;
  bool isDebuggerPresentUsed = false;
  /// Payload activities observed without Scarecrow but suppressed with it.
  std::vector<std::string> suppressedActivities;
  /// Payload activities that leaked through despite Scarecrow.
  std::vector<std::string> leakedActivities;
  std::string firstTrigger;
};

/// Applies the paper's decision procedure to a (without, with) trace pair.
DeactivationVerdict judgeDeactivation(const Trace& withoutScarecrow,
                                      const Trace& withScarecrow,
                                      const std::string& sampleImage,
                                      std::size_t selfSpawnThreshold = 10);

}  // namespace scarecrow::trace
