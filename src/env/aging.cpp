#include "env/aging.h"

#include <string>

#include "winsys/registry.h"

namespace scarecrow::env {

using support::Rng;
using winsys::Machine;
using winsys::RegValue;

namespace {

/// Scales a monthly accumulation rate into a concrete count with ±25%
/// dispersion. Returns at least `floor`.
std::uint64_t scale(double perMonth, const AgeProfile& p, Rng& rng,
                    std::uint64_t floor = 0) {
  const double mean = perMonth * p.months * p.intensity;
  const double jitter = 0.75 + 0.5 * rng.uniform();
  const auto v = static_cast<std::uint64_t>(mean * jitter);
  return v > floor ? v : floor;
}

const char* kProgramNames[] = {
    "7-Zip",      "Chrome",     "Firefox",    "VLC",        "Notepad++",
    "Dropbox",    "Spotify",    "Slack",      "Zoom",       "WinRAR",
    "Python",     "Git",        "NodeJS",     "TeamViewer", "Skype",
    "iTunes",     "Steam",      "Audacity",   "GIMP",       "Office",
    "Acrobat",    "Java",       "PuTTY",      "FileZilla",  "Thunderbird",
};

const char* kEventSources[] = {
    "Service Control Manager", "Kernel-General",  "Kernel-Power",
    "EventLog",                "Winlogon",        "Application Error",
    "Windows Update Agent",    "DNS Client",      "Time-Service",
    "Dhcp",                    "Disk",            "Ntfs",
};

const char* kDomains[] = {
    "www.google.com",     "mail.google.com",   "www.youtube.com",
    "www.facebook.com",   "outlook.office.com", "github.com",
    "stackoverflow.com",  "www.amazon.com",    "news.ycombinator.com",
    "www.reddit.com",     "slack.com",         "weather.com",
};

}  // namespace

void applyAging(Machine& machine, const AgeProfile& profile, Rng& rng) {
  winsys::Registry& reg = machine.registry();
  winsys::Vfs& fs = machine.vfs();
  const std::string user = machine.sysinfo().userName;
  const std::string userRoot = "C:\\Users\\" + user;

  // ---- registry artifacts (Table III's largest category) -----------------
  // Hive bulk grows with every installation/update (~6 MB per active month).
  reg.addOpaqueBytes(scale(6.0 * (1 << 20), profile, rng));
  const std::uint64_t installed = scale(1.5, profile, rng, 2);
  auto& uninstall =
      reg.ensureKey("SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Uninstall");
  auto& appPaths =
      reg.ensureKey("SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\App Paths");
  for (std::uint64_t i = 0; i < installed; ++i) {
    const std::string name =
        kProgramNames[i % std::size(kProgramNames)] +
        (i >= std::size(kProgramNames) ? "-" + std::to_string(i) : "");
    uninstall.ensureChild(name).setValue("DisplayName", RegValue::sz(name));
    appPaths.ensureChild(name + ".exe")
        .setValue("", RegValue::sz("C:\\Program Files\\" + name));
    fs.makeDirs("C:\\Program Files\\" + name);
    fs.createFile("C:\\Program Files\\" + name + "\\" + name + ".exe",
                  (5 + rng.below(40)) << 20);
  }

  auto& sharedDlls =
      reg.ensureKey("SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\SharedDlls");
  const std::uint64_t dlls = scale(12, profile, rng, 8);
  for (std::uint64_t i = 0; i < dlls; ++i)
    sharedDlls.setValue(
        "C:\\Windows\\System32\\shared_" + std::to_string(i) + ".dll",
        RegValue::dword(static_cast<std::uint32_t>(1 + rng.below(5))));

  auto& activeSetup =
      reg.ensureKey("SOFTWARE\\Microsoft\\Active Setup\\Installed Components");
  const std::uint64_t setup = scale(2.5, profile, rng, 4);
  for (std::uint64_t i = 0; i < setup; ++i)
    activeSetup.ensureChild("{AC" + std::to_string(1000 + i) + "-GUID}");

  auto& userAssist = reg.ensureKey(
      "HKCU\\Software\\Microsoft\\Windows\\CurrentVersion\\Explorer\\"
      "UserAssist\\{CEBFF5CD-ACE2-4F4F-9178-9926F41749EA}\\Count");
  const std::uint64_t assists = scale(20, profile, rng);
  for (std::uint64_t i = 0; i < assists; ++i)
    userAssist.setValue("prog" + std::to_string(i),
                        RegValue::dword(static_cast<std::uint32_t>(
                            1 + rng.below(200))));

  auto& shim = reg.ensureKey(
      "SYSTEM\\CurrentControlSet\\Control\\Session Manager\\AppCompatCache");
  shim.setValue("AppCompatCache",
                RegValue::binary(static_cast<std::uint32_t>(
                    scale(3000, profile, rng, 1024))));
  shim.setValue("CacheEntryCount",
                RegValue::dword(static_cast<std::uint32_t>(
                    scale(35, profile, rng, 16))));

  auto& mui = reg.ensureKey(
      "HKCU\\Software\\Classes\\Local Settings\\Software\\Microsoft\\"
      "Windows\\Shell\\MuiCache");
  const std::uint64_t muiEntries = scale(15, profile, rng, 4);
  for (std::uint64_t i = 0; i < muiEntries; ++i)
    mui.setValue("app" + std::to_string(i) + ".exe.FriendlyAppName",
                 RegValue::sz("Application " + std::to_string(i)));

  auto& fwRules = reg.ensureKey(
      "SYSTEM\\ControlSet001\\Services\\SharedAccess\\Parameters\\"
      "FirewallPolicy\\FirewallRules");
  const std::uint64_t rules = scale(8, profile, rng, 30);
  for (std::uint64_t i = 0; i < rules; ++i)
    fwRules.setValue("{FW-" + std::to_string(i) + "}",
                     RegValue::sz("v2.10|Action=Allow|"));

  auto& usbstor =
      reg.ensureKey("SYSTEM\\CurrentControlSet\\Services\\UsbStor");
  const std::uint64_t usb = scale(0.8, profile, rng);
  for (std::uint64_t i = 0; i < usb; ++i)
    usbstor.ensureChild("Disk&Ven_Kingston&Prod_" + std::to_string(i));

  auto& devCls =
      reg.ensureKey("SYSTEM\\CurrentControlSet\\Control\\DeviceClasses");
  const std::uint64_t devices = scale(6, profile, rng, 10);
  for (std::uint64_t i = 0; i < devices; ++i)
    devCls.ensureChild("{dev-class-" + std::to_string(i) + "}");

  auto& run = reg.ensureKey("SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Run");
  const std::uint64_t autoruns = scale(0.7, profile, rng, 1);
  for (std::uint64_t i = 0; i < autoruns && i < installed; ++i) {
    const std::string name = kProgramNames[i % std::size(kProgramNames)];
    run.setValue(name,
                 RegValue::sz("C:\\Program Files\\" + name + "\\" + name +
                              ".exe /background"));
  }

  // ---- event log -----------------------------------------------------------
  winsys::EventLog& log = machine.eventlog();
  const std::uint64_t events = scale(4000, profile, rng, 50);
  for (std::uint64_t i = 0; i < events; ++i)
    log.append(kEventSources[rng.below(std::size(kEventSources))],
               static_cast<std::uint32_t>(7000 + rng.below(40)), i * 977);

  // ---- filesystem artifacts -------------------------------------------------
  const std::uint64_t prefetch = scale(10, profile, rng, 3);
  for (std::uint64_t i = 0; i < prefetch && i < 128; ++i)
    fs.createFile("C:\\Windows\\Prefetch\\APP" + std::to_string(i) +
                      "-1A2B3C4D.pf",
                  40 << 10);
  const std::uint64_t temp = scale(40, profile, rng);
  for (std::uint64_t i = 0; i < temp && i < 512; ++i)
    fs.createFile(userRoot + "\\AppData\\Local\\Temp\\tmp" +
                      rng.hexString(6) + ".tmp",
                  rng.below(1 << 20));
  const std::uint64_t docs = scale(12, profile, rng);
  for (std::uint64_t i = 0; i < docs && i < 256; ++i)
    fs.createFile(userRoot + "\\Documents\\doc_" + std::to_string(i) +
                      ".docx",
                  rng.below(4 << 20));
  const std::uint64_t downloads = scale(8, profile, rng);
  for (std::uint64_t i = 0; i < downloads && i < 256; ++i)
    fs.createFile(userRoot + "\\Downloads\\dl_" + std::to_string(i) + ".bin",
                  rng.below(32 << 20));
  const std::uint64_t desktop = scale(1.5, profile, rng);
  for (std::uint64_t i = 0; i < desktop && i < 48; ++i)
    fs.createFile(userRoot + "\\Desktop\\shortcut_" + std::to_string(i) +
                      ".lnk",
                  2 << 10);
  fs.makeDirs(userRoot + "\\AppData\\Local\\Microsoft\\Windows\\Explorer");
  fs.createFile(
      userRoot + "\\AppData\\Local\\Microsoft\\Windows\\Explorer\\"
                 "thumbcache_256.db",
      scale(2, profile, rng) << 20);

  // ---- browser artifacts -----------------------------------------------------
  const std::string chrome =
      userRoot + "\\AppData\\Local\\Google\\Chrome\\User Data\\Default";
  fs.makeDirs(chrome);
  fs.createFile(chrome + "\\History", scale(3, profile, rng, 1) << 20);
  fs.createFile(chrome + "\\Cookies", scale(1, profile, rng, 1) << 20);
  fs.createFile(chrome + "\\Bookmarks", scale(4, profile, rng, 1) << 10);
  fs.createFile(chrome + "\\Favicons", scale(1, profile, rng, 1) << 20);
  const std::uint64_t extensions = scale(0.6, profile, rng);
  for (std::uint64_t i = 0; i < extensions && i < 24; ++i)
    fs.makeDirs(chrome + "\\Extensions\\ext" + std::to_string(i));
  auto& typedUrls =
      reg.ensureKey("HKCU\\Software\\Microsoft\\Internet Explorer\\TypedURLs");
  const std::uint64_t typed = scale(5, profile, rng);
  for (std::uint64_t i = 0; i < typed && i < 50; ++i)
    typedUrls.setValue("url" + std::to_string(i + 1),
                       RegValue::sz(std::string("http://") +
                                    kDomains[rng.below(std::size(kDomains))]));

  // ---- network artifacts -------------------------------------------------------
  winsys::Network& net = machine.network();
  const std::uint64_t cached = scale(25, profile, rng, 1);
  for (std::uint64_t i = 0; i < cached && i < 400; ++i) {
    const char* domain = kDomains[rng.below(std::size(kDomains))];
    net.seedCacheEntry(domain,
                       std::to_string(10 + rng.below(200)) + "." +
                           std::to_string(rng.below(255)) + ".1.1",
                       i * 997);
  }
  auto& wifi = reg.ensureKey(
      "SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion\\NetworkList\\"
      "Profiles");
  const std::uint64_t profiles = scale(0.5, profile, rng);
  for (std::uint64_t i = 0; i < profiles && i < 16; ++i)
    wifi.ensureChild("{net-profile-" + std::to_string(i) + "}");
  auto& arp = reg.ensureKey("SOFTWARE\\Scarecrow\\Sim\\ArpCache");
  const std::uint64_t arpEntries = scale(3, profile, rng, 1);
  for (std::uint64_t i = 0; i < arpEntries && i < 64; ++i)
    arp.setValue("192.168.1." + std::to_string(2 + i),
                 RegValue::sz("aa:bb:cc:dd:ee:" + std::to_string(10 + i)));
  auto& shares = reg.ensureKey(
      "SYSTEM\\CurrentControlSet\\Services\\LanmanServer\\Shares");
  const std::uint64_t shareCount = scale(0.3, profile, rng);
  for (std::uint64_t i = 0; i < shareCount && i < 8; ++i)
    shares.setValue("Share" + std::to_string(i), RegValue::sz("path=C:\\"));
}

}  // namespace scarecrow::env
