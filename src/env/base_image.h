// Base Windows 7 image shared by every simulated machine.
//
// Installs the directory skeleton, core registry layout, standard system
// processes and services, and a boot-time event-log prefix. Environment
// builders (end-user, bare-metal sandbox, VM sandbox) start from this image
// and then diverge — which is exactly the premise of both the evasion arms
// race and the wear-and-tear fingerprinting work: the *delta* from a stock
// install is what identifies an environment.
#pragma once

#include "winsys/machine.h"

namespace scarecrow::env {

struct BaseImageOptions {
  std::uint64_t diskTotalBytes = 500ULL << 30;
  std::uint64_t diskFreeBytes = 350ULL << 30;
  std::uint64_t ramBytes = 16ULL << 30;
  std::uint32_t cpuCores = 8;
  std::string computerName = "DESKTOP-4C2A";
  std::string userName = "alice";
  std::uint64_t uptimeMs = 86'400'000;  // 1 day
};

/// Populates `machine` with a stock Windows 7 SP1 x64 install.
void installBaseImage(winsys::Machine& machine, const BaseImageOptions& options);

}  // namespace scarecrow::env
