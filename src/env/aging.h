// Wear-and-tear aging simulator (Miramirkhani et al., IEEE S&P 2017).
//
// Real end-user systems accumulate usage artifacts — installed programs,
// shared DLL refcounts, shim-cache entries, DNS cache, event-log volume —
// that pristine analysis images lack. The paper's Section IV-C2 defends
// against classifiers built on 44 such artifacts; this simulator *produces*
// the artifacts so that (a) the end-user machine measures as aged, (b) the
// sandboxes measure as pristine, and (c) Scarecrow's deceptive values
// (Table III) can be validated against realistic baselines.
//
// AgeProfile.months scales every artifact through plausible accumulation
// rates; a seeded Rng adds dispersion so the decision-tree training set
// (fingerprint/weartear.h) is not degenerate.
#pragma once

#include <cstdint>

#include "support/rng.h"
#include "winsys/machine.h"

namespace scarecrow::env {

struct AgeProfile {
  /// Months of active use; 0 == freshly installed image.
  double months = 12.0;
  /// Relative usage intensity (office desktop ~1.0, power user ~2.0).
  double intensity = 1.0;
};

/// Applies usage artifacts to a machine in place. Idempotent only in the
/// sense of "more aging adds more artifacts"; call once per machine.
void applyAging(winsys::Machine& machine, const AgeProfile& profile,
                support::Rng& rng);

}  // namespace scarecrow::env
