// Concrete execution environments of the paper's evaluation (Table II,
// Figure 3, Section II-C).
//
//  * End-user machine  — actively used Windows 7 desktop; VMware Workstation
//    installed "due to work requirements" (the paper's own quirk, which is
//    why the VMware-device and rdtsc_diff_vmexit Pafish checks fire on it).
//  * Bare-metal sandbox — pristine analysis box from the Figure 3 cluster:
//    no hypervisor, no user activity, agent-launched samples, Deep Freeze
//    reset between runs (Machine::snapshot/restore).
//  * VirtualBox+Cuckoo sandbox — Cuckoo 2.0.3 guest on VirtualBox: small
//    disk/RAM/1 core, hypervisor CPUID leaves, VBox guest additions, the
//    cuckoomon usermode monitor (hooks ShellExecuteEx). The `hardened`
//    variant models the paper's extra transparency work for the
//    with-Scarecrow runs: CPUID results modified, MAC randomized,
//    VBox kernel-device artifacts hidden.
//  * Public sandboxes (VirusTotal / Malwr images) — inputs to the resource
//    crawler of Section II-C; each carries a large synthetic population of
//    sandbox-unique files, processes and registry entries calibrated so the
//    crawl-and-diff yields the paper's 17,540 / 24 / 1,457 totals.
#pragma once

#include <memory>

#include "hooking/injector.h"
#include "winsys/machine.h"

namespace scarecrow::env {

struct EndUserOptions {
  std::uint64_t agingSeed = 2020;
  double agedMonths = 18.0;
  /// Whether a human is at the desk moving the mouse during runs. The
  /// paper's without-Scarecrow Pafish run on the end-user machine happened
  /// with no mouse movement (Table II triggers mouse_activity), so benches
  /// toggle this per run.
  bool userPresent = true;
};

std::unique_ptr<winsys::Machine> buildEndUserMachine(
    const EndUserOptions& options = {});

struct BareMetalSandboxOptions {
  /// Analysis agent image name (the sample's parent process in sandboxes).
  /// Deliberately placed under an innocuous path: malware probes the usual
  /// sandbox folders (C:\analysis, C:\sandbox, ...) and the paper's
  /// bare-metal cluster did not trip those probes.
  std::string agentImage = "C:\\perfsvc\\agent.exe";
};

std::unique_ptr<winsys::Machine> buildBareMetalSandbox(
    const BareMetalSandboxOptions& options = {});

struct VmSandboxOptions {
  /// Transparency hardening applied for the with-Scarecrow Table II runs:
  /// CPUID hypervisor leaves masked, MAC randomized, VBox device objects
  /// and ACPI strings hidden.
  bool hardened = false;
};

std::unique_ptr<winsys::Machine> buildVBoxCuckooSandbox(
    const VmSandboxOptions& options = {});

/// Returns the pid of the analysis agent/daemon on a sandbox machine (used
/// as parent pid when a sandbox launches a sample), creating it if needed.
std::uint32_t sandboxAgentPid(winsys::Machine& machine);

/// The cuckoomon usermode monitor: injected into analyzed processes by the
/// Cuckoo sandbox; hooks ShellExecuteEx (the Hook-category Pafish trigger).
hooking::DllImage cuckooMonitorDll();

enum class PublicSandboxKind { kVirusTotal, kMalwr };

/// Builds one of the public-sandbox guest images crawled in Section II-C.
/// Deterministic for a given kind: the synthetic unique-resource
/// populations overlap across the two images exactly enough that
/// (VT ∪ Malwr) \ clean = 17,540 files, 24 processes, 1,457 registry keys.
std::unique_ptr<winsys::Machine> buildPublicSandbox(PublicSandboxKind kind);

}  // namespace scarecrow::env
