#include "env/base_image.h"

namespace scarecrow::env {

using winsys::Machine;
using winsys::RegValue;

void installBaseImage(Machine& machine, const BaseImageOptions& options) {
  // ----- hardware & identity ---------------------------------------------
  winsys::SysInfo& si = machine.sysinfo();
  si.totalPhysicalMemory = options.ramBytes;
  si.processorCount = options.cpuCores;
  si.computerName = options.computerName;
  si.userName = options.userName;
  si.bootOffsetMs = options.uptimeMs;

  winsys::DriveInfo c;
  c.letter = 'C';
  c.totalBytes = options.diskTotalBytes;
  c.freeBytes = options.diskFreeBytes;
  c.serialNumber = 0x1A2B3C4D;
  machine.vfs().addDrive(c);

  // ----- filesystem skeleton ---------------------------------------------
  winsys::Vfs& fs = machine.vfs();
  fs.makeDirs("C:\\Windows\\System32\\drivers");
  fs.makeDirs("C:\\Windows\\Prefetch");
  fs.makeDirs("C:\\Windows\\Temp");
  fs.makeDirs("C:\\Program Files");
  fs.makeDirs("C:\\Program Files (x86)");
  fs.makeDirs("C:\\ProgramData");
  const std::string userRoot = "C:\\Users\\" + options.userName;
  fs.makeDirs(userRoot + "\\Desktop");
  fs.makeDirs(userRoot + "\\Documents");
  fs.makeDirs(userRoot + "\\Downloads");
  fs.makeDirs(userRoot + "\\AppData\\Local\\Temp");
  fs.makeDirs(userRoot + "\\AppData\\Roaming");

  // Core system binaries (LoadLibrary search path).
  for (const char* dll :
       {"ntdll.dll", "kernel32.dll", "user32.dll", "advapi32.dll",
        "shell32.dll", "ws2_32.dll", "wininet.dll", "dnsapi.dll",
        "dbghelp.dll", "psapi.dll"})
    fs.createFile(std::string("C:\\Windows\\System32\\") + dll, 512 << 10);
  fs.createFile("C:\\Windows\\explorer.exe", 2 << 20);
  fs.createFile("C:\\Windows\\System32\\svchost.exe", 30 << 10);
  fs.createFile("C:\\Windows\\System32\\cmd.exe", 300 << 10);

  // ----- registry skeleton -----------------------------------------------
  winsys::Registry& reg = machine.registry();
  // A stock Windows 7 install ships ~35 MB of hive bins beyond the handful
  // of keys modeled explicitly here.
  reg.setOpaqueBytes(35ULL << 20);
  reg.setValue("SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion",
               "ProductName", RegValue::sz("Windows 7 Professional"));
  reg.setValue("SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion",
               "CurrentVersion", RegValue::sz("6.1"));
  reg.setValue("SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion",
               "CurrentBuildNumber", RegValue::sz("7601"));
  reg.setValue("HARDWARE\\Description\\System", "SystemBiosVersion",
               RegValue::sz(si.biosVersion));
  reg.setValue("HARDWARE\\Description\\System", "VideoBiosVersion",
               RegValue::sz(si.videoBiosVersion));
  reg.setValue("HARDWARE\\Description\\System", "SystemBiosDate",
               RegValue::sz("03/14/14"));
  reg.setValue("HARDWARE\\DESCRIPTION\\System\\BIOS", "SystemManufacturer",
               RegValue::sz(si.systemManufacturer));
  reg.setValue("HARDWARE\\DESCRIPTION\\System\\BIOS", "SystemProductName",
               RegValue::sz(si.systemProductName));
  reg.setValue(
      "HARDWARE\\DEVICEMAP\\Scsi\\Scsi Port 0\\Scsi Bus 0\\Target Id 0\\"
      "Logical Unit Id 0",
      "Identifier", RegValue::sz("ST500DM002-1BD142"));
  reg.ensureKey("SYSTEM\\CurrentControlSet\\Enum\\IDE")
      .ensureChild("DiskST500DM002-1BD142_____________________KC45");
  reg.ensureKey("SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Run");
  reg.ensureKey("SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Uninstall");
  reg.ensureKey("SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\SharedDlls");
  reg.ensureKey("SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\App Paths");
  reg.ensureKey("SOFTWARE\\Microsoft\\Active Setup\\Installed Components");
  reg.ensureKey("SYSTEM\\CurrentControlSet\\Control\\DeviceClasses");

  // ----- system processes -------------------------------------------------
  winsys::ProcessTable& procs = machine.processes();
  const std::uint32_t cores = si.processorCount;
  winsys::Process& system = procs.create("System", 0, "", cores);
  winsys::Process& smss =
      procs.create("C:\\Windows\\System32\\smss.exe", system.pid, "", cores);
  winsys::Process& csrss =
      procs.create("C:\\Windows\\System32\\csrss.exe", smss.pid, "", cores);
  winsys::Process& wininit =
      procs.create("C:\\Windows\\System32\\wininit.exe", smss.pid, "", cores);
  procs.create("C:\\Windows\\System32\\services.exe", wininit.pid, "", cores);
  procs.create("C:\\Windows\\System32\\lsass.exe", wininit.pid, "", cores);
  winsys::Process& winlogon = procs.create(
      "C:\\Windows\\System32\\winlogon.exe", csrss.pid, "", cores);
  for (int i = 0; i < 4; ++i)
    procs.create("C:\\Windows\\System32\\svchost.exe", wininit.pid, "-k",
                 cores);
  procs.create("C:\\Windows\\explorer.exe", winlogon.pid, "explorer.exe",
               cores);

  // ----- boot events -------------------------------------------------------
  winsys::EventLog& log = machine.eventlog();
  log.append("EventLog", 6005, 0);  // event log service started
  log.append("Kernel-General", 12, 0);
  log.append("Service Control Manager", 7036, 10);
  log.append("Kernel-Power", 1, 20);

  // ----- network baseline --------------------------------------------------
  winsys::Network& net = machine.network();
  net.registerDomain("www.msftncsi.com", "131.107.255.255");
  net.registerHttp("www.msftncsi.com", 200, "Microsoft NCSI");
  net.registerDomain("update.microsoft.com", "13.107.4.50");
  net.registerHttp("update.microsoft.com", 200, "");
  net.registerDomain("www.google.com", "142.250.70.68");
  net.registerHttp("www.google.com", 200, "<html>google</html>");
}

}  // namespace scarecrow::env
