#include "env/environments.h"

#include "env/aging.h"
#include "env/base_image.h"
#include "hooking/inline_hook.h"
#include "support/rng.h"
#include "support/strings.h"

namespace scarecrow::env {

using support::Rng;
using winsys::Machine;
using winsys::RegValue;

std::unique_ptr<Machine> buildEndUserMachine(const EndUserOptions& options) {
  auto machine = std::make_unique<Machine>();
  machine->label = "end-user machine";

  BaseImageOptions base;
  base.computerName = "ACME-WS-042";
  base.userName = "alice";
  base.uptimeMs = 5ULL * 86'400'000;  // five days since reboot
  installBaseImage(*machine, base);

  Rng rng(options.agingSeed);
  applyAging(*machine, AgeProfile{options.agedMonths, 1.2}, rng);

  // VMware Workstation installed on the host "due to work requirements"
  // (paper Section IV-C2). Host-side install: vmnet adapter service and a
  // virtual adapter — but no guest-tools artifacts (vmmouse.sys etc.).
  winsys::Vfs& fs = machine->vfs();
  fs.makeDirs("C:\\Program Files (x86)\\VMware\\VMware Workstation");
  fs.createFile(
      "C:\\Program Files (x86)\\VMware\\VMware Workstation\\vmware.exe",
      80 << 20);
  winsys::Registry& reg = machine->registry();
  reg.setValue("SOFTWARE\\VMware, Inc.\\VMware Workstation", "InstallPath",
               RegValue::sz("C:\\Program Files (x86)\\VMware\\"));
  reg.ensureKey("SYSTEM\\CurrentControlSet\\Services\\vmnetadapter");
  winsys::AdapterInfo vmnet;
  vmnet.name = "VMware Network Adapter VMnet8";
  vmnet.description = "VMware Virtual Ethernet Adapter for VMnet8";
  vmnet.mac = "00:50:56:C0:00:08";
  machine->sysinfo().adapters.push_back(vmnet);

  // The host VMM components make CPUID measurably slower than bare metal —
  // enough to cross the rdtsc_diff_vmexit threshold, the false positive the
  // paper reports for the end-user machine ("timing-based attacks were not
  // reliable").
  machine->sysinfo().cpuidTrapCycles = 15'000;
  machine->sysinfo().mouseActive = options.userPresent;
  return machine;
}

std::unique_ptr<Machine> buildBareMetalSandbox(
    const BareMetalSandboxOptions& options) {
  auto machine = std::make_unique<Machine>();
  machine->label = "bare-metal sandbox";

  BaseImageOptions base;
  base.diskTotalBytes = 250ULL << 30;
  base.diskFreeBytes = 180ULL << 30;
  base.ramBytes = 8ULL << 30;
  base.cpuCores = 4;
  base.computerName = "WIN7-PC";
  base.userName = "admin";
  base.uptimeMs = 20ULL * 60'000;  // rebooted by the agent 20 minutes ago
  installBaseImage(*machine, base);

  // Nearly pristine image: Deep Freeze restores it to this state between
  // runs, so only trace amounts of wear accumulate.
  Rng rng(7);
  applyAging(*machine, AgeProfile{0.25, 0.5}, rng);

  machine->sysinfo().mouseActive = false;  // nobody at the console
  machine->sysinfo().cpuidTrapCycles = 150;

  // Analysis agent (Figure 3's python agent) awaits samples from the proxy.
  machine->vfs().makeDirs(support::parentPath(options.agentImage));
  machine->vfs().createFile(options.agentImage, 4 << 20);
  winsys::Process* services =
      machine->processes().findByName("services.exe");
  machine->processes().create(options.agentImage,
                              services != nullptr ? services->pid : 0,
                              "agent.exe --proxy 10.0.0.1",
                              machine->sysinfo().processorCount);
  return machine;
}

std::unique_ptr<Machine> buildVBoxCuckooSandbox(
    const VmSandboxOptions& options) {
  auto machine = std::make_unique<Machine>();
  machine->label = options.hardened ? "VM sandbox (hardened)" : "VM sandbox";

  BaseImageOptions base;
  base.diskTotalBytes = 40ULL << 30;  // small guest disk (<60 GB threshold)
  base.diskFreeBytes = 25ULL << 30;
  base.ramBytes = 1ULL << 30;  // 1 GB guest RAM
  base.cpuCores = 1;           // single vCPU
  base.computerName = "JOHN-PC";
  base.userName = "john";
  base.uptimeMs = 35ULL * 60'000;  // snapshot resumed half an hour ago
  installBaseImage(*machine, base);

  Rng rng(11);
  applyAging(*machine, AgeProfile{0.25, 0.5}, rng);

  winsys::SysInfo& si = machine->sysinfo();
  si.mouseActive = true;  // Cuckoo's human-emulation module wiggles the mouse
  if (options.hardened) {
    // The paper's transparency pass for the with-Scarecrow runs: "we also
    // modified CPUID instruction results and updated the MAC address".
    si.hypervisorPresent = false;
    si.hypervisorVendor.clear();
    si.cpuidTrapCycles = 8'000;  // tuned below the vmexit-detection threshold
    si.adapters[0].mac = "52:54:98:76:54:32";
    si.acpiOemId = "DELL";
  } else {
    si.hypervisorPresent = true;
    si.hypervisorVendor = "VBoxVBoxVBox";
    si.cpuidTrapCycles = 40'000;  // CPUID traps to the hypervisor
    si.adapters[0].mac = "08:00:27:3A:5B:7C";  // VirtualBox OUI
    si.acpiOemId = "VBOX";
  }

  // VirtualBox Guest Additions footprint.
  winsys::Registry& reg = machine->registry();
  reg.setValue("SOFTWARE\\Oracle\\VirtualBox Guest Additions", "Version",
               RegValue::sz("5.2.8"));
  reg.setValue("HARDWARE\\Description\\System", "SystemBiosVersion",
               RegValue::sz("VBOX   - 1"));
  reg.setValue("HARDWARE\\Description\\System", "VideoBiosVersion",
               RegValue::sz("Oracle VM VirtualBox Version 5.2.8"));
  reg.ensureKey("SYSTEM\\CurrentControlSet\\Enum\\IDE")
      .ensureChild("DiskVBOX_HARDDISK___________________________1.0_____");
  reg.setValue(
      "HARDWARE\\DEVICEMAP\\Scsi\\Scsi Port 0\\Scsi Bus 0\\Target Id 0\\"
      "Logical Unit Id 0",
      "Identifier", RegValue::sz("VBOX HARDDISK"));

  winsys::Vfs& fs = machine->vfs();
  for (const char* driver : {"VBoxMouse.sys", "VBoxGuest.sys", "VBoxSF.sys",
                             "VBoxVideo.sys"})
    fs.createFile(std::string("C:\\Windows\\System32\\drivers\\") + driver,
                  120 << 10);
  for (const char* file : {"vboxdisp.dll", "vboxhook.dll", "VBoxTray.exe",
                           "VBoxService.exe", "VBoxControl.exe"})
    fs.createFile(std::string("C:\\Windows\\System32\\") + file, 200 << 10);
  if (!options.hardened) {
    fs.createDevice("\\\\.\\VBoxGuest");
    fs.createDevice("\\\\.\\VBoxMiniRdrDN");
  }

  winsys::Process* services =
      machine->processes().findByName("services.exe");
  const std::uint32_t servicesPid = services != nullptr ? services->pid : 0;
  machine->processes().create("C:\\Windows\\System32\\VBoxService.exe",
                              servicesPid, "", 1);
  machine->processes().create("C:\\Windows\\System32\\VBoxTray.exe",
                              servicesPid, "", 1);
  // Headless guest: VBoxTray runs but never creates its tray window — the
  // one VirtualBox Pafish feature that stays silent without Scarecrow.

  // Cuckoo guest agent.
  fs.makeDirs("C:\\Python27");
  fs.createFile("C:\\Python27\\python.exe", 26 << 20);
  fs.createFile("C:\\agent.pyw", 30 << 10);
  machine->processes().create("C:\\Python27\\python.exe", servicesPid,
                              "python.exe C:\\agent.pyw", 1);
  return machine;
}

std::uint32_t sandboxAgentPid(Machine& machine) {
  for (const char* name : {"agent.exe", "python.exe"}) {
    winsys::Process* agent = machine.processes().findByName(name);
    if (agent != nullptr) return agent->pid;
  }
  winsys::Process& agent = machine.processes().create(
      "C:\\perfsvc\\agent.exe", 0, "agent.exe",
      machine.sysinfo().processorCount);
  return agent.pid;
}

hooking::DllImage cuckooMonitorDll() {
  hooking::DllImage dll;
  dll.name = "cuckoomon.dll";
  dll.onLoad = [](winapi::Api& api) {
    winapi::ProcessApiState& state = api.state();
    hooking::installInlineHook(state, winapi::ApiId::kShellExecuteEx);
    // Transparent pass-through: Cuckoo logs the call, behaviour unchanged.
    state.hooks.shellExecuteEx = [](winapi::Api& a, const std::string& file) {
      return a.orig_ShellExecuteExA(file);
    };
  };
  return dll;
}

namespace {

/// Populates a public-sandbox image with resources that exist on no clean
/// machine. `shared` resources appear in both VT and Malwr images; the
/// kind-specific remainder is unique per service. Totals are calibrated so
/// the union across both images is exactly 17,540 files, 24 processes and
/// 1,457 registry keys (paper Section II-C).
void addSandboxUniqueResources(Machine& machine, PublicSandboxKind kind) {
  winsys::Vfs& fs = machine.vfs();
  winsys::Registry& reg = machine.registry();

  const bool vt = kind == PublicSandboxKind::kVirusTotal;
  const std::string root = vt ? "C:\\vtsandbox" : "C:\\malwr";

  // ---- files: shared 1,460 | VT-only 10,040 | Malwr-only 6,040 ----------
  Rng shared(1000);
  fs.makeDirs("C:\\cuckoo\\analyzer\\windows\\modules");
  for (int i = 0; i < 1'460; ++i)
    fs.createFile("C:\\cuckoo\\analyzer\\windows\\modules\\mod_" +
                      shared.hexString(8) + ".py",
                  4 << 10);
  Rng own(vt ? 2000 : 3000);
  fs.makeDirs(root + "\\support");
  const int ownFiles = vt ? 9'964 : 6'040;
  for (int i = 0; i < ownFiles; ++i)
    fs.createFile(root + "\\support\\f_" + own.hexString(10) + ".bin",
                  own.below(64 << 10));

  // ---- processes: 24 unique across images = 3 from the Cuckoo base
  // (VBoxService, VBoxTray, python) + 3 shared here + 10 VT + 8 Malwr ------
  winsys::Process* services =
      machine.processes().findByName("services.exe");
  const std::uint32_t parent = services != nullptr ? services->pid : 0;
  auto addProc = [&](const std::string& name) {
    machine.processes().create("C:\\sandbox\\" + name, parent, name, 1);
    fs.createFile("C:\\sandbox\\" + name, 1 << 20);
  };
  for (const char* name : {"tcpdump.exe", "analyzer.exe", "screenshot.exe"})
    addProc(name);
  if (vt) {
    for (const char* name :
         {"vt_monitor.exe", "vt_uploader.exe", "sigscan.exe", "yarasvc.exe",
          "behave.exe", "netlog.exe", "memdump.exe", "ssdeep_svc.exe",
          "unpack_svc.exe", "av_multi.exe"})
      addProc(name);
  } else {
    for (const char* name :
         {"malwr_agent.exe", "volatility_svc.exe", "pcap_svc.exe",
          "shots.exe", "droidmon.exe", "sigcheck_svc.exe", "apicap.exe",
          "mw_report.exe"})
      addProc(name);
  }

  // ---- registry: shared 243 | VT-only 757 | Malwr-only 457 ---------------
  auto& sharedKey = reg.ensureKey("SOFTWARE\\Cuckoo\\Modules");
  for (int i = 0; i < 243; ++i)
    sharedKey.ensureChild("module_" + std::to_string(i));
  auto& ownKey = reg.ensureKey(vt ? "SOFTWARE\\VTSandbox\\Config"
                                  : "SOFTWARE\\MalwrSandbox\\Config");
  const int ownKeys = vt ? 696 : 457;
  for (int i = 0; i < ownKeys; ++i)
    ownKey.ensureChild("entry_" + std::to_string(i));
}

}  // namespace

std::unique_ptr<Machine> buildPublicSandbox(PublicSandboxKind kind) {
  auto machine = buildVBoxCuckooSandbox({});
  machine->label = kind == PublicSandboxKind::kVirusTotal
                       ? "VirusTotal public sandbox"
                       : "Malwr public sandbox";
  if (kind == PublicSandboxKind::kMalwr) {
    // Malwr's guest disk is famously tiny (5 GB, Section II-B).
    winsys::DriveInfo* c = machine->vfs().findDrive('C');
    if (c != nullptr) {
      c->totalBytes = 5ULL << 30;
      c->freeBytes = 2ULL << 30;
    }
  }
  addSandboxUniqueResources(*machine, kind);
  return machine;
}

}  // namespace scarecrow::env
