// Fixed worker pool for embarrassingly parallel job lists.
//
// The simulator is deterministic and single-threaded per machine; the
// parallelism we need is *across* machines (core::BatchEvaluator's corpus
// workers, the Table II/III benches' per-environment sweeps). This is the
// one threading primitive they share: N worker threads drain a job list
// through an atomic cursor, so a slow job never blocks the queue behind a
// barrier, and each job knows which worker ran it (workers own stateful
// resources like simulated machines).
#pragma once

#include <cstddef>
#include <functional>

namespace scarecrow::support {

/// Runs `body(worker, job)` for every job in [0, jobCount) on a pool of
/// `workerCount` threads. Jobs are claimed dynamically in index order;
/// `worker` identifies the claiming thread in [0, workerCount), so the
/// body may use per-worker state without synchronization. The call returns
/// after every job completed.
///
/// `workerCount` is clamped to [1, jobCount]; with a single worker the
/// jobs run inline on the calling thread, in order, with no threads
/// spawned. Jobs must not throw — an escaping exception would terminate
/// the process (callers wrap fallible work, as BatchEvaluator does with
/// its retry loop).
void runOnWorkerPool(
    std::size_t workerCount, std::size_t jobCount,
    const std::function<void(std::size_t worker, std::size_t job)>& body);

}  // namespace scarecrow::support
