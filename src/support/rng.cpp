#include "support/rng.h"

namespace scarecrow::support {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::size_t Rng::pickWeighted(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return weights.empty() ? 0 : weights.size() - 1;
  double roll = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (roll < w) return i;
    roll -= w;
  }
  return weights.size() - 1;
}

std::string Rng::hexString(std::size_t n) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(kHex[below(16)]);
  return out;
}

std::string Rng::alphaString(std::size_t n) {
  std::string out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(static_cast<char>('a' + below(26)));
  return out;
}

Rng Rng::fork() noexcept { return Rng(next()); }

}  // namespace scarecrow::support
