#include "support/log.h"

#include <atomic>
#include <cstdio>
#include <map>
#include <mutex>

#include "support/env.h"
#include "support/strings.h"

namespace scarecrow::support {
namespace {

// The level is read on every log call, including from BatchEvaluator
// worker threads; an atomic keeps the common early-return race-free. The
// sink/format/component tables stay plain — they are configured before
// parallel work starts — and the output mutex keeps concurrently emitted
// lines whole.
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_outputMutex;

const char* levelName(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

std::map<std::string, LogLevel, std::less<>>& componentLevels() {
  static std::map<std::string, LogLevel, std::less<>> levels;
  return levels;
}

LogFormat initialFormat() noexcept {
  return support::envString("SCARECROW_LOG") == "json" ? LogFormat::kJson
                                                        : LogFormat::kText;
}

LogFormat& formatRef() noexcept {
  static LogFormat format = initialFormat();
  return format;
}

LogSink& sinkRef() {
  static LogSink sink;  // empty == default stderr sink
  return sink;
}

std::string renderText(LogLevel level, std::string_view component,
                       std::string_view message, const LogFields& fields) {
  std::string line = "[";
  line += levelName(level);
  line += "] ";
  line += component;
  line += ": ";
  line += message;
  for (const LogField& field : fields) {
    line += ' ';
    line += field.key;
    line += '=';
    line += field.value;
  }
  return line;
}

std::string renderJson(LogLevel level, std::string_view component,
                       std::string_view message, const LogFields& fields) {
  std::string line = "{\"level\":\"";
  line += levelName(level);
  line += "\",\"component\":\"";
  line += jsonEscape(component);
  line += "\",\"message\":\"";
  line += jsonEscape(message);
  line += '"';
  if (!fields.empty()) {
    line += ",\"fields\":{";
    bool first = true;
    for (const LogField& field : fields) {
      if (!first) line += ',';
      first = false;
      line += '"';
      line += jsonEscape(field.key);
      line += "\":\"";
      line += jsonEscape(field.value);
      line += '"';
    }
    line += '}';
  }
  line += '}';
  return line;
}

}  // namespace

void setLogLevel(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel logLevel() noexcept {
  return g_level.load(std::memory_order_relaxed);
}

void setComponentLogLevel(std::string_view component, LogLevel level) {
  componentLevels()[std::string(component)] = level;
}

void clearComponentLogLevels() { componentLevels().clear(); }

void setLogFormat(LogFormat format) noexcept { formatRef() = format; }
LogFormat logFormat() noexcept { return formatRef(); }

void setLogSink(LogSink sink) { sinkRef() = std::move(sink); }

void logMessage(LogLevel level, std::string_view component,
                std::string_view message, const LogFields& fields) {
  LogLevel minLevel = g_level.load(std::memory_order_relaxed);
  const auto& overrides = componentLevels();
  if (!overrides.empty()) {
    const auto it = overrides.find(component);
    if (it != overrides.end()) minLevel = it->second;
  }
  if (level < minLevel) return;

  const std::string line =
      formatRef() == LogFormat::kJson
          ? renderJson(level, component, message, fields)
          : renderText(level, component, message, fields);
  const std::lock_guard<std::mutex> lock(g_outputMutex);
  LogSink& sink = sinkRef();
  if (sink) {
    sink(line);
    return;
  }
  std::fprintf(stderr, "%s\n", line.c_str());
}

}  // namespace scarecrow::support
