#include "support/log.h"

#include <cstdio>

namespace scarecrow::support {
namespace {
LogLevel g_level = LogLevel::kWarn;

const char* levelName(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void setLogLevel(LogLevel level) noexcept { g_level = level; }
LogLevel logLevel() noexcept { return g_level; }

void logMessage(LogLevel level, std::string_view component,
                std::string_view message) {
  if (level < g_level) return;
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", levelName(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace scarecrow::support
