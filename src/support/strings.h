// String utilities shared by the simulated Windows substrate.
//
// Windows name resolution (registry paths, file paths, process names, window
// classes) is case-insensitive, so almost every lookup in the simulator goes
// through the ASCII case-insensitive helpers here.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace scarecrow::support {

/// ASCII lower-casing; the simulated system never needs locale awareness.
char asciiLower(char c) noexcept;
std::string toLower(std::string_view s);

/// Case-insensitive equality / containment, Windows-style.
bool iequals(std::string_view a, std::string_view b) noexcept;
bool icontains(std::string_view haystack, std::string_view needle) noexcept;
bool istartsWith(std::string_view s, std::string_view prefix) noexcept;
bool iendsWith(std::string_view s, std::string_view suffix) noexcept;

/// Splits on a separator character; empty segments are preserved.
std::vector<std::string> split(std::string_view s, char sep);

/// Joins segments with a separator.
std::string join(const std::vector<std::string>& parts, char sep);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view s) noexcept;

/// Glob-style match supporting '*' and '?', case-insensitive
/// (the semantics FindFirstFile exposes).
bool wildcardMatch(std::string_view pattern, std::string_view text) noexcept;

/// Normalizes a Windows path: backslashes, no trailing slash (except root),
/// collapsed doubled separators. Does not lower-case (display names keep
/// their case; lookups lower-case separately).
std::string normalizePath(std::string_view path);

/// Last path component ("C:\\a\\b.exe" -> "b.exe").
std::string baseName(std::string_view path);

/// Parent path ("C:\\a\\b.exe" -> "C:\\a"); root maps to itself.
std::string parentPath(std::string_view path);

/// Formats byte counts like "50 GB" for reports.
std::string formatBytes(std::uint64_t bytes);

/// Escapes a string for embedding inside a JSON string literal (quotes,
/// backslashes, control characters). Shared by the telemetry JSON exporter
/// and the JSONL log sink.
std::string jsonEscape(std::string_view s);

}  // namespace scarecrow::support
