// Single choke point for SCARECROW_* environment reads.
//
// Every knob the engine accepts from the environment goes through these
// two readers, so the precedence rule the README documents — explicit
// field > environment > built-in default — is implemented in exactly one
// place (core::Config::fromEnv and the per-plane cached getters) instead
// of scattered std::getenv calls. Parsing is strict: a value that is not
// a complete unsigned decimal integer falls back, it never half-parses.
#pragma once

#include <cstdint>
#include <string>

namespace scarecrow::support {

/// Raw string read: the variable's value, or `fallback` when unset.
/// (An empty value is returned as-is; callers that treat empty as unset
/// do so explicitly.)
std::string envString(const char* name, std::string fallback = {});

/// Unsigned integer read: the variable parsed as a full base-10 integer,
/// or `fallback` when unset, empty, or malformed.
std::uint64_t envUint64(const char* name, std::uint64_t fallback = 0);

}  // namespace scarecrow::support
