// Deterministic pseudo-random number generation for reproducible simulation.
//
// All stochastic choices in the simulator (corpus generation, machine aging,
// timing jitter) flow through Rng so that a given seed always reproduces the
// same machine images, the same malware corpus, and therefore the same
// benchmark tables. We deliberately do not use std::mt19937 + distributions
// because distribution outputs are not guaranteed identical across standard
// library implementations; xoshiro256** plus hand-rolled range mapping is.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace scarecrow::support {

/// xoshiro256** PRNG with SplitMix64 seeding. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Picks one element index according to non-negative weights.
  /// Returns weights.size() - 1 if all weights are zero.
  std::size_t pickWeighted(const std::vector<double>& weights) noexcept;

  /// Random lowercase hex string of n characters (e.g. fake md5 prefixes).
  std::string hexString(std::size_t n);

  /// Random lowercase alphabetic string of n characters.
  std::string alphaString(std::size_t n);

  /// Derives a child generator; changing one stream does not perturb others.
  Rng fork() noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace scarecrow::support
