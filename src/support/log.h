// Structured leveled logger.
//
// The simulator is deterministic and single-threaded per machine, so the
// logger stays small, but it is structured: every record carries a
// component, a message, and optional key=value fields, and is rendered by a
// pluggable sink. Two built-in renderings:
//   - text (default): "[LEVEL] component: message key=value ..." — byte-
//     compatible with the old logger when no fields are passed;
//   - JSONL: one JSON object per line, selected by SCARECROW_LOG=json in
//     the environment or setLogFormat(LogFormat::kJson).
// Per-component minimum-level overrides let a run turn one subsystem's
// kDebug on without drowning in the rest.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace scarecrow::support {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

enum class LogFormat { kText, kJson };

/// One key=value pair attached to a log record. Arithmetic values are
/// rendered with std::to_string; everything stays a string downstream.
struct LogField {
  std::string key;
  std::string value;

  LogField(std::string k, std::string v)
      : key(std::move(k)), value(std::move(v)) {}
  LogField(std::string k, const char* v) : key(std::move(k)), value(v) {}
  LogField(std::string k, std::string_view v)
      : key(std::move(k)), value(v) {}
  LogField(std::string k, bool v)
      : key(std::move(k)), value(v ? "true" : "false") {}
  template <typename T,
            typename = std::enable_if_t<std::is_arithmetic_v<T>>>
  LogField(std::string k, T v)
      : key(std::move(k)), value(std::to_string(v)) {}
};

using LogFields = std::vector<LogField>;

/// Global minimum level (default kWarn).
void setLogLevel(LogLevel level) noexcept;
LogLevel logLevel() noexcept;

/// Per-component override of the minimum level; takes precedence over the
/// global level for records from that component.
void setComponentLogLevel(std::string_view component, LogLevel level);
void clearComponentLogLevels();

/// Rendering format. The initial value honours SCARECROW_LOG=json.
void setLogFormat(LogFormat format) noexcept;
LogFormat logFormat() noexcept;

/// Sink receiving each fully rendered line (no trailing newline). Pass
/// nullptr to restore the default stderr sink. Used by the obs layer and
/// tests to capture structured output.
using LogSink = std::function<void(const std::string& line)>;
void setLogSink(LogSink sink);

void logMessage(LogLevel level, std::string_view component,
                std::string_view message, const LogFields& fields = {});

inline void logDebug(std::string_view c, std::string_view m,
                     const LogFields& fields = {}) {
  logMessage(LogLevel::kDebug, c, m, fields);
}
inline void logInfo(std::string_view c, std::string_view m,
                    const LogFields& fields = {}) {
  logMessage(LogLevel::kInfo, c, m, fields);
}
inline void logWarn(std::string_view c, std::string_view m,
                    const LogFields& fields = {}) {
  logMessage(LogLevel::kWarn, c, m, fields);
}
inline void logError(std::string_view c, std::string_view m,
                     const LogFields& fields = {}) {
  logMessage(LogLevel::kError, c, m, fields);
}

}  // namespace scarecrow::support
