// Minimal leveled logger.
//
// The simulator is deterministic and single-threaded per machine, so the
// logger is intentionally tiny: a global level, stderr sink, printf-style
// payloads built with std::snprintf by callers who need formatting.
#pragma once

#include <string_view>

namespace scarecrow::support {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void setLogLevel(LogLevel level) noexcept;
LogLevel logLevel() noexcept;

void logMessage(LogLevel level, std::string_view component,
                std::string_view message);

inline void logDebug(std::string_view c, std::string_view m) {
  logMessage(LogLevel::kDebug, c, m);
}
inline void logInfo(std::string_view c, std::string_view m) {
  logMessage(LogLevel::kInfo, c, m);
}
inline void logWarn(std::string_view c, std::string_view m) {
  logMessage(LogLevel::kWarn, c, m);
}
inline void logError(std::string_view c, std::string_view m) {
  logMessage(LogLevel::kError, c, m);
}

}  // namespace scarecrow::support
