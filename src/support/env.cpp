#include "support/env.h"

#include <cstdlib>

namespace scarecrow::support {

std::string envString(const char* name, std::string fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::string(v) : std::move(fallback);
}

std::uint64_t envUint64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || (end != nullptr && *end != '\0')) return fallback;
  return static_cast<std::uint64_t>(parsed);
}

}  // namespace scarecrow::support
