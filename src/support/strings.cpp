#include "support/strings.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>

namespace scarecrow::support {

char asciiLower(char c) noexcept {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

std::string toLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](char c) { return asciiLower(c); });
  return out;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (asciiLower(a[i]) != asciiLower(b[i])) return false;
  return true;
}

bool icontains(std::string_view haystack, std::string_view needle) noexcept {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    std::size_t j = 0;
    while (j < needle.size() &&
           asciiLower(haystack[i + j]) == asciiLower(needle[j]))
      ++j;
    if (j == needle.size()) return true;
  }
  return false;
}

bool istartsWith(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && iequals(s.substr(0, prefix.size()), prefix);
}

bool iendsWith(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() &&
         iequals(s.substr(s.size() - suffix.size()), suffix);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, char sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.push_back(sep);
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' || s[b] == '\n'))
    ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n'))
    --e;
  return s.substr(b, e - b);
}

bool wildcardMatch(std::string_view pattern, std::string_view text) noexcept {
  // Iterative two-pointer algorithm with backtracking to the last '*'.
  std::size_t p = 0, t = 0;
  std::size_t starP = std::string_view::npos, starT = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || asciiLower(pattern[p]) == asciiLower(text[t]))) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      starP = p++;
      starT = t;
    } else if (starP != std::string_view::npos) {
      p = starP + 1;
      t = ++starT;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::string normalizePath(std::string_view path) {
  std::string out;
  out.reserve(path.size());
  bool lastSep = false;
  for (char c : path) {
    if (c == '/' || c == '\\') {
      if (!lastSep) out.push_back('\\');
      lastSep = true;
    } else {
      out.push_back(c);
      lastSep = false;
    }
  }
  // Strip a trailing separator unless this is a drive root like "C:\".
  if (out.size() > 3 && out.back() == '\\') out.pop_back();
  return out;
}

std::string baseName(std::string_view path) {
  const auto pos = path.find_last_of("\\/");
  return std::string(pos == std::string_view::npos ? path
                                                   : path.substr(pos + 1));
}

std::string parentPath(std::string_view path) {
  const std::string norm = normalizePath(path);
  const auto pos = norm.find_last_of('\\');
  if (pos == std::string::npos) return norm;
  if (pos <= 2) return norm.substr(0, 3);  // "C:\"
  return norm.substr(0, pos);
}

std::string formatBytes(std::uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (v == static_cast<std::uint64_t>(v))
    std::snprintf(buf, sizeof buf, "%llu %s",
                  static_cast<unsigned long long>(v), kUnits[unit]);
  else
    std::snprintf(buf, sizeof buf, "%.1f %s", v, kUnits[unit]);
  return buf;
}

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace scarecrow::support
