// Virtual time for the simulated machine.
//
// The paper's evasive checks observe three time sources: GetTickCount
// (milliseconds since boot), the performance counter, and the raw TSC.
// Analysis sandboxes manipulate these (sleep patching, time acceleration),
// and evasive malware measures their mutual consistency. VirtualClock keeps
// all three coherent by construction and lets the environment inject the
// incoherencies (vmexit latency, accelerated sleeps) that checks look for.
#pragma once

#include <cstdint>

namespace scarecrow::support {

class VirtualClock {
 public:
  VirtualClock() = default;

  /// Milliseconds since simulated boot.
  std::uint64_t nowMs() const noexcept { return ms_; }

  /// Advances wall-clock time. Everything derives from this.
  void advanceMs(std::uint64_t delta) noexcept { ms_ += delta; }

  /// Raw timestamp counter. Derived from wall time at `tscPerMs` plus any
  /// extra cycles injected by instruction costs (e.g. hypervisor traps).
  std::uint64_t tsc() const noexcept { return ms_ * tscPerMs_ + tscExtra_; }

  /// Injects extra cycles that are visible to RDTSC but not to wall time —
  /// this is how a CPUID vmexit shows up in the rdtsc_diff checks.
  void addTscCycles(std::uint64_t cycles) noexcept { tscExtra_ += cycles; }

  /// Nominal TSC frequency per millisecond (default ~2.6 GHz).
  std::uint64_t tscPerMs() const noexcept { return tscPerMs_; }
  void setTscPerMs(std::uint64_t v) noexcept { tscPerMs_ = v; }

  /// Sets absolute boot-relative time; used when building aged machines.
  void setNowMs(std::uint64_t ms) noexcept { ms_ = ms; }

 private:
  std::uint64_t ms_ = 0;
  std::uint64_t tscPerMs_ = 2'600'000;
  std::uint64_t tscExtra_ = 0;
};

}  // namespace scarecrow::support
