#include "support/parallel.h"

#include <atomic>
#include <thread>
#include <vector>

namespace scarecrow::support {

void runOnWorkerPool(
    std::size_t workerCount, std::size_t jobCount,
    const std::function<void(std::size_t worker, std::size_t job)>& body) {
  if (jobCount == 0) return;
  if (workerCount > jobCount) workerCount = jobCount;
  if (workerCount <= 1) {
    for (std::size_t job = 0; job < jobCount; ++job) body(0, job);
    return;
  }

  std::atomic<std::size_t> cursor{0};
  std::vector<std::thread> threads;
  threads.reserve(workerCount);
  for (std::size_t worker = 0; worker < workerCount; ++worker) {
    threads.emplace_back([&, worker] {
      for (;;) {
        const std::size_t job = cursor.fetch_add(1);
        if (job >= jobCount) return;
        body(worker, job);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
}

}  // namespace scarecrow::support
