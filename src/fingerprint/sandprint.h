// SandPrint-style sandbox fingerprint collection (Yokoyama et al.,
// RAID'16 — discussed in the paper's Section VII).
//
// SandPrint harvests environment features from inside an analysis system
// and uses them to recognize sandboxes (including bare-metal ones). Here it
// serves as a *measurement instrument* for the paper's indistinguishability
// claim: with Scarecrow enabled, the feature vectors of the bare-metal
// sandbox, the VM sandbox and the end-user machine must collapse onto the
// same fingerprint, up to the documented unhandled channels (MAC, firmware,
// instruction timing).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "winapi/api.h"

namespace scarecrow::fingerprint {

struct SandboxFingerprint {
  /// Feature name -> normalized value (buckets for continuous features).
  std::map<std::string, std::string> features;

  /// Stable digest over all features (FNV-1a rendered as hex).
  std::string digest() const;

  /// Names of features whose values differ between the two fingerprints.
  std::vector<std::string> diff(const SandboxFingerprint& other) const;
};

/// Harvests the fingerprint through user-level channels, exactly like a
/// submitted probe binary would.
SandboxFingerprint collectSandprint(winapi::Api& api);

/// The features Scarecrow's user-level engine cannot steer (NDIS MAC,
/// firmware tables, instruction timing) — the only ones allowed to differ
/// between Scarecrow-enabled environments.
const std::vector<std::string>& unsteerableFeatures();

}  // namespace scarecrow::fingerprint
