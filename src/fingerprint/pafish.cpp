#include "fingerprint/pafish.h"

#include "hooking/inline_hook.h"
#include "support/strings.h"

namespace scarecrow::fingerprint {

using support::icontains;
using support::iequals;
using winapi::Api;
using winapi::ApiId;
using winsys::RegValue;

const char* pafishCategoryName(PafishCategory category) noexcept {
  switch (category) {
    case PafishCategory::kDebuggers: return "Debuggers";
    case PafishCategory::kCpu: return "CPU information";
    case PafishCategory::kGenericSandbox: return "Generic sandbox";
    case PafishCategory::kHooks: return "Hook";
    case PafishCategory::kSandboxie: return "Sandboxie";
    case PafishCategory::kWine: return "Wine";
    case PafishCategory::kVirtualBox: return "VirtualBox";
    case PafishCategory::kVMware: return "VMware";
    case PafishCategory::kQemu: return "Qemu detection";
    case PafishCategory::kBochs: return "Bochs";
    case PafishCategory::kCuckoo: return "Cuckoo";
  }
  return "?";
}

std::size_t pafishCategorySize(PafishCategory category) noexcept {
  switch (category) {
    case PafishCategory::kDebuggers: return 1;
    case PafishCategory::kCpu: return 4;
    case PafishCategory::kGenericSandbox: return 12;
    case PafishCategory::kHooks: return 2;
    case PafishCategory::kSandboxie: return 1;
    case PafishCategory::kWine: return 2;
    case PafishCategory::kVirtualBox: return 17;
    case PafishCategory::kVMware: return 8;
    case PafishCategory::kQemu: return 3;
    case PafishCategory::kBochs: return 3;
    case PafishCategory::kCuckoo: return 3;
  }
  return 0;
}

std::size_t PafishReport::triggeredIn(PafishCategory category) const {
  std::size_t n = 0;
  for (const PafishCheckResult& check : checks)
    if (check.category == category && check.triggered) ++n;
  return n;
}

std::size_t PafishReport::totalTriggered() const {
  std::size_t n = 0;
  for (const PafishCheckResult& check : checks)
    if (check.triggered) ++n;
  return n;
}

bool PafishReport::triggered(const std::string& checkName) const {
  for (const PafishCheckResult& check : checks)
    if (check.name == checkName) return check.triggered;
  return false;
}

namespace {

class CheckRunner {
 public:
  CheckRunner(Api& api, PafishReport& report) : api_(api), report_(report) {}

  void add(const char* name, PafishCategory category, bool triggered) {
    report_.checks.push_back({name, category, triggered});
  }

  // ---- Debuggers (1) -----------------------------------------------------
  void debuggers() {
    add("isdebuggerpresent", PafishCategory::kDebuggers,
        api_.IsDebuggerPresent());
  }

  // ---- CPU information (4) -----------------------------------------------
  void cpu() {
    // rdtsc_diff: RDTSC itself trapped (full-system emulators).
    std::uint64_t total = 0;
    for (int i = 0; i < 8; ++i) {
      const std::uint64_t t0 = api_.rdtsc();
      const std::uint64_t t1 = api_.rdtsc();
      total += t1 - t0;
    }
    add("rdtsc_diff", PafishCategory::kCpu, total / 8 > 750);

    // rdtsc_diff_vmexit: CPUID between two RDTSCs traps to the hypervisor.
    std::uint64_t vmTotal = 0;
    for (int i = 0; i < 8; ++i) {
      const std::uint64_t t0 = api_.rdtsc();
      (void)api_.cpuid(0x1);
      const std::uint64_t t1 = api_.rdtsc();
      vmTotal += t1 - t0;
    }
    add("rdtsc_diff_vmexit", PafishCategory::kCpu, vmTotal / 8 > 10'000);

    const winsys::CpuidResult leaf1 = api_.cpuid(0x1);
    add("cpuid_hv_bit", PafishCategory::kCpu,
        (leaf1.ecx & (1u << 31)) != 0);

    const winsys::CpuidResult hv = api_.cpuid(0x40000000);
    auto unpack = [](std::uint32_t r, std::string& s) {
      for (int i = 0; i < 4; ++i) {
        const char c = static_cast<char>((r >> (8 * i)) & 0xFF);
        if (c != 0) s.push_back(c);
      }
    };
    std::string vendor;
    unpack(hv.ebx, vendor);
    unpack(hv.ecx, vendor);
    unpack(hv.edx, vendor);
    const bool known = icontains(vendor, "VBox") ||
                       icontains(vendor, "VMware") ||
                       icontains(vendor, "KVM") || icontains(vendor, "Xen") ||
                       icontains(vendor, "Microsoft Hv") ||
                       icontains(vendor, "prl hyperv");
    add("cpu_known_vm_vendors", PafishCategory::kCpu, known);
  }

  // ---- Generic sandbox (12) -----------------------------------------------
  void genericSandbox() {
    int x0 = 0, y0 = 0, x1 = 0, y1 = 0;
    api_.GetCursorPos(x0, y0);
    api_.Sleep(2'000);
    api_.GetCursorPos(x1, y1);
    add("gensandbox_mouse_act", PafishCategory::kGenericSandbox,
        x0 == x1 && y0 == y1);

    std::uint64_t freeBytes = 0, totalBytes = 0;
    const bool haveDisk = api_.GetDiskFreeSpaceExA('C', freeBytes, totalBytes);
    add("gensandbox_drive_size", PafishCategory::kGenericSandbox,
        haveDisk && totalBytes < (60ULL << 30));

    const winapi::MemoryStatusView mem = api_.GlobalMemoryStatusEx();
    add("gensandbox_less_than_onegb", PafishCategory::kGenericSandbox,
        mem.totalPhysBytes <= (1ULL << 30));

    const winapi::SystemInfoView sys = api_.GetSystemInfo();
    add("gensandbox_one_cpu", PafishCategory::kGenericSandbox,
        sys.numberOfProcessors < 2);

    add("gensandbox_uptime", PafishCategory::kGenericSandbox,
        api_.GetTickCount() < 12ULL * 60'000);

    const std::uint64_t tickBefore = api_.GetTickCount();
    api_.Sleep(500);
    const std::uint64_t tickAfter = api_.GetTickCount();
    add("gensandbox_sleep_patched", PafishCategory::kGenericSandbox,
        tickAfter - tickBefore < 450);

    const std::string user = support::toLower(api_.GetUserNameA());
    const bool userBad = user == "sandbox" || user == "cuckoo" ||
                         user == "malware" || user == "virus" ||
                         user == "sample" || user == "currentuser";
    add("gensandbox_username", PafishCategory::kGenericSandbox, userBad);

    const std::string host = support::toLower(api_.GetComputerNameA());
    const bool hostBad = host == "sandbox" || host == "sandbox-pc" ||
                         host == "7silvia" || host == "hanspeter-pc" ||
                         host == "maltest" || host == "tequilaboomboom";
    add("gensandbox_hostname", PafishCategory::kGenericSandbox, hostBad);

    const std::string self = support::toLower(api_.GetModuleFileNameA());
    add("gensandbox_path_sample", PafishCategory::kGenericSandbox,
        icontains(self, "sample") || icontains(self, "malware") ||
            icontains(self, "virus") || icontains(self, "c:\\sandbox"));

    // DNS sinkhole: a never-registered domain that resolves is a sandbox.
    add("gensandbox_dns_sinkhole", PafishCategory::kGenericSandbox,
        api_.DnsQuery("nx-gensandbox-7f3a19.com").has_value());

    bool isVhd = false;
    const winapi::WinError vhd = api_.IsNativeVhdBoot(isVhd);
    add("gensandbox_IsNativeVhdBoot", PafishCategory::kGenericSandbox,
        winapi::ok(vhd) && isVhd);

    // Time acceleration: wall clock (tick) vs TSC must agree.
    const std::uint64_t tsc0 = api_.rdtsc();
    const std::uint64_t wall0 = api_.GetTickCount();
    api_.Sleep(500);
    const std::uint64_t tsc1 = api_.rdtsc();
    const std::uint64_t wall1 = api_.GetTickCount();
    const std::uint64_t tscMs =
        (tsc1 - tsc0) / api_.machine().clock().tscPerMs();
    const std::uint64_t wallMs = wall1 - wall0;
    const bool mismatch =
        wallMs > 0 && (tscMs > wallMs * 3 + 50 || wallMs > tscMs * 3 + 50);
    add("gensandbox_time_accel", PafishCategory::kGenericSandbox, mismatch);
  }

  // ---- Hooks (2) -----------------------------------------------------------
  void hooks() {
    add("hooks_deletefile_m1", PafishCategory::kHooks,
        hooking::checkHook(api_.readFunctionBytes(ApiId::kDeleteFile)));
    add("hooks_shellexecuteexw_m1", PafishCategory::kHooks,
        hooking::checkHook(api_.readFunctionBytes(ApiId::kShellExecuteEx)));
  }

  // ---- Sandboxie (1) --------------------------------------------------------
  void sandboxie() {
    add("sandboxie_sbiedll", PafishCategory::kSandboxie,
        api_.GetModuleHandleA("SbieDll.dll"));
  }

  // ---- Wine (2) ---------------------------------------------------------------
  void wine() {
    add("wine_get_unix_file_name", PafishCategory::kWine,
        api_.GetProcAddress("kernel32.dll", "wine_get_unix_file_name"));
    add("wine_reg_key", PafishCategory::kWine,
        winapi::ok(api_.RegOpenKeyEx("HKCU\\Software\\Wine")));
  }

  // ---- VirtualBox (17) ----------------------------------------------------------
  void virtualBox() {
    auto regKey = [&](const char* name, const std::string& path) {
      add(name, PafishCategory::kVirtualBox,
          winapi::ok(api_.RegOpenKeyEx(path)));
    };
    auto regValueContains = [&](const char* name, const std::string& path,
                                const std::string& valueName,
                                const std::string& needle) {
      RegValue value;
      const bool hit =
          winapi::ok(api_.RegQueryValueEx(path, valueName, value)) &&
          icontains(value.str, needle);
      add(name, PafishCategory::kVirtualBox, hit);
    };
    auto file = [&](const char* name, const std::string& path) {
      add(name, PafishCategory::kVirtualBox,
          api_.GetFileAttributesA(path) != Api::kInvalidFileAttributes);
    };

    regKey("vbox_reg_key1", "SOFTWARE\\Oracle\\VirtualBox Guest Additions");
    regValueContains("vbox_sysbiosver", "HARDWARE\\Description\\System",
                     "SystemBiosVersion", "VBOX");
    regValueContains("vbox_videobios", "HARDWARE\\Description\\System",
                     "VideoBiosVersion", "VIRTUALBOX");
    regKey("vbox_ide_disk",
           "SYSTEM\\CurrentControlSet\\Enum\\IDE\\"
           "DiskVBOX_HARDDISK___________________________1.0_____");
    file("vbox_mouse_sys", "C:\\Windows\\System32\\drivers\\VBoxMouse.sys");
    file("vbox_guest_sys", "C:\\Windows\\System32\\drivers\\VBoxGuest.sys");
    file("vbox_sf_sys", "C:\\Windows\\System32\\drivers\\VBoxSF.sys");
    file("vbox_video_sys", "C:\\Windows\\System32\\drivers\\VBoxVideo.sys");
    file("vbox_disp_dll", "C:\\Windows\\System32\\vboxdisp.dll");
    file("vbox_hook_dll", "C:\\Windows\\System32\\vboxhook.dll");
    file("vbox_tray_exe", "C:\\Windows\\System32\\VBoxTray.exe");

    bool svc = false, tray = false;
    for (const winapi::ProcessEntry& entry :
         api_.CreateToolhelp32Snapshot()) {
      if (iequals(entry.imageName, "VBoxService.exe")) svc = true;
      if (iequals(entry.imageName, "VBoxTray.exe")) tray = true;
    }
    add("vbox_process_service", PafishCategory::kVirtualBox, svc);
    add("vbox_process_tray", PafishCategory::kVirtualBox, tray);

    add("vbox_window_tray", PafishCategory::kVirtualBox,
        api_.FindWindowA("VBoxTrayToolWndClass", ""));

    bool vboxMac = false;
    for (const winsys::AdapterInfo& adapter : api_.GetAdaptersInfo())
      if (support::istartsWith(adapter.mac, "08:00:27")) vboxMac = true;
    add("vbox_mac", PafishCategory::kVirtualBox, vboxMac);

    add("vbox_device_guest", PafishCategory::kVirtualBox,
        winapi::ok(api_.NtCreateFile("\\\\.\\VBoxGuest")));

    add("vbox_acpi", PafishCategory::kVirtualBox,
        icontains(api_.GetSystemFirmwareTable(), "VBOX"));
  }

  // ---- VMware (8) ------------------------------------------------------------------
  void vmware() {
    add("vmware_reg_key1", PafishCategory::kVMware,
        winapi::ok(api_.RegOpenKeyEx("SOFTWARE\\VMware, Inc.\\VMware Tools")));
    add("vmware_mouse_sys", PafishCategory::kVMware,
        api_.GetFileAttributesA(
            "C:\\Windows\\System32\\drivers\\vmmouse.sys") !=
            Api::kInvalidFileAttributes);
    add("vmware_hgfs_sys", PafishCategory::kVMware,
        api_.GetFileAttributesA(
            "C:\\Windows\\System32\\drivers\\vmhgfs.sys") !=
            Api::kInvalidFileAttributes);
    // "VMware device": the vmnet adapter service key left by any install.
    add("vmware_device", PafishCategory::kVMware,
        winapi::ok(api_.RegOpenKeyEx(
            "SYSTEM\\CurrentControlSet\\Services\\vmnetadapter")));

    bool guestMac = false;
    for (const winsys::AdapterInfo& adapter : api_.GetAdaptersInfo())
      if (support::istartsWith(adapter.mac, "00:0C:29")) guestMac = true;
    add("vmware_mac", PafishCategory::kVMware, guestMac);

    bool vmtoolsd = false;
    for (const winapi::ProcessEntry& entry : api_.CreateToolhelp32Snapshot())
      if (iequals(entry.imageName, "vmtoolsd.exe")) vmtoolsd = true;
    add("vmware_process_tools", PafishCategory::kVMware, vmtoolsd);

    add("vmware_window_tray", PafishCategory::kVMware,
        api_.FindWindowA("VMwareTrayWindow", ""));

    RegValue manufacturer;
    const bool smbios =
        winapi::ok(api_.RegQueryValueEx("HARDWARE\\DESCRIPTION\\System\\BIOS",
                                        "SystemManufacturer", manufacturer)) &&
        icontains(manufacturer.str, "VMware");
    add("vmware_smbios", PafishCategory::kVMware, smbios);
  }

  // ---- QEMU (3) -----------------------------------------------------------------------
  void qemu() {
    RegValue identifier;
    const bool scsi =
        winapi::ok(api_.RegQueryValueEx(
            "HARDWARE\\DEVICEMAP\\Scsi\\Scsi Port 0\\Scsi Bus 0\\"
            "Target Id 0\\Logical Unit Id 0",
            "Identifier", identifier)) &&
        icontains(identifier.str, "QEMU");
    add("qemu_reg_scsi", PafishCategory::kQemu, scsi);

    const winsys::CpuidResult b0 = api_.cpuid(0x80000002);
    std::string brand;
    for (std::uint32_t r : {b0.eax, b0.ebx, b0.ecx, b0.edx})
      for (int i = 0; i < 4; ++i) {
        const char c = static_cast<char>((r >> (8 * i)) & 0xFF);
        if (c != 0) brand.push_back(c);
      }
    add("qemu_cpu_brand", PafishCategory::kQemu, icontains(brand, "QEMU"));

    RegValue bios;
    const bool biosHit =
        winapi::ok(api_.RegQueryValueEx("HARDWARE\\Description\\System",
                                        "SystemBiosVersion", bios)) &&
        icontains(bios.str, "QEMU");
    add("qemu_bios", PafishCategory::kQemu, biosHit);
  }

  // ---- Bochs (3) -------------------------------------------------------------------------
  void bochs() {
    RegValue bios;
    const bool biosHit =
        winapi::ok(api_.RegQueryValueEx("HARDWARE\\Description\\System",
                                        "SystemBiosVersion", bios)) &&
        icontains(bios.str, "BOCHS");
    add("bochs_bios", PafishCategory::kBochs, biosHit);

    const winsys::CpuidResult b0 = api_.cpuid(0x80000002);
    std::string brand;
    for (std::uint32_t r : {b0.eax, b0.ebx, b0.ecx, b0.edx})
      for (int i = 0; i < 4; ++i) {
        const char c = static_cast<char>((r >> (8 * i)) & 0xFF);
        if (c != 0) brand.push_back(c);
      }
    add("bochs_cpu_brand", PafishCategory::kBochs,
        icontains(brand, "Bochs"));

    RegValue date;
    const bool dateHit =
        winapi::ok(api_.RegQueryValueEx("HARDWARE\\Description\\System",
                                        "SystemBiosDate", date)) &&
        icontains(date.str, "01/01/2007");
    add("bochs_bios_date", PafishCategory::kBochs, dateHit);
  }

  // ---- Cuckoo (3) -----------------------------------------------------------------------------
  void cuckoo() {
    // All three Cuckoo probes are kernel-object based (named pipes); they
    // are invisible both to user-level hooking and to our Cuckoo setup,
    // which is agent-socket based — Table II reports 0 everywhere.
    add("cuckoo_pipe", PafishCategory::kCuckoo,
        winapi::ok(api_.NtCreateFile("\\\\.\\pipe\\cuckoo")));
    add("cuckoo_pipe_alt", PafishCategory::kCuckoo,
        winapi::ok(api_.NtCreateFile("\\\\.\\cuckoo")));
    add("cuckoo_resultserver_pipe", PafishCategory::kCuckoo,
        winapi::ok(api_.NtCreateFile("\\\\.\\pipe\\cuckoo_result")));
  }

  void runAll() {
    debuggers();
    cpu();
    genericSandbox();
    hooks();
    sandboxie();
    wine();
    virtualBox();
    vmware();
    qemu();
    bochs();
    cuckoo();
  }

 private:
  Api& api_;
  PafishReport& report_;
};

}  // namespace

PafishReport runPafishChecks(Api& api) {
  PafishReport report;
  CheckRunner runner(api, report);
  runner.runAll();
  return report;
}

void PafishProgram::run(Api& api) {
  out_ = runPafishChecks(api);
  api.ExitProcess(0);
}

}  // namespace scarecrow::fingerprint
