// Pafish (Paranoid Fish) reimplementation — the fingerprinting tool of the
// paper's Table II evaluation.
//
// 56 evidence checks across 11 categories (the paper's prose says "54
// pieces of evidence" but its Table II category sizes sum to 56; we follow
// the table, which is what we reproduce). Every check observes the machine
// through the same channels real Pafish uses: Win32/Nt APIs (hookable by
// Scarecrow), CPUID/RDTSC pseudo-instructions and prologue-byte reads
// (not hookable), kernel device objects (not fakeable from user level).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "winapi/api.h"
#include "winapi/guest.h"

namespace scarecrow::fingerprint {

enum class PafishCategory : std::uint8_t {
  kDebuggers,
  kCpu,
  kGenericSandbox,
  kHooks,
  kSandboxie,
  kWine,
  kVirtualBox,
  kVMware,
  kQemu,
  kBochs,
  kCuckoo,
};
inline constexpr std::size_t kPafishCategoryCount = 11;

const char* pafishCategoryName(PafishCategory category) noexcept;

/// Number of evidence checks per category (Table II's parenthesized counts).
std::size_t pafishCategorySize(PafishCategory category) noexcept;

struct PafishCheckResult {
  std::string name;
  PafishCategory category = PafishCategory::kGenericSandbox;
  bool triggered = false;
};

struct PafishReport {
  std::vector<PafishCheckResult> checks;

  std::size_t triggeredIn(PafishCategory category) const;
  std::size_t totalTriggered() const;
  bool triggered(const std::string& checkName) const;
};

/// The Pafish guest program. After run() the report is available; run()
/// never throws except for budget exhaustion.
class PafishProgram : public winapi::GuestProgram {
 public:
  explicit PafishProgram(PafishReport& out) : out_(out) {}
  void run(winapi::Api& api) override;

 private:
  PafishReport& out_;
};

/// Executes every check against an already-bound Api (used by tests that
/// want fine-grained control).
PafishReport runPafishChecks(winapi::Api& api);

}  // namespace scarecrow::fingerprint
