// Fingerprinting harness: runs Pafish / wear-and-tear measurements on a
// machine with or without Scarecrow supervision, and generates the labeled
// machine population used to train wear-and-tear decision trees.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.h"
#include "fingerprint/decision_tree.h"
#include "fingerprint/pafish.h"
#include "fingerprint/sandprint.h"
#include "fingerprint/weartear.h"
#include "winsys/machine.h"

namespace scarecrow::fingerprint {

struct FingerprintRunOptions {
  bool withScarecrow = false;
  core::Config config;
  /// Inject the Cuckoo usermode monitor into the fingerprinting process
  /// (true on the VM-sandbox environment, where Cuckoo instruments every
  /// analyzed binary).
  bool injectCuckooMonitor = false;
};

/// Runs Pafish on the machine; the machine is snapshotted and restored so
/// repeated runs are independent.
PafishReport runPafishOn(winsys::Machine& machine,
                         const FingerprintRunOptions& options);

/// Measures the 44 wear-and-tear artifacts the same way.
ArtifactVector measureWearTearOn(winsys::Machine& machine,
                                 const FingerprintRunOptions& options);

/// Collects a SandPrint-style fingerprint the same way.
SandboxFingerprint collectSandprintOn(winsys::Machine& machine,
                                      const FingerprintRunOptions& options);

/// Generates `perClass` aged end-user machines and `perClass` pristine
/// sandbox machines, measures their artifacts, and returns labeled samples.
/// Pristine machines carry decoy documents/browser files (sandbox operators
/// plant those), which is precisely why registry/event/DNS artifacts are
/// the discriminative ones — matching the S&P'17 finding.
std::vector<LabeledSample> generateTrainingSet(std::size_t perClass,
                                               std::uint64_t seed);

}  // namespace scarecrow::fingerprint
