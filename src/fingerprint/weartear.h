// Wear-and-tear artifact measurement (Miramirkhani et al., S&P'17), the
// fingerprinting technique of the paper's Table III evaluation.
//
// 44 artifacts across 5 categories quantify how "used" a system looks.
// Scarecrow's extension (Section IV-C2) fakes the top-5 artifacts plus the
// whole registry category; the remaining artifacts are measured live —
// though several filesystem/browser artifacts deflate indirectly because
// Scarecrow also fakes GetUserName, which relocates the probed profile
// directories.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "winapi/api.h"
#include "winapi/guest.h"

namespace scarecrow::fingerprint {

enum class ArtifactCategory : std::uint8_t {
  kRegistry,
  kSystem,      // event log / uptime
  kFilesystem,
  kBrowser,
  kNetwork,
};

const char* artifactCategoryName(ArtifactCategory category) noexcept;

inline constexpr std::size_t kArtifactCount = 44;

struct ArtifactInfo {
  const char* name;
  ArtifactCategory category;
  /// Among the S&P'17 top-5 most discriminative artifacts.
  bool top5;
  /// Faked by Scarecrow's wear-and-tear extension (Table III rows).
  bool fakedByScarecrow;
};

/// Static metadata for all 44 artifacts, index-aligned with measurements.
const std::array<ArtifactInfo, kArtifactCount>& artifactTable() noexcept;

std::size_t artifactIndex(const std::string& name);

using ArtifactVector = std::array<double, kArtifactCount>;

/// Measures every artifact through the user-level API surface.
ArtifactVector measureArtifacts(winapi::Api& api);

/// Guest program wrapper (run under a controller to measure "with
/// Scarecrow" values).
class WearTearProgram : public winapi::GuestProgram {
 public:
  explicit WearTearProgram(ArtifactVector& out) : out_(out) {}
  void run(winapi::Api& api) override;

 private:
  ArtifactVector& out_;
};

}  // namespace scarecrow::fingerprint
