#include "fingerprint/weartear.h"

#include <set>
#include <stdexcept>

#include "support/strings.h"

namespace scarecrow::fingerprint {

using winapi::Api;
using winsys::RegValue;

const char* artifactCategoryName(ArtifactCategory category) noexcept {
  switch (category) {
    case ArtifactCategory::kRegistry: return "registry";
    case ArtifactCategory::kSystem: return "system";
    case ArtifactCategory::kFilesystem: return "filesystem";
    case ArtifactCategory::kBrowser: return "browser";
    case ArtifactCategory::kNetwork: return "network";
  }
  return "?";
}

const std::array<ArtifactInfo, kArtifactCount>& artifactTable() noexcept {
  using C = ArtifactCategory;
  static const std::array<ArtifactInfo, kArtifactCount> table = {{
      // --- registry (13): Table III's largest category ---------------------
      {"regSize", C::kRegistry, false, true},
      {"uninstallCount", C::kRegistry, false, true},
      {"totalSharedDlls", C::kRegistry, false, true},
      {"totalAppPaths", C::kRegistry, false, true},
      {"totalActiveSetup", C::kRegistry, false, true},
      {"totalMissingDlls", C::kRegistry, false, true},
      {"usrassistCount", C::kRegistry, false, true},
      {"shimCacheCount", C::kRegistry, false, true},
      {"MUICacheEntries", C::kRegistry, false, true},
      {"FireruleCount", C::kRegistry, false, true},
      {"USBStorCount", C::kRegistry, false, true},
      {"deviceClsCount", C::kRegistry, true, true},   // top-5
      {"autoRunCount", C::kRegistry, true, true},     // top-5
      // --- system / event log (7) ------------------------------------------
      {"sysevt", C::kSystem, true, true},             // top-5
      {"syssrc", C::kSystem, true, true},             // top-5
      {"bootEvents", C::kSystem, false, false},
      {"appErrorEvents", C::kSystem, false, false},
      {"updateEvents", C::kSystem, false, false},
      {"scmEvents", C::kSystem, false, false},
      {"uptimeMinutes", C::kSystem, false, false},
      // --- filesystem (10) ---------------------------------------------------
      {"prefetchCount", C::kFilesystem, false, false},
      {"tempFileCount", C::kFilesystem, false, false},
      {"documentsCount", C::kFilesystem, false, false},
      {"downloadsCount", C::kFilesystem, false, false},
      {"desktopCount", C::kFilesystem, false, false},
      {"desktopLnkCount", C::kFilesystem, false, false},
      {"programFilesCount", C::kFilesystem, false, false},
      {"windowsTempCount", C::kFilesystem, false, false},
      {"thumbcachePresent", C::kFilesystem, false, false},
      {"diskUsedPercent", C::kFilesystem, false, false},
      // --- browser (7) ----------------------------------------------------------
      {"historyPresent", C::kBrowser, false, false},
      {"cookiesPresent", C::kBrowser, false, false},
      {"bookmarksPresent", C::kBrowser, false, false},
      {"faviconsPresent", C::kBrowser, false, false},
      {"extensionCount", C::kBrowser, false, false},
      {"typedUrlsCount", C::kBrowser, false, false},
      {"chromeProfilePresent", C::kBrowser, false, false},
      // --- network (7) --------------------------------------------------------------
      {"dnscacheEntries", C::kNetwork, true, true},   // top-5
      {"dnsDistinctDomains", C::kNetwork, false, false},
      {"wifiProfilesCount", C::kNetwork, false, false},
      {"arpCacheCount", C::kNetwork, false, false},
      {"netSharesCount", C::kNetwork, false, false},
      {"adapterCount", C::kNetwork, false, false},
      {"proxyConfigured", C::kNetwork, false, false},
  }};
  return table;
}

std::size_t artifactIndex(const std::string& name) {
  const auto& table = artifactTable();
  for (std::size_t i = 0; i < table.size(); ++i)
    if (name == table[i].name) return i;
  throw std::out_of_range("unknown artifact: " + name);
}

namespace {

double regSubkeys(Api& api, const std::string& path) {
  std::uint32_t subkeys = 0, values = 0;
  if (!winapi::ok(api.RegQueryInfoKey(path, subkeys, values))) return 0;
  return subkeys;
}

double regValues(Api& api, const std::string& path) {
  std::uint32_t subkeys = 0, values = 0;
  if (!winapi::ok(api.RegQueryInfoKey(path, subkeys, values))) return 0;
  return values;
}

double fileCount(Api& api, const std::string& dir,
                 const std::string& pattern = "*") {
  return static_cast<double>(api.FindFirstFileA(dir, pattern).size());
}

double filePresent(Api& api, const std::string& path) {
  return api.GetFileAttributesA(path) != Api::kInvalidFileAttributes ? 1 : 0;
}

}  // namespace

ArtifactVector measureArtifacts(Api& api) {
  ArtifactVector v{};
  auto set = [&v](const char* name, double value) {
    v[artifactIndex(name)] = value;
  };

  // --- registry -----------------------------------------------------------
  set("regSize",
      static_cast<double>(api.NtQuerySystemInformation(
          winapi::SystemInfoClass::kRegistryQuotaInformation)));
  const std::string uninstall =
      "SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Uninstall";
  set("uninstallCount", regSubkeys(api, uninstall));
  const std::string sharedDlls =
      "SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\SharedDlls";
  set("totalSharedDlls", regValues(api, sharedDlls));
  set("totalAppPaths",
      regSubkeys(api, "SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\"
                      "App Paths"));
  set("totalActiveSetup",
      regSubkeys(api, "SOFTWARE\\Microsoft\\Active Setup\\"
                      "Installed Components"));

  // Missing DLLs: SharedDlls entries whose file no longer exists.
  double missing = 0;
  {
    std::string name;
    RegValue value;
    for (std::uint32_t i = 0;
         winapi::ok(api.RegEnumValue(sharedDlls, i, name, value)); ++i) {
      if (!winapi::ok(api.NtCreateFile(name))) ++missing;
      if (i > 512) break;
    }
  }
  set("totalMissingDlls", missing);

  set("usrassistCount",
      regValues(api, "HKCU\\Software\\Microsoft\\Windows\\CurrentVersion\\"
                     "Explorer\\UserAssist\\"
                     "{CEBFF5CD-ACE2-4F4F-9178-9926F41749EA}\\Count"));
  RegValue shim;
  set("shimCacheCount",
      winapi::ok(api.NtQueryValueKey(
          "SYSTEM\\CurrentControlSet\\Control\\Session Manager\\"
          "AppCompatCache",
          "CacheEntryCount", shim))
          ? static_cast<double>(shim.num)
          : 0);
  set("MUICacheEntries",
      regValues(api, "HKCU\\Software\\Classes\\Local Settings\\Software\\"
                     "Microsoft\\Windows\\Shell\\MuiCache"));
  set("FireruleCount",
      regValues(api, "SYSTEM\\ControlSet001\\Services\\SharedAccess\\"
                     "Parameters\\FirewallPolicy\\FirewallRules"));
  set("USBStorCount",
      regSubkeys(api, "SYSTEM\\CurrentControlSet\\Services\\UsbStor"));
  set("deviceClsCount",
      regSubkeys(api, "SYSTEM\\CurrentControlSet\\Control\\DeviceClasses"));
  set("autoRunCount",
      regValues(api, "SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Run"));

  // --- system / event log ----------------------------------------------------
  const std::vector<winapi::EventView> events = api.EvtNext(100'000);
  set("sysevt", static_cast<double>(events.size()));
  std::set<std::string> sources;
  double boot = 0, appErr = 0, update = 0, scm = 0;
  for (const winapi::EventView& e : events) {
    sources.insert(e.source);
    if (e.source == "EventLog" && e.id == 6005) ++boot;
    if (e.source == "Application Error") ++appErr;
    if (e.source == "Windows Update Agent") ++update;
    if (e.source == "Service Control Manager") ++scm;
  }
  set("syssrc", static_cast<double>(sources.size()));
  set("bootEvents", boot);
  set("appErrorEvents", appErr);
  set("updateEvents", update);
  set("scmEvents", scm);
  set("uptimeMinutes", static_cast<double>(api.GetTickCount()) / 60'000.0);

  // --- filesystem ---------------------------------------------------------------
  const std::string user = api.GetUserNameA();
  const std::string userRoot = "C:\\Users\\" + user;
  set("prefetchCount", fileCount(api, "C:\\Windows\\Prefetch", "*.pf"));
  set("tempFileCount",
      fileCount(api, userRoot + "\\AppData\\Local\\Temp"));
  set("documentsCount", fileCount(api, userRoot + "\\Documents"));
  set("downloadsCount", fileCount(api, userRoot + "\\Downloads"));
  set("desktopCount", fileCount(api, userRoot + "\\Desktop"));
  set("desktopLnkCount", fileCount(api, userRoot + "\\Desktop", "*.lnk"));
  set("programFilesCount", fileCount(api, "C:\\Program Files"));
  set("windowsTempCount", fileCount(api, "C:\\Windows\\Temp"));
  set("thumbcachePresent",
      filePresent(api, userRoot + "\\AppData\\Local\\Microsoft\\Windows\\"
                                  "Explorer\\thumbcache_256.db"));
  std::uint64_t freeBytes = 0, totalBytes = 0;
  if (api.GetDiskFreeSpaceExA('C', freeBytes, totalBytes) && totalBytes > 0)
    set("diskUsedPercent",
        100.0 * static_cast<double>(totalBytes - freeBytes) /
            static_cast<double>(totalBytes));

  // --- browser --------------------------------------------------------------------
  const std::string chrome =
      userRoot + "\\AppData\\Local\\Google\\Chrome\\User Data\\Default";
  set("historyPresent", filePresent(api, chrome + "\\History"));
  set("cookiesPresent", filePresent(api, chrome + "\\Cookies"));
  set("bookmarksPresent", filePresent(api, chrome + "\\Bookmarks"));
  set("faviconsPresent", filePresent(api, chrome + "\\Favicons"));
  set("extensionCount", fileCount(api, chrome + "\\Extensions"));
  set("typedUrlsCount",
      regValues(api, "HKCU\\Software\\Microsoft\\Internet Explorer\\"
                     "TypedURLs"));
  set("chromeProfilePresent",
      api.GetFileAttributesA(chrome) != Api::kInvalidFileAttributes ? 1 : 0);

  // --- network ---------------------------------------------------------------------
  const std::vector<winapi::DnsCacheRow> cache = api.DnsGetCacheDataTable();
  set("dnscacheEntries", static_cast<double>(cache.size()));
  std::set<std::string> domains;
  for (const winapi::DnsCacheRow& row : cache)
    domains.insert(support::toLower(row.domain));
  set("dnsDistinctDomains", static_cast<double>(domains.size()));
  set("wifiProfilesCount",
      regSubkeys(api, "SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion\\"
                      "NetworkList\\Profiles"));
  set("arpCacheCount", regValues(api, "SOFTWARE\\Scarecrow\\Sim\\ArpCache"));
  set("netSharesCount",
      regValues(api, "SYSTEM\\CurrentControlSet\\Services\\LanmanServer\\"
                     "Shares"));
  set("adapterCount", static_cast<double>(api.GetAdaptersInfo().size()));
  RegValue proxy;
  set("proxyConfigured",
      winapi::ok(api.RegQueryValueEx(
          "HKCU\\Software\\Microsoft\\Windows\\CurrentVersion\\"
          "Internet Settings",
          "ProxyEnable", proxy)) && proxy.num != 0
          ? 1
          : 0);
  return v;
}

void WearTearProgram::run(Api& api) {
  out_ = measureArtifacts(api);
  api.ExitProcess(0);
}

}  // namespace scarecrow::fingerprint
