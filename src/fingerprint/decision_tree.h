// CART decision tree over wear-and-tear artifact vectors.
//
// Miramirkhani et al. train decision trees that label a machine "real
// device" or "analysis sandbox" from its artifact vector; the paper's
// Table III defense targets exactly the artifacts those trees split on.
// This is a small, dependency-free CART: binary splits on feature <=
// threshold, Gini impurity, depth- and min-samples-limited.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "fingerprint/weartear.h"

namespace scarecrow::fingerprint {

enum class MachineLabel : std::uint8_t { kRealDevice, kSandbox };

struct LabeledSample {
  ArtifactVector features{};
  MachineLabel label = MachineLabel::kRealDevice;
};

struct TreeParams {
  std::size_t maxDepth = 4;
  std::size_t minSamplesSplit = 4;
};

class DecisionTree {
 public:
  /// Trains on the given samples; featureMask (optional) restricts the
  /// features the tree may split on — empty mask means all 44.
  void train(const std::vector<LabeledSample>& samples,
             const TreeParams& params = {},
             const std::set<std::size_t>& featureMask = {});

  MachineLabel classify(const ArtifactVector& features) const;

  /// Indices of artifacts used as split features anywhere in the tree —
  /// the set Scarecrow must fake to steer the classifier.
  std::set<std::size_t> usedFeatures() const;

  /// Fraction of samples classified correctly.
  double accuracy(const std::vector<LabeledSample>& samples) const;

  std::size_t nodeCount() const noexcept { return nodes_.size(); }
  bool trained() const noexcept { return !nodes_.empty(); }

  /// Multi-line human-readable rendering (artifact names at splits).
  std::string describe() const;

 private:
  struct Node {
    bool leaf = true;
    MachineLabel label = MachineLabel::kRealDevice;
    std::size_t feature = 0;
    double threshold = 0.0;
    std::int32_t left = -1;   // feature <= threshold
    std::int32_t right = -1;  // feature >  threshold
  };

  std::int32_t build(std::vector<const LabeledSample*>& samples,
                     std::size_t depth, const TreeParams& params,
                     const std::vector<std::size_t>& features);
  void describeNode(std::int32_t index, int indent, std::string& out) const;

  std::vector<Node> nodes_;
};

}  // namespace scarecrow::fingerprint
