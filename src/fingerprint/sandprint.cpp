#include "fingerprint/sandprint.h"

#include "hooking/inline_hook.h"
#include "support/strings.h"

namespace scarecrow::fingerprint {

using winapi::Api;

namespace {

std::string bucketBytes(std::uint64_t bytes) {
  // Power-of-two GB buckets: "1GB", "2GB", "4GB", ...
  std::uint64_t gb = bytes >> 30;
  std::uint64_t bucket = 1;
  while (bucket < gb) bucket <<= 1;
  return std::to_string(bucket) + "GB";
}

std::string bucketCount(std::uint64_t n, std::uint64_t step) {
  return "<=" + std::to_string(((n + step - 1) / step) * step);
}

}  // namespace

std::string SandboxFingerprint::digest() const {
  std::uint64_t hash = 14695981039346656037ULL;  // FNV-1a offset basis
  auto mix = [&hash](const std::string& s) {
    for (unsigned char c : s) {
      hash ^= c;
      hash *= 1099511628211ULL;
    }
    hash ^= 0x1F;
    hash *= 1099511628211ULL;
  };
  for (const auto& [name, value] : features) {
    mix(name);
    mix(value);
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

std::vector<std::string> SandboxFingerprint::diff(
    const SandboxFingerprint& other) const {
  std::vector<std::string> out;
  for (const auto& [name, value] : features) {
    auto it = other.features.find(name);
    if (it == other.features.end() || it->second != value)
      out.push_back(name);
  }
  for (const auto& [name, value] : other.features)
    if (features.find(name) == features.end()) out.push_back(name);
  return out;
}

const std::vector<std::string>& unsteerableFeatures() {
  static const std::vector<std::string> features = {
      "net.mac_oui", "fw.acpi_oem", "cpu.vmexit_bucket",
  };
  return features;
}

SandboxFingerprint collectSandprint(Api& api) {
  SandboxFingerprint fp;
  auto set = [&fp](const char* name, std::string value) {
    fp.features[name] = std::move(value);
  };

  // ---- identity ----------------------------------------------------------
  set("id.user", support::toLower(api.GetUserNameA()));
  set("id.computer", support::toLower(api.GetComputerNameA()));
  set("id.self_path", support::toLower(api.GetModuleFileNameA()));

  // ---- hardware ----------------------------------------------------------
  set("hw.cores", std::to_string(api.GetSystemInfo().numberOfProcessors));
  set("hw.ram", bucketBytes(api.GlobalMemoryStatusEx().totalPhysBytes));
  std::uint64_t freeBytes = 0, totalBytes = 0;
  api.GetDiskFreeSpaceExA('C', freeBytes, totalBytes);
  set("hw.disk", bucketBytes(totalBytes));
  set("hw.screen", std::to_string(api.GetSystemMetrics(0)) + "x" +
                       std::to_string(api.GetSystemMetrics(1)));

  // ---- firmware / registry identity ---------------------------------------
  winsys::RegValue value;
  set("fw.bios",
      winapi::ok(api.RegQueryValueEx("HARDWARE\\Description\\System",
                                     "SystemBiosVersion", value))
          ? value.str
          : "-");
  set("fw.scsi0",
      winapi::ok(api.RegQueryValueEx(
          "HARDWARE\\DEVICEMAP\\Scsi\\Scsi Port 0\\Scsi Bus 0\\"
          "Target Id 0\\Logical Unit Id 0",
          "Identifier", value))
          ? value.str
          : "-");
  set("fw.acpi_oem", api.GetSystemFirmwareTable());

  // ---- runtime state -------------------------------------------------------
  set("rt.uptime_bucket",
      api.GetTickCount() < 12ULL * 60'000 ? "young" : "aged");
  set("rt.proc_count",
      bucketCount(api.CreateToolhelp32Snapshot().size(), 16));
  set("rt.debugger", api.IsDebuggerPresent() ? "1" : "0");
  set("rt.hooked_deletefile",
      hooking::checkHook(api.readFunctionBytes(winapi::ApiId::kDeleteFile))
          ? "1"
          : "0");
  {
    const std::uint64_t t0 = api.GetTickCount();
    api.Sleep(500);
    set("rt.sleep_patched", api.GetTickCount() - t0 < 450 ? "1" : "0");
  }
  set("rt.sbiedll", api.GetModuleHandleA("SbieDll.dll") ? "1" : "0");

  // ---- network --------------------------------------------------------------
  set("net.nx_sinkhole",
      api.DnsQuery("sandprint-probe-zz17.org").has_value() ? "1" : "0");
  std::string oui = "-";
  const auto adapters = api.GetAdaptersInfo();
  if (!adapters.empty()) oui = adapters.front().mac.substr(0, 8);
  set("net.mac_oui", oui);

  // ---- instruction channels ---------------------------------------------------
  std::uint64_t vmexit = 0;
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t t0 = api.rdtsc();
    (void)api.cpuid(0x1);
    vmexit += api.rdtsc() - t0;
  }
  set("cpu.vmexit_bucket", vmexit / 4 > 10'000 ? "trap" : "fast");
  set("cpu.hv_bit", (api.cpuid(0x1).ecx & (1u << 31)) != 0 ? "1" : "0");

  return fp;
}

}  // namespace scarecrow::fingerprint
