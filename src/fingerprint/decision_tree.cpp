#include "fingerprint/decision_tree.h"

#include <algorithm>

namespace scarecrow::fingerprint {
namespace {

double gini(std::size_t real, std::size_t sandbox) {
  const double total = static_cast<double>(real + sandbox);
  if (total == 0) return 0.0;
  const double pr = real / total;
  const double ps = sandbox / total;
  return 1.0 - pr * pr - ps * ps;
}

MachineLabel majority(const std::vector<const LabeledSample*>& samples) {
  std::size_t real = 0;
  for (const LabeledSample* s : samples)
    if (s->label == MachineLabel::kRealDevice) ++real;
  return real * 2 >= samples.size() ? MachineLabel::kRealDevice
                                    : MachineLabel::kSandbox;
}

bool pure(const std::vector<const LabeledSample*>& samples) {
  for (const LabeledSample* s : samples)
    if (s->label != samples.front()->label) return false;
  return true;
}

}  // namespace

void DecisionTree::train(const std::vector<LabeledSample>& samples,
                         const TreeParams& params,
                         const std::set<std::size_t>& featureMask) {
  nodes_.clear();
  if (samples.empty()) return;
  std::vector<const LabeledSample*> ptrs;
  ptrs.reserve(samples.size());
  for (const LabeledSample& s : samples) ptrs.push_back(&s);

  std::vector<std::size_t> features;
  if (featureMask.empty()) {
    for (std::size_t i = 0; i < kArtifactCount; ++i) features.push_back(i);
  } else {
    features.assign(featureMask.begin(), featureMask.end());
  }
  build(ptrs, 0, params, features);
}

std::int32_t DecisionTree::build(std::vector<const LabeledSample*>& samples,
                                 std::size_t depth, const TreeParams& params,
                                 const std::vector<std::size_t>& features) {
  const std::int32_t index = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[index].label = majority(samples);

  if (depth >= params.maxDepth || samples.size() < params.minSamplesSplit ||
      pure(samples))
    return index;

  // Exhaustive best split: for each candidate feature, thresholds at
  // midpoints between consecutive distinct values.
  double bestGini = 2.0;
  std::size_t bestFeature = 0;
  double bestThreshold = 0.0;
  for (std::size_t f : features) {
    std::vector<double> values;
    values.reserve(samples.size());
    for (const LabeledSample* s : samples) values.push_back(s->features[f]);
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    for (std::size_t i = 0; i + 1 < values.size(); ++i) {
      const double threshold = (values[i] + values[i + 1]) / 2.0;
      std::size_t lr = 0, ls = 0, rr = 0, rs = 0;
      for (const LabeledSample* s : samples) {
        const bool left = s->features[f] <= threshold;
        const bool real = s->label == MachineLabel::kRealDevice;
        if (left)
          real ? ++lr : ++ls;
        else
          real ? ++rr : ++rs;
      }
      const double total = static_cast<double>(samples.size());
      const double weighted = (lr + ls) / total * gini(lr, ls) +
                              (rr + rs) / total * gini(rr, rs);
      if (weighted < bestGini) {
        bestGini = weighted;
        bestFeature = f;
        bestThreshold = threshold;
      }
    }
  }
  if (bestGini >= 2.0) return index;  // no valid split

  std::vector<const LabeledSample*> left, right;
  for (const LabeledSample* s : samples)
    (s->features[bestFeature] <= bestThreshold ? left : right).push_back(s);
  if (left.empty() || right.empty()) return index;

  const std::int32_t leftChild = build(left, depth + 1, params, features);
  const std::int32_t rightChild = build(right, depth + 1, params, features);
  Node& node = nodes_[index];
  node.leaf = false;
  node.feature = bestFeature;
  node.threshold = bestThreshold;
  node.left = leftChild;
  node.right = rightChild;
  return index;
}

MachineLabel DecisionTree::classify(const ArtifactVector& features) const {
  if (nodes_.empty()) return MachineLabel::kRealDevice;
  std::int32_t index = 0;
  for (;;) {
    const Node& node = nodes_[static_cast<std::size_t>(index)];
    if (node.leaf) return node.label;
    index = features[node.feature] <= node.threshold ? node.left : node.right;
  }
}

std::set<std::size_t> DecisionTree::usedFeatures() const {
  std::set<std::size_t> out;
  for (const Node& node : nodes_)
    if (!node.leaf) out.insert(node.feature);
  return out;
}

double DecisionTree::accuracy(const std::vector<LabeledSample>& samples) const {
  if (samples.empty()) return 0.0;
  std::size_t correct = 0;
  for (const LabeledSample& s : samples)
    if (classify(s.features) == s.label) ++correct;
  return static_cast<double>(correct) / static_cast<double>(samples.size());
}

void DecisionTree::describeNode(std::int32_t index, int indent,
                                std::string& out) const {
  const Node& node = nodes_[static_cast<std::size_t>(index)];
  out.append(static_cast<std::size_t>(indent) * 2, ' ');
  if (node.leaf) {
    out += node.label == MachineLabel::kRealDevice ? "-> real device\n"
                                                   : "-> sandbox\n";
    return;
  }
  out += artifactTable()[node.feature].name;
  out += " <= ";
  out += std::to_string(node.threshold);
  out += '\n';
  describeNode(node.left, indent + 1, out);
  describeNode(node.right, indent + 1, out);
}

std::string DecisionTree::describe() const {
  std::string out;
  if (!nodes_.empty()) describeNode(0, 0, out);
  return out;
}

}  // namespace scarecrow::fingerprint
