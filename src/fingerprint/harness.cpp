#include "fingerprint/harness.h"

#include "core/controller.h"
#include "core/engine.h"
#include "env/aging.h"
#include "env/base_image.h"
#include "env/environments.h"
#include "hooking/injector.h"
#include "support/strings.h"
#include "winapi/runner.h"

namespace scarecrow::fingerprint {

using winsys::Machine;

namespace {

/// Runs `program` as "tool.exe" on the machine under the given options and
/// restores the machine afterwards.
void runTool(Machine& machine, const FingerprintRunOptions& options,
             winapi::GuestProgram& program) {
  const winsys::MachineSnapshot snapshot = machine.snapshot();

  winapi::UserSpace userspace;
  winapi::GuestProgram* tool = &program;
  userspace.programFactory =
      [tool](const std::string& image,
             const std::string&) -> std::unique_ptr<winapi::GuestProgram> {
    if (!support::iendsWith(image, "tool.exe")) return nullptr;
    // Non-owning forwarding shim: the harness owns the real program.
    struct Shim : winapi::GuestProgram {
      explicit Shim(winapi::GuestProgram* inner) : inner(inner) {}
      void run(winapi::Api& api) override { inner->run(api); }
      winapi::GuestProgram* inner;
    };
    return std::make_unique<Shim>(tool);
  };

  winapi::Runner runner(machine, userspace);
  winapi::RunOptions runOptions;
  runOptions.budgetMs = 60'000;

  const std::string userDesktop =
      "C:\\Users\\" + machine.sysinfo().userName + "\\Desktop\\tool.exe";

  if (options.withScarecrow) {
    core::DeceptionEngine engine(options.config,
                                 core::buildDefaultResourceDb());
    core::Controller controller(machine, userspace, engine);
    const std::uint32_t pid = controller.launch(userDesktop);
    if (options.injectCuckooMonitor)
      hooking::injectDll(machine, userspace, pid, env::cuckooMonitorDll());
    runner.drain(runOptions);
  } else {
    const std::uint32_t pid = runner.spawnRoot(userDesktop, runOptions);
    if (options.injectCuckooMonitor)
      hooking::injectDll(machine, userspace, pid, env::cuckooMonitorDll());
    runner.drain(runOptions);
  }

  machine.restore(snapshot);
}

}  // namespace

PafishReport runPafishOn(Machine& machine,
                         const FingerprintRunOptions& options) {
  PafishReport report;
  PafishProgram pafish(report);
  runTool(machine, options, pafish);
  return report;
}

ArtifactVector measureWearTearOn(Machine& machine,
                                 const FingerprintRunOptions& options) {
  ArtifactVector artifacts{};
  WearTearProgram program(artifacts);
  runTool(machine, options, program);
  return artifacts;
}

namespace {

class SandprintProgram : public winapi::GuestProgram {
 public:
  explicit SandprintProgram(SandboxFingerprint& out) : out_(out) {}
  void run(winapi::Api& api) override {
    out_ = collectSandprint(api);
    api.ExitProcess(0);
  }

 private:
  SandboxFingerprint& out_;
};

}  // namespace

SandboxFingerprint collectSandprintOn(Machine& machine,
                                      const FingerprintRunOptions& options) {
  SandboxFingerprint fingerprint;
  SandprintProgram program(fingerprint);
  runTool(machine, options, program);
  return fingerprint;
}

std::vector<LabeledSample> generateTrainingSet(std::size_t perClass,
                                               std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<LabeledSample> samples;
  samples.reserve(perClass * 2);

  auto measure = [](Machine& machine) {
    ArtifactVector v{};
    WearTearProgram program(v);
    FingerprintRunOptions options;  // raw measurement, no deception
    runTool(machine, options, program);
    return v;
  };

  for (std::size_t i = 0; i < perClass; ++i) {
    // Aged end-user machine: months in [6, 36], varied intensity.
    Machine aged;
    env::BaseImageOptions base;
    base.userName = "user" + std::to_string(i);
    base.uptimeMs = (1 + rng.below(14)) * 86'400'000ULL;
    env::installBaseImage(aged, base);
    support::Rng agedRng = rng.fork();
    env::applyAging(aged,
                    {6.0 + rng.uniform() * 30.0, 0.6 + rng.uniform() * 1.4},
                    agedRng);
    samples.push_back({measure(aged), MachineLabel::kRealDevice});

    // Pristine sandbox machine: near-zero organic aging plus planted
    // decoys (documents, downloads, browser profile) — the cosmetics
    // sandbox operators actually apply.
    Machine sandbox;
    env::BaseImageOptions sandboxBase;
    sandboxBase.userName = "john";
    sandboxBase.diskTotalBytes = (20ULL + rng.below(40)) << 30;
    sandboxBase.ramBytes = (1ULL + rng.below(3)) << 30;
    sandboxBase.cpuCores = 1 + static_cast<std::uint32_t>(rng.below(2));
    sandboxBase.uptimeMs = (10 + rng.below(50)) * 60'000ULL;
    env::installBaseImage(sandbox, sandboxBase);
    support::Rng sandboxRng = rng.fork();
    env::applyAging(sandbox, {0.05 + rng.uniform() * 0.4, 0.5}, sandboxRng);
    // Image-to-image variation in hive bulk (service packs, preinstalled
    // tooling) — keeps pristine regSize a distribution, not a constant.
    sandbox.registry().addOpaqueBytes(rng.below(30ULL << 20));
    winsys::Vfs& fs = sandbox.vfs();
    const std::string userRoot = "C:\\Users\\john";
    const std::uint64_t decoys = 5 + rng.below(40);
    for (std::uint64_t d = 0; d < decoys; ++d)
      fs.createFile(userRoot + "\\Documents\\decoy_" + std::to_string(d) +
                        ".docx",
                    rng.below(1 << 20));
    for (std::uint64_t d = 0; d < decoys / 2; ++d)
      fs.createFile(userRoot + "\\Downloads\\decoy_" + std::to_string(d) +
                        ".pdf",
                    rng.below(1 << 20));
    const std::string chrome =
        userRoot + "\\AppData\\Local\\Google\\Chrome\\User Data\\Default";
    fs.makeDirs(chrome);
    fs.createFile(chrome + "\\History", 1 + rng.below(2 << 20));
    fs.createFile(chrome + "\\Cookies", 1 + rng.below(1 << 20));
    fs.createFile(chrome + "\\Bookmarks", 1 + rng.below(64 << 10));
    samples.push_back({measure(sandbox), MachineLabel::kSandbox});
  }
  return samples;
}

}  // namespace scarecrow::fingerprint
