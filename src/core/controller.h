// ScarecrowController: the scarecrow.exe process (paper Section III-B,
// Figure 2).
//
// The controller starts the target program itself — so the target's parent
// process is the controller, mimicking the analysis-daemon launch procedure
// sandboxes use — injects scarecrow.dll before the first instruction runs,
// then exchanges runtime information with the DLL over IPC: fingerprint
// alerts, descendant injections, self-spawn warnings.
//
// Robustness (DESIGN.md §11): the root injection is retried with a
// doubling virtual-clock backoff (Config::injectMaxAttempts /
// injectBackoffMs) before the run is declared monitor-only, and a
// kInjectFailed IPC from the engine's CreateProcess hook — a descendant
// the DLL could not reach — triggers a controller-side re-injection
// during pump().
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "obs/metrics.h"
#include "winapi/runner.h"
#include "winsys/machine.h"

namespace scarecrow::core {

/// A deduplicated fingerprint report (Figure 2's runtime information).
struct FingerprintReport {
  std::string api;
  std::string resource;
  std::uint32_t count = 0;
  std::uint64_t firstSeenMs = 0;
};

class Controller {
 public:
  /// The engine is shared (not owned): benches reuse one engine/resource
  /// database across many supervised executions, like a resident
  /// scarecrow.exe service.
  Controller(winsys::Machine& machine, winapi::UserSpace& userspace,
             DeceptionEngine& engine);

  /// Launches `imagePath` the Scarecrow way: controller process as parent,
  /// DLL injected pre-execution. Returns the target pid (queued, not yet
  /// run — call winapi::Runner::drain to execute).
  std::uint32_t launch(const std::string& imagePath,
                       const std::string& commandLine = {});

  /// Drains IPC from the injected DLLs and folds alerts into the report.
  void pump();

  /// Fingerprint attempts in first-seen order (after pump()).
  const std::vector<FingerprintReport>& reports() const noexcept {
    return reports_;
  }
  /// First fingerprint trigger, or empty — Table I's "Trigger" column.
  std::string firstTrigger() const;
  /// Causal-chain id of the first fingerprint attempt (0 when none): the
  /// handle trigger attribution walks the flight recorder with.
  std::uint64_t firstTriggerCorrelation() const noexcept {
    return firstTriggerCorrelation_;
  }

  std::uint32_t selfSpawnAlerts() const noexcept { return selfSpawnAlerts_; }
  std::uint32_t injectedChildren() const noexcept { return injected_; }
  std::uint32_t controllerPid() const noexcept { return controllerPid_; }

  /// Arms launch()'s kInjectDll fault site and the re-injection path (the
  /// injector is also handed to every injectDll call). Not owned.
  void setFaultInjector(faults::FaultInjector* faults) noexcept {
    faults_ = faults;
  }

  /// False when every launch() attempt failed — the run is monitor-only.
  bool injectionSucceeded() const noexcept { return injectionSucceeded_; }
  /// Retries launch() spent beyond the first attempt (all launches).
  std::uint32_t injectRetries() const noexcept { return injectRetries_; }
  /// Descendants the DLL reported it could not inject (kInjectFailed).
  std::uint32_t missedDescendants() const noexcept {
    return missedDescendants_;
  }
  /// Missed descendants recovered by pump()-time re-injection.
  std::uint32_t reinjectedDescendants() const noexcept {
    return reinjected_;
  }

  /// Telemetry view over the supervised machine (Figure 2's runtime
  /// information channel, extended with the obs registry): hook counters,
  /// alert counters, spans, latency histograms of everything the engine
  /// observed on this box.
  obs::MetricsSnapshot telemetrySnapshot() const {
    return machine_.metrics().snapshot();
  }
  /// The same view, exported as deterministic JSON.
  std::string telemetryJson() const;

 private:
  winsys::Machine& machine_;
  winapi::UserSpace& userspace_;
  DeceptionEngine& engine_;
  std::uint32_t controllerPid_ = 0;
  std::vector<FingerprintReport> reports_;
  std::uint32_t selfSpawnAlerts_ = 0;
  std::uint32_t injected_ = 0;
  std::uint64_t firstTriggerCorrelation_ = 0;
  faults::FaultInjector* faults_ = nullptr;
  bool injectionSucceeded_ = true;
  std::uint32_t injectRetries_ = 0;
  std::uint32_t missedDescendants_ = 0;
  std::uint32_t reinjected_ = 0;
};

}  // namespace scarecrow::core
