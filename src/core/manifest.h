// Deployment manifests: a versioned text format carrying a Scarecrow
// configuration plus its deceptive resource database.
//
// Section III-B's controller "dynamically updates the hooks and
// configurations through IPC"; fleet deployments additionally need to ship
// resource databases (curated + crawled + MalGene-learned) from a central
// service to endpoints. The manifest is that wire/disk format: line-based,
// diff-friendly, and strict to parse (unknown sections or malformed rows
// reject the whole manifest rather than half-applying a deception).
#pragma once

#include <optional>
#include <string>

#include "core/config.h"
#include "core/resource_db.h"

namespace scarecrow::core {

struct Manifest {
  Config config;
  ResourceDb db;
};

/// Renders config + database to the v1 text format.
std::string exportManifest(const Config& config, const ResourceDb& db);

/// Strict parse; nullopt on any malformed line, unknown section, bad
/// number, or missing header.
std::optional<Manifest> importManifest(const std::string& text);

}  // namespace scarecrow::core
