// Deception consistency auditor.
//
// Evasive logic rarely trusts a single API: it cross-checks the same
// resource through several observation channels (GetFileAttributes vs
// NtQueryAttributesFile vs CreateFile; RegOpenKeyEx vs NtOpenKeyEx; the
// process list vs FindWindow) and treats disagreement as evidence of a
// deception layer. A correct Scarecrow deployment must therefore answer
// *coherently* on every channel that can reach a deceptive resource.
//
// The auditor drives a hooked Api through every resource in the engine's
// database and reports each cross-channel contradiction. It runs in the
// test suite as a property check over the full default database and is
// exposed publicly so deployments can self-test custom resource sets.
#pragma once

#include <string>
#include <vector>

#include "core/engine.h"
#include "winapi/api.h"

namespace scarecrow::core {

struct ConsistencyFinding {
  std::string resource;
  std::string detail;  // which channels disagreed and how
  /// The deception profile that owns the contradicting resource, so audits
  /// can attribute findings to the artifact set that introduced them.
  Profile profile = Profile::kGeneric;
};

struct ConsistencyReport {
  std::vector<ConsistencyFinding> findings;
  std::size_t filesChecked = 0;
  std::size_t registryKeysChecked = 0;
  std::size_t processesChecked = 0;
  std::size_t dllsChecked = 0;
  std::size_t windowsChecked = 0;

  bool consistent() const noexcept { return findings.empty(); }
};

/// Audits every deceptive resource reachable through `api` (which must
/// already have the engine's hooks installed).
ConsistencyReport auditDeceptionConsistency(winapi::Api& api,
                                            const ResourceDb& db);

}  // namespace scarecrow::core
