// Parallel corpus evaluation: the Figure 3 protocol at fleet scale.
//
// The paper runs every sample twice (±Scarecrow) under a one-minute
// budget, so Table I/II/III sweeps are embarrassingly parallel — the only
// shared state a corpus evaluation needs is the request queue and the
// result table. BatchEvaluator is the engine for that: N workers, each
// owning a private simulated Machine plus EvaluationHarness built from a
// caller-supplied factory, drain a shared queue of EvalRequests. Results
// land at the request's index regardless of completion order, a request
// that throws or exceeds its wall-clock budget is retried a bounded number
// of times and then reported failed — without poisoning its worker, whose
// next evaluation starts from a clean Deep Freeze restore anyway.
//
// Telemetry: every EvalOutcome still carries the per-sample snapshot and
// byte-identical telemetryJson a serial harness would produce (evaluate()
// wipes the machine's registry per sample). On top of that each worker
// folds its samples into a worker-level snapshot via
// obs::MetricsSnapshot::merge, and mergedTelemetry() folds the workers
// into one corpus-level snapshot — counters summed, gauges maxed,
// histogram buckets combined — ready for a single JSON/Prometheus dump.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/eval.h"
#include "obs/flight_recorder.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "winsys/machine.h"

namespace scarecrow::core {

enum class BatchStatus : std::uint8_t {
  kOk,        // outcome is valid
  kFailed,    // every attempt threw; `error` holds the last message
  kTimedOut,  // every attempt exceeded BatchOptions::requestTimeoutMs
};

/// Exhaustive over BatchStatus (no default; -Werror=switch enforces it).
const char* batchStatusName(BatchStatus status) noexcept;

struct BatchResult {
  BatchStatus status = BatchStatus::kFailed;
  /// Valid only when status == kOk.
  EvalOutcome outcome;
  /// what() of the last failed attempt, or the timeout description.
  std::string error;
  /// Attempts consumed (1 = first try succeeded).
  std::uint32_t attempts = 0;
  /// Which worker (and therefore which private machine) ran the request.
  std::size_t workerIndex = 0;
  /// Wall-clock cost of the final attempt, microseconds. Real time, not
  /// virtual — this is the throughput number, so it is deliberately
  /// nondeterministic and kept out of the EvalOutcome telemetry.
  std::uint64_t wallMicros = 0;

  bool ok() const noexcept { return status == BatchStatus::kOk; }
};

struct BatchOptions {
  /// Worker (= private machine) count. Clamped to at least 1.
  std::size_t workerCount = 8;
  /// Wall-clock budget per attempt, milliseconds; 0 = unlimited. The
  /// simulator cannot preempt a run mid-flight, so the timeout is enforced
  /// when the attempt returns: an overrun attempt is discarded and
  /// retried/failed like a thrown one. (The *virtual* budget is
  /// EvalRequest::budgetMs.)
  std::uint64_t requestTimeoutMs = 0;
  /// Attempts per request before it is reported failed (1 = no retry).
  std::uint32_t maxAttempts = 2;
  /// Stall detector: virtual-clock milliseconds one attempt may consume
  /// before the worker is flagged as stalled (heartbeats only advance
  /// between attempts, so an attempt that burns more simulated time than
  /// this budget is a silent-queue hazard). 0 = detection off. A stall is
  /// a `batch.stalled` counter tick plus a kStall decision event in
  /// healthEvents(); the attempt's result is untouched — this is a health
  /// signal, not a timeout.
  std::uint64_t stallBudgetMs = 0;

  // --- Run-ledger streaming (DESIGN.md §13) ---------------------------

  /// JSONL run-ledger file every worker streams into: one "run" record per
  /// finished request, one "window" record per closed time-series window,
  /// one "breach" record per SLO breach, and one "worker" record per
  /// worker at end of batch (obs/ledger.h). Empty falls back to
  /// SCARECROW_LEDGER; empty both ways disables the ledger entirely.
  std::string ledgerPath;
  /// Size-based rotation bound for the ledger file; 0 = never rotate.
  std::uint64_t ledgerMaxBytes = 0;
  /// Rotated generations retained (`<path>.1` … `<path>.N`).
  std::uint32_t ledgerMaxRotatedFiles = 3;
  /// Shard label stamped into every ledger record ("shard-0", ...), so
  /// ledgers from N processes merge into one fleet view.
  std::string ledgerShard;
};

/// Live view of an evaluateAll in flight (or the final state of the last
/// one). Safe to read from any thread while workers run — the future
/// resident service polls this instead of staring at a silent queue.
struct BatchProgress {
  /// Requests handed to the current/last evaluateAll.
  std::uint64_t submitted = 0;
  /// Requests finished, any status (== submitted when the call returns).
  std::uint64_t completed = 0;
  std::uint64_t inflight = 0;
  /// High-water mark of concurrently running requests.
  std::uint64_t inflightPeak = 0;
  /// Extra attempts beyond each request's first.
  std::uint64_t retried = 0;
  /// Attempts that blew BatchOptions::stallBudgetMs of virtual time.
  std::uint64_t stalled = 0;
  /// Per-worker liveness: attempts finished by that worker. A worker
  /// whose heartbeat stops advancing while inflight > 0 is stuck.
  std::vector<std::uint64_t> workerHeartbeats;
};

class BatchEvaluator {
 public:
  using MachineFactory = std::function<std::unique_ptr<winsys::Machine>()>;

  /// Builds `options.workerCount` identical machines up front (on the
  /// calling thread — machine construction is deterministic and need not
  /// be thread-safe).
  explicit BatchEvaluator(const MachineFactory& machineFactory,
                          BatchOptions options = {});
  ~BatchEvaluator();

  BatchEvaluator(const BatchEvaluator&) = delete;
  BatchEvaluator& operator=(const BatchEvaluator&) = delete;

  /// Overrides the deception database on every worker harness (the
  /// profile-ablation hook, same as EvaluationHarness::setResourceDbFactory).
  /// Call between evaluateAll() invocations, not during one.
  void setResourceDbFactory(EvaluationHarness::DbFactory dbFactory);

  /// Evaluates the whole corpus; result i describes request i. Safe to
  /// call repeatedly; worker machines are reused (each evaluation restores
  /// the clean snapshot first), and the telemetry accessors below describe
  /// the most recent call.
  std::vector<BatchResult> evaluateAll(
      const std::vector<EvalRequest>& requests);

  std::size_t workerCount() const noexcept { return workers_.size(); }

  /// Per-worker aggregate of the last evaluateAll: the merge of every
  /// successful sample's telemetry that worker produced, plus the
  /// worker-level `batch.*` counters (requests, retries, timeouts,
  /// failures).
  const std::vector<obs::MetricsSnapshot>& workerTelemetry() const noexcept {
    return workerTelemetry_;
  }

  /// Merge of workerTelemetry() in worker order: the corpus-level dump.
  /// Counters sum, so it equals the serial sweep's aggregate regardless of
  /// how requests raced across workers.
  obs::MetricsSnapshot mergedTelemetry() const;

  /// Live progress of the current evaluateAll (final state after it
  /// returns). Thread-safe against running workers; values are monotone
  /// within one call and reset at the start of the next.
  BatchProgress progress() const;

  /// Batch-level health decisions (currently kStall events), rebuilt after
  /// every evaluateAll in worker order. Event payload: api = sample id,
  /// argument = "worker-N", value = virtual ms the attempt consumed,
  /// timestamped with the worker machine's virtual clock.
  const obs::FlightRecorder& healthEvents() const noexcept {
    return healthEvents_;
  }

  /// The run ledger this batch streams into, or nullptr when no ledger is
  /// configured (BatchOptions::ledgerPath / SCARECROW_LEDGER both empty).
  const obs::LedgerWriter* ledger() const noexcept { return ledger_.get(); }

 private:
  struct Worker;

  BatchOptions options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<obs::MetricsSnapshot> workerTelemetry_;
  obs::FlightRecorder healthEvents_;
  std::unique_ptr<obs::LedgerWriter> ledger_;

  // progress() plane: written by workers, read by any thread.
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> inflight_{0};
  std::atomic<std::uint64_t> inflightPeak_{0};
  std::atomic<std::uint64_t> retried_{0};
  std::atomic<std::uint64_t> stalled_{0};
};

}  // namespace scarecrow::core
