// Parallel corpus evaluation: the Figure 3 protocol at fleet scale.
//
// The paper runs every sample twice (±Scarecrow) under a one-minute
// budget, so Table I/II/III sweeps are embarrassingly parallel — the only
// shared state a corpus evaluation needs is the request queue and the
// result table. BatchEvaluator is the vector-in/vector-out engine for
// that: N workers, each owning a private simulated Machine plus
// EvaluationHarness built from a caller-supplied factory, drain a shared
// queue of EvalRequests. Results land at the request's index regardless
// of completion order, a request that throws or exceeds its wall-clock
// budget is retried a bounded number of times and then reported failed —
// without poisoning its worker, whose next evaluation starts from a clean
// Deep Freeze restore anyway.
//
// Since the resident service landed, BatchEvaluator is a thin synchronous
// façade over a single-shard core::EvalService (core/service.h): the
// worker anatomy, retry/timeout/stall machinery, telemetry folding, and
// ledger streaming all live there. evaluateAll() opens a telemetry epoch,
// submits every request, waits for the tickets in order, and settles the
// epoch — producing byte-identical results and telemetry to the original
// in-place engine. Long-running callers should use EvalService directly;
// this type remains the convenient shape for one-shot sweeps.
//
// Telemetry: every EvalOutcome still carries the per-sample snapshot and
// byte-identical telemetryJson a serial harness would produce (evaluate()
// wipes the machine's registry per sample). On top of that each worker
// folds its samples into a worker-level snapshot via
// obs::MetricsSnapshot::merge, and mergedTelemetry() folds the workers
// into one corpus-level snapshot — counters summed, gauges maxed,
// histogram buckets combined — ready for a single JSON/Prometheus dump.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/eval.h"
#include "core/service.h"
#include "obs/flight_recorder.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "winsys/machine.h"

namespace scarecrow::core {

struct BatchResult {
  BatchStatus status = BatchStatus::kFailed;
  /// Valid only when status == kOk.
  EvalOutcome outcome;
  /// what() of the last failed attempt, or the timeout description.
  std::string error;
  /// Attempts consumed (1 = first try succeeded).
  std::uint32_t attempts = 0;
  /// Which worker (and therefore which private machine) ran the request.
  std::size_t workerIndex = 0;
  /// Wall-clock cost of the final attempt, microseconds. Real time, not
  /// virtual — this is the throughput number, so it is deliberately
  /// nondeterministic and kept out of the EvalOutcome telemetry.
  std::uint64_t wallMicros = 0;

  bool ok() const noexcept { return status == BatchStatus::kOk; }
};

struct BatchOptions {
  /// The telemetry / health knobs (stall detector + run ledger) shared
  /// with the resident service. See core::TelemetryOptions.
  using Telemetry = TelemetryOptions;

  /// Worker (= private machine) count. Clamped to at least 1.
  std::size_t workerCount = 8;
  /// Wall-clock budget per attempt, milliseconds; 0 = unlimited. The
  /// simulator cannot preempt a run mid-flight, so the timeout is enforced
  /// when the attempt returns: an overrun attempt is discarded and
  /// retried/failed like a thrown one. (The *virtual* budget is
  /// EvalRequest::budgetMs.)
  std::uint64_t requestTimeoutMs = 0;
  /// Attempts per request before it is reported failed (1 = no retry).
  std::uint32_t maxAttempts = 2;
  /// Stall-detector and run-ledger configuration (DESIGN.md §13/§14).
  /// (The pre-service flat aliases — stallBudgetMs, ledger* — served
  /// their one release of deprecation grace and are gone; this nested
  /// struct is the only spelling.)
  Telemetry telemetry;
};

/// Live view of an evaluateAll in flight (or the final state of the last
/// one). Safe to read from any thread while workers run — the resident
/// service's stats() is the richer superset of this view.
struct BatchProgress {
  /// Requests handed to the current/last evaluateAll.
  std::uint64_t submitted = 0;
  /// Requests finished, any status (== submitted when the call returns).
  std::uint64_t completed = 0;
  std::uint64_t inflight = 0;
  /// High-water mark of concurrently running requests.
  std::uint64_t inflightPeak = 0;
  /// Extra attempts beyond each request's first.
  std::uint64_t retried = 0;
  /// Attempts that blew BatchOptions::Telemetry::stallBudgetMs of virtual
  /// time.
  std::uint64_t stalled = 0;
  /// Per-worker liveness: attempts finished by that worker. A worker
  /// whose heartbeat stops advancing while inflight > 0 is stuck.
  std::vector<std::uint64_t> workerHeartbeats;
};

class BatchEvaluator {
 public:
  using MachineFactory = EvalService::MachineFactory;

  /// Builds `options.workerCount` identical machines up front (on the
  /// calling thread — machine construction is deterministic and need not
  /// be thread-safe) and starts the underlying single-shard service.
  explicit BatchEvaluator(const MachineFactory& machineFactory,
                          BatchOptions options = {});
  ~BatchEvaluator();

  BatchEvaluator(const BatchEvaluator&) = delete;
  BatchEvaluator& operator=(const BatchEvaluator&) = delete;

  /// Overrides the deception database on every worker harness (the
  /// profile-ablation hook, same as EvaluationHarness::setResourceDbFactory).
  /// Call between evaluateAll() invocations, not during one.
  void setResourceDbFactory(EvaluationHarness::DbFactory dbFactory);

  /// Evaluates the whole corpus; result i describes request i. Safe to
  /// call repeatedly; worker machines are reused (each evaluation restores
  /// the clean snapshot first), and the telemetry accessors below describe
  /// the most recent call.
  std::vector<BatchResult> evaluateAll(
      const std::vector<EvalRequest>& requests);

  std::size_t workerCount() const noexcept;

  /// Per-worker aggregate of the last evaluateAll: the merge of every
  /// successful sample's telemetry that worker produced, plus the
  /// worker-level `batch.*` counters (requests, retries, timeouts,
  /// failures).
  const std::vector<obs::MetricsSnapshot>& workerTelemetry() const noexcept;

  /// Merge of workerTelemetry() in worker order: the corpus-level dump.
  /// Counters sum, so it equals the serial sweep's aggregate regardless of
  /// how requests raced across workers.
  obs::MetricsSnapshot mergedTelemetry() const;

  /// Live progress of the current evaluateAll (final state after it
  /// returns). Thread-safe against running workers; values are monotone
  /// within one call and reset at the start of the next.
  BatchProgress progress() const;

  /// Batch-level health decisions (currently kStall events), rebuilt after
  /// every evaluateAll in worker order. Event payload: api = sample id,
  /// argument = "worker-N", value = virtual ms the attempt consumed,
  /// timestamped with the worker machine's virtual clock.
  const obs::FlightRecorder& healthEvents() const noexcept;

  /// The run ledger this batch streams into, or nullptr when no ledger is
  /// configured (telemetry.ledgerPath / SCARECROW_LEDGER both empty).
  const obs::LedgerWriter* ledger() const noexcept;

  /// The resident service underneath — escape hatch for callers migrating
  /// from one-shot sweeps to streaming submission.
  EvalService& service() noexcept { return *service_; }

 private:
  std::unique_ptr<EvalService> service_;
};

}  // namespace scarecrow::core
