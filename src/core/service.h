// Resident corpus-evaluation service: the ROADMAP's "backbone" process.
//
// BatchEvaluator (core/batch.h) answers one question — "evaluate this
// vector, give me a vector back" — and tears its accounting down between
// calls. A fleet deployment needs the opposite shape: a long-running
// engine that clients feed continuously, with admission control when the
// queue is full, fair sharing between tenants, and results that stream
// out as they finish instead of materializing corpus-sized arrays.
// EvalService is that engine:
//
//   * Sharding. The corpus is partitioned across `shardCount` evaluator
//     shards by a stable hash of the sample id (shardFor). Each shard owns
//     `workersPerShard` persistent worker threads, each with a private
//     simulated Machine + EvaluationHarness built from the caller's
//     factory — the same worker anatomy as BatchEvaluator, but the pool
//     survives across submissions instead of being re-driven per call.
//   * Admission. submit() never blocks: it returns a Ticket whose
//     AdmissionVerdict says admitted, queue-full (the shard's bounded
//     queue is at capacity), tenant-throttled (the request's tenant has
//     exhausted its token bucket), or shutting-down. Tokens replenish on
//     completion, so a flooding tenant caps out at `tenantTokens`
//     outstanding requests while everyone else keeps getting admitted —
//     deterministic fairness with no wall clock involved.
//   * Streaming results. Results are keyed by ticket, not index: poll()
//     extracts one if ready, wait() blocks for one, and subscribe()
//     registers a callback invoked on the finishing worker's thread the
//     moment a request completes (before the result is published for
//     poll). Ticket accounting is exact: every admitted ticket completes
//     exactly once — the zero-lost/zero-duplicated invariant the service
//     bench asserts at the hundred-thousand-sample scale.
//   * Fleet telemetry. Per-worker snapshots merge via
//     obs::MetricsSnapshot::merge into fleetTelemetry(), and every shard
//     streams run/window/breach/worker records into the shared run ledger
//     (obs/ledger.h) with per-shard labels, so
//     obs::reconstructFleetTelemetry folds the file back into the same
//     bytes fleetTelemetry() reports.
//
// BatchEvaluator still exists — as a thin synchronous façade over a
// single-shard EvalService — so the ~40 existing call sites keep their
// vector-in/vector-out API and byte-identical results.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/eval.h"
#include "obs/flight_recorder.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "winsys/machine.h"

namespace scarecrow::core {

enum class BatchStatus : std::uint8_t {
  kOk,        // outcome is valid
  kFailed,    // every attempt threw; `error` holds the last message
  kTimedOut,  // every attempt exceeded the per-attempt wall budget
};

/// Exhaustive over BatchStatus (no default; -Werror=switch enforces it).
const char* batchStatusName(BatchStatus status) noexcept;

/// What submit() decided about a request. Only kAdmitted tickets ever
/// produce a result; the reject verdicts are immediate and final.
enum class AdmissionVerdict : std::uint8_t {
  kAdmitted,        // queued; the ticket will complete exactly once
  kQueueFull,       // the target shard's queue is at queueCapacity
  kTenantThrottled, // the tenant's token bucket is empty
  kShuttingDown,    // shutdown() has begun; no new work is accepted
};

/// Exhaustive over AdmissionVerdict.
const char* admissionVerdictName(AdmissionVerdict verdict) noexcept;

/// The telemetry / health knobs shared by EvalService and the
/// BatchEvaluator façade (BatchOptions::Telemetry is this type).
struct TelemetryOptions {
  /// Stall detector: virtual-clock milliseconds one attempt may consume
  /// before the worker is flagged as stalled (heartbeats only advance
  /// between attempts, so an attempt that burns more simulated time than
  /// this budget is a silent-queue hazard). 0 = detection off. A stall is
  /// a `batch.stalled` counter tick plus a kStall decision event in
  /// healthEvents(); the attempt's result is untouched — this is a health
  /// signal, not a timeout.
  std::uint64_t stallBudgetMs = 0;
  /// JSONL run-ledger file every worker streams into: one "run" record per
  /// finished request, one "window" record per closed time-series window,
  /// one "breach" record per SLO breach, and one "worker" record per
  /// worker at telemetry flush (obs/ledger.h). Empty falls back to
  /// SCARECROW_LEDGER; empty both ways disables the ledger entirely.
  std::string ledgerPath;
  /// Size-based rotation bound for the ledger file; 0 = never rotate.
  std::uint64_t ledgerMaxBytes = 0;
  /// Rotated generations retained (`<path>.1` … `<path>.N`).
  std::uint32_t ledgerMaxRotatedFiles = 3;
  /// Shard label stamped into ledger records. With one shard the label is
  /// used verbatim ("shard-0", ...; empty = unlabeled), matching the
  /// single-process BatchEvaluator convention. With N > 1 shards each
  /// shard stamps "<label>-<i>" ("shard" when empty, so "shard-0",
  /// "shard-1", ...), and records from all shards interleave in one file
  /// that obs::reconstructFleetTelemetry reads back as a fleet.
  std::string ledgerShard;
};

struct ServiceOptions {
  /// Evaluator shards the corpus hash-partitions across. Clamped to ≥ 1.
  std::size_t shardCount = 1;
  /// Worker threads (= private machines) per shard. Clamped to ≥ 1.
  std::size_t workersPerShard = 8;
  /// Bounded submission queue per shard: admitted-but-not-started requests
  /// a shard may hold before submit() answers kQueueFull. 0 = unbounded.
  std::size_t queueCapacity = 0;
  /// Per-tenant token bucket: outstanding (queued + running) requests one
  /// tenant may hold before submit() answers kTenantThrottled. Tokens
  /// return on completion. 0 = fairness off. The empty tenant ("") is a
  /// tenant like any other — the shared anonymous pool.
  std::size_t tenantTokens = 0;
  /// Wall-clock budget per attempt, milliseconds; 0 = unlimited. Enforced
  /// when the attempt returns (the simulator cannot preempt), like
  /// BatchOptions::requestTimeoutMs.
  std::uint64_t requestTimeoutMs = 0;
  /// Attempts per request before it is reported failed (1 = no retry).
  std::uint32_t maxAttempts = 2;
  /// When true (default) every completed result is retained until poll()
  /// or wait() extracts it. Subscription-only consumers set this false so
  /// a sustained run does not accumulate corpus-sized state.
  bool retainResults = true;
  TelemetryOptions telemetry;
};

/// Handle for one submission. Only meaningful when admitted; a rejected
/// ticket has id 0 and will never complete.
struct Ticket {
  /// 1-based, unique for the service lifetime; 0 = not admitted.
  std::uint64_t id = 0;
  AdmissionVerdict verdict = AdmissionVerdict::kShuttingDown;
  /// Shard the request was routed to (valid when admitted).
  std::size_t shard = 0;

  bool admitted() const noexcept {
    return verdict == AdmissionVerdict::kAdmitted;
  }
};

/// One finished request, delivered by poll()/wait()/subscribe callbacks.
/// The BatchResult fields plus the service-side routing facts.
struct ServiceResult {
  std::uint64_t ticketId = 0;
  std::string sampleId;
  std::string tenant;
  BatchStatus status = BatchStatus::kFailed;
  /// Valid only when status == kOk.
  EvalOutcome outcome;
  /// what() of the last failed attempt, or the timeout description.
  std::string error;
  /// Attempts consumed (1 = first try succeeded).
  std::uint32_t attempts = 0;
  /// Global worker index (shard-major) that ran the final attempt.
  std::size_t workerIndex = 0;
  std::size_t shard = 0;
  /// Wall-clock cost of the final attempt, microseconds. Real time, not
  /// virtual — deliberately nondeterministic, kept out of telemetry.
  std::uint64_t wallMicros = 0;

  bool ok() const noexcept { return status == BatchStatus::kOk; }
};

/// Counter view of the service, readable from any thread at any time.
/// Totals run since construction or the last resetTelemetry() — the batch
/// façade resets per evaluateAll, a resident deployment typically never
/// does.
struct ServiceStats {
  std::uint64_t submitted = 0;  // submit() calls, any verdict
  std::uint64_t admitted = 0;
  std::uint64_t rejectedQueueFull = 0;
  std::uint64_t rejectedTenant = 0;
  std::uint64_t rejectedShutdown = 0;
  std::uint64_t completed = 0;  // any status
  std::uint64_t failed = 0;
  std::uint64_t timedOut = 0;
  /// Extra attempts beyond each request's first.
  std::uint64_t retried = 0;
  /// Attempts that blew TelemetryOptions::stallBudgetMs of virtual time.
  std::uint64_t stalled = 0;
  std::uint64_t inflight = 0;
  /// High-water mark of concurrently running requests.
  std::uint64_t inflightPeak = 0;
  /// Admitted requests not yet picked up by a worker (all shards).
  std::uint64_t queued = 0;
  /// High-water mark of any single shard's queue depth.
  std::uint64_t queueDepthPeak = 0;
  /// Completed results retained and awaiting poll()/wait().
  std::uint64_t resultsPending = 0;
  /// Per-worker liveness (global worker order): attempts finished. A
  /// heartbeat that stops advancing while inflight > 0 is a stuck worker.
  std::vector<std::uint64_t> workerHeartbeats;
  /// Current queue depth per shard.
  std::vector<std::uint64_t> shardQueueDepths;
};

class EvalService {
 public:
  using MachineFactory = std::function<std::unique_ptr<winsys::Machine>()>;
  using ResultCallback = std::function<void(const ServiceResult&)>;

  /// Builds shardCount × workersPerShard machines up front on the calling
  /// thread (machine construction is deterministic and need not be
  /// thread-safe) and starts the persistent worker pool.
  explicit EvalService(const MachineFactory& machineFactory,
                       ServiceOptions options = {});
  /// Implies shutdown().
  ~EvalService();

  EvalService(const EvalService&) = delete;
  EvalService& operator=(const EvalService&) = delete;

  /// Non-blocking admission. The returned ticket's verdict says whether
  /// the request was queued; an admitted ticket completes exactly once.
  Ticket submit(EvalRequest request);

  /// Extracts the result for `ticket` if it has completed (extract-once:
  /// a second poll for the same ticket returns nullopt, as does a poll
  /// for a rejected, unknown, or still-running ticket).
  std::optional<ServiceResult> poll(const Ticket& ticket);

  /// Blocks until `ticket` completes, then extracts its result. nullopt
  /// for rejected/unknown tickets, for already-extracted ones, and under
  /// retainResults == false.
  std::optional<ServiceResult> wait(const Ticket& ticket);

  /// Blocks until every admitted request has completed.
  void drain();

  /// Registers a callback invoked once per completed request, on the
  /// finishing worker's thread, before the result is published for
  /// poll()/wait(). Callbacks must not call back into the service's
  /// blocking APIs (wait/drain/shutdown). Returns a slot for unsubscribe.
  std::size_t subscribe(ResultCallback callback);
  /// Drops a subscription. A callback already in flight on a worker
  /// thread may still run once after this returns.
  void unsubscribe(std::size_t slot) noexcept;

  /// Stops admission, drains every queued and in-flight request, joins the
  /// worker pool, and flushes telemetry (kWorker ledger records included).
  /// Idempotent; implied by the destructor.
  void shutdown();

  ServiceStats stats() const;

  /// Stable shard routing: FNV-1a of the sample id mod shardCount. The
  /// same sample always lands on the same shard (and therefore the same
  /// pool of private machines), which keeps per-shard ledgers coherent.
  std::size_t shardFor(const std::string& sampleId) const noexcept;

  std::size_t shardCount() const noexcept { return shards_; }
  /// Total workers across all shards.
  std::size_t workerCount() const noexcept { return workers_.size(); }

  /// Overrides the deception database on every worker harness (the
  /// profile-ablation hook). Call while idle, not mid-submission.
  void setResourceDbFactory(EvaluationHarness::DbFactory dbFactory);

  /// Per-worker telemetry (global worker order): each worker's successful
  /// samples merged plus its `batch.*` accounting counters. Rebuilt by
  /// flushTelemetry(); call after drain()/shutdown() for a settled view.
  const std::vector<obs::MetricsSnapshot>& workerTelemetry() const noexcept {
    return workerTelemetry_;
  }

  /// Merge of workerTelemetry() in global worker order: the fleet-level
  /// dump. Counters sum, so it equals the serial sweep's aggregate
  /// regardless of how requests raced across shards and workers.
  obs::MetricsSnapshot fleetTelemetry() const;

  /// Service-level health decisions (kStall events), rebuilt by
  /// flushTelemetry() in global worker order.
  const obs::FlightRecorder& healthEvents() const noexcept {
    return healthEvents_;
  }

  /// The run ledger the shards stream into, or nullptr when none is
  /// configured (TelemetryOptions::ledgerPath / SCARECROW_LEDGER empty).
  const obs::LedgerWriter* ledger() const noexcept { return ledger_.get(); }

  /// Settles the telemetry epoch: rebuilds workerTelemetry() and
  /// healthEvents() from the workers' private accounting and appends one
  /// kWorker ledger record per worker. Call while idle (after drain()).
  /// Idempotent until new work completes; shutdown() calls it last.
  void flushTelemetry();

  /// Opens a fresh telemetry epoch: zeroes every worker's accounting and
  /// merged snapshot, clears healthEvents(), and resets the epoch-scoped
  /// stats (heartbeats, inflight peak, queue-depth peak). Call while idle.
  /// The batch façade calls this at the top of every evaluateAll so each
  /// call reports exactly its own corpus.
  void resetTelemetry();

 private:
  struct Worker;
  struct Shard;
  struct Job;

  void workerMain(Worker& worker);
  void executeJob(Worker& worker, Job job);
  void completeJob(Worker& worker, ServiceResult result);

  ServiceOptions options_;
  std::size_t shards_ = 1;
  std::string shardLabel(std::size_t shard) const;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<Shard>> shardStates_;
  std::unique_ptr<obs::LedgerWriter> ledger_;

  // Flushed telemetry epoch (settled by flushTelemetry()).
  std::vector<obs::MetricsSnapshot> workerTelemetry_;
  obs::FlightRecorder healthEvents_;
  bool telemetryDirty_ = false;

  // Admission + delivery plane. One mutex: admission is O(1) bookkeeping
  // and completions are rare relative to evaluation cost (~ms per sample),
  // so a single lock is far from contention and keeps the verdict logic
  // atomic across shards, tenants, and the results table.
  mutable std::mutex mutex_;
  std::condition_variable doneCv_;
  bool shuttingDown_ = false;
  std::uint64_t nextTicketId_ = 0;
  /// First ticket id of the current telemetry epoch: ledger run records
  /// index requests relative to this, so the façade's per-evaluateAll
  /// request indices start at 0 every call.
  std::uint64_t epochBaseTicket_ = 0;
  std::unordered_set<std::uint64_t> live_;  // admitted, not yet completed
  std::map<std::uint64_t, ServiceResult> results_;
  std::unordered_map<std::string, std::size_t> tenantOutstanding_;
  std::vector<std::pair<std::size_t, ResultCallback>> subscribers_;
  std::size_t nextSubscriberSlot_ = 0;

  // Counters. Queue/admission numbers live under mutex_ (they are written
  // there anyway); the execution-path ones are atomics so the hot loop
  // never touches the admission lock.
  std::uint64_t submitted_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejectedQueueFull_ = 0;
  std::uint64_t rejectedTenant_ = 0;
  std::uint64_t rejectedShutdown_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t timedOut_ = 0;
  std::uint64_t queueDepthPeak_ = 0;
  std::atomic<std::uint64_t> inflight_{0};
  std::atomic<std::uint64_t> inflightPeak_{0};
  std::atomic<std::uint64_t> retried_{0};
  std::atomic<std::uint64_t> stalled_{0};
};

}  // namespace scarecrow::core
