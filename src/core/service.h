// Resident corpus-evaluation service: the ROADMAP's "backbone" process.
//
// BatchEvaluator (core/batch.h) answers one question — "evaluate this
// vector, give me a vector back" — and tears its accounting down between
// calls. A fleet deployment needs the opposite shape: a long-running
// engine that clients feed continuously, with admission control when the
// queue is full, fair sharing between tenants, and results that stream
// out as they finish instead of materializing corpus-sized arrays.
// EvalService is that engine:
//
//   * Sharding. The corpus is partitioned across `shardCount` evaluator
//     shards by a stable hash of the sample id (shardFor). Each shard owns
//     `workersPerShard` persistent worker threads, each with a private
//     simulated Machine + EvaluationHarness built from the caller's
//     factory — the same worker anatomy as BatchEvaluator, but the pool
//     survives across submissions instead of being re-driven per call.
//   * Admission. submit() never blocks: it returns a Ticket whose
//     AdmissionVerdict says admitted, queue-full (the shard's bounded
//     queue is at capacity), tenant-throttled (the request's tenant has
//     exhausted its token bucket), or shutting-down. Tokens replenish on
//     completion, so a flooding tenant caps out at `tenantTokens`
//     outstanding requests while everyone else keeps getting admitted —
//     deterministic fairness with no wall clock involved.
//   * Streaming results. Results are keyed by ticket, not index: poll()
//     extracts one if ready, wait() blocks for one, and subscribe()
//     registers a callback invoked on the finishing worker's thread the
//     moment a request completes (before the result is published for
//     poll). Ticket accounting is exact: every admitted ticket completes
//     exactly once — the zero-lost/zero-duplicated invariant the service
//     bench asserts at the hundred-thousand-sample scale.
//   * Fleet telemetry. Per-worker snapshots merge via
//     obs::MetricsSnapshot::merge into fleetTelemetry(), and every shard
//     streams run/window/breach/worker records into the shared run ledger
//     (obs/ledger.h) with per-shard labels, so
//     obs::reconstructFleetTelemetry folds the file back into the same
//     bytes fleetTelemetry() reports.
//
// BatchEvaluator still exists — as a thin synchronous façade over a
// single-shard EvalService — so the ~40 existing call sites keep their
// vector-in/vector-out API and byte-identical results.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/eval.h"
#include "faults/fault_injector.h"
#include "faults/fault_plan.h"
#include "obs/flight_recorder.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "winsys/machine.h"

namespace scarecrow::core {

enum class BatchStatus : std::uint8_t {
  kOk,        // outcome is valid
  kFailed,    // every attempt threw; `error` holds the last message
  kTimedOut,  // every attempt exceeded the per-attempt wall budget
};

/// Exhaustive over BatchStatus (no default; -Werror=switch enforces it).
const char* batchStatusName(BatchStatus status) noexcept;

/// What submit() decided about a request. Only kAdmitted tickets ever
/// produce a result; the reject verdicts are immediate and final.
enum class AdmissionVerdict : std::uint8_t {
  kAdmitted,        // queued; the ticket will complete exactly once
  kQueueFull,       // the target shard's queue is at queueCapacity
  kTenantThrottled, // the tenant's token bucket is empty
  kShuttingDown,    // shutdown() has begun; no new work is accepted
  kShardUnavailable,  // every shard's circuit breaker is open
  kSampleQuarantined, // the sample is in the persisted quarantine set
};

/// Exhaustive over AdmissionVerdict.
const char* admissionVerdictName(AdmissionVerdict verdict) noexcept;

/// Per-shard circuit-breaker state (DESIGN.md §16). Closed shards admit;
/// an open shard rejects its traffic (re-routed to healthy shards) until
/// the cooldown elapses; half-open admits exactly one probe whose outcome
/// decides between closing and re-opening.
enum class BreakerState : std::uint8_t {
  kClosed,
  kOpen,
  kHalfOpen,
};

/// Exhaustive over BreakerState: "closed", "open", "half-open".
const char* breakerStateName(BreakerState state) noexcept;

/// The telemetry / health knobs shared by EvalService and the
/// BatchEvaluator façade (BatchOptions::Telemetry is this type).
struct TelemetryOptions {
  /// Stall detector: virtual-clock milliseconds one attempt may consume
  /// before the worker is flagged as stalled (heartbeats only advance
  /// between attempts, so an attempt that burns more simulated time than
  /// this budget is a silent-queue hazard). 0 = detection off. A stall is
  /// a `batch.stalled` counter tick plus a kStall decision event in
  /// healthEvents(); the attempt's result is untouched — this is a health
  /// signal, not a timeout.
  std::uint64_t stallBudgetMs = 0;
  /// JSONL run-ledger file every worker streams into: one "run" record per
  /// finished request, one "window" record per closed time-series window,
  /// one "breach" record per SLO breach, and one "worker" record per
  /// worker at telemetry flush (obs/ledger.h). Empty falls back to
  /// SCARECROW_LEDGER; empty both ways disables the ledger entirely.
  std::string ledgerPath;
  /// Size-based rotation bound for the ledger file; 0 = never rotate.
  std::uint64_t ledgerMaxBytes = 0;
  /// Rotated generations retained (`<path>.1` … `<path>.N`).
  std::uint32_t ledgerMaxRotatedFiles = 3;
  /// Shard label stamped into ledger records. With one shard the label is
  /// used verbatim ("shard-0", ...; empty = unlabeled), matching the
  /// single-process BatchEvaluator convention. With N > 1 shards each
  /// shard stamps "<label>-<i>" ("shard" when empty, so "shard-0",
  /// "shard-1", ...), and records from all shards interleave in one file
  /// that obs::reconstructFleetTelemetry reads back as a fleet.
  std::string ledgerShard;
};

struct ServiceOptions {
  /// Evaluator shards the corpus hash-partitions across. Clamped to ≥ 1.
  std::size_t shardCount = 1;
  /// Worker threads (= private machines) per shard. Clamped to ≥ 1.
  std::size_t workersPerShard = 8;
  /// Bounded submission queue per shard: admitted-but-not-started requests
  /// a shard may hold before submit() answers kQueueFull. 0 = unbounded.
  std::size_t queueCapacity = 0;
  /// Per-tenant token bucket: outstanding (queued + running) requests one
  /// tenant may hold before submit() answers kTenantThrottled. Tokens
  /// return on completion. 0 = fairness off. The empty tenant ("") is a
  /// tenant like any other — the shared anonymous pool.
  std::size_t tenantTokens = 0;
  /// Wall-clock budget per attempt, milliseconds; 0 = unlimited. Enforced
  /// when the attempt returns (the simulator cannot preempt), like
  /// BatchOptions::requestTimeoutMs.
  std::uint64_t requestTimeoutMs = 0;
  /// Attempts per request before it is reported failed (1 = no retry).
  std::uint32_t maxAttempts = 2;
  /// When true (default) every completed result is retained until poll()
  /// or wait() extracts it. Subscription-only consumers set this false so
  /// a sustained run does not accumulate corpus-sized state.
  bool retainResults = true;
  /// Shard supervision: consecutive kFailed/kTimedOut completions one
  /// shard absorbs before its circuit breaker opens. 0 = supervision off.
  /// An open shard's traffic re-routes to the next healthy shard; when
  /// every shard is open, submit() answers kShardUnavailable.
  std::size_t breakerThreshold = 0;
  /// Completions (any shard, any status) an open breaker waits before
  /// moving to half-open and admitting one probe request.
  std::size_t breakerCooldown = 8;
  /// Poisoned-sample quarantine: submissions on which one sample may
  /// exhaust all its attempts before it lands in the persisted quarantine
  /// set and is rejected at admission. 0 = quarantine off.
  std::size_t quarantineThreshold = 0;
  /// Service-level chaos plan. Only the service seams are consulted here
  /// (faults::kWorkerCrash at attempt start, keyed by sample id, and
  /// faults::kLedgerAppend per ledger append); per-request plans inside
  /// EvalRequest::config drive the pipeline seams as before, so the two
  /// planes compose without interfering.
  faults::FaultPlan faultPlan;
  TelemetryOptions telemetry;
};

/// Handle for one submission. Only meaningful when admitted; a rejected
/// ticket has id 0 and will never complete.
struct Ticket {
  /// 1-based, unique for the service lifetime; 0 = not admitted.
  std::uint64_t id = 0;
  AdmissionVerdict verdict = AdmissionVerdict::kShuttingDown;
  /// Shard the request was routed to (valid when admitted).
  std::size_t shard = 0;

  bool admitted() const noexcept {
    return verdict == AdmissionVerdict::kAdmitted;
  }
};

/// One finished request, delivered by poll()/wait()/subscribe callbacks.
/// The BatchResult fields plus the service-side routing facts.
struct ServiceResult {
  std::uint64_t ticketId = 0;
  std::string sampleId;
  std::string tenant;
  BatchStatus status = BatchStatus::kFailed;
  /// Valid only when status == kOk.
  EvalOutcome outcome;
  /// what() of the last failed attempt, or the timeout description.
  std::string error;
  /// Attempts consumed (1 = first try succeeded).
  std::uint32_t attempts = 0;
  /// Global worker index (shard-major) that ran the final attempt.
  std::size_t workerIndex = 0;
  std::size_t shard = 0;
  /// Wall-clock cost of the final attempt, microseconds. Real time, not
  /// virtual — deliberately nondeterministic, kept out of telemetry.
  std::uint64_t wallMicros = 0;

  bool ok() const noexcept { return status == BatchStatus::kOk; }
};

/// Counter view of the service, readable from any thread at any time.
/// Totals run since construction or the last resetTelemetry() — the batch
/// façade resets per evaluateAll, a resident deployment typically never
/// does.
struct ServiceStats {
  std::uint64_t submitted = 0;  // submit() calls, any verdict
  std::uint64_t admitted = 0;
  std::uint64_t rejectedQueueFull = 0;
  std::uint64_t rejectedTenant = 0;
  std::uint64_t rejectedShutdown = 0;
  /// Submissions rejected because every shard's breaker was open.
  std::uint64_t rejectedShardUnavailable = 0;
  /// Submissions rejected because the sample is quarantined.
  std::uint64_t rejectedQuarantined = 0;
  std::uint64_t completed = 0;  // any status
  std::uint64_t failed = 0;
  std::uint64_t timedOut = 0;
  /// Extra attempts beyond each request's first.
  std::uint64_t retried = 0;
  /// Attempts that blew TelemetryOptions::stallBudgetMs of virtual time.
  std::uint64_t stalled = 0;
  std::uint64_t inflight = 0;
  /// High-water mark of concurrently running requests.
  std::uint64_t inflightPeak = 0;
  /// Admitted requests not yet picked up by a worker (all shards).
  std::uint64_t queued = 0;
  /// High-water mark of any single shard's queue depth.
  std::uint64_t queueDepthPeak = 0;
  /// Completed results retained and awaiting poll()/wait().
  std::uint64_t resultsPending = 0;
  /// Circuit-breaker openings (closed→open and half-open→open).
  std::uint64_t breakerTrips = 0;
  /// Workers rebuilt with a fresh Machine after a kWorkerCrash fire.
  std::uint64_t workerRestarts = 0;
  /// Samples in the persisted quarantine set.
  std::uint64_t quarantinedSamples = 0;
  /// LedgerWriter::appendFailures() of the service ledger (0 without one):
  /// run/window/worker/admit records the disk refused.
  std::uint64_t ledgerAppendFailures = 0;
  /// Per-worker liveness (global worker order): attempts finished. A
  /// heartbeat that stops advancing while inflight > 0 is a stuck worker.
  std::vector<std::uint64_t> workerHeartbeats;
  /// Current queue depth per shard.
  std::vector<std::uint64_t> shardQueueDepths;
  /// Current breaker state per shard (all kClosed when supervision off).
  std::vector<BreakerState> breakerStates;
};

/// What EvalService::recover() reconstructed from an admission journal.
struct RecoveryReport {
  /// One journaled admission that already has a matching run record: the
  /// completed prefix recovery adopts without re-running anything.
  struct CompletedRun {
    std::uint64_t requestIndex = 0;
    std::string sampleId;
    std::string status;        // batchStatusName at completion time
    std::string verdict;       // "deactivated" / "not-deactivated" / ""
    std::string firstTrigger;
    std::string shard;         // ledger shard label the run carried
  };
  /// One journaled admission with no run record: the crash residue.
  struct PendingAdmit {
    std::uint64_t requestIndex = 0;
    std::string sampleId;
    std::string tenant;
  };
  /// One residue request re-admitted by recover(), journal order, with
  /// its original request index pinned so the resumed run records land
  /// exactly where the uninterrupted run would have put them.
  struct Resubmission {
    Ticket ticket;
    std::uint64_t requestIndex = 0;
    std::string sampleId;
  };

  std::uint64_t journaled = 0;  // distinct admit records replayed
  std::vector<CompletedRun> completed;
  /// Residue after matching (replayAdmissionJournal output; recover()
  /// additionally turns each entry into a Resubmission).
  std::vector<PendingAdmit> residue;
  std::vector<Resubmission> resubmitted;
  /// Samples loaded into the quarantine set from the journal.
  std::uint64_t quarantined = 0;
};

class EvalService {
 public:
  using MachineFactory = std::function<std::unique_ptr<winsys::Machine>()>;
  using ResultCallback = std::function<void(const ServiceResult&)>;

  /// Builds shardCount × workersPerShard machines up front on the calling
  /// thread (machine construction is deterministic and need not be
  /// thread-safe) and starts the persistent worker pool.
  explicit EvalService(const MachineFactory& machineFactory,
                       ServiceOptions options = {});
  /// Implies shutdown().
  ~EvalService();

  EvalService(const EvalService&) = delete;
  EvalService& operator=(const EvalService&) = delete;

  /// Non-blocking admission. The returned ticket's verdict says whether
  /// the request was queued; an admitted ticket completes exactly once.
  /// When a ledger is configured, every admission is journaled (kAdmit)
  /// before the job is queued — the write-ahead edge crash recovery
  /// replays.
  Ticket submit(EvalRequest request);

  /// Re-admits one crash-residue request with its original request index
  /// pinned, so the resumed run record is byte-identical to what the
  /// uninterrupted run would have written. Bypasses queue-capacity,
  /// tenant, and breaker checks (the work was already admitted once);
  /// quarantine and shutdown still reject. Journals a fresh kAdmit for
  /// the pinned index — a duplicate the journal replay deduplicates.
  Ticket resubmit(EvalRequest request, std::uint64_t requestIndex);

  /// Rebuilds recovery state from the admission journal: reads every
  /// ledger generation at `ledgerPath`, matches admit records against run
  /// records, reloads the persisted quarantine set, and re-admits the
  /// residue — each residue sample turned back into an EvalRequest by
  /// `builder` and resubmitted with its original request index. Call on a
  /// freshly constructed service before new submissions; wait on the
  /// returned Resubmission tickets (or drain()) to finish the sweep.
  using RequestBuilder = std::function<EvalRequest(
      const std::string& sampleId, const std::string& tenant)>;
  RecoveryReport recover(const std::string& ledgerPath,
                         const RequestBuilder& builder);

  /// The pure journal replay recover() is built on: deduplicates admit
  /// records by request index, splits them into completed runs (matching
  /// run record present) and residue, and counts quarantined samples.
  /// Static so operator tooling can inspect a dead service's ledger
  /// without standing a fleet up.
  static RecoveryReport replayAdmissionJournal(
      const std::vector<obs::LedgerRecord>& records);

  /// Crash simulation: stops the service the way SIGKILL would, modulo
  /// thread hygiene. Admission stops, every queued-but-unstarted job is
  /// dropped on the floor (their tickets never complete — exactly what a
  /// real crash does to them), workers are joined after their in-flight
  /// attempt, and — unlike shutdown() — telemetry is NOT flushed, so no
  /// kWorker records mask the torn epoch. The admission journal is what
  /// makes this recoverable: recover() on a fresh service re-admits
  /// everything kill() dropped.
  void kill();

  /// Extracts the result for `ticket` if it has completed (extract-once:
  /// a second poll for the same ticket returns nullopt, as does a poll
  /// for a rejected, unknown, or still-running ticket).
  std::optional<ServiceResult> poll(const Ticket& ticket);

  /// Blocks until `ticket` completes, then extracts its result. nullopt
  /// for rejected/unknown tickets, for already-extracted ones, and under
  /// retainResults == false.
  std::optional<ServiceResult> wait(const Ticket& ticket);

  /// Blocks until every admitted request has completed.
  void drain();

  /// Registers a callback invoked once per completed request, on the
  /// finishing worker's thread, before the result is published for
  /// poll()/wait(). Callbacks must not call back into the service's
  /// blocking APIs (wait/drain/shutdown). Returns a slot for unsubscribe.
  std::size_t subscribe(ResultCallback callback);
  /// Drops a subscription. A callback already in flight on a worker
  /// thread may still run once after this returns.
  void unsubscribe(std::size_t slot) noexcept;

  /// Stops admission, drains every queued and in-flight request, joins the
  /// worker pool, and flushes telemetry (kWorker ledger records included).
  /// Idempotent; implied by the destructor.
  void shutdown();

  ServiceStats stats() const;

  /// Stable shard routing: FNV-1a of the sample id mod shardCount. The
  /// same sample always lands on the same shard (and therefore the same
  /// pool of private machines), which keeps per-shard ledgers coherent.
  std::size_t shardFor(const std::string& sampleId) const noexcept;

  std::size_t shardCount() const noexcept { return shards_; }
  /// Total workers across all shards.
  std::size_t workerCount() const noexcept { return workers_.size(); }

  /// True when `sampleId` is in the persisted quarantine set (reached
  /// ServiceOptions::quarantineThreshold exhausted submissions, or was
  /// reloaded from the journal by recover()).
  bool isQuarantined(const std::string& sampleId) const;

  /// Current breaker state of one shard (kClosed when supervision off).
  BreakerState breakerState(std::size_t shard) const;

  /// Overrides the deception database on every worker harness (the
  /// profile-ablation hook). Call while idle, not mid-submission.
  void setResourceDbFactory(EvaluationHarness::DbFactory dbFactory);

  /// Per-worker telemetry (global worker order): each worker's successful
  /// samples merged plus its `batch.*` accounting counters. Rebuilt by
  /// flushTelemetry(); call after drain()/shutdown() for a settled view.
  const std::vector<obs::MetricsSnapshot>& workerTelemetry() const noexcept {
    return workerTelemetry_;
  }

  /// Merge of workerTelemetry() in global worker order: the fleet-level
  /// dump. Counters sum, so it equals the serial sweep's aggregate
  /// regardless of how requests raced across shards and workers.
  obs::MetricsSnapshot fleetTelemetry() const;

  /// Service-level health decisions (kStall events), rebuilt by
  /// flushTelemetry() in global worker order.
  const obs::FlightRecorder& healthEvents() const noexcept {
    return healthEvents_;
  }

  /// The run ledger the shards stream into, or nullptr when none is
  /// configured (TelemetryOptions::ledgerPath / SCARECROW_LEDGER empty).
  const obs::LedgerWriter* ledger() const noexcept { return ledger_.get(); }

  /// Settles the telemetry epoch: rebuilds workerTelemetry() and
  /// healthEvents() from the workers' private accounting and appends one
  /// kWorker ledger record per worker. Call while idle (after drain()).
  /// Idempotent until new work completes; shutdown() calls it last.
  void flushTelemetry();

  /// Opens a fresh telemetry epoch: zeroes every worker's accounting and
  /// merged snapshot, clears healthEvents(), and resets the epoch-scoped
  /// stats (heartbeats, inflight peak, queue-depth peak). Call while idle.
  /// The batch façade calls this at the top of every evaluateAll so each
  /// call reports exactly its own corpus.
  void resetTelemetry();

 private:
  struct Worker;
  struct Shard;
  struct Job;

  void workerMain(Worker& worker);
  void executeJob(Worker& worker, Job job);
  void completeJob(Worker& worker, ServiceResult result);
  /// Shared admission core: submit() passes nullopt (fresh index, full
  /// policy), resubmit() a pinned index (recovery bypass).
  Ticket admitLocked(EvalRequest request,
                     std::optional<std::uint64_t> pinnedIndex);
  /// Routes around open breakers: the home shard when healthy, else the
  /// next closed (or probe-free half-open) shard, else nullopt. Advances
  /// open→half-open transitions whose cooldown has elapsed. `probe` is
  /// set when the chosen shard is half-open and this admission is its one
  /// probe. Caller holds mutex_.
  std::optional<std::size_t> routeShardLocked(std::size_t home,
                                              bool& probe);
  /// Breaker bookkeeping for one completion (caller holds mutex_;
  /// `clockMs` timestamps any kBreakerTrip event).
  void noteCompletionLocked(const ServiceResult& result,
                            std::uint64_t clockMs);
  /// Builds (or rebuilds) one worker's Machine + harness from the stored
  /// factory, re-attaching the ledger window observer. Used by the
  /// constructor and by crash containment.
  void buildWorkerMachine(Worker& worker);
  /// Rebuilds one worker's Machine + harness from the stored factory
  /// after a kWorkerCrash fire (the crash never reaches the request).
  void restartWorker(Worker& worker);
  /// Service-seam fault check, serialized (FaultInjector is not
  /// thread-safe and this one is shared by all workers).
  bool serviceFaultFires(faults::FaultSite site, std::string_view detail);

  ServiceOptions options_;
  std::size_t shards_ = 1;
  std::string shardLabel(std::size_t shard) const;

  /// Kept for worker restarts: crash containment rebuilds a dead worker's
  /// machine from the same factory the constructor used.
  MachineFactory machineFactory_;
  /// factory calls are serialized (they need not be thread-safe).
  std::mutex factoryMutex_;
  EvaluationHarness::DbFactory dbFactory_;

  /// Armed from ServiceOptions::faultPlan; shared across workers, so
  /// every check goes through serviceFaultFires (faultMutex_).
  std::unique_ptr<faults::FaultInjector> injector_;
  std::mutex faultMutex_;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<Shard>> shardStates_;
  std::unique_ptr<obs::LedgerWriter> ledger_;

  // Flushed telemetry epoch (settled by flushTelemetry()).
  std::vector<obs::MetricsSnapshot> workerTelemetry_;
  obs::FlightRecorder healthEvents_;
  bool telemetryDirty_ = false;

  // Admission + delivery plane. One mutex: admission is O(1) bookkeeping
  // and completions are rare relative to evaluation cost (~ms per sample),
  // so a single lock is far from contention and keeps the verdict logic
  // atomic across shards, tenants, and the results table.
  mutable std::mutex mutex_;
  std::condition_variable doneCv_;
  bool shuttingDown_ = false;
  /// Set by kill(): suppresses shutdown()'s drain + telemetry flush so a
  /// simulated crash leaves the torn epoch torn.
  bool killed_ = false;
  std::uint64_t nextTicketId_ = 0;
  /// Next ledger requestIndex, reset per telemetry epoch, so the façade's
  /// per-evaluateAll request indices start at 0 every call. resubmit()
  /// pins indices below it without disturbing the sequence for new work.
  std::uint64_t nextRequestIndex_ = 0;
  std::unordered_set<std::uint64_t> live_;  // admitted, not yet completed
  /// Persisted quarantine set (kQuarantinedSample records mirror it).
  std::unordered_set<std::string> quarantine_;
  /// Submissions per sample that exhausted every attempt (feeds the
  /// quarantine threshold; only grown while quarantine is armed).
  std::unordered_map<std::string, std::size_t> exhausted_;
  /// kBreakerTrip events collected under mutex_ and replayed into
  /// healthEvents() after the stall events at flushTelemetry().
  std::vector<obs::DecisionEvent> breakerEvents_;
  std::map<std::uint64_t, ServiceResult> results_;
  std::unordered_map<std::string, std::size_t> tenantOutstanding_;
  std::vector<std::pair<std::size_t, ResultCallback>> subscribers_;
  std::size_t nextSubscriberSlot_ = 0;

  // Counters. Queue/admission numbers live under mutex_ (they are written
  // there anyway); the execution-path ones are atomics so the hot loop
  // never touches the admission lock.
  std::uint64_t submitted_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejectedQueueFull_ = 0;
  std::uint64_t rejectedTenant_ = 0;
  std::uint64_t rejectedShutdown_ = 0;
  std::uint64_t rejectedShardUnavailable_ = 0;
  std::uint64_t rejectedQuarantined_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t timedOut_ = 0;
  std::uint64_t queueDepthPeak_ = 0;
  std::uint64_t breakerTrips_ = 0;
  std::atomic<std::uint64_t> inflight_{0};
  std::atomic<std::uint64_t> inflightPeak_{0};
  std::atomic<std::uint64_t> retried_{0};
  std::atomic<std::uint64_t> stalled_{0};
  std::atomic<std::uint64_t> workerRestarts_{0};
};

}  // namespace scarecrow::core
