// Coherent deception profiles (paper Section VI-B).
//
// The default resource database is a kitchen sink: it bestows VMware AND
// VirtualBox AND QEMU artifacts simultaneously, which maximizes coverage
// but is itself fingerprintable ("no machine is two VMs at once"). The
// paper proposes preparing multiple *coherent* profiles — each imitating
// one concrete sandbox deployment — and activating one at a time (or
// letting the first probe pick, the conflict-aware mode).
//
// Each builder below returns a database whose artifacts could all coexist
// on one real analysis machine.
#pragma once

#include <string>
#include <vector>

#include "core/resource_db.h"

namespace scarecrow::core {

enum class SandboxProfile : std::uint8_t {
  kCuckooVirtualBox,  // Cuckoo guest on VirtualBox (the classic deployment)
  kVMwareAnalyst,     // analyst workstation: VMware guest + debug tooling
  kQemuAnubis,        // Anubis-style QEMU emulation sandbox
  kBareMetalForensic, // bare-metal box running forensic tools (no VM)
};

const char* sandboxProfileName(SandboxProfile profile) noexcept;

inline constexpr SandboxProfile kAllSandboxProfiles[] = {
    SandboxProfile::kCuckooVirtualBox, SandboxProfile::kVMwareAnalyst,
    SandboxProfile::kQemuAnubis, SandboxProfile::kBareMetalForensic};

/// Builds a single-coherent-sandbox deception database.
ResourceDb buildProfileDb(SandboxProfile profile);

/// One vendor-certifying artifact found in a database: the concrete
/// resource (key, file, or "key!value" string) that claims the vendor.
struct VendorEvidence {
  Profile vendor = Profile::kGeneric;
  std::string resource;
};

/// A pair of artifacts claiming two *different* VM vendors — the
/// contradiction the Section VI-B cross-vendor check exploits.
struct VendorConflict {
  VendorEvidence first;
  VendorEvidence second;
};

/// Probes the vendor-identifying artifacts (tool keys, driver files, BIOS
/// and SCSI identifier strings) and returns one evidence entry per distinct
/// VM vendor the database claims, in probe order.
std::vector<VendorEvidence> collectVendorEvidence(const ResourceDb& db);

/// Every conflicting vendor pair, in evidence order. Empty means the
/// database would survive the cross-vendor consistency check.
std::vector<VendorConflict> vendorConflicts(const ResourceDb& db);

/// True if the database contains artifacts of at most one VM vendor —
/// i.e. it would survive the Section VI-B cross-vendor consistency check.
bool vendorConsistent(const ResourceDb& db);

}  // namespace scarecrow::core
