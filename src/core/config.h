// Scarecrow configuration (paper Sections II-B, III-B, IV-C2, VI-B).
//
// Category toggles exist for the ablation study (which resource class does
// the deactivation work?); the numeric deception values default to the
// paper's published choices: 50 GB disk / 1 GB RAM / 1 core "based on
// public sandboxes", and the Table III wear-and-tear fakes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "faults/fault_plan.h"

namespace scarecrow::core {

/// Hardware-resource deception values (Section II-B, "Hardware resources").
struct HardwareDeception {
  std::uint64_t diskTotalBytes = 50ULL << 30;  // 50 GB
  std::uint64_t diskFreeBytes = 20ULL << 30;
  std::uint64_t ramBytes = 1ULL << 30;  // 1 GB
  std::uint32_t cpuCores = 1;
};

/// Identity / launch-context deception.
struct IdentityDeception {
  std::string userName = "cuckoo";
  std::string computerName = "SANDBOX-PC";
  /// GetModuleFileName result: sandboxes rename submissions to a generic
  /// sample path (the 564ac87 "name of malware" trigger).
  std::string ownImagePath = "C:\\sandbox\\sample.exe";
  /// Faked GetTickCount base: a sandbox that booted two minutes ago.
  std::uint64_t fakeUptimeMs = 120'000;
  /// Sleep acceleration: hooked Sleep(ms) consumes only ms*pct/100 of wall
  /// time, and GetTickCount advances at the same compressed rate — the
  /// deliberately detectable sleep patching analysis sandboxes perform.
  std::uint32_t sleepPercent = 10;
  /// Extra cycles added to SEH dispatch: the "deceptive timing
  /// discrepancies in default exception processing" of Section II-B(g).
  std::uint64_t exceptionLatencyCycles = 150'000;
};

/// Wear-and-tear deception values — Table III, verbatim.
struct WearTearDeception {
  std::uint32_t dnsCacheEntries = 4;       // recent 4 entries
  std::uint32_t sysEventCount = 8'000;     // recent 8K system events
  std::uint32_t deviceClassSubkeys = 29;   // previously connected devices
  std::uint32_t autoRunEntries = 3;        // startup programs
  std::uint64_t registryQuotaBytes = 53ULL << 20;  // 53 MB
  std::uint32_t uninstallEntries = 2;
  std::uint32_t sharedDllEntries = 3;
  std::uint32_t appPathEntries = 2;
  std::uint32_t activeSetupEntries = 2;
  std::uint32_t userAssistEntries = 1;
  std::uint32_t shimCacheEntries = 9;
  std::uint32_t muiCacheEntries = 2;
  std::uint32_t firewallRuleEntries = 30;
  std::uint32_t usbStorEntries = 0;
};

/// Kernel/hypervisor extension knobs (Section VI-A future work,
/// implemented in core/kernel_ext.h).
struct KernelExtensionConfig {
  bool enabled = false;
  /// Rewrite the supervised process's PEB so direct memory reads see the
  /// deceptive hardware (closes the cbdda64 gap).
  bool spoofPeb = true;
  /// Trap CPUID from supervised processes: hypervisor bit + vendor string
  /// + vmexit latency (closes the rdtsc_diff_vmexit / cpuid_hv_* gap).
  bool trapCpuid = true;
  std::string hypervisorVendor = "VBoxVBoxVBox";
  std::uint64_t cpuidTrapExtraCycles = 40'000;
  /// Create sandbox kernel objects in the device namespace (closes the
  /// \\.\pipe\cuckoo / \\.\VBoxGuest gap).
  bool fabricateDeviceObjects = true;
};

struct Config {
  /// Machine-time budget of one sample execution, in virtual milliseconds:
  /// the paper's Figure 3 protocol gives every run one minute before the
  /// Deep Freeze reset ("each sample executes for one minute of machine
  /// time"). EvalRequest::budgetMs and Cluster::runAll default to this.
  static constexpr std::uint64_t kDefaultBudgetMs = 60'000;

  // Resource-category switches (ablation bench A1).
  bool softwareResources = true;  // files, processes, DLLs, windows, registry
  bool hardwareResources = true;  // disk / RAM / cores
  bool networkResources = true;   // NX-domain sinkhole
  bool debuggerDeception = true;  // IsDebuggerPresent & friends
  bool wearTearExtension = true;  // Section IV-C2 aging fakes

  /// Section VI-B future-work feature, implemented: when a probe locks onto
  /// one VM vendor's artifacts, the other vendors' profiles deactivate so a
  /// cross-vendor consistency check finds no contradiction.
  bool conflictAwareProfiles = false;

  /// Section VI-C active mitigation: record-only by default; when enabled,
  /// a sample exceeding the kill threshold of self-spawns is terminated.
  bool mitigateSelfSpawn = false;
  std::uint32_t selfSpawnKillThreshold = 50;

  HardwareDeception hardware;
  IdentityDeception identity;
  WearTearDeception wearTear;
  KernelExtensionConfig kernel;

  /// All NX domains resolve here (the paper points them at its proxy).
  std::string sinkholeIp = "10.0.0.1";

  /// Capacity of the machine's decision-trace flight recorder (events).
  /// Oldest events are dropped beyond this bound; drops are counted in the
  /// metrics registry as `obs.decisions_dropped`. 0 disables retention
  /// (every event is dropped on arrival).
  std::size_t flightRecorderCapacity = 4096;

  // --- Robustness (DESIGN.md §11) -------------------------------------
  // The fault plan travels inside Config on purpose: it reaches every
  // consumer (engine, controller, batch workers) by value, so a worker
  // replays exactly the serial schedule for its (seed, plan) pair.

  /// Deterministic fault schedule for this run; empty = no faults armed.
  faults::FaultPlan faultPlan;

  /// Bounded retry for the root injection in Controller::launch: total
  /// attempts (≥1), with a virtual-clock backoff that starts at
  /// `injectBackoffMs` and doubles per retry.
  std::uint32_t injectMaxAttempts = 3;
  std::uint64_t injectBackoffMs = 10;

  /// Install failures tolerated per hook before the engine quarantines it
  /// (skips it on later installs and downgrades the protection ladder).
  std::uint32_t hookQuarantineThreshold = 2;

  /// IPC queue bound (messages); beyond it the oldest pending message is
  /// dropped and counted in `ipc.messages_dropped`. 0 = unbounded.
  std::size_t ipcQueueCapacity = 4096;

  // --- Streaming telemetry (DESIGN.md §13) ----------------------------

  /// Virtual-clock window length of the machine's TimeSeriesPlane; 0 keeps
  /// whatever the plane already has (the SCARECROW_TS_WINDOW_MS default),
  /// so env-armed runs work without touching Config.
  std::uint64_t telemetryWindowMs = 0;

  /// Closed windows the plane retains (bounded ring).
  std::size_t telemetryWindowCapacity = 64;

  /// Semicolon-separated SLO rule specs (obs::SloEngine grammar), e.g.
  /// "inject.failures:rate<0.01/window;hot.hook_dispatch_ns:p50<2000".
  /// Empty falls back to SCARECROW_SLO. Rules are evaluated against every
  /// closed window; breaches tick `obs.slo_breach{rule}` and record a
  /// kSloBreach decision event.
  std::string sloSpec;

  /// When true, any SLO breach arms the PR 5 degradation ladder one step
  /// (DeceptionEngine::degradeTo) — the loudest possible alert: the system
  /// visibly sheds deception work instead of silently missing its SLOs.
  bool sloArmsDegradation = false;

  // --- Environment defaults -------------------------------------------
  // Precedence is uniform: explicit field > SCARECROW_* environment
  // variable > built-in default. These two are the only places Config
  // consults the environment; the individual SCARECROW_* readers live
  // behind support/env.h.

  /// A default Config with every env-backed field seeded from the
  /// environment: telemetryWindowMs from SCARECROW_TS_WINDOW_MS, sloSpec
  /// from SCARECROW_SLO. Equivalent to `Config{}.withEnvDefaults()`.
  static Config fromEnv();

  /// This config with env fallbacks applied to every field still at its
  /// default — the harness calls this per run, so an explicit field
  /// always beats the environment.
  Config withEnvDefaults() const;
};

}  // namespace scarecrow::core
