#include "core/report.h"

#include <algorithm>

#include "trace/analysis.h"

namespace scarecrow::core {

namespace {

void appendTimeline(std::string& out, const trace::Trace& trace,
                    std::size_t maxEvents) {
  std::size_t shown = 0;
  for (const trace::Event& e : trace.events) {
    if (e.kind == trace::EventKind::kApiCall) continue;
    if (shown++ == maxEvents) {
      out += "- … (" + std::to_string(trace.events.size()) +
             " events total)\n";
      break;
    }
    out += "- t+" + std::to_string(e.timeMs) + "ms `" +
           trace::eventKindName(e.kind) + "` " + e.target;
    if (!e.detail.empty()) out += " — " + e.detail;
    out += '\n';
  }
}

}  // namespace

std::string renderIncidentReport(const std::string& sampleId,
                                 const EvalOutcome& outcome,
                                 const ReportOptions& options) {
  const trace::DeactivationVerdict& verdict = outcome.verdict;
  std::string out = "# Scarecrow incident report — " + sampleId + "\n\n";

  out += "**Verdict:** ";
  out += verdict.deactivated ? "DEACTIVATED" : "NOT deactivated";
  out += " (";
  out += trace::deactivationReasonName(verdict.reason);
  out += ")\n\n";

  if (!verdict.firstTrigger.empty())
    out += "**Evasive logic triggered by:** `" + verdict.firstTrigger +
           "`\n\n";
  if (outcome.attribution.resolved)
    out += renderAttributionReport(outcome.attribution);
  if (verdict.selfSpawnsWithScarecrow > 1)
    out += "**Self-spawn loop:** " +
           std::to_string(verdict.selfSpawnsWithScarecrow) +
           " respawns inside the budget" +
           std::string(verdict.isDebuggerPresentUsed
                           ? " (fingerprinting via IsDebuggerPresent)"
                           : "") +
           "\n\n";

  if (!verdict.suppressedActivities.empty()) {
    out += "## Payload prevented\n\n";
    std::size_t shown = 0;
    for (const std::string& activity : verdict.suppressedActivities) {
      if (shown++ == options.maxActivities) {
        out += "- … (" +
               std::to_string(verdict.suppressedActivities.size()) +
               " total)\n";
        break;
      }
      out += "- " + activity + "\n";
    }
    out += '\n';
  }
  if (!verdict.leakedActivities.empty()) {
    out += "## Activities NOT prevented\n\n";
    for (const std::string& activity : verdict.leakedActivities)
      out += "- " + activity + "\n";
    out += '\n';
  }

  if (outcome.resilience.degraded() || outcome.resilience.faultsInjected > 0)
    out += renderResilienceReport(outcome.resilience);

  out += "## Timeline (supervised run)\n\n";
  appendTimeline(out, outcome.traceWith, options.maxTimelineEvents);
  out += "\n## Timeline (reference run, unprotected)\n\n";
  appendTimeline(out, outcome.traceWithout, options.maxTimelineEvents);
  if (options.includeTelemetry && !outcome.telemetry.empty()) {
    out += '\n';
    out += renderTelemetryReport(outcome.telemetry, options);
  }
  for (const std::string& section : options.appendixSections) {
    out += '\n';
    out += section;
  }
  return out;
}

std::string renderAttributionReport(const TriggerAttribution& attribution) {
  std::string out = "## Trigger attribution\n\n";
  if (!attribution.resolved) {
    out += "No fingerprint attempt reached the controller; the verdict "
           "stands on trace diffing alone.\n\n";
    return out;
  }
  out += "Causal chain #" + std::to_string(attribution.correlationId) +
         ": `" + attribution.api + "`";
  if (!attribution.argument.empty())
    out += " probed *" + attribution.argument + "*";
  if (!attribution.matched.empty())
    out += " (matched profile `" + attribution.matched + "`)";
  out += "\n\n";
  if (attribution.truncated)
    out += "*Recorder overflowed; the oldest links of this chain were "
           "dropped.*\n\n";
  for (const obs::DecisionEvent& e : attribution.chain) {
    out += "- t+" + std::to_string(e.timeMs) + "ms pid " +
           std::to_string(e.pid) + " `" +
           obs::decisionKindName(e.kind) + "` " + e.api;
    if (!e.argument.empty()) out += " — " + e.argument;
    if (!e.value.empty()) out += " → " + e.value;
    if (!e.link.empty()) out += " [" + e.link + "]";
    out += '\n';
  }
  out += '\n';
  return out;
}

std::string renderResilienceReport(const ResilienceVerdict& resilience) {
  std::string out = "## Deception-plane resilience\n\n";
  out += "**Protection level:** ";
  out += faults::protectionLevelName(resilience.protectionLevel);
  out += resilience.degraded() ? " (degraded)\n\n" : "\n\n";
  out += "- faults injected: " +
         std::to_string(resilience.faultsInjected) + "\n";
  out += "- root-injection retries: " +
         std::to_string(resilience.injectRetries) + "\n";
  out += "- hook install failures: " +
         std::to_string(resilience.hookInstallFailures) + " (" +
         std::to_string(resilience.quarantinedHooks) + " quarantined)\n";
  out += "- missed descendants: " +
         std::to_string(resilience.missedDescendants) + " (" +
         std::to_string(resilience.reinjectedDescendants) +
         " re-injected)\n";
  out += "- IPC messages dropped: " +
         std::to_string(resilience.ipcMessagesDropped) + "\n\n";
  return out;
}

std::string renderTelemetryReport(const obs::MetricsSnapshot& telemetry,
                                  const ReportOptions& options) {
  std::string out = "## Telemetry\n\n";

  // Hottest hooks: engine.hook_invocations counters, by count then name.
  std::vector<const obs::CounterSample*> hooks;
  for (const obs::CounterSample& c : telemetry.counters)
    if (c.name == "engine.hook_invocations" && c.value > 0)
      hooks.push_back(&c);
  std::sort(hooks.begin(), hooks.end(),
            [](const obs::CounterSample* a, const obs::CounterSample* b) {
              if (a->value != b->value) return a->value > b->value;
              return a->label < b->label;
            });
  out += "### Hottest hooks\n\n";
  if (hooks.empty()) {
    out += "No hooked API was invoked.\n";
  } else {
    std::size_t shown = 0;
    for (const obs::CounterSample* c : hooks) {
      if (shown++ == options.maxHotHooks) {
        out += "- … (" + std::to_string(hooks.size()) + " hooks hit)\n";
        break;
      }
      out += "- `" + c->label + "` ×" + std::to_string(c->value) + "\n";
    }
  }
  out += '\n';

  bool any = false;
  for (const obs::CounterSample& c : telemetry.counters) {
    if (c.name != "engine.alerts_by_profile" || c.value == 0) continue;
    if (!any) out += "### Alerts by profile\n\n";
    any = true;
    out += "- " + c.label + " ×" + std::to_string(c.value) + "\n";
  }
  if (any) out += '\n';

  for (const obs::HistogramSample& h : telemetry.histograms) {
    if (h.name != "engine.hook_dispatch_ms" || h.count == 0) continue;
    out += "### Hook dispatch latency\n\n";
    out += "- " + std::to_string(h.count) + " dispatches, p50 " +
           std::to_string(h.p50) + "ms, p95 " + std::to_string(h.p95) +
           "ms, p99 " + std::to_string(h.p99) + "ms, max " +
           std::to_string(h.max) + "ms\n\n";
  }

  if (!telemetry.spans.empty()) {
    out += "### Phase timings\n\n";
    for (const obs::Span& s : telemetry.spans) {
      for (std::uint32_t d = 0; d < s.depth; ++d) out += "  ";
      out += "- `" + s.name + "` " + std::to_string(s.durationMs) +
             "ms (t+" + std::to_string(s.startMs) + "ms)\n";
    }
  }
  return out;
}

std::string renderSupervisionReport(const Controller& controller,
                                    const ReportOptions& options) {
  std::string out = "# Scarecrow supervision summary\n\n";
  out += "- injected descendants: " +
         std::to_string(controller.injectedChildren()) + "\n";
  out += "- self-spawn alerts: " +
         std::to_string(controller.selfSpawnAlerts()) + "\n";
  out += "- distinct fingerprint probes: " +
         std::to_string(controller.reports().size()) + "\n\n";
  if (controller.reports().empty()) {
    out += "No fingerprinting attempts observed — the target never probed "
           "a deceptive resource.\n";
    return out;
  }
  out += "## Fingerprint attempts (first-seen order)\n\n";
  std::size_t shown = 0;
  for (const FingerprintReport& report : controller.reports()) {
    if (shown++ == options.maxActivities) {
      out += "- … (" + std::to_string(controller.reports().size()) +
             " total)\n";
      break;
    }
    out += "- `" + report.api + "` probed *" + report.resource + "* ×" +
           std::to_string(report.count) + "\n";
  }
  if (options.includeTelemetry) {
    const obs::MetricsSnapshot telemetry = controller.telemetrySnapshot();
    if (!telemetry.empty()) {
      out += '\n';
      out += renderTelemetryReport(telemetry, options);
    }
  }
  return out;
}

}  // namespace scarecrow::core
