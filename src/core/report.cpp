#include "core/report.h"

#include "trace/analysis.h"

namespace scarecrow::core {

namespace {

void appendTimeline(std::string& out, const trace::Trace& trace,
                    std::size_t maxEvents) {
  std::size_t shown = 0;
  for (const trace::Event& e : trace.events) {
    if (e.kind == trace::EventKind::kApiCall) continue;
    if (shown++ == maxEvents) {
      out += "- … (" + std::to_string(trace.events.size()) +
             " events total)\n";
      break;
    }
    out += "- t+" + std::to_string(e.timeMs) + "ms `" +
           trace::eventKindName(e.kind) + "` " + e.target;
    if (!e.detail.empty()) out += " — " + e.detail;
    out += '\n';
  }
}

}  // namespace

std::string renderIncidentReport(const std::string& sampleId,
                                 const EvalOutcome& outcome,
                                 const ReportOptions& options) {
  const trace::DeactivationVerdict& verdict = outcome.verdict;
  std::string out = "# Scarecrow incident report — " + sampleId + "\n\n";

  out += "**Verdict:** ";
  out += verdict.deactivated ? "DEACTIVATED" : "NOT deactivated";
  out += " (";
  out += trace::deactivationReasonName(verdict.reason);
  out += ")\n\n";

  if (!verdict.firstTrigger.empty())
    out += "**Evasive logic triggered by:** `" + verdict.firstTrigger +
           "`\n\n";
  if (verdict.selfSpawnsWithScarecrow > 1)
    out += "**Self-spawn loop:** " +
           std::to_string(verdict.selfSpawnsWithScarecrow) +
           " respawns inside the budget" +
           std::string(verdict.isDebuggerPresentUsed
                           ? " (fingerprinting via IsDebuggerPresent)"
                           : "") +
           "\n\n";

  if (!verdict.suppressedActivities.empty()) {
    out += "## Payload prevented\n\n";
    std::size_t shown = 0;
    for (const std::string& activity : verdict.suppressedActivities) {
      if (shown++ == options.maxActivities) {
        out += "- … (" +
               std::to_string(verdict.suppressedActivities.size()) +
               " total)\n";
        break;
      }
      out += "- " + activity + "\n";
    }
    out += '\n';
  }
  if (!verdict.leakedActivities.empty()) {
    out += "## Activities NOT prevented\n\n";
    for (const std::string& activity : verdict.leakedActivities)
      out += "- " + activity + "\n";
    out += '\n';
  }

  out += "## Timeline (supervised run)\n\n";
  appendTimeline(out, outcome.traceWith, options.maxTimelineEvents);
  out += "\n## Timeline (reference run, unprotected)\n\n";
  appendTimeline(out, outcome.traceWithout, options.maxTimelineEvents);
  return out;
}

std::string renderSupervisionReport(const Controller& controller,
                                    const ReportOptions& options) {
  std::string out = "# Scarecrow supervision summary\n\n";
  out += "- injected descendants: " +
         std::to_string(controller.injectedChildren()) + "\n";
  out += "- self-spawn alerts: " +
         std::to_string(controller.selfSpawnAlerts()) + "\n";
  out += "- distinct fingerprint probes: " +
         std::to_string(controller.reports().size()) + "\n\n";
  if (controller.reports().empty()) {
    out += "No fingerprinting attempts observed — the target never probed "
           "a deceptive resource.\n";
    return out;
  }
  out += "## Fingerprint attempts (first-seen order)\n\n";
  std::size_t shown = 0;
  for (const FingerprintReport& report : controller.reports()) {
    if (shown++ == options.maxActivities) {
      out += "- … (" + std::to_string(controller.reports().size()) +
             " total)\n";
      break;
    }
    out += "- `" + report.api + "` probed *" + report.resource + "* ×" +
           std::to_string(report.count) + "\n";
  }
  return out;
}

}  // namespace scarecrow::core
