#include "core/controller.h"

#include "hooking/injector.h"
#include "obs/export.h"
#include "support/log.h"

namespace scarecrow::core {

Controller::Controller(winsys::Machine& machine,
                       winapi::UserSpace& userspace, DeceptionEngine& engine)
    : machine_(machine), userspace_(userspace), engine_(engine) {
  // The resident controller process. Created once per machine.
  winsys::Process* existing = machine_.processes().findByName("scarecrow.exe");
  if (existing != nullptr) {
    controllerPid_ = existing->pid;
  } else {
    machine_.vfs().makeDirs("C:\\Program Files\\Scarecrow");
    machine_.vfs().createFile("C:\\Program Files\\Scarecrow\\scarecrow.exe",
                              2 << 20);
    winsys::Process& proc = machine_.processes().create(
        "C:\\Program Files\\Scarecrow\\scarecrow.exe", 0, "scarecrow.exe",
        machine_.sysinfo().processorCount);
    controllerPid_ = proc.pid;
  }
}

std::uint32_t Controller::launch(const std::string& imagePath,
                                 const std::string& commandLine) {
  winapi::Runner runner(machine_, userspace_);
  winapi::RunOptions options;
  options.parentPid = controllerPid_;  // deceptive parent (Section III-B)
  options.commandLine = commandLine;
  const std::uint32_t pid = runner.spawnRoot(imagePath, options);

  // Bounded retry with a doubling virtual-clock backoff. The fault plan
  // decides which attempts fail; the budget decides when to give up and
  // run the sample monitor-only rather than not at all.
  const Config& config = engine_.config();
  const std::uint32_t maxAttempts =
      config.injectMaxAttempts > 0 ? config.injectMaxAttempts : 1;
  std::uint64_t backoffMs = config.injectBackoffMs;
  bool injected = false;
  for (std::uint32_t attempt = 1; attempt <= maxAttempts; ++attempt) {
    if (attempt > 1) {
      ++injectRetries_;
      machine_.metrics().counter("inject.retries").inc();
      machine_.clock().advanceMs(backoffMs);
      obs::DecisionEvent e;
      e.timeMs = machine_.clock().nowMs();
      e.pid = controllerPid_;
      e.kind = obs::DecisionKind::kRetry;
      e.api = "injectDll";
      e.argument = obs::digestArgument(imagePath);
      e.value = std::to_string(attempt);
      machine_.flightRecorder().record(std::move(e));
      backoffMs *= 2;
    }
    injected = hooking::injectDll(machine_, userspace_, pid,
                                  engine_.dllImage(), faults_);
    if (injected) break;
  }
  if (!injected) {
    // Out of attempts: the sample still runs, but unhooked. Loud — a
    // silent monitor-only run would corrupt the evaluation corpus.
    injectionSucceeded_ = false;
    machine_.metrics().counter("inject.giveups").inc();
    obs::DecisionEvent e;
    e.timeMs = machine_.clock().nowMs();
    e.pid = controllerPid_;
    e.kind = obs::DecisionKind::kDegradation;
    e.api = faults::protectionLevelName(
        faults::ProtectionLevel::kMonitorOnly);
    e.argument = obs::digestArgument("root injection exhausted " +
                                     std::to_string(maxAttempts) +
                                     " attempts");
    machine_.flightRecorder().record(std::move(e));
    support::logError("controller", "root injection gave up",
                      {{"image", imagePath}, {"attempts", maxAttempts}});
  }
  return pid;
}

void Controller::pump() {
  obs::MetricsRegistry& metrics = machine_.metrics();
  obs::FlightRecorder& flight = machine_.flightRecorder();
  for (hooking::IpcMessage& msg : engine_.ipc().drain()) {
    metrics.counter("controller.ipc_messages", hooking::ipcKindName(msg.kind))
        .inc();
    // The controller-side half of the causal chain: same correlation id as
    // the DLL-side send, controller pid, drained timestamp.
    {
      obs::DecisionEvent e;
      e.timeMs = machine_.clock().nowMs();
      e.pid = controllerPid_;
      e.correlationId = msg.correlationId;
      e.kind = obs::DecisionKind::kIpcDrain;
      e.api = msg.api;
      e.argument = obs::digestArgument(msg.resource);
      e.link = hooking::ipcKindName(msg.kind);
      e.value = std::to_string(msg.seq);
      flight.record(std::move(e));
    }
    switch (msg.kind) {
      case hooking::IpcKind::kFingerprintAttempt: {
        if (firstTriggerCorrelation_ == 0)
          firstTriggerCorrelation_ = msg.correlationId;
        bool found = false;
        for (FingerprintReport& report : reports_) {
          if (report.api == msg.api && report.resource == msg.resource) {
            ++report.count;
            found = true;
            break;
          }
        }
        if (!found)
          reports_.push_back({msg.api, msg.resource, 1, msg.timeMs});
        break;
      }
      case hooking::IpcKind::kSelfSpawnAlert:
        ++selfSpawnAlerts_;
        break;
      case hooking::IpcKind::kProcessInjected:
        ++injected_;
        break;
      case hooking::IpcKind::kInjectFailed: {
        // The DLL lost a descendant (child-propagation fault). Re-inject
        // from the controller side; the child may have executed a few
        // instructions unsupervised, but supervision resumes from here.
        ++missedDescendants_;
        if (hooking::injectDll(machine_, userspace_, msg.pid,
                               engine_.dllImage(), faults_)) {
          ++reinjected_;
          ++injected_;
          metrics.counter("inject.reinjections").inc();
        } else {
          support::logError("controller", "descendant re-injection failed",
                            {{"pid", msg.pid}, {"image", msg.resource}});
        }
        break;
      }
      case hooking::IpcKind::kConfigUpdate:
        break;
    }
  }
  // Streaming-telemetry tick: pump() runs at every pipeline seam, so the
  // plane keeps closing windows even when no hook dispatch is happening.
  obs::TimeSeriesPlane& plane = machine_.timeSeries();
  if (plane.due(machine_.clock().nowMs()))
    plane.observe(metrics.snapshot(), machine_.clock().nowMs());
}

std::string Controller::firstTrigger() const {
  return reports_.empty() ? std::string{} : reports_.front().api;
}

std::string Controller::telemetryJson() const {
  return obs::Exporter(obs::ExportFormat::kJson).render(telemetrySnapshot());
}

}  // namespace scarecrow::core
