// Kernel/hypervisor deception extension — the paper's Section VI-A future
// work ("we plan to extend SCARECROW with kernel/hypervisor-based
// hooking"), implemented.
//
// User-level in-line hooking leaves three documented blind spots:
//   1. direct PEB memory reads (Table I sample cbdda64 reads
//      NumberOfProcessors and defeats Scarecrow);
//   2. the CPUID/RDTSC instruction channel (the rdtsc_diff* Pafish rows
//      Table II leaves uncovered);
//   3. kernel object namespace probes (\\.\VBoxGuest, \\.\pipe\cuckoo,
//      NDIS/firmware artifacts).
// A kernel driver plus a thin hypervisor close all three: the driver can
// rewrite a supervised process's PEB and fabricate device objects, and the
// hypervisor can trap CPUID (reporting a hypervisor *and* paying
// vmexit-scale latency, so even the timing side channel agrees).
//
// The extension is strictly additive and per-process where possible, so
// benign software and the rest of the machine stay untouched (device
// objects are machine-global, exactly as a real driver's would be).
#pragma once

#include <string>
#include <vector>

#include "config.h"
#include "winsys/machine.h"

namespace scarecrow::core {

/// Device objects a loaded driver would create. One set per machine.
const std::vector<std::string>& kernelDeviceObjects();

class KernelExtension {
 public:
  explicit KernelExtension(KernelExtensionConfig config)
      : config_(std::move(config)) {}

  const KernelExtensionConfig& config() const noexcept { return config_; }

  /// Driver load: fabricates the sandbox device objects. Idempotent.
  void installOnMachine(winsys::Machine& machine) const;

  /// Per-process deception (called at injection time for the target and
  /// every descendant): PEB rewrite + CPUID trap registration.
  void installIntoProcess(winsys::Machine& machine, std::uint32_t pid,
                          const HardwareDeception& hardware) const;

  /// True when the driver's device objects are present.
  static bool installedOn(const winsys::Machine& machine);

 private:
  KernelExtensionConfig config_;
};

}  // namespace scarecrow::core
