#include "core/config.h"

#include "obs/slo.h"
#include "obs/timeseries.h"

namespace scarecrow::core {

Config Config::fromEnv() { return Config{}.withEnvDefaults(); }

Config Config::withEnvDefaults() const {
  Config config = *this;
  if (config.telemetryWindowMs == 0)
    config.telemetryWindowMs = obs::timeSeriesEnvWindowMs();
  if (config.sloSpec.empty()) config.sloSpec = obs::sloEnvSpec();
  return config;
}

}  // namespace scarecrow::core
