// Trigger attribution: from verdict back to the decision that caused it.
//
// The paper's Table I "Trigger" column and the Section IV-C verdicts are
// causal claims — this hook fired on this argument, served this deceptive
// value, and the sample then deactivated. PR 1 carried that claim as a
// bare string (EvalOutcome::firstTrigger); this layer replaces it with the
// evidence: starting from the kVerdict event the evaluation harness
// records, walk the flight recorder backward along the verdict's
// correlation id and reconstruct the minimal causal chain
// (hook dispatch → deception → IPC send → controller drain → verdict).
//
// The chain is minimal in the sense that it contains exactly the events
// sharing the first trigger's correlation id — every other hook dispatch,
// probe, and phase transition in the recorder is evidence for *other*
// chains, not this one. When the ring buffer overflowed and the chain's
// oldest links were dropped, `truncated` says so; the attribution then
// still names the trigger (the verdict event retains it) but cannot show
// the full chain.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"

namespace scarecrow::core {

struct TriggerAttribution {
  /// True when a verdict event with a non-zero correlation id was found —
  /// i.e. the deactivation is attributable to a concrete decision chain.
  bool resolved = false;
  /// True when the recorder dropped part of the chain (overflow): the
  /// deception link that anchors every chain is missing.
  bool truncated = false;
  std::uint64_t correlationId = 0;
  /// The triggering API label; agrees with the trace-derived
  /// DeactivationVerdict::firstTrigger.
  std::string api;
  /// Argument digest the trigger probed (from the deception event).
  std::string argument;
  /// ResourceDb entry / profile the argument matched.
  std::string matched;
  /// The chain in record order, verdict last.
  std::vector<obs::DecisionEvent> chain;
};

/// Walks `decisions` (a FlightRecorder snapshot in seq order) backward
/// from the last kVerdict event. Returns a default-constructed (non-
/// resolved) attribution when no verdict was recorded or the verdict has
/// no trigger.
TriggerAttribution attributeTrigger(
    const std::vector<obs::DecisionEvent>& decisions);

}  // namespace scarecrow::core
