#include "core/resource_db.h"

#include "support/strings.h"

namespace scarecrow::core {

using support::baseName;
using support::normalizePath;
using support::parentPath;
using support::toLower;
using winsys::RegValue;

const char* profileName(Profile profile) noexcept {
  switch (profile) {
    case Profile::kGeneric: return "generic";
    case Profile::kVMware: return "vmware";
    case Profile::kVirtualBox: return "virtualbox";
    case Profile::kQemu: return "qemu";
    case Profile::kBochs: return "bochs";
    case Profile::kWine: return "wine";
    case Profile::kSandboxie: return "sandboxie";
    case Profile::kDebugger: return "debugger";
    case Profile::kCuckoo: return "cuckoo";
    case Profile::kCrawled: return "crawled";
  }
  return "?";
}

bool vmVendorConflict(Profile a, Profile b) noexcept {
  auto isVm = [](Profile p) {
    return p == Profile::kVMware || p == Profile::kVirtualBox ||
           p == Profile::kQemu || p == Profile::kBochs;
  };
  return a != b && isVm(a) && isVm(b);
}

void ResourceDb::addFile(std::string_view path, Profile profile) {
  files_[toLower(normalizePath(path))] = profile;
}

void ResourceDb::addRegistryKey(std::string_view path, Profile profile) {
  registryKeys_[toLower(path)] = profile;
}

void ResourceDb::addRegistryValue(std::string_view path,
                                  std::string_view valueName, RegValue value,
                                  Profile profile) {
  registryValues_[toLower(path) + "!" + toLower(valueName)] =
      ValueMatch{std::move(value), profile};
  // A value implies its key exists.
  addRegistryKey(path, profile);
}

void ResourceDb::addProcess(std::string_view imageName, Profile profile) {
  processes_.push_back({std::string(imageName), profile});
}

void ResourceDb::addDll(std::string_view dllName, Profile profile) {
  dlls_[toLower(dllName)] = profile;
}

void ResourceDb::addWindow(std::string_view className, std::string_view title,
                           Profile profile) {
  windows_.push_back({std::string(className), std::string(title), profile});
}

std::optional<Profile> ResourceDb::matchFile(std::string_view path) const {
  auto it = files_.find(toLower(normalizePath(path)));
  if (it == files_.end()) return std::nullopt;
  return it->second;
}

std::optional<Profile> ResourceDb::matchRegistryKey(
    std::string_view path) const {
  const std::string key = toLower(path);
  auto it = registryKeys_.find(key);
  if (it != registryKeys_.end()) return it->second;
  // Descendant of a stored key.
  for (std::string prefix = key;;) {
    const auto pos = prefix.find_last_of('\\');
    if (pos == std::string::npos) break;
    prefix.resize(pos);
    auto ancestor = registryKeys_.find(prefix);
    if (ancestor != registryKeys_.end()) return ancestor->second;
  }
  // Ancestor of a stored key: any stored key starting with "key\\".
  const std::string prefix = key + '\\';
  auto lower = registryKeys_.lower_bound(prefix);
  if (lower != registryKeys_.end() &&
      lower->first.compare(0, prefix.size(), prefix) == 0)
    return lower->second;
  return std::nullopt;
}

std::optional<ResourceDb::ValueMatch> ResourceDb::matchRegistryValue(
    std::string_view path, std::string_view valueName) const {
  auto it =
      registryValues_.find(toLower(path) + "!" + toLower(valueName));
  if (it == registryValues_.end()) return std::nullopt;
  return it->second;
}

std::optional<Profile> ResourceDb::matchProcess(
    std::string_view imageName) const {
  for (const FakeProcess& p : processes_)
    if (support::iequals(p.imageName, imageName)) return p.profile;
  return std::nullopt;
}

std::optional<Profile> ResourceDb::matchDll(std::string_view dllName) const {
  auto it = dlls_.find(toLower(dllName));
  if (it == dlls_.end()) return std::nullopt;
  return it->second;
}

std::optional<Profile> ResourceDb::matchWindow(std::string_view className,
                                               std::string_view title) const {
  for (const FakeWindow& w : windows_) {
    const bool classOk = !className.empty() &&
                         support::iequals(w.className, className);
    const bool titleOk = !title.empty() && support::iequals(w.title, title);
    if (classOk || titleOk) return w.profile;
  }
  return std::nullopt;
}

std::vector<std::string> ResourceDb::fakeFilesIn(
    std::string_view directory, std::string_view pattern) const {
  std::vector<std::string> out;
  const std::string dirKey = toLower(normalizePath(directory));
  const std::string prefix = dirKey + '\\';
  for (auto it = files_.lower_bound(prefix);
       it != files_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    if (it->first.find('\\', prefix.size()) != std::string::npos) continue;
    const std::string name = baseName(it->first);
    if (support::wildcardMatch(pattern, name)) out.push_back(name);
  }
  return out;
}

std::vector<winapi::ProcessEntry> ResourceDb::fakeProcessEntries() const {
  std::vector<winapi::ProcessEntry> out;
  std::uint32_t pid = 0x9000;
  for (const FakeProcess& p : processes_) {
    out.push_back({pid, 4, p.imageName});
    pid += 4;
  }
  return out;
}

ResourceDb buildDefaultResourceDb() {
  ResourceDb db;

  // ---- VMware profile ----------------------------------------------------
  db.addRegistryKey("SOFTWARE\\VMware, Inc.\\VMware Tools", Profile::kVMware);
  db.addFile("C:\\Windows\\System32\\drivers\\vmmouse.sys", Profile::kVMware);
  db.addFile("C:\\Windows\\System32\\drivers\\vmhgfs.sys", Profile::kVMware);
  // "VMware device": the vmnet adapter service key a host or guest install
  // leaves behind (the artifact triggered on the paper's end-user machine).
  db.addRegistryKey("SYSTEM\\CurrentControlSet\\Services\\vmnetadapter",
                    Profile::kVMware);

  // ---- VirtualBox profile --------------------------------------------------
  db.addRegistryKey("SOFTWARE\\Oracle\\VirtualBox Guest Additions",
                    Profile::kVirtualBox);
  db.addRegistryValue("HARDWARE\\Description\\System", "SystemBiosVersion",
                      RegValue::sz("VBOX   - 1 BOCHS - 1"),
                      Profile::kVirtualBox);
  db.addRegistryValue("HARDWARE\\Description\\System", "VideoBiosVersion",
                      RegValue::sz("Oracle VM VirtualBox Version 5.2.8"),
                      Profile::kVirtualBox);
  db.addRegistryKey(
      "SYSTEM\\CurrentControlSet\\Enum\\IDE\\"
      "DiskVBOX_HARDDISK___________________________1.0_____",
      Profile::kVirtualBox);
  for (const char* driver :
       {"VBoxMouse.sys", "VBoxGuest.sys", "VBoxSF.sys", "VBoxVideo.sys"})
    db.addFile(std::string("C:\\Windows\\System32\\drivers\\") + driver,
               Profile::kVirtualBox);
  for (const char* file : {"vboxdisp.dll", "vboxhook.dll", "VBoxTray.exe"})
    db.addFile(std::string("C:\\Windows\\System32\\") + file,
               Profile::kVirtualBox);
  db.addProcess("VBoxService.exe", Profile::kVirtualBox);
  db.addProcess("VBoxTray.exe", Profile::kVirtualBox);
  db.addWindow("VBoxTrayToolWndClass", "VBoxTrayToolWnd",
               Profile::kVirtualBox);
  db.addDll("VBoxMRXNP.dll", Profile::kVirtualBox);

  // ---- QEMU / Bochs ---------------------------------------------------------
  db.addRegistryValue(
      "HARDWARE\\DEVICEMAP\\Scsi\\Scsi Port 0\\Scsi Bus 0\\Target Id 0\\"
      "Logical Unit Id 0",
      "Identifier", RegValue::sz("QEMU HARDDISK"), Profile::kQemu);
  // Bochs rides on the combined SystemBiosVersion string above; keep an
  // explicit marker key so the profile can be disabled independently.
  db.addRegistryKey("HARDWARE\\Description\\System\\BochsMarker",
                    Profile::kBochs);

  // ---- Wine ------------------------------------------------------------------
  db.addRegistryKey("HKCU\\Software\\Wine", Profile::kWine);
  db.addDll("winespool.drv", Profile::kWine);

  // ---- Sandboxie / sandbox DLLs (15) ------------------------------------------
  // 13 sandbox/analysis DLLs here + VBoxMRXNP.dll + winespool.drv = the 15
  // unique DLLs of Section II-B(c).
  for (const char* dll :
       {"SbieDll.dll", "api_log.dll", "dir_watch.dll", "pstorec.dll",
        "vmcheck.dll", "wpespy.dll", "cmdvrt32.dll", "cmdvrt64.dll",
        "sxin.dll", "dbghook.dll", "snxhk.dll", "cuckoomon.dll",
        "avghookx.dll"})
    db.addDll(dll, Profile::kSandboxie);

  // ---- Analysis-tool processes (24 total, Section II-B(b)): 20 debugger /
  // forensic tools + 2 VirtualBox (above) + 2 VMware daemons ----------------
  for (const char* proc :
       {"olydbg.exe",      "ollydbg.exe",   "idap.exe",       "idaq.exe",
        "PETools.exe",     "windbg.exe",    "x64dbg.exe",     "ImmunityDebugger.exe",
        "wireshark.exe",   "dumpcap.exe",   "procmon.exe",    "procexp.exe",
        "procexp64.exe",   "processhacker.exe", "autoruns.exe", "autorunsc.exe",
        "filemon.exe",     "regmon.exe",    "fiddler.exe",    "tcpview.exe"})
    db.addProcess(proc, Profile::kDebugger);
  db.addProcess("VGAuthService.exe", Profile::kVMware);
  db.addProcess("vmacthlp.exe", Profile::kVMware);

  // ---- Debugger GUI windows (6) + sandbox windows (4) --------------------------
  db.addWindow("OLLYDBG", "OllyDbg", Profile::kDebugger);
  db.addWindow("WinDbgFrameClass", "WinDbg", Profile::kDebugger);
  db.addWindow("ID", "Immunity Debugger", Profile::kDebugger);
  db.addWindow("Zeta Debugger", "Zeta Debugger", Profile::kDebugger);
  db.addWindow("Rock Debugger", "Rock Debugger", Profile::kDebugger);
  db.addWindow("ObsidianGUI", "Obsidian", Profile::kDebugger);
  // ...and 4 sandbox-related windows.
  db.addWindow("SandboxieControlWndClass", "Sandboxie Control",
               Profile::kSandboxie);
  db.addWindow("Afx:400000:0", "Cuckoo Analyzer", Profile::kCuckoo);
  db.addWindow("ProcessMonitorClass", "Process Monitor", Profile::kGeneric);
  db.addWindow("RegmonClass", "Registry Monitor", Profile::kGeneric);

  // ---- Analysis-tool files / sandbox folders ------------------------------------
  for (const char* path :
       {"C:\\analysis", "C:\\sandbox", "C:\\iDEFENSE", "C:\\cuckoo",
        "C:\\tools\\ollydbg\\ollydbg.exe", "C:\\tools\\ida\\idaq.exe",
        "C:\\Windows\\System32\\drivers\\sbiedrv.sys",
        "C:\\Program Files\\Fiddler\\fiddler.exe"})
    db.addFile(path, Profile::kGeneric);

  return db;
}

}  // namespace scarecrow::core
