// DeceptionEngine: the logic of scarecrow.dll (paper Section III).
//
// One engine instance backs all processes a controller supervises. Its
// dllImage() is what gets injected: onLoad installs in-line hooks on the
// deceptive API surface (29 core APIs + the wear-and-tear extension) and
// wires every hook to the ResourceDb. Hooks that detect a fingerprinting
// attempt raise an alert: a kAlert trace event (Table I's "Trigger" column
// reads the first one) and an IPC message to the controller (Figure 2).
//
// CreateProcess/ShellExecuteEx hooks propagate the injection to descendants
// (suspend → inject → resume) and perform the self-spawn accounting of
// Section IV-C; Section VI-C active mitigation can terminate fork-bombing
// samples past a threshold. Section VI-B conflict-aware profiles are
// implemented as described: the first VM vendor probed wins, the other
// vendors' artifacts vanish.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "core/config.h"
#include "core/resource_db.h"
#include "hooking/injector.h"
#include "hooking/ipc.h"
#include "obs/metrics.h"
#include "winapi/api.h"

namespace scarecrow::core {

class DeceptionEngine {
 public:
  DeceptionEngine(Config config, ResourceDb db);

  /// The injectable scarecrow.dll. The returned image holds a reference to
  /// this engine; the engine must outlive every process it is injected in.
  hooking::DllImage dllImage();

  /// Installs hooks directly into one process (what dllImage().onLoad does).
  void installInto(winapi::Api& api);

  hooking::IpcChannel& ipc() noexcept { return ipc_; }
  const Config& config() const noexcept { return config_; }
  const ResourceDb& resources() const noexcept { return db_; }

  /// Self-spawn count per image name observed via the CreateProcess hook.
  std::uint32_t selfSpawnCount(const std::string& imageName) const;

  /// True when profile `p` still serves deceptive resources (conflict-aware
  /// mode may have disabled it).
  bool profileActive(Profile p) const;
  /// The VM vendor locked by the first probe (conflict-aware mode).
  std::optional<Profile> lockedVendor() const noexcept { return locked_; }

  /// Number of APIs the engine hooks given its configuration (includes the
  /// wear-and-tear extension and the propagation/decoy hooks).
  std::size_t hookedApiCount() const;

  /// The exact ApiId set installInto() would hook under this configuration.
  /// The static coverage analyzer gates footprint probes on this set, so
  /// its reachability matrix can never disagree with the real install.
  std::set<winapi::ApiId> hookedApiIds() const { return hookedIds(); }

  /// The paper's headline figure: the 29 APIs hooked to serve deceptive
  /// resources — excluding the wear-and-tear extension, the CreateProcess/
  /// ShellExecuteEx injection-propagation hooks, and the prologue-only
  /// decoy patches (DeleteFile, OutputDebugString).
  std::size_t deceptionApiCount() const;

  /// Telemetry sink the installed hooks report to: the registry of the
  /// machine this engine was last installed into (null before the first
  /// installInto). Hooks count per-ApiId invocations, per-profile alerts,
  /// and dispatch latency there.
  obs::MetricsRegistry* metrics() const noexcept { return metrics_; }

  /// Decision-trace sink the installed hooks report to (same lifetime
  /// rules as metrics()): every hook dispatch, deception, and IPC send is
  /// a DecisionEvent with a correlation id tying the chain together.
  obs::FlightRecorder* flightRecorder() const noexcept { return flight_; }

 private:
  /// `value` is the deceptive value served, when it has a natural string
  /// rendering (empty otherwise); it lands in the decision trace.
  void alert(winapi::Api& api, const std::string& label,
             const std::string& resource, Profile profile,
             const std::string& value = {});
  bool matchesActive(std::optional<Profile> profile) const;

  struct CountFake {
    std::uint32_t subkeys = 0;
    std::uint32_t values = 0;
  };
  /// Wear-and-tear registry count fakes (Table III), matched by key suffix.
  std::optional<CountFake> wearTearCounts(const std::string& path) const;

  void installRegistryHooks(winapi::HookSet& hooks);
  void installFileHooks(winapi::HookSet& hooks);
  void installProcessHooks(winapi::HookSet& hooks);
  void installDebugHooks(winapi::HookSet& hooks);
  void installSysInfoHooks(winapi::HookSet& hooks);
  void installNetworkHooks(winapi::HookSet& hooks);
  void installWearTearHooks(winapi::HookSet& hooks);
  std::set<winapi::ApiId> hookedIds() const;

  /// Binds the telemetry caches (per-ApiId counter pointers, dispatch
  /// histogram) to `machine`'s registry. Cached pointers keep hook-entry
  /// accounting to one increment on a stable address.
  void bindMetrics(winsys::Machine& machine);
  void noteDispatch(winapi::Api& api, std::uint64_t startMs);
  /// Wraps a hook body so every invocation is counted per ApiId and its
  /// virtual-time dispatch latency lands in the latency histogram.
  template <typename F>
  auto timed(winapi::ApiId id, F f);

  Config config_;
  ResourceDb db_;
  hooking::IpcChannel ipc_;
  std::map<std::string, std::uint32_t> selfSpawns_;  // lower-case image
  std::optional<Profile> locked_;
  std::uint64_t attachMs_ = 0;
  bool attached_ = false;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Histogram* dispatchLatency_ = nullptr;
  std::array<obs::Counter*, winapi::kApiCount> hookHits_{};
  obs::FlightRecorder* flight_ = nullptr;
  /// Correlation id of the hook dispatch currently on the stack (0 when
  /// outside any dispatch). timed() saves/restores it so nested dispatches
  /// (ShellExecuteEx → CreateProcess) keep distinct chains.
  std::uint64_t currentCorrelation_ = 0;
};

}  // namespace scarecrow::core
