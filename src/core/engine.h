// DeceptionEngine: the logic of scarecrow.dll (paper Section III).
//
// One engine instance backs all processes a controller supervises. Its
// dllImage() is what gets injected: onLoad installs in-line hooks on the
// deceptive API surface (29 core APIs + the wear-and-tear extension) and
// wires every hook to the ResourceDb. Hooks that detect a fingerprinting
// attempt raise an alert: a kAlert trace event (Table I's "Trigger" column
// reads the first one) and an IPC message to the controller (Figure 2).
//
// CreateProcess/ShellExecuteEx hooks propagate the injection to descendants
// (suspend → inject → resume) and perform the self-spawn accounting of
// Section IV-C; Section VI-C active mitigation can terminate fork-bombing
// samples past a threshold. Section VI-B conflict-aware profiles are
// implemented as described: the first VM vendor probed wins, the other
// vendors' artifacts vanish.
//
// Robustness (DESIGN.md §11): the engine degrades, it does not break. A
// bound FaultInjector can fail individual hook installs (a hook that fails
// `Config::hookQuarantineThreshold` times is quarantined — skipped on later
// installs), fail child propagation (reported to the controller as an
// kInjectFailed IPC so pump() can re-inject), and error ResourceDb lookups
// (the hook falls through to the original API — the probe sees the truth,
// never garbage). Each of those moves the protection ladder monotonically
// down: kFullDeception → kPartialDeception → kMonitorOnly, with every
// transition counted and recorded as a kDegradation decision event.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "core/config.h"
#include "core/resource_db.h"
#include "hooking/injector.h"
#include "hooking/ipc.h"
#include "obs/hot_timer.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "winapi/api.h"

namespace scarecrow::faults {
class FaultInjector;
}

namespace scarecrow::core {

class DeceptionEngine {
 public:
  DeceptionEngine(Config config, ResourceDb db);

  /// The injectable scarecrow.dll. The returned image holds a reference to
  /// this engine; the engine must outlive every process it is injected in.
  hooking::DllImage dllImage();

  /// Installs hooks directly into one process (what dllImage().onLoad does).
  void installInto(winapi::Api& api);

  hooking::IpcChannel& ipc() noexcept { return ipc_; }
  const Config& config() const noexcept { return config_; }
  const ResourceDb& resources() const noexcept { return db_; }

  /// Self-spawn count per image name observed via the CreateProcess hook.
  std::uint32_t selfSpawnCount(const std::string& imageName) const;

  /// True when profile `p` still serves deceptive resources (conflict-aware
  /// mode may have disabled it).
  bool profileActive(Profile p) const;
  /// The VM vendor locked by the first probe (conflict-aware mode).
  std::optional<Profile> lockedVendor() const noexcept { return locked_; }

  /// Number of APIs the engine hooks given its configuration (includes the
  /// wear-and-tear extension and the propagation/decoy hooks).
  std::size_t hookedApiCount() const;

  /// The exact ApiId set installInto() would hook under this configuration.
  /// The static coverage analyzer gates footprint probes on this set, so
  /// its reachability matrix can never disagree with the real install.
  std::set<winapi::ApiId> hookedApiIds() const { return hookedIds(); }

  /// The paper's headline figure: the 29 APIs hooked to serve deceptive
  /// resources — excluding the wear-and-tear extension, the CreateProcess/
  /// ShellExecuteEx injection-propagation hooks, and the prologue-only
  /// decoy patches (DeleteFile, OutputDebugString).
  std::size_t deceptionApiCount() const;

  /// Telemetry sink the installed hooks report to: the registry of the
  /// machine this engine was last installed into (null before the first
  /// installInto). Hooks count per-ApiId invocations, per-profile alerts,
  /// and dispatch latency there.
  obs::MetricsRegistry* metrics() const noexcept { return metrics_; }

  /// Decision-trace sink the installed hooks report to (same lifetime
  /// rules as metrics()): every hook dispatch, deception, and IPC send is
  /// a DecisionEvent with a correlation id tying the chain together.
  obs::FlightRecorder* flightRecorder() const noexcept { return flight_; }

  /// Nanosecond hot-timer plane of the machine this engine was last
  /// installed into (null before the first installInto). Hook dispatch
  /// (kHookDispatch), guarded ResourceDb lookups (kDbLookup), and the IPC
  /// channel (kIpcSend/kIpcDrain) record here when the plane is armed; a
  /// disarmed plane costs one array load per site (DESIGN.md §12).
  obs::HotTimerPlane* hotTimers() const noexcept { return hot_; }

  /// Arms the engine's fault sites (kHookInstall, kChildPropagation,
  /// kResourceDbLookup) and the IPC channel's (kIpcSend, kIpcDrain). The
  /// injector is not owned; nullptr disarms. Bind before installInto.
  void setFaultInjector(faults::FaultInjector* faults) noexcept;

  /// Current rung of the graceful-degradation ladder. Transitions are
  /// monotonic (a run never climbs back up) and each is a kDegradation
  /// decision event plus an `engine.degradations` counter tick.
  faults::ProtectionLevel protectionLevel() const noexcept { return level_; }

  /// External degradation seam (DESIGN.md §13): moves the ladder down to
  /// `to` with the usual accounting (kDegradation decision event,
  /// `engine.degradations` counter, warn log). No-op if already at or
  /// below — the ladder stays monotonic. The SLO engine's breach action
  /// uses this to shed deception work when telemetry shows the system
  /// missing its objectives.
  void degradeTo(faults::ProtectionLevel to, const std::string& reason) {
    degrade(to, reason);
  }

  /// Hooks disabled after repeated install failures. Quarantined hooks are
  /// skipped by later installInto calls; analysis::analyzeCoverage accepts
  /// this set so the static verdicts track the degraded reality.
  const std::set<winapi::ApiId>& quarantinedHooks() const noexcept {
    return quarantined_;
  }

  /// Total hook-install failures across all installs (pre-quarantine
  /// failures included).
  std::uint32_t hookInstallFailures() const noexcept {
    return hookInstallFailures_;
  }

  /// Child-propagation injection failures (each one was also reported to
  /// the controller as an IpcKind::kInjectFailed message).
  std::uint32_t childInjectFailures() const noexcept {
    return childInjectFailures_;
  }

 private:
  /// `value` is the deceptive value served, when it has a natural string
  /// rendering (empty otherwise); it lands in the decision trace.
  void alert(winapi::Api& api, const std::string& label,
             const std::string& resource, Profile profile,
             const std::string& value = {});
  bool matchesActive(std::optional<Profile> profile) const;

  struct CountFake {
    std::uint32_t subkeys = 0;
    std::uint32_t values = 0;
  };
  /// Wear-and-tear registry count fakes (Table III), matched by key suffix.
  std::optional<CountFake> wearTearCounts(const std::string& path) const;

  void installRegistryHooks(winapi::HookSet& hooks);
  void installFileHooks(winapi::HookSet& hooks);
  void installProcessHooks(winapi::HookSet& hooks);
  void installDebugHooks(winapi::HookSet& hooks);
  void installSysInfoHooks(winapi::HookSet& hooks);
  void installNetworkHooks(winapi::HookSet& hooks);
  void installWearTearHooks(winapi::HookSet& hooks);
  std::set<winapi::ApiId> hookedIds() const;

  /// The subset of hookedIds() this install may actually wire up: skips
  /// quarantined hooks and rolls the kHookInstall fault site per remaining
  /// hook (failures feed noteHookInstallFailure).
  std::set<winapi::ApiId> planInstallSet(winapi::Api& api);
  /// Nulls every HookSet member whose ApiId is in `denied` — a nulled
  /// member means the dispatcher calls the original API (monitor-style
  /// fall-through), never a half-installed hook. Targets only the denied
  /// ids so the always-installed propagation hooks (CreateProcess,
  /// ShellExecuteEx under ablation configs) survive unless they themselves
  /// failed or were quarantined.
  void pruneDeniedHooks(winapi::HookSet& hooks,
                        const std::set<winapi::ApiId>& denied) const;
  void noteHookInstallFailure(winapi::Api& api, winapi::ApiId id);
  /// Moves the ladder down to `to` (no-op if already at or below). `reason`
  /// lands in the kDegradation decision event and the warn log.
  void degrade(faults::ProtectionLevel to, const std::string& reason);
  /// Runs a ResourceDb lookup through the kResourceDbLookup fault site:
  /// a fired fault yields a default-constructed (empty) result, so the
  /// hook falls through to the original API.
  template <typename F>
  auto guardedDb(F&& f) -> decltype(f());

  /// Binds the telemetry caches (per-ApiId counter pointers, dispatch
  /// histogram) to `machine`'s registry. Cached pointers keep hook-entry
  /// accounting to one increment on a stable address.
  void bindMetrics(winsys::Machine& machine);
  void noteDispatch(winapi::Api& api, std::uint64_t startMs);
  /// Wraps a hook body so every invocation is counted per ApiId and its
  /// virtual-time dispatch latency lands in the latency histogram.
  template <typename F>
  auto timed(winapi::ApiId id, F f);

  Config config_;
  ResourceDb db_;
  hooking::IpcChannel ipc_;
  std::map<std::string, std::uint32_t> selfSpawns_;  // lower-case image
  std::optional<Profile> locked_;
  std::uint64_t attachMs_ = 0;
  bool attached_ = false;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::HotTimerPlane* hot_ = nullptr;
  obs::Histogram* dispatchLatency_ = nullptr;
  std::array<obs::Counter*, winapi::kApiCount> hookHits_{};
  obs::FlightRecorder* flight_ = nullptr;
  obs::TimeSeriesPlane* timeSeries_ = nullptr;
  const support::VirtualClock* clock_ = nullptr;
  /// Correlation id of the hook dispatch currently on the stack (0 when
  /// outside any dispatch). timed() saves/restores it so nested dispatches
  /// (ShellExecuteEx → CreateProcess) keep distinct chains.
  std::uint64_t currentCorrelation_ = 0;

  faults::FaultInjector* faults_ = nullptr;
  faults::ProtectionLevel level_ = faults::ProtectionLevel::kFullDeception;
  std::set<winapi::ApiId> quarantined_;
  std::map<winapi::ApiId, std::uint32_t> installFailures_;
  std::uint32_t hookInstallFailures_ = 0;
  std::uint32_t childInjectFailures_ = 0;
};

}  // namespace scarecrow::core
