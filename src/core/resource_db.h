// Deceptive resource database (paper Section II-B / II-C).
//
// Every entry is tagged with the deception profile it belongs to so the
// engine can (a) attribute fingerprint alerts, and (b) run the Section VI-B
// conflict-aware mode where probing one VM vendor's artifacts disables the
// others. The curated defaults follow the paper's inventory: deceptive
// files for VMware/VirtualBox/sandbox tooling, 24 analysis processes, 15
// analysis DLLs, 6 debugger + 4 sandbox GUI windows, VM registry keys and
// fake configuration values; the crawler (collector.h) adds the resources
// harvested from public sandboxes on top.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "winapi/api_types.h"
#include "winsys/registry.h"

namespace scarecrow::core {

enum class Profile : std::uint8_t {
  kGeneric,     // sandbox-generic artifacts (folders, identity, tick)
  kVMware,
  kVirtualBox,
  kQemu,
  kBochs,
  kWine,
  kSandboxie,
  kDebugger,
  kCuckoo,
  kCrawled,     // resources harvested from public sandboxes (Section II-C)
};

const char* profileName(Profile profile) noexcept;

/// True if the two profiles identify *different* VM vendors — the conflict
/// the paper's Section VI-B detection strategy exploits.
bool vmVendorConflict(Profile a, Profile b) noexcept;

struct FakeProcess {
  std::string imageName;
  Profile profile = Profile::kDebugger;
};

struct FakeWindow {
  std::string className;
  std::string title;
  Profile profile = Profile::kDebugger;
};

class ResourceDb {
 public:
  // ---- population --------------------------------------------------------
  void addFile(std::string_view path, Profile profile);
  void addRegistryKey(std::string_view path, Profile profile);
  void addRegistryValue(std::string_view path, std::string_view valueName,
                        winsys::RegValue value, Profile profile);
  void addProcess(std::string_view imageName, Profile profile);
  void addDll(std::string_view dllName, Profile profile);
  void addWindow(std::string_view className, std::string_view title,
                 Profile profile);

  // ---- matching (lookups return the owning profile) ----------------------
  std::optional<Profile> matchFile(std::string_view path) const;
  /// Matches a key, any ancestor of a stored key, or any descendant of one
  /// (opening SOFTWARE\VMware, Inc. must succeed if ...\VMware Tools does).
  std::optional<Profile> matchRegistryKey(std::string_view path) const;
  struct ValueMatch {
    winsys::RegValue value;
    Profile profile;
  };
  std::optional<ValueMatch> matchRegistryValue(
      std::string_view path, std::string_view valueName) const;
  std::optional<Profile> matchProcess(std::string_view imageName) const;
  std::optional<Profile> matchDll(std::string_view dllName) const;
  std::optional<Profile> matchWindow(std::string_view className,
                                     std::string_view title) const;

  /// Fake files whose parent directory matches `directory` (FindFirstFile
  /// merging), as base names.
  std::vector<std::string> fakeFilesIn(std::string_view directory,
                                       std::string_view pattern) const;

  // ---- iteration (consistency audits, exports) ----------------------------
  template <typename Fn>
  void forEachFile(Fn&& fn) const {
    for (const auto& [path, profile] : files_) fn(path, profile);
  }
  template <typename Fn>
  void forEachRegistryKey(Fn&& fn) const {
    for (const auto& [path, profile] : registryKeys_) fn(path, profile);
  }
  template <typename Fn>
  void forEachRegistryValue(Fn&& fn) const {
    for (const auto& [key, match] : registryValues_) {
      const auto bang = key.find('!');
      fn(key.substr(0, bang), key.substr(bang + 1), match);
    }
  }
  template <typename Fn>
  void forEachDll(Fn&& fn) const {
    for (const auto& [name, profile] : dlls_) fn(name, profile);
  }
  const std::vector<FakeWindow>& fakeWindows() const noexcept {
    return windows_;
  }

  /// The fake analysis processes merged into Toolhelp snapshots. Pids are
  /// assigned deterministically from 0x9000 upward.
  std::vector<winapi::ProcessEntry> fakeProcessEntries() const;
  const std::vector<FakeProcess>& fakeProcesses() const noexcept {
    return processes_;
  }

  // ---- statistics ---------------------------------------------------------
  std::size_t fileCount() const noexcept { return files_.size(); }
  std::size_t registryKeyCount() const noexcept { return registryKeys_.size(); }
  std::size_t registryValueCount() const noexcept {
    return registryValues_.size();
  }
  std::size_t processCount() const noexcept { return processes_.size(); }
  std::size_t dllCount() const noexcept { return dlls_.size(); }
  std::size_t windowCount() const noexcept { return windows_.size(); }
  std::size_t crawledCount() const noexcept { return crawled_; }

 private:
  std::map<std::string, Profile> files_;         // lower-case normalized
  std::map<std::string, Profile> registryKeys_;  // lower-case
  std::map<std::string, ValueMatch> registryValues_;  // "key!value" lower
  std::vector<FakeProcess> processes_;
  std::map<std::string, Profile> dlls_;
  std::vector<FakeWindow> windows_;
  std::size_t crawled_ = 0;

  friend class SandboxResourceCollector;
};

/// The curated deception database the paper ships: Section II-B's manual
/// inventory, before any crawled resources are merged.
ResourceDb buildDefaultResourceDb();

}  // namespace scarecrow::core
