#include "core/engine.h"

#include <type_traits>

#include "core/kernel_ext.h"
#include "faults/fault_injector.h"
#include "hooking/inline_hook.h"
#include "obs/span.h"
#include "support/log.h"
#include "support/strings.h"

namespace scarecrow::core {

using support::baseName;
using support::iendsWith;
using support::iequals;
using support::toLower;
using winapi::Api;
using winapi::ApiId;
using winapi::HookSet;
using winapi::NtStatus;
using winapi::WinError;
using winsys::RegValue;

DeceptionEngine::DeceptionEngine(Config config, ResourceDb db)
    : config_(std::move(config)), db_(std::move(db)) {
  ipc_.setCapacity(config_.ipcQueueCapacity);
}

void DeceptionEngine::setFaultInjector(faults::FaultInjector* faults) noexcept {
  faults_ = faults;
  ipc_.setFaultInjector(faults);
}

void DeceptionEngine::degrade(faults::ProtectionLevel to,
                              const std::string& reason) {
  if (to <= level_) return;  // the ladder only moves down
  level_ = to;
  const char* levelName = faults::protectionLevelName(to);
  if (metrics_ != nullptr)
    metrics_->counter("engine.degradations", levelName).inc();
  if (flight_ != nullptr) {
    obs::DecisionEvent e;
    e.timeMs = clock_ != nullptr ? clock_->nowMs() : 0;
    e.kind = obs::DecisionKind::kDegradation;
    e.api = levelName;
    e.argument = obs::digestArgument(reason);
    flight_->record(std::move(e));
  }
  support::logWarn("engine", "protection degraded",
                   {{"to", levelName}, {"reason", reason}});
}

template <typename F>
auto DeceptionEngine::guardedDb(F&& f) -> decltype(f()) {
  obs::HotScope hotScope(hot_, obs::HotSite::kDbLookup);
  if (faults_ != nullptr &&
      faults_->shouldFire(faults::FaultSite::kResourceDbLookup)) {
    if (metrics_ != nullptr)
      metrics_->counter("engine.db_lookup_errors").inc();
    return decltype(f()){};
  }
  return f();
}

hooking::DllImage DeceptionEngine::dllImage() {
  hooking::DllImage dll;
  dll.name = "scarecrow.dll";
  dll.onLoad = [this](Api& api) { installInto(api); };
  return dll;
}

void DeceptionEngine::alert(Api& api, const std::string& label,
                            const std::string& resource, Profile profile,
                            const std::string& value) {
  if (metrics_ != nullptr) {
    metrics_->counter("engine.alerts").inc();
    metrics_->counter("engine.alerts_by_profile", profileName(profile))
        .inc();
  }
  api.machine().emit(api.pid(), trace::EventKind::kAlert, "fingerprint",
                     label);
  // The decision itself: which argument matched which ResourceDb profile
  // and what was served back. Shares the enclosing dispatch's correlation
  // id so the chain reads dispatch → deception → IPC → controller.
  std::uint64_t correlation = currentCorrelation_;
  if (flight_ != nullptr) {
    if (correlation == 0) correlation = flight_->newCorrelation();
    obs::DecisionEvent e;
    e.timeMs = api.machine().clock().nowMs();
    e.pid = api.pid();
    e.correlationId = correlation;
    e.kind = obs::DecisionKind::kDeception;
    e.api = label;
    e.argument = obs::digestArgument(resource);
    e.matched = profileName(profile);
    e.value = value;
    flight_->record(std::move(e));
  }
  hooking::IpcMessage msg;
  msg.kind = hooking::IpcKind::kFingerprintAttempt;
  msg.pid = api.pid();
  msg.timeMs = api.machine().clock().nowMs();
  msg.correlationId = correlation;
  msg.api = label;
  msg.resource = resource;
  ipc_.send(std::move(msg));

  // Section VI-B: once a probe touches one VM vendor's artifacts, lock that
  // vendor and retire the conflicting ones.
  if (config_.conflictAwareProfiles && !locked_.has_value() &&
      (profile == Profile::kVMware || profile == Profile::kVirtualBox ||
       profile == Profile::kQemu || profile == Profile::kBochs))
    locked_ = profile;
}

bool DeceptionEngine::profileActive(Profile p) const {
  if (!locked_.has_value()) return true;
  return !vmVendorConflict(*locked_, p);
}

bool DeceptionEngine::matchesActive(std::optional<Profile> profile) const {
  return profile.has_value() && profileActive(*profile);
}

std::uint32_t DeceptionEngine::selfSpawnCount(
    const std::string& imageName) const {
  auto it = selfSpawns_.find(toLower(imageName));
  return it == selfSpawns_.end() ? 0 : it->second;
}

std::optional<DeceptionEngine::CountFake> DeceptionEngine::wearTearCounts(
    const std::string& path) const {
  const WearTearDeception& wt = config_.wearTear;
  struct Row {
    const char* suffix;
    CountFake fake;
  };
  const Row rows[] = {
      {"\\Control\\DeviceClasses", {wt.deviceClassSubkeys, 0}},
      {"\\CurrentVersion\\Run", {0, wt.autoRunEntries}},
      {"\\CurrentVersion\\Uninstall", {wt.uninstallEntries, 0}},
      {"\\CurrentVersion\\SharedDlls", {0, wt.sharedDllEntries}},
      {"\\CurrentVersion\\App Paths", {wt.appPathEntries, 0}},
      {"\\Active Setup\\Installed Components", {wt.activeSetupEntries, 0}},
      {"{CEBFF5CD-ACE2-4F4F-9178-9926F41749EA}\\Count",
       {0, wt.userAssistEntries}},
      {"\\Shell\\MuiCache", {0, wt.muiCacheEntries}},
      {"\\FirewallPolicy\\FirewallRules", {0, wt.firewallRuleEntries}},
      {"\\Services\\UsbStor", {wt.usbStorEntries, 0}},
  };
  for (const Row& row : rows)
    if (iendsWith(path, row.suffix)) return row.fake;
  return std::nullopt;
}

// ===== installation =======================================================

void DeceptionEngine::bindMetrics(winsys::Machine& machine) {
  obs::MetricsRegistry& m = machine.metrics();
  if (metrics_ == &m) return;
  metrics_ = &m;
  flight_ = &machine.flightRecorder();
  clock_ = &machine.clock();
  hot_ = &machine.hotTimers();
  timeSeries_ = &machine.timeSeries();
  ipc_.bindFlightRecorder(flight_);
  ipc_.bindMetrics(&m);
  ipc_.bindHotTimers(hot_);
  dispatchLatency_ = &m.histogram("engine.hook_dispatch_ms");
  hookHits_.fill(nullptr);
  for (ApiId id : hookedIds())
    hookHits_[static_cast<std::size_t>(id)] =
        &m.counter("engine.hook_invocations", winapi::apiName(id));
}

void DeceptionEngine::noteDispatch(Api& api, std::uint64_t startMs) {
  if (dispatchLatency_ == nullptr) return;
  const std::uint64_t now = api.machine().clock().nowMs();
  dispatchLatency_->observe(now >= startMs ? now - startMs : 0);
  // Streaming-telemetry tick: one flag test + compare per dispatch, a
  // registry snapshot only when a window boundary actually passed.
  if (timeSeries_ != nullptr && timeSeries_->due(now))
    timeSeries_->observe(metrics_->snapshot(), now);
}

template <typename F>
auto DeceptionEngine::timed(ApiId id, F f) {
  return [this, id, f = std::move(f)](Api& a, auto&&... args) {
    // Wall-clock dispatch cost, end to end: hook body, DB lookups, IPC,
    // and the telemetry writes below all land inside this scope.
    obs::HotScope hotScope(hot_, obs::HotSite::kHookDispatch);
    if (obs::Counter* hits = hookHits_[static_cast<std::size_t>(id)])
      hits->inc();
    const std::uint64_t t0 = a.machine().clock().nowMs();
    // Every dispatch opens a causal chain; alert()/IPC sends inside the
    // hook body join it via currentCorrelation_. Saved and restored (not
    // zeroed) because hooks can nest (ShellExecuteEx → CreateProcess).
    const std::uint64_t enclosing = currentCorrelation_;
    if (flight_ != nullptr) {
      currentCorrelation_ = flight_->newCorrelation();
      obs::DecisionEvent e;
      e.timeMs = t0;
      e.pid = a.pid();
      e.correlationId = currentCorrelation_;
      e.kind = obs::DecisionKind::kHookDispatch;
      e.api = winapi::apiName(id);
      flight_->record(std::move(e));
    }
    if constexpr (std::is_void_v<decltype(f(
                      a, std::forward<decltype(args)>(args)...))>) {
      f(a, std::forward<decltype(args)>(args)...);
      noteDispatch(a, t0);
      currentCorrelation_ = enclosing;
    } else {
      auto result = f(a, std::forward<decltype(args)>(args)...);
      noteDispatch(a, t0);
      currentCorrelation_ = enclosing;
      return result;
    }
  };
}

void DeceptionEngine::installInto(Api& api) {
  bindMetrics(api.machine());
  obs::ScopedSpan span(*metrics_, api.machine().clock(), "engine.install");
  metrics_->counter("engine.installs").inc();
  if (!attached_) {
    attached_ = true;
    attachMs_ = api.machine().clock().nowMs();
  }
  // Decide what this install may wire up before touching the HookSet:
  // quarantined hooks are skipped outright, and the kHookInstall fault
  // site can fail any remaining hook (feeding the quarantine counters).
  const std::set<ApiId> allowed = planInstallSet(api);
  std::set<ApiId> denied;
  for (ApiId id : hookedIds())
    if (allowed.find(id) == allowed.end()) denied.insert(id);
  winapi::ProcessApiState& state = api.state();
  installRegistryHooks(state.hooks);
  installFileHooks(state.hooks);
  installProcessHooks(state.hooks);
  installDebugHooks(state.hooks);
  installSysInfoHooks(state.hooks);
  installNetworkHooks(state.hooks);
  installWearTearHooks(state.hooks);
  if (!denied.empty()) pruneDeniedHooks(state.hooks, denied);
  for (ApiId id : allowed) hooking::installInlineHook(state, id);
  state.guardPages = true;  // surfaces prologue reads as Hook-detection alerts
  // VEH route: a prologue read is a fingerprint attempt like any other, so
  // it flows through alert() — decision trace, IPC, metrics — and the
  // controller (and attribution) see the same "Hook detection" trigger the
  // kernel trace reports.
  state.onHookPrologueRead = [this](Api& a, winapi::ApiId id) {
    alert(a, "Hook detection",
          std::string("prologue:") + winapi::apiName(id),
          Profile::kGeneric);
  };

  if (config_.kernel.enabled) {
    const KernelExtension extension(config_.kernel);
    extension.installOnMachine(api.machine());
    extension.installIntoProcess(api.machine(), api.pid(),
                                 config_.hardware);
  }
}

std::set<ApiId> DeceptionEngine::planInstallSet(Api& api) {
  std::set<ApiId> allowed;
  for (ApiId id : hookedIds()) {
    if (quarantined_.find(id) != quarantined_.end()) continue;
    if (faults_ != nullptr &&
        faults_->shouldFire(faults::FaultSite::kHookInstall,
                            winapi::apiName(id))) {
      noteHookInstallFailure(api, id);
      continue;
    }
    allowed.insert(id);
  }
  return allowed;
}

void DeceptionEngine::noteHookInstallFailure(Api& api, ApiId id) {
  const char* name = winapi::apiName(id);
  const std::uint32_t failures = ++installFailures_[id];
  ++hookInstallFailures_;
  metrics_->counter("engine.hook_install_failures", name).inc();
  support::logWarn("engine", "hook install failed",
                   {{"api", name}, {"pid", api.pid()}, {"failures", failures}});
  degrade(faults::ProtectionLevel::kPartialDeception,
          std::string("hook install failed: ") + name);
  if (failures >= config_.hookQuarantineThreshold &&
      quarantined_.find(id) == quarantined_.end()) {
    quarantined_.insert(id);
    metrics_->counter("engine.hooks_quarantined", name).inc();
    if (flight_ != nullptr) {
      obs::DecisionEvent e;
      e.timeMs = api.machine().clock().nowMs();
      e.pid = api.pid();
      e.kind = obs::DecisionKind::kQuarantine;
      e.api = name;
      e.value = std::to_string(failures);
      flight_->record(std::move(e));
    }
    support::logWarn("engine", "hook quarantined",
                     {{"api", name}, {"failures", failures}});
  }
}

void DeceptionEngine::pruneDeniedHooks(HookSet& hooks,
                                       const std::set<ApiId>& denied) const {
  const auto drop = [&denied](ApiId id) {
    return denied.find(id) != denied.end();
  };
  // One line per HookSet member (kDeleteFile is prologue-decoy-only and
  // has no member). A dropped member dispatches to the original API.
  if (drop(ApiId::kRegOpenKeyEx)) hooks.regOpenKeyEx = nullptr;
  if (drop(ApiId::kRegQueryValueEx)) hooks.regQueryValueEx = nullptr;
  if (drop(ApiId::kRegQueryInfoKey)) hooks.regQueryInfoKey = nullptr;
  if (drop(ApiId::kRegEnumKeyEx)) hooks.regEnumKeyEx = nullptr;
  if (drop(ApiId::kRegEnumValue)) hooks.regEnumValue = nullptr;
  if (drop(ApiId::kNtOpenKeyEx)) hooks.ntOpenKeyEx = nullptr;
  if (drop(ApiId::kNtQueryKey)) hooks.ntQueryKey = nullptr;
  if (drop(ApiId::kNtQueryValueKey)) hooks.ntQueryValueKey = nullptr;
  if (drop(ApiId::kCreateFile)) hooks.createFile = nullptr;
  if (drop(ApiId::kNtCreateFile)) hooks.ntCreateFile = nullptr;
  if (drop(ApiId::kNtQueryAttributesFile))
    hooks.ntQueryAttributesFile = nullptr;
  if (drop(ApiId::kGetFileAttributes)) hooks.getFileAttributes = nullptr;
  if (drop(ApiId::kFindFirstFile)) hooks.findFirstFile = nullptr;
  if (drop(ApiId::kGetDiskFreeSpaceEx)) hooks.getDiskFreeSpaceEx = nullptr;
  if (drop(ApiId::kCreateProcess)) hooks.createProcess = nullptr;
  if (drop(ApiId::kTerminateProcess)) hooks.terminateProcess = nullptr;
  if (drop(ApiId::kCreateToolhelp32Snapshot))
    hooks.createToolhelp32Snapshot = nullptr;
  if (drop(ApiId::kGetModuleHandle)) hooks.getModuleHandle = nullptr;
  if (drop(ApiId::kGetProcAddress)) hooks.getProcAddress = nullptr;
  if (drop(ApiId::kNtQueryInformationProcess))
    hooks.ntQueryInformationProcess = nullptr;
  if (drop(ApiId::kShellExecuteEx)) hooks.shellExecuteEx = nullptr;
  if (drop(ApiId::kGetModuleFileName)) hooks.getModuleFileName = nullptr;
  if (drop(ApiId::kIsDebuggerPresent)) hooks.isDebuggerPresent = nullptr;
  if (drop(ApiId::kCheckRemoteDebuggerPresent))
    hooks.checkRemoteDebuggerPresent = nullptr;
  if (drop(ApiId::kOutputDebugString)) hooks.outputDebugString = nullptr;
  if (drop(ApiId::kGetTickCount)) hooks.getTickCount = nullptr;
  if (drop(ApiId::kSleep)) hooks.sleep = nullptr;
  if (drop(ApiId::kRaiseException)) hooks.raiseException = nullptr;
  if (drop(ApiId::kGetSystemInfo)) hooks.getSystemInfo = nullptr;
  if (drop(ApiId::kGlobalMemoryStatusEx))
    hooks.globalMemoryStatusEx = nullptr;
  if (drop(ApiId::kGetUserName)) hooks.getUserName = nullptr;
  if (drop(ApiId::kGetComputerName)) hooks.getComputerName = nullptr;
  if (drop(ApiId::kNtQuerySystemInformation))
    hooks.ntQuerySystemInformation = nullptr;
  if (drop(ApiId::kFindWindow)) hooks.findWindow = nullptr;
  if (drop(ApiId::kDnsQuery)) hooks.dnsQuery = nullptr;
  if (drop(ApiId::kInternetOpenUrl)) hooks.internetOpenUrl = nullptr;
  if (drop(ApiId::kDnsGetCacheDataTable))
    hooks.dnsGetCacheDataTable = nullptr;
  if (drop(ApiId::kEvtNext)) hooks.evtNext = nullptr;
}

std::set<ApiId> DeceptionEngine::hookedIds() const {
  std::set<ApiId> ids;
  if (config_.softwareResources) {
    for (ApiId id :
         {ApiId::kRegOpenKeyEx, ApiId::kRegQueryValueEx, ApiId::kNtOpenKeyEx,
          ApiId::kNtQueryValueKey, ApiId::kNtQueryAttributesFile,
          ApiId::kGetFileAttributes, ApiId::kCreateFile, ApiId::kNtCreateFile,
          ApiId::kFindFirstFile, ApiId::kCreateToolhelp32Snapshot,
          ApiId::kTerminateProcess, ApiId::kGetModuleHandle,
          ApiId::kGetProcAddress, ApiId::kFindWindow, ApiId::kGetUserName,
          ApiId::kGetComputerName, ApiId::kGetModuleFileName,
          ApiId::kCreateProcess, ApiId::kShellExecuteEx, ApiId::kDeleteFile})
      ids.insert(id);
  }
  if (config_.hardwareResources) {
    for (ApiId id : {ApiId::kGetSystemInfo, ApiId::kGlobalMemoryStatusEx,
                     ApiId::kGetDiskFreeSpaceEx,
                     ApiId::kNtQuerySystemInformation})
      ids.insert(id);
  }
  if (config_.debuggerDeception) {
    for (ApiId id :
         {ApiId::kIsDebuggerPresent, ApiId::kCheckRemoteDebuggerPresent,
          ApiId::kOutputDebugString, ApiId::kNtQueryInformationProcess,
          ApiId::kGetTickCount, ApiId::kSleep, ApiId::kRaiseException})
      ids.insert(id);
  }
  if (config_.networkResources)
    for (ApiId id : {ApiId::kDnsQuery, ApiId::kInternetOpenUrl})
      ids.insert(id);
  if (config_.wearTearExtension) {
    for (ApiId id : {ApiId::kEvtNext, ApiId::kDnsGetCacheDataTable,
                     ApiId::kRegQueryInfoKey, ApiId::kNtQueryKey,
                     ApiId::kRegEnumKeyEx, ApiId::kRegEnumValue})
      ids.insert(id);
  }
  return ids;
}

std::size_t DeceptionEngine::hookedApiCount() const {
  return hookedIds().size();
}

std::size_t DeceptionEngine::deceptionApiCount() const {
  Config allCategories;
  allCategories.wearTearExtension = false;
  DeceptionEngine counter(allCategories, ResourceDb{});
  std::set<ApiId> ids = counter.hookedIds();
  for (ApiId id : {ApiId::kCreateProcess, ApiId::kShellExecuteEx,
                   ApiId::kDeleteFile, ApiId::kOutputDebugString})
    ids.erase(id);
  return ids.size();
}

// ===== registry ===========================================================

void DeceptionEngine::installRegistryHooks(HookSet& hooks) {
  if (!config_.softwareResources) return;

  hooks.regOpenKeyEx = timed(ApiId::kRegOpenKeyEx, [this](Api& a, const std::string& path) {
    auto p = guardedDb([&] { return db_.matchRegistryKey(path); });
    if (matchesActive(p)) {
      alert(a, "RegOpenKeyEx()", path, *p);
      return WinError::kSuccess;
    }
    return a.orig_RegOpenKeyEx(path);
  });

  hooks.ntOpenKeyEx = timed(ApiId::kNtOpenKeyEx, [this](Api& a, const std::string& path) {
    auto p = guardedDb([&] { return db_.matchRegistryKey(path); });
    if (matchesActive(p)) {
      alert(a, "NtOpenKeyEx()", path, *p);
      return NtStatus::kSuccess;
    }
    return a.orig_NtOpenKeyEx(path);
  });

  hooks.regQueryValueEx = timed(ApiId::kRegQueryValueEx, [this](Api& a, const std::string& path,
                                 const std::string& valueName,
                                 RegValue& out) {
    auto m = guardedDb([&] { return db_.matchRegistryValue(path, valueName); });
    if (m.has_value() && profileActive(m->profile)) {
      alert(a, "RegQueryValueEx()", path + "!" + valueName, m->profile,
            m->value.str.empty() ? std::to_string(m->value.num)
                                 : m->value.str);
      out = m->value;
      return WinError::kSuccess;
    }
    return a.orig_RegQueryValueEx(path, valueName, out);
  });

  hooks.ntQueryValueKey = timed(ApiId::kNtQueryValueKey, [this](Api& a, const std::string& path,
                                 const std::string& valueName,
                                 RegValue& out) {
    auto m = guardedDb([&] { return db_.matchRegistryValue(path, valueName); });
    if (m.has_value() && profileActive(m->profile)) {
      alert(a, "NtQueryValueKey()", path + "!" + valueName, m->profile,
            m->value.str.empty() ? std::to_string(m->value.num)
                                 : m->value.str);
      out = m->value;
      return NtStatus::kSuccess;
    }
    if (config_.wearTearExtension &&
        iendsWith(path, "\\Session Manager\\AppCompatCache") &&
        iequals(valueName, "CacheEntryCount")) {
      alert(a, "NtQueryValueKey()", path, Profile::kGeneric,
            std::to_string(config_.wearTear.shimCacheEntries));
      out = RegValue::dword(config_.wearTear.shimCacheEntries);
      return NtStatus::kSuccess;
    }
    return a.orig_NtQueryValueKey(path, valueName, out);
  });
}

// ===== files ==============================================================

void DeceptionEngine::installFileHooks(HookSet& hooks) {
  if (!config_.softwareResources) return;

  hooks.ntQueryAttributesFile = timed(ApiId::kNtQueryAttributesFile, [this](Api& a, const std::string& path) {
    auto p = guardedDb([&] { return db_.matchFile(path); });
    if (matchesActive(p)) {
      alert(a, "NtQueryAttributesFile()", path, *p);
      return NtStatus::kSuccess;
    }
    return a.orig_NtQueryAttributesFile(path);
  });

  hooks.getFileAttributes = timed(ApiId::kGetFileAttributes, [this](Api& a, const std::string& path) {
    auto p = guardedDb([&] { return db_.matchFile(path); });
    if (matchesActive(p)) {
      alert(a, "GetFileAttributes()", path, *p);
      return 0x80u;  // FILE_ATTRIBUTE_NORMAL
    }
    return a.orig_GetFileAttributesA(path);
  });

  hooks.createFile = timed(ApiId::kCreateFile, [this](Api& a, const std::string& path, bool forWrite) {
    if (!forWrite) {
      auto p = guardedDb([&] { return db_.matchFile(path); });
      if (matchesActive(p)) {
        alert(a, "CreateFile()", path, *p);
        return WinError::kSuccess;
      }
    }
    return a.orig_CreateFileA(path, forWrite);
  });

  hooks.ntCreateFile = timed(ApiId::kNtCreateFile, [this](Api& a, const std::string& path) {
    auto p = guardedDb([&] { return db_.matchFile(path); });
    if (matchesActive(p)) {
      alert(a, "NtCreateFile()", path, *p);
      return NtStatus::kSuccess;
    }
    // Device-namespace objects are kernel handles; user-level hooking does
    // not fabricate them (the documented Cuckoo/VBox-device blind spot).
    return a.machine().vfs().exists(path) ? NtStatus::kSuccess
                                          : NtStatus::kObjectNameNotFound;
  });

  hooks.findFirstFile = timed(ApiId::kFindFirstFile, [this](Api& a, const std::string& directory,
                               const std::string& pattern) {
    std::vector<std::string> names = a.orig_FindFirstFileA(directory, pattern);
    for (std::string& fake :
         guardedDb([&] { return db_.fakeFilesIn(directory, pattern); })) {
      bool present = false;
      for (const std::string& existing : names)
        if (iequals(existing, fake)) present = true;
      if (!present) {
        names.push_back(std::move(fake));
        alert(a, "FindFirstFile()", directory + "\\" + pattern,
              Profile::kGeneric);
      }
    }
    return names;
  });
}

// ===== processes ==========================================================

void DeceptionEngine::installProcessHooks(HookSet& hooks) {
  if (config_.softwareResources) {
    hooks.createToolhelp32Snapshot = timed(ApiId::kCreateToolhelp32Snapshot, [this](Api& a) {
      std::vector<winapi::ProcessEntry> entries =
          a.orig_CreateToolhelp32Snapshot();
      bool appended = false;
      for (winapi::ProcessEntry& fake :
           guardedDb([&] { return db_.fakeProcessEntries(); })) {
        const auto profile = db_.matchProcess(fake.imageName);
        if (!matchesActive(profile)) continue;
        entries.push_back(std::move(fake));
        appended = true;
      }
      if (appended)
        alert(a, "CreateToolhelp32Snapshot()", "process list",
              Profile::kGeneric);
      return entries;
    });

    hooks.terminateProcess = timed(ApiId::kTerminateProcess, [this](Api& a, std::uint32_t pid,
                                    std::uint32_t exitCode) {
      // Protect analysis processes: fake entries occupy pids >= 0x9000, and
      // any live process with a protected image name is spared. The call
      // reports success so the malware believes the kill worked.
      if (pid >= 0x9000) {
        alert(a, "TerminateProcess()", "analysis process", Profile::kGeneric);
        return true;
      }
      const winsys::Process* target = a.machine().processes().find(pid);
      if (target != nullptr &&
          guardedDb([&] { return db_.matchProcess(target->imageName); })
              .has_value()) {
        alert(a, "TerminateProcess()", target->imageName, Profile::kGeneric);
        return true;
      }
      return a.orig_TerminateProcess(pid, exitCode);
    });

    hooks.getModuleHandle = timed(ApiId::kGetModuleHandle, [this](Api& a, const std::string& moduleName) {
      auto p = guardedDb([&] { return db_.matchDll(moduleName); });
      if (matchesActive(p)) {
        alert(a, "GetModuleHandleA()", moduleName, *p);
        return true;
      }
      return a.orig_GetModuleHandleA(moduleName);
    });

    hooks.getProcAddress = timed(ApiId::kGetProcAddress, [this](Api& a, const std::string& moduleName,
                                  const std::string& procName) {
      if (support::istartsWith(procName, "wine_") &&
          profileActive(Profile::kWine)) {
        alert(a, "GetProcAddress()", moduleName + "!" + procName,
              Profile::kWine);
        return true;
      }
      return a.orig_GetProcAddress(moduleName, procName);
    });

    hooks.getUserName = timed(ApiId::kGetUserName, [this](Api& a) {
      alert(a, "GetUserName()", config_.identity.userName, Profile::kGeneric);
      return config_.identity.userName;
    });

    hooks.getComputerName = timed(ApiId::kGetComputerName, [this](Api& a) {
      alert(a, "GetComputerName()", config_.identity.computerName,
            Profile::kGeneric);
      return config_.identity.computerName;
    });

    hooks.getModuleFileName = timed(ApiId::kGetModuleFileName, [this](Api& a) {
      alert(a, "The name of malware", config_.identity.ownImagePath,
            Profile::kGeneric);
      return config_.identity.ownImagePath;
    });

    hooks.findWindow = timed(ApiId::kFindWindow, [this](Api& a, const std::string& className,
                              const std::string& title) {
      auto p = guardedDb([&] { return db_.matchWindow(className, title); });
      if (matchesActive(p)) {
        alert(a, "FindWindow()", className.empty() ? title : className, *p);
        return true;
      }
      return a.orig_FindWindowA(className, title);
    });
  }

  // Child propagation + self-spawn accounting: always installed — the
  // controller must keep supervising descendants regardless of which
  // deception categories are active.
  hooks.createProcess = timed(ApiId::kCreateProcess, [this](Api& a, const std::string& imagePath,
                               const std::string& commandLine) {
    const std::uint32_t child = a.orig_CreateProcessA(imagePath, commandLine);
    if (child == 0) return child;
    if (iequals(baseName(imagePath), a.self().imageName)) {
      const std::uint32_t n = ++selfSpawns_[toLower(a.self().imageName)];
      if (flight_ != nullptr) {
        obs::DecisionEvent e;
        e.timeMs = a.machine().clock().nowMs();
        e.pid = a.pid();
        e.correlationId = currentCorrelation_;
        e.kind = obs::DecisionKind::kSelfSpawn;
        e.api = "CreateProcessW";
        e.argument = obs::digestArgument(a.self().imageName);
        e.value = std::to_string(n);
        flight_->record(std::move(e));
      }
      hooking::IpcMessage msg;
      msg.kind = hooking::IpcKind::kSelfSpawnAlert;
      msg.pid = a.pid();
      msg.timeMs = a.machine().clock().nowMs();
      msg.correlationId = currentCorrelation_;
      msg.api = "CreateProcessW";
      msg.resource = a.self().imageName;
      ipc_.send(std::move(msg));
      a.machine().emit(a.pid(), trace::EventKind::kAlert, "self-spawn",
                       a.self().imageName);
      if (config_.mitigateSelfSpawn && n > config_.selfSpawnKillThreshold) {
        // Section VI-C: block the fork bomb by refusing the spawn and
        // killing the spawner.
        a.machine().emit(a.pid(), trace::EventKind::kAlert, "mitigation",
                         "self-spawn loop terminated");
        a.orig_TerminateProcess(child, 1);
        a.orig_TerminateProcess(a.pid(), 1);
        return 0u;
      }
    }
    // Child propagation, with its own fault site: a kChildPropagation fire
    // models the suspend→inject→resume race being lost. The child runs
    // unsupervised until the controller sees the kInjectFailed message and
    // re-injects from its side (Controller::pump).
    bool propagated = false;
    if (faults_ != nullptr &&
        faults_->shouldFire(faults::FaultSite::kChildPropagation,
                            imagePath)) {
      ++childInjectFailures_;
      if (metrics_ != nullptr)
        metrics_->counter("inject.failures", "propagation").inc();
      if (flight_ != nullptr) {
        obs::DecisionEvent e;
        e.timeMs = a.machine().clock().nowMs();
        e.pid = child;
        e.correlationId = currentCorrelation_;
        e.kind = obs::DecisionKind::kInjectFail;
        e.api = "CreateProcess";
        e.argument = obs::digestArgument(imagePath);
        e.value = "propagation-fault";
        flight_->record(std::move(e));
      }
      support::logError("engine", "child propagation failed",
                        {{"child", child}, {"image", imagePath}});
      degrade(faults::ProtectionLevel::kPartialDeception,
              "child propagation failed");
    } else {
      propagated =
          hooking::injectDll(a.machine(), a.userspace(), child, dllImage());
      if (!propagated) {
        ++childInjectFailures_;
        degrade(faults::ProtectionLevel::kPartialDeception,
                "child injection failed");
      }
    }
    hooking::IpcMessage msg;
    msg.kind = propagated ? hooking::IpcKind::kProcessInjected
                          : hooking::IpcKind::kInjectFailed;
    msg.pid = child;
    msg.timeMs = a.machine().clock().nowMs();
    msg.correlationId = currentCorrelation_;
    msg.api = "CreateProcess";
    msg.resource = imagePath;
    ipc_.send(std::move(msg));
    return child;
  });

  hooks.shellExecuteEx = timed(ApiId::kShellExecuteEx, [this, createProcess = hooks.createProcess](
                             Api& a, const std::string& file) {
    return createProcess(a, file, file) != 0;
  });
}

// ===== debugger ===========================================================

void DeceptionEngine::installDebugHooks(HookSet& hooks) {
  if (!config_.debuggerDeception) return;

  hooks.isDebuggerPresent = timed(ApiId::kIsDebuggerPresent, [this](Api& a) {
    alert(a, "IsDebuggerPresent()", "debugger", Profile::kDebugger);
    return true;
  });

  hooks.checkRemoteDebuggerPresent = timed(ApiId::kCheckRemoteDebuggerPresent, [this](Api& a, std::uint32_t) {
    alert(a, "CheckRemoteDebuggerPresent()", "debugger", Profile::kDebugger);
    return true;
  });

  hooks.outputDebugString = timed(ApiId::kOutputDebugString, [this](Api& a, const std::string& text) {
    // With a (pretend) debugger attached the call "succeeds"; nothing to
    // return, but the probe itself is a fingerprint attempt.
    alert(a, "OutputDebugString()", text, Profile::kDebugger);
  });

  hooks.ntQueryInformationProcess = timed(ApiId::kNtQueryInformationProcess, [this](Api& a, std::uint32_t pid,
                                           winapi::ProcessInfoClass cls) {
    using winapi::ProcessInfoClass;
    switch (cls) {
      case ProcessInfoClass::kDebugPort:
      case ProcessInfoClass::kDebugObjectHandle:
        alert(a, "NtQueryInformationProcess()", "DebugPort",
              Profile::kDebugger);
        return std::uint64_t{1};
      case ProcessInfoClass::kDebugFlags:
        alert(a, "NtQueryInformationProcess()", "DebugFlags",
              Profile::kDebugger);
        return std::uint64_t{0};  // NoDebugInherit cleared == debugged
      case ProcessInfoClass::kBasicInformation:
        return a.orig_NtQueryInformationProcess(pid, cls);
    }
    return a.orig_NtQueryInformationProcess(pid, cls);
  });

  hooks.getTickCount = timed(ApiId::kGetTickCount, [this](Api& a) {
    alert(a, "GetTickCount()", "uptime", Profile::kGeneric);
    // A sandbox that booted moments ago, with time advancing at the same
    // compressed rate sleep patching produces.
    return config_.identity.fakeUptimeMs +
           (a.machine().clock().nowMs() - attachMs_);
  });

  hooks.sleep = timed(ApiId::kSleep, [this](Api& a, std::uint32_t ms) {
    // Sleep patching: burn only sleepPercent of the requested time.
    a.orig_Sleep(ms * config_.identity.sleepPercent / 100);
  });

  hooks.raiseException = timed(ApiId::kRaiseException, [this](Api& a, std::uint32_t code) {
    const std::uint64_t base = a.orig_RaiseException(code);
    a.machine().clock().addTscCycles(config_.identity.exceptionLatencyCycles);
    return base + config_.identity.exceptionLatencyCycles;
  });
}

// ===== system information =================================================

void DeceptionEngine::installSysInfoHooks(HookSet& hooks) {
  if (!config_.hardwareResources) return;

  hooks.getSystemInfo = timed(ApiId::kGetSystemInfo, [this](Api& a) {
    alert(a, "GetSystemInfo()", "NumberOfProcessors", Profile::kGeneric,
          std::to_string(config_.hardware.cpuCores));
    winapi::SystemInfoView view;
    view.numberOfProcessors = config_.hardware.cpuCores;
    return view;
  });

  hooks.globalMemoryStatusEx = timed(ApiId::kGlobalMemoryStatusEx, [this](Api& a) {
    alert(a, "GlobalMemoryStatusEx()", "TotalPhys", Profile::kGeneric,
          std::to_string(config_.hardware.ramBytes));
    winapi::MemoryStatusView view;
    view.totalPhysBytes = config_.hardware.ramBytes;
    view.availPhysBytes = config_.hardware.ramBytes / 2;
    return view;
  });

  hooks.getDiskFreeSpaceEx = timed(ApiId::kGetDiskFreeSpaceEx, [this](Api& a, char, std::uint64_t& freeBytes,
                                    std::uint64_t& totalBytes) {
    alert(a, "GetDiskFreeSpaceEx()", "disk size", Profile::kGeneric,
          std::to_string(config_.hardware.diskTotalBytes));
    freeBytes = config_.hardware.diskFreeBytes;
    totalBytes = config_.hardware.diskTotalBytes;
    return true;
  });

  hooks.ntQuerySystemInformation = timed(ApiId::kNtQuerySystemInformation, [this](Api& a,
                                          winapi::SystemInfoClass cls) {
    using winapi::SystemInfoClass;
    switch (cls) {
      case SystemInfoClass::kBasicInformation:
        alert(a, "NtQuerySystemInformation()", "NumberOfProcessors",
              Profile::kGeneric);
        return std::uint64_t{config_.hardware.cpuCores};
      case SystemInfoClass::kKernelDebuggerInformation:
        alert(a, "NtQuerySystemInformation()", "KernelDebugger",
              Profile::kDebugger);
        return std::uint64_t{1};
      case SystemInfoClass::kRegistryQuotaInformation:
        if (config_.wearTearExtension) {
          alert(a, "NtQuerySystemInformation()", "RegistryQuota",
                Profile::kGeneric);
          return std::uint64_t{config_.wearTear.registryQuotaBytes};
        }
        return a.orig_NtQuerySystemInformation(cls);
      case SystemInfoClass::kProcessInformation:
        return a.orig_NtQuerySystemInformation(cls) + db_.processCount();
    }
    return a.orig_NtQuerySystemInformation(cls);
  });
}

// ===== network ============================================================

void DeceptionEngine::installNetworkHooks(HookSet& hooks) {
  if (!config_.networkResources) return;

  hooks.dnsQuery = timed(ApiId::kDnsQuery, [this](Api& a, const std::string& domain)
      -> std::optional<std::string> {
    auto real = a.orig_DnsQuery(domain);
    if (real.has_value()) return real;
    // NX domain: resolve to the proxy, exactly like a sandbox DNS sinkhole.
    alert(a, "DnsQuery()", domain, Profile::kGeneric);
    return config_.sinkholeIp;
  });

  hooks.internetOpenUrl = timed(ApiId::kInternetOpenUrl, [this](Api& a, const std::string& domain,
                                 const std::string& path) {
    if (a.machine().network().isRegistered(domain))
      return a.orig_InternetOpenUrlA(domain, path);
    alert(a, "InternetOpenUrl()", domain, Profile::kGeneric);
    a.machine().emit(a.pid(), trace::EventKind::kHttpRequest, domain + path,
                     "200 (sinkhole)");
    return winapi::HttpResult{200, "sinkholed"};
  });
}

// ===== wear-and-tear extension ============================================

void DeceptionEngine::installWearTearHooks(HookSet& hooks) {
  if (!config_.wearTearExtension) return;

  hooks.evtNext = timed(ApiId::kEvtNext, [this](Api& a, std::size_t maxCount) {
    alert(a, "EvtNext()", "system events", Profile::kGeneric);
    const std::size_t cap = config_.wearTear.sysEventCount;
    return a.orig_EvtNext(maxCount < cap ? maxCount : cap);
  });

  hooks.dnsGetCacheDataTable = timed(ApiId::kDnsGetCacheDataTable, [this](Api& a) {
    alert(a, "DnsGetCacheDataTable()", "dns cache", Profile::kGeneric);
    std::vector<winapi::DnsCacheRow> rows = a.orig_DnsGetCacheDataTable();
    const std::size_t cap = config_.wearTear.dnsCacheEntries;
    if (rows.size() > cap)
      rows.erase(rows.begin(), rows.end() - static_cast<long>(cap));
    return rows;
  });

  hooks.regQueryInfoKey = timed(ApiId::kRegQueryInfoKey, [this](Api& a, const std::string& path,
                                 std::uint32_t& subkeys,
                                 std::uint32_t& values) {
    if (auto fake = wearTearCounts(path)) {
      alert(a, "RegQueryInfoKey()", path, Profile::kGeneric);
      subkeys = fake->subkeys;
      values = fake->values;
      return WinError::kSuccess;
    }
    return a.orig_RegQueryInfoKey(path, subkeys, values);
  });

  hooks.ntQueryKey = timed(ApiId::kNtQueryKey, [this](Api& a, const std::string& path,
                            std::uint32_t& subkeys, std::uint32_t& values) {
    if (auto fake = wearTearCounts(path)) {
      alert(a, "NtQueryKey()", path, Profile::kGeneric);
      subkeys = fake->subkeys;
      values = fake->values;
      return NtStatus::kSuccess;
    }
    if (auto p = guardedDb([&] { return db_.matchRegistryKey(path); });
        matchesActive(p)) {
      alert(a, "NtQueryKey()", path, *p);
      subkeys = 1;
      values = 1;
      return NtStatus::kSuccess;
    }
    return a.orig_NtQueryKey(path, subkeys, values);
  });

  hooks.regEnumKeyEx = timed(ApiId::kRegEnumKeyEx, [this](Api& a, const std::string& path,
                              std::uint32_t index, std::string& name) {
    if (auto fake = wearTearCounts(path)) {
      if (index >= fake->subkeys) return WinError::kNoMoreItems;
      alert(a, "RegEnumKeyEx()", path, Profile::kGeneric);
      // Serve synthetic entries up to the faked count; fall back to real
      // names where the machine has them.
      std::string real;
      if (winapi::ok(a.orig_RegEnumKeyEx(path, index, real))) {
        name = real;
      } else {
        name = "Component" + std::to_string(index);
      }
      return WinError::kSuccess;
    }
    return a.orig_RegEnumKeyEx(path, index, name);
  });

  hooks.regEnumValue = timed(ApiId::kRegEnumValue, [this](Api& a, const std::string& path,
                              std::uint32_t index, std::string& name,
                              RegValue& value) {
    if (auto fake = wearTearCounts(path)) {
      if (index >= fake->values) return WinError::kNoMoreItems;
      alert(a, "RegEnumValue()", path, Profile::kGeneric);
      if (winapi::ok(a.orig_RegEnumValue(path, index, name, value)))
        return WinError::kSuccess;
      name = "Entry" + std::to_string(index);
      value = RegValue::sz("C:\\Program Files\\Common\\entry.exe");
      return WinError::kSuccess;
    }
    return a.orig_RegEnumValue(path, index, name, value);
  });
}

}  // namespace scarecrow::core
