#include "core/attribution.h"

namespace scarecrow::core {

TriggerAttribution attributeTrigger(
    const std::vector<obs::DecisionEvent>& decisions) {
  TriggerAttribution out;
  // The verdict is the newest decision of its kind: walk backward.
  const obs::DecisionEvent* verdict = nullptr;
  for (auto it = decisions.rbegin(); it != decisions.rend(); ++it) {
    if (it->kind == obs::DecisionKind::kVerdict) {
      verdict = &*it;
      break;
    }
  }
  if (verdict == nullptr) return out;
  out.api = verdict->api;
  out.correlationId = verdict->correlationId;
  if (verdict->correlationId == 0) {
    // No fingerprint attempt reached the controller: nothing to attribute
    // (the verdict stands on trace diffing alone).
    out.chain.push_back(*verdict);
    return out;
  }
  out.resolved = true;
  bool sawDeception = false;
  for (const obs::DecisionEvent& e : decisions) {
    if (e.correlationId != verdict->correlationId || e.seq >= verdict->seq)
      continue;
    out.chain.push_back(e);
    if (e.kind == obs::DecisionKind::kDeception) {
      sawDeception = true;
      out.api = e.api;
      out.argument = e.argument;
      out.matched = e.matched;
    }
  }
  out.chain.push_back(*verdict);
  // Every chain is anchored by the kDeception event alert() records; a
  // kHookDispatch link is optional (guard-page VEH alerts have none). So
  // only the anchor's absence proves the ring dropped the chain's head.
  out.truncated = !sawDeception;
  return out;
}

}  // namespace scarecrow::core
