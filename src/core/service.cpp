#include "core/service.h"

#include <chrono>
#include <exception>
#include <utility>

#include "support/log.h"

namespace scarecrow::core {

namespace {

std::uint64_t nowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* batchStatusName(BatchStatus status) noexcept {
  switch (status) {
    case BatchStatus::kOk: return "ok";
    case BatchStatus::kFailed: return "failed";
    case BatchStatus::kTimedOut: return "timed-out";
  }
  return "?";
}

const char* admissionVerdictName(AdmissionVerdict verdict) noexcept {
  switch (verdict) {
    case AdmissionVerdict::kAdmitted: return "admitted";
    case AdmissionVerdict::kQueueFull: return "queue-full";
    case AdmissionVerdict::kTenantThrottled: return "tenant-throttled";
    case AdmissionVerdict::kShuttingDown: return "shutting-down";
    case AdmissionVerdict::kShardUnavailable: return "shard-unavailable";
    case AdmissionVerdict::kSampleQuarantined: return "sample-quarantined";
  }
  return "?";
}

const char* breakerStateName(BreakerState state) noexcept {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

/// One admitted request in flight between submit() and a worker.
struct EvalService::Job {
  std::uint64_t ticketId = 0;
  /// Position within the current telemetry epoch (ledger requestIndex),
  /// fixed at admission so run records are submission-ordered even though
  /// completions race.
  std::uint64_t requestIndex = 0;
  EvalRequest request;
};

struct EvalService::Shard {
  std::deque<Job> queue;
  /// Signalled under EvalService::mutex_ when the queue gains work or
  /// shutdown begins; only this shard's workers wait on it.
  std::condition_variable cv;
  /// Stamped into this shard's ledger records; empty inherits the
  /// writer-level label (the single-shard / batch-façade convention).
  std::string recordLabel;

  // Circuit breaker (all guarded by EvalService::mutex_; inert while
  // breakerThreshold == 0).
  BreakerState breaker = BreakerState::kClosed;
  /// Consecutive kFailed/kTimedOut completions this shard executed.
  std::size_t consecutiveFailures = 0;
  /// completed_ when the breaker last opened (the cooldown epoch).
  std::uint64_t openedAtCompleted = 0;
  /// A half-open shard admits exactly one probe at a time.
  bool probeInflight = false;
};

struct EvalService::Worker {
  std::size_t shard = 0;
  /// Shard-major global index: shard * workersPerShard + slot. All
  /// user-visible worker numbering (machine labels, heartbeat gauge
  /// labels, ledger workerIndex) uses this.
  std::size_t globalIndex = 0;
  std::unique_ptr<winsys::Machine> machine;
  std::unique_ptr<EvaluationHarness> harness;
  /// Merge of the worker's successful per-sample snapshots (this epoch).
  obs::MetricsSnapshot telemetry;
  /// Worker-level accounting. Written only by the owning thread; readers
  /// (flushTelemetry / resetTelemetry) run while the service is idle, with
  /// the happens-before edge supplied by the completion publishing under
  /// EvalService::mutex_.
  std::uint64_t requests = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t failures = 0;
  /// Successful samples whose ResilienceVerdict ended below full
  /// deception (fault plans at work).
  std::uint64_t degraded = 0;
  std::uint64_t wallMicros = 0;
  /// Machine virtual clock right after harness construction — the clean
  /// snapshot's clock. Every evaluation restores to it before running, so
  /// (clock after an attempt) − baseClockMs is the virtual time that
  /// attempt's supervised run consumed: the stall detector's input.
  std::uint64_t baseClockMs = 0;
  /// Attempts flagged by the stall detector this epoch.
  std::uint64_t stalls = 0;
  /// kStall events collected locally and replayed into healthEvents() in
  /// worker order at flushTelemetry() (FlightRecorder is single-writer).
  std::vector<obs::DecisionEvent> stallEvents;
  /// Liveness tick: attempts finished by this worker (stats() reads it
  /// from other threads mid-run).
  std::atomic<std::uint64_t> heartbeat{0};
  std::thread thread;
};

EvalService::EvalService(const MachineFactory& machineFactory,
                         ServiceOptions options)
    : options_(std::move(options)), machineFactory_(machineFactory) {
  if (options_.shardCount == 0) options_.shardCount = 1;
  if (options_.workersPerShard == 0) options_.workersPerShard = 1;
  if (options_.maxAttempts == 0) options_.maxAttempts = 1;
  shards_ = options_.shardCount;
  if (!options_.faultPlan.empty())
    injector_ = std::make_unique<faults::FaultInjector>(options_.faultPlan);
  if (options_.telemetry.ledgerPath.empty())
    options_.telemetry.ledgerPath = obs::ledgerEnvPath();
  if (!options_.telemetry.ledgerPath.empty()) {
    obs::LedgerOptions ledgerOptions{
        .path = options_.telemetry.ledgerPath,
        .maxBytes = options_.telemetry.ledgerMaxBytes,
        .maxRotatedFiles = options_.telemetry.ledgerMaxRotatedFiles,
        // With one shard the configured label applies writer-wide (the
        // BatchEvaluator convention); with N shards every record carries
        // its own per-shard label instead.
        .shard = shards_ == 1 ? options_.telemetry.ledgerShard
                              : std::string{}};
    // Chaos seam: a kLedgerAppend fire fails the append the way a dying
    // disk would, feeding the append-failure accounting end to end.
    if (injector_ != nullptr &&
        injector_->armed(faults::FaultSite::kLedgerAppend))
      ledgerOptions.failAppend = [this] {
        return serviceFaultFires(faults::FaultSite::kLedgerAppend, {});
      };
    ledger_ = std::make_unique<obs::LedgerWriter>(std::move(ledgerOptions));
  }

  shardStates_.reserve(shards_);
  for (std::size_t s = 0; s < shards_; ++s) {
    auto shard = std::make_unique<Shard>();
    if (shards_ > 1) shard->recordLabel = shardLabel(s);
    shardStates_.push_back(std::move(shard));
  }

  workers_.reserve(shards_ * options_.workersPerShard);
  for (std::size_t s = 0; s < shards_; ++s) {
    for (std::size_t w = 0; w < options_.workersPerShard; ++w) {
      auto worker = std::make_unique<Worker>();
      worker->shard = s;
      worker->globalIndex = workers_.size();
      buildWorkerMachine(*worker);
      workers_.push_back(std::move(worker));
    }
  }
  // Machines and harnesses are fully built before any thread starts: the
  // pool only ever sees a complete service.
  for (auto& worker : workers_)
    worker->thread = std::thread([this, raw = worker.get()] {
      workerMain(*raw);
    });
}

EvalService::~EvalService() { shutdown(); }

void EvalService::buildWorkerMachine(Worker& worker) {
  worker.machine = machineFactory_();
  worker.machine->label += " #" + std::to_string(worker.globalIndex);
  worker.harness = std::make_unique<EvaluationHarness>(*worker.machine);
  if (dbFactory_) worker.harness->setResourceDbFactory(dbFactory_);
  worker.baseClockMs = worker.machine->clock().nowMs();
  // Window records stream straight from each worker's time-series plane
  // (observers survive the per-run re-configure in runOnce). The writer
  // serializes concurrent appends at line granularity.
  if (ledger_ != nullptr) {
    obs::LedgerWriter* writer = ledger_.get();
    const std::string label = shardStates_[worker.shard]->recordLabel;
    worker.machine->timeSeries().addWindowObserver(
        [writer, label](const obs::TimeSeriesPlane& plane) {
          const obs::WindowDelta& window = plane.windows().back();
          obs::LedgerRecord record;
          record.kind = obs::LedgerRecordKind::kWindow;
          record.shard = label;
          record.windowId = window.windowId;
          record.startMs = window.startMs;
          record.endMs = window.endMs;
          record.snapshot = window.delta;
          writer->append(std::move(record));
        });
  }
}

void EvalService::restartWorker(Worker& worker) {
  // The worker "crashed": its machine state is gone, its epoch accounting
  // (worker.telemetry, counters) survives — those describe completed
  // work, not the dead machine. The factory is the constructor's, which
  // need not be thread-safe, so concurrent restarts serialize.
  std::lock_guard<std::mutex> lock(factoryMutex_);
  buildWorkerMachine(worker);
  workerRestarts_.fetch_add(1, std::memory_order_relaxed);
}

bool EvalService::serviceFaultFires(faults::FaultSite site,
                                    std::string_view detail) {
  if (injector_ == nullptr || !injector_->armed(site)) return false;
  std::lock_guard<std::mutex> lock(faultMutex_);
  return injector_->shouldFire(site, detail);
}

std::string EvalService::shardLabel(std::size_t shard) const {
  const std::string& prefix = options_.telemetry.ledgerShard;
  return (prefix.empty() ? std::string("shard") : prefix) + "-" +
         std::to_string(shard);
}

std::size_t EvalService::shardFor(const std::string& sampleId) const noexcept {
  // FNV-1a, 64-bit: stable across runs and platforms, so a sample's shard
  // (and therefore its ledger label and machine pool) never moves.
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : sampleId) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return static_cast<std::size_t>(hash % shards_);
}

std::optional<std::size_t> EvalService::routeShardLocked(std::size_t home,
                                                         bool& probe) {
  probe = false;
  if (options_.breakerThreshold == 0) return home;
  for (std::size_t i = 0; i < shards_; ++i) {
    const std::size_t candidate = (home + i) % shards_;
    Shard& shard = *shardStates_[candidate];
    // Cooldown elapsed? The open breaker softens to half-open and the
    // next admission through here becomes its probe.
    if (shard.breaker == BreakerState::kOpen &&
        completed_ - shard.openedAtCompleted >= options_.breakerCooldown)
      shard.breaker = BreakerState::kHalfOpen;
    if (shard.breaker == BreakerState::kClosed) return candidate;
    if (shard.breaker == BreakerState::kHalfOpen && !shard.probeInflight) {
      probe = true;
      return candidate;
    }
  }
  return std::nullopt;  // every shard open (or probing): unavailable
}

Ticket EvalService::admitLocked(EvalRequest request,
                                std::optional<std::uint64_t> pinnedIndex) {
  ++submitted_;
  Ticket ticket;
  if (shuttingDown_) {
    ++rejectedShutdown_;
    ticket.verdict = AdmissionVerdict::kShuttingDown;
    return ticket;
  }
  if (quarantine_.count(request.sampleId) != 0) {
    ++rejectedQuarantined_;
    ticket.verdict = AdmissionVerdict::kSampleQuarantined;
    return ticket;
  }
  const std::size_t home = shardFor(request.sampleId);
  ticket.shard = home;
  bool probe = false;
  std::size_t shardIndex = home;
  if (!pinnedIndex.has_value()) {
    // Full admission policy. Recovery resubmissions skip it: the work was
    // already admitted once, and re-running the checks could strand the
    // residue behind the very conditions the crash left behind.
    const std::optional<std::size_t> routed = routeShardLocked(home, probe);
    if (!routed.has_value()) {
      ++rejectedShardUnavailable_;
      ticket.verdict = AdmissionVerdict::kShardUnavailable;
      return ticket;
    }
    shardIndex = *routed;
    ticket.shard = shardIndex;
    Shard& shard = *shardStates_[shardIndex];
    if (options_.queueCapacity != 0 &&
        shard.queue.size() >= options_.queueCapacity) {
      ++rejectedQueueFull_;
      ticket.verdict = AdmissionVerdict::kQueueFull;
      return ticket;
    }
    if (options_.tenantTokens != 0) {
      std::size_t& outstanding = tenantOutstanding_[request.tenant];
      if (outstanding >= options_.tenantTokens) {
        ++rejectedTenant_;
        ticket.verdict = AdmissionVerdict::kTenantThrottled;
        return ticket;
      }
      ++outstanding;
    }
  } else if (options_.tenantTokens != 0) {
    // Pinned path: tokens are still *taken* (they return on completion)
    // but never rejected on — recovery must not deadlock on fairness.
    ++tenantOutstanding_[request.tenant];
  }
  Shard& shard = *shardStates_[shardIndex];
  if (probe) shard.probeInflight = true;
  ticket.id = ++nextTicketId_;
  ticket.verdict = AdmissionVerdict::kAdmitted;
  ++admitted_;
  live_.insert(ticket.id);
  Job job;
  job.ticketId = ticket.id;
  if (pinnedIndex.has_value()) {
    job.requestIndex = *pinnedIndex;
    if (nextRequestIndex_ <= *pinnedIndex)
      nextRequestIndex_ = *pinnedIndex + 1;
  } else {
    job.requestIndex = nextRequestIndex_++;
  }
  job.request = std::move(request);
  // Write-ahead admission journal: the kAdmit record lands before the job
  // is visible to any worker, so disk always holds a superset of what the
  // queues hold — the invariant recovery replays.
  if (ledger_ != nullptr) {
    obs::LedgerRecord admit;
    admit.kind = obs::LedgerRecordKind::kAdmit;
    admit.shard = shard.recordLabel;
    admit.requestIndex = job.requestIndex;
    admit.sampleId = job.request.sampleId;
    admit.tenant = job.request.tenant;
    ledger_->append(std::move(admit));
  }
  shard.queue.push_back(std::move(job));
  if (shard.queue.size() > queueDepthPeak_)
    queueDepthPeak_ = shard.queue.size();
  shard.cv.notify_one();
  return ticket;
}

Ticket EvalService::submit(EvalRequest request) {
  std::lock_guard<std::mutex> lock(mutex_);
  return admitLocked(std::move(request), std::nullopt);
}

Ticket EvalService::resubmit(EvalRequest request,
                             std::uint64_t requestIndex) {
  std::lock_guard<std::mutex> lock(mutex_);
  return admitLocked(std::move(request), requestIndex);
}

void EvalService::workerMain(Worker& worker) {
  Shard& shard = *shardStates_[worker.shard];
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      shard.cv.wait(lock, [&] {
        return shuttingDown_ || !shard.queue.empty();
      });
      if (shard.queue.empty()) return;  // shuttingDown_ and drained
      job = std::move(shard.queue.front());
      shard.queue.pop_front();
    }
    const std::uint64_t nowInflight =
        inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::uint64_t peak = inflightPeak_.load(std::memory_order_relaxed);
    while (peak < nowInflight &&
           !inflightPeak_.compare_exchange_weak(peak, nowInflight,
                                                std::memory_order_relaxed)) {
    }
    executeJob(worker, std::move(job));
  }
}

void EvalService::executeJob(Worker& worker, Job job) {
  const EvalRequest& request = job.request;
  ServiceResult result;
  result.ticketId = job.ticketId;
  result.sampleId = request.sampleId;
  result.tenant = request.tenant;
  result.shard = worker.shard;
  result.workerIndex = worker.globalIndex;
  ++worker.requests;

  // The stall detector, shared by every attempt outcome: an attempt whose
  // supervised run consumed more virtual time than the budget went that
  // long without a heartbeat — flag it (kStall + counter) but leave the
  // attempt's result alone.
  const auto noteStall = [&](std::uint32_t attempt) {
    if (options_.telemetry.stallBudgetMs == 0) return;
    const std::uint64_t nowMs = worker.machine->clock().nowMs();
    const std::uint64_t virtualMs =
        nowMs >= worker.baseClockMs ? nowMs - worker.baseClockMs : 0;
    if (virtualMs <= options_.telemetry.stallBudgetMs) return;
    ++worker.stalls;
    stalled_.fetch_add(1, std::memory_order_relaxed);
    obs::DecisionEvent e;
    e.timeMs = nowMs;
    e.kind = obs::DecisionKind::kStall;
    e.api = request.sampleId;
    e.argument = "worker-" + std::to_string(worker.globalIndex);
    e.value = std::to_string(virtualMs);
    e.link = "attempt-" + std::to_string(attempt);
    worker.stallEvents.push_back(std::move(e));
  };

  // Worker-crash containment: a kWorkerCrash fire at attempt start kills
  // this worker's machine, and the service restarts it with a fresh one
  // from the factory — the crash is the worker's fault, not the
  // request's, so the attempt is re-run without being counted. Bounded so
  // an unbounded crash plan cannot spin a worker forever; past the budget
  // the attempt is charged as a failure.
  constexpr std::uint32_t kRestartBudgetPerAttempt = 8;

  for (std::uint32_t attempt = 1; attempt <= options_.maxAttempts;
       ++attempt) {
    result.attempts = attempt;
    if (attempt > 1) {
      ++worker.retries;
      retried_.fetch_add(1, std::memory_order_relaxed);
    }
    if (injector_ != nullptr) {
      std::uint32_t restarts = 0;
      bool containmentExhausted = false;
      while (serviceFaultFires(faults::FaultSite::kWorkerCrash,
                               request.sampleId)) {
        if (restarts >= kRestartBudgetPerAttempt) {
          containmentExhausted = true;
          break;
        }
        restartWorker(worker);
        ++restarts;
      }
      if (containmentExhausted) {
        result.status = BatchStatus::kFailed;
        result.error = "worker crash-looped (restart budget " +
                       std::to_string(kRestartBudgetPerAttempt) +
                       " exhausted)";
        result.wallMicros = 0;
        worker.heartbeat.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
    }
    const std::uint64_t start = nowMicros();
    try {
      EvalOutcome outcome = worker.harness->evaluate(request);
      const std::uint64_t elapsed = nowMicros() - start;
      result.wallMicros = elapsed;
      noteStall(attempt);
      worker.heartbeat.fetch_add(1, std::memory_order_relaxed);
      if (options_.requestTimeoutMs != 0 &&
          elapsed > options_.requestTimeoutMs * 1000) {
        // Cooperative timeout: the run already finished, but it blew the
        // wall budget — discard it like a failure so a stuck configuration
        // cannot silently monopolize a worker.
        ++worker.timeouts;
        result.status = BatchStatus::kTimedOut;
        result.error = "attempt took " + std::to_string(elapsed / 1000) +
                       " ms (budget " +
                       std::to_string(options_.requestTimeoutMs) + " ms)";
        continue;
      }
      result.status = BatchStatus::kOk;
      result.error.clear();
      result.outcome = std::move(outcome);
      if (result.outcome.resilience.degraded()) ++worker.degraded;
      worker.telemetry.merge(result.outcome.telemetry);
      break;
    } catch (const std::exception& e) {
      result.status = BatchStatus::kFailed;
      result.error = e.what();
      result.wallMicros = nowMicros() - start;
      noteStall(attempt);
      worker.heartbeat.fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
      result.status = BatchStatus::kFailed;
      result.error = "non-standard exception";
      result.wallMicros = nowMicros() - start;
      noteStall(attempt);
      worker.heartbeat.fetch_add(1, std::memory_order_relaxed);
    }
  }
  worker.wallMicros += result.wallMicros;
  if (!result.ok()) {
    ++worker.failures;
    support::logWarn("service", "request failed",
                     {{"sample", request.sampleId},
                      {"status", batchStatusName(result.status)},
                      {"attempts", result.attempts},
                      {"error", result.error}});
  }

  // Stream the finished request into the run ledger: content is
  // deterministic per request, only the line interleaving across workers
  // is not (readers are order-insensitive).
  if (ledger_ != nullptr) {
    const std::string& label = shardStates_[worker.shard]->recordLabel;
    obs::LedgerRecord record;
    record.kind = obs::LedgerRecordKind::kRun;
    record.shard = label;
    record.requestIndex = job.requestIndex;
    record.sampleId = request.sampleId;
    record.status = batchStatusName(result.status);
    record.attempts = result.attempts;
    record.workerIndex = worker.globalIndex;
    record.virtualMs = worker.machine->clock().nowMs();
    if (result.ok()) {
      const EvalOutcome& outcome = result.outcome;
      record.correlationId = outcome.attribution.correlationId;
      record.verdict = outcome.verdict.deactivated ? "deactivated"
                                                   : "not-deactivated";
      record.firstTrigger = outcome.verdict.firstTrigger;
      const ResilienceVerdict& rv = outcome.resilience;
      record.protection = faults::protectionLevelName(rv.protectionLevel);
      record.faultsInjected = rv.faultsInjected;
      record.injectRetries = rv.injectRetries;
      record.quarantinedHooks = rv.quarantinedHooks;
      record.missedDescendants = rv.missedDescendants;
      record.reinjectedDescendants = rv.reinjectedDescendants;
      record.ipcMessagesDropped = rv.ipcMessagesDropped;
    }
    if (worker.machine->hotTimers().anyArmed())
      for (const obs::HistogramSample& h :
           worker.machine->hotTimers().snapshot().histograms)
        record.hotTimers.push_back({h.name, h.p50, h.p95, h.p99});
    ledger_->append(std::move(record));
    if (result.ok())
      for (const obs::SloBreach& breach : result.outcome.sloBreaches) {
        obs::LedgerRecord b;
        b.kind = obs::LedgerRecordKind::kBreach;
        b.shard = label;
        b.windowId = breach.windowId;
        b.rule = breach.rule;
        b.observed = obs::renderMilli(breach.observedMilli);
        b.threshold = obs::renderMilli(breach.thresholdMilli);
        ledger_->append(std::move(b));
      }
  }

  completeJob(worker, std::move(result));
}

void EvalService::noteCompletionLocked(const ServiceResult& result,
                                       std::uint64_t clockMs) {
  // --- shard circuit breaker (keyed by the executing shard) ------------
  if (options_.breakerThreshold != 0) {
    Shard& shard = *shardStates_[result.shard];
    if (result.ok()) {
      shard.consecutiveFailures = 0;
      if (shard.breaker == BreakerState::kHalfOpen) {
        // The probe came back healthy: close and resume normal admission.
        shard.breaker = BreakerState::kClosed;
        shard.probeInflight = false;
      }
    } else {
      const bool reopen = shard.breaker == BreakerState::kHalfOpen;
      bool trip = reopen;
      if (shard.breaker == BreakerState::kClosed &&
          ++shard.consecutiveFailures >= options_.breakerThreshold)
        trip = true;
      if (trip) {
        shard.breaker = BreakerState::kOpen;
        shard.openedAtCompleted = completed_;
        shard.probeInflight = false;
        shard.consecutiveFailures = 0;
        ++breakerTrips_;
        const char* cause = reopen ? "probe-failed" : "threshold";
        obs::DecisionEvent e;
        e.timeMs = clockMs;
        e.kind = obs::DecisionKind::kBreakerTrip;
        e.api = "shard-" + std::to_string(result.shard);
        e.argument = result.sampleId;
        e.value = std::to_string(options_.breakerThreshold);
        e.link = cause;
        breakerEvents_.push_back(std::move(e));
        support::logWarn("service", "shard breaker opened",
                         {{"shard", result.shard},
                          {"sample", result.sampleId},
                          {"cause", cause}});
      }
    }
  }

  // --- poisoned-sample quarantine --------------------------------------
  if (options_.quarantineThreshold != 0 && !result.ok()) {
    // A non-ok completion means every attempt was burnt; enough of those
    // across submissions and the sample is poison, not unlucky.
    std::size_t& runs = exhausted_[result.sampleId];
    if (++runs >= options_.quarantineThreshold &&
        quarantine_.insert(result.sampleId).second) {
      if (ledger_ != nullptr) {
        obs::LedgerRecord record;
        record.kind = obs::LedgerRecordKind::kQuarantinedSample;
        record.shard = shardStates_[result.shard]->recordLabel;
        record.sampleId = result.sampleId;
        record.failureCount = runs;
        ledger_->append(std::move(record));
      }
      support::logWarn("service", "sample quarantined",
                       {{"sample", result.sampleId},
                        {"exhausted_runs", runs}});
    }
  }
}

void EvalService::completeJob(Worker& worker, ServiceResult result) {
  // Subscribers see the result before poll()/wait() can: snapshot the
  // callback list under the lock, invoke outside it so a callback may
  // submit() follow-up work without deadlocking.
  std::vector<ResultCallback> callbacks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    callbacks.reserve(subscribers_.size());
    for (const auto& [slot, callback] : subscribers_)
      if (callback) callbacks.push_back(callback);
  }
  for (const ResultCallback& callback : callbacks) callback(result);

  const std::uint64_t clockMs = worker.machine->clock().nowMs();
  std::lock_guard<std::mutex> lock(mutex_);
  if (options_.tenantTokens != 0) {
    auto it = tenantOutstanding_.find(result.tenant);
    if (it != tenantOutstanding_.end() && --it->second == 0)
      tenantOutstanding_.erase(it);
  }
  live_.erase(result.ticketId);
  ++completed_;
  if (result.status == BatchStatus::kFailed) ++failed_;
  if (result.status == BatchStatus::kTimedOut) ++timedOut_;
  noteCompletionLocked(result, clockMs);
  telemetryDirty_ = true;
  if (options_.retainResults) {
    const std::uint64_t id = result.ticketId;
    results_.emplace(id, std::move(result));
  }
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  doneCv_.notify_all();
}

std::optional<ServiceResult> EvalService::poll(const Ticket& ticket) {
  if (!ticket.admitted()) return std::nullopt;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = results_.find(ticket.id);
  if (it == results_.end()) return std::nullopt;
  ServiceResult result = std::move(it->second);
  results_.erase(it);
  return result;
}

std::optional<ServiceResult> EvalService::wait(const Ticket& ticket) {
  if (!ticket.admitted()) return std::nullopt;
  std::unique_lock<std::mutex> lock(mutex_);
  doneCv_.wait(lock, [&] { return live_.count(ticket.id) == 0; });
  auto it = results_.find(ticket.id);
  if (it == results_.end()) return std::nullopt;
  ServiceResult result = std::move(it->second);
  results_.erase(it);
  return result;
}

void EvalService::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  doneCv_.wait(lock, [&] { return live_.empty(); });
}

std::size_t EvalService::subscribe(ResultCallback callback) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t slot = nextSubscriberSlot_++;
  subscribers_.emplace_back(slot, std::move(callback));
  return slot;
}

void EvalService::unsubscribe(std::size_t slot) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [id, callback] : subscribers_)
    if (id == slot) callback = nullptr;
}

void EvalService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shuttingDown_ = true;
    for (auto& shard : shardStates_) shard->cv.notify_all();
  }
  for (auto& worker : workers_)
    if (worker->thread.joinable()) worker->thread.join();
  {
    // A killed service stays killed: flushing telemetry now would write
    // the kWorker records a real crash never gets to write.
    std::lock_guard<std::mutex> lock(mutex_);
    if (killed_) return;
  }
  flushTelemetry();
}

void EvalService::kill() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    killed_ = true;
    shuttingDown_ = true;
    // Queued-but-unstarted jobs die with the process: their tickets never
    // complete, exactly like a real SIGKILL. Their kAdmit records are
    // already on disk — that asymmetry is the whole recovery story.
    for (auto& shard : shardStates_) {
      shard->queue.clear();
      shard->cv.notify_all();
    }
  }
  for (auto& worker : workers_)
    if (worker->thread.joinable()) worker->thread.join();
}

ServiceStats EvalService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServiceStats s;
  s.submitted = submitted_;
  s.admitted = admitted_;
  s.rejectedQueueFull = rejectedQueueFull_;
  s.rejectedTenant = rejectedTenant_;
  s.rejectedShutdown = rejectedShutdown_;
  s.completed = completed_;
  s.failed = failed_;
  s.timedOut = timedOut_;
  s.rejectedShardUnavailable = rejectedShardUnavailable_;
  s.rejectedQuarantined = rejectedQuarantined_;
  s.retried = retried_.load(std::memory_order_relaxed);
  s.stalled = stalled_.load(std::memory_order_relaxed);
  s.inflight = inflight_.load(std::memory_order_relaxed);
  s.inflightPeak = inflightPeak_.load(std::memory_order_relaxed);
  s.queueDepthPeak = queueDepthPeak_;
  s.breakerTrips = breakerTrips_;
  s.workerRestarts = workerRestarts_.load(std::memory_order_relaxed);
  s.quarantinedSamples = quarantine_.size();
  s.ledgerAppendFailures =
      ledger_ != nullptr ? ledger_->appendFailures() : 0;
  s.resultsPending = results_.size();
  s.workerHeartbeats.reserve(workers_.size());
  for (const auto& worker : workers_)
    s.workerHeartbeats.push_back(
        worker->heartbeat.load(std::memory_order_relaxed));
  s.shardQueueDepths.reserve(shardStates_.size());
  s.breakerStates.reserve(shardStates_.size());
  for (const auto& shard : shardStates_) {
    s.shardQueueDepths.push_back(shard->queue.size());
    s.queued += shard->queue.size();
    s.breakerStates.push_back(shard->breaker);
  }
  return s;
}

bool EvalService::isQuarantined(const std::string& sampleId) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return quarantine_.count(sampleId) != 0;
}

BreakerState EvalService::breakerState(std::size_t shard) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shard < shardStates_.size() ? shardStates_[shard]->breaker
                                     : BreakerState::kClosed;
}

void EvalService::setResourceDbFactory(
    EvaluationHarness::DbFactory dbFactory) {
  dbFactory_ = std::move(dbFactory);  // survives worker restarts
  for (auto& worker : workers_)
    worker->harness->setResourceDbFactory(dbFactory_);
}

obs::MetricsSnapshot EvalService::fleetTelemetry() const {
  obs::MetricsSnapshot merged;
  for (const obs::MetricsSnapshot& worker : workerTelemetry_)
    merged.merge(worker);
  return merged;
}

void EvalService::flushTelemetry() {
  std::vector<obs::DecisionEvent> breakerEvents;
  std::vector<BreakerState> breakerStates;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!telemetryDirty_) return;
    telemetryDirty_ = false;
    breakerEvents = breakerEvents_;
    breakerStates.reserve(shardStates_.size());
    for (const auto& shard : shardStates_)
      breakerStates.push_back(shard->breaker);
  }
  // Replay stall events into the service-level recorder in global worker
  // order: the FlightRecorder is single-writer, so workers collected
  // locally and the merge happens here, while the pool is idle. Breaker
  // trips follow (they were collected under the admission lock, already
  // in completion order).
  healthEvents_.clear();
  for (const auto& worker : workers_)
    for (const obs::DecisionEvent& event : worker->stallEvents)
      healthEvents_.record(event);
  for (const obs::DecisionEvent& event : breakerEvents)
    healthEvents_.record(event);

  const std::uint64_t inflightPeak =
      inflightPeak_.load(std::memory_order_relaxed);
  const std::uint64_t workerRestarts =
      workerRestarts_.load(std::memory_order_relaxed);
  const std::uint64_t ledgerFailures =
      ledger_ != nullptr ? ledger_->appendFailures() : 0;
  std::vector<bool> shardStamped(shardStates_.size(), false);
  workerTelemetry_.clear();
  workerTelemetry_.reserve(workers_.size());
  for (const auto& workerPtr : workers_) {
    const Worker& worker = *workerPtr;
    obs::MetricsRegistry accounting;
    accounting.counter("batch.requests").inc(worker.requests);
    accounting.counter("batch.retries").inc(worker.retries);
    accounting.counter("batch.timeouts").inc(worker.timeouts);
    accounting.counter("batch.failures").inc(worker.failures);
    accounting.counter("batch.degraded").inc(worker.degraded);
    accounting.counter("batch.stalled").inc(worker.stalls);
    accounting.counter("batch.wall_us").inc(worker.wallMicros);
    // Liveness gauges. Heartbeats are labelled per worker; the inflight
    // peak is the same global value in every snapshot, so the gauge-max
    // merge rule reproduces it unchanged at the fleet level.
    accounting
        .gauge("batch.worker_heartbeat",
               "worker-" + std::to_string(worker.globalIndex))
        .set(static_cast<std::int64_t>(
            worker.heartbeat.load(std::memory_order_relaxed)));
    accounting.gauge("batch.inflight_peak")
        .set(static_cast<std::int64_t>(inflightPeak));
    // Supervision plane, stamped only when its feature is live so the
    // byte-identical telemetry goldens of unsupervised runs are untouched:
    // the breaker gauge goes to each shard's first worker (one writer per
    // label, so the gauge-max merge reproduces it at the fleet level); the
    // fleet-wide counters go to worker 0 (counters sum on merge).
    if (options_.breakerThreshold != 0 && !shardStamped[worker.shard]) {
      shardStamped[worker.shard] = true;
      accounting
          .gauge("service.breaker_state",
                 "shard-" + std::to_string(worker.shard))
          .set(static_cast<std::int64_t>(breakerStates[worker.shard]));
    }
    if (worker.globalIndex == 0) {
      if (workerRestarts != 0)
        accounting.counter("service.worker_restarts").inc(workerRestarts);
      if (ledgerFailures != 0)
        accounting.counter("obs.ledger_append_failures").inc(ledgerFailures);
    }
    obs::MetricsSnapshot snapshot = worker.telemetry;
    snapshot.merge(accounting.snapshot());
    workerTelemetry_.push_back(std::move(snapshot));
  }

  // Worker summary records, written in global worker order while idle:
  // obs::reconstructFleetTelemetry folds these back into the exact bytes
  // fleetTelemetry() produces.
  if (ledger_ != nullptr)
    for (const auto& workerPtr : workers_) {
      const Worker& worker = *workerPtr;
      obs::LedgerRecord record;
      record.kind = obs::LedgerRecordKind::kWorker;
      record.shard = shardStates_[worker.shard]->recordLabel;
      record.workerIndex = worker.globalIndex;
      record.snapshot = workerTelemetry_[worker.globalIndex];
      ledger_->append(std::move(record));
    }
}

void EvalService::resetTelemetry() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& worker : workers_) {
    worker->telemetry = obs::MetricsSnapshot{};
    worker->requests = worker->retries = worker->timeouts =
        worker->failures = worker->degraded = worker->wallMicros =
            worker->stalls = 0;
    worker->stallEvents.clear();
    worker->heartbeat.store(0, std::memory_order_relaxed);
  }
  healthEvents_.clear();
  workerTelemetry_.clear();
  // A fresh epoch makes any previously flushed view stale: the next
  // flushTelemetry() must rebuild (and re-ledger) even if the epoch ends
  // with zero completions — an empty corpus still reports zeroed workers.
  telemetryDirty_ = true;
  nextRequestIndex_ = 0;
  breakerEvents_.clear();
  submitted_ = admitted_ = 0;
  rejectedQueueFull_ = rejectedTenant_ = rejectedShutdown_ = 0;
  rejectedShardUnavailable_ = rejectedQuarantined_ = 0;
  completed_ = failed_ = timedOut_ = 0;
  queueDepthPeak_ = 0;
  breakerTrips_ = 0;
  inflightPeak_.store(0, std::memory_order_relaxed);
  retried_.store(0, std::memory_order_relaxed);
  stalled_.store(0, std::memory_order_relaxed);
  workerRestarts_.store(0, std::memory_order_relaxed);
}

RecoveryReport EvalService::replayAdmissionJournal(
    const std::vector<obs::LedgerRecord>& records) {
  RecoveryReport report;
  // Keyed by request index, first admit wins: resubmit() journals a second
  // kAdmit for a pinned index and replay must not double-count it. A run
  // record completes an admit only when the sample ids agree — a stale
  // index collision (e.g. mixed epochs in one file) stays residue rather
  // than silently adopting the wrong sample's verdict.
  std::map<std::uint64_t, RecoveryReport::PendingAdmit> admits;
  std::map<std::uint64_t, const obs::LedgerRecord*> runs;
  std::unordered_set<std::string> quarantined;
  for (const obs::LedgerRecord& record : records) {
    switch (record.kind) {
      case obs::LedgerRecordKind::kAdmit: {
        RecoveryReport::PendingAdmit admit;
        admit.requestIndex = record.requestIndex;
        admit.sampleId = record.sampleId;
        admit.tenant = record.tenant;
        admits.emplace(record.requestIndex, std::move(admit));
        break;
      }
      case obs::LedgerRecordKind::kRun:
        runs[record.requestIndex] = &record;
        break;
      case obs::LedgerRecordKind::kQuarantinedSample:
        quarantined.insert(record.sampleId);
        break;
      case obs::LedgerRecordKind::kWindow:
      case obs::LedgerRecordKind::kWorker:
      case obs::LedgerRecordKind::kBreach:
        break;
    }
  }
  report.journaled = admits.size();
  report.quarantined = quarantined.size();
  for (const auto& [index, admit] : admits) {
    const auto it = runs.find(index);
    if (it != runs.end() && it->second->sampleId == admit.sampleId) {
      RecoveryReport::CompletedRun done;
      done.requestIndex = index;
      done.sampleId = admit.sampleId;
      done.status = it->second->status;
      done.verdict = it->second->verdict;
      done.firstTrigger = it->second->firstTrigger;
      done.shard = it->second->shard;
      report.completed.push_back(std::move(done));
    } else {
      report.residue.push_back(admit);
    }
  }
  return report;
}

RecoveryReport EvalService::recover(const std::string& ledgerPath,
                                    const RequestBuilder& builder) {
  const std::vector<obs::LedgerRecord> records =
      obs::readLedgerGenerations(ledgerPath);
  RecoveryReport report = replayAdmissionJournal(records);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Reload the persisted quarantine set first so residue that was
    // poisoned in the previous life is rejected, not re-run.
    for (const obs::LedgerRecord& record : records)
      if (record.kind == obs::LedgerRecordKind::kQuarantinedSample)
        quarantine_.insert(record.sampleId);
    // Park the fresh-index sequence past everything the journal used, so
    // new submissions after recovery never collide with a replayed index.
    for (const obs::LedgerRecord& record : records)
      if ((record.kind == obs::LedgerRecordKind::kAdmit ||
           record.kind == obs::LedgerRecordKind::kRun) &&
          nextRequestIndex_ <= record.requestIndex)
        nextRequestIndex_ = record.requestIndex + 1;
  }
  support::logInfo("service", "recovery replay",
                   {{"ledger", ledgerPath},
                    {"journaled", report.journaled},
                    {"completed", report.completed.size()},
                    {"residue", report.residue.size()},
                    {"quarantined", report.quarantined}});
  report.resubmitted.reserve(report.residue.size());
  for (const RecoveryReport::PendingAdmit& admit : report.residue) {
    if (!builder) break;
    EvalRequest request = builder(admit.sampleId, admit.tenant);
    RecoveryReport::Resubmission resubmission;
    resubmission.ticket = resubmit(std::move(request), admit.requestIndex);
    resubmission.requestIndex = admit.requestIndex;
    resubmission.sampleId = admit.sampleId;
    report.resubmitted.push_back(std::move(resubmission));
  }
  return report;
}

}  // namespace scarecrow::core
