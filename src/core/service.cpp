#include "core/service.h"

#include <chrono>
#include <exception>
#include <utility>

#include "support/log.h"

namespace scarecrow::core {

namespace {

std::uint64_t nowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* batchStatusName(BatchStatus status) noexcept {
  switch (status) {
    case BatchStatus::kOk: return "ok";
    case BatchStatus::kFailed: return "failed";
    case BatchStatus::kTimedOut: return "timed-out";
  }
  return "?";
}

const char* admissionVerdictName(AdmissionVerdict verdict) noexcept {
  switch (verdict) {
    case AdmissionVerdict::kAdmitted: return "admitted";
    case AdmissionVerdict::kQueueFull: return "queue-full";
    case AdmissionVerdict::kTenantThrottled: return "tenant-throttled";
    case AdmissionVerdict::kShuttingDown: return "shutting-down";
  }
  return "?";
}

/// One admitted request in flight between submit() and a worker.
struct EvalService::Job {
  std::uint64_t ticketId = 0;
  /// Position within the current telemetry epoch (ledger requestIndex),
  /// fixed at admission so run records are submission-ordered even though
  /// completions race.
  std::uint64_t requestIndex = 0;
  EvalRequest request;
};

struct EvalService::Shard {
  std::deque<Job> queue;
  /// Signalled under EvalService::mutex_ when the queue gains work or
  /// shutdown begins; only this shard's workers wait on it.
  std::condition_variable cv;
  /// Stamped into this shard's ledger records; empty inherits the
  /// writer-level label (the single-shard / batch-façade convention).
  std::string recordLabel;
};

struct EvalService::Worker {
  std::size_t shard = 0;
  /// Shard-major global index: shard * workersPerShard + slot. All
  /// user-visible worker numbering (machine labels, heartbeat gauge
  /// labels, ledger workerIndex) uses this.
  std::size_t globalIndex = 0;
  std::unique_ptr<winsys::Machine> machine;
  std::unique_ptr<EvaluationHarness> harness;
  /// Merge of the worker's successful per-sample snapshots (this epoch).
  obs::MetricsSnapshot telemetry;
  /// Worker-level accounting. Written only by the owning thread; readers
  /// (flushTelemetry / resetTelemetry) run while the service is idle, with
  /// the happens-before edge supplied by the completion publishing under
  /// EvalService::mutex_.
  std::uint64_t requests = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t failures = 0;
  /// Successful samples whose ResilienceVerdict ended below full
  /// deception (fault plans at work).
  std::uint64_t degraded = 0;
  std::uint64_t wallMicros = 0;
  /// Machine virtual clock right after harness construction — the clean
  /// snapshot's clock. Every evaluation restores to it before running, so
  /// (clock after an attempt) − baseClockMs is the virtual time that
  /// attempt's supervised run consumed: the stall detector's input.
  std::uint64_t baseClockMs = 0;
  /// Attempts flagged by the stall detector this epoch.
  std::uint64_t stalls = 0;
  /// kStall events collected locally and replayed into healthEvents() in
  /// worker order at flushTelemetry() (FlightRecorder is single-writer).
  std::vector<obs::DecisionEvent> stallEvents;
  /// Liveness tick: attempts finished by this worker (stats() reads it
  /// from other threads mid-run).
  std::atomic<std::uint64_t> heartbeat{0};
  std::thread thread;
};

EvalService::EvalService(const MachineFactory& machineFactory,
                         ServiceOptions options)
    : options_(std::move(options)) {
  if (options_.shardCount == 0) options_.shardCount = 1;
  if (options_.workersPerShard == 0) options_.workersPerShard = 1;
  if (options_.maxAttempts == 0) options_.maxAttempts = 1;
  shards_ = options_.shardCount;
  if (options_.telemetry.ledgerPath.empty())
    options_.telemetry.ledgerPath = obs::ledgerEnvPath();
  if (!options_.telemetry.ledgerPath.empty())
    ledger_ = std::make_unique<obs::LedgerWriter>(obs::LedgerOptions{
        .path = options_.telemetry.ledgerPath,
        .maxBytes = options_.telemetry.ledgerMaxBytes,
        .maxRotatedFiles = options_.telemetry.ledgerMaxRotatedFiles,
        // With one shard the configured label applies writer-wide (the
        // BatchEvaluator convention); with N shards every record carries
        // its own per-shard label instead.
        .shard = shards_ == 1 ? options_.telemetry.ledgerShard
                              : std::string{}});

  shardStates_.reserve(shards_);
  for (std::size_t s = 0; s < shards_; ++s) {
    auto shard = std::make_unique<Shard>();
    if (shards_ > 1) shard->recordLabel = shardLabel(s);
    shardStates_.push_back(std::move(shard));
  }

  workers_.reserve(shards_ * options_.workersPerShard);
  for (std::size_t s = 0; s < shards_; ++s) {
    for (std::size_t w = 0; w < options_.workersPerShard; ++w) {
      auto worker = std::make_unique<Worker>();
      worker->shard = s;
      worker->globalIndex = workers_.size();
      worker->machine = machineFactory();
      worker->machine->label += " #" + std::to_string(worker->globalIndex);
      worker->harness =
          std::make_unique<EvaluationHarness>(*worker->machine);
      worker->baseClockMs = worker->machine->clock().nowMs();
      // Window records stream straight from each worker's time-series
      // plane (observers survive the per-run re-configure in runOnce). The
      // writer serializes concurrent appends at line granularity.
      if (ledger_ != nullptr) {
        obs::LedgerWriter* writer = ledger_.get();
        const std::string label = shardStates_[s]->recordLabel;
        worker->machine->timeSeries().addWindowObserver(
            [writer, label](const obs::TimeSeriesPlane& plane) {
              const obs::WindowDelta& window = plane.windows().back();
              obs::LedgerRecord record;
              record.kind = obs::LedgerRecordKind::kWindow;
              record.shard = label;
              record.windowId = window.windowId;
              record.startMs = window.startMs;
              record.endMs = window.endMs;
              record.snapshot = window.delta;
              writer->append(std::move(record));
            });
      }
      workers_.push_back(std::move(worker));
    }
  }
  // Machines and harnesses are fully built before any thread starts: the
  // pool only ever sees a complete service.
  for (auto& worker : workers_)
    worker->thread = std::thread([this, raw = worker.get()] {
      workerMain(*raw);
    });
}

EvalService::~EvalService() { shutdown(); }

std::string EvalService::shardLabel(std::size_t shard) const {
  const std::string& prefix = options_.telemetry.ledgerShard;
  return (prefix.empty() ? std::string("shard") : prefix) + "-" +
         std::to_string(shard);
}

std::size_t EvalService::shardFor(const std::string& sampleId) const noexcept {
  // FNV-1a, 64-bit: stable across runs and platforms, so a sample's shard
  // (and therefore its ledger label and machine pool) never moves.
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : sampleId) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return static_cast<std::size_t>(hash % shards_);
}

Ticket EvalService::submit(EvalRequest request) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++submitted_;
  Ticket ticket;
  if (shuttingDown_) {
    ++rejectedShutdown_;
    ticket.verdict = AdmissionVerdict::kShuttingDown;
    return ticket;
  }
  const std::size_t shardIndex = shardFor(request.sampleId);
  ticket.shard = shardIndex;
  Shard& shard = *shardStates_[shardIndex];
  if (options_.queueCapacity != 0 &&
      shard.queue.size() >= options_.queueCapacity) {
    ++rejectedQueueFull_;
    ticket.verdict = AdmissionVerdict::kQueueFull;
    return ticket;
  }
  if (options_.tenantTokens != 0) {
    std::size_t& outstanding = tenantOutstanding_[request.tenant];
    if (outstanding >= options_.tenantTokens) {
      ++rejectedTenant_;
      ticket.verdict = AdmissionVerdict::kTenantThrottled;
      return ticket;
    }
    ++outstanding;
  }
  ticket.id = ++nextTicketId_;
  ticket.verdict = AdmissionVerdict::kAdmitted;
  ++admitted_;
  live_.insert(ticket.id);
  Job job;
  job.ticketId = ticket.id;
  job.requestIndex = ticket.id - epochBaseTicket_ - 1;
  job.request = std::move(request);
  shard.queue.push_back(std::move(job));
  if (shard.queue.size() > queueDepthPeak_)
    queueDepthPeak_ = shard.queue.size();
  shard.cv.notify_one();
  return ticket;
}

void EvalService::workerMain(Worker& worker) {
  Shard& shard = *shardStates_[worker.shard];
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      shard.cv.wait(lock, [&] {
        return shuttingDown_ || !shard.queue.empty();
      });
      if (shard.queue.empty()) return;  // shuttingDown_ and drained
      job = std::move(shard.queue.front());
      shard.queue.pop_front();
    }
    const std::uint64_t nowInflight =
        inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::uint64_t peak = inflightPeak_.load(std::memory_order_relaxed);
    while (peak < nowInflight &&
           !inflightPeak_.compare_exchange_weak(peak, nowInflight,
                                                std::memory_order_relaxed)) {
    }
    executeJob(worker, std::move(job));
  }
}

void EvalService::executeJob(Worker& worker, Job job) {
  const EvalRequest& request = job.request;
  ServiceResult result;
  result.ticketId = job.ticketId;
  result.sampleId = request.sampleId;
  result.tenant = request.tenant;
  result.shard = worker.shard;
  result.workerIndex = worker.globalIndex;
  ++worker.requests;

  // The stall detector, shared by every attempt outcome: an attempt whose
  // supervised run consumed more virtual time than the budget went that
  // long without a heartbeat — flag it (kStall + counter) but leave the
  // attempt's result alone.
  const auto noteStall = [&](std::uint32_t attempt) {
    if (options_.telemetry.stallBudgetMs == 0) return;
    const std::uint64_t nowMs = worker.machine->clock().nowMs();
    const std::uint64_t virtualMs =
        nowMs >= worker.baseClockMs ? nowMs - worker.baseClockMs : 0;
    if (virtualMs <= options_.telemetry.stallBudgetMs) return;
    ++worker.stalls;
    stalled_.fetch_add(1, std::memory_order_relaxed);
    obs::DecisionEvent e;
    e.timeMs = nowMs;
    e.kind = obs::DecisionKind::kStall;
    e.api = request.sampleId;
    e.argument = "worker-" + std::to_string(worker.globalIndex);
    e.value = std::to_string(virtualMs);
    e.link = "attempt-" + std::to_string(attempt);
    worker.stallEvents.push_back(std::move(e));
  };

  for (std::uint32_t attempt = 1; attempt <= options_.maxAttempts;
       ++attempt) {
    result.attempts = attempt;
    if (attempt > 1) {
      ++worker.retries;
      retried_.fetch_add(1, std::memory_order_relaxed);
    }
    const std::uint64_t start = nowMicros();
    try {
      EvalOutcome outcome = worker.harness->evaluate(request);
      const std::uint64_t elapsed = nowMicros() - start;
      result.wallMicros = elapsed;
      noteStall(attempt);
      worker.heartbeat.fetch_add(1, std::memory_order_relaxed);
      if (options_.requestTimeoutMs != 0 &&
          elapsed > options_.requestTimeoutMs * 1000) {
        // Cooperative timeout: the run already finished, but it blew the
        // wall budget — discard it like a failure so a stuck configuration
        // cannot silently monopolize a worker.
        ++worker.timeouts;
        result.status = BatchStatus::kTimedOut;
        result.error = "attempt took " + std::to_string(elapsed / 1000) +
                       " ms (budget " +
                       std::to_string(options_.requestTimeoutMs) + " ms)";
        continue;
      }
      result.status = BatchStatus::kOk;
      result.error.clear();
      result.outcome = std::move(outcome);
      if (result.outcome.resilience.degraded()) ++worker.degraded;
      worker.telemetry.merge(result.outcome.telemetry);
      break;
    } catch (const std::exception& e) {
      result.status = BatchStatus::kFailed;
      result.error = e.what();
      result.wallMicros = nowMicros() - start;
      noteStall(attempt);
      worker.heartbeat.fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
      result.status = BatchStatus::kFailed;
      result.error = "non-standard exception";
      result.wallMicros = nowMicros() - start;
      noteStall(attempt);
      worker.heartbeat.fetch_add(1, std::memory_order_relaxed);
    }
  }
  worker.wallMicros += result.wallMicros;
  if (!result.ok()) {
    ++worker.failures;
    support::logWarn("service", "request failed",
                     {{"sample", request.sampleId},
                      {"status", batchStatusName(result.status)},
                      {"attempts", result.attempts},
                      {"error", result.error}});
  }

  // Stream the finished request into the run ledger: content is
  // deterministic per request, only the line interleaving across workers
  // is not (readers are order-insensitive).
  if (ledger_ != nullptr) {
    const std::string& label = shardStates_[worker.shard]->recordLabel;
    obs::LedgerRecord record;
    record.kind = obs::LedgerRecordKind::kRun;
    record.shard = label;
    record.requestIndex = job.requestIndex;
    record.sampleId = request.sampleId;
    record.status = batchStatusName(result.status);
    record.attempts = result.attempts;
    record.workerIndex = worker.globalIndex;
    record.virtualMs = worker.machine->clock().nowMs();
    if (result.ok()) {
      const EvalOutcome& outcome = result.outcome;
      record.correlationId = outcome.attribution.correlationId;
      record.verdict = outcome.verdict.deactivated ? "deactivated"
                                                   : "not-deactivated";
      record.firstTrigger = outcome.verdict.firstTrigger;
      const ResilienceVerdict& rv = outcome.resilience;
      record.protection = faults::protectionLevelName(rv.protectionLevel);
      record.faultsInjected = rv.faultsInjected;
      record.injectRetries = rv.injectRetries;
      record.quarantinedHooks = rv.quarantinedHooks;
      record.missedDescendants = rv.missedDescendants;
      record.reinjectedDescendants = rv.reinjectedDescendants;
      record.ipcMessagesDropped = rv.ipcMessagesDropped;
    }
    if (worker.machine->hotTimers().anyArmed())
      for (const obs::HistogramSample& h :
           worker.machine->hotTimers().snapshot().histograms)
        record.hotTimers.push_back({h.name, h.p50, h.p95, h.p99});
    ledger_->append(std::move(record));
    if (result.ok())
      for (const obs::SloBreach& breach : result.outcome.sloBreaches) {
        obs::LedgerRecord b;
        b.kind = obs::LedgerRecordKind::kBreach;
        b.shard = label;
        b.windowId = breach.windowId;
        b.rule = breach.rule;
        b.observed = obs::renderMilli(breach.observedMilli);
        b.threshold = obs::renderMilli(breach.thresholdMilli);
        ledger_->append(std::move(b));
      }
  }

  completeJob(worker, std::move(result));
}

void EvalService::completeJob(Worker& worker, ServiceResult result) {
  (void)worker;
  // Subscribers see the result before poll()/wait() can: snapshot the
  // callback list under the lock, invoke outside it so a callback may
  // submit() follow-up work without deadlocking.
  std::vector<ResultCallback> callbacks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    callbacks.reserve(subscribers_.size());
    for (const auto& [slot, callback] : subscribers_)
      if (callback) callbacks.push_back(callback);
  }
  for (const ResultCallback& callback : callbacks) callback(result);

  std::lock_guard<std::mutex> lock(mutex_);
  if (options_.tenantTokens != 0) {
    auto it = tenantOutstanding_.find(result.tenant);
    if (it != tenantOutstanding_.end() && --it->second == 0)
      tenantOutstanding_.erase(it);
  }
  live_.erase(result.ticketId);
  ++completed_;
  if (result.status == BatchStatus::kFailed) ++failed_;
  if (result.status == BatchStatus::kTimedOut) ++timedOut_;
  telemetryDirty_ = true;
  if (options_.retainResults) {
    const std::uint64_t id = result.ticketId;
    results_.emplace(id, std::move(result));
  }
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  doneCv_.notify_all();
}

std::optional<ServiceResult> EvalService::poll(const Ticket& ticket) {
  if (!ticket.admitted()) return std::nullopt;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = results_.find(ticket.id);
  if (it == results_.end()) return std::nullopt;
  ServiceResult result = std::move(it->second);
  results_.erase(it);
  return result;
}

std::optional<ServiceResult> EvalService::wait(const Ticket& ticket) {
  if (!ticket.admitted()) return std::nullopt;
  std::unique_lock<std::mutex> lock(mutex_);
  doneCv_.wait(lock, [&] { return live_.count(ticket.id) == 0; });
  auto it = results_.find(ticket.id);
  if (it == results_.end()) return std::nullopt;
  ServiceResult result = std::move(it->second);
  results_.erase(it);
  return result;
}

void EvalService::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  doneCv_.wait(lock, [&] { return live_.empty(); });
}

std::size_t EvalService::subscribe(ResultCallback callback) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t slot = nextSubscriberSlot_++;
  subscribers_.emplace_back(slot, std::move(callback));
  return slot;
}

void EvalService::unsubscribe(std::size_t slot) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [id, callback] : subscribers_)
    if (id == slot) callback = nullptr;
}

void EvalService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shuttingDown_ = true;
    for (auto& shard : shardStates_) shard->cv.notify_all();
  }
  for (auto& worker : workers_)
    if (worker->thread.joinable()) worker->thread.join();
  flushTelemetry();
}

ServiceStats EvalService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServiceStats s;
  s.submitted = submitted_;
  s.admitted = admitted_;
  s.rejectedQueueFull = rejectedQueueFull_;
  s.rejectedTenant = rejectedTenant_;
  s.rejectedShutdown = rejectedShutdown_;
  s.completed = completed_;
  s.failed = failed_;
  s.timedOut = timedOut_;
  s.retried = retried_.load(std::memory_order_relaxed);
  s.stalled = stalled_.load(std::memory_order_relaxed);
  s.inflight = inflight_.load(std::memory_order_relaxed);
  s.inflightPeak = inflightPeak_.load(std::memory_order_relaxed);
  s.queueDepthPeak = queueDepthPeak_;
  s.resultsPending = results_.size();
  s.workerHeartbeats.reserve(workers_.size());
  for (const auto& worker : workers_)
    s.workerHeartbeats.push_back(
        worker->heartbeat.load(std::memory_order_relaxed));
  s.shardQueueDepths.reserve(shardStates_.size());
  for (const auto& shard : shardStates_) {
    s.shardQueueDepths.push_back(shard->queue.size());
    s.queued += shard->queue.size();
  }
  return s;
}

void EvalService::setResourceDbFactory(
    EvaluationHarness::DbFactory dbFactory) {
  for (auto& worker : workers_)
    worker->harness->setResourceDbFactory(dbFactory);
}

obs::MetricsSnapshot EvalService::fleetTelemetry() const {
  obs::MetricsSnapshot merged;
  for (const obs::MetricsSnapshot& worker : workerTelemetry_)
    merged.merge(worker);
  return merged;
}

void EvalService::flushTelemetry() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!telemetryDirty_) return;
    telemetryDirty_ = false;
  }
  // Replay stall events into the service-level recorder in global worker
  // order: the FlightRecorder is single-writer, so workers collected
  // locally and the merge happens here, while the pool is idle.
  healthEvents_.clear();
  for (const auto& worker : workers_)
    for (const obs::DecisionEvent& event : worker->stallEvents)
      healthEvents_.record(event);

  const std::uint64_t inflightPeak =
      inflightPeak_.load(std::memory_order_relaxed);
  workerTelemetry_.clear();
  workerTelemetry_.reserve(workers_.size());
  for (const auto& workerPtr : workers_) {
    const Worker& worker = *workerPtr;
    obs::MetricsRegistry accounting;
    accounting.counter("batch.requests").inc(worker.requests);
    accounting.counter("batch.retries").inc(worker.retries);
    accounting.counter("batch.timeouts").inc(worker.timeouts);
    accounting.counter("batch.failures").inc(worker.failures);
    accounting.counter("batch.degraded").inc(worker.degraded);
    accounting.counter("batch.stalled").inc(worker.stalls);
    accounting.counter("batch.wall_us").inc(worker.wallMicros);
    // Liveness gauges. Heartbeats are labelled per worker; the inflight
    // peak is the same global value in every snapshot, so the gauge-max
    // merge rule reproduces it unchanged at the fleet level.
    accounting
        .gauge("batch.worker_heartbeat",
               "worker-" + std::to_string(worker.globalIndex))
        .set(static_cast<std::int64_t>(
            worker.heartbeat.load(std::memory_order_relaxed)));
    accounting.gauge("batch.inflight_peak")
        .set(static_cast<std::int64_t>(inflightPeak));
    obs::MetricsSnapshot snapshot = worker.telemetry;
    snapshot.merge(accounting.snapshot());
    workerTelemetry_.push_back(std::move(snapshot));
  }

  // Worker summary records, written in global worker order while idle:
  // obs::reconstructFleetTelemetry folds these back into the exact bytes
  // fleetTelemetry() produces.
  if (ledger_ != nullptr)
    for (const auto& workerPtr : workers_) {
      const Worker& worker = *workerPtr;
      obs::LedgerRecord record;
      record.kind = obs::LedgerRecordKind::kWorker;
      record.shard = shardStates_[worker.shard]->recordLabel;
      record.workerIndex = worker.globalIndex;
      record.snapshot = workerTelemetry_[worker.globalIndex];
      ledger_->append(std::move(record));
    }
}

void EvalService::resetTelemetry() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& worker : workers_) {
    worker->telemetry = obs::MetricsSnapshot{};
    worker->requests = worker->retries = worker->timeouts =
        worker->failures = worker->degraded = worker->wallMicros =
            worker->stalls = 0;
    worker->stallEvents.clear();
    worker->heartbeat.store(0, std::memory_order_relaxed);
  }
  healthEvents_.clear();
  workerTelemetry_.clear();
  // A fresh epoch makes any previously flushed view stale: the next
  // flushTelemetry() must rebuild (and re-ledger) even if the epoch ends
  // with zero completions — an empty corpus still reports zeroed workers.
  telemetryDirty_ = true;
  epochBaseTicket_ = nextTicketId_;
  submitted_ = admitted_ = 0;
  rejectedQueueFull_ = rejectedTenant_ = rejectedShutdown_ = 0;
  completed_ = failed_ = timedOut_ = 0;
  queueDepthPeak_ = 0;
  inflightPeak_.store(0, std::memory_order_relaxed);
  retried_.store(0, std::memory_order_relaxed);
  stalled_.store(0, std::memory_order_relaxed);
}

}  // namespace scarecrow::core
