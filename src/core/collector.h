// Public-sandbox resource collection (paper Section II-C).
//
// The paper submits a crawler binary to VirusTotal and Malwr; it enumerates
// files, processes and registry keys inside the sandbox guest and ships the
// inventory home. Diffing against a clean bare-metal inventory yields the
// resources that exist *only* in sandboxes — 17,540 files, 24 processes and
// 1,457 registry entries — which are merged into the deception database
// under Profile::kCrawled. A second feed turns MalGene evasion signatures
// (trace/malgene.h) into new deceptive resources.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "core/resource_db.h"
#include "trace/malgene.h"
#include "winapi/guest.h"
#include "winsys/machine.h"

namespace scarecrow::core {

/// Everything the crawler can see from user level on one machine.
struct ResourceInventory {
  std::set<std::string> files;         // lower-case full paths
  std::set<std::string> processes;     // lower-case image names
  std::set<std::string> registryKeys;  // lower-case full key paths
};

/// Resources present in at least one sandbox inventory but not in the
/// clean reference.
struct CrawlDiff {
  std::vector<std::string> files;
  std::vector<std::string> processes;
  std::vector<std::string> registryKeys;
};

/// The crawler guest program: walks C:\, the process list, and the HKLM /
/// HKCU hives through ordinary user-level APIs (exactly what a submitted
/// binary could do).
class CrawlerProgram : public winapi::GuestProgram {
 public:
  explicit CrawlerProgram(ResourceInventory& out) : out_(out) {}
  void run(winapi::Api& api) override;

 private:
  ResourceInventory& out_;
};

class SandboxResourceCollector {
 public:
  /// Runs the crawler on one machine and returns its inventory.
  static ResourceInventory crawl(winsys::Machine& machine);

  /// union(sandboxInventories) \ cleanReference.
  static CrawlDiff diff(const std::vector<ResourceInventory>& sandboxes,
                        const ResourceInventory& cleanReference);

  /// Merges a diff into the deception database as crawled resources.
  static void merge(ResourceDb& db, const CrawlDiff& diff);

  /// Continuous-learning feed: converts a MalGene evasion signature (the
  /// resource whose probe made the traces deviate) into a deceptive
  /// resource. Returns true if the signature mapped to a resource class we
  /// can deceive.
  static bool mergeEvasionSignature(ResourceDb& db,
                                    const trace::EvasionSignature& signature);
};

}  // namespace scarecrow::core
