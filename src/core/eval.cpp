#include "core/eval.h"

#include "env/environments.h"
#include "obs/export.h"
#include "obs/span.h"
#include "obs/trace_export.h"
#include "support/log.h"
#include "support/strings.h"

namespace scarecrow::core {

EvaluationHarness::EvaluationHarness(winsys::Machine& machine)
    : machine_(machine), snapshot_(machine.snapshot()) {}

trace::Trace EvaluationHarness::runOnce(
    const std::string& sampleId, const std::string& imagePath,
    const winapi::ProgramFactory& factory, bool withScarecrow,
    const Config& config, std::uint64_t budgetMs, std::string* firstTrigger,
    std::uint32_t* selfSpawnAlerts, std::uint64_t* firstTriggerCorrelation) {
  obs::MetricsRegistry& metrics = machine_.metrics();
  obs::FlightRecorder& flight = machine_.flightRecorder();
  if (flight.capacity() != config.flightRecorderCapacity)
    flight.setCapacity(config.flightRecorderCapacity);
  // Phase transitions are decision events too: they anchor the causal
  // chains to the pipeline stage they happened in.
  const auto notePhase = [&](const char* name) {
    obs::DecisionEvent e;
    e.timeMs = machine_.clock().nowMs();
    e.kind = obs::DecisionKind::kPhase;
    e.api = name;
    flight.record(std::move(e));
  };
  notePhase(withScarecrow ? "eval.run.supervised" : "eval.run.reference");
  obs::ScopedSpan runSpan(metrics, machine_.clock(),
                          withScarecrow ? "eval.run.supervised"
                                        : "eval.run.reference");
  {
    notePhase("eval.restore");
    obs::ScopedSpan span(metrics, machine_.clock(), "eval.restore");
    machine_.restore(snapshot_);
  }
  machine_.recorder().setSampleId(sampleId);
  machine_.recorder().setScarecrowEnabled(withScarecrow);

  // The agent materializes the submitted binary on disk before launching it
  // (payloads like CopySelf/DeleteSelf reference the image file).
  machine_.vfs().createFile(imagePath, 1 << 20, machine_.clock().nowMs());

  winapi::UserSpace userspace;
  userspace.programFactory = factory;
  winapi::Runner runner(machine_, userspace);
  winapi::RunOptions options;
  options.budgetMs = budgetMs;

  if (withScarecrow) {
    DeceptionEngine engine(config,
                           dbFactory_ ? dbFactory_()
                                      : buildDefaultResourceDb());
    Controller controller(machine_, userspace, engine);
    {
      notePhase("eval.inject");
      obs::ScopedSpan span(metrics, machine_.clock(), "eval.inject");
      controller.launch(imagePath);
    }
    {
      notePhase("eval.execute");
      obs::ScopedSpan span(metrics, machine_.clock(), "eval.execute");
      runner.drain(options);
    }
    {
      notePhase("eval.ipc_pump");
      obs::ScopedSpan span(metrics, machine_.clock(), "eval.ipc_pump");
      controller.pump();
    }
    if (firstTrigger != nullptr) *firstTrigger = controller.firstTrigger();
    if (selfSpawnAlerts != nullptr)
      *selfSpawnAlerts = controller.selfSpawnAlerts();
    if (firstTriggerCorrelation != nullptr)
      *firstTriggerCorrelation = controller.firstTriggerCorrelation();
  } else {
    // The cluster's analysis agent launches the sample (Figure 3).
    options.parentPid = env::sandboxAgentPid(machine_);
    notePhase("eval.execute");
    obs::ScopedSpan span(metrics, machine_.clock(), "eval.execute");
    runner.run(imagePath, options);
  }
  notePhase("eval.trace_upload");
  obs::ScopedSpan span(metrics, machine_.clock(), "eval.trace_upload");
  return machine_.recorder().takeTrace();
}

EvalOutcome EvaluationHarness::evaluate(const std::string& sampleId,
                                        const std::string& imagePath,
                                        const winapi::ProgramFactory& factory,
                                        const Config& config,
                                        std::uint64_t budgetMs) {
  // Normalize the clock to the snapshot state, then zero the telemetry
  // ledger and the decision trace: everything recorded from here on is a
  // pure function of (sample, config), which is what makes the exports
  // (telemetry JSON, Perfetto trace, attribution chain) reproducible.
  machine_.restore(snapshot_);
  machine_.metrics().reset();
  machine_.flightRecorder().clear();

  EvalOutcome outcome;
  std::uint64_t triggerCorrelation = 0;
  outcome.traceWithout =
      runOnce(sampleId, imagePath, factory, false, config, budgetMs);
  outcome.traceWith =
      runOnce(sampleId, imagePath, factory, true, config, budgetMs,
              &outcome.firstTrigger, &outcome.selfSpawnAlerts,
              &triggerCorrelation);
  outcome.verdict = trace::judgeDeactivation(
      outcome.traceWithout, outcome.traceWith,
      support::baseName(imagePath));

  // Close the causal loop: the verdict joins the first trigger's chain, so
  // attribution can walk recorder → verdict without consulting the traces.
  {
    obs::DecisionEvent v;
    v.timeMs = machine_.clock().nowMs();
    v.kind = obs::DecisionKind::kVerdict;
    v.correlationId = triggerCorrelation;
    v.api = outcome.verdict.firstTrigger;
    v.value = outcome.verdict.deactivated ? "deactivated" : "not-deactivated";
    v.link = trace::deactivationReasonName(outcome.verdict.reason);
    machine_.flightRecorder().record(std::move(v));
  }
  outcome.decisions = machine_.flightRecorder().snapshot();
  outcome.droppedDecisions = machine_.flightRecorder().droppedCount();
  outcome.attribution = attributeTrigger(outcome.decisions);
  outcome.telemetry = machine_.metrics().snapshot();
  outcome.telemetryJson = obs::exportJson(outcome.telemetry);
  outcome.perfettoJson = obs::exportChromeTrace(
      outcome.telemetry, outcome.decisions, outcome.droppedDecisions);
  support::logDebug("eval", "telemetry captured",
                    {{"sample", sampleId},
                     {"counters", outcome.telemetry.counters.size()},
                     {"spans", outcome.telemetry.spans.size()},
                     {"decisions", outcome.decisions.size()},
                     {"decisions_dropped", outcome.droppedDecisions},
                     {"alerts",
                      outcome.telemetry.counterValue("engine.alerts")}});
  return outcome;
}

}  // namespace scarecrow::core
