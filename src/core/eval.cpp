#include "core/eval.h"

#include "env/environments.h"
#include "faults/fault_injector.h"
#include "obs/export.h"
#include "obs/span.h"
#include "support/log.h"
#include "support/strings.h"

namespace scarecrow::core {

EvaluationHarness::EvaluationHarness(winsys::Machine& machine)
    : machine_(machine), snapshot_(machine.snapshot()) {}

RunResult EvaluationHarness::runOnce(const EvalRequest& request,
                                     bool withScarecrow) {
  // Environment fallbacks resolve once, up front (explicit field > env >
  // default — Config::withEnvDefaults); everything below sees one settled
  // configuration instead of consulting the environment piecemeal.
  const Config config = request.config.withEnvDefaults();
  RunResult result;
  obs::MetricsRegistry& metrics = machine_.metrics();
  obs::FlightRecorder& flight = machine_.flightRecorder();
  if (flight.capacity() != config.flightRecorderCapacity)
    flight.setCapacity(config.flightRecorderCapacity);
  // Phase transitions are decision events too: they anchor the causal
  // chains to the pipeline stage they happened in.
  const auto notePhase = [&](const char* name) {
    obs::DecisionEvent e;
    e.timeMs = machine_.clock().nowMs();
    e.kind = obs::DecisionKind::kPhase;
    e.api = name;
    flight.record(std::move(e));
  };
  notePhase(withScarecrow ? "eval.run.supervised" : "eval.run.reference");
  obs::ScopedSpan runSpan(metrics, machine_.clock(),
                          withScarecrow ? "eval.run.supervised"
                                        : "eval.run.reference");
  {
    notePhase("eval.restore");
    obs::ScopedSpan span(metrics, machine_.clock(), "eval.restore");
    machine_.restore(snapshot_);
  }
  machine_.recorder().setSampleId(request.sampleId);
  machine_.recorder().setScarecrowEnabled(withScarecrow);

  // The agent materializes the submitted binary on disk before launching it
  // (payloads like CopySelf/DeleteSelf reference the image file).
  machine_.vfs().createFile(request.imagePath, 1 << 20,
                            machine_.clock().nowMs());

  winapi::UserSpace userspace;
  userspace.programFactory = request.factory;
  winapi::Runner runner(machine_, userspace);
  winapi::RunOptions options;
  options.budgetMs = request.budgetMs;

  if (withScarecrow) {
    // Precedence: the request's own factory (covering routing) > the
    // harness-level override (profile ablations) > the default database.
    DeceptionEngine engine(config,
                           request.dbFactory ? request.dbFactory()
                           : dbFactory_     ? dbFactory_()
                                            : buildDefaultResourceDb());
    Controller controller(machine_, userspace, engine);
    // The fault injector lives exactly as long as this supervised run and
    // is seeded solely from config.faultPlan — a worker replaying the same
    // (sample, config) pair replays the same fault schedule byte for byte.
    faults::FaultInjector injector(config.faultPlan);
    if (injector.anyArmed()) {
      injector.bind(&metrics, &flight, &machine_.clock());
      engine.setFaultInjector(&injector);
      controller.setFaultInjector(&injector);
    }
    // Streaming telemetry (DESIGN.md §13): re-arm the plane for this run —
    // window ids become a pure function of the run — and stand up the SLO
    // engine when rules are configured. Config wins over the environment
    // for both the window length and the rule set; a zero-interval plane
    // stays disabled and costs nothing below.
    obs::TimeSeriesPlane& plane = machine_.timeSeries();
    plane.configure({.intervalMs = config.telemetryWindowMs != 0
                                       ? config.telemetryWindowMs
                                       : plane.intervalMs(),
                     .windowCapacity = config.telemetryWindowCapacity});
    obs::SloEngine slo;
    std::size_t sloSlot = static_cast<std::size_t>(-1);
    const std::string& sloSpec = config.sloSpec;
    if (plane.enabled() && !sloSpec.empty()) {
      slo.addRules(sloSpec);  // malformed specs throw before the run starts
      slo.bind(&metrics, &flight);
      if (config.sloArmsDegradation)
        slo.setBreachAction([&engine](const obs::SloBreach& breach) {
          const faults::ProtectionLevel next =
              engine.protectionLevel() ==
                      faults::ProtectionLevel::kFullDeception
                  ? faults::ProtectionLevel::kPartialDeception
                  : faults::ProtectionLevel::kMonitorOnly;
          engine.degradeTo(next, "slo breach: " + breach.rule);
        });
      sloSlot = plane.addWindowObserver([this,
                                         &slo](const obs::TimeSeriesPlane& p) {
        slo.onWindowClosed(p, machine_.clock().nowMs());
      });
    }
    {
      notePhase("eval.inject");
      obs::ScopedSpan span(metrics, machine_.clock(), "eval.inject");
      controller.launch(request.imagePath);
    }
    {
      notePhase("eval.execute");
      obs::ScopedSpan span(metrics, machine_.clock(), "eval.execute");
      runner.drain(options);
    }
    {
      notePhase("eval.ipc_pump");
      obs::ScopedSpan span(metrics, machine_.clock(), "eval.ipc_pump");
      controller.pump();
    }
    result.firstTrigger = controller.firstTrigger();
    result.selfSpawnAlerts = controller.selfSpawnAlerts();
    result.firstTriggerCorrelation = controller.firstTriggerCorrelation();

    ResilienceVerdict& rv = result.resilience;
    rv.protectionLevel = controller.injectionSucceeded()
                             ? engine.protectionLevel()
                             : faults::ProtectionLevel::kMonitorOnly;
    rv.faultsInjected =
        static_cast<std::uint32_t>(injector.totalFires());
    rv.injectRetries = controller.injectRetries();
    rv.hookInstallFailures = engine.hookInstallFailures();
    rv.quarantinedHooks =
        static_cast<std::uint32_t>(engine.quarantinedHooks().size());
    rv.missedDescendants = controller.missedDescendants();
    rv.reinjectedDescendants = controller.reinjectedDescendants();
    rv.ipcMessagesDropped = engine.ipc().droppedTotal();
    if (rv.degraded() || rv.faultsInjected > 0)
      metrics
          .gauge("resilience.protection_level",
                 faults::protectionLevelName(rv.protectionLevel))
          .set(static_cast<std::int64_t>(rv.protectionLevel));
    // End-of-run flush: the final partial window reaches the observers
    // (the SLO engine sees sparse-activity runs too), then the observer is
    // released — `slo` dies with this block.
    plane.flush(metrics.snapshot(), machine_.clock().nowMs());
    if (sloSlot != static_cast<std::size_t>(-1))
      plane.removeWindowObserver(sloSlot);
    result.sloBreaches = slo.breaches();
    // The ladder may have moved after the verdict was captured (a breach
    // in the flush window); report the final rung.
    if (controller.injectionSucceeded())
      result.resilience.protectionLevel = engine.protectionLevel();
  } else {
    // The cluster's analysis agent launches the sample (Figure 3).
    options.parentPid = env::sandboxAgentPid(machine_);
    notePhase("eval.execute");
    obs::ScopedSpan span(metrics, machine_.clock(), "eval.execute");
    runner.run(request.imagePath, options);
  }
  notePhase("eval.trace_upload");
  obs::ScopedSpan span(metrics, machine_.clock(), "eval.trace_upload");
  result.trace = machine_.recorder().takeTrace();
  return result;
}

EvalOutcome EvaluationHarness::evaluate(const EvalRequest& request) {
  // Normalize the clock to the snapshot state, then wipe the telemetry
  // ledger and the decision trace — identities included, so leftover
  // zero-valued metrics from earlier samples cannot leak into this
  // evaluation's exports. Everything recorded from here on is a pure
  // function of (sample, config), which is what makes the exports
  // (telemetry JSON, Perfetto trace, attribution chain) reproducible and
  // lets a BatchEvaluator worker emit the same bytes as a serial sweep.
  machine_.restore(snapshot_);
  machine_.resetTelemetry();

  EvalOutcome outcome;
  outcome.traceWithout = runOnce(request, false).trace;
  RunResult supervised = runOnce(request, true);
  outcome.traceWith = std::move(supervised.trace);
  outcome.firstTrigger = std::move(supervised.firstTrigger);
  outcome.selfSpawnAlerts = supervised.selfSpawnAlerts;
  outcome.resilience = supervised.resilience;
  outcome.sloBreaches = std::move(supervised.sloBreaches);
  const std::uint64_t triggerCorrelation =
      supervised.firstTriggerCorrelation;
  outcome.verdict = trace::judgeDeactivation(
      outcome.traceWithout, outcome.traceWith,
      support::baseName(request.imagePath));

  // Close the causal loop: the verdict joins the first trigger's chain, so
  // attribution can walk recorder → verdict without consulting the traces.
  {
    obs::DecisionEvent v;
    v.timeMs = machine_.clock().nowMs();
    v.kind = obs::DecisionKind::kVerdict;
    v.correlationId = triggerCorrelation;
    v.api = outcome.verdict.firstTrigger;
    v.value = outcome.verdict.deactivated ? "deactivated" : "not-deactivated";
    v.link = trace::deactivationReasonName(outcome.verdict.reason);
    machine_.flightRecorder().record(std::move(v));
  }
  outcome.decisions = machine_.flightRecorder().snapshot();
  outcome.droppedDecisions = machine_.flightRecorder().droppedCount();
  outcome.attribution = attributeTrigger(outcome.decisions);
  outcome.telemetry = machine_.metrics().snapshot();
  outcome.telemetryJson =
      obs::Exporter(obs::ExportFormat::kJson).render(outcome.telemetry);
  outcome.perfettoJson =
      obs::Exporter(obs::ExportFormat::kChromeTrace)
          .withDecisions(outcome.decisions, outcome.droppedDecisions)
          .render(outcome.telemetry);
  support::logDebug("eval", "telemetry captured",
                    {{"sample", request.sampleId},
                     {"counters", outcome.telemetry.counters.size()},
                     {"spans", outcome.telemetry.spans.size()},
                     {"decisions", outcome.decisions.size()},
                     {"decisions_dropped", outcome.droppedDecisions},
                     {"alerts",
                      outcome.telemetry.counterValue("engine.alerts")}});
  return outcome;
}

}  // namespace scarecrow::core
