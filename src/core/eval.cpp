#include "core/eval.h"

#include "env/environments.h"
#include "support/strings.h"

namespace scarecrow::core {

EvaluationHarness::EvaluationHarness(winsys::Machine& machine)
    : machine_(machine), snapshot_(machine.snapshot()) {}

trace::Trace EvaluationHarness::runOnce(
    const std::string& sampleId, const std::string& imagePath,
    const winapi::ProgramFactory& factory, bool withScarecrow,
    const Config& config, std::uint64_t budgetMs, std::string* firstTrigger,
    std::uint32_t* selfSpawnAlerts) {
  machine_.restore(snapshot_);
  machine_.recorder().setSampleId(sampleId);
  machine_.recorder().setScarecrowEnabled(withScarecrow);

  // The agent materializes the submitted binary on disk before launching it
  // (payloads like CopySelf/DeleteSelf reference the image file).
  machine_.vfs().createFile(imagePath, 1 << 20, machine_.clock().nowMs());

  winapi::UserSpace userspace;
  userspace.programFactory = factory;
  winapi::Runner runner(machine_, userspace);
  winapi::RunOptions options;
  options.budgetMs = budgetMs;

  if (withScarecrow) {
    DeceptionEngine engine(config,
                           dbFactory_ ? dbFactory_()
                                      : buildDefaultResourceDb());
    Controller controller(machine_, userspace, engine);
    controller.launch(imagePath);
    runner.drain(options);
    controller.pump();
    if (firstTrigger != nullptr) *firstTrigger = controller.firstTrigger();
    if (selfSpawnAlerts != nullptr)
      *selfSpawnAlerts = controller.selfSpawnAlerts();
  } else {
    // The cluster's analysis agent launches the sample (Figure 3).
    options.parentPid = env::sandboxAgentPid(machine_);
    runner.run(imagePath, options);
  }
  return machine_.recorder().takeTrace();
}

EvalOutcome EvaluationHarness::evaluate(const std::string& sampleId,
                                        const std::string& imagePath,
                                        const winapi::ProgramFactory& factory,
                                        const Config& config,
                                        std::uint64_t budgetMs) {
  EvalOutcome outcome;
  outcome.traceWithout =
      runOnce(sampleId, imagePath, factory, false, config, budgetMs);
  outcome.traceWith =
      runOnce(sampleId, imagePath, factory, true, config, budgetMs,
              &outcome.firstTrigger, &outcome.selfSpawnAlerts);
  outcome.verdict = trace::judgeDeactivation(
      outcome.traceWithout, outcome.traceWith,
      support::baseName(imagePath));
  return outcome;
}

}  // namespace scarecrow::core
