#include "core/eval.h"

#include "env/environments.h"
#include "obs/export.h"
#include "obs/span.h"
#include "support/log.h"
#include "support/strings.h"

namespace scarecrow::core {

EvaluationHarness::EvaluationHarness(winsys::Machine& machine)
    : machine_(machine), snapshot_(machine.snapshot()) {}

trace::Trace EvaluationHarness::runOnce(
    const std::string& sampleId, const std::string& imagePath,
    const winapi::ProgramFactory& factory, bool withScarecrow,
    const Config& config, std::uint64_t budgetMs, std::string* firstTrigger,
    std::uint32_t* selfSpawnAlerts) {
  obs::MetricsRegistry& metrics = machine_.metrics();
  obs::ScopedSpan runSpan(metrics, machine_.clock(),
                          withScarecrow ? "eval.run.supervised"
                                        : "eval.run.reference");
  {
    obs::ScopedSpan span(metrics, machine_.clock(), "eval.restore");
    machine_.restore(snapshot_);
  }
  machine_.recorder().setSampleId(sampleId);
  machine_.recorder().setScarecrowEnabled(withScarecrow);

  // The agent materializes the submitted binary on disk before launching it
  // (payloads like CopySelf/DeleteSelf reference the image file).
  machine_.vfs().createFile(imagePath, 1 << 20, machine_.clock().nowMs());

  winapi::UserSpace userspace;
  userspace.programFactory = factory;
  winapi::Runner runner(machine_, userspace);
  winapi::RunOptions options;
  options.budgetMs = budgetMs;

  if (withScarecrow) {
    DeceptionEngine engine(config,
                           dbFactory_ ? dbFactory_()
                                      : buildDefaultResourceDb());
    Controller controller(machine_, userspace, engine);
    {
      obs::ScopedSpan span(metrics, machine_.clock(), "eval.inject");
      controller.launch(imagePath);
    }
    {
      obs::ScopedSpan span(metrics, machine_.clock(), "eval.execute");
      runner.drain(options);
    }
    {
      obs::ScopedSpan span(metrics, machine_.clock(), "eval.ipc_pump");
      controller.pump();
    }
    if (firstTrigger != nullptr) *firstTrigger = controller.firstTrigger();
    if (selfSpawnAlerts != nullptr)
      *selfSpawnAlerts = controller.selfSpawnAlerts();
  } else {
    // The cluster's analysis agent launches the sample (Figure 3).
    options.parentPid = env::sandboxAgentPid(machine_);
    obs::ScopedSpan span(metrics, machine_.clock(), "eval.execute");
    runner.run(imagePath, options);
  }
  obs::ScopedSpan span(metrics, machine_.clock(), "eval.trace_upload");
  return machine_.recorder().takeTrace();
}

EvalOutcome EvaluationHarness::evaluate(const std::string& sampleId,
                                        const std::string& imagePath,
                                        const winapi::ProgramFactory& factory,
                                        const Config& config,
                                        std::uint64_t budgetMs) {
  // Normalize the clock to the snapshot state, then zero the telemetry
  // ledger: everything recorded from here on is a pure function of
  // (sample, config), which is what makes the export reproducible.
  machine_.restore(snapshot_);
  machine_.metrics().reset();

  EvalOutcome outcome;
  outcome.traceWithout =
      runOnce(sampleId, imagePath, factory, false, config, budgetMs);
  outcome.traceWith =
      runOnce(sampleId, imagePath, factory, true, config, budgetMs,
              &outcome.firstTrigger, &outcome.selfSpawnAlerts);
  outcome.verdict = trace::judgeDeactivation(
      outcome.traceWithout, outcome.traceWith,
      support::baseName(imagePath));
  outcome.telemetry = machine_.metrics().snapshot();
  outcome.telemetryJson = obs::exportJson(outcome.telemetry);
  support::logDebug("eval", "telemetry captured",
                    {{"sample", sampleId},
                     {"counters", outcome.telemetry.counters.size()},
                     {"spans", outcome.telemetry.spans.size()},
                     {"alerts",
                      outcome.telemetry.counterValue("engine.alerts")}});
  return outcome;
}

}  // namespace scarecrow::core
