#include "core/manifest.h"

#include <charconv>

#include "support/strings.h"

namespace scarecrow::core {
namespace {

constexpr const char* kHeader = "scarecrow-manifest v1";

const char* profileTag(Profile profile) { return profileName(profile); }

std::optional<Profile> profileFromTag(std::string_view tag) {
  for (int p = 0; p <= static_cast<int>(Profile::kCrawled); ++p)
    if (tag == profileName(static_cast<Profile>(p)))
      return static_cast<Profile>(p);
  return std::nullopt;
}

std::string encodeValue(const winsys::RegValue& value) {
  switch (value.type) {
    case winsys::RegType::kSz:
      return "sz:" + support::join(support::split(value.str, '\n'), ' ');
    case winsys::RegType::kDword: return "dword:" + std::to_string(value.num);
    case winsys::RegType::kQword: return "qword:" + std::to_string(value.num);
    case winsys::RegType::kBinary:
      return "bin:" + std::to_string(value.binarySize);
    case winsys::RegType::kMultiSz: return "multi:" + value.str;
  }
  return "sz:";
}

std::optional<winsys::RegValue> decodeValue(std::string_view text) {
  const auto colon = text.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  const std::string_view kind = text.substr(0, colon);
  const std::string payload(text.substr(colon + 1));
  if (kind == "sz") return winsys::RegValue::sz(payload);
  if (kind == "multi") {
    winsys::RegValue v;
    v.type = winsys::RegType::kMultiSz;
    v.str = payload;
    return v;
  }
  std::uint64_t number = 0;
  const auto result = std::from_chars(
      payload.data(), payload.data() + payload.size(), number);
  if (result.ec != std::errc{} ||
      result.ptr != payload.data() + payload.size())
    return std::nullopt;
  if (kind == "dword")
    return winsys::RegValue::dword(static_cast<std::uint32_t>(number));
  if (kind == "qword") return winsys::RegValue::qword(number);
  if (kind == "bin")
    return winsys::RegValue::binary(static_cast<std::uint32_t>(number));
  return std::nullopt;
}

bool parseBool(std::string_view text, bool& out) {
  if (text == "1") {
    out = true;
    return true;
  }
  if (text == "0") {
    out = false;
    return true;
  }
  return false;
}

bool parseU64(std::string_view text, std::uint64_t& out) {
  const auto result =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return result.ec == std::errc{} &&
         result.ptr == text.data() + text.size();
}

}  // namespace

std::string exportManifest(const Config& config, const ResourceDb& db) {
  std::string out = kHeader;
  out += '\n';

  auto flag = [&out](const char* name, bool value) {
    out += std::string("config ") + name + "=" + (value ? "1" : "0") + "\n";
  };
  auto number = [&out](const char* name, std::uint64_t value) {
    out += std::string("config ") + name + "=" + std::to_string(value) +
           "\n";
  };
  auto text = [&out](const char* name, const std::string& value) {
    out += std::string("config ") + name + "=" + value + "\n";
  };
  flag("software", config.softwareResources);
  flag("hardware", config.hardwareResources);
  flag("network", config.networkResources);
  flag("debugger", config.debuggerDeception);
  flag("weartear", config.wearTearExtension);
  flag("conflict_aware", config.conflictAwareProfiles);
  flag("mitigate_selfspawn", config.mitigateSelfSpawn);
  number("selfspawn_threshold", config.selfSpawnKillThreshold);
  flag("kernel", config.kernel.enabled);
  number("disk_total", config.hardware.diskTotalBytes);
  number("disk_free", config.hardware.diskFreeBytes);
  number("ram", config.hardware.ramBytes);
  number("cores", config.hardware.cpuCores);
  text("username", config.identity.userName);
  text("computername", config.identity.computerName);
  text("own_image", config.identity.ownImagePath);
  number("fake_uptime_ms", config.identity.fakeUptimeMs);
  number("sleep_percent", config.identity.sleepPercent);
  text("sinkhole_ip", config.sinkholeIp);

  db.forEachFile([&out](const std::string& path, Profile profile) {
    out += std::string("file ") + profileTag(profile) + " " + path + "\n";
  });
  db.forEachRegistryKey([&out](const std::string& path, Profile profile) {
    out += std::string("regkey ") + profileTag(profile) + " " + path + "\n";
  });
  db.forEachRegistryValue([&out](const std::string& keyPath,
                                 const std::string& valueName,
                                 const ResourceDb::ValueMatch& match) {
    out += std::string("regval ") + profileTag(match.profile) + " " +
           keyPath + "!" + valueName + " = " + encodeValue(match.value) +
           "\n";
  });
  for (const FakeProcess& process : db.fakeProcesses())
    out += std::string("process ") + profileTag(process.profile) + " " +
           process.imageName + "\n";
  db.forEachDll([&out](const std::string& name, Profile profile) {
    out += std::string("dll ") + profileTag(profile) + " " + name + "\n";
  });
  for (const FakeWindow& window : db.fakeWindows())
    out += std::string("window ") + profileTag(window.profile) + " " +
           window.className + "|" + window.title + "\n";
  return out;
}

std::optional<Manifest> importManifest(const std::string& text) {
  const auto lines = support::split(text, '\n');
  if (lines.empty() || lines[0] != kHeader) return std::nullopt;

  Manifest manifest;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.empty()) continue;
    const auto space = line.find(' ');
    if (space == std::string::npos) return std::nullopt;
    const std::string_view kind(line.data(), space);
    const std::string rest = line.substr(space + 1);

    if (kind == "config") {
      const auto eq = rest.find('=');
      if (eq == std::string::npos) return std::nullopt;
      const std::string key = rest.substr(0, eq);
      const std::string value = rest.substr(eq + 1);
      Config& c = manifest.config;
      bool b = false;
      std::uint64_t n = 0;
      if (key == "software" && parseBool(value, b)) c.softwareResources = b;
      else if (key == "hardware" && parseBool(value, b))
        c.hardwareResources = b;
      else if (key == "network" && parseBool(value, b))
        c.networkResources = b;
      else if (key == "debugger" && parseBool(value, b))
        c.debuggerDeception = b;
      else if (key == "weartear" && parseBool(value, b))
        c.wearTearExtension = b;
      else if (key == "conflict_aware" && parseBool(value, b))
        c.conflictAwareProfiles = b;
      else if (key == "mitigate_selfspawn" && parseBool(value, b))
        c.mitigateSelfSpawn = b;
      else if (key == "selfspawn_threshold" && parseU64(value, n))
        c.selfSpawnKillThreshold = static_cast<std::uint32_t>(n);
      else if (key == "kernel" && parseBool(value, b)) c.kernel.enabled = b;
      else if (key == "disk_total" && parseU64(value, n))
        c.hardware.diskTotalBytes = n;
      else if (key == "disk_free" && parseU64(value, n))
        c.hardware.diskFreeBytes = n;
      else if (key == "ram" && parseU64(value, n)) c.hardware.ramBytes = n;
      else if (key == "cores" && parseU64(value, n))
        c.hardware.cpuCores = static_cast<std::uint32_t>(n);
      else if (key == "username") c.identity.userName = value;
      else if (key == "computername") c.identity.computerName = value;
      else if (key == "own_image") c.identity.ownImagePath = value;
      else if (key == "fake_uptime_ms" && parseU64(value, n))
        c.identity.fakeUptimeMs = n;
      else if (key == "sleep_percent" && parseU64(value, n))
        c.identity.sleepPercent = static_cast<std::uint32_t>(n);
      else if (key == "sinkhole_ip") c.sinkholeIp = value;
      else return std::nullopt;  // unknown or malformed key
      continue;
    }

    // Resource rows: "<kind> <profile> <payload>".
    const auto space2 = rest.find(' ');
    if (space2 == std::string::npos) return std::nullopt;
    const auto profile = profileFromTag(rest.substr(0, space2));
    if (!profile.has_value()) return std::nullopt;
    const std::string payload = rest.substr(space2 + 1);
    if (payload.empty()) return std::nullopt;

    if (kind == "file") {
      manifest.db.addFile(payload, *profile);
    } else if (kind == "regkey") {
      manifest.db.addRegistryKey(payload, *profile);
    } else if (kind == "regval") {
      const auto eq = payload.find(" = ");
      const auto bang = payload.find('!');
      if (eq == std::string::npos || bang == std::string::npos ||
          bang > eq)
        return std::nullopt;
      const auto value = decodeValue(payload.substr(eq + 3));
      if (!value.has_value()) return std::nullopt;
      manifest.db.addRegistryValue(payload.substr(0, bang),
                                   payload.substr(bang + 1, eq - bang - 1),
                                   *value, *profile);
    } else if (kind == "process") {
      manifest.db.addProcess(payload, *profile);
    } else if (kind == "dll") {
      manifest.db.addDll(payload, *profile);
    } else if (kind == "window") {
      const auto pipe = payload.find('|');
      if (pipe == std::string::npos) return std::nullopt;
      manifest.db.addWindow(payload.substr(0, pipe),
                            payload.substr(pipe + 1), *profile);
    } else {
      return std::nullopt;  // unknown section
    }
  }
  return manifest;
}

}  // namespace scarecrow::core
