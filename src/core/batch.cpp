#include "core/batch.h"

#include <utility>

namespace scarecrow::core {

namespace {

/// Maps the batch knobs onto the single-shard ServiceOptions the façade
/// runs on.
ServiceOptions toServiceOptions(BatchOptions options) {
  ServiceOptions service;
  service.shardCount = 1;
  service.workersPerShard = options.workerCount;
  service.queueCapacity = 0;   // evaluateAll admits its whole corpus
  service.tenantTokens = 0;    // one caller, no fairness to arbitrate
  service.requestTimeoutMs = options.requestTimeoutMs;
  service.maxAttempts = options.maxAttempts;
  service.retainResults = true;
  service.telemetry = std::move(options.telemetry);
  return service;
}

}  // namespace

BatchEvaluator::BatchEvaluator(const MachineFactory& machineFactory,
                               BatchOptions options)
    : service_(std::make_unique<EvalService>(
          machineFactory, toServiceOptions(std::move(options)))) {}

BatchEvaluator::~BatchEvaluator() = default;

void BatchEvaluator::setResourceDbFactory(
    EvaluationHarness::DbFactory dbFactory) {
  service_->setResourceDbFactory(std::move(dbFactory));
}

std::vector<BatchResult> BatchEvaluator::evaluateAll(
    const std::vector<EvalRequest>& requests) {
  // One telemetry epoch per call: the accessors afterwards describe
  // exactly this corpus, as the in-place engine always did.
  service_->resetTelemetry();
  std::vector<Ticket> tickets;
  tickets.reserve(requests.size());
  for (const EvalRequest& request : requests)
    tickets.push_back(service_->submit(request));

  std::vector<BatchResult> results(requests.size());
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    // Unbounded queue, no tenant caps, service not shutting down: every
    // submission is admitted, so every ticket resolves exactly once.
    std::optional<ServiceResult> completed = service_->wait(tickets[i]);
    if (!completed.has_value()) continue;
    BatchResult& slot = results[i];
    slot.status = completed->status;
    slot.outcome = std::move(completed->outcome);
    slot.error = std::move(completed->error);
    slot.attempts = completed->attempts;
    slot.workerIndex = completed->workerIndex;
    slot.wallMicros = completed->wallMicros;
  }
  service_->flushTelemetry();
  return results;
}

std::size_t BatchEvaluator::workerCount() const noexcept {
  return service_->workerCount();
}

const std::vector<obs::MetricsSnapshot>& BatchEvaluator::workerTelemetry()
    const noexcept {
  return service_->workerTelemetry();
}

obs::MetricsSnapshot BatchEvaluator::mergedTelemetry() const {
  return service_->fleetTelemetry();
}

BatchProgress BatchEvaluator::progress() const {
  const ServiceStats stats = service_->stats();
  BatchProgress p;
  p.submitted = stats.submitted;
  p.completed = stats.completed;
  p.inflight = stats.inflight;
  p.inflightPeak = stats.inflightPeak;
  p.retried = stats.retried;
  p.stalled = stats.stalled;
  p.workerHeartbeats = stats.workerHeartbeats;
  return p;
}

const obs::FlightRecorder& BatchEvaluator::healthEvents() const noexcept {
  return service_->healthEvents();
}

const obs::LedgerWriter* BatchEvaluator::ledger() const noexcept {
  return service_->ledger();
}

}  // namespace scarecrow::core
