#include "core/batch.h"

#include <chrono>
#include <exception>
#include <utility>

#include "support/log.h"
#include "support/parallel.h"

namespace scarecrow::core {

namespace {

std::uint64_t nowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* batchStatusName(BatchStatus status) noexcept {
  switch (status) {
    case BatchStatus::kOk: return "ok";
    case BatchStatus::kFailed: return "failed";
    case BatchStatus::kTimedOut: return "timed-out";
  }
  return "?";
}

struct BatchEvaluator::Worker {
  std::unique_ptr<winsys::Machine> machine;
  std::unique_ptr<EvaluationHarness> harness;
  /// Merge of the worker's successful per-sample snapshots (this run).
  obs::MetricsSnapshot telemetry;
  /// Worker-level accounting, kept in a private registry so it lands in
  /// the snapshot with the same deterministic ordering as everything else.
  std::uint64_t requests = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t failures = 0;
  /// Successful samples whose ResilienceVerdict ended below full
  /// deception (fault plans at work).
  std::uint64_t degraded = 0;
  std::uint64_t wallMicros = 0;
  /// Machine virtual clock right after harness construction — the clean
  /// snapshot's clock. Every evaluation restores to it before running, so
  /// (clock after an attempt) − baseClockMs is the virtual time that
  /// attempt's supervised run consumed: the stall detector's input.
  std::uint64_t baseClockMs = 0;
  /// Attempts flagged by the stall detector this run.
  std::uint64_t stalls = 0;
  /// kStall events collected locally and replayed into healthEvents() in
  /// worker order once the pool joins (FlightRecorder is single-writer).
  std::vector<obs::DecisionEvent> stallEvents;
  /// Liveness tick: attempts finished by this worker (progress() reads it
  /// from other threads mid-run).
  std::atomic<std::uint64_t> heartbeat{0};
};

BatchEvaluator::BatchEvaluator(const MachineFactory& machineFactory,
                               BatchOptions options)
    : options_(options) {
  if (options_.workerCount == 0) options_.workerCount = 1;
  if (options_.maxAttempts == 0) options_.maxAttempts = 1;
  if (options_.ledgerPath.empty())
    options_.ledgerPath = obs::ledgerEnvPath();
  if (!options_.ledgerPath.empty())
    ledger_ = std::make_unique<obs::LedgerWriter>(obs::LedgerOptions{
        .path = options_.ledgerPath,
        .maxBytes = options_.ledgerMaxBytes,
        .maxRotatedFiles = options_.ledgerMaxRotatedFiles,
        .shard = options_.ledgerShard});
  workers_.reserve(options_.workerCount);
  for (std::size_t i = 0; i < options_.workerCount; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->machine = machineFactory();
    worker->machine->label += " #" + std::to_string(i);
    worker->harness = std::make_unique<EvaluationHarness>(*worker->machine);
    worker->baseClockMs = worker->machine->clock().nowMs();
    // Window records stream straight from each worker's time-series plane
    // (observers survive the per-run re-configure in runOnce). The writer
    // serializes concurrent appends at line granularity.
    if (ledger_ != nullptr) {
      obs::LedgerWriter* writer = ledger_.get();
      worker->machine->timeSeries().addWindowObserver(
          [writer](const obs::TimeSeriesPlane& plane) {
            const obs::WindowDelta& window = plane.windows().back();
            obs::LedgerRecord record;
            record.kind = obs::LedgerRecordKind::kWindow;
            record.windowId = window.windowId;
            record.startMs = window.startMs;
            record.endMs = window.endMs;
            record.snapshot = window.delta;
            writer->append(std::move(record));
          });
    }
    workers_.push_back(std::move(worker));
  }
}

BatchEvaluator::~BatchEvaluator() = default;

void BatchEvaluator::setResourceDbFactory(
    EvaluationHarness::DbFactory dbFactory) {
  for (auto& worker : workers_) worker->harness->setResourceDbFactory(dbFactory);
}

std::vector<BatchResult> BatchEvaluator::evaluateAll(
    const std::vector<EvalRequest>& requests) {
  std::vector<BatchResult> results(requests.size());
  for (auto& worker : workers_) {
    worker->telemetry = obs::MetricsSnapshot{};
    worker->requests = worker->retries = worker->timeouts = worker->failures =
        worker->degraded = worker->wallMicros = worker->stalls = 0;
    worker->stallEvents.clear();
    worker->heartbeat.store(0, std::memory_order_relaxed);
  }
  workerTelemetry_.clear();
  healthEvents_.clear();
  submitted_.store(requests.size(), std::memory_order_relaxed);
  completed_.store(0, std::memory_order_relaxed);
  inflight_.store(0, std::memory_order_relaxed);
  inflightPeak_.store(0, std::memory_order_relaxed);
  retried_.store(0, std::memory_order_relaxed);
  stalled_.store(0, std::memory_order_relaxed);

  // Workers drain the queue through an atomic cursor; each result slot is
  // written by exactly one worker, so the only cross-thread state is the
  // cursor itself.
  support::runOnWorkerPool(
      workers_.size(), requests.size(),
      [&](std::size_t workerIndex, std::size_t jobIndex) {
        Worker& worker = *workers_[workerIndex];
        const EvalRequest& request = requests[jobIndex];
        BatchResult& slot = results[jobIndex];
        slot.workerIndex = workerIndex;
        ++worker.requests;
        const std::uint64_t nowInflight =
            inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
        std::uint64_t peak = inflightPeak_.load(std::memory_order_relaxed);
        while (peak < nowInflight &&
               !inflightPeak_.compare_exchange_weak(
                   peak, nowInflight, std::memory_order_relaxed)) {
        }

        // The stall detector, shared by every attempt outcome: an attempt
        // whose supervised run consumed more virtual time than the budget
        // went that long without a heartbeat — flag it (kStall + counter)
        // but leave the attempt's result alone.
        const auto noteStall = [&](std::uint32_t attempt) {
          if (options_.stallBudgetMs == 0) return;
          const std::uint64_t nowMs = worker.machine->clock().nowMs();
          const std::uint64_t virtualMs =
              nowMs >= worker.baseClockMs ? nowMs - worker.baseClockMs : 0;
          if (virtualMs <= options_.stallBudgetMs) return;
          ++worker.stalls;
          stalled_.fetch_add(1, std::memory_order_relaxed);
          obs::DecisionEvent e;
          e.timeMs = nowMs;
          e.kind = obs::DecisionKind::kStall;
          e.api = request.sampleId;
          e.argument = "worker-" + std::to_string(workerIndex);
          e.value = std::to_string(virtualMs);
          e.link = "attempt-" + std::to_string(attempt);
          worker.stallEvents.push_back(std::move(e));
        };

        for (std::uint32_t attempt = 1; attempt <= options_.maxAttempts;
             ++attempt) {
          slot.attempts = attempt;
          if (attempt > 1) {
            ++worker.retries;
            retried_.fetch_add(1, std::memory_order_relaxed);
          }
          const std::uint64_t start = nowMicros();
          try {
            EvalOutcome outcome = worker.harness->evaluate(request);
            const std::uint64_t elapsed = nowMicros() - start;
            slot.wallMicros = elapsed;
            noteStall(attempt);
            worker.heartbeat.fetch_add(1, std::memory_order_relaxed);
            if (options_.requestTimeoutMs != 0 &&
                elapsed > options_.requestTimeoutMs * 1000) {
              // Cooperative timeout: the run already finished, but it blew
              // the wall budget — discard it like a failure so a stuck
              // configuration cannot silently monopolize a worker.
              ++worker.timeouts;
              slot.status = BatchStatus::kTimedOut;
              slot.error = "attempt took " + std::to_string(elapsed / 1000) +
                           " ms (budget " +
                           std::to_string(options_.requestTimeoutMs) + " ms)";
              continue;
            }
            slot.status = BatchStatus::kOk;
            slot.error.clear();
            slot.outcome = std::move(outcome);
            if (slot.outcome.resilience.degraded()) ++worker.degraded;
            worker.telemetry.merge(slot.outcome.telemetry);
            break;
          } catch (const std::exception& e) {
            slot.status = BatchStatus::kFailed;
            slot.error = e.what();
            slot.wallMicros = nowMicros() - start;
            noteStall(attempt);
            worker.heartbeat.fetch_add(1, std::memory_order_relaxed);
          } catch (...) {
            slot.status = BatchStatus::kFailed;
            slot.error = "non-standard exception";
            slot.wallMicros = nowMicros() - start;
            noteStall(attempt);
            worker.heartbeat.fetch_add(1, std::memory_order_relaxed);
          }
        }
        if (!slot.ok()) {
          ++worker.failures;
          worker.wallMicros += slot.wallMicros;
          support::logWarn("batch", "request failed",
                           {{"sample", request.sampleId},
                            {"status", batchStatusName(slot.status)},
                            {"attempts", slot.attempts},
                            {"error", slot.error}});
        }
        // Stream the finished request into the run ledger: content is
        // deterministic per request, only the line interleaving across
        // workers is not (readers are order-insensitive).
        if (ledger_ != nullptr) {
          obs::LedgerRecord record;
          record.kind = obs::LedgerRecordKind::kRun;
          record.requestIndex = jobIndex;
          record.sampleId = request.sampleId;
          record.status = batchStatusName(slot.status);
          record.attempts = slot.attempts;
          record.workerIndex = workerIndex;
          record.virtualMs = worker.machine->clock().nowMs();
          if (slot.ok()) {
            const EvalOutcome& outcome = slot.outcome;
            record.correlationId = outcome.attribution.correlationId;
            record.verdict = outcome.verdict.deactivated ? "deactivated"
                                                         : "not-deactivated";
            record.firstTrigger = outcome.verdict.firstTrigger;
            const ResilienceVerdict& rv = outcome.resilience;
            record.protection =
                faults::protectionLevelName(rv.protectionLevel);
            record.faultsInjected = rv.faultsInjected;
            record.injectRetries = rv.injectRetries;
            record.quarantinedHooks = rv.quarantinedHooks;
            record.missedDescendants = rv.missedDescendants;
            record.reinjectedDescendants = rv.reinjectedDescendants;
            record.ipcMessagesDropped = rv.ipcMessagesDropped;
          }
          if (worker.machine->hotTimers().anyArmed())
            for (const obs::HistogramSample& h :
                 worker.machine->hotTimers().snapshot().histograms)
              record.hotTimers.push_back({h.name, h.p50, h.p95, h.p99});
          ledger_->append(std::move(record));
          if (slot.ok())
            for (const obs::SloBreach& breach : slot.outcome.sloBreaches) {
              obs::LedgerRecord b;
              b.kind = obs::LedgerRecordKind::kBreach;
              b.windowId = breach.windowId;
              b.rule = breach.rule;
              b.observed = obs::renderMilli(breach.observedMilli);
              b.threshold = obs::renderMilli(breach.thresholdMilli);
              ledger_->append(std::move(b));
            }
        }
        inflight_.fetch_sub(1, std::memory_order_relaxed);
        completed_.fetch_add(1, std::memory_order_relaxed);
      });

  // Sum successful wall time after the fact (the in-loop accumulator only
  // tracked failed requests, whose outcomes carry no telemetry).
  for (const BatchResult& result : results)
    if (result.ok()) workers_[result.workerIndex]->wallMicros +=
        result.wallMicros;

  // Replay stall events into the batch-level recorder in worker order: the
  // FlightRecorder is single-writer, so workers collected locally and the
  // merge happens here, after the pool joined.
  for (const auto& worker : workers_)
    for (const obs::DecisionEvent& event : worker->stallEvents)
      healthEvents_.record(event);

  const std::uint64_t inflightPeak =
      inflightPeak_.load(std::memory_order_relaxed);
  workerTelemetry_.reserve(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const Worker& worker = *workers_[i];
    obs::MetricsRegistry accounting;
    accounting.counter("batch.requests").inc(worker.requests);
    accounting.counter("batch.retries").inc(worker.retries);
    accounting.counter("batch.timeouts").inc(worker.timeouts);
    accounting.counter("batch.failures").inc(worker.failures);
    accounting.counter("batch.degraded").inc(worker.degraded);
    accounting.counter("batch.stalled").inc(worker.stalls);
    accounting.counter("batch.wall_us").inc(worker.wallMicros);
    // Liveness gauges. Heartbeats are labelled per worker; the inflight
    // peak is the same global value in every snapshot, so the gauge-max
    // merge rule reproduces it unchanged at the corpus level.
    accounting.gauge("batch.worker_heartbeat", "worker-" + std::to_string(i))
        .set(static_cast<std::int64_t>(
            worker.heartbeat.load(std::memory_order_relaxed)));
    accounting.gauge("batch.inflight_peak")
        .set(static_cast<std::int64_t>(inflightPeak));
    obs::MetricsSnapshot snapshot = worker.telemetry;
    snapshot.merge(accounting.snapshot());
    workerTelemetry_.push_back(std::move(snapshot));
  }

  // Worker summary records, written in worker order after the pool joined:
  // obs::reconstructFleetTelemetry folds these back into the exact bytes
  // mergedTelemetry() produces.
  if (ledger_ != nullptr)
    for (std::size_t i = 0; i < workerTelemetry_.size(); ++i) {
      obs::LedgerRecord record;
      record.kind = obs::LedgerRecordKind::kWorker;
      record.workerIndex = i;
      record.snapshot = workerTelemetry_[i];
      ledger_->append(std::move(record));
    }
  return results;
}

BatchProgress BatchEvaluator::progress() const {
  BatchProgress p;
  p.submitted = submitted_.load(std::memory_order_relaxed);
  p.completed = completed_.load(std::memory_order_relaxed);
  p.inflight = inflight_.load(std::memory_order_relaxed);
  p.inflightPeak = inflightPeak_.load(std::memory_order_relaxed);
  p.retried = retried_.load(std::memory_order_relaxed);
  p.stalled = stalled_.load(std::memory_order_relaxed);
  p.workerHeartbeats.reserve(workers_.size());
  for (const auto& worker : workers_)
    p.workerHeartbeats.push_back(
        worker->heartbeat.load(std::memory_order_relaxed));
  return p;
}

obs::MetricsSnapshot BatchEvaluator::mergedTelemetry() const {
  obs::MetricsSnapshot merged;
  for (const obs::MetricsSnapshot& worker : workerTelemetry_)
    merged.merge(worker);
  return merged;
}

}  // namespace scarecrow::core
