#include "core/batch.h"

#include <chrono>
#include <exception>
#include <utility>

#include "support/log.h"
#include "support/parallel.h"

namespace scarecrow::core {

namespace {

std::uint64_t nowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* batchStatusName(BatchStatus status) noexcept {
  switch (status) {
    case BatchStatus::kOk: return "ok";
    case BatchStatus::kFailed: return "failed";
    case BatchStatus::kTimedOut: return "timed-out";
  }
  return "?";
}

struct BatchEvaluator::Worker {
  std::unique_ptr<winsys::Machine> machine;
  std::unique_ptr<EvaluationHarness> harness;
  /// Merge of the worker's successful per-sample snapshots (this run).
  obs::MetricsSnapshot telemetry;
  /// Worker-level accounting, kept in a private registry so it lands in
  /// the snapshot with the same deterministic ordering as everything else.
  std::uint64_t requests = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t failures = 0;
  /// Successful samples whose ResilienceVerdict ended below full
  /// deception (fault plans at work).
  std::uint64_t degraded = 0;
  std::uint64_t wallMicros = 0;
};

BatchEvaluator::BatchEvaluator(const MachineFactory& machineFactory,
                               BatchOptions options)
    : options_(options) {
  if (options_.workerCount == 0) options_.workerCount = 1;
  if (options_.maxAttempts == 0) options_.maxAttempts = 1;
  workers_.reserve(options_.workerCount);
  for (std::size_t i = 0; i < options_.workerCount; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->machine = machineFactory();
    worker->machine->label += " #" + std::to_string(i);
    worker->harness = std::make_unique<EvaluationHarness>(*worker->machine);
    workers_.push_back(std::move(worker));
  }
}

BatchEvaluator::~BatchEvaluator() = default;

void BatchEvaluator::setResourceDbFactory(
    EvaluationHarness::DbFactory dbFactory) {
  for (auto& worker : workers_) worker->harness->setResourceDbFactory(dbFactory);
}

std::vector<BatchResult> BatchEvaluator::evaluateAll(
    const std::vector<EvalRequest>& requests) {
  std::vector<BatchResult> results(requests.size());
  for (auto& worker : workers_) {
    worker->telemetry = obs::MetricsSnapshot{};
    worker->requests = worker->retries = worker->timeouts = worker->failures =
        worker->degraded = worker->wallMicros = 0;
  }
  workerTelemetry_.clear();

  // Workers drain the queue through an atomic cursor; each result slot is
  // written by exactly one worker, so the only cross-thread state is the
  // cursor itself.
  support::runOnWorkerPool(
      workers_.size(), requests.size(),
      [&](std::size_t workerIndex, std::size_t jobIndex) {
        Worker& worker = *workers_[workerIndex];
        const EvalRequest& request = requests[jobIndex];
        BatchResult& slot = results[jobIndex];
        slot.workerIndex = workerIndex;
        ++worker.requests;

        for (std::uint32_t attempt = 1; attempt <= options_.maxAttempts;
             ++attempt) {
          slot.attempts = attempt;
          if (attempt > 1) ++worker.retries;
          const std::uint64_t start = nowMicros();
          try {
            EvalOutcome outcome = worker.harness->evaluate(request);
            const std::uint64_t elapsed = nowMicros() - start;
            slot.wallMicros = elapsed;
            if (options_.requestTimeoutMs != 0 &&
                elapsed > options_.requestTimeoutMs * 1000) {
              // Cooperative timeout: the run already finished, but it blew
              // the wall budget — discard it like a failure so a stuck
              // configuration cannot silently monopolize a worker.
              ++worker.timeouts;
              slot.status = BatchStatus::kTimedOut;
              slot.error = "attempt took " + std::to_string(elapsed / 1000) +
                           " ms (budget " +
                           std::to_string(options_.requestTimeoutMs) + " ms)";
              continue;
            }
            slot.status = BatchStatus::kOk;
            slot.error.clear();
            slot.outcome = std::move(outcome);
            if (slot.outcome.resilience.degraded()) ++worker.degraded;
            worker.telemetry.merge(slot.outcome.telemetry);
            return;
          } catch (const std::exception& e) {
            slot.status = BatchStatus::kFailed;
            slot.error = e.what();
            slot.wallMicros = nowMicros() - start;
          } catch (...) {
            slot.status = BatchStatus::kFailed;
            slot.error = "non-standard exception";
            slot.wallMicros = nowMicros() - start;
          }
        }
        ++worker.failures;
        worker.wallMicros += slot.wallMicros;
        support::logWarn("batch", "request failed",
                         {{"sample", request.sampleId},
                          {"status", batchStatusName(slot.status)},
                          {"attempts", slot.attempts},
                          {"error", slot.error}});
      });

  // Sum successful wall time after the fact (the in-loop accumulator only
  // tracked failed requests, whose outcomes carry no telemetry).
  for (const BatchResult& result : results)
    if (result.ok()) workers_[result.workerIndex]->wallMicros +=
        result.wallMicros;

  workerTelemetry_.reserve(workers_.size());
  for (const auto& worker : workers_) {
    obs::MetricsRegistry accounting;
    accounting.counter("batch.requests").inc(worker->requests);
    accounting.counter("batch.retries").inc(worker->retries);
    accounting.counter("batch.timeouts").inc(worker->timeouts);
    accounting.counter("batch.failures").inc(worker->failures);
    accounting.counter("batch.degraded").inc(worker->degraded);
    accounting.counter("batch.wall_us").inc(worker->wallMicros);
    obs::MetricsSnapshot snapshot = worker->telemetry;
    snapshot.merge(accounting.snapshot());
    workerTelemetry_.push_back(std::move(snapshot));
  }
  return results;
}

obs::MetricsSnapshot BatchEvaluator::mergedTelemetry() const {
  obs::MetricsSnapshot merged;
  for (const obs::MetricsSnapshot& worker : workerTelemetry_)
    merged.merge(worker);
  return merged;
}

}  // namespace scarecrow::core
