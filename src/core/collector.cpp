#include "core/collector.h"

#include "support/strings.h"
#include "winapi/api.h"
#include "winapi/runner.h"

namespace scarecrow::core {

using support::istartsWith;
using support::toLower;

namespace {

void walkFiles(winapi::Api& api, const std::string& directory,
               ResourceInventory& out) {
  for (const std::string& name : api.FindFirstFileA(directory, "*")) {
    const std::string path = directory + "\\" + name;
    out.files.insert(toLower(path));
    const std::uint32_t attrs = api.GetFileAttributesA(path);
    if (attrs != winapi::Api::kInvalidFileAttributes && (attrs & 0x10) != 0)
      walkFiles(api, path, out);
  }
}

void walkRegistry(winapi::Api& api, const std::string& keyPath,
                  ResourceInventory& out, int depth) {
  if (depth > 16) return;
  std::string name;
  for (std::uint32_t i = 0;; ++i) {
    if (!winapi::ok(api.RegEnumKeyEx(keyPath, i, name))) break;
    const std::string child = keyPath + "\\" + name;
    out.registryKeys.insert(toLower(child));
    walkRegistry(api, child, out, depth + 1);
  }
}

}  // namespace

void CrawlerProgram::run(winapi::Api& api) {
  walkFiles(api, "C:", out_);
  for (const winapi::ProcessEntry& entry : api.CreateToolhelp32Snapshot())
    out_.processes.insert(toLower(entry.imageName));
  walkRegistry(api, "HKEY_LOCAL_MACHINE", out_, 0);
  walkRegistry(api, "HKEY_CURRENT_USER", out_, 0);
  api.ExitProcess(0);
}

ResourceInventory SandboxResourceCollector::crawl(winsys::Machine& machine) {
  ResourceInventory inventory;
  winapi::UserSpace userspace;
  userspace.programFactory = [&inventory](const std::string& image,
                                          const std::string&)
      -> std::unique_ptr<winapi::GuestProgram> {
    if (support::iendsWith(image, "crawler.exe"))
      return std::make_unique<CrawlerProgram>(inventory);
    return nullptr;
  };
  winapi::Runner runner(machine, userspace);
  winapi::RunOptions options;
  options.budgetMs = 3'600'000;  // crawling is slow; give it an hour
  runner.run("C:\\submission\\crawler.exe", options);
  // The submitted binary itself is not part of the environment.
  inventory.files.erase(toLower("C:\\submission\\crawler.exe"));
  return inventory;
}

CrawlDiff SandboxResourceCollector::diff(
    const std::vector<ResourceInventory>& sandboxes,
    const ResourceInventory& clean) {
  ResourceInventory unioned;
  for (const ResourceInventory& inv : sandboxes) {
    unioned.files.insert(inv.files.begin(), inv.files.end());
    unioned.processes.insert(inv.processes.begin(), inv.processes.end());
    unioned.registryKeys.insert(inv.registryKeys.begin(),
                                inv.registryKeys.end());
  }
  CrawlDiff out;
  for (const std::string& f : unioned.files)
    if (clean.files.find(f) == clean.files.end()) out.files.push_back(f);
  for (const std::string& p : unioned.processes)
    if (clean.processes.find(p) == clean.processes.end())
      out.processes.push_back(p);
  for (const std::string& k : unioned.registryKeys)
    if (clean.registryKeys.find(k) == clean.registryKeys.end())
      out.registryKeys.push_back(k);
  return out;
}

void SandboxResourceCollector::merge(ResourceDb& db, const CrawlDiff& diff) {
  for (const std::string& f : diff.files) db.addFile(f, Profile::kCrawled);
  for (const std::string& p : diff.processes)
    db.addProcess(p, Profile::kCrawled);
  for (const std::string& k : diff.registryKeys)
    db.addRegistryKey(k, Profile::kCrawled);
  db.crawled_ +=
      diff.files.size() + diff.processes.size() + diff.registryKeys.size();
}

bool SandboxResourceCollector::mergeEvasionSignature(
    ResourceDb& db, const trace::EvasionSignature& signature) {
  if (!signature.found) return false;
  // Signatures are "EventKind:resource" strings (trace/malgene.cpp).
  const std::string& probe = signature.probedResource;
  const auto colon = probe.find(':');
  if (colon == std::string::npos) return false;
  const std::string kind = probe.substr(0, colon);
  const std::string resource = probe.substr(colon + 1);
  if (kind == "RegOpenKey" || kind == "RegQueryValue") {
    db.addRegistryKey(resource, Profile::kCrawled);
    db.crawled_ += 1;
    return true;
  }
  if (kind == "FileRead" || kind == "FileCreate") {
    db.addFile(resource, Profile::kCrawled);
    db.crawled_ += 1;
    return true;
  }
  return false;
}

}  // namespace scarecrow::core
