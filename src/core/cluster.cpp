#include "core/cluster.h"

namespace scarecrow::core {

Cluster::Cluster(std::size_t machineCount, const MachineBuilder& builder) {
  machines_.reserve(machineCount);
  harnesses_.reserve(machineCount);
  for (std::size_t i = 0; i < machineCount; ++i) {
    machines_.push_back(builder());
    machines_.back()->label += " #" + std::to_string(i);
    harnesses_.push_back(
        std::make_unique<EvaluationHarness>(*machines_.back()));
  }
}

void Cluster::runAll(const winapi::ProgramFactory& factory,
                     const Config& config, std::uint64_t budgetMs) {
  for (ClusterJob& job : queue_) {
    EvaluationHarness& harness = *harnesses_[nextMachine_];
    nextMachine_ = (nextMachine_ + 1) % harnesses_.size();

    EvalRequest request;
    request.sampleId = job.sampleId;
    request.imagePath = job.imagePath;
    request.factory = factory;
    request.config = config;
    request.budgetMs = budgetMs;

    // Without Scarecrow, reset, with Scarecrow — each runOnce restores the
    // machine to the clean snapshot first (the Deep Freeze cycle).
    RunResult without = harness.runOnce(request, false);
    ++stats_.machineResets;
    collector_.upload(std::move(without.trace));
    ++stats_.tracesUploaded;

    RunResult with = harness.runOnce(request, true);
    ++stats_.machineResets;
    collector_.upload(std::move(with.trace));
    ++stats_.tracesUploaded;

    ++stats_.jobsCompleted;
  }
  queue_.clear();
}

}  // namespace scarecrow::core
