#include "core/consistency.h"

#include "support/strings.h"

namespace scarecrow::core {

using support::iequals;
using winapi::Api;

namespace {

void check(ConsistencyReport& report, const std::string& resource,
           bool condition, const std::string& detail,
           Profile profile = Profile::kGeneric) {
  if (!condition) report.findings.push_back({resource, detail, profile});
}

bool deviceNamespace(const std::string& path) {
  return support::istartsWith(path, "\\\\.") ||
         support::istartsWith(path, "\\.");
}

}  // namespace

ConsistencyReport auditDeceptionConsistency(Api& api, const ResourceDb& db) {
  ConsistencyReport report;

  // ---- files: every stored file must exist on all three query channels ---
  db.forEachFile([&](const std::string& path, Profile profile) {
    if (deviceNamespace(path)) return;  // out of user-level scope by design
    ++report.filesChecked;
    const bool attrs =
        api.GetFileAttributesA(path) != Api::kInvalidFileAttributes;
    const bool ntAttrs = winapi::ok(api.NtQueryAttributesFile(path));
    const bool open = winapi::ok(api.CreateFileA(path, false));
    check(report, path, attrs && ntAttrs && open,
          std::string("file channels disagree: GetFileAttributes=") +
              (attrs ? "1" : "0") + " NtQueryAttributesFile=" +
              (ntAttrs ? "1" : "0") + " CreateFile=" + (open ? "1" : "0"),
          profile);
  });

  // ---- registry keys: Win32 and Nt open paths agree, parents open --------
  db.forEachRegistryKey([&](const std::string& path, Profile profile) {
    ++report.registryKeysChecked;
    const bool win32 = winapi::ok(api.RegOpenKeyEx(path));
    const bool nt = winapi::ok(api.NtOpenKeyEx(path));
    check(report, path, win32 && nt,
          std::string("RegOpenKeyEx=") + (win32 ? "1" : "0") +
              " NtOpenKeyEx=" + (nt ? "1" : "0"),
          profile);
    const std::string parent = support::parentPath(path);
    if (parent != path && parent.find('\\') != std::string::npos)
      check(report, path, winapi::ok(api.RegOpenKeyEx(parent)),
            "key exists but parent '" + parent + "' does not open", profile);
  });

  // ---- registry values: served value matches DB, its key opens -----------
  db.forEachRegistryValue([&](const std::string& keyPath,
                              const std::string& valueName,
                              const ResourceDb::ValueMatch& expected) {
    ++report.registryKeysChecked;
    winsys::RegValue win32Out, ntOut;
    const bool win32 =
        winapi::ok(api.RegQueryValueEx(keyPath, valueName, win32Out));
    const bool nt =
        winapi::ok(api.NtQueryValueKey(keyPath, valueName, ntOut));
    check(report, keyPath + "!" + valueName, win32 && nt,
          "value not served on both query channels", expected.profile);
    if (win32 && nt)
      check(report, keyPath + "!" + valueName,
            win32Out.str == expected.value.str &&
                ntOut.str == expected.value.str &&
                win32Out.num == expected.value.num,
            "served value does not match the database", expected.profile);
    check(report, keyPath + "!" + valueName,
          winapi::ok(api.RegOpenKeyEx(keyPath)),
          "value served but its key does not open", expected.profile);
  });

  // ---- processes: snapshot presence, and kills must "succeed" ------------
  const auto snapshot = api.CreateToolhelp32Snapshot();
  for (const FakeProcess& fake : db.fakeProcesses()) {
    ++report.processesChecked;
    const winapi::ProcessEntry* entry = nullptr;
    for (const auto& e : snapshot)
      if (iequals(e.imageName, fake.imageName)) entry = &e;
    check(report, fake.imageName, entry != nullptr,
          "fake process missing from Toolhelp snapshot", fake.profile);
    if (entry != nullptr)
      check(report, fake.imageName, api.TerminateProcess(entry->pid, 1),
            "TerminateProcess on protected process reported failure",
            fake.profile);
  }
  // After all the "kills", the processes must still be enumerable.
  const auto after = api.CreateToolhelp32Snapshot();
  for (const FakeProcess& fake : db.fakeProcesses()) {
    bool present = false;
    for (const auto& e : after)
      if (iequals(e.imageName, fake.imageName)) present = true;
    check(report, fake.imageName, present,
          "protected process vanished after TerminateProcess", fake.profile);
  }

  // ---- DLLs: GetModuleHandle reports every stored module loaded ----------
  db.forEachDll([&](const std::string& name, Profile profile) {
    ++report.dllsChecked;
    check(report, name, api.GetModuleHandleA(name),
          "deceptive DLL not visible via GetModuleHandle", profile);
  });

  // ---- windows: FindWindow by class and by title must both hit ------------
  for (const FakeWindow& window : db.fakeWindows()) {
    ++report.windowsChecked;
    const bool byClass =
        window.className.empty() || api.FindWindowA(window.className, "");
    const bool byTitle =
        window.title.empty() || api.FindWindowA("", window.title);
    check(report, window.className, byClass && byTitle,
          std::string("window channels disagree: byClass=") +
              (byClass ? "1" : "0") + " byTitle=" + (byTitle ? "1" : "0"),
          window.profile);
  }

  return report;
}

}  // namespace scarecrow::core
