#include "core/profiles.h"

#include <set>

namespace scarecrow::core {

using winsys::RegValue;

const char* sandboxProfileName(SandboxProfile profile) noexcept {
  switch (profile) {
    case SandboxProfile::kCuckooVirtualBox: return "cuckoo-virtualbox";
    case SandboxProfile::kVMwareAnalyst: return "vmware-analyst";
    case SandboxProfile::kQemuAnubis: return "qemu-anubis";
    case SandboxProfile::kBareMetalForensic: return "baremetal-forensic";
  }
  return "?";
}

namespace {

/// Sandbox-generic artifacts shared by every coherent deployment: analysis
/// folders, monitoring DLLs, debugger windows and processes.
void addCommonAnalysisTooling(ResourceDb& db) {
  for (const char* path : {"C:\\analysis", "C:\\sandbox"})
    db.addFile(path, Profile::kGeneric);
  for (const char* dll : {"SbieDll.dll", "api_log.dll", "dir_watch.dll"})
    db.addDll(dll, Profile::kSandboxie);
  for (const char* proc :
       {"ollydbg.exe", "windbg.exe", "procmon.exe", "wireshark.exe"})
    db.addProcess(proc, Profile::kDebugger);
  db.addWindow("OLLYDBG", "OllyDbg", Profile::kDebugger);
  db.addWindow("WinDbgFrameClass", "WinDbg", Profile::kDebugger);
}

}  // namespace

ResourceDb buildProfileDb(SandboxProfile profile) {
  ResourceDb db;
  addCommonAnalysisTooling(db);

  switch (profile) {
    case SandboxProfile::kCuckooVirtualBox:
      db.addRegistryKey("SOFTWARE\\Oracle\\VirtualBox Guest Additions",
                        Profile::kVirtualBox);
      db.addRegistryValue("HARDWARE\\Description\\System",
                          "SystemBiosVersion", RegValue::sz("VBOX   - 1"),
                          Profile::kVirtualBox);
      for (const char* driver :
           {"VBoxMouse.sys", "VBoxGuest.sys", "VBoxSF.sys"})
        db.addFile(std::string("C:\\Windows\\System32\\drivers\\") + driver,
                   Profile::kVirtualBox);
      db.addProcess("VBoxService.exe", Profile::kVirtualBox);
      db.addProcess("VBoxTray.exe", Profile::kVirtualBox);
      db.addWindow("VBoxTrayToolWndClass", "VBoxTrayToolWnd",
                   Profile::kVirtualBox);
      db.addFile("C:\\agent.pyw", Profile::kCuckoo);
      db.addFile("C:\\Python27\\python.exe", Profile::kCuckoo);
      break;

    case SandboxProfile::kVMwareAnalyst:
      db.addRegistryKey("SOFTWARE\\VMware, Inc.\\VMware Tools",
                        Profile::kVMware);
      db.addRegistryKey("SYSTEM\\CurrentControlSet\\Services\\vmnetadapter",
                        Profile::kVMware);
      db.addRegistryValue(
          "HARDWARE\\DEVICEMAP\\Scsi\\Scsi Port 0\\Scsi Bus 0\\"
          "Target Id 0\\Logical Unit Id 0",
          "Identifier", RegValue::sz("VMware Virtual IDE Hard Drive"),
          Profile::kVMware);
      for (const char* driver : {"vmmouse.sys", "vmhgfs.sys"})
        db.addFile(std::string("C:\\Windows\\System32\\drivers\\") + driver,
                   Profile::kVMware);
      db.addProcess("vmtoolsd.exe", Profile::kVMware);
      db.addProcess("VGAuthService.exe", Profile::kVMware);
      break;

    case SandboxProfile::kQemuAnubis:
      db.addRegistryValue(
          "HARDWARE\\DEVICEMAP\\Scsi\\Scsi Port 0\\Scsi Bus 0\\"
          "Target Id 0\\Logical Unit Id 0",
          "Identifier", RegValue::sz("QEMU HARDDISK"), Profile::kQemu);
      db.addRegistryValue("HARDWARE\\Description\\System",
                          "SystemBiosVersion", RegValue::sz("QEMU - 1"),
                          Profile::kQemu);
      db.addFile("C:\\anubis\\insidetm.exe", Profile::kGeneric);
      db.addProcess("popupkiller.exe", Profile::kGeneric);
      break;

    case SandboxProfile::kBareMetalForensic:
      // No VM artifacts at all — the deployment Kirat et al. pioneered.
      db.addFile("C:\\tools\\fibratus\\fibratus.exe", Profile::kGeneric);
      db.addProcess("fibratus.exe", Profile::kGeneric);
      db.addProcess("idaq.exe", Profile::kDebugger);
      db.addFile("C:\\Program Files\\DeepFreeze\\DF6Serv.exe",
                 Profile::kGeneric);
      break;
  }
  return db;
}

std::vector<VendorEvidence> collectVendorEvidence(const ResourceDb& db) {
  std::vector<VendorEvidence> evidence;
  std::set<Profile> seen;
  auto note = [&evidence, &seen](Profile p, const char* resource) {
    if (p != Profile::kVMware && p != Profile::kVirtualBox &&
        p != Profile::kQemu && p != Profile::kBochs)
      return;
    if (seen.insert(p).second) evidence.push_back({p, resource});
  };
  // Probe the vendor-identifying artifacts each profile could carry.
  struct KeyProbe {
    const char* path;
    Profile vendor;
  };
  const KeyProbe keyProbes[] = {
      {"SOFTWARE\\VMware, Inc.\\VMware Tools", Profile::kVMware},
      {"SOFTWARE\\Oracle\\VirtualBox Guest Additions", Profile::kVirtualBox},
  };
  for (const KeyProbe& probe : keyProbes)
    if (db.matchRegistryKey(probe.path)) note(probe.vendor, probe.path);
  struct FileProbe {
    const char* path;
    Profile vendor;
  };
  const FileProbe fileProbes[] = {
      {"C:\\Windows\\System32\\drivers\\vmmouse.sys", Profile::kVMware},
      {"C:\\Windows\\System32\\drivers\\VBoxMouse.sys", Profile::kVirtualBox},
  };
  for (const FileProbe& probe : fileProbes)
    if (db.matchFile(probe.path)) note(probe.vendor, probe.path);
  const char* kBiosValue = "HARDWARE\\Description\\System!SystemBiosVersion";
  const auto bios =
      db.matchRegistryValue("HARDWARE\\Description\\System",
                            "SystemBiosVersion");
  if (bios.has_value()) {
    if (bios->value.str.find("VBOX") != std::string::npos)
      note(Profile::kVirtualBox, kBiosValue);
    if (bios->value.str.find("QEMU") != std::string::npos)
      note(Profile::kQemu, kBiosValue);
    if (bios->value.str.find("BOCHS") != std::string::npos)
      note(Profile::kBochs, kBiosValue);
    if (bios->value.str.find("VMware") != std::string::npos)
      note(Profile::kVMware, kBiosValue);
  }
  const char* kScsiValue =
      "HARDWARE\\DEVICEMAP\\Scsi\\Scsi Port 0\\Scsi Bus 0\\Target Id 0\\"
      "Logical Unit Id 0!Identifier";
  const auto scsi = db.matchRegistryValue(
      "HARDWARE\\DEVICEMAP\\Scsi\\Scsi Port 0\\Scsi Bus 0\\Target Id 0\\"
      "Logical Unit Id 0",
      "Identifier");
  if (scsi.has_value()) {
    if (scsi->value.str.find("QEMU") != std::string::npos)
      note(Profile::kQemu, kScsiValue);
    if (scsi->value.str.find("VMware") != std::string::npos)
      note(Profile::kVMware, kScsiValue);
    if (scsi->value.str.find("VBOX") != std::string::npos)
      note(Profile::kVirtualBox, kScsiValue);
  }
  return evidence;
}

std::vector<VendorConflict> vendorConflicts(const ResourceDb& db) {
  const std::vector<VendorEvidence> evidence = collectVendorEvidence(db);
  std::vector<VendorConflict> conflicts;
  for (std::size_t i = 0; i < evidence.size(); ++i)
    for (std::size_t j = i + 1; j < evidence.size(); ++j)
      if (vmVendorConflict(evidence[i].vendor, evidence[j].vendor))
        conflicts.push_back({evidence[i], evidence[j]});
  return conflicts;
}

bool vendorConsistent(const ResourceDb& db) {
  return vendorConflicts(db).empty();
}

}  // namespace scarecrow::core
