// Per-sample evaluation harness: the Figure 3 protocol.
//
// For each sample: reset the machine to its clean snapshot (Deep Freeze),
// execute for one minute of machine time without Scarecrow while tracing
// kernel activity; reset again and execute with Scarecrow (controller
// launch + DLL injection); upload both traces; judge deactivation with the
// Section IV-C decision procedure.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "core/attribution.h"
#include "core/config.h"
#include "core/controller.h"
#include "core/resource_db.h"
#include "core/engine.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "trace/analysis.h"
#include "winapi/runner.h"
#include "winsys/machine.h"

namespace scarecrow::core {

/// Builds the deception database a with-Scarecrow run deploys.
using ResourceDbFactory = std::function<ResourceDb()>;

/// One corpus evaluation, fully described: everything the Figure 3
/// protocol needs to run a single sample. This is the unit of work for
/// both the serial EvaluationHarness and the parallel core::BatchEvaluator
/// — build a vector of these and hand it to either.
struct EvalRequest {
  /// Stable identifier the traces and verdicts are keyed by.
  std::string sampleId{};
  /// Guest path the submitted binary is materialized at before launch.
  std::string imagePath{};
  /// Resolves image paths to guest programs (the sample itself plus any
  /// processes it drops).
  winapi::ProgramFactory factory{};
  Config config{};
  /// Machine-time budget per run (the paper's one-minute window).
  std::uint64_t budgetMs = Config::kDefaultBudgetMs;
  /// Fair-share admission key for the resident service (core/service.h):
  /// submissions are token-bucketed per tenant so one flooding client
  /// cannot starve the rest. Empty = the shared anonymous pool. Ignored
  /// by the serial harness and the batch façade.
  std::string tenant{};
  /// Per-request deception-database override. When set it wins over the
  /// harness-level factory (setResourceDbFactory) and the default
  /// database, so requests needing *different* profiles can interleave
  /// through one shared worker pool — the covering-router seam
  /// (analysis/coverings.h): each routed request carries its covering's
  /// (db, config) instead of the service being re-pointed per profile.
  ResourceDbFactory dbFactory{};
};

/// How well the deception plane held up during a supervised run
/// (DESIGN.md §11). All-zero with protectionLevel == kFullDeception means
/// nothing went wrong — the invariant state of every un-faulted run.
struct ResilienceVerdict {
  /// Final rung of the degradation ladder for the run.
  faults::ProtectionLevel protectionLevel =
      faults::ProtectionLevel::kFullDeception;
  /// Total armed-fault-site fires during the run (0 without a fault plan).
  std::uint32_t faultsInjected = 0;
  /// Root-injection retries Controller::launch spent.
  std::uint32_t injectRetries = 0;
  /// Hook installs the engine lost to the kHookInstall site.
  std::uint32_t hookInstallFailures = 0;
  /// Hooks disabled after repeated install failures.
  std::uint32_t quarantinedHooks = 0;
  /// Descendants the DLL failed to inject (kChildPropagation)...
  std::uint32_t missedDescendants = 0;
  /// ...and how many of those the controller re-injected during pump().
  std::uint32_t reinjectedDescendants = 0;
  /// IPC messages lost to send faults or the queue capacity bound.
  std::uint64_t ipcMessagesDropped = 0;

  /// True when the run finished below kFullDeception.
  bool degraded() const noexcept {
    return protectionLevel != faults::ProtectionLevel::kFullDeception;
  }
};

/// Artifacts of one single-configuration run (EvaluationHarness::runOnce).
/// The controller-side fields are only populated for with-Scarecrow runs;
/// reference runs have no controller.
struct RunResult {
  trace::Trace trace;
  /// First fingerprint trigger from the controller's IPC view (matches the
  /// trace-derived verdict.firstTrigger after a full evaluate()).
  std::string firstTrigger;
  std::uint32_t selfSpawnAlerts = 0;
  /// Causal-chain id of the first trigger (0 when nothing triggered).
  std::uint64_t firstTriggerCorrelation = 0;
  /// How the deception plane held up (supervised runs only).
  ResilienceVerdict resilience;
  /// SLO breaches fired during the run (supervised runs with a configured
  /// rule set only — Config::sloSpec or SCARECROW_SLO). Each one also
  /// ticked `obs.slo_breach{rule}` and recorded a kSloBreach event.
  std::vector<obs::SloBreach> sloBreaches;
};

struct EvalOutcome {
  trace::Trace traceWithout;
  trace::Trace traceWith;
  trace::DeactivationVerdict verdict;
  /// First fingerprint trigger from the controller's IPC view (matches the
  /// trace-derived verdict.firstTrigger).
  std::string firstTrigger;
  std::uint32_t selfSpawnAlerts = 0;
  /// Telemetry for the full ± pair: hook counters, alert counters, phase
  /// spans, latency histograms. The registry is wiped (identities
  /// included) at the start of evaluate(), so any evaluation of the same
  /// sample/config exports byte-identical JSON — regardless of what ran
  /// on the machine before.
  obs::MetricsSnapshot telemetry;
  std::string telemetryJson;  // Exporter(ExportFormat::kJson) of telemetry
  /// Causal decision trace for the full ± pair: flight-recorder snapshot
  /// in record order (hook dispatches, deceptions, IPC sends/drains,
  /// phase transitions, verdict). Bounded by Config::flightRecorder-
  /// Capacity; `droppedDecisions` counts drop-oldest overflow.
  std::vector<obs::DecisionEvent> decisions;
  std::uint64_t droppedDecisions = 0;
  /// The evidence behind firstTrigger: the minimal decision chain from
  /// the triggering hook dispatch to the verdict.
  TriggerAttribution attribution;
  /// Chrome trace-event JSON of the evaluation (spans + decisions),
  /// loadable in Perfetto / about://tracing. Byte-identical across
  /// identical runs, like telemetryJson.
  std::string perfettoJson;
  /// How the deception plane held up in the supervised run. Deterministic
  /// for a fixed (sample, config) pair, fault plan included.
  ResilienceVerdict resilience;
  /// SLO breaches from the supervised run (RunResult::sloBreaches).
  std::vector<obs::SloBreach> sloBreaches;
};

class EvaluationHarness {
 public:
  /// Snapshots `machine` as the clean state every run restores to.
  explicit EvaluationHarness(winsys::Machine& machine);

  /// Runs one sample in both configurations and judges it.
  EvalOutcome evaluate(const EvalRequest& request);

  /// One configuration only (used by benches that sweep configs).
  RunResult runOnce(const EvalRequest& request, bool withScarecrow);

  winsys::Machine& machine() noexcept { return machine_; }

  /// Overrides the deception database used for with-Scarecrow runs
  /// (defaults to buildDefaultResourceDb; a request's own dbFactory wins
  /// over both). Used by the profile ablations.
  using DbFactory = ResourceDbFactory;
  void setResourceDbFactory(DbFactory factory) {
    dbFactory_ = std::move(factory);
  }

 private:
  winsys::Machine& machine_;
  winsys::MachineSnapshot snapshot_;
  DbFactory dbFactory_;
};

}  // namespace scarecrow::core
