#include "core/kernel_ext.h"

namespace scarecrow::core {

const std::vector<std::string>& kernelDeviceObjects() {
  static const std::vector<std::string> objects = {
      "\\\\.\\pipe\\cuckoo",
      "\\\\.\\pipe\\cuckoo_result",
      "\\\\.\\cuckoo",
      "\\\\.\\VBoxGuest",
      "\\\\.\\VBoxMiniRdrDN",
      "\\\\.\\pipe\\VBoxTrayIPC",
  };
  return objects;
}

void KernelExtension::installOnMachine(winsys::Machine& machine) const {
  if (!config_.enabled || !config_.fabricateDeviceObjects) return;
  for (const std::string& object : kernelDeviceObjects())
    machine.vfs().createDevice(object);
}

void KernelExtension::installIntoProcess(
    winsys::Machine& machine, std::uint32_t pid,
    const HardwareDeception& hardware) const {
  if (!config_.enabled) return;
  winsys::Process* process = machine.processes().find(pid);
  if (process == nullptr) return;
  if (config_.spoofPeb)
    process->peb.numberOfProcessors = hardware.cpuCores;
  if (config_.trapCpuid) {
    process->cpuidTrap.active = true;
    process->cpuidTrap.vendor = config_.hypervisorVendor;
    process->cpuidTrap.extraCycles = config_.cpuidTrapExtraCycles;
  }
}

bool KernelExtension::installedOn(const winsys::Machine& machine) {
  return machine.vfs().exists(kernelDeviceObjects().front());
}

}  // namespace scarecrow::core
