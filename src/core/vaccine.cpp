#include "core/vaccine.h"

namespace scarecrow::core {

using winsys::RegValue;

std::string familyInfectionMarker(const std::string& familyName) {
  return "Global\\" + familyName + "_infect_v2";
}

VaccineDb buildVaccineForFamilies(const std::vector<std::string>& families) {
  VaccineDb vaccine;
  vaccine.markers.reserve(families.size());
  for (const std::string& family : families)
    vaccine.markers.push_back(familyInfectionMarker(family));
  return vaccine;
}

void vaccinate(winsys::Machine& machine, const VaccineDb& vaccine) {
  for (const std::string& marker : vaccine.markers)
    machine.mutexes().create(marker);
}

ResourceDb buildChenImitatorDb() {
  ResourceDb db;
  // Anti-virtualization artifacts only (VMware + VirtualBox), as in the
  // 2008-era imitation approach: no sandbox tooling, folders, windows,
  // identity or hardware deception.
  db.addRegistryKey("SOFTWARE\\VMware, Inc.\\VMware Tools", Profile::kVMware);
  db.addFile("C:\\Windows\\System32\\drivers\\vmmouse.sys",
             Profile::kVMware);
  db.addFile("C:\\Windows\\System32\\drivers\\vmhgfs.sys", Profile::kVMware);
  db.addRegistryKey("SOFTWARE\\Oracle\\VirtualBox Guest Additions",
                    Profile::kVirtualBox);
  db.addRegistryValue("HARDWARE\\Description\\System", "SystemBiosVersion",
                      RegValue::sz("VBOX   - 1"), Profile::kVirtualBox);
  for (const char* driver : {"VBoxMouse.sys", "VBoxGuest.sys"})
    db.addFile(std::string("C:\\Windows\\System32\\drivers\\") + driver,
               Profile::kVirtualBox);
  return db;
}

}  // namespace scarecrow::core
