// Incident report rendering.
//
// A deployment surface for the library: turns an evaluation outcome (or a
// live controller's view) into the Markdown summary an analyst or an EDR
// console would show — verdict, the evasive logic that fired, what the
// sample *would have done* (from the reference trace, when available), and
// a short kernel-activity timeline.
#pragma once

#include <string>
#include <vector>

#include "core/attribution.h"
#include "core/controller.h"
#include "core/eval.h"
#include "obs/metrics.h"

namespace scarecrow::core {

struct ReportOptions {
  std::size_t maxTimelineEvents = 12;
  std::size_t maxActivities = 8;
  /// Top-N rows in the telemetry section's hottest-hooks table.
  std::size_t maxHotHooks = 8;
  /// Appends the telemetry section when the outcome carries a snapshot.
  bool includeTelemetry = true;
  /// Extra pre-rendered Markdown sections appended after the telemetry
  /// (e.g. analysis::renderCoverageSection's static-coverage appendix).
  std::vector<std::string> appendixSections;
};

/// Renders a full ±Scarecrow evaluation (offline analysis report).
std::string renderIncidentReport(const std::string& sampleId,
                                 const EvalOutcome& outcome,
                                 const ReportOptions& options = {});

/// Renders the telemetry section: top-N hottest hooks, alerts by profile,
/// hook-dispatch latency percentiles, and the eval-pipeline phase spans.
std::string renderTelemetryReport(const obs::MetricsSnapshot& telemetry,
                                  const ReportOptions& options = {});

/// Renders the trigger-attribution section: the minimal causal chain from
/// the triggering hook dispatch to the verdict, one line per decision
/// event (time, pid, kind, API, argument → matched profile).
std::string renderAttributionReport(const TriggerAttribution& attribution);

/// Renders the resilience section: the final protection-ladder rung, fault
/// fires, retries, quarantines, and IPC losses of a supervised run.
/// renderIncidentReport appends it automatically when the run degraded or
/// any fault fired; empty-verdict renders are valid (all-zero lines).
std::string renderResilienceReport(const ResilienceVerdict& resilience);

/// Renders a live supervision summary from a controller's IPC view (no
/// reference run available).
std::string renderSupervisionReport(const Controller& controller,
                                    const ReportOptions& options = {});

}  // namespace scarecrow::core
