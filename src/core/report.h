// Incident report rendering.
//
// A deployment surface for the library: turns an evaluation outcome (or a
// live controller's view) into the Markdown summary an analyst or an EDR
// console would show — verdict, the evasive logic that fired, what the
// sample *would have done* (from the reference trace, when available), and
// a short kernel-activity timeline.
#pragma once

#include <string>

#include "core/controller.h"
#include "core/eval.h"

namespace scarecrow::core {

struct ReportOptions {
  std::size_t maxTimelineEvents = 12;
  std::size_t maxActivities = 8;
};

/// Renders a full ±Scarecrow evaluation (offline analysis report).
std::string renderIncidentReport(const std::string& sampleId,
                                 const EvalOutcome& outcome,
                                 const ReportOptions& options = {});

/// Renders a live supervision summary from a controller's IPC view (no
/// reference run available).
std::string renderSupervisionReport(const Controller& controller,
                                    const ReportOptions& options = {});

}  // namespace scarecrow::core
