// Baseline defenses from the paper's related work (Section VII), for
// head-to-head comparison with Scarecrow.
//
// 1. Infection-marker vaccination (Wichmann & Gerhards-Padilla [33]; Xu et
//    al., AutoVac [34]): plant the family-specific markers (named mutexes)
//    a malware family uses to detect an existing infection, so new samples
//    of that family stand down. Strictly *malware-specific*: a marker helps
//    only against the family it was extracted from — the limitation the
//    paper calls out ("if the malware fingerprints analysis environment,
//    it cannot generate resources").
// 2. Chen et al. [18]-style imitation: expose only anti-virtualization and
//    anti-debugging artifacts (no sandbox tooling, no hardware/network/
//    identity deception) — the "limited scope" predecessor Section VII
//    contrasts Scarecrow against.
#pragma once

#include <string>
#include <vector>

#include "core/resource_db.h"
#include "winsys/machine.h"

namespace scarecrow::core {

struct VaccineDb {
  /// Known infection markers (mutex names), typically extracted from
  /// analyzed samples of specific families.
  std::vector<std::string> markers;
};

/// The corpus convention for family markers ("Global\<family>_infect_v2").
std::string familyInfectionMarker(const std::string& familyName);

/// Builds a vaccine covering the given families.
VaccineDb buildVaccineForFamilies(const std::vector<std::string>& families);

/// Plants every marker on the machine (the vaccination deployment step).
void vaccinate(winsys::Machine& machine, const VaccineDb& vaccine);

/// Chen et al.-style deception database: VM artifacts of the two big
/// vendors plus nothing else (debugger deception comes from the engine's
/// debugger category; disable hardware/network/wear-tear in the Config).
ResourceDb buildChenImitatorDb();

}  // namespace scarecrow::core
