// Analysis cluster (paper Figure 3).
//
// The paper's evaluation infrastructure: multiple bare-metal machines, each
// reset via Deep Freeze between executions, a proxy that hands out samples
// plus per-run configuration, and real-time trace upload to the proxy so a
// crashing sample cannot corrupt its own evidence. This module reproduces
// that orchestration on simulated machines: jobs are distributed
// round-robin, every sample runs once per configuration (±Scarecrow), and
// both traces land in the trace::Collector for judgement.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/eval.h"
#include "trace/collector.h"
#include "winsys/machine.h"

namespace scarecrow::core {

struct ClusterJob {
  std::string sampleId;
  std::string imagePath;
};

struct ClusterStats {
  std::size_t jobsCompleted = 0;
  std::size_t machineResets = 0;
  std::size_t tracesUploaded = 0;
};

class Cluster {
 public:
  using MachineBuilder = std::function<std::unique_ptr<winsys::Machine>()>;

  /// Builds `machineCount` identical analysis machines.
  Cluster(std::size_t machineCount, const MachineBuilder& builder);

  void submit(ClusterJob job) { queue_.push_back(std::move(job)); }
  std::size_t pendingJobs() const noexcept { return queue_.size(); }

  /// Processes the whole queue: each job runs ±Scarecrow on its machine
  /// (round-robin assignment) and uploads both traces to the proxy.
  void runAll(const winapi::ProgramFactory& factory,
              const Config& config = {},
              std::uint64_t budgetMs = Config::kDefaultBudgetMs);

  /// The proxy-side trace store; judge deactivation from here.
  trace::Collector& collector() noexcept { return collector_; }
  const ClusterStats& stats() const noexcept { return stats_; }
  std::size_t machineCount() const noexcept { return harnesses_.size(); }

 private:
  std::vector<std::unique_ptr<winsys::Machine>> machines_;
  std::vector<std::unique_ptr<EvaluationHarness>> harnesses_;
  std::vector<ClusterJob> queue_;
  trace::Collector collector_;
  ClusterStats stats_;
  std::size_t nextMachine_ = 0;
};

}  // namespace scarecrow::core
