#include "analysis/coverings.h"

#include <algorithm>
#include <bitset>
#include <map>
#include <stdexcept>
#include <utility>

#include "analysis/coverage.h"
#include "analysis/footprint.h"
#include "core/profiles.h"
#include "support/strings.h"

namespace scarecrow::analysis {

using support::jsonEscape;

namespace {

using TechniqueSet = std::bitset<malware::kTechniqueCount>;

malware::Technique techniqueAt(std::size_t i) {
  return static_cast<malware::Technique>(i);
}

std::vector<malware::Technique> toSorted(const TechniqueSet& set) {
  std::vector<malware::Technique> out;
  for (std::size_t i = 0; i < malware::kTechniqueCount; ++i)
    if (set.test(i)) out.push_back(techniqueAt(i));
  return out;
}

/// True when the technique's verdict is decided at runtime (launch
/// context), independent of any database or config the universe offers.
bool runtimeDecided(malware::Technique technique) {
  for (const auto& group : footprintFor(technique).groups)
    for (const ResourceProbe& probe : group)
      if (probe.kind == ProbeKind::kLaunchContext) return true;
  return false;
}

ResidueReason classifyResidue(malware::Technique technique) {
  if (malware::unhookableTechnique(technique)) return ResidueReason::kUnhookable;
  if (runtimeDecided(technique)) return ResidueReason::kRuntime;
  return ResidueReason::kNoProfileFires;
}

CoveringPlan planOver(const std::vector<CoveringProfile>& universe,
                      const TechniqueSet& target) {
  CoveringPlan plan;
  plan.universeSize = universe.size();
  plan.targetCount = target.count();

  // One lattice fold per universe entry; the firing sets are everything
  // the greedy loop needs, the reports keep the residue explanations.
  std::vector<TechniqueSet> fires(universe.size());
  std::vector<CoverageReport> reports;
  reports.reserve(universe.size());
  for (std::size_t p = 0; p < universe.size(); ++p) {
    reports.push_back(analyzeCoverage(universe[p].db(), universe[p].config));
    for (std::size_t i = 0; i < malware::kTechniqueCount; ++i)
      if (target.test(i) &&
          reports[p].of(techniqueAt(i)).verdict == Verdict::kFires)
        fires[p].set(i);
  }

  TechniqueSet coverable;
  for (const TechniqueSet& set : fires) coverable |= set;

  // Greedy: biggest gain first; ties break on profile name so the plan is
  // byte-identical across runs regardless of universe hashing or timing.
  TechniqueSet uncovered = coverable;
  std::vector<bool> picked(universe.size(), false);
  while (uncovered.any()) {
    std::size_t best = universe.size();
    std::size_t bestGain = 0;
    for (std::size_t p = 0; p < universe.size(); ++p) {
      if (picked[p]) continue;
      const std::size_t gain = (fires[p] & uncovered).count();
      if (gain == 0) continue;
      if (best == universe.size() || gain > bestGain ||
          (gain == bestGain && universe[p].name < universe[best].name)) {
        best = p;
        bestGain = gain;
      }
    }
    if (best == universe.size()) break;  // unreachable: uncovered ⊆ coverable
    picked[best] = true;
    CoveringPick pick;
    pick.universeIndex = best;
    pick.profile = universe[best].name;
    pick.covered = toSorted(fires[best] & uncovered);
    pick.fires = toSorted(fires[best]);
    uncovered &= ~fires[best];
    plan.coverings.push_back(std::move(pick));
  }
  plan.coveredCount = coverable.count();

  for (std::size_t i = 0; i < malware::kTechniqueCount; ++i) {
    if (!target.test(i) || coverable.test(i)) continue;
    CoveringResidue residue;
    residue.technique = techniqueAt(i);
    residue.reason = classifyResidue(residue.technique);
    residue.detail = reports.empty() ? "no profiles in universe"
                                     : reports.front().of(residue.technique)
                                           .detail;
    plan.residue.push_back(std::move(residue));
  }

  for (std::size_t p = 0; p < universe.size(); ++p)
    if (!picked[p]) plan.unusedProfiles.push_back(universe[p].name);
  return plan;
}

}  // namespace

core::Config paperVariantConfig() { return core::Config{}; }

core::Config workstationVariantConfig() {
  core::Config config;
  config.hardware.cpuCores = 8;
  config.hardware.ramBytes = 16ULL << 30;
  config.hardware.diskTotalBytes = 1ULL << 40;
  config.hardware.diskFreeBytes = 512ULL << 30;
  config.identity.userName = "jsmith";
  config.identity.computerName = "DESKTOP-4R7T2";
  config.identity.ownImagePath = "C:\\Users\\jsmith\\Downloads\\invoice.exe";
  config.identity.fakeUptimeMs = 72ULL * 3600 * 1000;  // three days up
  config.identity.sleepPercent = 100;     // no sleep acceleration
  config.identity.exceptionLatencyCycles = 1'000;  // native SEH dispatch
  config.wearTear.autoRunEntries = 12;
  config.wearTear.deviceClassSubkeys = 87;
  return config;
}

std::vector<CoveringProfile> defaultProfileUniverse() {
  struct Variant {
    const char* name;
    core::Config config;
  };
  const Variant variants[] = {{"paper", paperVariantConfig()},
                              {"workstation", workstationVariantConfig()}};
  std::vector<CoveringProfile> universe;
  for (const core::SandboxProfile profile : core::kAllSandboxProfiles) {
    for (const Variant& variant : variants) {
      CoveringProfile entry;
      entry.name = std::string(core::sandboxProfileName(profile)) + "/" +
                   variant.name;
      entry.db = [profile] { return core::buildProfileDb(profile); };
      entry.config = variant.config;
      universe.push_back(std::move(entry));
    }
  }
  return universe;
}

const char* residueReasonName(ResidueReason reason) noexcept {
  switch (reason) {
    case ResidueReason::kUnhookable: return "unhookable";
    case ResidueReason::kRuntime: return "runtime";
    case ResidueReason::kNoProfileFires: return "no-profile-fires";
  }
  return "?";
}

std::string CoveringPlan::summary() const {
  return "coverings=" + std::to_string(coverings.size()) +
         " covered=" + std::to_string(coveredCount) + "/" +
         std::to_string(targetCount) +
         " residue=" + std::to_string(residue.size()) +
         " unused=" + std::to_string(unusedProfiles.size());
}

CoveringPlan planCoverings(const std::vector<CoveringProfile>& universe) {
  TechniqueSet target;
  target.set();
  // bitset may be wider than the enum; mask the padding off.
  for (std::size_t i = malware::kTechniqueCount; i < target.size(); ++i)
    target.reset(i);
  return planOver(universe, target);
}

CoveringPlan planCoverings(
    const std::vector<CoveringProfile>& universe,
    const std::vector<malware::Technique>& corpusTechniques) {
  TechniqueSet target;
  for (const malware::Technique technique : corpusTechniques)
    target.set(static_cast<std::size_t>(technique));
  return planOver(universe, target);
}

std::string coveringJson(const CoveringPlan& plan) {
  std::string out = "{\n";
  out += "  \"summary\": {\"universe\": " + std::to_string(plan.universeSize) +
         ", \"coverings\": " + std::to_string(plan.coverings.size()) +
         ", \"covered\": " + std::to_string(plan.coveredCount) +
         ", \"target\": " + std::to_string(plan.targetCount) +
         ", \"residue\": " + std::to_string(plan.residue.size()) +
         ", \"unused\": " + std::to_string(plan.unusedProfiles.size()) +
         "},\n";
  out += "  \"coverings\": [\n";
  for (std::size_t i = 0; i < plan.coverings.size(); ++i) {
    const CoveringPick& pick = plan.coverings[i];
    out += "    {\n";
    out += "      \"profile\": \"" + jsonEscape(pick.profile) + "\",\n";
    out += "      \"covered\": [";
    for (std::size_t t = 0; t < pick.covered.size(); ++t) {
      if (t != 0) out += ", ";
      out += "\"" + jsonEscape(malware::techniqueName(pick.covered[t])) + "\"";
    }
    out += "],\n";
    out += "      \"fires\": [";
    for (std::size_t t = 0; t < pick.fires.size(); ++t) {
      if (t != 0) out += ", ";
      out += "\"" + jsonEscape(malware::techniqueName(pick.fires[t])) + "\"";
    }
    out += "]\n";
    out += i + 1 == plan.coverings.size() ? "    }\n" : "    },\n";
  }
  out += "  ],\n";
  out += "  \"residue\": [\n";
  for (std::size_t i = 0; i < plan.residue.size(); ++i) {
    const CoveringResidue& residue = plan.residue[i];
    out += "    {\"technique\": \"" +
           jsonEscape(malware::techniqueName(residue.technique)) +
           "\", \"reason\": \"" +
           std::string(residueReasonName(residue.reason)) +
           "\", \"detail\": \"" + jsonEscape(residue.detail) + "\"}";
    out += i + 1 == plan.residue.size() ? "\n" : ",\n";
  }
  out += "  ],\n";
  out += "  \"unused_profiles\": [";
  for (std::size_t i = 0; i < plan.unusedProfiles.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"" + jsonEscape(plan.unusedProfiles[i]) + "\"";
  }
  out += "]\n}\n";
  return out;
}

obs::MetricsSnapshot coveringTelemetry(const CoveringPlan& plan) {
  obs::MetricsRegistry registry;
  for (const CoveringPick& pick : plan.coverings)
    registry.counter("analysis.covering_covered", pick.profile)
        .inc(pick.covered.size());
  for (const CoveringResidue& residue : plan.residue)
    registry.counter("analysis.covering_residue",
                     residueReasonName(residue.reason))
        .inc();
  registry.gauge("analysis.covering_count")
      .set(static_cast<std::int64_t>(plan.coverings.size()));
  registry.gauge("analysis.covering_universe")
      .set(static_cast<std::int64_t>(plan.universeSize));
  registry.gauge("analysis.covering_covered_total")
      .set(static_cast<std::int64_t>(plan.coveredCount));
  registry.gauge("analysis.covering_unused_profiles")
      .set(static_cast<std::int64_t>(plan.unusedProfiles.size()));
  return registry.snapshot();
}

std::string renderCoveringSection(const CoveringPlan& plan) {
  std::string out = "## Minimal deception covering\n\n";
  out += plan.summary() + "\n\n";
  for (std::size_t i = 0; i < plan.coverings.size(); ++i) {
    const CoveringPick& pick = plan.coverings[i];
    out += std::to_string(i + 1) + ". `" + pick.profile + "` — covers " +
           std::to_string(pick.covered.size()) + " technique(s):";
    for (const malware::Technique technique : pick.covered)
      out += std::string(" `") + malware::techniqueName(technique) + "`";
    out += "\n";
  }
  if (!plan.residue.empty()) {
    out += "\nUncoverable residue (no covering fires these):\n\n";
    for (const CoveringResidue& residue : plan.residue)
      out += std::string("- `") + malware::techniqueName(residue.technique) +
             "` — " + residueReasonName(residue.reason) + " — " +
             residue.detail + "\n";
  }
  if (!plan.unusedProfiles.empty()) {
    out += "\nCovering-dead profiles (selected by no covering):\n\n";
    for (const std::string& profile : plan.unusedProfiles)
      out += "- `" + profile + "`\n";
  }
  return out;
}

LintReport lintCoveringPlan(const CoveringPlan& plan) {
  LintReport report;
  report.entriesChecked = plan.universeSize;
  for (const std::string& profile : plan.unusedProfiles) {
    LintFinding finding;
    finding.kind = LintKind::kCoveringDeadProfile;
    finding.resource = profile;
    finding.detail =
        "profile appears in no minimal covering — every technique it fires "
        "is already covered; it is decoy surface, not coverage";
    report.findings.push_back(std::move(finding));
  }
  return report;
}

CoveringRouter::CoveringRouter(std::vector<CoveringProfile> universe,
                               CoveringPlan plan)
    : universe_(std::move(universe)), plan_(std::move(plan)) {
  for (const CoveringPick& pick : plan_.coverings) {
    if (pick.universeIndex >= universe_.size() ||
        universe_[pick.universeIndex].name != pick.profile)
      throw std::invalid_argument(
          "CoveringRouter: plan does not index this universe (covering '" +
          pick.profile + "')");
  }
}

CoveringRouter::Route CoveringRouter::route(
    const std::vector<malware::Technique>& techniques) const {
  Route route;
  if (plan_.coverings.empty()) return route;
  for (std::size_t i = 0; i < plan_.coverings.size(); ++i) {
    const std::vector<malware::Technique>& fires = plan_.coverings[i].fires;
    for (const malware::Technique technique : techniques) {
      if (std::find(fires.begin(), fires.end(), technique) != fires.end()) {
        route.coverings.push_back(i);
        return route;
      }
    }
  }
  // Known but uncovered: no universe profile fires any of its techniques,
  // so one (necessarily negative) run matches the full sweep's verdict.
  route.coverings.push_back(0);
  return route;
}

CoveringRouter::Route CoveringRouter::routeUnknown() const {
  Route route;
  route.broadcast = true;
  for (std::size_t i = 0; i < plan_.coverings.size(); ++i)
    route.coverings.push_back(i);
  return route;
}

const CoveringProfile& CoveringRouter::profileOf(std::size_t index) const {
  return universe_.at(plan_.coverings.at(index).universeIndex);
}

core::EvalRequest CoveringRouter::apply(core::EvalRequest request,
                                        std::size_t index) const {
  return stampProfile(profileOf(index), std::move(request));
}

core::EvalRequest stampProfile(const CoveringProfile& profile,
                               core::EvalRequest request) {
  core::Config config = profile.config;
  config.faultPlan = request.config.faultPlan;
  request.config = std::move(config);
  request.dbFactory = profile.db;
  return request;
}

bool RoutedOutcome::deactivated() const noexcept {
  for (const RoutedRun& run : runs)
    if (run.status == core::BatchStatus::kOk && run.outcome.verdict.deactivated)
      return true;
  return false;
}

namespace {

core::BatchStatus batchStatusFromName(std::string_view name) noexcept {
  if (name == "ok") return core::BatchStatus::kOk;
  if (name == "timed-out") return core::BatchStatus::kTimedOut;
  return core::BatchStatus::kFailed;
}

/// Shared sweep core. `completedByIndex` is null for a fresh sweep; in
/// resume mode it maps journal requestIndex → adopted run, and everything
/// not in the map resubmits with its index pinned.
std::vector<RoutedOutcome> runSweepImpl(
    core::EvalService& service, const CoveringRouter& router,
    const std::vector<core::EvalRequest>& requests,
    const TechniqueLookup& lookup,
    const std::map<std::uint64_t, core::RecoveryReport::CompletedRun>*
        completedByIndex) {
  struct Pending {
    std::size_t request = 0;
    std::size_t covering = 0;
    core::Ticket ticket;
    /// Set in resume mode when the journal already holds this run.
    const core::RecoveryReport::CompletedRun* adopted = nullptr;
  };
  std::vector<RoutedOutcome> outcomes(requests.size());
  std::vector<Pending> pending;

  // Submit everything first: routed runs interleave across shards and
  // workers exactly like any other service traffic. The enumeration order
  // is deterministic, so pending entry j carries ledger requestIndex j —
  // the alignment resume mode keys on.
  std::uint64_t index = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const malware::SampleSpec* spec = lookup ? lookup(requests[i]) : nullptr;
    const CoveringRouter::Route route =
        spec ? router.route(spec->techniques) : router.routeUnknown();
    outcomes[i].broadcast = route.broadcast;
    for (const std::size_t covering : route.coverings) {
      Pending entry;
      entry.request = i;
      entry.covering = covering;
      if (completedByIndex != nullptr) {
        const auto it = completedByIndex->find(index);
        if (it != completedByIndex->end() &&
            it->second.sampleId == requests[i].sampleId) {
          entry.adopted = &it->second;
        } else {
          entry.ticket =
              service.resubmit(router.apply(requests[i], covering), index);
        }
      } else {
        entry.ticket = service.submit(router.apply(requests[i], covering));
      }
      ++index;
      pending.push_back(std::move(entry));
    }
  }

  for (const Pending& entry : pending) {
    RoutedRun run;
    run.covering = entry.covering;
    run.profile = router.profileOf(entry.covering).name;
    if (entry.adopted != nullptr) {
      run.recovered = true;
      run.status = batchStatusFromName(entry.adopted->status);
      if (run.status == core::BatchStatus::kOk) {
        run.outcome.verdict.deactivated =
            entry.adopted->verdict == "deactivated";
        run.outcome.verdict.firstTrigger = entry.adopted->firstTrigger;
        run.outcome.firstTrigger = entry.adopted->firstTrigger;
      } else {
        run.error = "adopted from journal: " + entry.adopted->status;
      }
    } else if (!entry.ticket.admitted()) {
      run.error = std::string("not admitted: ") +
                  core::admissionVerdictName(entry.ticket.verdict);
    } else if (std::optional<core::ServiceResult> result =
                   service.wait(entry.ticket)) {
      run.status = result->status;
      run.outcome = std::move(result->outcome);
      run.error = std::move(result->error);
      run.wallMicros = result->wallMicros;
    } else {
      run.error = "result unavailable (retainResults off?)";
    }
    outcomes[entry.request].runs.push_back(std::move(run));
  }
  return outcomes;
}

}  // namespace

std::vector<RoutedOutcome> runCoveringSweep(
    core::EvalService& service, const CoveringRouter& router,
    const std::vector<core::EvalRequest>& requests,
    const TechniqueLookup& lookup) {
  return runSweepImpl(service, router, requests, lookup, nullptr);
}

std::vector<RoutedOutcome> runCoveringSweep(
    core::EvalService& service, const CoveringRouter& router,
    const std::vector<core::EvalRequest>& requests,
    const TechniqueLookup& lookup, const std::string& resumeLedgerPath) {
  const core::RecoveryReport report = core::EvalService::replayAdmissionJournal(
      obs::readLedgerGenerations(resumeLedgerPath));
  std::map<std::uint64_t, core::RecoveryReport::CompletedRun> completed;
  for (const core::RecoveryReport::CompletedRun& run : report.completed)
    completed.emplace(run.requestIndex, run);
  return runSweepImpl(service, router, requests, lookup, &completed);
}

}  // namespace scarecrow::analysis
