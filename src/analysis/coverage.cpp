#include "analysis/coverage.h"

#include <optional>
#include <set>

#include "core/engine.h"
#include "support/strings.h"

namespace scarecrow::analysis {

using support::icontains;
using support::jsonEscape;
using support::toLower;
using winapi::ApiId;
using winapi::apiName;

const char* verdictName(Verdict verdict) noexcept {
  switch (verdict) {
    case Verdict::kFires: return "fires";
    case Verdict::kMisses: return "misses";
    case Verdict::kUnhookable: return "unhookable";
    case Verdict::kUnknown: return "unknown";
  }
  return "?";
}

namespace {

/// How one probe resolves against the deployment.
enum class ProbeOutcome : std::uint8_t {
  kServed,          // the deception answers and the predicate holds
  kServedNegative,  // the deception answers authoritatively, predicate fails
  kFallsThrough,    // no hook / no artifact: the real machine answers
  kRuntime,         // launch-context dependent, not statically decidable
  kUnhookable,      // no user-level API surface at all
};

struct ProbeEval {
  ProbeOutcome outcome = ProbeOutcome::kFallsThrough;
  std::string resource;
  std::optional<core::Profile> profile;
};

const char* channelName(ConfigChannel channel) noexcept {
  switch (channel) {
    case ConfigChannel::kNone: return "?";
    case ConfigChannel::kRamBytes: return "hardware.ramBytes";
    case ConfigChannel::kCpuCores: return "hardware.cpuCores";
    case ConfigChannel::kDiskTotalBytes: return "hardware.diskTotalBytes";
    case ConfigChannel::kUptimeMs: return "identity.fakeUptimeMs";
    case ConfigChannel::kSleepPercent: return "identity.sleepPercent";
    case ConfigChannel::kExceptionLatencyCycles:
      return "identity.exceptionLatencyCycles";
    case ConfigChannel::kAutoRunEntries: return "wearTear.autoRunEntries";
    case ConfigChannel::kDeviceClassSubkeys:
      return "wearTear.deviceClassSubkeys";
    case ConfigChannel::kUserName: return "identity.userName";
    case ConfigChannel::kOwnImagePath: return "identity.ownImagePath";
    case ConfigChannel::kPebCpuCores: return "hardware.cpuCores (PEB)";
    case ConfigChannel::kCpuidTrapCycles:
      return "kernel.cpuidTrapExtraCycles";
  }
  return "?";
}

const char* cmpName(Cmp cmp) noexcept {
  switch (cmp) {
    case Cmp::kLess: return "<";
    case Cmp::kLessEq: return "<=";
    case Cmp::kGreater: return ">";
  }
  return "?";
}

std::uint64_t channelValue(const core::Config& config,
                           ConfigChannel channel) noexcept {
  switch (channel) {
    case ConfigChannel::kRamBytes: return config.hardware.ramBytes;
    case ConfigChannel::kCpuCores: return config.hardware.cpuCores;
    case ConfigChannel::kDiskTotalBytes:
      return config.hardware.diskTotalBytes;
    case ConfigChannel::kUptimeMs: return config.identity.fakeUptimeMs;
    case ConfigChannel::kSleepPercent: return config.identity.sleepPercent;
    case ConfigChannel::kExceptionLatencyCycles:
      return config.identity.exceptionLatencyCycles;
    case ConfigChannel::kAutoRunEntries:
      return config.wearTear.autoRunEntries;
    case ConfigChannel::kDeviceClassSubkeys:
      return config.wearTear.deviceClassSubkeys;
    case ConfigChannel::kPebCpuCores: return config.hardware.cpuCores;
    case ConfigChannel::kCpuidTrapCycles:
      return config.kernel.cpuidTrapExtraCycles;
    case ConfigChannel::kUserName:
    case ConfigChannel::kOwnImagePath:
    case ConfigChannel::kNone: break;
  }
  return 0;
}

bool compare(std::uint64_t value, Cmp cmp, std::uint64_t threshold) noexcept {
  switch (cmp) {
    case Cmp::kLess: return value < threshold;
    case Cmp::kLessEq: return value <= threshold;
    case Cmp::kGreater: return value > threshold;
  }
  return false;
}

bool stringMatches(const ResourceProbe& probe, const std::string& value) {
  const std::string lowered = toLower(value);
  for (const std::string& needle : probe.needles) {
    if (probe.stringPredicate == StringPredicate::kEqualsAnyOf &&
        lowered == toLower(needle))
      return true;
    if (probe.stringPredicate == StringPredicate::kContainsAnyOf &&
        icontains(value, needle))
      return true;
  }
  return false;
}

std::string describeThreshold(const ResourceProbe& probe,
                              std::uint64_t value) {
  return std::string(channelName(probe.channel)) + " = " +
         std::to_string(value) + " (predicate " + cmpName(probe.cmp) + " " +
         std::to_string(probe.threshold) + ")";
}

ProbeEval evaluateProbe(const ResourceProbe& probe,
                        const core::ResourceDb& db,
                        const core::Config& config,
                        const std::set<ApiId>& hooked) {
  ProbeEval eval;

  // Channels without a hookable API surface resolve before any hook gating.
  if (probe.kind == ProbeKind::kLaunchContext) {
    eval.outcome = ProbeOutcome::kRuntime;
    eval.resource = "parent-process identity (launch context)";
    return eval;
  }
  if (probe.kind == ProbeKind::kPebRead ||
      probe.kind == ProbeKind::kTscTiming) {
    const bool closed =
        config.kernel.enabled && (probe.kind == ProbeKind::kPebRead
                                      ? config.kernel.spoofPeb
                                      : config.kernel.trapCpuid);
    if (!closed) {
      eval.outcome = ProbeOutcome::kUnhookable;
      eval.resource = probe.resources.front() + " (kernel extension off)";
      return eval;
    }
    const std::uint64_t value = channelValue(config, probe.channel);
    eval.outcome = compare(value, probe.cmp, probe.threshold)
                       ? ProbeOutcome::kServed
                       : ProbeOutcome::kServedNegative;
    eval.resource = probe.resources.front() + " via kernel extension, " +
                    describeThreshold(probe, value);
    return eval;
  }
  if (probe.kind == ProbeKind::kHookPresence) {
    for (ApiId api : probe.apis)
      if (hooked.count(api) != 0) {
        eval.outcome = ProbeOutcome::kServed;
        eval.resource = std::string(apiName(api)) + " prologue patched";
        return eval;
      }
    eval.resource = "no scanned prologue is patched";
    return eval;
  }

  // Everything else needs its whole API surface hooked to be deceived.
  for (ApiId api : probe.apis)
    if (hooked.count(api) == 0) {
      eval.resource = std::string(apiName(api)) + " not hooked";
      return eval;
    }

  auto matchFirst = [&](auto&& match) {
    for (const std::string& resource : probe.resources)
      if (const auto profile = match(resource)) {
        eval.outcome = ProbeOutcome::kServed;
        eval.resource = resource;
        eval.profile = *profile;
        return true;
      }
    eval.resource = "no artifact: " + probe.resources.front();
    if (probe.resources.size() > 1)
      eval.resource +=
          " (+" + std::to_string(probe.resources.size() - 1) + " more)";
    return false;
  };

  switch (probe.kind) {
    case ProbeKind::kFile:
      matchFirst([&](const std::string& r) { return db.matchFile(r); });
      return eval;
    case ProbeKind::kRegistryKey:
      matchFirst(
          [&](const std::string& r) { return db.matchRegistryKey(r); });
      return eval;
    case ProbeKind::kProcessScan:
      matchFirst([&](const std::string& r) { return db.matchProcess(r); });
      return eval;
    case ProbeKind::kModuleHandle:
      matchFirst([&](const std::string& r) { return db.matchDll(r); });
      return eval;
    case ProbeKind::kWindow:
      matchFirst(
          [&](const std::string& r) { return db.matchWindow(r, ""); });
      return eval;

    case ProbeKind::kRegistryValue: {
      const std::string& key = probe.resources.front();
      const auto match = db.matchRegistryValue(key, probe.valueName);
      if (!match.has_value()) {
        eval.resource = "value not in database: " + key + "!" +
                        probe.valueName;
        return eval;
      }
      eval.profile = match->profile;
      eval.resource =
          key + "!" + probe.valueName + " = \"" + match->value.str + "\"";
      if (stringMatches(probe, match->value.str)) {
        eval.outcome = ProbeOutcome::kServed;
      } else {
        eval.outcome = ProbeOutcome::kServedNegative;
        eval.resource += " fails the vendor predicate";
      }
      return eval;
    }

    case ProbeKind::kDebuggerFlag:
      eval.outcome = ProbeOutcome::kServed;
      eval.resource = probe.resources.front();
      return eval;

    case ProbeKind::kNetworkSinkhole:
      eval.outcome = ProbeOutcome::kServed;
      eval.resource =
          probe.resources.front() + " -> sinkhole " + config.sinkholeIp;
      return eval;

    case ProbeKind::kValueThreshold: {
      const std::uint64_t value = channelValue(config, probe.channel);
      eval.outcome = compare(value, probe.cmp, probe.threshold)
                         ? ProbeOutcome::kServed
                         : ProbeOutcome::kServedNegative;
      eval.resource = describeThreshold(probe, value);
      if (eval.outcome == ProbeOutcome::kServedNegative)
        eval.resource += " not met";
      return eval;
    }

    case ProbeKind::kIdentityString: {
      const std::string& value = probe.channel == ConfigChannel::kUserName
                                     ? config.identity.userName
                                     : config.identity.ownImagePath;
      eval.outcome = stringMatches(probe, value)
                         ? ProbeOutcome::kServed
                         : ProbeOutcome::kServedNegative;
      eval.resource = std::string(channelName(probe.channel)) + " = \"" +
                      value + "\"";
      if (eval.outcome == ProbeOutcome::kServedNegative)
        eval.resource += " looks benign";
      return eval;
    }

    case ProbeKind::kHookPresence:
    case ProbeKind::kLaunchContext:
    case ProbeKind::kPebRead:
    case ProbeKind::kTscTiming:
      break;  // handled above
  }
  return eval;
}

TechniqueCoverage analyzeTechnique(const TechniqueFootprint& footprint,
                                   const core::ResourceDb& db,
                                   const core::Config& config,
                                   const std::set<ApiId>& hooked) {
  TechniqueCoverage out;
  out.technique = footprint.technique;
  for (ApiId api : footprintApis(footprint.technique))
    out.apis.push_back({api, hooked.count(api) != 0});

  bool anyRuntime = false;
  bool allUnhookable = true;
  std::string firstGap;

  for (const std::vector<ResourceProbe>& group : footprint.groups) {
    bool fires = true;
    std::vector<ProbeEval> evals;
    for (const ResourceProbe& probe : group) {
      ProbeEval eval = evaluateProbe(probe, db, config, hooked);
      allUnhookable =
          allUnhookable && eval.outcome == ProbeOutcome::kUnhookable;
      anyRuntime = anyRuntime || eval.outcome == ProbeOutcome::kRuntime;
      if (eval.outcome != ProbeOutcome::kServed) {
        fires = false;
        if (firstGap.empty()) firstGap = eval.resource;
      }
      evals.push_back(std::move(eval));
      if (!fires) break;  // the dynamic conjunctions short-circuit too
    }
    if (!fires) continue;

    out.verdict = Verdict::kFires;
    out.predictedTrigger = group.front().alertLabel;
    out.detail = evals.front().resource;
    for (const ProbeEval& eval : evals) {
      if (!eval.profile.has_value()) continue;
      bool known = false;
      for (core::Profile p : out.servingProfiles)
        known = known || p == *eval.profile;
      if (!known) out.servingProfiles.push_back(*eval.profile);
    }
    return out;
  }

  if (allUnhookable) {
    out.verdict = Verdict::kUnhookable;
    out.detail = firstGap;
  } else if (anyRuntime) {
    out.verdict = Verdict::kUnknown;
    out.detail = firstGap;
  } else {
    out.verdict = Verdict::kMisses;
    out.detail = firstGap;
  }
  return out;
}

}  // namespace

std::string CoverageReport::summary() const {
  return "fires=" + std::to_string(firesCount) +
         " misses=" + std::to_string(missesCount) +
         " unhookable=" + std::to_string(unhookableCount) +
         " unknown=" + std::to_string(unknownCount);
}

CoverageReport analyzeCoverage(const core::ResourceDb& db,
                               const core::Config& config) {
  return analyzeCoverage(db, config, {});
}

CoverageReport analyzeCoverage(const core::ResourceDb& db,
                               const core::Config& config,
                               const std::set<ApiId>& quarantined) {
  // The exact hooked-API set comes from the engine itself, so the static
  // gate can never disagree with what installInto() would install. Hooks
  // the runtime quarantined are subtracted: their probes reach the real
  // machine now, so any technique leaning on them must read kMisses.
  std::set<ApiId> hooked =
      core::DeceptionEngine(config, core::ResourceDb{}).hookedApiIds();
  for (ApiId id : quarantined) hooked.erase(id);

  CoverageReport report;
  report.techniques.reserve(footprintTable().size());
  for (const TechniqueFootprint& footprint : footprintTable()) {
    TechniqueCoverage coverage =
        analyzeTechnique(footprint, db, config, hooked);
    switch (coverage.verdict) {
      case Verdict::kFires: ++report.firesCount; break;
      case Verdict::kMisses: ++report.missesCount; break;
      case Verdict::kUnhookable: ++report.unhookableCount; break;
      case Verdict::kUnknown: ++report.unknownCount; break;
    }
    report.techniques.push_back(std::move(coverage));
  }
  return report;
}

std::string coverageJson(const CoverageReport& report) {
  std::string out = "{\n";
  out += "  \"summary\": {\"fires\": " + std::to_string(report.firesCount) +
         ", \"misses\": " + std::to_string(report.missesCount) +
         ", \"unhookable\": " + std::to_string(report.unhookableCount) +
         ", \"unknown\": " + std::to_string(report.unknownCount) + "},\n";
  out += "  \"techniques\": [\n";
  for (std::size_t i = 0; i < report.techniques.size(); ++i) {
    const TechniqueCoverage& t = report.techniques[i];
    out += "    {\n";
    out += "      \"technique\": \"" +
           jsonEscape(malware::techniqueName(t.technique)) + "\",\n";
    out += "      \"verdict\": \"" + std::string(verdictName(t.verdict)) +
           "\",\n";
    out += "      \"trigger\": \"" + jsonEscape(t.predictedTrigger) +
           "\",\n";
    out += "      \"detail\": \"" + jsonEscape(t.detail) + "\",\n";
    out += "      \"profiles\": [";
    for (std::size_t p = 0; p < t.servingProfiles.size(); ++p) {
      if (p != 0) out += ", ";
      out += "\"" + std::string(core::profileName(t.servingProfiles[p])) +
             "\"";
    }
    out += "],\n";
    out += "      \"apis\": [";
    for (std::size_t a = 0; a < t.apis.size(); ++a) {
      if (a != 0) out += ", ";
      out += "{\"name\": \"" + std::string(apiName(t.apis[a].api)) +
             "\", \"hooked\": " + (t.apis[a].hooked ? "true" : "false") +
             "}";
    }
    out += "]\n";
    out += i + 1 == report.techniques.size() ? "    }\n" : "    },\n";
  }
  out += "  ]\n}\n";
  return out;
}

obs::MetricsSnapshot coverageTelemetry(const CoverageReport& report) {
  obs::MetricsRegistry registry;
  std::int64_t edges = 0, hookedEdges = 0;
  for (const TechniqueCoverage& t : report.techniques) {
    registry.counter("analysis.technique_verdicts", verdictName(t.verdict))
        .inc();
    for (const TechniqueCoverage::ApiReach& reach : t.apis) {
      ++edges;
      if (reach.hooked) ++hookedEdges;
    }
  }
  registry.gauge("analysis.techniques_total")
      .set(static_cast<std::int64_t>(report.techniques.size()));
  registry.gauge("analysis.matrix_edges").set(edges);
  registry.gauge("analysis.matrix_hooked_edges").set(hookedEdges);
  return registry.snapshot();
}

std::string renderCoverageSection(const CoverageReport& report) {
  std::string out = "## Static deception coverage\n\n";
  out += report.summary() + " (" +
         std::to_string(report.techniques.size()) + " techniques)\n\n";
  bool anyGap = false;
  for (const TechniqueCoverage& t : report.techniques) {
    if (t.verdict == Verdict::kFires) continue;
    if (!anyGap) {
      out += "Techniques this deployment does NOT fire on:\n\n";
      anyGap = true;
    }
    out += std::string("- `") + malware::techniqueName(t.technique) +
           "` — " + verdictName(t.verdict) + " — " + t.detail + "\n";
  }
  if (!anyGap)
    out += "Every modeled technique fires against this deployment.\n";
  return out;
}

}  // namespace scarecrow::analysis
