#include "analysis/lint.h"

#include <map>
#include <set>

#include "analysis/footprint.h"
#include "core/profiles.h"
#include "support/strings.h"

namespace scarecrow::analysis {

using support::jsonEscape;
using support::normalizePath;
using support::toLower;

const char* lintKindName(LintKind kind) noexcept {
  switch (kind) {
    case LintKind::kDeadResource: return "dead-resource";
    case LintKind::kDuplicateEntry: return "duplicate-entry";
    case LintKind::kShadowedKey: return "shadowed-key";
    case LintKind::kVendorContradiction: return "vendor-contradiction";
    case LintKind::kHardwareContradiction:
      return "hardware-contradiction";
    case LintKind::kCoveringDeadProfile: return "covering-dead-profile";
  }
  return "?";
}

std::vector<LintFinding> LintReport::of(LintKind kind) const {
  std::vector<LintFinding> out;
  for (const LintFinding& finding : findings)
    if (finding.kind == kind) out.push_back(finding);
  return out;
}

std::size_t LintReport::countOf(LintKind kind) const noexcept {
  std::size_t n = 0;
  for (const LintFinding& finding : findings)
    if (finding.kind == kind) ++n;
  return n;
}

namespace {

/// Everything the modeled probes can look up, one set per channel, all
/// lower-case. Seeded from the footprint table, then extended with the
/// fingerprint suites' probe surface (pafish.cpp / sandprint.cpp), which
/// observes VirtualBox/VMware artifacts beyond the technique library.
struct ObservedSurface {
  std::set<std::string> files;
  std::set<std::string> registryKeys;
  std::set<std::string> registryValues;  // "key!value"
  std::set<std::string> processes;
  std::set<std::string> dlls;
  std::set<std::string> windowClasses;
};

ObservedSurface buildObservedSurface() {
  ObservedSurface surface;
  for (const TechniqueFootprint& footprint : footprintTable()) {
    for (const auto& group : footprint.groups) {
      for (const ResourceProbe& probe : group) {
        switch (probe.kind) {
          case ProbeKind::kFile:
            for (const std::string& r : probe.resources)
              surface.files.insert(toLower(normalizePath(r)));
            break;
          case ProbeKind::kRegistryKey:
            for (const std::string& r : probe.resources)
              surface.registryKeys.insert(toLower(r));
            break;
          case ProbeKind::kRegistryValue:
            surface.registryKeys.insert(toLower(probe.resources.front()));
            surface.registryValues.insert(
                toLower(probe.resources.front()) + "!" +
                toLower(probe.valueName));
            break;
          case ProbeKind::kProcessScan:
            for (const std::string& r : probe.resources)
              surface.processes.insert(toLower(r));
            break;
          case ProbeKind::kModuleHandle:
            for (const std::string& r : probe.resources)
              surface.dlls.insert(toLower(r));
            break;
          case ProbeKind::kWindow:
            for (const std::string& r : probe.resources)
              surface.windowClasses.insert(toLower(r));
            break;
          case ProbeKind::kDebuggerFlag:
          case ProbeKind::kValueThreshold:
          case ProbeKind::kIdentityString:
          case ProbeKind::kNetworkSinkhole:
          case ProbeKind::kHookPresence:
          case ProbeKind::kLaunchContext:
          case ProbeKind::kPebRead:
          case ProbeKind::kTscTiming:
            break;  // no database-entry surface
        }
      }
    }
  }

  // Fingerprint-suite surface (fingerprint/pafish.cpp, sandprint.cpp).
  const char* kDrivers = "c:\\windows\\system32\\drivers\\";
  const char* kSystem32 = "c:\\windows\\system32\\";
  for (const char* file :
       {"vboxmouse.sys", "vboxguest.sys", "vboxsf.sys", "vboxvideo.sys",
        "vmmouse.sys", "vmhgfs.sys"})
    surface.files.insert(std::string(kDrivers) + file);
  for (const char* file : {"vboxdisp.dll", "vboxhook.dll", "vboxtray.exe"})
    surface.files.insert(std::string(kSystem32) + file);
  for (const char* device :
       {"\\\\.\\vboxguest", "\\\\.\\pipe\\cuckoo", "\\\\.\\cuckoo",
        "\\\\.\\pipe\\cuckoo_result"})
    surface.files.insert(device);
  for (const char* key :
       {"hkcu\\software\\wine",
        "system\\currentcontrolset\\services\\vmnetadapter"})
    surface.registryKeys.insert(key);
  const char* kSystemKey = "hardware\\description\\system";
  const char* kScsiKey =
      "hardware\\devicemap\\scsi\\scsi port 0\\scsi bus 0\\target id 0\\"
      "logical unit id 0";
  for (const char* value :
       {"systembiosversion", "videobiosversion", "systembiosdate"})
    surface.registryValues.insert(std::string(kSystemKey) + "!" + value);
  surface.registryValues.insert(
      std::string(kSystemKey) + "\\bios!systemmanufacturer");
  surface.registryValues.insert(std::string(kScsiKey) + "!identifier");
  for (const std::string& value : surface.registryValues)
    surface.registryKeys.insert(value.substr(0, value.find('!')));
  for (const char* process :
       {"vboxservice.exe", "vboxtray.exe", "vmtoolsd.exe"})
    surface.processes.insert(process);
  surface.windowClasses.insert("vboxtraytoolwndclass");
  surface.windowClasses.insert("vmwaretraywindow");
  surface.dlls.insert("sbiedll.dll");
  return surface;
}

/// A stored key is observed when some probed key opens it directly, opens
/// a descendant the stored key answers for, or opens an ancestor that the
/// stored key makes enumerable (ResourceDb::matchRegistryKey semantics).
bool keyObserved(const std::string& stored,
                 const std::set<std::string>& probed) {
  for (const std::string& probe : probed) {
    if (stored == probe) return true;
    if (stored.size() > probe.size() &&
        stored.compare(0, probe.size() + 1, probe + '\\') == 0)
      return true;
    if (probe.size() > stored.size() &&
        probe.compare(0, stored.size() + 1, stored + '\\') == 0)
      return true;
  }
  return false;
}

void lintDead(const core::ResourceDb& db, const ObservedSurface& surface,
              LintReport& report) {
  auto dead = [&report](const std::string& resource, core::Profile profile,
                        const char* channel) {
    report.findings.push_back(
        {LintKind::kDeadResource, resource,
         std::string("no modeled technique or fingerprint probe observes "
                     "this ") +
             channel,
         profile});
  };

  db.forEachFile([&](const std::string& path, core::Profile profile) {
    ++report.entriesChecked;
    if (surface.files.count(path) == 0) dead(path, profile, "file");
  });
  db.forEachRegistryKey([&](const std::string& path, core::Profile profile) {
    ++report.entriesChecked;
    if (!keyObserved(path, surface.registryKeys))
      dead(path, profile, "registry key");
  });
  db.forEachRegistryValue([&](const std::string& key,
                              const std::string& valueName,
                              const core::ResourceDb::ValueMatch& match) {
    ++report.entriesChecked;
    if (surface.registryValues.count(key + "!" + valueName) == 0)
      dead(key + "!" + valueName, match.profile, "registry value");
  });
  for (const core::FakeProcess& process : db.fakeProcesses()) {
    ++report.entriesChecked;
    if (surface.processes.count(toLower(process.imageName)) == 0)
      dead(process.imageName, process.profile, "process");
  }
  db.forEachDll([&](const std::string& name, core::Profile profile) {
    ++report.entriesChecked;
    if (surface.dlls.count(name) == 0) dead(name, profile, "DLL");
  });
  for (const core::FakeWindow& window : db.fakeWindows()) {
    ++report.entriesChecked;
    if (surface.windowClasses.count(toLower(window.className)) == 0)
      dead(window.className, window.profile, "window class");
  }
}

void lintDuplicates(const core::ResourceDb& db, LintReport& report) {
  // Files, keys, values and DLLs are keyed maps — duplicates cannot
  // survive insertion. Processes and windows are lists, so a double add
  // double-populates every Toolhelp snapshot / FindWindow scan.
  std::map<std::string, std::size_t> processes;
  for (const core::FakeProcess& process : db.fakeProcesses())
    ++processes[toLower(process.imageName)];
  for (const auto& [name, count] : processes)
    if (count > 1)
      report.findings.push_back(
          {LintKind::kDuplicateEntry, name,
           "process stored " + std::to_string(count) +
               " times; every snapshot lists it that often",
           *db.matchProcess(name)});

  std::map<std::string, std::size_t> windows;
  for (const core::FakeWindow& window : db.fakeWindows())
    ++windows[toLower(window.className)];
  for (const auto& [name, count] : windows)
    if (count > 1)
      report.findings.push_back({LintKind::kDuplicateEntry, name,
                                 "window class stored " +
                                     std::to_string(count) + " times",
                                 *db.matchWindow(name, "")});
}

void lintShadowedKeys(const core::ResourceDb& db, LintReport& report) {
  std::vector<std::pair<std::string, core::Profile>> keys;
  db.forEachRegistryKey([&](const std::string& path, core::Profile profile) {
    keys.emplace_back(path, profile);
  });
  // Map order is sorted, so any ancestor precedes its descendants.
  for (std::size_t i = 0; i < keys.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const std::string& ancestor = keys[j].first;
      const std::string& descendant = keys[i].first;
      if (descendant.size() > ancestor.size() &&
          descendant.compare(0, ancestor.size() + 1, ancestor + '\\') == 0) {
        report.findings.push_back(
            {LintKind::kShadowedKey, descendant,
             "existence probes are already answered by stored ancestor '" +
                 ancestor + "' (" +
                 core::profileName(keys[j].second) + ")",
             keys[i].second});
        break;  // one finding per shadowed key is enough
      }
    }
  }
}

void lintVendors(const core::ResourceDb& db, LintReport& report) {
  for (const core::VendorConflict& conflict : core::vendorConflicts(db))
    report.findings.push_back(
        {LintKind::kVendorContradiction, conflict.first.resource,
         "claims " + std::string(core::profileName(conflict.first.vendor)) +
             " but '" + conflict.second.resource + "' claims " +
             core::profileName(conflict.second.vendor),
         conflict.first.vendor});
}

void lintHardware(const core::ResourceDb& db, const core::Config& config,
                  LintReport& report) {
  const std::vector<core::VendorEvidence> evidence =
      core::collectVendorEvidence(db);
  if (evidence.empty()) return;
  const core::VendorEvidence& guest = evidence.front();

  if (!config.hardwareResources) {
    report.findings.push_back(
        {LintKind::kHardwareContradiction, guest.resource,
         "registry claims a " +
             std::string(core::profileName(guest.vendor)) +
             " guest but hardware deception is disabled: sysinfo answers "
             "come from the host",
         guest.vendor});
    return;
  }
  // A registry-certified VM guest with workstation-class hardware numbers
  // is its own fingerprint: public sandboxes are small by construction.
  const core::HardwareDeception& hw = config.hardware;
  if (hw.cpuCores > 2 || hw.ramBytes > (4ULL << 30) ||
      hw.diskTotalBytes > (128ULL << 30))
    report.findings.push_back(
        {LintKind::kHardwareContradiction, guest.resource,
         "registry claims a " +
             std::string(core::profileName(guest.vendor)) +
             " guest but the hardware story is workstation-class: cores=" +
             std::to_string(hw.cpuCores) + " ramBytes=" +
             std::to_string(hw.ramBytes) + " diskTotalBytes=" +
             std::to_string(hw.diskTotalBytes),
         guest.vendor});
}

}  // namespace

LintReport lintResourceDb(const core::ResourceDb& db,
                          const core::Config& config) {
  static const ObservedSurface surface = buildObservedSurface();
  LintReport report;
  lintDead(db, surface, report);
  lintDuplicates(db, report);
  lintShadowedKeys(db, report);
  lintVendors(db, report);
  lintHardware(db, config, report);
  return report;
}

std::string lintJson(const LintReport& report) {
  std::string out = "{\n";
  out += "  \"entriesChecked\": " + std::to_string(report.entriesChecked) +
         ",\n";
  out += "  \"findings\": [\n";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const LintFinding& finding = report.findings[i];
    out += "    {\"kind\": \"" + std::string(lintKindName(finding.kind)) +
           "\", \"resource\": \"" + jsonEscape(finding.resource) +
           "\", \"profile\": \"" + core::profileName(finding.profile) +
           "\", \"detail\": \"" + jsonEscape(finding.detail) + "\"}";
    out += i + 1 == report.findings.size() ? "\n" : ",\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace scarecrow::analysis
