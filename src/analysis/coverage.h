// Static deception-coverage engine.
//
// Folds every technique footprint (analysis/footprint.h) over a
// (ResourceDb, Config) pair and proves — in microseconds, with no Machine
// execution — which evasion predicates the deployment satisfies. The
// verdict lattice:
//
//   kFires      the deception satisfies the predicate: a sample composed
//               of this technique deactivates itself
//   kMisses     hookable, but this database/config does not satisfy it —
//               the probe falls through to (or is answered truthfully by)
//               the real machine
//   kUnhookable no user-level API surface to deceive (PEB reads, RDTSC
//               timing) while the kernel extension is off — the paper's
//               documented blind spots
//   kUnknown    decided by launch context at runtime, not by the
//               deception layer (parent-process identity)
//
// The same fold yields the Technique x API reachability matrix: which
// hooked APIs each technique can travel through to reach the database.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "analysis/footprint.h"
#include "core/config.h"
#include "core/resource_db.h"
#include "obs/metrics.h"

namespace scarecrow::analysis {

enum class Verdict : std::uint8_t {
  kFires,
  kMisses,
  kUnhookable,
  kUnknown,
};

const char* verdictName(Verdict verdict) noexcept;

/// One technique's static evaluation against a (db, config) pair.
struct TechniqueCoverage {
  malware::Technique technique{};
  Verdict verdict = Verdict::kUnknown;
  /// Alert label the first satisfied probe raises — the predicted
  /// DeactivationVerdict::firstTrigger when this technique fires first.
  /// Empty when the technique misses or its hook deceives silently.
  std::string predictedTrigger;
  /// First satisfied resource (kFires) or the first gap (otherwise).
  std::string detail;
  /// Profiles whose artifacts satisfy the firing group, first-served order.
  std::vector<core::Profile> servingProfiles;
  /// The technique's reachability-matrix row: every API its footprint can
  /// touch, with the hooked bit under the analyzed config.
  struct ApiReach {
    winapi::ApiId api{};
    bool hooked = false;
  };
  std::vector<ApiReach> apis;
};

struct CoverageReport {
  std::vector<TechniqueCoverage> techniques;  // Technique enum order
  std::size_t firesCount = 0;
  std::size_t missesCount = 0;
  std::size_t unhookableCount = 0;
  std::size_t unknownCount = 0;

  const TechniqueCoverage& of(malware::Technique technique) const {
    return techniques[static_cast<std::size_t>(technique)];
  }
  /// "fires=26 misses=0 unhookable=2 unknown=1".
  std::string summary() const;
};

/// Evaluates the full footprint table against the database symbolically.
CoverageReport analyzeCoverage(const core::ResourceDb& db,
                               const core::Config& config = {});

/// Same fold, but with hooks the engine quarantined at runtime
/// (DeceptionEngine::quarantinedHooks) subtracted from the hooked set: a
/// quarantined hook's probes fall through to the real machine, so a
/// technique that depended on it downgrades to kMisses. With an empty set
/// this is exactly the overload above — static analysis and degraded
/// runtime reality stay in agreement (asserted by the drift gate).
CoverageReport analyzeCoverage(const core::ResourceDb& db,
                               const core::Config& config,
                               const std::set<winapi::ApiId>& quarantined);

/// Deterministic JSON rendering (stable ordering and field layout) of the
/// verdicts and the reachability matrix — golden-test and diff friendly.
std::string coverageJson(const CoverageReport& report);

/// Verdict and matrix counters as a metrics snapshot, renderable through
/// obs::Exporter next to the rest of the deployment's telemetry.
obs::MetricsSnapshot coverageTelemetry(const CoverageReport& report);

/// Markdown "Static deception coverage" section for the incident-report
/// appendix (core::ReportOptions::appendixSections).
std::string renderCoverageSection(const CoverageReport& report);

}  // namespace scarecrow::analysis
