// Static API footprints of the evasion technique library.
//
// Every malware::Technique is described declaratively: the APIs it
// dispatches through, the resource paths / registry keys it looks up, and
// the threshold or string predicate it applies to what it reads. The table
// is the ground truth the coverage engine (analysis/coverage.h) folds over
// a ResourceDb + Config with no Machine execution, and the drift gate
// (tests/analysis_drift_test.cpp) pins it against the dynamic behaviour of
// malware/techniques.cpp so the two can never silently diverge.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "malware/techniques.h"
#include "winapi/api_ids.h"

namespace scarecrow::analysis {

/// The observation channel one probe goes through.
enum class ProbeKind : std::uint8_t {
  kFile,             // file / folder existence lookup
  kRegistryKey,      // RegOpenKeyEx / NtOpenKeyEx key open
  kRegistryValue,    // value query + string predicate on the served data
  kProcessScan,      // Toolhelp snapshot scan for an image name
  kModuleHandle,     // GetModuleHandle on a monitoring DLL
  kWindow,           // FindWindow by window class
  kDebuggerFlag,     // debugger-presence channel, served unconditionally
  kValueThreshold,   // numeric deception value vs the technique's threshold
  kIdentityString,   // GetUserName / GetModuleFileName string predicate
  kNetworkSinkhole,  // NX domains resolving through the DNS/HTTP sinkhole
  kHookPresence,     // prologue scan of commonly hooked APIs (paper Fig. 1)
  kLaunchContext,    // parent-process identity: runtime, not DB, dependent
  kPebRead,          // direct PEB memory read (no user-level API surface)
  kTscTiming,        // CPUID-between-RDTSC timing (no API surface)
};

const char* probeKindName(ProbeKind kind) noexcept;

/// The Config field a kValueThreshold / kIdentityString probe observes.
enum class ConfigChannel : std::uint8_t {
  kNone,
  kRamBytes,                // hardware.ramBytes
  kCpuCores,                // hardware.cpuCores
  kDiskTotalBytes,          // hardware.diskTotalBytes
  kUptimeMs,                // identity.fakeUptimeMs
  kSleepPercent,            // identity.sleepPercent (Sleep(500) skew)
  kExceptionLatencyCycles,  // identity.exceptionLatencyCycles
  kAutoRunEntries,          // wearTear.autoRunEntries
  kDeviceClassSubkeys,      // wearTear.deviceClassSubkeys
  kUserName,                // identity.userName
  kOwnImagePath,            // identity.ownImagePath
  kPebCpuCores,             // hardware.cpuCores via the kernel PEB spoof
  kCpuidTrapCycles,         // kernel.cpuidTrapExtraCycles
};

enum class Cmp : std::uint8_t { kLess, kLessEq, kGreater };

enum class StringPredicate : std::uint8_t {
  kNone,
  kEqualsAnyOf,
  kContainsAnyOf,
};

struct ResourceProbe {
  ProbeKind kind{};
  /// User-level APIs the probe dispatches through. The probe can reach the
  /// deception layer only when every one of them is hooked (any one, for
  /// kHookPresence — the scan fires on the first patched prologue).
  std::vector<winapi::ApiId> apis;
  /// The alert label the engine raises when the probe is served — what
  /// Table I's "Trigger" column (DeactivationVerdict::firstTrigger) shows.
  /// Empty for hooks that deceive silently (e.g. RaiseException).
  std::string alertLabel;
  /// Candidate resources, satisfied by the FIRST match — the dynamic
  /// probes short-circuit in the same order. File paths, registry keys,
  /// image names, DLL names, window classes, or sinkhole domains, per kind.
  std::vector<std::string> resources;
  /// kRegistryValue only: the value under resources[0] the predicate reads.
  std::string valueName;
  StringPredicate stringPredicate = StringPredicate::kNone;
  std::vector<std::string> needles;
  /// kValueThreshold / kIdentityString / kPebRead / kTscTiming: the Config
  /// channel observed and the comparison the technique applies to it.
  ConfigChannel channel = ConfigChannel::kNone;
  Cmp cmp = Cmp::kLess;
  std::uint64_t threshold = 0;
};

/// A technique reports "analysis environment" as soon as every probe of one
/// group is satisfied: groups are OR-ed in declaration order, probes inside
/// a group AND-ed — the disjunction-of-conjunctions shape of Case I
/// evasive logic.
struct TechniqueFootprint {
  malware::Technique technique{};
  std::vector<std::vector<ResourceProbe>> groups;
};

/// The complete footprint table, one row per technique, in enum order.
/// The builder switch in footprint.cpp is exhaustive under -Werror=switch,
/// so a new Technique cannot ship without declaring its footprint.
const std::vector<TechniqueFootprint>& footprintTable();

/// The table row for one technique.
const TechniqueFootprint& footprintFor(malware::Technique technique);

/// Union of APIs the technique can reach, sorted by ApiId — its row of the
/// Technique x API reachability matrix.
std::vector<winapi::ApiId> footprintApis(malware::Technique technique);

}  // namespace scarecrow::analysis
