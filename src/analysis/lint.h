// Resource-database linter.
//
// The coverage engine proves what a database *does*; the linter proves
// what it should not do. Four rule families:
//
//   kDeadResource         the entry is observed by no modeled technique or
//                         fingerprint probe — it serves nobody (it may
//                         still be a deliberate forward-deployed decoy;
//                         tests waive those explicitly)
//   kDuplicateEntry       the same artifact is stored twice (processes and
//                         windows are kept as lists, so duplicates survive
//                         insertion and double-populate snapshots)
//   kShadowedKey          a stored registry key is a strict descendant of
//                         another stored key: existence probes are already
//                         answered by the ancestor, and the two may
//                         attribute alerts to different profiles
//   kVendorContradiction  artifacts of two different VM vendors coexist —
//                         the Section VI-B cross-vendor check would catch
//                         the deployment (core::vendorConflicts names the
//                         offending profile pair)
//   kHardwareContradiction the registry claims a VM guest while the
//                         hardware channel denies it: vendor BIOS strings
//                         with the hardware category disabled, or with
//                         workstation-class core/RAM/disk numbers
//   kCoveringDeadProfile  a universe profile selected by no minimal
//                         covering (analysis/coverings.h): everything it
//                         fires is covered elsewhere, so it is decoy
//                         surface — kept deliberately or retired
//                         (emitted by lintCoveringPlan, not
//                         lintResourceDb)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/resource_db.h"

namespace scarecrow::analysis {

enum class LintKind : std::uint8_t {
  kDeadResource,
  kDuplicateEntry,
  kShadowedKey,
  kVendorContradiction,
  kHardwareContradiction,
  kCoveringDeadProfile,
};

const char* lintKindName(LintKind kind) noexcept;

struct LintFinding {
  LintKind kind{};
  std::string resource;
  std::string detail;
  core::Profile profile = core::Profile::kGeneric;
};

struct LintReport {
  std::vector<LintFinding> findings;
  std::size_t entriesChecked = 0;

  bool clean() const noexcept { return findings.empty(); }
  std::vector<LintFinding> of(LintKind kind) const;
  std::size_t countOf(LintKind kind) const noexcept;
};

/// Lints the database against the observed surface of the technique
/// library and the fingerprint suites, plus the config's hardware story.
LintReport lintResourceDb(const core::ResourceDb& db,
                          const core::Config& config = {});

/// Deterministic JSON rendering of the findings.
std::string lintJson(const LintReport& report);

}  // namespace scarecrow::analysis
