// Minimal deception coverings: static set-cover over the coverage lattice.
//
// The coverage engine (analysis/coverage.h) proves, per (ResourceDb,
// Config) pair, which techniques hit kFires. A corpus sweep that runs
// every sample under every profile is therefore mostly wasted work: the
// lattice already says which single profile deactivates each sample.
// MIMOSA's observation ("Reducing Malware Analysis Overhead with
// Coverings", PAPERS.md) is that a small set of machine configurations —
// a covering — collectively fires every coverable technique, so each
// sample needs exactly one run under its covering.
//
// planCoverings() is the deterministic greedy set-cover planner: it folds
// analyzeCoverage over a profile universe (defaultProfileUniverse() =
// core::kAllSandboxProfiles × config variants, or any caller-supplied
// overlay list) and emits a CoveringPlan — the ordered covering picks,
// the techniques no universe profile can fire (the explicit uncoverable
// residue: kUnhookable channels, runtime-decided probes, and lattice
// holes), and the profiles no minimal covering needs (covering-dead decoy
// surface, flagged by lintCoveringPlan). Ties break on (coverage count
// desc, profile name asc), so the plan — and coveringJson's bytes — are
// identical on every run.
//
// CoveringRouter is the dynamic half: it maps an EvalRequest (by its
// sample's observed technique set) to the first covering that fires any
// of its techniques, stamps the covering's (db, config) onto the request
// via EvalRequest::dbFactory, and drives core::EvalService so a corpus
// submits each known sample once instead of once-per-profile — the
// O(samples × profiles) → ~O(samples) reduction, with verdicts
// byte-identical to the full sweep (asserted by the coverings drift and
// parity gates, and re-proven by bench_coverings on every perf run).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "core/config.h"
#include "core/eval.h"
#include "core/resource_db.h"
#include "core/service.h"
#include "malware/sample.h"
#include "malware/techniques.h"
#include "obs/metrics.h"

namespace scarecrow::analysis {

/// One candidate deployment in the planner's universe: a coherent
/// deception database plus the Config it would run under. The db is a
/// factory (not a value) so the router can stamp it straight onto
/// EvalRequest::dbFactory and every worker builds its own copy.
struct CoveringProfile {
  /// Stable identifier ("cuckoo-virtualbox/paper"); the tie-breaker and
  /// the key every renderer, lint finding, and routed run reports.
  std::string name;
  std::function<core::ResourceDb()> db;
  core::Config config{};
};

/// The built-in universe: every core::kAllSandboxProfiles database
/// crossed with two config variants —
///   "paper"        the paper's published deception values (default
///                  Config: 1 core / 1 GB RAM / 50 GB disk, sandbox
///                  identity, sleep patching on);
///   "workstation"  analyst-realism values (8 cores, 16 GB, 1 TB, real
///                  user identity, no sleep patching) under which every
///                  threshold and identity technique misses — included
///                  so the planner demonstrably rejects them, and the
///                  covering-dead lint has real decoy surface to flag.
/// Entries are ordered profile-major, variant-minor; names are
/// "<sandbox-profile>/<variant>".
std::vector<CoveringProfile> defaultProfileUniverse();

/// The two built-in config variants, exposed for tests and overlays.
core::Config paperVariantConfig();
core::Config workstationVariantConfig();

/// One greedy pick: the profile and what it bought.
struct CoveringPick {
  /// Index into the universe the plan was built from.
  std::size_t universeIndex = 0;
  std::string profile;  // CoveringProfile::name
  /// Target techniques this pick newly covered (the greedy gain), in
  /// Technique enum order.
  std::vector<malware::Technique> covered;
  /// Every target technique kFires under this profile (covered ⊆ fires),
  /// in Technique enum order — what the router matches samples against.
  std::vector<malware::Technique> fires;
};

/// Why a technique is outside every covering.
enum class ResidueReason : std::uint8_t {
  kUnhookable,      // no user-level API surface (PEB reads, RDTSC timing)
  kRuntime,         // decided by launch context, not by the deception layer
  kNoProfileFires,  // hookable, but no universe profile satisfies it
};

const char* residueReasonName(ResidueReason reason) noexcept;

/// One uncoverable technique, reported explicitly instead of silently
/// dropped from the plan.
struct CoveringResidue {
  malware::Technique technique{};
  ResidueReason reason = ResidueReason::kNoProfileFires;
  /// The lattice's explanation (TechniqueCoverage::detail of the first
  /// universe profile), or a planner note when the universe is empty.
  std::string detail;
};

/// The minimal ordered covering set. Deterministic for a fixed universe
/// and target: coveringJson(plan) is byte-identical across runs.
struct CoveringPlan {
  std::vector<CoveringPick> coverings;  // greedy order
  std::vector<CoveringResidue> residue;  // Technique enum order
  /// Universe profiles selected by no covering — covering-dead decoy
  /// surface (universe order). A deployment can keep them on purpose;
  /// lintCoveringPlan turns each into an explicit finding either way.
  std::vector<std::string> unusedProfiles;
  std::size_t universeSize = 0;
  /// Techniques the plan was asked to cover (the whole library, or the
  /// corpus-restricted subset).
  std::size_t targetCount = 0;
  std::size_t coveredCount = 0;

  /// "coverings=2 covered=25/29 residue=4 unused=6".
  std::string summary() const;
};

/// Greedy set-cover over the whole technique library.
CoveringPlan planCoverings(const std::vector<CoveringProfile>& universe);

/// Same, restricted to the union of `corpusTechniques` — the plan a known
/// corpus actually needs. Duplicates are folded; order is irrelevant.
CoveringPlan planCoverings(
    const std::vector<CoveringProfile>& universe,
    const std::vector<malware::Technique>& corpusTechniques);

/// Deterministic JSON rendering (stable ordering and field layout) of the
/// picks, the residue, and the covering-dead profiles.
std::string coveringJson(const CoveringPlan& plan);

/// Plan shape as a metrics snapshot (counters per residue reason, gauges
/// for covering/universe/covered counts), renderable through
/// obs::Exporter next to the coverage telemetry.
obs::MetricsSnapshot coveringTelemetry(const CoveringPlan& plan);

/// Markdown "Minimal deception covering" section for the incident-report
/// appendix (core::ReportOptions::appendixSections).
std::string renderCoveringSection(const CoveringPlan& plan);

/// Lint integration: one kCoveringDeadProfile finding per unused universe
/// profile. entriesChecked = universe size. A clean report means every
/// profile earns its place in some minimal covering.
LintReport lintCoveringPlan(const CoveringPlan& plan);

/// Routes evaluation requests to their covering and drives the resident
/// service with them. Holds the universe the plan indexes into.
class CoveringRouter {
 public:
  /// `plan` must have been produced from `universe` (indices are
  /// validated; throws std::invalid_argument on mismatch).
  CoveringRouter(std::vector<CoveringProfile> universe, CoveringPlan plan);

  /// Where one sample goes: indices into plan().coverings.
  struct Route {
    std::vector<std::size_t> coverings;
    /// True when the sample's techniques were unknown and the route is
    /// the broadcast over every covering.
    bool broadcast = false;
  };

  /// First covering (plan order) that fires any of `techniques`. A known
  /// sample none of the coverings fire on routes to the first covering —
  /// one run whose negative verdict equals the full sweep's (no universe
  /// profile deactivates it either; the plan covers everything that fires
  /// anywhere). Empty plan ⇒ empty route.
  Route route(const std::vector<malware::Technique>& techniques) const;

  /// The unknown-sample fallback: broadcast across every covering.
  Route routeUnknown() const;

  /// Stamps covering `index`'s deployment onto the request: config (the
  /// caller's faultPlan is preserved — chaos sweeps stay orthogonal) and
  /// dbFactory. sampleId/imagePath/factory/budget/tenant pass through.
  core::EvalRequest apply(core::EvalRequest request,
                          std::size_t index) const;

  const CoveringPlan& plan() const noexcept { return plan_; }
  const std::vector<CoveringProfile>& universe() const noexcept {
    return universe_;
  }
  /// The universe profile behind plan().coverings[index].
  const CoveringProfile& profileOf(std::size_t index) const;

 private:
  std::vector<CoveringProfile> universe_;
  CoveringPlan plan_;
};

/// Stamps `profile`'s (db, config) onto a request — the primitive both
/// CoveringRouter::apply and a full-universe sweep share, so parity
/// comparisons run byte-identical deployments on both sides.
core::EvalRequest stampProfile(const CoveringProfile& profile,
                               core::EvalRequest request);

/// One executed run of a routed sample.
struct RoutedRun {
  std::size_t covering = 0;  // index into plan().coverings
  std::string profile;       // CoveringProfile::name it ran under
  core::BatchStatus status = core::BatchStatus::kFailed;
  core::EvalOutcome outcome;  // valid when status == kOk
  std::string error;
  /// Wall time the service measured for this run (ServiceResult::
  /// wallMicros) — what bench_coverings records per routed evaluation.
  std::uint64_t wallMicros = 0;
  /// True when the resume-mode sweep adopted this run from a prior life's
  /// run record instead of executing it: status, verdict.deactivated, and
  /// firstTrigger are reconstructed from the ledger; the rest of the
  /// outcome (traces, telemetry, attribution) did not survive the crash
  /// and stays default-valued.
  bool recovered = false;
};

/// All runs one sample produced: exactly one for a routed known sample,
/// one per covering for a broadcast unknown, none under an empty plan.
struct RoutedOutcome {
  std::vector<RoutedRun> runs;
  bool broadcast = false;

  /// Deactivated under at least one executed covering. Because the plan
  /// covers every technique that fires under ANY universe profile, this
  /// equals the full-sweep "deactivated under any profile" verdict.
  bool deactivated() const noexcept;
};

/// Resolves a request to its sample's observed technique set; nullptr ⇒
/// unknown sample (broadcast). The ProgramRegistry-backed corpus passes
/// `[&](const core::EvalRequest& r) { return registry.findSpec(...); }`.
using TechniqueLookup =
    std::function<const malware::SampleSpec*(const core::EvalRequest&)>;

/// The covering-routed corpus sweep: routes every request, submits all
/// resulting runs to `service` up front (they interleave freely across
/// shards and workers), then collects in request order. Result i
/// describes requests[i].
std::vector<RoutedOutcome> runCoveringSweep(
    core::EvalService& service, const CoveringRouter& router,
    const std::vector<core::EvalRequest>& requests,
    const TechniqueLookup& lookup);

/// Checkpointed resume: the same sweep, picking up where a killed run
/// left off. The deterministic submission order means routed run j of
/// this enumeration carries ledger requestIndex j, so the admission
/// journal at `resumeLedgerPath` (read through every rotated generation)
/// says exactly which runs already completed: those are adopted from
/// their run records (RoutedRun::recovered) without re-executing, and the
/// crash residue is resubmitted with its original index pinned — the
/// resumed ledger's run records land byte-identical to an uninterrupted
/// sweep's, with no run lost or executed twice. `service` must be fresh
/// (no prior submissions this epoch) and configured to append to the same
/// ledger path. An empty or missing journal degrades to the full sweep.
std::vector<RoutedOutcome> runCoveringSweep(
    core::EvalService& service, const CoveringRouter& router,
    const std::vector<core::EvalRequest>& requests,
    const TechniqueLookup& lookup, const std::string& resumeLedgerPath);

}  // namespace scarecrow::analysis
