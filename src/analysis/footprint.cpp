#include "analysis/footprint.h"

#include <algorithm>
#include <cstdlib>

#include "malware/dga.h"

namespace scarecrow::analysis {

using malware::Technique;
using winapi::ApiId;

const char* probeKindName(ProbeKind kind) noexcept {
  switch (kind) {
    case ProbeKind::kFile: return "file";
    case ProbeKind::kRegistryKey: return "registry-key";
    case ProbeKind::kRegistryValue: return "registry-value";
    case ProbeKind::kProcessScan: return "process-scan";
    case ProbeKind::kModuleHandle: return "module-handle";
    case ProbeKind::kWindow: return "window";
    case ProbeKind::kDebuggerFlag: return "debugger-flag";
    case ProbeKind::kValueThreshold: return "value-threshold";
    case ProbeKind::kIdentityString: return "identity-string";
    case ProbeKind::kNetworkSinkhole: return "network-sinkhole";
    case ProbeKind::kHookPresence: return "hook-presence";
    case ProbeKind::kLaunchContext: return "launch-context";
    case ProbeKind::kPebRead: return "peb-read";
    case ProbeKind::kTscTiming: return "tsc-timing";
  }
  return "?";
}

namespace {

constexpr const char* kDriverDir = "C:\\Windows\\System32\\drivers\\";

ResourceProbe fileProbe(std::vector<std::string> paths, ApiId api,
                        std::string alertLabel) {
  ResourceProbe probe;
  probe.kind = ProbeKind::kFile;
  probe.apis = {api};
  probe.alertLabel = std::move(alertLabel);
  probe.resources = std::move(paths);
  return probe;
}

ResourceProbe keyProbe(std::vector<std::string> keys, ApiId api,
                       std::string alertLabel) {
  ResourceProbe probe;
  probe.kind = ProbeKind::kRegistryKey;
  probe.apis = {api};
  probe.alertLabel = std::move(alertLabel);
  probe.resources = std::move(keys);
  return probe;
}

ResourceProbe thresholdProbe(ConfigChannel channel, Cmp cmp,
                             std::uint64_t threshold,
                             std::vector<ApiId> apis,
                             std::string alertLabel) {
  ResourceProbe probe;
  probe.kind = ProbeKind::kValueThreshold;
  probe.apis = std::move(apis);
  probe.alertLabel = std::move(alertLabel);
  probe.channel = channel;
  probe.cmp = cmp;
  probe.threshold = threshold;
  return probe;
}

/// The footprint of one technique. Every constant below mirrors the
/// dynamic probe in malware/techniques.cpp verbatim; the drift gate test
/// fails if either side changes without the other.
TechniqueFootprint buildFootprint(Technique technique) {
  TechniqueFootprint fp;
  fp.technique = technique;
  auto group = [&fp](ResourceProbe probe) {
    fp.groups.push_back({std::move(probe)});
  };

  switch (technique) {
    case Technique::kVMwareToolsRegistry:
      group(keyProbe({"SOFTWARE\\VMware, Inc.\\VMware Tools"},
                     ApiId::kNtOpenKeyEx, "NtOpenKeyEx()"));
      return fp;

    case Technique::kIdeEnumRegistry:
      group(keyProbe(
          {"SYSTEM\\CurrentControlSet\\Enum\\IDE\\"
           "DiskVBOX_HARDDISK___________________________1.0_____",
           "SYSTEM\\CurrentControlSet\\Enum\\IDE\\"
           "DiskVMware_Virtual_IDE_Hard_Drive___________00000001"},
          ApiId::kNtOpenKeyEx, "NtOpenKeyEx()"));
      return fp;

    case Technique::kBiosVersionValue: {
      ResourceProbe probe;
      probe.kind = ProbeKind::kRegistryValue;
      probe.apis = {ApiId::kNtQueryValueKey};
      probe.alertLabel = "NtQueryValueKey()";
      probe.resources = {"HARDWARE\\Description\\System"};
      probe.valueName = "SystemBiosVersion";
      probe.stringPredicate = StringPredicate::kContainsAnyOf;
      probe.needles = {"VBOX", "QEMU", "BOCHS", "VMware"};
      group(std::move(probe));
      return fp;
    }

    case Technique::kVmDriverFiles:
      group(fileProbe({std::string(kDriverDir) + "vmmouse.sys",
                       std::string(kDriverDir) + "vmhgfs.sys",
                       std::string(kDriverDir) + "VBoxMouse.sys"},
                      ApiId::kNtQueryAttributesFile,
                      "NtQueryAttributesFile()"));
      return fp;

    case Technique::kVBoxGuestAdditionsKey:
      group(keyProbe({"SOFTWARE\\Oracle\\VirtualBox Guest Additions"},
                     ApiId::kRegOpenKeyEx, "RegOpenKeyEx()"));
      return fp;

    case Technique::kSandboxFolder:
      group(fileProbe({"C:\\sandbox", "C:\\analysis", "C:\\cuckoo",
                       "C:\\iDEFENSE"},
                      ApiId::kGetFileAttributes, "GetFileAttributes()"));
      return fp;

    case Technique::kIsDebuggerPresent: {
      ResourceProbe probe;
      probe.kind = ProbeKind::kDebuggerFlag;
      probe.apis = {ApiId::kIsDebuggerPresent};
      probe.alertLabel = "IsDebuggerPresent()";
      probe.resources = {"PEB!BeingDebugged"};
      group(std::move(probe));
      return fp;
    }

    case Technique::kCheckRemoteDebugger: {
      ResourceProbe probe;
      probe.kind = ProbeKind::kDebuggerFlag;
      probe.apis = {ApiId::kCheckRemoteDebuggerPresent};
      probe.alertLabel = "CheckRemoteDebuggerPresent()";
      probe.resources = {"DebugPort (remote)"};
      group(std::move(probe));
      return fp;
    }

    case Technique::kDebugPortQuery: {
      ResourceProbe probe;
      probe.kind = ProbeKind::kDebuggerFlag;
      probe.apis = {ApiId::kNtQueryInformationProcess};
      probe.alertLabel = "NtQueryInformationProcess()";
      probe.resources = {"ProcessInfoClass::DebugPort"};
      group(std::move(probe));
      return fp;
    }

    case Technique::kDebuggerWindow: {
      ResourceProbe probe;
      probe.kind = ProbeKind::kWindow;
      probe.apis = {ApiId::kFindWindow};
      probe.alertLabel = "FindWindow()";
      probe.resources = {"OLLYDBG", "WinDbgFrameClass"};
      group(std::move(probe));
      return fp;
    }

    case Technique::kSandboxModule: {
      ResourceProbe probe;
      probe.kind = ProbeKind::kModuleHandle;
      probe.apis = {ApiId::kGetModuleHandle};
      probe.alertLabel = "GetModuleHandleA()";
      probe.resources = {"SbieDll.dll", "api_log.dll", "dir_watch.dll"};
      group(std::move(probe));
      return fp;
    }

    case Technique::kAnalysisProcessScan: {
      ResourceProbe probe;
      probe.kind = ProbeKind::kProcessScan;
      probe.apis = {ApiId::kCreateToolhelp32Snapshot};
      probe.alertLabel = "CreateToolhelp32Snapshot()";
      probe.resources = {"wireshark.exe", "ollydbg.exe", "procmon.exe",
                         "windbg.exe",   "VBoxService.exe", "idaq.exe"};
      group(std::move(probe));
      return fp;
    }

    case Technique::kInlineHookScan: {
      // The Figure 1 prologue check fires on the FIRST patched function,
      // so the probe is satisfied when any of its targets is hooked.
      ResourceProbe probe;
      probe.kind = ProbeKind::kHookPresence;
      probe.apis = {ApiId::kCreateProcess, ApiId::kDeleteFile,
                    ApiId::kRegOpenKeyEx};
      probe.alertLabel = "Hook detection";
      group(std::move(probe));
      return fp;
    }

    case Technique::kLowMemory:
      group(thresholdProbe(ConfigChannel::kRamBytes, Cmp::kLess, 2ULL << 30,
                           {ApiId::kGlobalMemoryStatusEx},
                           "GlobalMemoryStatusEx()"));
      return fp;

    case Technique::kFewCores:
      group(thresholdProbe(ConfigChannel::kCpuCores, Cmp::kLess, 2,
                           {ApiId::kGetSystemInfo}, "GetSystemInfo()"));
      return fp;

    case Technique::kSmallDisk:
      group(thresholdProbe(ConfigChannel::kDiskTotalBytes, Cmp::kLess,
                           60ULL << 30, {ApiId::kGetDiskFreeSpaceEx},
                           "GetDiskFreeSpaceEx()"));
      return fp;

    case Technique::kLowUptime:
      group(thresholdProbe(ConfigChannel::kUptimeMs, Cmp::kLess,
                           10ULL * 60'000, {ApiId::kGetTickCount},
                           "GetTickCount()"));
      return fp;

    case Technique::kSleepPatchProbe:
      // Sleep(500) advancing the tick by < 450ms means sleepPercent < 90.
      // The probe reads the tick before sleeping, so the uptime hook's
      // alert is what lands in firstTrigger.
      group(thresholdProbe(ConfigChannel::kSleepPercent, Cmp::kLess, 90,
                           {ApiId::kSleep, ApiId::kGetTickCount},
                           "GetTickCount()"));
      return fp;

    case Technique::kExceptionTimingProbe:
      // The RaiseException hook adds latency without raising an alert:
      // the deception is the timing itself (alertLabel stays empty).
      group(thresholdProbe(ConfigChannel::kExceptionLatencyCycles,
                           Cmp::kGreater, 50'000, {ApiId::kRaiseException},
                           ""));
      return fp;

    case Technique::kSandboxUserName: {
      ResourceProbe probe;
      probe.kind = ProbeKind::kIdentityString;
      probe.apis = {ApiId::kGetUserName};
      probe.alertLabel = "GetUserName()";
      probe.channel = ConfigChannel::kUserName;
      probe.stringPredicate = StringPredicate::kEqualsAnyOf;
      probe.needles = {"sandbox", "cuckoo", "malware", "sample", "virus"};
      group(std::move(probe));
      return fp;
    }

    case Technique::kOwnImageName: {
      ResourceProbe probe;
      probe.kind = ProbeKind::kIdentityString;
      probe.apis = {ApiId::kGetModuleFileName};
      probe.alertLabel = "The name of malware";
      probe.channel = ConfigChannel::kOwnImagePath;
      probe.stringPredicate = StringPredicate::kContainsAnyOf;
      probe.needles = {"sample", "malware", "virus", "c:\\sandbox"};
      group(std::move(probe));
      return fp;
    }

    case Technique::kParentNotExplorer: {
      // Depends on who launched the sample, not on any deceptive resource.
      ResourceProbe probe;
      probe.kind = ProbeKind::kLaunchContext;
      probe.apis = {ApiId::kNtQueryInformationProcess,
                    ApiId::kCreateToolhelp32Snapshot};
      group(std::move(probe));
      return fp;
    }

    case Technique::kNxDomainResolves: {
      ResourceProbe probe;
      probe.kind = ProbeKind::kNetworkSinkhole;
      probe.apis = {ApiId::kDnsQuery};
      probe.alertLabel = "DnsQuery()";
      probe.resources = {"xkcjahdquwez.info", "qpwoeirutyal.biz"};
      group(std::move(probe));
      return fp;
    }

    case Technique::kKillSwitchHttp: {
      ResourceProbe probe;
      probe.kind = ProbeKind::kNetworkSinkhole;
      probe.apis = {ApiId::kInternetOpenUrl};
      probe.alertLabel = "InternetOpenUrl()";
      probe.resources = {
          "www.iuqerfsodp9ifjaposdfjhgosurijfaewrwergwea.com"};
      group(std::move(probe));
      return fp;
    }

    case Technique::kDgaSinkhole: {
      ResourceProbe probe;
      probe.kind = ProbeKind::kNetworkSinkhole;
      probe.apis = {ApiId::kDnsQuery};
      probe.alertLabel = "DnsQuery()";
      probe.resources = malware::generateDgaDomains({}, 3);
      group(std::move(probe));
      return fp;
    }

    case Technique::kNtSystemInfoProbe: {
      // cores < 2 OR KernelDebuggerInformation != 0 — both through the one
      // NtQuerySystemInformation hook, which serves the kernel-debugger
      // flag unconditionally.
      group(thresholdProbe(ConfigChannel::kCpuCores, Cmp::kLess, 2,
                           {ApiId::kNtQuerySystemInformation},
                           "NtQuerySystemInformation()"));
      ResourceProbe probe;
      probe.kind = ProbeKind::kDebuggerFlag;
      probe.apis = {ApiId::kNtQuerySystemInformation};
      probe.alertLabel = "NtQuerySystemInformation()";
      probe.resources = {"SystemInfoClass::KernelDebuggerInformation"};
      group(std::move(probe));
      return fp;
    }

    case Technique::kPebProcessorCount: {
      ResourceProbe probe;
      probe.kind = ProbeKind::kPebRead;
      probe.channel = ConfigChannel::kPebCpuCores;
      probe.cmp = Cmp::kLess;
      probe.threshold = 2;
      probe.resources = {"PEB!NumberOfProcessors"};
      group(std::move(probe));
      return fp;
    }

    case Technique::kRdtscVmExit: {
      ResourceProbe probe;
      probe.kind = ProbeKind::kTscTiming;
      probe.channel = ConfigChannel::kCpuidTrapCycles;
      probe.cmp = Cmp::kGreater;
      probe.threshold = 10'000;
      probe.resources = {"rdtsc/cpuid/rdtsc"};
      group(std::move(probe));
      return fp;
    }

    case Technique::kWearTearProbe: {
      // Conjunction: BOTH usage counters must look pristine.
      ResourceProbe run =
          thresholdProbe(ConfigChannel::kAutoRunEntries, Cmp::kLessEq, 3,
                         {ApiId::kNtQueryKey}, "NtQueryKey()");
      run.resources = {"SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Run"};
      ResourceProbe devices =
          thresholdProbe(ConfigChannel::kDeviceClassSubkeys, Cmp::kLessEq,
                         32, {ApiId::kNtQueryKey}, "NtQueryKey()");
      devices.resources = {
          "SYSTEM\\CurrentControlSet\\Control\\DeviceClasses"};
      fp.groups.push_back({std::move(run), std::move(devices)});
      return fp;
    }
  }
  // Unreachable: the switch above is exhaustive under -Werror=switch.
  std::abort();
}

}  // namespace

const std::vector<TechniqueFootprint>& footprintTable() {
  static const std::vector<TechniqueFootprint> table = [] {
    std::vector<TechniqueFootprint> rows;
    rows.reserve(malware::kTechniqueCount);
    for (std::size_t i = 0; i < malware::kTechniqueCount; ++i)
      rows.push_back(buildFootprint(static_cast<Technique>(i)));
    return rows;
  }();
  return table;
}

const TechniqueFootprint& footprintFor(Technique technique) {
  return footprintTable()[static_cast<std::size_t>(technique)];
}

std::vector<winapi::ApiId> footprintApis(Technique technique) {
  std::vector<ApiId> apis;
  for (const auto& group : footprintFor(technique).groups)
    for (const ResourceProbe& probe : group)
      for (ApiId api : probe.apis)
        if (std::find(apis.begin(), apis.end(), api) == apis.end())
          apis.push_back(api);
  std::sort(apis.begin(), apis.end());
  return apis;
}

}  // namespace scarecrow::analysis
