// Causal decision tracing: the flight recorder.
//
// PR 1's MetricsRegistry answers "how many / how long" questions; this
// layer answers "why". Every decision the deception stack takes — a hook
// dispatch, a deceptive value served, an IPC message sent or drained, an
// evaluation-pipeline phase transition, the final deactivation verdict —
// is a DecisionEvent in a fixed-capacity ring buffer. Events that belong
// to one causal chain (hook fired → deceptive value returned → IPC to the
// controller → verdict) share a correlation id, so one fingerprint attempt
// is reconstructible across process boundaries: DLL-side events carry the
// supervised pid, controller-side events the controller pid, and the id
// ties them together.
//
// Like everything in obs, the recorder is deterministic: timestamps come
// from the machine's VirtualClock, sequence and correlation ids from
// monotonic counters that clear() resets, so two identical runs produce
// byte-identical decision traces (and byte-identical Perfetto exports —
// see trace_export.h).
//
// The buffer is bounded: at capacity the oldest event is overwritten
// (drop-oldest) and a dropped-events counter — mirrored into the metrics
// registry when bound — records the loss. Attribution code must therefore
// tolerate chains whose oldest links are gone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace scarecrow::obs {

enum class DecisionKind : std::uint8_t {
  kHookDispatch,  // a hooked API was invoked (deceptive or not)
  kDeception,     // a deceptive value was served (fingerprint attempt)
  kSelfSpawn,     // supervised image respawned itself
  kInjection,     // scarecrow.dll mapped into a process
  kIpcSend,       // IpcMessage enqueued (DLL side)
  kIpcDrain,      // IpcMessage drained (controller side)
  kPhase,         // evaluation-pipeline phase transition
  kVerdict,       // deactivation verdict reached
  kFaultInjected, // an armed fault site fired (faults::FaultInjector)
  kInjectFail,    // DLL injection failed (fault or dead target)
  kRetry,         // a bounded retry attempt (injection backoff, re-inject)
  kQuarantine,    // a hook exceeded its install-failure budget
  kDegradation,   // protection-ladder transition (full → partial → monitor)
  kStall,         // batch worker blew its virtual-clock heartbeat budget
  kSloBreach,     // an SLO rule's healthy bound was violated (obs::SloEngine)
  kBreakerTrip,   // a shard circuit breaker opened (core::EvalService)
};

/// Number of decision kinds; keep in sync with the last enumerator.
inline constexpr std::size_t kDecisionKindCount =
    static_cast<std::size_t>(DecisionKind::kBreakerTrip) + 1;

/// Exhaustive over DecisionKind (no default; -Werror=switch enforces it).
const char* decisionKindName(DecisionKind kind) noexcept;

/// One recorded decision. String fields are empty when not applicable.
struct DecisionEvent {
  std::uint64_t seq = 0;            // recorder-assigned, global record order
  std::uint64_t timeMs = 0;         // virtual-clock timestamp
  std::uint32_t pid = 0;            // acting process (0 = pipeline itself)
  std::uint64_t correlationId = 0;  // causal chain id (0 = uncorrelated)
  DecisionKind kind = DecisionKind::kHookDispatch;
  std::string api;       // API label / IPC channel / phase name
  std::string argument;  // digest of the probed argument (path, key, …)
  std::string matched;   // ResourceDb entry / profile that matched
  std::string value;     // deceptive value returned, when representable
  std::string link;      // alert/verdict linkage (IPC kind, verdict reason)
};

/// Digest for DecisionEvent::argument: short strings pass through
/// unchanged; long ones keep a readable prefix plus a deterministic FNV-1a
/// hash so equal arguments stay equal and the ring buffer stays compact.
std::string digestArgument(std::string_view argument);

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends `event`, assigning its seq. At capacity the oldest event is
  /// dropped (and counted); with capacity 0 every event is dropped.
  /// Returns the assigned seq.
  std::uint64_t record(DecisionEvent event);

  /// Allocates the next causal-chain id (1-based; 0 means uncorrelated).
  std::uint64_t newCorrelation() noexcept { return ++lastCorrelation_; }

  /// Resizes the ring. Shrinking drops the oldest retained events (they
  /// are counted as dropped).
  void setCapacity(std::size_t capacity);
  std::size_t capacity() const noexcept { return ring_.size(); }

  std::size_t size() const noexcept { return size_; }
  std::uint64_t totalRecorded() const noexcept { return nextSeq_; }
  std::uint64_t droppedCount() const noexcept { return dropped_; }

  /// Mirrors every drop into a registry counter (typically
  /// "obs.decisions_dropped"). The recorder does not own the counter.
  void setDroppedCounter(Counter* counter) noexcept {
    droppedCounter_ = counter;
  }

  /// Retained events in seq order (oldest retained first).
  std::vector<DecisionEvent> snapshot() const;

  /// Drops all events and resets the seq, correlation, and dropped
  /// counters — identical runs then produce identical ids. The mirrored
  /// registry counter is NOT reset here; MetricsRegistry::reset owns that.
  void clear();

 private:
  std::vector<DecisionEvent> ring_;  // ring_.size() == capacity
  std::size_t head_ = 0;             // index of the oldest retained event
  std::size_t size_ = 0;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t lastCorrelation_ = 0;
  std::uint64_t dropped_ = 0;
  Counter* droppedCounter_ = nullptr;
};

}  // namespace scarecrow::obs
