// Streaming telemetry: windowed MetricsSnapshot deltas on the virtual
// clock (DESIGN.md §13).
//
// Every observability surface built so far is point-in-time: a
// MetricsSnapshot describes "now", and a long-running corpus service would
// be blind between the moments someone asks. TimeSeriesPlane makes time a
// first-class axis: it watches the cumulative registry snapshot and, every
// `intervalMs` of *virtual* time, closes a window holding the delta since
// the previous close — counter increments, per-bucket histogram growth,
// end-of-window gauge values, and the spans completed inside the window.
//
// Windows are identified by `startMs / intervalMs`, so two identical runs
// produce identical window ids and identical deltas: the stream obeys the
// same byte-determinism contract (§7) as every other obs export. Closed
// windows live in a bounded ring (oldest evicted first, eviction counted);
// the SLO engine (slo.h) and the run ledger (ledger.h) subscribe via
// window observers and see each window exactly once.
//
// The partition property the tests pin down: summing every closed window's
// delta (plus the still-open remainder) reproduces the cumulative snapshot
// exactly — counters and histogram buckets by addition, gauges by
// last-window-wins, spans by concatenation. Nothing is lost between
// windows and nothing is double-counted.
//
// Hot-path contract: `due(nowMs)` is one flag test plus one compare, so
// per-dispatch callers (DeceptionEngine::noteDispatch) pay nothing until a
// window boundary actually passes; only then is a registry snapshot taken.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "obs/metrics.h"

namespace scarecrow::obs {

struct TimeSeriesOptions {
  /// Virtual-clock window length; 0 disables the plane entirely.
  std::uint64_t intervalMs = 0;
  /// Closed windows retained; older windows are evicted (and counted).
  std::size_t windowCapacity = 64;
};

/// One closed window: the telemetry delta for [startMs, endMs). The delta
/// covers everything recorded up to the observation that closed the window
/// — when observations are sparse, activity from intervening empty windows
/// is attributed to the last window that had an observation due.
struct WindowDelta {
  /// startMs / intervalMs — deterministic for identical runs.
  std::uint64_t windowId = 0;
  std::uint64_t startMs = 0;
  std::uint64_t endMs = 0;  // exclusive: startMs + intervalMs
  /// Virtual-clock time of the observation that closed this window.
  std::uint64_t observedMs = 0;
  /// Counters/histograms: increments since the previous close. Gauges:
  /// value at close. Spans: completed since the previous close.
  MetricsSnapshot delta;
};

/// Environment default for Config-less callers: SCARECROW_TS_WINDOW_MS as
/// an interval in virtual milliseconds (unset/0/garbage = disabled). Read
/// once, cached.
std::uint64_t timeSeriesEnvWindowMs() noexcept;

/// Counter/histogram/gauge/span delta of `current` against `base`,
/// identity by identity. A counter (or histogram count) that shrank means
/// the registry was cleared between the two snapshots — the delta restarts
/// from zero instead of going negative, so a plane that spans
/// Machine::resetTelemetry keeps monotone windows.
MetricsSnapshot snapshotDelta(const MetricsSnapshot& base,
                              const MetricsSnapshot& current);

class TimeSeriesPlane {
 public:
  using WindowObserver = std::function<void(const TimeSeriesPlane&)>;

  /// Disabled unless SCARECROW_TS_WINDOW_MS is set in the environment.
  TimeSeriesPlane() {
    if (const std::uint64_t ms = timeSeriesEnvWindowMs(); ms != 0)
      configure({.intervalMs = ms});
  }

  TimeSeriesPlane(const TimeSeriesPlane&) = delete;
  TimeSeriesPlane& operator=(const TimeSeriesPlane&) = delete;

  /// Re-arms the plane: drops every window and the cumulative baseline,
  /// keeps registered observers. intervalMs == 0 disables.
  void configure(TimeSeriesOptions options);

  bool enabled() const noexcept { return options_.intervalMs != 0; }
  std::uint64_t intervalMs() const noexcept { return options_.intervalMs; }

  /// The hot-path predicate: true when an observation at `nowMs` would
  /// close at least one window. One compare; no snapshot taken.
  bool due(std::uint64_t nowMs) const noexcept {
    return enabled() && nowMs / options_.intervalMs > openWindowId_;
  }

  /// Feeds the cumulative snapshot at `nowMs`. Closes the open window when
  /// `nowMs` has moved past its end (windows with no due observation are
  /// skipped — their activity folds into the closed one). Returns the
  /// number of windows closed (0 or 1).
  std::size_t observe(const MetricsSnapshot& cumulative, std::uint64_t nowMs);

  /// Closes the open window unconditionally (end-of-run flush), so the
  /// final partial window reaches the observers too. No-op when nothing
  /// was recorded since the last close.
  void flush(const MetricsSnapshot& cumulative, std::uint64_t nowMs);

  /// Closed windows, oldest retained first (bounded ring).
  const std::deque<WindowDelta>& windows() const noexcept { return windows_; }
  /// Total windows ever closed (evicted ones included).
  std::uint64_t windowsClosed() const noexcept { return windowsClosed_; }
  std::uint64_t windowsEvicted() const noexcept { return windowsEvicted_; }

  /// Cumulative snapshot at the last close — the baseline the next delta
  /// is computed against.
  const MetricsSnapshot& baseline() const noexcept { return baseline_; }

  /// Sum of every *retained* window delta: counters and histogram buckets
  /// added, gauges last-window-wins, spans concatenated. When no window
  /// was evicted and the plane was flushed, this equals the last observed
  /// cumulative snapshot exactly (the partition property).
  MetricsSnapshot sumWindows() const;

  /// Registers a callback invoked after every window close (SLO engine,
  /// ledger). Returns a slot usable with removeWindowObserver.
  std::size_t addWindowObserver(WindowObserver observer);
  void removeWindowObserver(std::size_t slot) noexcept;
  void clearWindowObservers() noexcept { observers_.clear(); }

 private:
  void closeWindow(const MetricsSnapshot& cumulative, std::uint64_t nowMs);

  TimeSeriesOptions options_;
  std::uint64_t openWindowId_ = 0;
  MetricsSnapshot baseline_;
  std::deque<WindowDelta> windows_;
  std::uint64_t windowsClosed_ = 0;
  std::uint64_t windowsEvicted_ = 0;
  std::vector<WindowObserver> observers_;
};

}  // namespace scarecrow::obs
