#include "obs/export.h"

#include "obs/trace_export.h"
#include "support/strings.h"

namespace scarecrow::obs {

namespace {

using support::jsonEscape;

void appendKey(std::string& out, const std::string& name,
               const std::string& label) {
  out += "{\"name\":\"" + jsonEscape(name) + "\"";
  if (!label.empty()) out += ",\"label\":\"" + jsonEscape(label) + "\"";
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; anything else becomes '_'.
std::string promName(const std::string& name) {
  std::string out = "scarecrow_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string promLabel(const std::string& label) {
  if (label.empty()) return {};
  std::string out = "{label=\"";
  for (char c : label) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  out += "\"}";
  return out;
}

std::string renderJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": [";
  bool first = true;
  for (const CounterSample& c : snapshot.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    appendKey(out, c.name, c.label);
    out += ",\"value\":" + std::to_string(c.value) + "}";
  }
  out += first ? "],\n" : "\n  ],\n";

  out += "  \"gauges\": [";
  first = true;
  for (const GaugeSample& g : snapshot.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    appendKey(out, g.name, g.label);
    out += ",\"value\":" + std::to_string(g.value) + "}";
  }
  out += first ? "],\n" : "\n  ],\n";

  out += "  \"histograms\": [";
  first = true;
  for (const HistogramSample& h : snapshot.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    appendKey(out, h.name, h.label);
    out += ",\"count\":" + std::to_string(h.count);
    out += ",\"sum\":" + std::to_string(h.sum);
    out += ",\"min\":" + std::to_string(h.min);
    out += ",\"max\":" + std::to_string(h.max);
    out += ",\"p50\":" + std::to_string(h.p50);
    out += ",\"p95\":" + std::to_string(h.p95);
    out += ",\"p99\":" + std::to_string(h.p99);
    out += ",\"buckets\":[";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i != 0) out += ",";
      out += "{\"le\":";
      out += i < h.bounds.size() ? "\"" + std::to_string(h.bounds[i]) + "\""
                                 : std::string("\"+Inf\"");
      out += ",\"count\":" + std::to_string(h.counts[i]) + "}";
    }
    out += "]}";
  }
  out += first ? "],\n" : "\n  ],\n";

  out += "  \"spans\": [";
  first = true;
  for (const Span& s : snapshot.spans) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\":\"" + jsonEscape(s.name) + "\"";
    out += ",\"depth\":" + std::to_string(s.depth);
    out += ",\"start_ms\":" + std::to_string(s.startMs);
    out += ",\"duration_ms\":" + std::to_string(s.durationMs) + "}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::string renderPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string lastTyped;
  const auto typeLine = [&](const std::string& name, const char* type) {
    if (name == lastTyped) return;  // one TYPE line per metric family
    lastTyped = name;
    out += "# TYPE " + name + " " + type + "\n";
  };

  for (const CounterSample& c : snapshot.counters) {
    const std::string name = promName(c.name);
    typeLine(name, "counter");
    out += name + promLabel(c.label) + " " + std::to_string(c.value) + "\n";
  }
  for (const GaugeSample& g : snapshot.gauges) {
    const std::string name = promName(g.name);
    typeLine(name, "gauge");
    out += name + promLabel(g.label) + " " + std::to_string(g.value) + "\n";
  }
  for (const HistogramSample& h : snapshot.histograms) {
    const std::string name = promName(h.name);
    typeLine(name, "histogram");
    // Prometheus buckets are cumulative and always end with +Inf.
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      cumulative += h.counts[i];
      const std::string le =
          i < h.bounds.size() ? std::to_string(h.bounds[i]) : "+Inf";
      std::string labels = "le=\"" + le + "\"";
      if (!h.label.empty()) {
        std::string l = promLabel(h.label);  // {label="..."}
        labels = l.substr(1, l.size() - 2) + "," + labels;
      }
      out += name + "_bucket{" + labels + "} " + std::to_string(cumulative) +
             "\n";
    }
    out += name + "_sum" + promLabel(h.label) + " " + std::to_string(h.sum) +
           "\n";
    out += name + "_count" + promLabel(h.label) + " " +
           std::to_string(h.count) + "\n";
  }
  // Spans are not a native Prometheus concept; the per-phase `phase_ms`
  // histograms above carry their aggregate timings.
  return out;
}

}  // namespace

const char* exportFormatName(ExportFormat format) noexcept {
  switch (format) {
    case ExportFormat::kJson: return "json";
    case ExportFormat::kPrometheus: return "prometheus";
    case ExportFormat::kChromeTrace: return "chrome-trace";
  }
  return "?";
}

const char* exportFileExtension(ExportFormat format) noexcept {
  switch (format) {
    case ExportFormat::kJson: return "json";
    case ExportFormat::kPrometheus: return "prom";
    case ExportFormat::kChromeTrace: return "trace.json";
  }
  return "dat";
}

std::string Exporter::render(const MetricsSnapshot& snapshot) const {
  static const std::vector<DecisionEvent> kNoDecisions;
  switch (format_) {
    case ExportFormat::kJson: return renderJson(snapshot);
    case ExportFormat::kPrometheus: return renderPrometheus(snapshot);
    case ExportFormat::kChromeTrace:
      return detail::renderChromeTrace(
          snapshot, decisions_ != nullptr ? *decisions_ : kNoDecisions,
          droppedDecisions_);
  }
  return {};
}

}  // namespace scarecrow::obs
