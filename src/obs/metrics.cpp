#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <tuple>

namespace scarecrow::obs {

const std::vector<std::uint64_t>& defaultLatencyBucketsMs() {
  static const std::vector<std::uint64_t> kBuckets = {
      0, 1, 2, 5, 10, 25, 50, 100, 250, 1'000, 5'000, 15'000, 60'000};
  return kBuckets;
}

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(std::uint64_t value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  ++count_;
  sum_ += value;
}

std::uint64_t Histogram::percentile(double p) const noexcept {
  if (count_ == 0) return 0;
  if (p <= 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  const std::uint64_t target = rank == 0 ? 1 : rank;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= target)
      return i < bounds_.size() ? bounds_[i] : max_;
  }
  return max_;
}

void Histogram::reset() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

std::uint64_t histogramSamplePercentile(const HistogramSample& h,
                                        double p) noexcept {
  if (h.count == 0) return 0;
  if (p > 100.0) p = 100.0;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(h.count)));
  const std::uint64_t target = rank == 0 ? 1 : rank;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    cumulative += h.counts[i];
    if (cumulative >= target) return i < h.bounds.size() ? h.bounds[i] : h.max;
  }
  return h.max;
}

namespace {

void mergeHistogramSamples(HistogramSample& into, const HistogramSample& from) {
  if (into.bounds == from.bounds) {
    for (std::size_t i = 0; i < into.counts.size(); ++i)
      into.counts[i] += from.counts[i];
  }
  // min of 0 means "no samples", not an observed zero.
  if (into.count == 0)
    into.min = from.min;
  else if (from.count != 0)
    into.min = std::min(into.min, from.min);
  into.max = std::max(into.max, from.max);
  into.count += from.count;
  into.sum += from.sum;
  into.p50 = histogramSamplePercentile(into, 50);
  into.p95 = histogramSamplePercentile(into, 95);
  into.p99 = histogramSamplePercentile(into, 99);
}

/// Merges two (name, label)-sorted sample vectors; `combine(into, from)`
/// folds a right-hand sample into an existing left-hand one.
template <typename Sample, typename Combine>
void mergeSorted(std::vector<Sample>& into, const std::vector<Sample>& from,
                 Combine combine) {
  std::vector<Sample> out;
  out.reserve(into.size() + from.size());
  std::size_t i = 0, j = 0;
  const auto key = [](const Sample& s) { return std::tie(s.name, s.label); };
  while (i < into.size() && j < from.size()) {
    if (key(into[i]) < key(from[j])) {
      out.push_back(std::move(into[i++]));
    } else if (key(from[j]) < key(into[i])) {
      out.push_back(from[j++]);
    } else {
      out.push_back(std::move(into[i++]));
      combine(out.back(), from[j++]);
    }
  }
  for (; i < into.size(); ++i) out.push_back(std::move(into[i]));
  for (; j < from.size(); ++j) out.push_back(from[j]);
  into = std::move(out);
}

}  // namespace

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  mergeSorted(counters, other.counters,
              [](CounterSample& into, const CounterSample& from) {
                into.value += from.value;
              });
  mergeSorted(gauges, other.gauges,
              [](GaugeSample& into, const GaugeSample& from) {
                into.value = std::max(into.value, from.value);
              });
  mergeSorted(histograms, other.histograms, mergeHistogramSamples);
  spans.insert(spans.end(), other.spans.begin(), other.spans.end());
}

std::uint64_t MetricsSnapshot::counterValue(
    std::string_view name, std::string_view label) const noexcept {
  for (const CounterSample& c : counters)
    if (c.name == name && c.label == label) return c.value;
  return 0;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view label) {
  return counters_[Key(std::string(name), std::string(label))];
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view label) {
  return gauges_[Key(std::string(name), std::string(label))];
}

Histogram& MetricsRegistry::histogram(
    std::string_view name, std::string_view label,
    const std::vector<std::uint64_t>& bounds) {
  Key key{std::string(name), std::string(label)};
  auto it = histograms_.find(key);
  if (it == histograms_.end())
    it = histograms_.emplace(std::move(key), Histogram(bounds)).first;
  return it->second;
}

void MetricsRegistry::recordSpan(std::string name, std::uint64_t startMs,
                                 std::uint64_t durationMs,
                                 std::uint32_t depth) {
  // Per-phase latency distribution accumulates across runs alongside the
  // ordered span log.
  histogram("phase_ms", name).observe(durationMs);
  spans_.push_back(Span{std::move(name), depth, startMs, durationMs});
}

void MetricsRegistry::reset() {
  for (auto& [key, c] : counters_) c.reset();
  for (auto& [key, g] : gauges_) g.reset();
  for (auto& [key, h] : histograms_) h.reset();
  spans_.clear();
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  spans_.clear();
  openSpans_ = 0;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [key, c] : counters_)
    snap.counters.push_back({key.first, key.second, c.value()});
  snap.gauges.reserve(gauges_.size());
  for (const auto& [key, g] : gauges_)
    snap.gauges.push_back({key.first, key.second, g.value()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [key, h] : histograms_) {
    HistogramSample sample;
    sample.name = key.first;
    sample.label = key.second;
    sample.bounds = h.bucketBounds();
    sample.counts = h.bucketCounts();
    sample.count = h.count();
    sample.sum = h.sum();
    sample.min = h.min();
    sample.max = h.max();
    sample.p50 = h.percentile(50);
    sample.p95 = h.percentile(95);
    sample.p99 = h.percentile(99);
    snap.histograms.push_back(std::move(sample));
  }
  snap.spans = spans_;
  return snap;
}

}  // namespace scarecrow::obs
