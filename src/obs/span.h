// ScopedSpan: RAII timing of one named phase against the virtual clock.
//
// Construction notes the clock and the number of already-open spans (the
// nesting depth); destruction records the completed span in the registry
// and feeds its duration into the `phase_ms` histogram labeled with the
// span name, so per-phase percentiles accumulate across runs.
//
// Durations are virtual-clock milliseconds. Phases that perform no guest
// work (e.g. snapshot/restore, which the clock does not charge) record 0ms
// — deterministically — and still document ordering and nesting. A phase
// that rewinds the clock (Machine::restore resets it to the snapshot time)
// clamps to 0 rather than underflowing.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "support/clock.h"

namespace scarecrow::obs {

class ScopedSpan {
 public:
  ScopedSpan(MetricsRegistry& registry, const support::VirtualClock& clock,
             std::string name)
      : registry_(registry),
        clock_(clock),
        name_(std::move(name)),
        depth_(registry.openSpans_++),
        startMs_(clock.nowMs()) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    const std::uint64_t endMs = clock_.nowMs();
    const std::uint64_t duration = endMs >= startMs_ ? endMs - startMs_ : 0;
    --registry_.openSpans_;
    registry_.recordSpan(std::move(name_), startMs_, duration, depth_);
  }

 private:
  MetricsRegistry& registry_;
  const support::VirtualClock& clock_;
  std::string name_;
  std::uint32_t depth_;
  std::uint64_t startMs_;
};

}  // namespace scarecrow::obs
