#include "obs/ledger.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "support/env.h"
#include "support/log.h"
#include "support/strings.h"

namespace scarecrow::obs {

namespace {

using support::jsonEscape;

// ---------------------------------------------------------------------------
// Rendering (fixed key order, integral values — deterministic lines)

void appendField(std::string& out, const char* key, std::uint64_t value) {
  out += ",\"";
  out += key;
  out += "\":" + std::to_string(value);
}

void appendField(std::string& out, const char* key, std::int64_t value) {
  out += ",\"";
  out += key;
  out += "\":" + std::to_string(value);
}

void appendField(std::string& out, const char* key, const std::string& value) {
  out += ",\"";
  out += key;
  out += "\":\"" + jsonEscape(value) + "\"";
}

void appendArray(std::string& out, const char* key,
                 const std::vector<std::uint64_t>& values) {
  out += ",\"";
  out += key;
  out += "\":[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(values[i]);
  }
  out += "]";
}

/// Single-line snapshot form: structurally complete (bounds + counts as
/// plain arrays) so parseSnapshot reproduces the MetricsSnapshot struct
/// exactly — unlike the Exporter's pretty JSON, which renders buckets in
/// the `le`-object viewer form.
void appendSnapshot(std::string& out, const MetricsSnapshot& snapshot) {
  out += ",\"snapshot\":{\"counters\":[";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const CounterSample& c = snapshot.counters[i];
    out += i == 0 ? "{" : ",{";
    out += "\"name\":\"" + jsonEscape(c.name) + "\"";
    appendField(out, "label", c.label);
    appendField(out, "value", c.value);
    out += "}";
  }
  out += "],\"gauges\":[";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const GaugeSample& g = snapshot.gauges[i];
    out += i == 0 ? "{" : ",{";
    out += "\"name\":\"" + jsonEscape(g.name) + "\"";
    appendField(out, "label", g.label);
    appendField(out, "value", g.value);
    out += "}";
  }
  out += "],\"histograms\":[";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSample& h = snapshot.histograms[i];
    out += i == 0 ? "{" : ",{";
    out += "\"name\":\"" + jsonEscape(h.name) + "\"";
    appendField(out, "label", h.label);
    appendField(out, "count", h.count);
    appendField(out, "sum", h.sum);
    appendField(out, "min", h.min);
    appendField(out, "max", h.max);
    appendField(out, "p50", h.p50);
    appendField(out, "p95", h.p95);
    appendField(out, "p99", h.p99);
    appendArray(out, "bounds", h.bounds);
    appendArray(out, "counts", h.counts);
    out += "}";
  }
  out += "],\"spans\":[";
  for (std::size_t i = 0; i < snapshot.spans.size(); ++i) {
    const Span& s = snapshot.spans[i];
    out += i == 0 ? "{" : ",{";
    out += "\"name\":\"" + jsonEscape(s.name) + "\"";
    appendField(out, "depth", static_cast<std::uint64_t>(s.depth));
    appendField(out, "start_ms", s.startMs);
    appendField(out, "duration_ms", s.durationMs);
    out += "}";
  }
  out += "]}";
}

// ---------------------------------------------------------------------------
// Parsing: a minimal recursive-descent JSON reader, just wide enough for
// the deterministic subset this file writes (objects, arrays, strings,
// integers, bool/null). Any deviation yields nullopt at the record level —
// torn tail lines and foreign formats are skipped, never mis-read.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  std::uint64_t magnitude = 0;
  bool negative = false;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  std::uint64_t asU64() const noexcept { return negative ? 0 : magnitude; }
  std::int64_t asI64() const noexcept {
    const auto m = static_cast<std::int64_t>(magnitude);
    return negative ? -m : m;
  }
  const JsonValue* find(std::string_view key) const noexcept {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

struct JsonParser {
  std::string_view text;
  std::size_t pos = 0;

  void skipWs() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\r' ||
            text[pos] == '\n'))
      ++pos;
  }
  bool eat(char c) {
    skipWs();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool parseString(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= text.size()) return false;
      const char esc = text[pos++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos + 4 > text.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return false;
          }
          // The writer only emits \u00XX control escapes; reject the rest
          // rather than guessing at UTF-16 surrogates.
          if (code > 0xFF) return false;
          out.push_back(static_cast<char>(code));
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool parseValue(JsonValue& out) {
    skipWs();
    if (pos >= text.size()) return false;
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      out.type = JsonValue::Type::kObject;
      skipWs();
      if (eat('}')) return true;
      while (true) {
        std::string key;
        if (!parseString(key) || !eat(':')) return false;
        JsonValue value;
        if (!parseValue(value)) return false;
        out.object.emplace_back(std::move(key), std::move(value));
        if (eat(',')) continue;
        return eat('}');
      }
    }
    if (c == '[') {
      ++pos;
      out.type = JsonValue::Type::kArray;
      skipWs();
      if (eat(']')) return true;
      while (true) {
        JsonValue value;
        if (!parseValue(value)) return false;
        out.array.push_back(std::move(value));
        if (eat(',')) continue;
        return eat(']');
      }
    }
    if (c == '"') {
      out.type = JsonValue::Type::kString;
      return parseString(out.string);
    }
    if (c == 't' && text.substr(pos, 4) == "true") {
      out.type = JsonValue::Type::kBool;
      out.boolean = true;
      pos += 4;
      return true;
    }
    if (c == 'f' && text.substr(pos, 5) == "false") {
      out.type = JsonValue::Type::kBool;
      pos += 5;
      return true;
    }
    if (c == 'n' && text.substr(pos, 4) == "null") {
      out.type = JsonValue::Type::kNull;
      pos += 4;
      return true;
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      out.type = JsonValue::Type::kNumber;
      out.negative = c == '-';
      if (out.negative) ++pos;
      bool any = false;
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
        out.magnitude = out.magnitude * 10 +
                        static_cast<std::uint64_t>(text[pos] - '0');
        ++pos;
        any = true;
      }
      return any;  // the writer never emits fractions or exponents
    }
    return false;
  }
};

std::uint64_t fieldU64(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.find(key);
  return v != nullptr ? v->asU64() : 0;
}

std::string fieldString(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.find(key);
  return v != nullptr ? v->string : std::string{};
}

bool parseU64Array(const JsonValue* v, std::vector<std::uint64_t>& out) {
  if (v == nullptr || v->type != JsonValue::Type::kArray) return false;
  out.reserve(v->array.size());
  for (const JsonValue& e : v->array) out.push_back(e.asU64());
  return true;
}

bool parseSnapshot(const JsonValue& v, MetricsSnapshot& out) {
  if (v.type != JsonValue::Type::kObject) return false;
  if (const JsonValue* counters = v.find("counters")) {
    for (const JsonValue& e : counters->array) {
      CounterSample c;
      c.name = fieldString(e, "name");
      c.label = fieldString(e, "label");
      c.value = fieldU64(e, "value");
      out.counters.push_back(std::move(c));
    }
  }
  if (const JsonValue* gauges = v.find("gauges")) {
    for (const JsonValue& e : gauges->array) {
      GaugeSample g;
      g.name = fieldString(e, "name");
      g.label = fieldString(e, "label");
      if (const JsonValue* value = e.find("value")) g.value = value->asI64();
      out.gauges.push_back(std::move(g));
    }
  }
  if (const JsonValue* histograms = v.find("histograms")) {
    for (const JsonValue& e : histograms->array) {
      HistogramSample h;
      h.name = fieldString(e, "name");
      h.label = fieldString(e, "label");
      h.count = fieldU64(e, "count");
      h.sum = fieldU64(e, "sum");
      h.min = fieldU64(e, "min");
      h.max = fieldU64(e, "max");
      h.p50 = fieldU64(e, "p50");
      h.p95 = fieldU64(e, "p95");
      h.p99 = fieldU64(e, "p99");
      if (!parseU64Array(e.find("bounds"), h.bounds) ||
          !parseU64Array(e.find("counts"), h.counts))
        return false;
      out.histograms.push_back(std::move(h));
    }
  }
  if (const JsonValue* spans = v.find("spans")) {
    for (const JsonValue& e : spans->array) {
      Span s;
      s.name = fieldString(e, "name");
      s.depth = static_cast<std::uint32_t>(fieldU64(e, "depth"));
      s.startMs = fieldU64(e, "start_ms");
      s.durationMs = fieldU64(e, "duration_ms");
      out.spans.push_back(std::move(s));
    }
  }
  return true;
}

}  // namespace

const char* ledgerRecordKindName(LedgerRecordKind kind) noexcept {
  switch (kind) {
    case LedgerRecordKind::kRun: return "run";
    case LedgerRecordKind::kWindow: return "window";
    case LedgerRecordKind::kWorker: return "worker";
    case LedgerRecordKind::kBreach: return "breach";
    case LedgerRecordKind::kAdmit: return "admit";
    case LedgerRecordKind::kQuarantinedSample: return "quarantined-sample";
  }
  return "?";
}

std::optional<LedgerRecordKind> ledgerRecordKindFromName(
    std::string_view name) noexcept {
  for (std::size_t i = 0; i < kLedgerRecordKindCount; ++i) {
    const auto kind = static_cast<LedgerRecordKind>(i);
    if (name == ledgerRecordKindName(kind)) return kind;
  }
  return std::nullopt;
}

std::string renderLedgerRecord(const LedgerRecord& record) {
  std::string out = "{\"schema\":\"";
  out += kLedgerSchema;
  out += "\",\"kind\":\"";
  out += ledgerRecordKindName(record.kind);
  out += "\"";
  appendField(out, "shard", record.shard);
  switch (record.kind) {
    case LedgerRecordKind::kRun:
      appendField(out, "request_index", record.requestIndex);
      appendField(out, "sample_id", record.sampleId);
      appendField(out, "status", record.status);
      appendField(out, "attempts",
                  static_cast<std::uint64_t>(record.attempts));
      appendField(out, "worker_index", record.workerIndex);
      appendField(out, "correlation_id", record.correlationId);
      appendField(out, "verdict", record.verdict);
      appendField(out, "first_trigger", record.firstTrigger);
      appendField(out, "protection", record.protection);
      appendField(out, "faults_injected",
                  static_cast<std::uint64_t>(record.faultsInjected));
      appendField(out, "inject_retries",
                  static_cast<std::uint64_t>(record.injectRetries));
      appendField(out, "quarantined_hooks",
                  static_cast<std::uint64_t>(record.quarantinedHooks));
      appendField(out, "missed_descendants",
                  static_cast<std::uint64_t>(record.missedDescendants));
      appendField(out, "reinjected_descendants",
                  static_cast<std::uint64_t>(record.reinjectedDescendants));
      appendField(out, "ipc_messages_dropped", record.ipcMessagesDropped);
      appendField(out, "virtual_ms", record.virtualMs);
      if (!record.hotTimers.empty()) {
        out += ",\"hot\":[";
        for (std::size_t i = 0; i < record.hotTimers.size(); ++i) {
          const LedgerPercentiles& p = record.hotTimers[i];
          out += i == 0 ? "{" : ",{";
          out += "\"name\":\"" + jsonEscape(p.name) + "\"";
          appendField(out, "p50", p.p50);
          appendField(out, "p95", p.p95);
          appendField(out, "p99", p.p99);
          out += "}";
        }
        out += "]";
      }
      break;
    case LedgerRecordKind::kWindow:
      appendField(out, "window_id", record.windowId);
      appendField(out, "start_ms", record.startMs);
      appendField(out, "end_ms", record.endMs);
      appendSnapshot(out, record.snapshot);
      break;
    case LedgerRecordKind::kWorker:
      appendField(out, "worker_index", record.workerIndex);
      appendSnapshot(out, record.snapshot);
      break;
    case LedgerRecordKind::kBreach:
      appendField(out, "window_id", record.windowId);
      appendField(out, "rule", record.rule);
      appendField(out, "observed", record.observed);
      appendField(out, "threshold", record.threshold);
      break;
    case LedgerRecordKind::kAdmit:
      appendField(out, "request_index", record.requestIndex);
      appendField(out, "sample_id", record.sampleId);
      appendField(out, "tenant", record.tenant);
      break;
    case LedgerRecordKind::kQuarantinedSample:
      appendField(out, "sample_id", record.sampleId);
      appendField(out, "failures", record.failureCount);
      break;
  }
  out += "}";
  return out;
}

std::optional<LedgerRecord> parseLedgerRecord(std::string_view line) {
  JsonParser parser{line};
  JsonValue root;
  if (!parser.parseValue(root)) return std::nullopt;
  parser.skipWs();
  if (parser.pos != line.size()) return std::nullopt;  // trailing garbage
  if (root.type != JsonValue::Type::kObject) return std::nullopt;
  if (fieldString(root, "schema") != kLedgerSchema) return std::nullopt;
  const auto kind = ledgerRecordKindFromName(fieldString(root, "kind"));
  if (!kind.has_value()) return std::nullopt;

  LedgerRecord record;
  record.kind = *kind;
  record.shard = fieldString(root, "shard");
  switch (record.kind) {
    case LedgerRecordKind::kRun:
      record.requestIndex = fieldU64(root, "request_index");
      record.sampleId = fieldString(root, "sample_id");
      record.status = fieldString(root, "status");
      record.attempts =
          static_cast<std::uint32_t>(fieldU64(root, "attempts"));
      record.workerIndex = fieldU64(root, "worker_index");
      record.correlationId = fieldU64(root, "correlation_id");
      record.verdict = fieldString(root, "verdict");
      record.firstTrigger = fieldString(root, "first_trigger");
      record.protection = fieldString(root, "protection");
      record.faultsInjected =
          static_cast<std::uint32_t>(fieldU64(root, "faults_injected"));
      record.injectRetries =
          static_cast<std::uint32_t>(fieldU64(root, "inject_retries"));
      record.quarantinedHooks =
          static_cast<std::uint32_t>(fieldU64(root, "quarantined_hooks"));
      record.missedDescendants =
          static_cast<std::uint32_t>(fieldU64(root, "missed_descendants"));
      record.reinjectedDescendants = static_cast<std::uint32_t>(
          fieldU64(root, "reinjected_descendants"));
      record.ipcMessagesDropped = fieldU64(root, "ipc_messages_dropped");
      record.virtualMs = fieldU64(root, "virtual_ms");
      if (const JsonValue* hot = root.find("hot")) {
        for (const JsonValue& e : hot->array) {
          LedgerPercentiles p;
          p.name = fieldString(e, "name");
          p.p50 = fieldU64(e, "p50");
          p.p95 = fieldU64(e, "p95");
          p.p99 = fieldU64(e, "p99");
          record.hotTimers.push_back(std::move(p));
        }
      }
      break;
    case LedgerRecordKind::kWindow: {
      record.windowId = fieldU64(root, "window_id");
      record.startMs = fieldU64(root, "start_ms");
      record.endMs = fieldU64(root, "end_ms");
      const JsonValue* snapshot = root.find("snapshot");
      if (snapshot == nullptr || !parseSnapshot(*snapshot, record.snapshot))
        return std::nullopt;
      break;
    }
    case LedgerRecordKind::kWorker: {
      record.workerIndex = fieldU64(root, "worker_index");
      const JsonValue* snapshot = root.find("snapshot");
      if (snapshot == nullptr || !parseSnapshot(*snapshot, record.snapshot))
        return std::nullopt;
      break;
    }
    case LedgerRecordKind::kBreach:
      record.windowId = fieldU64(root, "window_id");
      record.rule = fieldString(root, "rule");
      record.observed = fieldString(root, "observed");
      record.threshold = fieldString(root, "threshold");
      break;
    case LedgerRecordKind::kAdmit:
      record.requestIndex = fieldU64(root, "request_index");
      record.sampleId = fieldString(root, "sample_id");
      record.tenant = fieldString(root, "tenant");
      break;
    case LedgerRecordKind::kQuarantinedSample:
      record.sampleId = fieldString(root, "sample_id");
      record.failureCount = fieldU64(root, "failures");
      break;
  }
  return record;
}

std::vector<LedgerRecord> readLedgerFile(const std::string& path) {
  std::vector<LedgerRecord> records;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return records;
  std::string contents;
  char buffer[1 << 16];
  std::size_t got;
  while ((got = std::fread(buffer, 1, sizeof buffer, f)) > 0)
    contents.append(buffer, got);
  std::fclose(f);

  std::size_t start = 0;
  while (start <= contents.size()) {
    std::size_t end = contents.find('\n', start);
    const bool torn = end == std::string::npos;
    if (torn) end = contents.size();
    const std::string_view line(contents.data() + start, end - start);
    if (!line.empty()) {
      // A line without its newline is a torn crash tail; it must still
      // parse as a complete record to count (usually it will not).
      if (auto record = parseLedgerRecord(line); record.has_value())
        records.push_back(std::move(*record));
    }
    if (torn) break;
    start = end + 1;
  }
  return records;
}

std::vector<LedgerRecord> readLedgerGenerations(const std::string& path) {
  // Highest contiguous rotated generation on disk: rotateLocked() shifts
  // `.1` → `.2` → …, so the set is dense and a probe that misses ends it.
  std::uint32_t oldest = 0;
  for (std::uint32_t g = 1;; ++g) {
    std::FILE* f =
        std::fopen((path + "." + std::to_string(g)).c_str(), "rb");
    if (f == nullptr) break;
    std::fclose(f);
    oldest = g;
  }
  std::vector<LedgerRecord> records;
  for (std::uint32_t g = oldest; g >= 1; --g) {
    std::vector<LedgerRecord> part =
        readLedgerFile(path + "." + std::to_string(g));
    records.insert(records.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
  }
  std::vector<LedgerRecord> head = readLedgerFile(path);
  records.insert(records.end(), std::make_move_iterator(head.begin()),
                 std::make_move_iterator(head.end()));
  return records;
}

MetricsSnapshot reconstructFleetTelemetry(
    const std::vector<LedgerRecord>& records) {
  std::vector<const LedgerRecord*> workers;
  for (const LedgerRecord& record : records)
    if (record.kind == LedgerRecordKind::kWorker)
      workers.push_back(&record);
  // Worker order, shard-major: the same fold order mergedTelemetry() uses
  // within one batch, extended deterministically across shards.
  std::stable_sort(workers.begin(), workers.end(),
                   [](const LedgerRecord* a, const LedgerRecord* b) {
                     if (a->shard != b->shard) return a->shard < b->shard;
                     return a->workerIndex < b->workerIndex;
                   });
  MetricsSnapshot merged;
  for (const LedgerRecord* worker : workers) merged.merge(worker->snapshot);
  return merged;
}

const std::string& ledgerEnvPath() noexcept {
  static const std::string cached = support::envString("SCARECROW_LEDGER");
  return cached;
}

LedgerWriter::LedgerWriter(LedgerOptions options)
    : options_(std::move(options)) {}

LedgerWriter::~LedgerWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

bool LedgerWriter::rotateLocked() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  const std::uint32_t keep = options_.maxRotatedFiles;
  if (keep == 0) {
    std::remove(options_.path.c_str());
  } else {
    std::remove((options_.path + "." + std::to_string(keep)).c_str());
    for (std::uint32_t g = keep; g > 1; --g)
      std::rename((options_.path + "." + std::to_string(g - 1)).c_str(),
                  (options_.path + "." + std::to_string(g)).c_str());
    std::rename(options_.path.c_str(), (options_.path + ".1").c_str());
  }
  ++rotations_;
  bytes_ = 0;
  return true;
}

/// Counts a failed append and emits one structured log line on a
/// power-of-two backoff (1st, 2nd, 4th, 8th, … failure), so a dying disk
/// is loud without a sustained outage flooding the log.
bool LedgerWriter::noteFailureLocked() {
  const std::uint64_t failures =
      failures_.fetch_add(1, std::memory_order_relaxed) + 1;
  if ((failures & (failures - 1)) == 0)
    support::logWarn("ledger", "append failed",
                     {{"path", options_.path}, {"failures", failures}});
  return false;
}

bool LedgerWriter::append(LedgerRecord record) {
  if (record.shard.empty()) record.shard = options_.shard;
  const std::string line = renderLedgerRecord(record) + "\n";

  std::lock_guard<std::mutex> lock(mutex_);
  if (options_.failAppend && options_.failAppend())
    return noteFailureLocked();
  if (file_ == nullptr) {
    file_ = std::fopen(options_.path.c_str(), "ab");
    if (file_ == nullptr) {
      support::logError("ledger", "cannot open ledger",
                        {{"path", options_.path}});
      return noteFailureLocked();
    }
    std::fseek(file_, 0, SEEK_END);
    const long at = std::ftell(file_);
    bytes_ = at > 0 ? static_cast<std::uint64_t>(at) : 0;
  }
  if (options_.maxBytes != 0 && bytes_ != 0 &&
      bytes_ + line.size() > options_.maxBytes) {
    rotateLocked();
    file_ = std::fopen(options_.path.c_str(), "ab");
    if (file_ == nullptr) return noteFailureLocked();
  }
  // Line-atomic: the whole record in one write, flushed before returning,
  // so a crash can only lose or tear the final line — never interleave two.
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size())
    return noteFailureLocked();
  std::fflush(file_);
  bytes_ += line.size();
  ++written_;
  return true;
}

}  // namespace scarecrow::obs
