#include "obs/perf_report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <thread>

#include "support/env.h"
#include "support/strings.h"

namespace scarecrow::obs {

namespace {

using support::jsonEscape;

/// Exact percentile over sorted raw samples: the value at rank
/// ceil(p% · n) (1-based), matching the histogram rule's intent without
/// bucket quantization.
std::uint64_t exactPercentile(const std::vector<std::uint64_t>& sorted,
                              double p) noexcept {
  if (sorted.empty()) return 0;
  auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

}  // namespace

void PerfReport::addSamples(std::string metricName, std::string unit,
                            std::vector<std::uint64_t> samples,
                            std::uint64_t p50BudgetNs) {
  std::sort(samples.begin(), samples.end());
  PerfMetricStats stats;
  stats.name = std::move(metricName);
  stats.unit = std::move(unit);
  stats.iterations = samples.size();
  stats.p50BudgetNs = p50BudgetNs;
  if (!samples.empty()) {
    stats.min = samples.front();
    stats.max = samples.back();
    stats.sum = std::accumulate(samples.begin(), samples.end(),
                                std::uint64_t{0});
    stats.p50 = exactPercentile(samples, 50);
    stats.p95 = exactPercentile(samples, 95);
    stats.p99 = exactPercentile(samples, 99);
  }
  metrics.push_back(std::move(stats));
}

void PerfReport::addHistogram(const HistogramSample& histogram,
                              std::string unit, std::uint64_t p50BudgetNs) {
  PerfMetricStats stats;
  stats.name = histogram.label.empty()
                   ? histogram.name
                   : histogram.name + "{" + histogram.label + "}";
  stats.unit = std::move(unit);
  stats.iterations = histogram.count;
  stats.min = histogram.min;
  stats.max = histogram.max;
  stats.sum = histogram.sum;
  stats.p50 = histogram.p50;
  stats.p95 = histogram.p95;
  stats.p99 = histogram.p99;
  stats.p50BudgetNs = p50BudgetNs;
  metrics.push_back(std::move(stats));
}

void PerfReport::addValue(std::string metricName, std::string unit,
                          std::uint64_t value) {
  PerfMetricStats stats;
  stats.name = std::move(metricName);
  stats.unit = std::move(unit);
  stats.iterations = 1;
  stats.min = stats.max = stats.sum = value;
  stats.p50 = stats.p95 = stats.p99 = value;
  metrics.push_back(std::move(stats));
}

PerfReport makePerfReport(std::string name) {
  PerfReport report;
  report.name = std::move(name);
#if defined(__linux__)
  report.os = "linux";
#elif defined(_WIN32)
  report.os = "windows";
#elif defined(__APPLE__)
  report.os = "macos";
#endif
  report.cpus = std::thread::hardware_concurrency();
  if (const std::string rev = support::envString("SCARECROW_GIT_REV");
      !rev.empty())
    report.gitRev = rev;
  return report;
}

std::string renderPerfReportJson(const PerfReport& report) {
  std::vector<const PerfMetricStats*> ordered;
  ordered.reserve(report.metrics.size());
  for (const PerfMetricStats& m : report.metrics) ordered.push_back(&m);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const PerfMetricStats* a, const PerfMetricStats* b) {
                     return a->name < b->name;
                   });

  std::string out = "{\n";
  out += "  \"schema\": \"" + std::string(PerfReport::kSchema) + "\",\n";
  out += "  \"name\": \"" + jsonEscape(report.name) + "\",\n";
  out += "  \"git_rev\": \"" + jsonEscape(report.gitRev) + "\",\n";
  out += "  \"host\": {\"os\":\"" + jsonEscape(report.os) +
         "\",\"cpus\":" + std::to_string(report.cpus) + "},\n";
  out += "  \"metrics\": [";
  bool first = true;
  for (const PerfMetricStats* m : ordered) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\":\"" + jsonEscape(m->name) + "\"";
    out += ",\"unit\":\"" + jsonEscape(m->unit) + "\"";
    out += ",\"iterations\":" + std::to_string(m->iterations);
    out += ",\"min\":" + std::to_string(m->min);
    out += ",\"max\":" + std::to_string(m->max);
    out += ",\"sum\":" + std::to_string(m->sum);
    out += ",\"p50\":" + std::to_string(m->p50);
    out += ",\"p95\":" + std::to_string(m->p95);
    out += ",\"p99\":" + std::to_string(m->p99);
    if (m->p50BudgetNs != 0)
      out += ",\"budget\":{\"p50\":" + std::to_string(m->p50BudgetNs) + "}";
    out += "}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

bool writePerfReport(const PerfReport& report, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string rendered = renderPerfReportJson(report);
  const std::size_t written =
      std::fwrite(rendered.data(), 1, rendered.size(), f);
  const bool closed = std::fclose(f) == 0;
  return written == rendered.size() && closed;
}

}  // namespace scarecrow::obs
