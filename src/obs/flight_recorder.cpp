#include "obs/flight_recorder.h"

namespace scarecrow::obs {

const char* decisionKindName(DecisionKind kind) noexcept {
  switch (kind) {
    case DecisionKind::kHookDispatch: return "hook_dispatch";
    case DecisionKind::kDeception: return "deception";
    case DecisionKind::kSelfSpawn: return "self_spawn";
    case DecisionKind::kInjection: return "injection";
    case DecisionKind::kIpcSend: return "ipc_send";
    case DecisionKind::kIpcDrain: return "ipc_drain";
    case DecisionKind::kPhase: return "phase";
    case DecisionKind::kVerdict: return "verdict";
    case DecisionKind::kFaultInjected: return "fault_injected";
    case DecisionKind::kInjectFail: return "inject_fail";
    case DecisionKind::kRetry: return "retry";
    case DecisionKind::kQuarantine: return "quarantine";
    case DecisionKind::kDegradation: return "degradation";
    case DecisionKind::kStall: return "stall";
    case DecisionKind::kSloBreach: return "slo-breach";
    case DecisionKind::kBreakerTrip: return "breaker-trip";
  }
  return "?";
}

std::string digestArgument(std::string_view argument) {
  constexpr std::size_t kMaxLiteral = 96;
  constexpr std::size_t kKeptPrefix = 72;
  if (argument.size() <= kMaxLiteral) return std::string(argument);
  // FNV-1a 64-bit over the full argument: deterministic, collision-safe
  // enough to distinguish truncated prefixes in a trace viewer.
  std::uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : argument) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  static const char* hex = "0123456789abcdef";
  std::string out(argument.substr(0, kKeptPrefix));
  out += "…#";
  for (int shift = 60; shift >= 0; shift -= 4)
    out.push_back(hex[(h >> shift) & 0xf]);
  return out;
}

FlightRecorder::FlightRecorder(std::size_t capacity) : ring_(capacity) {}

std::uint64_t FlightRecorder::record(DecisionEvent event) {
  const std::uint64_t seq = nextSeq_++;
  event.seq = seq;
  if (ring_.empty()) {
    ++dropped_;
    if (droppedCounter_ != nullptr) droppedCounter_->inc();
    return seq;
  }
  if (size_ == ring_.size()) {
    // Drop-oldest: the slot at head_ is the oldest retained event.
    ring_[head_] = std::move(event);
    head_ = (head_ + 1) % ring_.size();
    ++dropped_;
    if (droppedCounter_ != nullptr) droppedCounter_->inc();
  } else {
    ring_[(head_ + size_) % ring_.size()] = std::move(event);
    ++size_;
  }
  return seq;
}

void FlightRecorder::setCapacity(std::size_t capacity) {
  if (capacity == ring_.size()) return;
  std::vector<DecisionEvent> retained = snapshot();
  if (retained.size() > capacity) {
    const std::size_t excess = retained.size() - capacity;
    retained.erase(retained.begin(),
                   retained.begin() + static_cast<std::ptrdiff_t>(excess));
    dropped_ += excess;
    if (droppedCounter_ != nullptr) droppedCounter_->inc(excess);
  }
  ring_.assign(capacity, DecisionEvent{});
  head_ = 0;
  size_ = retained.size();
  for (std::size_t i = 0; i < retained.size(); ++i)
    ring_[i] = std::move(retained[i]);
}

std::vector<DecisionEvent> FlightRecorder::snapshot() const {
  std::vector<DecisionEvent> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i)
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  return out;
}

void FlightRecorder::clear() {
  for (DecisionEvent& slot : ring_) slot = DecisionEvent{};
  head_ = 0;
  size_ = 0;
  nextSeq_ = 0;
  lastCorrelation_ = 0;
  dropped_ = 0;
}

}  // namespace scarecrow::obs
