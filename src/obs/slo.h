// Declarative SLO engine: rules over windowed telemetry, burn-rate pairs,
// and loud breaches (DESIGN.md §13).
//
// An SLO is a bound on a derived telemetry value — "hook-dispatch p50
// stays under 2 µs", "injection failures stay under 0.01 per window" —
// and a service is only honest about them if breaches fire from the
// telemetry plane itself, not from a human reading dashboards. SloEngine
// holds parsed rules and evaluates them against every window the
// TimeSeriesPlane closes. A breach is loud three ways at once:
//   * an `obs.slo_breach{rule}` counter tick in the bound registry,
//   * a kSloBreach decision event in the bound flight recorder
//     (api = metric, argument = rule spec, value = observed, link =
//     "window-<id>"),
//   * the optional breach action — the seam callers use to arm the PR 5
//     degradation ladder (DeceptionEngine::degradeTo) or append a
//     "breach" record to the run ledger.
//
// Rule grammar (semicolon-separated specs, parse errors throw):
//   metric:AGG OP VALUE            count / sum / p50 / p95 / p99 / max
//                                    over the window delta, e.g.
//                                    hot.hook_dispatch_ns:p50<2000
//   metric:rate OP VALUE[/window|/s]  counter delta per window or per
//                                    virtual second, fractional bounds
//                                    allowed: inject.failures:rate<0.01/window
//   metric:burn OP VALUE,fast=N,slow=M   multi-window burn-rate pair: the
//                                    per-second rate averaged over the
//                                    last N (fast) AND last M (slow)
//                                    windows must both violate the bound
//                                    to breach — the classic fast/slow
//                                    alerting pair that ignores blips but
//                                    catches sustained burns.
//   metric{label}:...              binds the rule to one label of the
//                                    metric identity.
// OP is `<` or `>`: the rule states the healthy bound, a breach is its
// violation (p50<2000 breaches when p50 >= 2000).
//
// Everything is virtual-clock-deterministic: identical runs evaluate
// identical windows and emit byte-identical breach events; observed
// values are rendered with fixed-point milli precision, never raw floats.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace scarecrow::obs {

enum class SloAggregate : std::uint8_t {
  kCount,  // counter delta (or histogram delta count) per window
  kSum,    // counter delta / histogram delta sum per window
  kP50,    // histogram-delta percentiles
  kP95,
  kP99,
  kMax,    // histogram cumulative max (the honest bound available)
  kRate,   // counter delta per window or per virtual second
  kBurn,   // fast/slow window-averaged per-second rate pair
};

inline constexpr std::size_t kSloAggregateCount =
    static_cast<std::size_t>(SloAggregate::kBurn) + 1;

/// Exhaustive over SloAggregate: "count", "sum", "p50", ...
const char* sloAggregateName(SloAggregate aggregate) noexcept;

/// The healthy bound's direction; a breach is the violation.
enum class SloComparison : std::uint8_t {
  kLess,     // value must stay strictly under the threshold
  kGreater,  // value must stay strictly over the threshold
};

/// Unit of a kRate threshold.
enum class SloRateUnit : std::uint8_t {
  kPerSecond,  // delta * 1000 / windowMs (virtual seconds)
  kPerWindow,  // delta per closed window
};

struct SloRule {
  /// The spec this rule was parsed from (round-trip label for counters,
  /// breach events, and ledger records).
  std::string spec;
  std::string metric;
  std::string label;
  SloAggregate aggregate = SloAggregate::kCount;
  SloComparison comparison = SloComparison::kLess;
  /// Fractional bounds are real for rates; fixed-point milli units keep
  /// the arithmetic and its rendering deterministic.
  std::int64_t thresholdMilli = 0;
  SloRateUnit rateUnit = SloRateUnit::kPerSecond;
  /// Burn-rate pair lengths in windows (kBurn only).
  std::uint32_t fastWindows = 1;
  std::uint32_t slowWindows = 1;
};

struct SloBreach {
  std::string rule;      // SloRule::spec
  std::string metric;
  std::uint64_t windowId = 0;
  /// Observed value in milli units of the rule's dimension.
  std::int64_t observedMilli = 0;
  std::int64_t thresholdMilli = 0;
};

/// "2000" for integral milli values, "0.01" style fixed-point otherwise —
/// deterministic, no float formatting.
std::string renderMilli(std::int64_t milli);

/// Environment default for Config-less callers: SCARECROW_SLO holds a rule
/// spec applied when no explicit rules are configured. Read once, cached.
const std::string& sloEnvSpec() noexcept;

class SloEngine {
 public:
  using BreachAction = std::function<void(const SloBreach&)>;

  SloEngine() = default;
  SloEngine(const SloEngine&) = delete;
  SloEngine& operator=(const SloEngine&) = delete;

  /// Parses one rule / a semicolon-separated list. Throws
  /// std::invalid_argument with the offending token on malformed specs.
  static SloRule parseRule(const std::string& spec);
  static std::vector<SloRule> parseRules(const std::string& spec);

  void addRule(SloRule rule) { rules_.push_back(std::move(rule)); }
  void addRules(const std::string& spec) {
    for (SloRule& rule : parseRules(spec)) rules_.push_back(std::move(rule));
  }
  const std::vector<SloRule>& rules() const noexcept { return rules_; }

  /// Breach sinks: the `obs.slo_breach{rule}` counter lands in `registry`,
  /// the kSloBreach decision event in `flight`. Either may be null.
  void bind(MetricsRegistry* registry, FlightRecorder* flight) noexcept {
    registry_ = registry;
    flight_ = flight;
  }

  /// Invoked once per breach, after the counter and event. The
  /// degradation-ladder / ledger seam.
  void setBreachAction(BreachAction action) {
    action_ = std::move(action);
  }

  /// Evaluates every rule against the newest closed window of `plane`
  /// (burn rules read back through the retained ring). Windows already
  /// evaluated are skipped, so wiring this as a plane window-observer
  /// fires each rule at most once per window. Returns this call's
  /// breaches; breaches() accumulates all of them.
  std::vector<SloBreach> onWindowClosed(const TimeSeriesPlane& plane,
                                        std::uint64_t nowMs);

  const std::vector<SloBreach>& breaches() const noexcept {
    return breaches_;
  }

  /// Forgets evaluation history and accumulated breaches (rules and
  /// bindings survive). Call between runs that reuse one engine.
  void reset() noexcept {
    breaches_.clear();
    lastEvaluatedClose_ = 0;
  }

 private:
  std::optional<std::int64_t> observedMilli(const SloRule& rule,
                                            const TimeSeriesPlane& plane,
                                            const WindowDelta& window) const;
  void emit(const SloBreach& breach, std::uint64_t nowMs);

  std::vector<SloRule> rules_;
  MetricsRegistry* registry_ = nullptr;
  FlightRecorder* flight_ = nullptr;
  BreachAction action_;
  std::vector<SloBreach> breaches_;
  /// windowsClosed() high-water mark — windows at or below it are done.
  std::uint64_t lastEvaluatedClose_ = 0;
};

}  // namespace scarecrow::obs
