#include "obs/hot_timer.h"

#include "support/env.h"

namespace scarecrow::obs {

const char* hotSiteName(HotSite site) noexcept {
  switch (site) {
    case HotSite::kHookDispatch: return "hook_dispatch";
    case HotSite::kDbLookup: return "db_lookup";
    case HotSite::kIpcSend: return "ipc_send";
    case HotSite::kIpcDrain: return "ipc_drain";
    case HotSite::kInject: return "inject";
  }
  return "?";
}

const char* hotSiteMetricName(HotSite site) noexcept {
  switch (site) {
    case HotSite::kHookDispatch: return "hot.hook_dispatch_ns";
    case HotSite::kDbLookup: return "hot.db_lookup_ns";
    case HotSite::kIpcSend: return "hot.ipc_send_ns";
    case HotSite::kIpcDrain: return "hot.ipc_drain_ns";
    case HotSite::kInject: return "hot.inject_ns";
  }
  return "?";
}

const std::vector<std::uint64_t>& hotTimerBucketBoundsNs() {
  static const std::vector<std::uint64_t> kBounds = [] {
    std::vector<std::uint64_t> bounds;
    bounds.reserve(HotTimer::kBoundCount);
    for (std::size_t i = 0; i < HotTimer::kBoundCount; ++i)
      bounds.push_back((std::uint64_t{1} << i) - 1);
    return bounds;
  }();
  return kBounds;
}

bool hotTimersEnvEnabled() noexcept {
  static const bool enabled = [] {
    const std::string v = support::envString("SCARECROW_HOT_TIMERS");
    return !v.empty() && v != "0";
  }();
  return enabled;
}

HistogramSample HotTimer::sample(std::string name) const {
  HistogramSample s;
  s.name = std::move(name);
  s.bounds = hotTimerBucketBoundsNs();
  s.counts.assign(counts_.begin(), counts_.end());
  s.count = count_;
  s.sum = sum_;
  s.min = min();
  s.max = max_;
  s.p50 = histogramSamplePercentile(s, 50);
  s.p95 = histogramSamplePercentile(s, 95);
  s.p99 = histogramSamplePercentile(s, 99);
  return s;
}

MetricsSnapshot HotTimerPlane::snapshot() const {
  // Emitted in metric-name order so the snapshot satisfies the sorted
  // (name, label) invariant merge() and the exporters rely on.
  static constexpr HotSite kByName[] = {
      HotSite::kDbLookup,   HotSite::kHookDispatch, HotSite::kInject,
      HotSite::kIpcDrain,   HotSite::kIpcSend,
  };
  static_assert(sizeof(kByName) / sizeof(kByName[0]) == kHotSiteCount);
  MetricsSnapshot snap;
  for (HotSite site : kByName) {
    const HotTimer& t = timer(site);
    if (t.count() == 0) continue;
    snap.histograms.push_back(t.sample(hotSiteMetricName(site)));
  }
  return snap;
}

}  // namespace scarecrow::obs
