#include "obs/timeseries.h"

#include <string>
#include <utility>

#include "support/env.h"

namespace scarecrow::obs {

namespace {

/// Identity key shared by the per-kind delta walks below.
template <typename Sample>
std::pair<const std::string&, const std::string&> identity(
    const Sample& sample) {
  return {sample.name, sample.label};
}

/// Finds `current`'s identity in the (name, label)-sorted `base`. Both
/// vectors honour the MetricsSnapshot ordering invariant, so a linear
/// merge-walk would do; the snapshots here are small enough that a binary
/// search per identity keeps the code simpler than carrying walk state.
template <typename Sample>
const Sample* findIdentity(const std::vector<Sample>& base,
                           const Sample& current) {
  std::size_t lo = 0, hi = base.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (identity(base[mid]) < identity(current))
      lo = mid + 1;
    else
      hi = mid;
  }
  if (lo < base.size() && identity(base[lo]) == identity(current))
    return &base[lo];
  return nullptr;
}

}  // namespace

std::uint64_t timeSeriesEnvWindowMs() noexcept {
  static const std::uint64_t cached =
      support::envUint64("SCARECROW_TS_WINDOW_MS", 0);
  return cached;
}

MetricsSnapshot snapshotDelta(const MetricsSnapshot& base,
                              const MetricsSnapshot& current) {
  MetricsSnapshot delta;

  delta.counters.reserve(current.counters.size());
  for (const CounterSample& c : current.counters) {
    const CounterSample* b = findIdentity(base.counters, c);
    CounterSample d = c;
    // A shrunken counter means the registry was cleared in between: the
    // delta restarts from zero rather than going negative.
    d.value = (b != nullptr && b->value <= c.value) ? c.value - b->value
                                                    : c.value;
    if (d.value != 0) delta.counters.push_back(std::move(d));
  }

  // Gauges are instants, not totals: the window carries the value at close.
  delta.gauges = current.gauges;

  delta.histograms.reserve(current.histograms.size());
  for (const HistogramSample& h : current.histograms) {
    const HistogramSample* b = findIdentity(base.histograms, h);
    HistogramSample d = h;
    if (b != nullptr && b->count <= h.count && b->bounds == h.bounds &&
        b->counts.size() == h.counts.size()) {
      d.count = h.count - b->count;
      d.sum = h.sum >= b->sum ? h.sum - b->sum : 0;
      for (std::size_t i = 0; i < d.counts.size(); ++i)
        d.counts[i] =
            h.counts[i] >= b->counts[i] ? h.counts[i] - b->counts[i] : 0;
      // min/max of just-this-window samples are unrecoverable from
      // cumulative extremes; report the bucket-resolution honest bounds.
      d.p50 = histogramSamplePercentile(d, 50);
      d.p95 = histogramSamplePercentile(d, 95);
      d.p99 = histogramSamplePercentile(d, 99);
      d.min = 0;
      d.max = h.max;
    }
    if (d.count != 0) delta.histograms.push_back(std::move(d));
  }

  // Spans complete append-only within one telemetry epoch; a shorter
  // current log means a clear happened and every span is new.
  const std::size_t known =
      base.spans.size() <= current.spans.size() ? base.spans.size() : 0;
  delta.spans.assign(current.spans.begin() +
                         static_cast<std::ptrdiff_t>(known),
                     current.spans.end());
  return delta;
}

void TimeSeriesPlane::configure(TimeSeriesOptions options) {
  options_ = options;
  if (options_.windowCapacity == 0) options_.windowCapacity = 1;
  openWindowId_ = 0;
  baseline_ = MetricsSnapshot{};
  windows_.clear();
  windowsClosed_ = 0;
  windowsEvicted_ = 0;
}

void TimeSeriesPlane::closeWindow(const MetricsSnapshot& cumulative,
                                  std::uint64_t nowMs) {
  WindowDelta window;
  window.windowId = openWindowId_;
  window.startMs = openWindowId_ * options_.intervalMs;
  window.endMs = window.startMs + options_.intervalMs;
  window.observedMs = nowMs;
  window.delta = snapshotDelta(baseline_, cumulative);
  baseline_ = cumulative;
  windows_.push_back(std::move(window));
  ++windowsClosed_;
  while (windows_.size() > options_.windowCapacity) {
    windows_.pop_front();
    ++windowsEvicted_;
  }
  for (const WindowObserver& observer : observers_)
    if (observer) observer(*this);
}

std::size_t TimeSeriesPlane::observe(const MetricsSnapshot& cumulative,
                                     std::uint64_t nowMs) {
  if (!due(nowMs)) return 0;
  closeWindow(cumulative, nowMs);
  openWindowId_ = nowMs / options_.intervalMs;
  return 1;
}

void TimeSeriesPlane::flush(const MetricsSnapshot& cumulative,
                            std::uint64_t nowMs) {
  if (!enabled()) return;
  const MetricsSnapshot remainder = snapshotDelta(baseline_, cumulative);
  if (remainder.empty()) return;
  closeWindow(cumulative, nowMs);
  openWindowId_ = nowMs / options_.intervalMs + 1;
}

MetricsSnapshot TimeSeriesPlane::sumWindows() const {
  MetricsSnapshot sum;
  for (const WindowDelta& window : windows_) {
    // Counters, histograms, and spans follow the merge rules exactly
    // (sum / bucket-add / append); gauges must be last-window-wins rather
    // than merge's max, so they are replaced wholesale afterwards.
    MetricsSnapshot delta = window.delta;
    delta.gauges.clear();
    sum.merge(delta);
    sum.gauges = window.delta.gauges;
  }
  return sum;
}

std::size_t TimeSeriesPlane::addWindowObserver(WindowObserver observer) {
  observers_.push_back(std::move(observer));
  return observers_.size() - 1;
}

void TimeSeriesPlane::removeWindowObserver(std::size_t slot) noexcept {
  if (slot < observers_.size()) observers_[slot] = nullptr;
}

}  // namespace scarecrow::obs
