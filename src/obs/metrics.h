// Telemetry primitives for the deception stack.
//
// The paper's evaluation (Tables I–III, Figure 4) is built on knowing which
// hook fired, when, and at what cost. MetricsRegistry is the process-wide
// ledger for that: named counters, gauges, and fixed-bucket latency
// histograms with percentile extraction, plus a span log for the nested
// phases of the evaluation pipeline (snapshot, restore, injection,
// execution, trace upload).
//
// Everything is driven by the machine's VirtualClock, never wall clock, so
// two identical runs export byte-identical telemetry — the telemetry itself
// is testable and diffable in CI. Values are integral milliseconds for the
// same reason: no float formatting nondeterminism can leak into exports.
//
// Hot-path contract: `Counter::inc()` on a cached pointer is a single
// add on a stable address (registry storage is node-based, references
// survive later registrations). Look the counter up once at install time,
// increment forever; see bench_overhead's BM_MetricsCounterIncrement.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace scarecrow::obs {

class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept { value_ += delta; }
  std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_ = v; }
  void add(std::int64_t delta) noexcept { value_ += delta; }
  std::int64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::int64_t value_ = 0;
};

/// Default latency buckets (virtual-clock milliseconds): tuned so the 1ms
/// per-API-call charge, sleep-patched delays, and full 60s run budgets all
/// land in distinct buckets.
const std::vector<std::uint64_t>& defaultLatencyBucketsMs();

/// Fixed-bucket histogram over unsigned integer samples. `bounds` are
/// inclusive upper bounds in ascending order; samples above the last bound
/// land in an implicit overflow bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void observe(std::uint64_t value) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const noexcept { return max_; }

  /// Percentile estimate for p in (0, 100]: the inclusive upper bound of
  /// the first bucket whose cumulative count reaches ceil(p% · count).
  /// Samples in the overflow bucket report the observed maximum. Returns 0
  /// when the histogram is empty.
  std::uint64_t percentile(double p) const noexcept;

  const std::vector<std::uint64_t>& bucketBounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket counts; size is bucketBounds().size() + 1 (overflow last).
  const std::vector<std::uint64_t>& bucketCounts() const noexcept {
    return counts_;
  }

  void reset() noexcept;

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// One completed timing span. Spans nest: `depth` is the number of
/// enclosing spans that were open when this one started.
struct Span {
  std::string name;
  std::uint32_t depth = 0;
  std::uint64_t startMs = 0;
  std::uint64_t durationMs = 0;
};

/// Value-type copy of a registry's state, ordered deterministically
/// (metrics by (name, label); spans in completion order). This is what
/// exporters and reports consume, and what EvalOutcome carries.
struct CounterSample {
  std::string name;
  std::string label;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::string label;
  std::int64_t value = 0;
};

struct HistogramSample {
  std::string name;
  std::string label;
  std::vector<std::uint64_t> bounds;
  std::vector<std::uint64_t> counts;  // bounds.size() + 1, overflow last
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p95 = 0;
  std::uint64_t p99 = 0;
};

/// Percentile over a HistogramSample with the same rule as
/// Histogram::percentile: the inclusive upper bound of the first bucket
/// whose cumulative count reaches ceil(p% · count); overflow-bucket
/// samples report the observed maximum; 0 when empty. Used by merge() to
/// recompute p50/p95/p99 from combined buckets, and by the perf-report
/// writer to summarize hot-timer histograms.
std::uint64_t histogramSamplePercentile(const HistogramSample& sample,
                                        double p) noexcept;

struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  std::vector<Span> spans;

  bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty() &&
           spans.empty();
  }
  /// Counter value by (name, label), 0 when absent. Convenience for tests
  /// and reports.
  std::uint64_t counterValue(std::string_view name,
                             std::string_view label = {}) const noexcept;

  /// Folds `other` into this snapshot, preserving the deterministic
  /// (name, label) ordering. Used by core::BatchEvaluator to combine
  /// per-sample and per-worker telemetry into one corpus-level dump:
  ///   - counters: summed per identity (union of identities);
  ///   - gauges: per-identity maximum (a batch-level gauge is a high-water
  ///     mark, not a sum of unrelated instants);
  ///   - histograms: per-bucket counts, count and sum added; min/max
  ///     combined; p50/p95/p99 recomputed from the merged buckets.
  ///     Identities must share bucket bounds (they do: bounds are fixed at
  ///     first registration from the same code path); on a mismatch the
  ///     left operand's buckets win and only the scalar totals merge;
  ///   - spans: `other`'s span log is appended after this one's.
  /// Merging is associative, and commutative for everything except span
  /// order, so summing per-worker snapshots in worker order is
  /// deterministic regardless of how requests raced across workers.
  void merge(const MetricsSnapshot& other);
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the metric with this (name, label) identity, creating it on
  /// first use. References stay valid for the registry's lifetime —
  /// reset() zeroes values in place, it never destroys storage — so hot
  /// paths can cache the pointer.
  Counter& counter(std::string_view name, std::string_view label = {});
  Gauge& gauge(std::string_view name, std::string_view label = {});
  /// `bounds` is consulted only on first creation of the histogram.
  Histogram& histogram(std::string_view name, std::string_view label = {},
                       const std::vector<std::uint64_t>& bounds =
                           defaultLatencyBucketsMs());

  void recordSpan(std::string name, std::uint64_t startMs,
                  std::uint64_t durationMs, std::uint32_t depth);
  const std::vector<Span>& spans() const noexcept { return spans_; }

  /// Zeroes every metric and drops recorded spans. Metric identities (and
  /// therefore cached references) survive.
  void reset();

  /// Destroys every metric identity and the span log. Unlike reset(),
  /// cached metric references are invalidated and must be re-looked-up.
  /// winsys::Machine::resetTelemetry uses this to make per-evaluation
  /// telemetry history-independent: a snapshot taken after clear() holds
  /// only identities the current evaluation touched, so a batch worker's
  /// Nth sample exports the same bytes as a serial run's.
  void clear();

  MetricsSnapshot snapshot() const;

 private:
  friend class ScopedSpan;

  using Key = std::pair<std::string, std::string>;  // (name, label)
  std::map<Key, Counter> counters_;
  std::map<Key, Gauge> gauges_;
  std::map<Key, Histogram> histograms_;
  std::vector<Span> spans_;
  std::uint32_t openSpans_ = 0;
};

}  // namespace scarecrow::obs
