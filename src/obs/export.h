// Telemetry export: one entry point, three wire formats.
//
// Exporter renders a MetricsSnapshot (plus, for the Chrome trace format,
// the flight-recorder decision trace) into the format selected by its
// ExportFormat:
//   - kJson: deterministic JSON — integral values only, metrics ordered by
//     (name, label), spans in completion order — byte-identical across
//     identical runs, so CI can diff telemetry like any other artifact;
//   - kPrometheus: Prometheus text exposition format (counters, gauges,
//     and histograms with cumulative `le` buckets), for scraping a live
//     deployment;
//   - kChromeTrace: Chrome trace-event JSON (loadable in Perfetto /
//     about://tracing) — phase spans as duration events, decisions as
//     instants, correlation chains as flow arrows (see trace_export.h).
//
// All three renderings honour the same determinism contract: fixed key
// order, integral values derived from the virtual clock, byte-identical
// output for identical inputs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace scarecrow::obs {

enum class ExportFormat { kJson, kPrometheus, kChromeTrace };

/// Exhaustive over ExportFormat: "json", "prometheus", "chrome-trace".
const char* exportFormatName(ExportFormat format) noexcept;

/// Conventional file extension for dump files: "json", "prom",
/// "trace.json".
const char* exportFileExtension(ExportFormat format) noexcept;

class Exporter {
 public:
  explicit Exporter(ExportFormat format) noexcept : format_(format) {}

  /// Attaches the decision trace consumed by the kChromeTrace format (the
  /// metric formats ignore it). `decisions` is borrowed, not copied: it
  /// must outlive the render() call. `dropped` is surfaced in the trace's
  /// otherData so a viewer knows when the ring buffer overflowed and
  /// chains may be missing their oldest links.
  Exporter& withDecisions(const std::vector<DecisionEvent>& decisions,
                          std::uint64_t dropped = 0) noexcept {
    decisions_ = &decisions;
    droppedDecisions_ = dropped;
    return *this;
  }

  std::string render(const MetricsSnapshot& snapshot) const;

  ExportFormat format() const noexcept { return format_; }

 private:
  ExportFormat format_;
  const std::vector<DecisionEvent>* decisions_ = nullptr;
  std::uint64_t droppedDecisions_ = 0;
};

}  // namespace scarecrow::obs
