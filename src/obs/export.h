// Telemetry exporters.
//
// Two wire formats for a MetricsSnapshot:
//   - deterministic JSON: integral values only, metrics ordered by
//     (name, label), spans in completion order — byte-identical across
//     identical runs, so CI can diff telemetry like any other artifact;
//   - Prometheus text exposition format (counters, gauges, and histograms
//     with cumulative `le` buckets), for scraping a live deployment.
#pragma once

#include <string>

#include "obs/metrics.h"

namespace scarecrow::obs {

std::string exportJson(const MetricsSnapshot& snapshot);

/// Metric names are prefixed `scarecrow_` and sanitized to the Prometheus
/// charset; non-empty labels are emitted as {label="..."}.
std::string exportPrometheus(const MetricsSnapshot& snapshot);

}  // namespace scarecrow::obs
