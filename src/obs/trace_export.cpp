#include "obs/trace_export.h"

#include <algorithm>
#include <map>

#include "support/strings.h"

namespace scarecrow::obs::detail {

namespace {

using support::jsonEscape;

/// Virtual-clock milliseconds → trace microseconds (the unit the trace
/// event format specifies for "ts"/"dur").
std::string ts(std::uint64_t timeMs) { return std::to_string(timeMs * 1000); }

void appendEvent(std::string& out, bool& first, const std::string& body) {
  out += first ? "\n" : ",\n";
  first = false;
  out += "    {" + body + "}";
}

std::string eventArgs(const DecisionEvent& e) {
  std::string args = "\"seq\":" + std::to_string(e.seq);
  if (e.correlationId != 0)
    args += ",\"correlation\":" + std::to_string(e.correlationId);
  if (!e.argument.empty())
    args += ",\"argument\":\"" + jsonEscape(e.argument) + "\"";
  if (!e.matched.empty())
    args += ",\"matched\":\"" + jsonEscape(e.matched) + "\"";
  if (!e.value.empty())
    args += ",\"value\":\"" + jsonEscape(e.value) + "\"";
  if (!e.link.empty()) args += ",\"link\":\"" + jsonEscape(e.link) + "\"";
  return args;
}

}  // namespace

std::string renderChromeTrace(const MetricsSnapshot& snapshot,
                              const std::vector<DecisionEvent>& decisions,
                              std::uint64_t droppedEvents) {
  std::string out = "{\n  \"displayTimeUnit\": \"ms\",\n";
  out += "  \"otherData\": {\"dropped_decision_events\": \"" +
         std::to_string(droppedEvents) + "\"},\n";
  out += "  \"traceEvents\": [";
  bool first = true;

  // One track per pid: name each process so Perfetto shows roles instead
  // of bare numbers. Pid 0 is the evaluation pipeline itself (spans and
  // phase transitions are recorded without a process context).
  std::map<std::uint32_t, bool> pids;
  if (!snapshot.spans.empty()) pids[0] = true;
  for (const DecisionEvent& e : decisions) pids[e.pid] = true;
  for (const auto& [pid, unused] : pids) {
    const std::string name =
        pid == 0 ? "scarecrow pipeline" : "process " + std::to_string(pid);
    appendEvent(out, first,
                "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
                    std::to_string(pid) +
                    ",\"tid\":0,\"args\":{\"name\":\"" + name + "\"}");
  }

  // PR 1 phase spans as duration events on the pipeline track.
  for (const Span& s : snapshot.spans)
    appendEvent(out, first,
                "\"name\":\"" + jsonEscape(s.name) +
                    "\",\"cat\":\"phase\",\"ph\":\"X\",\"pid\":0,\"tid\":1"
                    ",\"ts\":" +
                    ts(s.startMs) + ",\"dur\":" + ts(s.durationMs) +
                    ",\"args\":{\"depth\":" + std::to_string(s.depth) + "}");

  // Chains with more than one event get flow arrows: s on the first
  // occurrence, t on middles, f on the last. Count occurrences first.
  std::map<std::uint64_t, std::uint64_t> chainSizes;
  for (const DecisionEvent& e : decisions)
    if (e.correlationId != 0) ++chainSizes[e.correlationId];
  std::map<std::uint64_t, std::uint64_t> chainSeen;

  for (const DecisionEvent& e : decisions) {
    const std::string name =
        e.api.empty() ? decisionKindName(e.kind) : e.api;
    const std::string at = ",\"pid\":" + std::to_string(e.pid) +
                           ",\"tid\":1,\"ts\":" + ts(e.timeMs);
    appendEvent(out, first,
                "\"name\":\"" + jsonEscape(name) + "\",\"cat\":\"" +
                    decisionKindName(e.kind) +
                    "\",\"ph\":\"i\",\"s\":\"p\"" + at + ",\"args\":{" +
                    eventArgs(e) + "}");
    if (e.correlationId == 0 || chainSizes[e.correlationId] < 2) continue;
    const std::uint64_t nth = ++chainSeen[e.correlationId];
    const char* ph = nth == 1 ? "s"
                     : nth == chainSizes[e.correlationId] ? "f"
                                                          : "t";
    std::string flow = "\"name\":\"chain\",\"cat\":\"correlation\",\"ph\":\"";
    flow += ph;
    flow += "\",\"id\":" + std::to_string(e.correlationId) + at;
    if (*ph == 'f') flow += ",\"bp\":\"e\"";
    appendEvent(out, first, flow);
  }

  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace scarecrow::obs::detail
