// Machine-readable perf trajectory: the BENCH_<name>.json writer
// (DESIGN.md §12).
//
// Every bench run that matters should leave a schema-versioned record a
// machine can diff: host metadata, git revision, and per-metric latency
// stats (iterations, min/max/sum, p50/p95/p99, optional p50 budget).
// scripts/perf_gate.py consumes two of these — the committed baseline and
// a fresh run — and fails on regression beyond a tolerance or on a busted
// budget, which is what lets ns-level claims ("disarmed hot-timer check
// ≤2 ns", "hook dispatch under the SLO") gate PRs instead of living in
// commit messages.
//
// Rendering is deterministic for fixed inputs: metrics sorted by name,
// fixed key order, integral values only — the committed BENCH_*.json
// diffs like any other artifact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace scarecrow::obs {

/// Summary stats for one measured metric. `p50BudgetNs` is an inline SLO:
/// 0 means "no budget"; non-zero makes scripts/perf_gate.py fail any run
/// whose p50 exceeds it (tolerance-free — budgets are hard).
struct PerfMetricStats {
  std::string name;
  std::string unit = "ns";
  std::uint64_t iterations = 0;  // samples behind the stats
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::uint64_t sum = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p95 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t p50BudgetNs = 0;
};

struct PerfReport {
  /// Bumped when the JSON shape changes; perf_gate.py refuses unknown
  /// schemas instead of mis-parsing them.
  static constexpr const char* kSchema = "scarecrow.bench.v1";

  std::string name;             // "hotpath", "table1", ...
  std::string gitRev = "unknown";
  std::string os = "unknown";
  std::uint32_t cpus = 0;
  std::vector<PerfMetricStats> metrics;  // sorted by name at render time

  /// Exact-percentile stats over raw samples (sorted internally; `samples`
  /// is taken by value on purpose). Empty input records a zeroed metric.
  void addSamples(std::string metricName, std::string unit,
                  std::vector<std::uint64_t> samples,
                  std::uint64_t p50BudgetNs = 0);

  /// Bucket-resolution stats from an exported histogram (hot timers,
  /// registry histograms): percentiles are the sample's own p50/p95/p99.
  void addHistogram(const HistogramSample& histogram, std::string unit,
                    std::uint64_t p50BudgetNs = 0);

  /// One observed scalar (throughput gauge, count): iterations = 1,
  /// min = max = p* = value.
  void addValue(std::string metricName, std::string unit,
                std::uint64_t value);
};

/// Fills name + host metadata: os from the build target, cpus from
/// hardware_concurrency, gitRev from $SCARECROW_GIT_REV when set
/// (scripts/run_bench.sh exports it).
PerfReport makePerfReport(std::string name);

/// Deterministic JSON for fixed inputs (metrics sorted by name, fixed key
/// order, trailing newline). See exporter_golden_test for the pinned shape.
std::string renderPerfReportJson(const PerfReport& report);

/// Writes renderPerfReportJson(report) to `path`. False on I/O failure.
bool writePerfReport(const PerfReport& report, const std::string& path);

}  // namespace scarecrow::obs
