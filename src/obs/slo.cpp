#include "obs/slo.h"

#include <stdexcept>
#include <utility>

#include "support/env.h"
#include "support/log.h"
#include "support/strings.h"

namespace scarecrow::obs {

namespace {

/// Finds one sample by (name, label); nullptr when absent.
template <typename Sample>
const Sample* findSample(const std::vector<Sample>& samples,
                         const std::string& name, const std::string& label) {
  for (const Sample& sample : samples)
    if (sample.name == name && sample.label == label) return &sample;
  return nullptr;
}

[[noreturn]] void badSpec(const std::string& spec, const char* why) {
  throw std::invalid_argument("bad SLO rule '" + spec + "': " + why);
}

/// Parses a non-negative decimal with up to three fractional digits into
/// milli units ("0.01" -> 10, "2000" -> 2000000). Exact or it throws.
std::int64_t parseMilli(const std::string& spec, std::string_view text) {
  if (text.empty()) badSpec(spec, "missing threshold");
  std::uint64_t whole = 0;
  std::size_t i = 0;
  bool anyDigit = false;
  for (; i < text.size() && text[i] >= '0' && text[i] <= '9'; ++i) {
    whole = whole * 10 + static_cast<std::uint64_t>(text[i] - '0');
    anyDigit = true;
  }
  std::uint64_t fraction = 0;
  if (i < text.size() && text[i] == '.') {
    ++i;
    std::size_t digits = 0;
    for (; i < text.size() && text[i] >= '0' && text[i] <= '9'; ++i) {
      if (++digits > 3) badSpec(spec, "threshold finer than milli precision");
      fraction = fraction * 10 + static_cast<std::uint64_t>(text[i] - '0');
      anyDigit = true;
    }
    while (digits++ < 3) fraction *= 10;
  }
  if (!anyDigit || i != text.size()) badSpec(spec, "malformed threshold");
  return static_cast<std::int64_t>(whole * 1000 + fraction);
}

bool violates(SloComparison comparison, std::int64_t observedMilli,
              std::int64_t thresholdMilli) noexcept {
  switch (comparison) {
    case SloComparison::kLess: return observedMilli >= thresholdMilli;
    case SloComparison::kGreater: return observedMilli <= thresholdMilli;
  }
  return false;
}

/// Counter-style window delta for rate/count/sum rules: a counter when
/// one exists, else a histogram's count/sum, else 0 (absence from a
/// window means nothing was recorded).
std::uint64_t counterDelta(const SloRule& rule, const MetricsSnapshot& delta,
                           bool wantSum) {
  if (const CounterSample* c =
          findSample(delta.counters, rule.metric, rule.label))
    return c->value;
  if (const HistogramSample* h =
          findSample(delta.histograms, rule.metric, rule.label))
    return wantSum ? h->sum : h->count;
  return 0;
}

/// Sum of `windows` trailing counter deltas; nullopt until that many
/// windows have been retained (burn pairs need their full lookback).
std::optional<std::uint64_t> trailingDelta(const SloRule& rule,
                                           const TimeSeriesPlane& plane,
                                           std::uint32_t windows) {
  const auto& ring = plane.windows();
  if (windows == 0 || ring.size() < windows) return std::nullopt;
  std::uint64_t total = 0;
  for (std::size_t i = ring.size() - windows; i < ring.size(); ++i)
    total += counterDelta(rule, ring[i].delta, /*wantSum=*/false);
  return total;
}

}  // namespace

const char* sloAggregateName(SloAggregate aggregate) noexcept {
  switch (aggregate) {
    case SloAggregate::kCount: return "count";
    case SloAggregate::kSum: return "sum";
    case SloAggregate::kP50: return "p50";
    case SloAggregate::kP95: return "p95";
    case SloAggregate::kP99: return "p99";
    case SloAggregate::kMax: return "max";
    case SloAggregate::kRate: return "rate";
    case SloAggregate::kBurn: return "burn";
  }
  return "?";
}

std::string renderMilli(std::int64_t milli) {
  std::string sign;
  std::uint64_t magnitude;
  if (milli < 0) {
    sign = "-";
    magnitude = static_cast<std::uint64_t>(-milli);
  } else {
    magnitude = static_cast<std::uint64_t>(milli);
  }
  std::string out = sign + std::to_string(magnitude / 1000);
  std::uint64_t fraction = magnitude % 1000;
  if (fraction != 0) {
    std::string digits = std::to_string(fraction);
    digits.insert(0, 3 - digits.size(), '0');
    while (!digits.empty() && digits.back() == '0') digits.pop_back();
    out += "." + digits;
  }
  return out;
}

const std::string& sloEnvSpec() noexcept {
  static const std::string cached = support::envString("SCARECROW_SLO");
  return cached;
}

SloRule SloEngine::parseRule(const std::string& spec) {
  SloRule rule;
  rule.spec = spec;

  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos || colon == 0)
    badSpec(spec, "expected metric:aggregate<bound");
  std::string metric = spec.substr(0, colon);
  if (const std::size_t brace = metric.find('{');
      brace != std::string::npos) {
    if (metric.back() != '}' || brace + 1 >= metric.size() - 1)
      badSpec(spec, "malformed {label}");
    rule.label = metric.substr(brace + 1, metric.size() - brace - 2);
    metric.resize(brace);
  }
  if (metric.empty()) badSpec(spec, "empty metric");
  rule.metric = std::move(metric);

  std::string body = spec.substr(colon + 1);
  // Burn options trail the bound: ",fast=N,slow=M" in either order.
  std::optional<std::uint32_t> fast, slow;
  while (true) {
    const std::size_t comma = body.rfind(',');
    if (comma == std::string::npos) break;
    const std::string option = body.substr(comma + 1);
    std::uint32_t* target = nullptr;
    std::size_t eq = option.find('=');
    if (eq != std::string::npos) {
      const std::string key = option.substr(0, eq);
      if (key == "fast") target = &*(fast = 0);
      if (key == "slow") target = &*(slow = 0);
    }
    if (target == nullptr) break;  // a comma inside the threshold? reject later
    const std::string value = option.substr(eq + 1);
    if (value.empty()) badSpec(spec, "empty burn option");
    for (char c : value) {
      if (c < '0' || c > '9') badSpec(spec, "malformed burn option");
      *target = *target * 10 + static_cast<std::uint32_t>(c - '0');
    }
    if (*target == 0) badSpec(spec, "burn lookback must be >= 1 window");
    body.resize(comma);
  }

  const std::size_t op = body.find_first_of("<>");
  if (op == std::string::npos) badSpec(spec, "expected < or > bound");
  rule.comparison = body[op] == '<' ? SloComparison::kLess
                                    : SloComparison::kGreater;
  const std::string aggregate = body.substr(0, op);
  std::string bound = body.substr(op + 1);

  bool known = false;
  for (std::size_t i = 0; i < kSloAggregateCount; ++i) {
    const auto candidate = static_cast<SloAggregate>(i);
    if (aggregate == sloAggregateName(candidate)) {
      rule.aggregate = candidate;
      known = true;
      break;
    }
  }
  if (!known) badSpec(spec, "unknown aggregate");

  if (rule.aggregate == SloAggregate::kRate) {
    if (support::iendsWith(bound, "/window")) {
      rule.rateUnit = SloRateUnit::kPerWindow;
      bound.resize(bound.size() - 7);
    } else if (support::iendsWith(bound, "/s")) {
      rule.rateUnit = SloRateUnit::kPerSecond;
      bound.resize(bound.size() - 2);
    }
  }
  rule.thresholdMilli = parseMilli(spec, bound);

  if (rule.aggregate == SloAggregate::kBurn) {
    if (!fast.has_value() || !slow.has_value())
      badSpec(spec, "burn needs fast=N,slow=M");
    if (*fast > *slow) badSpec(spec, "burn fast window exceeds slow window");
    rule.fastWindows = *fast;
    rule.slowWindows = *slow;
  } else if (fast.has_value() || slow.has_value()) {
    badSpec(spec, "fast/slow only apply to burn rules");
  }
  return rule;
}

std::vector<SloRule> SloEngine::parseRules(const std::string& spec) {
  std::vector<SloRule> rules;
  for (const std::string& part : support::split(spec, ';')) {
    const std::string_view trimmed = support::trim(part);
    if (trimmed.empty()) continue;
    rules.push_back(parseRule(std::string(trimmed)));
  }
  return rules;
}

std::optional<std::int64_t> SloEngine::observedMilli(
    const SloRule& rule, const TimeSeriesPlane& plane,
    const WindowDelta& window) const {
  const std::uint64_t windowMs =
      window.endMs > window.startMs ? window.endMs - window.startMs : 1;
  switch (rule.aggregate) {
    case SloAggregate::kCount:
      return static_cast<std::int64_t>(
          counterDelta(rule, window.delta, false) * 1000);
    case SloAggregate::kSum:
      return static_cast<std::int64_t>(
          counterDelta(rule, window.delta, true) * 1000);
    case SloAggregate::kP50:
    case SloAggregate::kP95:
    case SloAggregate::kP99:
    case SloAggregate::kMax: {
      const HistogramSample* h =
          findSample(window.delta.histograms, rule.metric, rule.label);
      if (h == nullptr || h->count == 0) return std::nullopt;
      std::uint64_t value = 0;
      if (rule.aggregate == SloAggregate::kP50) value = h->p50;
      if (rule.aggregate == SloAggregate::kP95) value = h->p95;
      if (rule.aggregate == SloAggregate::kP99) value = h->p99;
      if (rule.aggregate == SloAggregate::kMax) value = h->max;
      return static_cast<std::int64_t>(value * 1000);
    }
    case SloAggregate::kRate: {
      const std::uint64_t delta = counterDelta(rule, window.delta, false);
      if (rule.rateUnit == SloRateUnit::kPerWindow)
        return static_cast<std::int64_t>(delta * 1000);
      return static_cast<std::int64_t>(delta * 1'000'000 / windowMs);
    }
    case SloAggregate::kBurn: {
      const auto fast = trailingDelta(rule, plane, rule.fastWindows);
      const auto slow = trailingDelta(rule, plane, rule.slowWindows);
      if (!fast.has_value() || !slow.has_value()) return std::nullopt;
      const std::int64_t fastMilli = static_cast<std::int64_t>(
          *fast * 1'000'000 / (rule.fastWindows * windowMs));
      const std::int64_t slowMilli = static_cast<std::int64_t>(
          *slow * 1'000'000 / (rule.slowWindows * windowMs));
      // The pair breaches only when BOTH horizons violate; report the fast
      // rate (the number that pages), signal "no breach" by returning the
      // healthy side of the bound when the slow horizon is clean.
      if (!violates(rule.comparison, slowMilli, rule.thresholdMilli))
        return std::nullopt;
      return fastMilli;
    }
  }
  return std::nullopt;
}

void SloEngine::emit(const SloBreach& breach, std::uint64_t nowMs) {
  if (registry_ != nullptr)
    registry_->counter("obs.slo_breach", breach.rule).inc();
  if (flight_ != nullptr) {
    DecisionEvent e;
    e.timeMs = nowMs;
    e.kind = DecisionKind::kSloBreach;
    e.api = breach.metric;
    e.argument = breach.rule;
    e.value = renderMilli(breach.observedMilli);
    e.matched = renderMilli(breach.thresholdMilli);
    e.link = "window-" + std::to_string(breach.windowId);
    flight_->record(std::move(e));
  }
  support::logWarn("slo", "SLO breach",
                   {{"rule", breach.rule},
                    {"observed", renderMilli(breach.observedMilli)},
                    {"threshold", renderMilli(breach.thresholdMilli)},
                    {"window", breach.windowId}});
  if (action_) action_(breach);
}

std::vector<SloBreach> SloEngine::onWindowClosed(const TimeSeriesPlane& plane,
                                                 std::uint64_t nowMs) {
  std::vector<SloBreach> fired;
  if (plane.windows().empty() ||
      plane.windowsClosed() <= lastEvaluatedClose_)
    return fired;
  lastEvaluatedClose_ = plane.windowsClosed();
  const WindowDelta& window = plane.windows().back();
  for (const SloRule& rule : rules_) {
    const std::optional<std::int64_t> observed =
        observedMilli(rule, plane, window);
    if (!observed.has_value()) continue;
    if (!violates(rule.comparison, *observed, rule.thresholdMilli)) continue;
    SloBreach breach;
    breach.rule = rule.spec;
    breach.metric = rule.metric;
    breach.windowId = window.windowId;
    breach.observedMilli = *observed;
    breach.thresholdMilli = rule.thresholdMilli;
    emit(breach, nowMs);
    breaches_.push_back(breach);
    fired.push_back(std::move(breach));
  }
  return fired;
}

}  // namespace scarecrow::obs
