// Chrome trace-event renderer (loadable in Perfetto / about://tracing).
//
// Internal backend of the unified Exporter (export.h) — reach it through
// `Exporter(ExportFormat::kChromeTrace)`, not directly. Renders one
// evaluation's observability artifacts as a single trace:
//   - PR 1's phase spans become duration ("X") events on the pipeline
//     track (pid 0);
//   - flight-recorder DecisionEvents become instant ("i") events on one
//     track per pid, with the full decision payload in `args`;
//   - causal chains (shared correlation id) become flow events
//     (s/t/f), so Perfetto draws the hook → IPC → controller → verdict
//     arrow across process tracks.
//
// The render is deterministic: fixed key order, integral microsecond
// timestamps derived from the virtual clock, events in recorder order —
// two identical runs render byte-identical JSON (the same contract the
// JSON metric format honours).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace scarecrow::obs::detail {

/// `droppedEvents` is surfaced in the trace's otherData so a viewer knows
/// when the ring buffer overflowed and chains may be missing their oldest
/// links.
std::string renderChromeTrace(const MetricsSnapshot& snapshot,
                              const std::vector<DecisionEvent>& decisions,
                              std::uint64_t droppedEvents);

}  // namespace scarecrow::obs::detail
