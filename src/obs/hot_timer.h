// Hot-path latency plane: fixed-bucket nanosecond timers (DESIGN.md §12).
//
// The metrics registry's histograms are virtual-clock milliseconds — the
// right unit for the simulated world, useless for the question "how many
// real nanoseconds does a hook dispatch cost?". HotTimer answers that: a
// power-of-two-bucket wall-clock histogram with no allocation on the
// record path, cheap enough to stay compiled into the dispatch hot path
// permanently. The arming contract mirrors faults::FaultInjector's site
// check: a disarmed site costs one array load and a branch (~1 ns, gated
// at ≤2 ns by BM_HotTimer_Disarmed and scripts/perf_gate.py), so timers
// ship enabled-by-default as *sites* and are armed per run.
//
// Timers are deliberately kept out of MetricsRegistry: their samples are
// real time, so exporting them through the per-sample telemetry would
// break the byte-identical-telemetry contract. Instead HotTimerPlane
// snapshots into a standard obs::MetricsSnapshot (histograms named
// `hot.<site>_ns`), which flows through the existing JSON/Prometheus
// exporters and folds across workers via MetricsSnapshot::merge. A
// disarmed plane snapshots empty, so determinism surfaces never see it.
//
// Arming: explicit (armAll / arm per site) or the SCARECROW_HOT_TIMERS=1
// environment variable, which arms every plane at construction.
#pragma once

#include <array>
#include <bit>
#include <chrono>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"

namespace scarecrow::obs {

/// The instrumented seams of the deception pipeline. Kept in sync with
/// hotSiteName/hotSiteMetricName (exhaustive switches, -Werror=switch).
enum class HotSite : std::uint8_t {
  kHookDispatch,  // full hooked-API dispatch (engine::timed wrapper)
  kDbLookup,      // one guarded ResourceDb lookup inside a hook body
  kIpcSend,       // IpcChannel::send (DLL side)
  kIpcDrain,      // IpcChannel::drain (controller side)
  kInject,        // hooking::injectDll (root + child propagation)
};

inline constexpr std::size_t kHotSiteCount =
    static_cast<std::size_t>(HotSite::kInject) + 1;

/// Exhaustive over HotSite: "hook_dispatch", "db_lookup", ...
const char* hotSiteName(HotSite site) noexcept;

/// Exported histogram identity: "hot.hook_dispatch_ns", "hot.db_lookup_ns",
/// "hot.ipc_send_ns", "hot.ipc_drain_ns", "hot.inject_ns".
const char* hotSiteMetricName(HotSite site) noexcept;

/// Wall-clock nanoseconds (steady), the hot timers' time source. This is
/// the one deliberate wall-clock reader in obs: perf samples measure the
/// host, not the simulation.
inline std::uint64_t nowNs() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Inclusive power-of-two upper bounds shared by every hot timer:
/// 0, 1, 3, 7, …, 2^33−1 ns (~8.6 s), overflow beyond. Identical bounds
/// for every site keep HistogramSample merging exact across workers.
const std::vector<std::uint64_t>& hotTimerBucketBoundsNs();

/// True when SCARECROW_HOT_TIMERS is set to a non-empty, non-"0" value
/// (read once, cached).
bool hotTimersEnvEnabled() noexcept;

/// Fixed-bucket nanosecond histogram. Bucket index is bit_width(ns):
/// 0 → bucket 0, 1 → 1, [2,3] → 2, [4,7] → 3, … — one std::bit_width and
/// one array increment per sample, no allocation ever.
class HotTimer {
 public:
  /// Bounds count; counts() has one extra overflow slot.
  static constexpr std::size_t kBoundCount = 34;

  void record(std::uint64_t ns) noexcept {
    std::size_t idx = static_cast<std::size_t>(std::bit_width(ns));
    if (idx > kBoundCount) idx = kBoundCount;
    ++counts_[idx];
    if (count_ == 0 || ns < min_) min_ = ns;
    if (ns > max_) max_ = ns;
    ++count_;
    sum_ += ns;
  }

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const noexcept { return max_; }

  void reset() noexcept {
    counts_.fill(0);
    count_ = sum_ = min_ = max_ = 0;
  }

  /// Standard exported form: bounds from hotTimerBucketBoundsNs(),
  /// percentiles computed with the registry-histogram rule (inclusive
  /// upper bound of the first bucket reaching ceil(p% · count); overflow
  /// samples report the observed max).
  HistogramSample sample(std::string name) const;

 private:
  std::array<std::uint64_t, kBoundCount + 1> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// One timer per HotSite plus the per-site armed bits. A winsys::Machine
/// owns one plane; the engine, its IPC channel, and injectDll all record
/// into it. Not thread-safe — like the metrics registry, one plane belongs
/// to one machine, and one machine belongs to one worker.
class HotTimerPlane {
 public:
  /// Disarmed unless SCARECROW_HOT_TIMERS is set in the environment.
  HotTimerPlane() {
    if (hotTimersEnvEnabled()) armAll();
  }

  HotTimerPlane(const HotTimerPlane&) = delete;
  HotTimerPlane& operator=(const HotTimerPlane&) = delete;

  /// The hot-path predicate: one array load.
  bool armed(HotSite site) const noexcept {
    return armed_[static_cast<std::size_t>(site)];
  }
  bool anyArmed() const noexcept {
    for (bool a : armed_)
      if (a) return true;
    return false;
  }

  void arm(HotSite site) noexcept {
    armed_[static_cast<std::size_t>(site)] = true;
  }
  void disarm(HotSite site) noexcept {
    armed_[static_cast<std::size_t>(site)] = false;
  }
  void armAll() noexcept { armed_.fill(true); }
  void disarmAll() noexcept { armed_.fill(false); }

  HotTimer& timer(HotSite site) noexcept {
    return timers_[static_cast<std::size_t>(site)];
  }
  const HotTimer& timer(HotSite site) const noexcept {
    return timers_[static_cast<std::size_t>(site)];
  }

  /// Zeroes every timer; arming is untouched.
  void reset() noexcept {
    for (HotTimer& t : timers_) t.reset();
  }

  /// Snapshot of every non-empty timer as `hot.<site>_ns` histograms,
  /// ordered by name (the MetricsSnapshot invariant), so the result merges
  /// with any other snapshot and renders through every obs::Exporter. A
  /// disarmed (or armed-but-idle) plane snapshots empty.
  MetricsSnapshot snapshot() const;

 private:
  std::array<HotTimer, kHotSiteCount> timers_{};
  std::array<bool, kHotSiteCount> armed_{};
};

/// RAII site timing. Disarmed cost is the null/armed check only — the
/// clock is not read. Armed cost is two nowNs() reads plus one
/// HotTimer::record.
class HotScope {
 public:
  HotScope(HotTimerPlane* plane, HotSite site) noexcept
      : timer_(plane != nullptr && plane->armed(site) ? &plane->timer(site)
                                                      : nullptr),
        startNs_(timer_ != nullptr ? nowNs() : 0) {}

  HotScope(const HotScope&) = delete;
  HotScope& operator=(const HotScope&) = delete;

  ~HotScope() {
    if (timer_ != nullptr) {
      const std::uint64_t end = nowNs();
      timer_->record(end >= startNs_ ? end - startNs_ : 0);
    }
  }

 private:
  HotTimer* timer_;
  std::uint64_t startNs_;
};

}  // namespace scarecrow::obs
