// Persistent run ledger: append-only JSONL telemetry that survives the
// process (DESIGN.md §13, schema scarecrow.ledger.v1).
//
// A MetricsSnapshot evaporates with its process; the paper's Table-scale
// sweeps (and the ROADMAP's resident corpus-evaluation service) need
// telemetry that aggregates across thousands of runs and multiple shards.
// The ledger is that durable form: one self-describing JSON object per
// line, six record kinds —
//   * "run"     one per EvalRequest/RunResult a BatchEvaluator worker
//               finished: sample id, status, verdict, first trigger,
//               correlation id, ResilienceVerdict numbers, and (when the
//               hot-timer plane is armed) per-site latency percentiles;
//   * "window"  one per closed TimeSeriesPlane window: the windowed
//               telemetry delta (timeseries.h);
//   * "worker"  one per worker at end of batch: the worker-level merged
//               MetricsSnapshot. reconstructFleetTelemetry folds these in
//               (shard, worker) order and reproduces
//               BatchEvaluator::mergedTelemetry() byte-identically;
//   * "breach"  one per SLO breach (slo.h): rule, window, observed value;
//   * "admit"   the write-ahead admission journal: one per admitted
//               EvalService submission, written before the job is queued,
//               so crash recovery can re-admit the unfinished residue;
//   * "quarantined-sample" one per sample entering the persisted
//               quarantine set (attempts exhausted across submissions).
//
// Crash safety is line-granular: every record is rendered to one buffer
// and appended with a single write + flush, so a crash can only lose or
// truncate the final line — and the reader skips any line that does not
// parse back to a whole record. Rotation is size-based: when an append
// would push the file past maxBytes, the current file shifts to
// `<path>.1` (older generations to `.2`, …, the oldest dropped) and the
// append lands in a fresh `<path>`.
//
// Record rendering is deterministic (fixed key order, integral values
// from the virtual clock), so ledgers written by identical runs are
// byte-identical modulo the append interleaving of concurrent workers —
// and single-writer ledgers are byte-identical outright (the goldens).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace scarecrow::obs {

inline constexpr const char* kLedgerSchema = "scarecrow.ledger.v1";

enum class LedgerRecordKind : std::uint8_t {
  kRun,     // one EvalRequest/RunResult
  kWindow,  // one closed time-series window
  kWorker,  // one worker's end-of-batch merged telemetry
  kBreach,  // one SLO breach
  /// Write-ahead admission journal: appended by EvalService::submit()
  /// before the job is queued, so the set of admitted-but-incomplete
  /// tickets is always reconstructible from disk. An admit with no run
  /// record of the same request_index is the crash residue recovery
  /// re-admits (DESIGN.md §16).
  kAdmit,
  /// A sample entered the persisted quarantine set after exhausting its
  /// attempts across enough submissions; recovery reloads these so a
  /// poisoned sample stays rejected across process lifetimes.
  kQuarantinedSample,
};

inline constexpr std::size_t kLedgerRecordKindCount =
    static_cast<std::size_t>(LedgerRecordKind::kQuarantinedSample) + 1;

/// Exhaustive over LedgerRecordKind: "run", "window", "worker", "breach",
/// "admit", "quarantined-sample".
const char* ledgerRecordKindName(LedgerRecordKind kind) noexcept;
std::optional<LedgerRecordKind> ledgerRecordKindFromName(
    std::string_view name) noexcept;

/// One latency percentile triple lifted out of a histogram sample —
/// the run record's compact hot-timer summary.
struct LedgerPercentiles {
  std::string name;  // "hot.hook_dispatch_ns", ...
  std::uint64_t p50 = 0;
  std::uint64_t p95 = 0;
  std::uint64_t p99 = 0;
};

/// One ledger line. Fields outside the record's kind stay default-valued
/// and are neither rendered nor parsed.
struct LedgerRecord {
  LedgerRecordKind kind = LedgerRecordKind::kRun;
  /// Shard label stamped by the writer ("shard-0", "worker-3", ...).
  std::string shard;

  // --- kRun ----------------------------------------------------------
  std::uint64_t requestIndex = 0;
  std::string sampleId;
  std::string status;        // batchStatusName: "ok" / "failed" / "timed-out"
  std::uint32_t attempts = 0;
  std::uint64_t workerIndex = 0;
  std::uint64_t correlationId = 0;  // first-trigger causal chain (0 = none)
  std::string verdict;              // "deactivated" / "not-deactivated" / ""
  std::string firstTrigger;
  std::string protection;  // protectionLevelName of the resilience verdict
  std::uint32_t faultsInjected = 0;
  std::uint32_t injectRetries = 0;
  std::uint32_t quarantinedHooks = 0;
  std::uint32_t missedDescendants = 0;
  std::uint32_t reinjectedDescendants = 0;
  std::uint64_t ipcMessagesDropped = 0;
  std::uint64_t virtualMs = 0;  // machine clock at completion
  /// Hot-timer percentiles, present only when the worker's plane was
  /// armed (wall-clock values — deliberately absent from goldens).
  std::vector<LedgerPercentiles> hotTimers;

  // --- kWindow -------------------------------------------------------
  std::uint64_t windowId = 0;
  std::uint64_t startMs = 0;
  std::uint64_t endMs = 0;

  // --- kWindow (delta) / kWorker (merged telemetry) ------------------
  MetricsSnapshot snapshot;

  // --- kBreach -------------------------------------------------------
  std::string rule;      // the rule spec that fired
  std::string observed;  // deterministic rendering of the observed value
  std::string threshold; // deterministic rendering of the bound

  // --- kAdmit (also uses requestIndex + sampleId) --------------------
  std::string tenant;  // fair-share admission key, "" = anonymous pool

  // --- kQuarantinedSample (also uses sampleId) -----------------------
  /// Exhausted submissions that earned the sample its quarantine slot.
  std::uint64_t failureCount = 0;
};

/// One line of JSON, no trailing newline. Deterministic: fixed key order,
/// only the fields of the record's kind.
std::string renderLedgerRecord(const LedgerRecord& record);

/// Inverse of renderLedgerRecord. nullopt on malformed/truncated lines or
/// on an unknown schema (a reader must never mis-parse a future format).
std::optional<LedgerRecord> parseLedgerRecord(std::string_view line);

/// Reads every parseable record of a ledger file, skipping blank, torn,
/// and foreign lines (crash tolerance). Missing file yields empty.
std::vector<LedgerRecord> readLedgerFile(const std::string& path);

/// Reads a rotated ledger set oldest-first: `<path>.N … <path>.1, <path>`
/// folded into one record stream, where N is the highest contiguous
/// rotated generation present on disk. Recovery and fleet reconstruction
/// read through this so a sweep that rotated mid-run still replays its
/// full admission history. A never-rotated ledger degrades to
/// readLedgerFile(path).
std::vector<LedgerRecord> readLedgerGenerations(const std::string& path);

/// Fleet reconstruction: merges every kWorker record in (shard,
/// workerIndex) order. For a single batch's ledger this reproduces
/// BatchEvaluator::mergedTelemetry() byte-identically; across shards it
/// is the fleet total, built from files alone.
MetricsSnapshot reconstructFleetTelemetry(
    const std::vector<LedgerRecord>& records);

/// Environment default for Config-less callers: SCARECROW_LEDGER names the
/// ledger file a BatchEvaluator streams into when BatchOptions::ledgerPath
/// is empty (unset = no ledger). Read once, cached.
const std::string& ledgerEnvPath() noexcept;

struct LedgerOptions {
  std::string path;
  /// Rotate when an append would push the file past this size; 0 = never.
  std::uint64_t maxBytes = 0;
  /// Rotated generations retained (`<path>.1` … `<path>.N`).
  std::uint32_t maxRotatedFiles = 3;
  /// Stamped into every record's "shard" field (per-record override wins).
  std::string shard;
  /// Chaos seam: consulted under the writer lock before each append; a
  /// true return fails the append as if the write itself had failed
  /// (counted by appendFailures(), no bytes land). Lets the service wire
  /// its faults::kLedgerAppend site in without obs depending on faults.
  std::function<bool()> failAppend;
};

/// Append-only JSONL writer. Thread-safe: concurrent appends interleave at
/// line granularity, never inside a line.
class LedgerWriter {
 public:
  explicit LedgerWriter(LedgerOptions options);
  ~LedgerWriter();

  LedgerWriter(const LedgerWriter&) = delete;
  LedgerWriter& operator=(const LedgerWriter&) = delete;

  /// Renders and appends one record (one write + flush). False on I/O
  /// failure — counted by appendFailures() and surfaced through one
  /// rate-limited structured log line (power-of-two backoff), so a ledger
  /// silently losing records is impossible. An empty record.shard inherits
  /// LedgerOptions::shard.
  bool append(LedgerRecord record);

  std::uint64_t recordsWritten() const noexcept { return written_; }
  std::uint64_t rotations() const noexcept { return rotations_; }
  /// Appends that returned false since construction. Readable from any
  /// thread mid-run (the service stats plane polls it).
  std::uint64_t appendFailures() const noexcept {
    return failures_.load(std::memory_order_relaxed);
  }
  const std::string& path() const noexcept { return options_.path; }

 private:
  bool rotateLocked();
  bool noteFailureLocked();

  LedgerOptions options_;
  std::mutex mutex_;
  std::FILE* file_ = nullptr;
  std::uint64_t bytes_ = 0;
  std::uint64_t written_ = 0;
  std::uint64_t rotations_ = 0;
  std::atomic<std::uint64_t> failures_{0};
};

}  // namespace scarecrow::obs
