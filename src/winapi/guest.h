// Guest program model.
//
// A GuestProgram is the behaviour of one executable image: malware samples,
// benign applications, Pafish, and the Scarecrow controller are all guest
// programs coded against the Api facade. Control-flow exits (ExitProcess,
// budget exhaustion) are modeled as exceptions so a program's run() can be
// written as straight-line code.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace scarecrow::winapi {

class Api;

/// Thrown by Api::ExitProcess; unwinds the guest's run().
struct ProcessExited {
  std::uint32_t exitCode = 0;
};

/// Thrown when the machine-time budget for the run expires (the paper gives
/// each sample one minute before reset).
struct BudgetExhausted {};

class GuestProgram {
 public:
  virtual ~GuestProgram() = default;

  /// Executes the program to completion (or until it exits / the budget
  /// expires). `api` is bound to this program's process.
  virtual void run(Api& api) = 0;
};

}  // namespace scarecrow::winapi
