// Per-process user-space state: prologue images, hook sets, injected DLLs.
//
// Real in-line hooking patches the first bytes of API entry points inside a
// process's own address space; ProcessApiState is that address space's view
// of the API code. UserSpace aggregates the states for all processes on one
// machine and carries the run-scoped execution budget (the paper runs every
// sample for one minute of machine time).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "winapi/api_ids.h"
#include "winapi/hooks.h"

namespace scarecrow::winapi {

class Api;
class GuestProgram;

/// The first 8 bytes of a function's entry. Fresh images start with the
/// hot-patchable Windows prologue; installing an in-line hook rewrites the
/// head to a JMP rel32 (paper Fig. 1).
struct Prologue {
  static constexpr std::array<std::uint8_t, 8> kIntact = {
      0x8B, 0xFF,        // mov edi, edi
      0x55,              // push ebp
      0x8B, 0xEC,        // mov ebp, esp
      0x83, 0xEC, 0x10,  // sub esp, 0x10
  };
  std::array<std::uint8_t, 8> bytes = kIntact;
  /// Bytes displaced into the trampoline when a hook is installed.
  std::array<std::uint8_t, 8> trampoline = kIntact;
  bool hooked = false;

  bool intact() const noexcept {
    return bytes[0] == 0x8B && bytes[1] == 0xFF;
  }
};

struct ProcessApiState {
  std::array<Prologue, kApiCount> prologues{};
  HookSet hooks;
  /// DLL names injected into this process (visible via GetModuleHandle on
  /// top of the winsys module list; kept here because injection is a
  /// user-space operation).
  std::vector<std::string> injectedDlls;
  /// When set, reads of hooked function prologues raise a notification the
  /// engine can observe (PAGE_GUARD + vectored-exception-handler modeling of
  /// the "Hook detection" trigger in Table I).
  bool guardPages = false;
  /// VEH handler for those notifications. When installed (by the deception
  /// engine) the guard-page read is routed through the engine's alert path
  /// — decision trace, IPC, metrics — instead of a bare trace event.
  std::function<void(Api&, ApiId)> onHookPrologueRead;
};

/// Factory invoked when a process image starts executing; returns the guest
/// program for that image or nullptr for images with no modeled behaviour
/// (payload artifacts like dropped executables).
using ProgramFactory = std::function<std::unique_ptr<GuestProgram>(
    const std::string& imagePath, const std::string& commandLine)>;

class UserSpace {
 public:
  ProcessApiState& stateFor(std::uint32_t pid) { return states_[pid]; }
  const ProcessApiState* findState(std::uint32_t pid) const noexcept {
    auto it = states_.find(pid);
    return it == states_.end() ? nullptr : &it->second;
  }

  /// Copies hook state from parent to child — the CreateProcess-propagation
  /// step of DLL injection (suspend, inject, resume).
  void propagate(std::uint32_t fromPid, std::uint32_t toPid) {
    states_[toPid] = states_[fromPid];
  }

  /// Run-scoped execution budget, in machine-clock milliseconds.
  std::uint64_t deadlineMs = UINT64_MAX;

  /// Pids whose program has been created but not yet executed.
  std::vector<std::uint32_t>& readyQueue() noexcept { return ready_; }

  ProgramFactory programFactory;

  /// Per-call clock charges (ms); calibrated so that a one-minute budget
  /// admits a few hundred spawn-loop iterations, as observed in the paper.
  std::uint64_t apiCallCostMs = 1;
  std::uint64_t processCreateCostMs = 50;

  void reset() {
    states_.clear();
    ready_.clear();
    deadlineMs = UINT64_MAX;
  }

 private:
  std::map<std::uint32_t, ProcessApiState> states_;
  std::vector<std::uint32_t> ready_;
};

}  // namespace scarecrow::winapi
