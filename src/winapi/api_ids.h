// Identity of every hookable API in the simulated user-level surface.
//
// Each ApiId owns one prologue image per process (hooking/prologue.h); the
// ids are also the keys for Scarecrow's hook installation and for the
// anti-hook checks that read function entry bytes (paper Fig. 1).
#pragma once

#include <cstdint>

namespace scarecrow::winapi {

enum class ApiId : std::uint8_t {
  // Registry (advapi32 / ntdll)
  kRegOpenKeyEx,
  kRegQueryValueEx,
  kRegQueryInfoKey,
  kRegEnumKeyEx,
  kRegEnumValue,
  kRegSetValueEx,
  kRegCreateKeyEx,
  kRegDeleteKey,
  kNtOpenKeyEx,
  kNtQueryKey,
  kNtQueryValueKey,
  // Files (kernel32 / ntdll)
  kCreateFile,
  kNtCreateFile,
  kNtQueryAttributesFile,
  kGetFileAttributes,
  kFindFirstFile,
  kWriteFile,
  kDeleteFile,
  kCopyFile,
  kGetDiskFreeSpaceEx,
  kGetDriveType,
  kGetVolumeInformation,
  kGetModuleFileName,
  // Processes / modules
  kCreateProcess,
  kOpenProcess,
  kTerminateProcess,
  kExitProcess,
  kCreateToolhelp32Snapshot,
  kGetModuleHandle,
  kLoadLibrary,
  kGetProcAddress,
  kNtQueryInformationProcess,
  kResumeThread,
  kWriteProcessMemory,
  kCreateRemoteThread,
  kShellExecuteEx,
  // Debug / timing
  kIsDebuggerPresent,
  kCheckRemoteDebuggerPresent,
  kOutputDebugString,
  kGetTickCount,
  kQueryPerformanceCounter,
  kSleep,
  kRaiseException,
  // System information
  kGetSystemInfo,
  kGlobalMemoryStatusEx,
  kGetSystemMetrics,
  kGetCursorPos,
  kGetUserName,
  kGetComputerName,
  kGetAdaptersInfo,
  kGetSystemFirmwareTable,
  kNtQuerySystemInformation,
  kIsNativeVhdBoot,
  // GUI
  kFindWindow,
  // Network
  kDnsQuery,
  kInternetOpenUrl,
  kDnsGetCacheDataTable,
  // Event log
  kEvtNext,
  // Synchronization objects
  kCreateMutex,
  kOpenMutex,

  kApiCount,  // sentinel
};

inline constexpr std::size_t kApiCount =
    static_cast<std::size_t>(ApiId::kApiCount);

const char* apiName(ApiId id) noexcept;

}  // namespace scarecrow::winapi
