// Hook slots for the user-level API surface.
//
// A HookSet is the in-process jump table that DLL injection installs: one
// optional std::function per hookable API. When a slot is set, the Api
// facade dispatches to it instead of the original implementation; the hook
// may delegate to the original through the facade's orig_* methods —
// exactly the trampoline structure of Detours/EasyHook in-line hooks.
//
// Hooks are per-process (they live in ProcessApiState), mirroring the fact
// that in-line hooks patch the process's own mapped image, not the system.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "winapi/api_types.h"
#include "winsys/registry.h"

namespace scarecrow::winapi {

class Api;

struct HookSet {
  // Registry
  std::function<WinError(Api&, const std::string& path)> regOpenKeyEx;
  std::function<WinError(Api&, const std::string& path,
                         const std::string& valueName, winsys::RegValue&)>
      regQueryValueEx;
  std::function<WinError(Api&, const std::string& path, std::uint32_t& subkeys,
                         std::uint32_t& values)>
      regQueryInfoKey;
  std::function<WinError(Api&, const std::string& path, std::uint32_t index,
                         std::string& name)>
      regEnumKeyEx;
  std::function<WinError(Api&, const std::string& path, std::uint32_t index,
                         std::string& name, winsys::RegValue&)>
      regEnumValue;
  std::function<NtStatus(Api&, const std::string& path)> ntOpenKeyEx;
  std::function<NtStatus(Api&, const std::string& path, std::uint32_t& subkeys,
                         std::uint32_t& values)>
      ntQueryKey;
  std::function<NtStatus(Api&, const std::string& path,
                         const std::string& valueName, winsys::RegValue&)>
      ntQueryValueKey;

  // Files
  std::function<WinError(Api&, const std::string& path, bool forWrite)>
      createFile;
  std::function<NtStatus(Api&, const std::string& path)> ntCreateFile;
  std::function<NtStatus(Api&, const std::string& path)> ntQueryAttributesFile;
  std::function<std::uint32_t(Api&, const std::string& path)>
      getFileAttributes;
  std::function<std::vector<std::string>(Api&, const std::string& directory,
                                         const std::string& pattern)>
      findFirstFile;
  std::function<bool(Api&, char drive, std::uint64_t& freeBytes,
                     std::uint64_t& totalBytes)>
      getDiskFreeSpaceEx;
  std::function<bool(Api&, char drive, std::string& volumeName,
                     std::uint32_t& serial)>
      getVolumeInformation;

  // Processes / modules
  std::function<std::uint32_t(Api&, const std::string& imagePath,
                              const std::string& commandLine)>
      createProcess;
  std::function<bool(Api&, std::uint32_t pid, std::uint32_t exitCode)>
      terminateProcess;
  std::function<std::vector<ProcessEntry>(Api&)> createToolhelp32Snapshot;
  std::function<bool(Api&, const std::string& moduleName)> getModuleHandle;
  std::function<bool(Api&, const std::string& moduleName,
                     const std::string& procName)>
      getProcAddress;
  std::function<std::uint64_t(Api&, std::uint32_t pid, ProcessInfoClass)>
      ntQueryInformationProcess;
  std::function<bool(Api&, const std::string& file)> shellExecuteEx;
  std::function<std::string(Api&)> getModuleFileName;

  // Debug / timing
  std::function<bool(Api&)> isDebuggerPresent;
  std::function<bool(Api&, std::uint32_t pid)> checkRemoteDebuggerPresent;
  std::function<void(Api&, const std::string& text)> outputDebugString;
  std::function<std::uint64_t(Api&)> getTickCount;
  std::function<void(Api&, std::uint32_t ms)> sleep;
  std::function<std::uint64_t(Api&, std::uint32_t code)> raiseException;

  // System information
  std::function<SystemInfoView(Api&)> getSystemInfo;
  std::function<MemoryStatusView(Api&)> globalMemoryStatusEx;
  std::function<std::string(Api&)> getUserName;
  std::function<std::string(Api&)> getComputerName;
  std::function<std::uint64_t(Api&, SystemInfoClass)>
      ntQuerySystemInformation;

  // GUI
  std::function<bool(Api&, const std::string& className,
                     const std::string& title)>
      findWindow;

  // Network
  std::function<std::optional<std::string>(Api&, const std::string& domain)>
      dnsQuery;
  std::function<HttpResult(Api&, const std::string& domain,
                           const std::string& path)>
      internetOpenUrl;
  std::function<std::vector<DnsCacheRow>(Api&)> dnsGetCacheDataTable;

  // Event log
  std::function<std::vector<EventView>(Api&, std::size_t maxCount)> evtNext;
};

}  // namespace scarecrow::winapi
