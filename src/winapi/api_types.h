// Result and view types of the simulated API surface.
//
// Status codes carry the real Windows numeric values so evasive logic that
// branches on e.g. STATUS_OBJECT_NAME_NOT_FOUND reads naturally.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace scarecrow::winapi {

/// Win32 (LSTATUS / GetLastError) codes.
enum class WinError : std::uint32_t {
  kSuccess = 0,
  kFileNotFound = 2,
  kAccessDenied = 5,
  kInvalidParameter = 87,
  kInsufficientBuffer = 122,
  kNoMoreItems = 259,
  kNotSupported = 50,
  kCallNotImplemented = 120,  // IsNativeVhdBoot on Windows 7
};

/// NTSTATUS codes.
enum class NtStatus : std::uint32_t {
  kSuccess = 0x00000000,
  kObjectNameNotFound = 0xC0000034,
  kObjectPathNotFound = 0xC000003A,
  kAccessDenied = 0xC0000022,
  kInvalidInfoClass = 0xC0000003,
};

inline bool ok(WinError e) noexcept { return e == WinError::kSuccess; }
inline bool ok(NtStatus s) noexcept { return s == NtStatus::kSuccess; }

/// Toolhelp snapshot row.
struct ProcessEntry {
  std::uint32_t pid = 0;
  std::uint32_t parentPid = 0;
  std::string imageName;
};

/// GetSystemInfo view.
struct SystemInfoView {
  std::uint32_t numberOfProcessors = 0;
  std::uint32_t processorArchitecture = 9;  // AMD64
};

/// GlobalMemoryStatusEx view.
struct MemoryStatusView {
  std::uint64_t totalPhysBytes = 0;
  std::uint64_t availPhysBytes = 0;
  std::uint32_t memoryLoadPercent = 30;
};

/// NtQueryInformationProcess information classes (subset used by evasion).
enum class ProcessInfoClass : std::uint8_t {
  kBasicInformation,   // -> parent pid
  kDebugPort,          // nonzero when debugged
  kDebugObjectHandle,  // nonzero when debugged
  kDebugFlags,         // 0 when debugged (NoDebugInherit inverted)
};

/// NtQuerySystemInformation classes (subset).
enum class SystemInfoClass : std::uint8_t {
  kBasicInformation,        // -> NumberOfProcessors
  kRegistryQuotaInformation,// -> registry size in bytes
  kProcessInformation,      // -> process list size
  kKernelDebuggerInformation,
};

/// GetSystemMetrics indices used by checks.
inline constexpr int kSmCxScreen = 0;
inline constexpr int kSmCyScreen = 1;
inline constexpr int kSmRemoteSession = 0x1000;

/// Event-log row view returned by EvtNext.
struct EventView {
  std::string source;
  std::uint32_t id = 0;
};

/// DNS cache row view.
struct DnsCacheRow {
  std::string domain;
  std::string ip;
};

/// HTTP fetch result.
struct HttpResult {
  int status = 0;  // 0 == unreachable / resolution failed
  std::string body;
};

}  // namespace scarecrow::winapi
