#include "winapi/api.h"

#include "support/strings.h"

namespace scarecrow::winapi {

using trace::EventKind;
using winsys::RegKey;
using winsys::RegValue;

Api::Api(winsys::Machine& machine, UserSpace& userspace, std::uint32_t pid)
    : machine_(machine), userspace_(userspace), pid_(pid) {}

winsys::Process& Api::self() {
  winsys::Process* p = machine_.processes().find(pid_);
  // A guest program always runs inside a live process; a missing entry is a
  // harness bug, not a recoverable condition.
  if (p == nullptr) throw std::logic_error("Api bound to unknown pid");
  return *p;
}

void Api::charge(ApiId id, const std::string& argument) {
  machine_.clock().advanceMs(userspace_.apiCallCostMs);
  if (machine_.clock().nowMs() >= userspace_.deadlineMs) throw BudgetExhausted{};
  if (machine_.recorder().captureApiCalls())
    machine_.emit(pid_, EventKind::kApiCall, apiName(id), argument);
}

// ===== Registry ===========================================================

WinError Api::RegOpenKeyEx(const std::string& path) {
  charge(ApiId::kRegOpenKeyEx, path);
  if (hooks().regOpenKeyEx) return hooks().regOpenKeyEx(*this, path);
  return orig_RegOpenKeyEx(path);
}

WinError Api::orig_RegOpenKeyEx(const std::string& path) {
  machine_.emit(pid_, EventKind::kRegOpenKey, path);
  return machine_.registry().keyExists(path) ? WinError::kSuccess
                                             : WinError::kFileNotFound;
}

WinError Api::RegQueryValueEx(const std::string& path,
                              const std::string& valueName, RegValue& out) {
  charge(ApiId::kRegQueryValueEx, path + "!" + valueName);
  if (hooks().regQueryValueEx)
    return hooks().regQueryValueEx(*this, path, valueName, out);
  return orig_RegQueryValueEx(path, valueName, out);
}

WinError Api::orig_RegQueryValueEx(const std::string& path,
                                   const std::string& valueName,
                                   RegValue& out) {
  machine_.emit(pid_, EventKind::kRegQueryValue, path, valueName);
  const RegValue* v = machine_.registry().findValue(path, valueName);
  if (v == nullptr) return WinError::kFileNotFound;
  out = *v;
  return WinError::kSuccess;
}

WinError Api::RegQueryInfoKey(const std::string& path, std::uint32_t& subkeys,
                              std::uint32_t& values) {
  charge(ApiId::kRegQueryInfoKey, path);
  if (hooks().regQueryInfoKey)
    return hooks().regQueryInfoKey(*this, path, subkeys, values);
  return orig_RegQueryInfoKey(path, subkeys, values);
}

WinError Api::orig_RegQueryInfoKey(const std::string& path,
                                   std::uint32_t& subkeys,
                                   std::uint32_t& values) {
  machine_.emit(pid_, EventKind::kRegQueryValue, path, "(info)");
  const RegKey* key = machine_.registry().findKey(path);
  if (key == nullptr) return WinError::kFileNotFound;
  subkeys = static_cast<std::uint32_t>(key->subkeyCount());
  values = static_cast<std::uint32_t>(key->valueCount());
  return WinError::kSuccess;
}

WinError Api::RegEnumKeyEx(const std::string& path, std::uint32_t index,
                           std::string& name) {
  charge(ApiId::kRegEnumKeyEx, path);
  if (hooks().regEnumKeyEx)
    return hooks().regEnumKeyEx(*this, path, index, name);
  return orig_RegEnumKeyEx(path, index, name);
}

WinError Api::orig_RegEnumKeyEx(const std::string& path, std::uint32_t index,
                                std::string& name) {
  const RegKey* key = machine_.registry().findKey(path);
  if (key == nullptr) return WinError::kFileNotFound;
  if (index >= key->subkeyCount()) return WinError::kNoMoreItems;
  name = key->subkeyNames()[index];
  return WinError::kSuccess;
}

WinError Api::RegEnumValue(const std::string& path, std::uint32_t index,
                           std::string& name, RegValue& value) {
  charge(ApiId::kRegEnumValue, path);
  if (hooks().regEnumValue)
    return hooks().regEnumValue(*this, path, index, name, value);
  return orig_RegEnumValue(path, index, name, value);
}

WinError Api::orig_RegEnumValue(const std::string& path, std::uint32_t index,
                                std::string& name, RegValue& value) {
  const RegKey* key = machine_.registry().findKey(path);
  if (key == nullptr) return WinError::kFileNotFound;
  if (index >= key->valueCount()) return WinError::kNoMoreItems;
  name = key->valueNames()[index];
  const RegValue* v = key->findValue(name);
  if (v != nullptr) value = *v;
  return WinError::kSuccess;
}

WinError Api::RegSetValueEx(const std::string& path,
                            const std::string& valueName, RegValue value) {
  charge(ApiId::kRegSetValueEx, path + "!" + valueName);
  machine_.emit(pid_, EventKind::kRegSetValue, path, valueName);
  machine_.registry().setValue(path, valueName, std::move(value));
  return WinError::kSuccess;
}

WinError Api::RegCreateKeyEx(const std::string& path) {
  charge(ApiId::kRegCreateKeyEx, path);
  machine_.emit(pid_, EventKind::kRegCreateKey, path);
  machine_.registry().ensureKey(path);
  return WinError::kSuccess;
}

WinError Api::RegDeleteKey(const std::string& path) {
  charge(ApiId::kRegDeleteKey, path);
  machine_.emit(pid_, EventKind::kRegDeleteKey, path);
  return machine_.registry().deleteKey(path) ? WinError::kSuccess
                                             : WinError::kFileNotFound;
}

NtStatus Api::NtOpenKeyEx(const std::string& path) {
  charge(ApiId::kNtOpenKeyEx, path);
  if (hooks().ntOpenKeyEx) return hooks().ntOpenKeyEx(*this, path);
  return orig_NtOpenKeyEx(path);
}

NtStatus Api::orig_NtOpenKeyEx(const std::string& path) {
  machine_.emit(pid_, EventKind::kRegOpenKey, path);
  return machine_.registry().keyExists(path) ? NtStatus::kSuccess
                                             : NtStatus::kObjectNameNotFound;
}

NtStatus Api::NtQueryKey(const std::string& path, std::uint32_t& subkeys,
                         std::uint32_t& values) {
  charge(ApiId::kNtQueryKey, path);
  if (hooks().ntQueryKey) return hooks().ntQueryKey(*this, path, subkeys, values);
  return orig_NtQueryKey(path, subkeys, values);
}

NtStatus Api::orig_NtQueryKey(const std::string& path, std::uint32_t& subkeys,
                              std::uint32_t& values) {
  const RegKey* key = machine_.registry().findKey(path);
  if (key == nullptr) return NtStatus::kObjectNameNotFound;
  subkeys = static_cast<std::uint32_t>(key->subkeyCount());
  values = static_cast<std::uint32_t>(key->valueCount());
  return NtStatus::kSuccess;
}

NtStatus Api::NtQueryValueKey(const std::string& path,
                              const std::string& valueName, RegValue& out) {
  charge(ApiId::kNtQueryValueKey, path + "!" + valueName);
  if (hooks().ntQueryValueKey)
    return hooks().ntQueryValueKey(*this, path, valueName, out);
  return orig_NtQueryValueKey(path, valueName, out);
}

NtStatus Api::orig_NtQueryValueKey(const std::string& path,
                                   const std::string& valueName,
                                   RegValue& out) {
  machine_.emit(pid_, EventKind::kRegQueryValue, path, valueName);
  const RegValue* v = machine_.registry().findValue(path, valueName);
  if (v == nullptr) return NtStatus::kObjectNameNotFound;
  out = *v;
  return NtStatus::kSuccess;
}

// ===== Files ==============================================================

WinError Api::CreateFileA(const std::string& path, bool forWrite) {
  charge(ApiId::kCreateFile, path);
  if (hooks().createFile) return hooks().createFile(*this, path, forWrite);
  return orig_CreateFileA(path, forWrite);
}

WinError Api::orig_CreateFileA(const std::string& path, bool forWrite) {
  if (forWrite) {
    machine_.emit(pid_, EventKind::kFileCreate, path);
    machine_.vfs().createFile(path, 0, machine_.clock().nowMs());
    return WinError::kSuccess;
  }
  machine_.emit(pid_, EventKind::kFileRead, path);
  return machine_.vfs().exists(path) ? WinError::kSuccess
                                     : WinError::kFileNotFound;
}

NtStatus Api::NtCreateFile(const std::string& path) {
  charge(ApiId::kNtCreateFile, path);
  if (hooks().ntCreateFile) return hooks().ntCreateFile(*this, path);
  machine_.emit(pid_, EventKind::kFileRead, path);
  return machine_.vfs().exists(path) ? NtStatus::kSuccess
                                     : NtStatus::kObjectNameNotFound;
}

NtStatus Api::NtQueryAttributesFile(const std::string& path) {
  charge(ApiId::kNtQueryAttributesFile, path);
  if (hooks().ntQueryAttributesFile)
    return hooks().ntQueryAttributesFile(*this, path);
  return orig_NtQueryAttributesFile(path);
}

NtStatus Api::orig_NtQueryAttributesFile(const std::string& path) {
  machine_.emit(pid_, EventKind::kFileRead, path);
  return machine_.vfs().exists(path) ? NtStatus::kSuccess
                                     : NtStatus::kObjectNameNotFound;
}

std::uint32_t Api::GetFileAttributesA(const std::string& path) {
  charge(ApiId::kGetFileAttributes, path);
  if (hooks().getFileAttributes) return hooks().getFileAttributes(*this, path);
  return orig_GetFileAttributesA(path);
}

std::uint32_t Api::orig_GetFileAttributesA(const std::string& path) {
  const winsys::FileNode* node = machine_.vfs().find(path);
  if (node == nullptr) return kInvalidFileAttributes;
  std::uint32_t attrs = 0;
  if (node->kind == winsys::NodeKind::kDirectory) attrs |= 0x10;  // DIRECTORY
  if (node->hidden) attrs |= 0x2;
  if (node->system) attrs |= 0x4;
  if (attrs == 0) attrs = 0x80;  // NORMAL
  return attrs;
}

std::vector<std::string> Api::FindFirstFileA(const std::string& directory,
                                             const std::string& pattern) {
  charge(ApiId::kFindFirstFile, directory + "\\" + pattern);
  if (hooks().findFirstFile)
    return hooks().findFirstFile(*this, directory, pattern);
  return orig_FindFirstFileA(directory, pattern);
}

std::vector<std::string> Api::orig_FindFirstFileA(const std::string& directory,
                                                  const std::string& pattern) {
  std::vector<std::string> names;
  for (const winsys::FileNode* node : machine_.vfs().list(directory, pattern))
    names.push_back(support::baseName(node->displayPath));
  return names;
}

WinError Api::WriteFileA(const std::string& path, const std::string& content) {
  charge(ApiId::kWriteFile, path);
  machine_.emit(pid_, EventKind::kFileWrite, path);
  machine_.vfs().writeContent(path, content, machine_.clock().nowMs());
  return WinError::kSuccess;
}

WinError Api::DeleteFileA(const std::string& path) {
  charge(ApiId::kDeleteFile, path);
  machine_.emit(pid_, EventKind::kFileDelete, path);
  return machine_.vfs().remove(path) ? WinError::kSuccess
                                     : WinError::kFileNotFound;
}

WinError Api::CopyFileA(const std::string& src, const std::string& dst) {
  charge(ApiId::kCopyFile, src + " -> " + dst);
  const winsys::FileNode* node = machine_.vfs().find(src);
  if (node == nullptr) return WinError::kFileNotFound;
  machine_.emit(pid_, EventKind::kFileCreate, dst);
  winsys::FileNode& copy = machine_.vfs().createFile(dst, node->sizeBytes,
                                                     machine_.clock().nowMs());
  copy.content = node->content;
  return WinError::kSuccess;
}

bool Api::GetDiskFreeSpaceExA(char drive, std::uint64_t& freeBytes,
                              std::uint64_t& totalBytes) {
  charge(ApiId::kGetDiskFreeSpaceEx, std::string(1, drive) + ":");
  if (hooks().getDiskFreeSpaceEx)
    return hooks().getDiskFreeSpaceEx(*this, drive, freeBytes, totalBytes);
  return orig_GetDiskFreeSpaceExA(drive, freeBytes, totalBytes);
}

bool Api::orig_GetDiskFreeSpaceExA(char drive, std::uint64_t& freeBytes,
                                   std::uint64_t& totalBytes) {
  const winsys::DriveInfo* info = machine_.vfs().findDrive(drive);
  if (info == nullptr) return false;
  freeBytes = info->freeBytes;
  totalBytes = info->totalBytes;
  return true;
}

std::uint32_t Api::GetDriveTypeA(char drive) {
  charge(ApiId::kGetDriveType, std::string(1, drive) + ":");
  return machine_.vfs().findDrive(drive) != nullptr ? 3u /*DRIVE_FIXED*/ : 1u;
}

bool Api::GetVolumeInformationA(char drive, std::string& volumeName,
                                std::uint32_t& serial) {
  charge(ApiId::kGetVolumeInformation, std::string(1, drive) + ":");
  if (hooks().getVolumeInformation)
    return hooks().getVolumeInformation(*this, drive, volumeName, serial);
  return orig_GetVolumeInformationA(drive, volumeName, serial);
}

bool Api::orig_GetVolumeInformationA(char drive, std::string& volumeName,
                                     std::uint32_t& serial) {
  const winsys::DriveInfo* info = machine_.vfs().findDrive(drive);
  if (info == nullptr) return false;
  volumeName = info->volumeName;
  serial = info->serialNumber;
  return true;
}

std::string Api::GetModuleFileNameA() {
  charge(ApiId::kGetModuleFileName);
  if (hooks().getModuleFileName) return hooks().getModuleFileName(*this);
  return orig_GetModuleFileNameA();
}

std::string Api::orig_GetModuleFileNameA() { return self().imagePath; }

// ===== Processes / modules ===============================================

std::uint32_t Api::CreateProcessA(const std::string& imagePath,
                                  const std::string& commandLine) {
  charge(ApiId::kCreateProcess, imagePath);
  if (hooks().createProcess)
    return hooks().createProcess(*this, imagePath, commandLine);
  return orig_CreateProcessA(imagePath, commandLine);
}

std::uint32_t Api::orig_CreateProcessA(const std::string& imagePath,
                                       const std::string& commandLine) {
  machine_.clock().advanceMs(userspace_.processCreateCostMs);
  winsys::Process& child = machine_.processes().create(
      imagePath, pid_, commandLine, machine_.sysinfo().processorCount);
  machine_.emit(pid_, EventKind::kProcessCreate, child.imagePath, commandLine);
  userspace_.readyQueue().push_back(child.pid);
  return child.pid;
}

bool Api::OpenProcess(std::uint32_t pid) {
  charge(ApiId::kOpenProcess);
  const winsys::Process* p = machine_.processes().find(pid);
  return p != nullptr && p->state != winsys::ProcessState::kTerminated;
}

bool Api::TerminateProcess(std::uint32_t pid, std::uint32_t exitCode) {
  charge(ApiId::kTerminateProcess);
  if (hooks().terminateProcess)
    return hooks().terminateProcess(*this, pid, exitCode);
  return orig_TerminateProcess(pid, exitCode);
}

bool Api::orig_TerminateProcess(std::uint32_t pid, std::uint32_t exitCode) {
  const winsys::Process* p = machine_.processes().find(pid);
  if (p == nullptr) return false;
  const std::string image = p->imagePath;
  if (!machine_.processes().terminate(pid, exitCode)) return false;
  machine_.emit(pid_, EventKind::kProcessExit, image, "terminated");
  machine_.windows().removeByOwner(pid);
  return true;
}

void Api::ExitProcess(std::uint32_t exitCode) {
  // ExitProcess always succeeds even past the deadline; do not charge.
  machine_.emit(pid_, EventKind::kProcessExit, self().imagePath, "exit");
  machine_.processes().terminate(pid_, exitCode);
  machine_.windows().removeByOwner(pid_);
  throw ProcessExited{exitCode};
}

std::vector<ProcessEntry> Api::CreateToolhelp32Snapshot() {
  charge(ApiId::kCreateToolhelp32Snapshot);
  if (hooks().createToolhelp32Snapshot)
    return hooks().createToolhelp32Snapshot(*this);
  return orig_CreateToolhelp32Snapshot();
}

std::vector<ProcessEntry> Api::orig_CreateToolhelp32Snapshot() {
  std::vector<ProcessEntry> out;
  for (const winsys::Process* p : machine_.processes().running())
    out.push_back({p->pid, p->parentPid, p->imageName});
  return out;
}

bool Api::GetModuleHandleA(const std::string& moduleName) {
  charge(ApiId::kGetModuleHandle, moduleName);
  if (hooks().getModuleHandle) return hooks().getModuleHandle(*this, moduleName);
  return orig_GetModuleHandleA(moduleName);
}

bool Api::orig_GetModuleHandleA(const std::string& moduleName) {
  return self().hasModule(moduleName);
}

bool Api::LoadLibraryA(const std::string& moduleName) {
  charge(ApiId::kLoadLibrary, moduleName);
  // Library load succeeds when the DLL exists on disk (System32 search
  // path) or is already mapped.
  winsys::Process& p = self();
  if (p.hasModule(moduleName)) return true;
  const std::string sysPath = "C:\\Windows\\System32\\" + moduleName;
  if (!machine_.vfs().exists(sysPath) && !machine_.vfs().exists(moduleName))
    return false;
  p.modules.push_back({moduleName, sysPath});
  machine_.emit(pid_, EventKind::kDllLoad, moduleName);
  return true;
}

bool Api::GetProcAddress(const std::string& moduleName,
                         const std::string& procName) {
  charge(ApiId::kGetProcAddress, moduleName + "!" + procName);
  if (hooks().getProcAddress)
    return hooks().getProcAddress(*this, moduleName, procName);
  return orig_GetProcAddress(moduleName, procName);
}

bool Api::orig_GetProcAddress(const std::string& moduleName,
                              const std::string& procName) {
  if (!self().hasModule(moduleName)) return false;
  // Wine exports extra functions from kernel32; everything else resolves
  // the standard export surface.
  if (support::istartsWith(procName, "wine_"))
    return machine_.sysinfo().wineLayer;
  return true;
}

std::uint64_t Api::NtQueryInformationProcess(std::uint32_t pid,
                                             ProcessInfoClass infoClass) {
  charge(ApiId::kNtQueryInformationProcess);
  if (hooks().ntQueryInformationProcess)
    return hooks().ntQueryInformationProcess(*this, pid, infoClass);
  return orig_NtQueryInformationProcess(pid, infoClass);
}

std::uint64_t Api::orig_NtQueryInformationProcess(std::uint32_t pid,
                                                  ProcessInfoClass infoClass) {
  const winsys::Process* p = machine_.processes().find(pid);
  if (p == nullptr) return 0;
  switch (infoClass) {
    case ProcessInfoClass::kBasicInformation: return p->parentPid;
    case ProcessInfoClass::kDebugPort: return p->peb.beingDebugged ? 1 : 0;
    case ProcessInfoClass::kDebugObjectHandle:
      return p->peb.beingDebugged ? 1 : 0;
    case ProcessInfoClass::kDebugFlags: return p->peb.beingDebugged ? 0 : 1;
  }
  return 0;
}

bool Api::ShellExecuteExA(const std::string& file) {
  charge(ApiId::kShellExecuteEx, file);
  if (hooks().shellExecuteEx) return hooks().shellExecuteEx(*this, file);
  return orig_ShellExecuteExA(file);
}

bool Api::orig_ShellExecuteExA(const std::string& file) {
  return orig_CreateProcessA(file, file) != 0;
}

// ===== Debug / timing =====================================================

bool Api::IsDebuggerPresent() {
  charge(ApiId::kIsDebuggerPresent);
  if (hooks().isDebuggerPresent) return hooks().isDebuggerPresent(*this);
  return orig_IsDebuggerPresent();
}

bool Api::orig_IsDebuggerPresent() { return self().peb.beingDebugged; }

bool Api::CheckRemoteDebuggerPresent(std::uint32_t pid) {
  charge(ApiId::kCheckRemoteDebuggerPresent);
  if (hooks().checkRemoteDebuggerPresent)
    return hooks().checkRemoteDebuggerPresent(*this, pid);
  return orig_CheckRemoteDebuggerPresent(pid);
}

bool Api::orig_CheckRemoteDebuggerPresent(std::uint32_t pid) {
  const winsys::Process* p = machine_.processes().find(pid);
  return p != nullptr && p->peb.beingDebugged;
}

void Api::OutputDebugStringA(const std::string& text) {
  charge(ApiId::kOutputDebugString, text);
  if (hooks().outputDebugString) hooks().outputDebugString(*this, text);
}

std::uint64_t Api::GetTickCount() {
  charge(ApiId::kGetTickCount);
  if (hooks().getTickCount) return hooks().getTickCount(*this);
  return orig_GetTickCount();
}

std::uint64_t Api::orig_GetTickCount() { return machine_.tickCount(); }

std::uint64_t Api::QueryPerformanceCounter() {
  charge(ApiId::kQueryPerformanceCounter);
  // 10 MHz QPC frequency.
  return machine_.clock().nowMs() * 10'000;
}

void Api::Sleep(std::uint32_t ms) {
  charge(ApiId::kSleep);
  if (hooks().sleep) {
    hooks().sleep(*this, ms);
    return;
  }
  orig_Sleep(ms);
}

void Api::orig_Sleep(std::uint32_t ms) {
  machine_.clock().advanceMs(ms);
  if (machine_.clock().nowMs() >= userspace_.deadlineMs) throw BudgetExhausted{};
}

std::uint64_t Api::RaiseException(std::uint32_t code) {
  charge(ApiId::kRaiseException);
  if (hooks().raiseException) return hooks().raiseException(*this, code);
  return orig_RaiseException(code);
}

std::uint64_t Api::orig_RaiseException(std::uint32_t /*code*/) {
  // Default SEH dispatch latency. A debugger first-chance round trip or an
  // analysis shadow-page fault inflates it by an order of magnitude.
  std::uint64_t cycles = 2'000;
  if (self().peb.beingDebugged) cycles += 120'000;
  cycles += machine_.sysinfo().exceptionExtraCycles;
  machine_.clock().addTscCycles(cycles);
  return cycles;
}

// ===== System information =================================================

SystemInfoView Api::GetSystemInfo() {
  charge(ApiId::kGetSystemInfo);
  if (hooks().getSystemInfo) return hooks().getSystemInfo(*this);
  return orig_GetSystemInfo();
}

SystemInfoView Api::orig_GetSystemInfo() {
  SystemInfoView view;
  view.numberOfProcessors = machine_.sysinfo().processorCount;
  return view;
}

MemoryStatusView Api::GlobalMemoryStatusEx() {
  charge(ApiId::kGlobalMemoryStatusEx);
  if (hooks().globalMemoryStatusEx) return hooks().globalMemoryStatusEx(*this);
  return orig_GlobalMemoryStatusEx();
}

MemoryStatusView Api::orig_GlobalMemoryStatusEx() {
  MemoryStatusView view;
  view.totalPhysBytes = machine_.sysinfo().totalPhysicalMemory;
  view.availPhysBytes = view.totalPhysBytes * 6 / 10;
  return view;
}

int Api::GetSystemMetrics(int index) {
  charge(ApiId::kGetSystemMetrics);
  const winsys::SysInfo& si = machine_.sysinfo();
  switch (index) {
    case kSmCxScreen: return si.screenWidth;
    case kSmCyScreen: return si.screenHeight;
    case kSmRemoteSession: return 0;
    default: return 0;
  }
}

bool Api::GetCursorPos(int& x, int& y) {
  charge(ApiId::kGetCursorPos);
  const winsys::SysInfo& si = machine_.sysinfo();
  if (si.mouseActive) {
    const std::uint64_t t = machine_.clock().nowMs();
    x = static_cast<int>((t / 7) % static_cast<std::uint64_t>(si.screenWidth));
    y = static_cast<int>((t / 11) %
                         static_cast<std::uint64_t>(si.screenHeight));
  } else {
    x = 0;
    y = 0;
  }
  const bool moved = (x != lastCursorX_ || y != lastCursorY_) &&
                     lastCursorX_ >= 0;
  lastCursorX_ = x;
  lastCursorY_ = y;
  return moved;
}

std::string Api::GetUserNameA() {
  charge(ApiId::kGetUserName);
  if (hooks().getUserName) return hooks().getUserName(*this);
  return orig_GetUserNameA();
}

std::string Api::orig_GetUserNameA() { return machine_.sysinfo().userName; }

std::string Api::GetComputerNameA() {
  charge(ApiId::kGetComputerName);
  if (hooks().getComputerName) return hooks().getComputerName(*this);
  return orig_GetComputerNameA();
}

std::string Api::orig_GetComputerNameA() {
  return machine_.sysinfo().computerName;
}

std::vector<winsys::AdapterInfo> Api::GetAdaptersInfo() {
  charge(ApiId::kGetAdaptersInfo);
  // Deliberately not hookable by the deception engine: adapter enumeration
  // goes through NDIS structures Scarecrow's 29 user-level hooks do not
  // cover (one of the documented VM-artifact misses in Table II).
  return machine_.sysinfo().adapters;
}

std::string Api::GetSystemFirmwareTable() {
  charge(ApiId::kGetSystemFirmwareTable);
  // Firmware tables are read via a raw kernel service; same blind spot.
  return machine_.sysinfo().acpiOemId;
}

std::uint64_t Api::NtQuerySystemInformation(SystemInfoClass infoClass) {
  charge(ApiId::kNtQuerySystemInformation);
  if (hooks().ntQuerySystemInformation)
    return hooks().ntQuerySystemInformation(*this, infoClass);
  return orig_NtQuerySystemInformation(infoClass);
}

std::uint64_t Api::orig_NtQuerySystemInformation(SystemInfoClass infoClass) {
  switch (infoClass) {
    case SystemInfoClass::kBasicInformation:
      return machine_.sysinfo().processorCount;
    case SystemInfoClass::kRegistryQuotaInformation:
      return machine_.registry().totalBytes();
    case SystemInfoClass::kProcessInformation:
      return machine_.processes().runningCount();
    case SystemInfoClass::kKernelDebuggerInformation:
      return machine_.sysinfo().kernelDebuggerEnabled ? 1 : 0;
  }
  return 0;
}

WinError Api::IsNativeVhdBoot(bool& isVhd) {
  charge(ApiId::kIsNativeVhdBoot);
  const winsys::SysInfo& si = machine_.sysinfo();
  if (si.windowsMajorVersion < 6 ||
      (si.windowsMajorVersion == 6 && si.windowsMinorVersion < 2))
    return WinError::kCallNotImplemented;  // Windows 7: API absent
  isVhd = false;
  return WinError::kSuccess;
}

// ===== GUI ================================================================

bool Api::FindWindowA(const std::string& className, const std::string& title) {
  charge(ApiId::kFindWindow, className.empty() ? title : className);
  if (hooks().findWindow) return hooks().findWindow(*this, className, title);
  return orig_FindWindowA(className, title);
}

bool Api::orig_FindWindowA(const std::string& className,
                           const std::string& title) {
  return machine_.windows().find(className, title) != nullptr;
}

// ===== Network ============================================================

std::optional<std::string> Api::DnsQuery(const std::string& domain) {
  charge(ApiId::kDnsQuery, domain);
  if (hooks().dnsQuery) return hooks().dnsQuery(*this, domain);
  return orig_DnsQuery(domain);
}

std::optional<std::string> Api::orig_DnsQuery(const std::string& domain) {
  auto ip = machine_.network().resolve(domain, machine_.clock().nowMs());
  machine_.emit(pid_, EventKind::kDnsQuery, domain,
                ip.has_value() ? *ip : "NXDOMAIN");
  return ip;
}

HttpResult Api::InternetOpenUrlA(const std::string& domain,
                                 const std::string& path) {
  charge(ApiId::kInternetOpenUrl, domain + path);
  if (hooks().internetOpenUrl)
    return hooks().internetOpenUrl(*this, domain, path);
  return orig_InternetOpenUrlA(domain, path);
}

HttpResult Api::orig_InternetOpenUrlA(const std::string& domain,
                                      const std::string& path) {
  auto ip = machine_.network().resolve(domain, machine_.clock().nowMs());
  machine_.emit(pid_, EventKind::kDnsQuery, domain,
                ip.has_value() ? *ip : "NXDOMAIN");
  if (!ip.has_value()) return HttpResult{};
  const winsys::HttpResponse resp = machine_.network().httpGet(domain);
  machine_.emit(pid_, EventKind::kHttpRequest, domain + path,
                std::to_string(resp.status));
  return HttpResult{resp.status, resp.body};
}

std::vector<DnsCacheRow> Api::DnsGetCacheDataTable() {
  charge(ApiId::kDnsGetCacheDataTable);
  if (hooks().dnsGetCacheDataTable) return hooks().dnsGetCacheDataTable(*this);
  return orig_DnsGetCacheDataTable();
}

std::vector<DnsCacheRow> Api::orig_DnsGetCacheDataTable() {
  std::vector<DnsCacheRow> out;
  for (const winsys::DnsCacheEntry& e : machine_.network().dnsCache())
    out.push_back({e.domain, e.ip});
  return out;
}

// ===== Event log ==========================================================

std::vector<EventView> Api::EvtNext(std::size_t maxCount) {
  charge(ApiId::kEvtNext);
  if (hooks().evtNext) return hooks().evtNext(*this, maxCount);
  return orig_EvtNext(maxCount);
}

std::vector<EventView> Api::orig_EvtNext(std::size_t maxCount) {
  std::vector<EventView> out;
  for (const winsys::LogEvent* e : machine_.eventlog().recent(maxCount))
    out.push_back({e->source, e->id});
  return out;
}

// ===== Synchronization objects ============================================

bool Api::CreateMutexA(const std::string& name) {
  charge(ApiId::kCreateMutex, name);
  return machine_.mutexes().create(name);
}

bool Api::OpenMutexA(const std::string& name) {
  charge(ApiId::kOpenMutex, name);
  return machine_.mutexes().exists(name);
}

// ===== Pseudo-instructions ===============================================

winsys::CpuidResult Api::cpuid(std::uint32_t leaf) {
  const winsys::CpuidTrapDeception& trap = self().cpuidTrap;
  if (!trap.active) return machine_.sysinfo().cpuid(leaf, machine_.clock());

  // Hypervisor-extension deception: clone the machine's CPU identity but
  // present a hypervisor, and burn vmexit-scale cycles so the
  // rdtsc_diff_vmexit side channel agrees.
  winsys::SysInfo deceived = machine_.sysinfo();
  deceived.hypervisorPresent = true;
  deceived.hypervisorVendor = trap.vendor;
  deceived.cpuidTrapCycles = machine_.sysinfo().cpuidTrapCycles +
                             trap.extraCycles;
  return deceived.cpuid(leaf, machine_.clock());
}

std::uint64_t Api::rdtsc() { return machine_.sysinfo().rdtsc(machine_.clock()); }

const winsys::Peb& Api::readPeb() { return self().peb; }

std::array<std::uint8_t, 8> Api::readFunctionBytes(ApiId id) {
  ProcessApiState& s = state();
  const Prologue& p = s.prologues[static_cast<std::size_t>(id)];
  // Guard-page modeling: when the injected engine protects its patched
  // pages, a read of a hooked prologue raises a VEH notification that the
  // engine surfaces as a "Hook detection" fingerprint alert (Table I,
  // sample 0af4ef5).
  if (s.guardPages && p.hooked) {
    if (s.onHookPrologueRead)
      s.onHookPrologueRead(*this, id);
    else
      machine_.emit(pid_, trace::EventKind::kAlert, "fingerprint",
                    "Hook detection");
  }
  return p.bytes;
}

}  // namespace scarecrow::winapi
