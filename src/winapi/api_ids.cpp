#include "winapi/api_ids.h"

namespace scarecrow::winapi {

const char* apiName(ApiId id) noexcept {
  switch (id) {
    case ApiId::kRegOpenKeyEx: return "RegOpenKeyEx";
    case ApiId::kRegQueryValueEx: return "RegQueryValueEx";
    case ApiId::kRegQueryInfoKey: return "RegQueryInfoKey";
    case ApiId::kRegEnumKeyEx: return "RegEnumKeyEx";
    case ApiId::kRegEnumValue: return "RegEnumValue";
    case ApiId::kRegSetValueEx: return "RegSetValueEx";
    case ApiId::kRegCreateKeyEx: return "RegCreateKeyEx";
    case ApiId::kRegDeleteKey: return "RegDeleteKey";
    case ApiId::kNtOpenKeyEx: return "NtOpenKeyEx";
    case ApiId::kNtQueryKey: return "NtQueryKey";
    case ApiId::kNtQueryValueKey: return "NtQueryValueKey";
    case ApiId::kCreateFile: return "CreateFile";
    case ApiId::kNtCreateFile: return "NtCreateFile";
    case ApiId::kNtQueryAttributesFile: return "NtQueryAttributesFile";
    case ApiId::kGetFileAttributes: return "GetFileAttributes";
    case ApiId::kFindFirstFile: return "FindFirstFile";
    case ApiId::kWriteFile: return "WriteFile";
    case ApiId::kDeleteFile: return "DeleteFile";
    case ApiId::kCopyFile: return "CopyFile";
    case ApiId::kGetDiskFreeSpaceEx: return "GetDiskFreeSpaceEx";
    case ApiId::kGetDriveType: return "GetDriveType";
    case ApiId::kGetVolumeInformation: return "GetVolumeInformation";
    case ApiId::kGetModuleFileName: return "GetModuleFileName";
    case ApiId::kCreateProcess: return "CreateProcess";
    case ApiId::kOpenProcess: return "OpenProcess";
    case ApiId::kTerminateProcess: return "TerminateProcess";
    case ApiId::kExitProcess: return "ExitProcess";
    case ApiId::kCreateToolhelp32Snapshot: return "CreateToolhelp32Snapshot";
    case ApiId::kGetModuleHandle: return "GetModuleHandle";
    case ApiId::kLoadLibrary: return "LoadLibrary";
    case ApiId::kGetProcAddress: return "GetProcAddress";
    case ApiId::kNtQueryInformationProcess:
      return "NtQueryInformationProcess";
    case ApiId::kResumeThread: return "ResumeThread";
    case ApiId::kWriteProcessMemory: return "WriteProcessMemory";
    case ApiId::kCreateRemoteThread: return "CreateRemoteThread";
    case ApiId::kShellExecuteEx: return "ShellExecuteEx";
    case ApiId::kIsDebuggerPresent: return "IsDebuggerPresent";
    case ApiId::kCheckRemoteDebuggerPresent:
      return "CheckRemoteDebuggerPresent";
    case ApiId::kOutputDebugString: return "OutputDebugString";
    case ApiId::kGetTickCount: return "GetTickCount";
    case ApiId::kQueryPerformanceCounter: return "QueryPerformanceCounter";
    case ApiId::kSleep: return "Sleep";
    case ApiId::kRaiseException: return "RaiseException";
    case ApiId::kGetSystemInfo: return "GetSystemInfo";
    case ApiId::kGlobalMemoryStatusEx: return "GlobalMemoryStatusEx";
    case ApiId::kGetSystemMetrics: return "GetSystemMetrics";
    case ApiId::kGetCursorPos: return "GetCursorPos";
    case ApiId::kGetUserName: return "GetUserName";
    case ApiId::kGetComputerName: return "GetComputerName";
    case ApiId::kGetAdaptersInfo: return "GetAdaptersInfo";
    case ApiId::kGetSystemFirmwareTable: return "GetSystemFirmwareTable";
    case ApiId::kNtQuerySystemInformation:
      return "NtQuerySystemInformation";
    case ApiId::kIsNativeVhdBoot: return "IsNativeVhdBoot";
    case ApiId::kFindWindow: return "FindWindow";
    case ApiId::kDnsQuery: return "DnsQuery";
    case ApiId::kInternetOpenUrl: return "InternetOpenUrl";
    case ApiId::kDnsGetCacheDataTable: return "DnsGetCacheDataTable";
    case ApiId::kEvtNext: return "EvtNext";
    case ApiId::kCreateMutex: return "CreateMutex";
    case ApiId::kOpenMutex: return "OpenMutex";
    case ApiId::kApiCount: break;
  }
  return "?";
}

}  // namespace scarecrow::winapi
