// Runner: executes guest programs on a machine for a bounded interval.
//
// Models the paper's per-sample execution protocol (Figure 3): the agent
// starts the sample, lets it and every descendant run for one minute of
// machine time, then the machine is reset. Processes execute one at a time
// (run-to-completion); CreateProcess enqueues children, so self-spawn
// chains unroll exactly like the 474-spawn Symmi sample in Section IV-C.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "winapi/api.h"
#include "winapi/guest.h"
#include "winapi/userspace.h"
#include "winsys/machine.h"

namespace scarecrow::winapi {

struct RunOptions {
  std::uint64_t budgetMs = 60'000;
  /// Parent pid for the root process; 0 means "launched from explorer.exe"
  /// (the runner creates/uses an explorer process).
  std::uint32_t parentPid = 0;
  std::string commandLine;
  bool captureApiCalls = false;
};

struct RunResult {
  std::uint32_t rootPid = 0;
  std::uint64_t elapsedMs = 0;
  std::size_t processesExecuted = 0;
  bool budgetExhausted = false;
  /// Guests that died on an unhandled exception (contained per process;
  /// the run itself continues, like a real sandbox agent).
  std::size_t guestCrashes = 0;
};

class Runner {
 public:
  Runner(winsys::Machine& machine, UserSpace& userspace)
      : machine_(machine), userspace_(userspace) {}

  /// Ensures an explorer.exe shell process exists and returns its pid
  /// (double-clicked programs have explorer as parent).
  std::uint32_t ensureExplorer();

  /// Creates the root process (without running it) — used by launchers
  /// like the Scarecrow controller that need to inject before execution.
  std::uint32_t spawnRoot(const std::string& imagePath,
                          const RunOptions& options);

  /// Runs the ready queue until empty or until the budget expires.
  RunResult drain(const RunOptions& options);

  /// Convenience: spawnRoot + drain.
  RunResult run(const std::string& imagePath, const RunOptions& options);

 private:
  winsys::Machine& machine_;
  UserSpace& userspace_;
};

}  // namespace scarecrow::winapi
