// Api: the user-level Windows API facade bound to one process.
//
// Every observable action of a guest program flows through here. Each
// public method:
//   1. charges the virtual clock (and enforces the run budget),
//   2. dispatches to an installed in-line hook if one exists,
//   3. otherwise executes the original semantics against the machine,
//      emitting the kernel trace events Fibratus would see.
//
// The orig_* methods are the trampolines: hooks call them to reach the
// unhooked behaviour. Pseudo-instruction channels (cpuid/rdtsc/PEB reads/
// prologue reads) bypass the hook dispatch entirely — they are the paper's
// documented deception blind spots.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "winapi/api_types.h"
#include "winapi/guest.h"
#include "winapi/userspace.h"
#include "winsys/machine.h"

namespace scarecrow::winapi {

class Api {
 public:
  Api(winsys::Machine& machine, UserSpace& userspace, std::uint32_t pid);

  winsys::Machine& machine() noexcept { return machine_; }
  UserSpace& userspace() noexcept { return userspace_; }
  std::uint32_t pid() const noexcept { return pid_; }
  winsys::Process& self();
  ProcessApiState& state() { return userspace_.stateFor(pid_); }

  // ===== Registry =========================================================
  WinError RegOpenKeyEx(const std::string& path);
  WinError RegQueryValueEx(const std::string& path,
                           const std::string& valueName,
                           winsys::RegValue& out);
  WinError RegQueryInfoKey(const std::string& path, std::uint32_t& subkeys,
                           std::uint32_t& values);
  WinError RegEnumKeyEx(const std::string& path, std::uint32_t index,
                        std::string& name);
  WinError RegEnumValue(const std::string& path, std::uint32_t index,
                        std::string& name, winsys::RegValue& value);
  WinError RegSetValueEx(const std::string& path, const std::string& valueName,
                         winsys::RegValue value);
  WinError RegCreateKeyEx(const std::string& path);
  WinError RegDeleteKey(const std::string& path);
  NtStatus NtOpenKeyEx(const std::string& path);
  NtStatus NtQueryKey(const std::string& path, std::uint32_t& subkeys,
                      std::uint32_t& values);
  NtStatus NtQueryValueKey(const std::string& path,
                           const std::string& valueName,
                           winsys::RegValue& out);

  // ===== Files ============================================================
  WinError CreateFileA(const std::string& path, bool forWrite);
  NtStatus NtCreateFile(const std::string& path);
  NtStatus NtQueryAttributesFile(const std::string& path);
  static constexpr std::uint32_t kInvalidFileAttributes = 0xFFFFFFFF;
  std::uint32_t GetFileAttributesA(const std::string& path);
  std::vector<std::string> FindFirstFileA(const std::string& directory,
                                          const std::string& pattern);
  WinError WriteFileA(const std::string& path, const std::string& content);
  WinError DeleteFileA(const std::string& path);
  WinError CopyFileA(const std::string& src, const std::string& dst);
  bool GetDiskFreeSpaceExA(char drive, std::uint64_t& freeBytes,
                           std::uint64_t& totalBytes);
  std::uint32_t GetDriveTypeA(char drive);
  bool GetVolumeInformationA(char drive, std::string& volumeName,
                             std::uint32_t& serial);
  std::string GetModuleFileNameA();  // own image path
  std::string orig_GetModuleFileNameA();

  // ===== Processes / modules =============================================
  /// Returns the new pid, or 0 on failure. The child is queued for
  /// execution by the runner.
  std::uint32_t CreateProcessA(const std::string& imagePath,
                               const std::string& commandLine);
  bool OpenProcess(std::uint32_t pid);
  bool TerminateProcess(std::uint32_t pid, std::uint32_t exitCode);
  [[noreturn]] void ExitProcess(std::uint32_t exitCode);
  std::vector<ProcessEntry> CreateToolhelp32Snapshot();
  bool GetModuleHandleA(const std::string& moduleName);
  bool LoadLibraryA(const std::string& moduleName);
  bool GetProcAddress(const std::string& moduleName,
                      const std::string& procName);
  std::uint64_t NtQueryInformationProcess(std::uint32_t pid,
                                          ProcessInfoClass infoClass);
  bool ShellExecuteExA(const std::string& file);

  // ===== Debug / timing ===================================================
  bool IsDebuggerPresent();
  bool CheckRemoteDebuggerPresent(std::uint32_t pid);
  void OutputDebugStringA(const std::string& text);
  std::uint64_t GetTickCount();
  std::uint64_t QueryPerformanceCounter();
  void Sleep(std::uint32_t ms);
  /// Raises and handles an exception; returns handling latency in TSC
  /// cycles (debuggers and analysis hooks inflate it).
  std::uint64_t RaiseException(std::uint32_t code);

  // ===== System information ==============================================
  SystemInfoView GetSystemInfo();
  MemoryStatusView GlobalMemoryStatusEx();
  int GetSystemMetrics(int index);
  /// Returns false if the cursor has not moved since the last call (mouse
  /// idle), true if it moved. Matches how checks sample GetCursorPos twice.
  bool GetCursorPos(int& x, int& y);
  std::string GetUserNameA();
  std::string GetComputerNameA();
  std::vector<winsys::AdapterInfo> GetAdaptersInfo();
  std::string GetSystemFirmwareTable();  // ACPI OEM id; never hooked
  std::uint64_t NtQuerySystemInformation(SystemInfoClass infoClass);
  /// Windows 8+ API; on the simulated Windows 7 it fails with
  /// ERROR_CALL_NOT_IMPLEMENTED (out param untouched).
  WinError IsNativeVhdBoot(bool& isVhd);

  // ===== GUI ==============================================================
  bool FindWindowA(const std::string& className, const std::string& title);

  // ===== Network ==========================================================
  std::optional<std::string> DnsQuery(const std::string& domain);
  HttpResult InternetOpenUrlA(const std::string& domain,
                              const std::string& path = "/");
  std::vector<DnsCacheRow> DnsGetCacheDataTable();

  // ===== Event log ========================================================
  std::vector<EventView> EvtNext(std::size_t maxCount);

  // ===== Synchronization objects ==========================================
  /// Creates a named mutex; returns true when it ALREADY existed (the
  /// ERROR_ALREADY_EXISTS signal single-instance malware checks).
  bool CreateMutexA(const std::string& name);
  /// True if the named mutex exists (infection-marker probing).
  bool OpenMutexA(const std::string& name);

  // ===== Pseudo-instructions (not hookable) ===============================
  winsys::CpuidResult cpuid(std::uint32_t leaf);
  std::uint64_t rdtsc();
  const winsys::Peb& readPeb();
  /// Reads the entry bytes of an API function in this process's image —
  /// the anti-hook detection channel of paper Fig. 1.
  std::array<std::uint8_t, 8> readFunctionBytes(ApiId id);

  // ===== Originals (trampolines for hooks) ================================
  WinError orig_RegOpenKeyEx(const std::string& path);
  WinError orig_RegQueryValueEx(const std::string& path,
                                const std::string& valueName,
                                winsys::RegValue& out);
  WinError orig_RegQueryInfoKey(const std::string& path,
                                std::uint32_t& subkeys, std::uint32_t& values);
  WinError orig_RegEnumKeyEx(const std::string& path, std::uint32_t index,
                             std::string& name);
  WinError orig_RegEnumValue(const std::string& path, std::uint32_t index,
                             std::string& name, winsys::RegValue& value);
  NtStatus orig_NtOpenKeyEx(const std::string& path);
  NtStatus orig_NtQueryKey(const std::string& path, std::uint32_t& subkeys,
                           std::uint32_t& values);
  NtStatus orig_NtQueryValueKey(const std::string& path,
                                const std::string& valueName,
                                winsys::RegValue& out);
  WinError orig_CreateFileA(const std::string& path, bool forWrite);
  NtStatus orig_NtQueryAttributesFile(const std::string& path);
  std::uint32_t orig_GetFileAttributesA(const std::string& path);
  std::vector<std::string> orig_FindFirstFileA(const std::string& directory,
                                               const std::string& pattern);
  bool orig_GetDiskFreeSpaceExA(char drive, std::uint64_t& freeBytes,
                                std::uint64_t& totalBytes);
  bool orig_GetVolumeInformationA(char drive, std::string& volumeName,
                                  std::uint32_t& serial);
  std::uint32_t orig_CreateProcessA(const std::string& imagePath,
                                    const std::string& commandLine);
  bool orig_TerminateProcess(std::uint32_t pid, std::uint32_t exitCode);
  std::vector<ProcessEntry> orig_CreateToolhelp32Snapshot();
  bool orig_GetModuleHandleA(const std::string& moduleName);
  bool orig_GetProcAddress(const std::string& moduleName,
                           const std::string& procName);
  std::uint64_t orig_NtQueryInformationProcess(std::uint32_t pid,
                                               ProcessInfoClass infoClass);
  bool orig_ShellExecuteExA(const std::string& file);
  bool orig_IsDebuggerPresent();
  bool orig_CheckRemoteDebuggerPresent(std::uint32_t pid);
  std::uint64_t orig_GetTickCount();
  void orig_Sleep(std::uint32_t ms);
  std::uint64_t orig_RaiseException(std::uint32_t code);
  SystemInfoView orig_GetSystemInfo();
  MemoryStatusView orig_GlobalMemoryStatusEx();
  std::string orig_GetUserNameA();
  std::string orig_GetComputerNameA();
  std::uint64_t orig_NtQuerySystemInformation(SystemInfoClass infoClass);
  bool orig_FindWindowA(const std::string& className, const std::string& title);
  std::optional<std::string> orig_DnsQuery(const std::string& domain);
  HttpResult orig_InternetOpenUrlA(const std::string& domain,
                                   const std::string& path);
  std::vector<DnsCacheRow> orig_DnsGetCacheDataTable();
  std::vector<EventView> orig_EvtNext(std::size_t maxCount);

 private:
  /// Charges clock time, enforces the run deadline, and (optionally)
  /// records the call in the trace.
  void charge(ApiId id, const std::string& argument = {});
  HookSet& hooks() { return state().hooks; }

  winsys::Machine& machine_;
  UserSpace& userspace_;
  std::uint32_t pid_;
  int lastCursorX_ = -1;
  int lastCursorY_ = -1;
};

}  // namespace scarecrow::winapi
