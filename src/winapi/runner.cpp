#include "winapi/runner.h"

#include "support/log.h"
#include "support/strings.h"

namespace scarecrow::winapi {

std::uint32_t Runner::ensureExplorer() {
  winsys::Process* existing = machine_.processes().findByName("explorer.exe");
  if (existing != nullptr) return existing->pid;
  winsys::Process& shell = machine_.processes().create(
      "C:\\Windows\\explorer.exe", 0, "explorer.exe",
      machine_.sysinfo().processorCount);
  return shell.pid;
}

std::uint32_t Runner::spawnRoot(const std::string& imagePath,
                                const RunOptions& options) {
  const std::uint32_t parent =
      options.parentPid != 0 ? options.parentPid : ensureExplorer();
  winsys::Process& root = machine_.processes().create(
      imagePath, parent,
      options.commandLine.empty() ? imagePath : options.commandLine,
      machine_.sysinfo().processorCount);
  machine_.emit(parent, trace::EventKind::kProcessCreate, root.imagePath,
                root.commandLine);
  userspace_.readyQueue().push_back(root.pid);
  return root.pid;
}

RunResult Runner::drain(const RunOptions& options) {
  RunResult result;
  const std::uint64_t startMs = machine_.clock().nowMs();
  userspace_.deadlineMs = startMs + options.budgetMs;
  machine_.recorder().setCaptureApiCalls(options.captureApiCalls);

  auto& queue = userspace_.readyQueue();
  while (!queue.empty()) {
    if (machine_.clock().nowMs() >= userspace_.deadlineMs) {
      result.budgetExhausted = true;
      break;
    }
    const std::uint32_t pid = queue.front();
    queue.erase(queue.begin());
    winsys::Process* proc = machine_.processes().find(pid);
    if (proc == nullptr || proc->state == winsys::ProcessState::kTerminated)
      continue;
    if (!userspace_.programFactory) continue;
    std::unique_ptr<GuestProgram> program =
        userspace_.programFactory(proc->imagePath, proc->commandLine);
    if (program == nullptr) continue;  // inert payload artifact

    Api api(machine_, userspace_, pid);
    ++result.processesExecuted;
    try {
      program->run(api);
      // Natural return == clean exit.
      winsys::Process* p = machine_.processes().find(pid);
      if (p != nullptr && p->state != winsys::ProcessState::kTerminated) {
        machine_.emit(pid, trace::EventKind::kProcessExit, p->imagePath,
                      "return");
        machine_.processes().terminate(pid, 0);
        machine_.windows().removeByOwner(pid);
      }
    } catch (const ProcessExited&) {
      // Already recorded by Api::ExitProcess.
    } catch (const BudgetExhausted&) {
      result.budgetExhausted = true;
      break;
    } catch (const std::exception& error) {
      // A crashing guest is an access violation inside that process, not a
      // harness failure: record the crash, reap the process, keep draining
      // the queue (sandbox agents survive sample crashes).
      support::logWarn("runner", std::string("guest crashed: ") +
                                     error.what());
      winsys::Process* crashed = machine_.processes().find(pid);
      if (crashed != nullptr &&
          crashed->state != winsys::ProcessState::kTerminated) {
        machine_.emit(pid, trace::EventKind::kProcessExit,
                      crashed->imagePath, "crash 0xC0000005");
        machine_.processes().terminate(pid, 0xC0000005);
        machine_.windows().removeByOwner(pid);
      }
      ++result.guestCrashes;
    }
  }
  result.elapsedMs = machine_.clock().nowMs() - startMs;
  return result;
}

RunResult Runner::run(const std::string& imagePath, const RunOptions& options) {
  const std::uint32_t rootPid = spawnRoot(imagePath, options);
  RunResult result = drain(options);
  result.rootPid = rootPid;
  return result;
}

}  // namespace scarecrow::winapi
