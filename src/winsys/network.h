// Simulated network stack: DNS resolution, HTTP reachability, DNS cache.
//
// Reproduces the paper's network-resource deception surface:
//  * sandboxes run DNS sinkholes that resolve non-existent (NX) domains to
//    controlled IPs so malware sees "live" C2 — WannaCry's kill-switch
//    inverts this, treating a *successful* NX resolution as sandbox
//    evidence (Case II);
//  * the dnscacheEntries wear-and-tear artifact reads the resolver cache.
//
// The stack itself models the *real* network: registered domains resolve,
// NX domains fail. Sinkholing is a Scarecrow/sandbox hook at the API layer.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace scarecrow::winsys {

struct DnsCacheEntry {
  std::string domain;
  std::string ip;
  std::uint64_t insertedMs = 0;
};

struct HttpResponse {
  int status = 0;          // 0 == unreachable
  std::string body;
};

class Network {
 public:
  /// Registers a real, resolvable domain.
  void registerDomain(std::string domain, std::string ip);

  /// Registers an HTTP endpoint (domain must also resolve).
  void registerHttp(std::string domain, int status, std::string body);

  /// Resolves a domain. NX domains return nullopt. Successful resolutions
  /// populate the DNS cache.
  std::optional<std::string> resolve(std::string_view domain,
                                     std::uint64_t nowMs);

  bool isRegistered(std::string_view domain) const noexcept;

  /// HTTP GET to a previously resolved IP/domain. Unreachable hosts return
  /// status 0.
  HttpResponse httpGet(std::string_view domain);

  /// Resolver cache (most recent first), for DnsGetCacheDataTable.
  const std::vector<DnsCacheEntry>& dnsCache() const noexcept {
    return cache_;
  }
  void seedCacheEntry(std::string domain, std::string ip, std::uint64_t ms);
  void clearCache() { cache_.clear(); }

 private:
  std::map<std::string, std::string> domains_;              // lower-case
  std::map<std::string, HttpResponse> httpEndpoints_;        // lower-case
  std::vector<DnsCacheEntry> cache_;
};

}  // namespace scarecrow::winsys
