// Simulated Windows registry.
//
// A hierarchical, case-insensitive key tree rooted at the standard hives
// (HKEY_LOCAL_MACHINE, HKEY_CURRENT_USER, HKEY_USERS, HKEY_CLASSES_ROOT).
// Evasive malware probes it for virtualization vendors, analysis tools,
// BIOS strings and user-activity artifacts; Scarecrow's deception hooks sit
// *in front of* this store (at the API layer), so the store itself only has
// to be an accurate model of real registry semantics: typed values, subkey
// and value enumeration in insertion order, and metadata queries
// (RegQueryInfoKey) that the wear-and-tear artifacts rely on.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace scarecrow::winsys {

enum class RegType : std::uint8_t { kSz, kDword, kQword, kBinary, kMultiSz };

/// A registry value. Strings live in `str`, integers in `num`, binary
/// payload size in `binarySize` (content is irrelevant to every consumer).
struct RegValue {
  RegType type = RegType::kSz;
  std::string str;
  std::uint64_t num = 0;
  std::uint32_t binarySize = 0;

  static RegValue sz(std::string s);
  static RegValue dword(std::uint32_t v);
  static RegValue qword(std::uint64_t v);
  static RegValue binary(std::uint32_t size);
  static RegValue multiSz(std::vector<std::string> items);
};

class RegKey {
 public:
  explicit RegKey(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  /// Child key access; creation preserves the caller-supplied case for
  /// display while lookups stay case-insensitive.
  RegKey& ensureChild(std::string_view name);
  RegKey* findChild(std::string_view name) noexcept;
  const RegKey* findChild(std::string_view name) const noexcept;
  bool removeChild(std::string_view name);

  void setValue(std::string_view valueName, RegValue value);
  const RegValue* findValue(std::string_view valueName) const noexcept;
  bool removeValue(std::string_view valueName);

  /// Enumeration in insertion order (registry enumeration order is
  /// implementation-defined; insertion order keeps the simulation stable).
  const std::vector<std::string>& subkeyNames() const noexcept {
    return childOrder_;
  }
  const std::vector<std::string>& valueNames() const noexcept {
    return valueOrder_;
  }
  std::size_t subkeyCount() const noexcept { return childOrder_.size(); }
  std::size_t valueCount() const noexcept { return valueOrder_.size(); }

  /// Approximate on-disk footprint of this subtree in bytes; feeds the
  /// SystemRegistryQuotaInformation wear-and-tear artifact.
  std::uint64_t subtreeBytes() const noexcept;

 private:
  std::string name_;
  std::map<std::string, std::unique_ptr<RegKey>> children_;  // lower-cased key
  std::vector<std::string> childOrder_;                      // display names
  std::map<std::string, RegValue> values_;                   // lower-cased key
  std::vector<std::string> valueOrder_;                      // display names
};

/// Whole-registry facade. Paths use backslash separators and may start with
/// a hive name ("HKEY_LOCAL_MACHINE\\..." or the "HKLM\\..." shorthand); a
/// path without a hive prefix defaults to HKEY_LOCAL_MACHINE, matching how
/// the paper abbreviates keys like HARDWARE\Description\System.
class Registry {
 public:
  Registry();

  // Registries are deep-copyable: Deep Freeze style machine snapshots clone
  // the full hive tree.
  Registry(const Registry& other);
  Registry& operator=(const Registry& other);
  Registry(Registry&&) noexcept = default;
  Registry& operator=(Registry&&) noexcept = default;

  /// Creates all intermediate keys; returns the leaf.
  RegKey& ensureKey(std::string_view path);

  RegKey* findKey(std::string_view path) noexcept;
  const RegKey* findKey(std::string_view path) const noexcept;
  bool keyExists(std::string_view path) const noexcept;
  bool deleteKey(std::string_view path);

  void setValue(std::string_view path, std::string_view valueName,
                RegValue value);
  const RegValue* findValue(std::string_view path,
                            std::string_view valueName) const noexcept;
  bool deleteValue(std::string_view path, std::string_view valueName);

  std::size_t subkeyCount(std::string_view path) const noexcept;
  std::size_t valueCount(std::string_view path) const noexcept;

  /// Total approximate registry size in bytes (regSize artifact): the
  /// modeled key tree plus the opaque hive bulk below.
  std::uint64_t totalBytes() const noexcept;

  /// Hive content not modeled key-by-key (a stock Windows install carries
  /// tens of MB of hive bins; software installs keep growing them). Lets
  /// the regSize wear-and-tear artifact take realistic values.
  void setOpaqueBytes(std::uint64_t bytes) noexcept { opaqueBytes_ = bytes; }
  void addOpaqueBytes(std::uint64_t bytes) noexcept { opaqueBytes_ += bytes; }
  std::uint64_t opaqueBytes() const noexcept { return opaqueBytes_; }

 private:
  struct PathRef {
    RegKey* hive = nullptr;
    std::string remainder;
  };
  PathRef resolveHive(std::string_view path) noexcept;

  std::unique_ptr<RegKey> hklm_;
  std::unique_ptr<RegKey> hkcu_;
  std::unique_ptr<RegKey> hku_;
  std::unique_ptr<RegKey> hkcr_;
  std::uint64_t opaqueBytes_ = 0;
};

}  // namespace scarecrow::winsys
