// Simulated process/thread table with per-process PEB and module list.
//
// Two observation channels matter for fidelity with the paper:
//  * API-level enumeration (CreateToolhelp32Snapshot, GetModuleHandle) —
//    hookable, so Scarecrow can inject fake analysis processes/DLLs;
//  * direct PEB memory reads — NOT hookable. Table I sample cbdda64 reads
//    NumberOfProcessors straight from the PEB and defeats Scarecrow; the
//    Peb struct below is exposed to guests precisely so that failure mode
//    reproduces.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace scarecrow::winsys {

/// Process Environment Block — the subset evasive malware reads directly.
struct Peb {
  bool beingDebugged = false;
  std::uint32_t ntGlobalFlag = 0;       // debugger heap flags
  std::uint32_t numberOfProcessors = 0; // mirrors physical config at creation
};

/// Per-process hypervisor-level CPUID/RDTSC deception (installed by the
/// kernel/hypervisor extension): when active, CPUID executed by this
/// process reports a hypervisor and pays a vmexit-scale latency, so even
/// the timing side channel says "virtualized".
struct CpuidTrapDeception {
  bool active = false;
  std::string vendor = "VBoxVBoxVBox";
  std::uint64_t extraCycles = 40'000;
};

struct Module {
  std::string name;  // "kernel32.dll"
  std::string path;  // "C:\\Windows\\System32\\kernel32.dll"
};

enum class ProcessState : std::uint8_t { kRunning, kSuspended, kTerminated };

struct Process {
  std::uint32_t pid = 0;
  std::uint32_t parentPid = 0;
  std::string imageName;   // "sample.exe"
  std::string imagePath;   // full path of the executable
  std::string commandLine;
  ProcessState state = ProcessState::kRunning;
  std::uint32_t exitCode = 0;
  std::uint32_t threadCount = 1;
  Peb peb;
  CpuidTrapDeception cpuidTrap;
  std::vector<Module> modules;

  bool hasModule(std::string_view name) const noexcept;
};

class ProcessTable {
 public:
  ProcessTable() = default;

  /// Creates a process; the caller provides the parent pid (0 for roots).
  Process& create(std::string_view imagePath, std::uint32_t parentPid,
                  std::string_view commandLine,
                  std::uint32_t numberOfProcessors);

  Process* find(std::uint32_t pid) noexcept;
  const Process* find(std::uint32_t pid) const noexcept;

  /// First running process with the given image name (case-insensitive).
  Process* findByName(std::string_view imageName) noexcept;
  const Process* findByName(std::string_view imageName) const noexcept;

  /// Marks a process terminated; returns false for unknown/zombie pids.
  bool terminate(std::uint32_t pid, std::uint32_t exitCode);

  /// Running processes in pid order (Toolhelp snapshot semantics).
  std::vector<const Process*> running() const;

  /// All processes ever created (trace post-processing).
  std::vector<const Process*> all() const;

  std::size_t runningCount() const noexcept;

 private:
  std::map<std::uint32_t, Process> processes_;
  std::uint32_t nextPid_ = 4;  // System idle/system take low pids
};

/// A top-level GUI window (FindWindow checks).
struct Window {
  std::string className;
  std::string title;
  std::uint32_t ownerPid = 0;
};

class WindowTable {
 public:
  void add(std::string className, std::string title, std::uint32_t ownerPid);
  bool removeByOwner(std::uint32_t pid);

  /// FindWindow semantics: match by class name and/or title; either may be
  /// empty meaning "any".
  const Window* find(std::string_view className,
                     std::string_view title) const noexcept;

  const std::vector<Window>& windows() const noexcept { return windows_; }

 private:
  std::vector<Window> windows_;
};

}  // namespace scarecrow::winsys
