// Simulated Windows event log.
//
// The wear-and-tear artifacts sysevt (number of system events) and syssrc
// (number of distinct sources among recent events) read this log through
// EvtQuery/EvtNext. Scarecrow's aging deception truncates the view to the
// most recent 8,000 events (Table III), so the log itself just needs cheap
// append and windowed iteration.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace scarecrow::winsys {

struct LogEvent {
  std::string source;   // "Service Control Manager", "Kernel-General", ...
  std::uint32_t id = 0;
  std::uint64_t timeMs = 0;
};

class EventLog {
 public:
  void append(std::string source, std::uint32_t id, std::uint64_t timeMs);

  std::size_t size() const noexcept { return events_.size(); }

  /// The `count` most recent events, newest last.
  std::vector<const LogEvent*> recent(std::size_t count) const;

  /// Number of distinct sources among the `count` most recent events.
  std::size_t distinctSourcesInRecent(std::size_t count) const;

 private:
  std::vector<LogEvent> events_;
};

}  // namespace scarecrow::winsys
