#include "winsys/vfs.h"

#include "support/strings.h"

namespace scarecrow::winsys {

using support::baseName;
using support::normalizePath;
using support::parentPath;
using support::toLower;

void Vfs::addDrive(DriveInfo info) {
  const char letter = support::asciiLower(info.letter);
  info.letter = static_cast<char>(letter - 'a' + 'A');
  drives_[info.letter] = std::move(info);
}

DriveInfo* Vfs::findDrive(char letter) noexcept {
  auto it = drives_.find(
      static_cast<char>(support::asciiLower(letter) - 'a' + 'A'));
  return it == drives_.end() ? nullptr : &it->second;
}

const DriveInfo* Vfs::findDrive(char letter) const noexcept {
  return const_cast<Vfs*>(this)->findDrive(letter);
}

std::vector<char> Vfs::driveLetters() const {
  std::vector<char> out;
  out.reserve(drives_.size());
  for (const auto& [letter, info] : drives_) out.push_back(letter);
  return out;
}

std::string Vfs::keyFor(std::string_view path) {
  return toLower(normalizePath(path));
}

FileNode& Vfs::insert(std::string_view path, NodeKind kind, std::uint64_t size,
                      std::uint64_t nowMs) {
  const std::string norm = normalizePath(path);
  const std::string key = toLower(norm);
  auto [it, inserted] = nodes_.try_emplace(key);
  FileNode& node = it->second;
  if (inserted) {
    node.displayPath = norm;
    node.createdMs = nowMs;
  }
  node.kind = kind;
  node.sizeBytes = size;
  node.modifiedMs = nowMs;
  return node;
}

FileNode& Vfs::makeDirs(std::string_view path, std::uint64_t nowMs) {
  const std::string norm = normalizePath(path);
  // Create parents first so listings see a fully-linked tree.
  const std::string parent = parentPath(norm);
  if (parent != norm && parent.size() > 3) makeDirs(parent, nowMs);
  FileNode* existing = find(norm);
  if (existing != nullptr && existing->kind == NodeKind::kDirectory)
    return *existing;
  return insert(norm, NodeKind::kDirectory, 0, nowMs);
}

FileNode& Vfs::createFile(std::string_view path, std::uint64_t sizeBytes,
                          std::uint64_t nowMs) {
  const std::string norm = normalizePath(path);
  const std::string parent = parentPath(norm);
  if (parent != norm && parent.size() >= 3) makeDirs(parent, nowMs);
  return insert(norm, NodeKind::kFile, sizeBytes, nowMs);
}

FileNode& Vfs::createDevice(std::string_view path) {
  return insert(path, NodeKind::kDevice, 0, 0);
}

FileNode* Vfs::find(std::string_view path) noexcept {
  auto it = nodes_.find(keyFor(path));
  return it == nodes_.end() ? nullptr : &it->second;
}

const FileNode* Vfs::find(std::string_view path) const noexcept {
  return const_cast<Vfs*>(this)->find(path);
}

bool Vfs::exists(std::string_view path) const noexcept {
  return find(path) != nullptr;
}

bool Vfs::remove(std::string_view path) {
  const std::string key = keyFor(path);
  auto it = nodes_.find(key);
  if (it == nodes_.end()) return false;
  if (it->second.kind == NodeKind::kDirectory) {
    // Remove the subtree: every node whose key starts with "key\\".
    const std::string prefix = key + '\\';
    auto cur = nodes_.lower_bound(prefix);
    while (cur != nodes_.end() && cur->first.compare(0, prefix.size(),
                                                     prefix) == 0)
      cur = nodes_.erase(cur);
  }
  nodes_.erase(key);
  return true;
}

void Vfs::writeContent(std::string_view path, std::string content,
                       std::uint64_t nowMs) {
  FileNode& node = createFile(path, content.size(), nowMs);
  node.content = std::move(content);
  node.sizeBytes = node.content.size();
  node.modifiedMs = nowMs;
}

std::vector<const FileNode*> Vfs::list(std::string_view directory,
                                       std::string_view pattern) const {
  std::vector<const FileNode*> out;
  const std::string dirKey = keyFor(directory);
  const std::string prefix = dirKey + '\\';
  for (auto it = nodes_.lower_bound(prefix);
       it != nodes_.end() &&
       it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    // Immediate children only.
    if (it->first.find('\\', prefix.size()) != std::string::npos) continue;
    const std::string name = baseName(it->second.displayPath);
    if (support::wildcardMatch(pattern, name)) out.push_back(&it->second);
  }
  return out;
}

std::vector<const FileNode*> Vfs::listRecursive(
    std::string_view directory) const {
  std::vector<const FileNode*> out;
  const std::string prefix = keyFor(directory) + '\\';
  for (auto it = nodes_.lower_bound(prefix);
       it != nodes_.end() &&
       it->first.compare(0, prefix.size(), prefix) == 0;
       ++it)
    out.push_back(&it->second);
  return out;
}

}  // namespace scarecrow::winsys
