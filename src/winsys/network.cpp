#include "winsys/network.h"

#include "support/strings.h"

namespace scarecrow::winsys {

using support::toLower;

void Network::registerDomain(std::string domain, std::string ip) {
  domains_[toLower(domain)] = std::move(ip);
}

void Network::registerHttp(std::string domain, int status, std::string body) {
  httpEndpoints_[toLower(domain)] = HttpResponse{status, std::move(body)};
}

std::optional<std::string> Network::resolve(std::string_view domain,
                                            std::uint64_t nowMs) {
  auto it = domains_.find(toLower(domain));
  if (it == domains_.end()) return std::nullopt;
  cache_.push_back({std::string(domain), it->second, nowMs});
  return it->second;
}

bool Network::isRegistered(std::string_view domain) const noexcept {
  return domains_.find(toLower(domain)) != domains_.end();
}

HttpResponse Network::httpGet(std::string_view domain) {
  auto it = httpEndpoints_.find(toLower(domain));
  if (it == httpEndpoints_.end()) return HttpResponse{};
  return it->second;
}

void Network::seedCacheEntry(std::string domain, std::string ip,
                             std::uint64_t ms) {
  cache_.push_back({std::move(domain), std::move(ip), ms});
}

}  // namespace scarecrow::winsys
