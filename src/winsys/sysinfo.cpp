#include "winsys/sysinfo.h"

#include <cstring>

namespace scarecrow::winsys {
namespace {

// Packs up to 4 characters of a string into a little-endian register.
std::uint32_t packChars(const std::string& s, std::size_t offset) {
  std::uint32_t out = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const std::size_t idx = offset + i;
    const auto c = idx < s.size() ? static_cast<unsigned char>(s[idx]) : 0u;
    out |= static_cast<std::uint32_t>(c) << (8 * i);
  }
  return out;
}

}  // namespace

CpuidResult SysInfo::cpuid(std::uint32_t leaf,
                           support::VirtualClock& clock) const {
  clock.addTscCycles(cpuidTrapCycles);
  CpuidResult r;
  switch (leaf) {
    case 0x0:  // vendor string in EBX,EDX,ECX
      r.eax = 0xd;
      r.ebx = packChars(cpuVendor, 0);
      r.edx = packChars(cpuVendor, 4);
      r.ecx = packChars(cpuVendor, 8);
      break;
    case 0x1:  // feature flags; ECX bit 31 = hypervisor present
      r.eax = 0x000306c3;
      r.ecx = hypervisorPresent ? (1u << 31) : 0u;
      r.edx = 0xbfebfbff;
      break;
    case 0x40000000:  // hypervisor vendor leaf
      if (hypervisorPresent && !hypervisorVendor.empty()) {
        r.eax = 0x40000001;
        r.ebx = packChars(hypervisorVendor, 0);
        r.ecx = packChars(hypervisorVendor, 4);
        r.edx = packChars(hypervisorVendor, 8);
      }
      break;
    case 0x80000002:
    case 0x80000003:
    case 0x80000004: {  // brand string, 16 bytes per leaf
      const std::size_t base = (leaf - 0x80000002) * 16;
      r.eax = packChars(cpuBrand, base + 0);
      r.ebx = packChars(cpuBrand, base + 4);
      r.ecx = packChars(cpuBrand, base + 8);
      r.edx = packChars(cpuBrand, base + 12);
      break;
    }
    default:
      break;
  }
  return r;
}

std::uint64_t SysInfo::rdtsc(support::VirtualClock& clock) const {
  clock.addTscCycles(rdtscCostCycles);
  return clock.tsc();
}

}  // namespace scarecrow::winsys
