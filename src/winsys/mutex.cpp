#include "winsys/mutex.h"

#include "support/strings.h"

namespace scarecrow::winsys {

bool MutexTable::create(std::string_view name) {
  return !mutexes_.insert(support::toLower(name)).second;
}

bool MutexTable::exists(std::string_view name) const {
  return mutexes_.count(support::toLower(name)) != 0;
}

bool MutexTable::remove(std::string_view name) {
  return mutexes_.erase(support::toLower(name)) != 0;
}

std::vector<std::string> MutexTable::names() const {
  return {mutexes_.begin(), mutexes_.end()};
}

}  // namespace scarecrow::winsys
