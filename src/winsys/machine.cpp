#include "winsys/machine.h"

#include "obs/span.h"

namespace scarecrow::winsys {

void Machine::emit(std::uint32_t pid, trace::EventKind kind,
                   std::string target, std::string detail) {
  const Process* p = processes_.find(pid);
  recorder_.record(clock_.nowMs(), pid, p != nullptr ? p->imageName : "?",
                   kind, std::move(target), std::move(detail));
}

MachineSnapshot Machine::snapshot() const {
  obs::ScopedSpan span(metrics_, clock_, "machine.snapshot");
  metrics_.counter("machine.snapshots").inc();
  MachineSnapshot snap;
  snap.registry = registry_;
  snap.vfs = vfs_;
  snap.processes = processes_;
  snap.windows = windows_;
  snap.sysinfo = sysinfo_;
  snap.network = network_;
  snap.eventlog = eventlog_;
  snap.mutexes = mutexes_;
  snap.clockMs = clock_.nowMs();
  return snap;
}

void Machine::restore(const MachineSnapshot& snap) {
  obs::ScopedSpan span(metrics_, clock_, "machine.restore");
  metrics_.counter("machine.restores").inc();
  registry_ = snap.registry;
  vfs_ = snap.vfs;
  processes_ = snap.processes;
  windows_ = snap.windows;
  sysinfo_ = snap.sysinfo;
  network_ = snap.network;
  eventlog_ = snap.eventlog;
  mutexes_ = snap.mutexes;
  clock_.setNowMs(snap.clockMs);
  recorder_.clear();
}

}  // namespace scarecrow::winsys
