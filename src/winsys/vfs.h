// Simulated Windows filesystem.
//
// Stores a flat case-insensitive map from normalized path to node, plus a
// per-drive capacity model (GetDiskFreeSpaceEx / GetVolumeInformation feed
// off it). Device-namespace paths ("\\\\.\\VBoxGuest", "\\\\.\\pipe\\cuckoo")
// live in the same namespace with the kDevice node kind — several Pafish
// checks open kernel device objects, which user-level hooking cannot fake;
// modeling them as a distinct kind lets the deception layer decline them the
// way the real Scarecrow implementation does.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace scarecrow::winsys {

enum class NodeKind : std::uint8_t { kFile, kDirectory, kDevice };

struct FileNode {
  NodeKind kind = NodeKind::kFile;
  std::string displayPath;  // original-case normalized path
  std::uint64_t sizeBytes = 0;
  std::uint64_t createdMs = 0;   // machine-clock timestamp at creation
  std::uint64_t modifiedMs = 0;
  bool hidden = false;
  bool system = false;
  std::string content;  // optional; used by payloads (e.g. encrypted marker)
};

struct DriveInfo {
  char letter = 'C';
  std::uint64_t totalBytes = 0;
  std::uint64_t freeBytes = 0;
  std::string volumeName = "OS";
  std::string fileSystem = "NTFS";
  std::uint32_t serialNumber = 0;
  std::string deviceModel = "ST500DM002-1BD142";  // probed by generic checks
};

class Vfs {
 public:
  Vfs() = default;

  /// Registers a drive; paths on unknown drives are rejected.
  void addDrive(DriveInfo info);
  DriveInfo* findDrive(char letter) noexcept;
  const DriveInfo* findDrive(char letter) const noexcept;
  std::vector<char> driveLetters() const;

  /// Creates a directory (and all parents). Idempotent.
  FileNode& makeDirs(std::string_view path, std::uint64_t nowMs = 0);

  /// Creates or truncates a file; parents are created implicitly.
  FileNode& createFile(std::string_view path, std::uint64_t sizeBytes,
                       std::uint64_t nowMs = 0);

  /// Registers a device-namespace object (e.g. "\\\\.\\pipe\\cuckoo").
  FileNode& createDevice(std::string_view path);

  FileNode* find(std::string_view path) noexcept;
  const FileNode* find(std::string_view path) const noexcept;
  bool exists(std::string_view path) const noexcept;
  bool remove(std::string_view path);

  /// Overwrites file content and bumps size/mtime (ransomware payloads).
  void writeContent(std::string_view path, std::string content,
                    std::uint64_t nowMs = 0);

  /// Directory listing: immediate children whose base name matches the
  /// FindFirstFile-style pattern ('*' and '?').
  std::vector<const FileNode*> list(std::string_view directory,
                                    std::string_view pattern = "*") const;

  /// All files under a directory (recursive); used by encryption payloads
  /// and the sandbox resource crawler.
  std::vector<const FileNode*> listRecursive(std::string_view directory) const;

  std::size_t nodeCount() const noexcept { return nodes_.size(); }

  /// Iteration over every node (crawler, wear-and-tear file artifacts).
  template <typename Fn>
  void forEach(Fn&& fn) const {
    for (const auto& [key, node] : nodes_) fn(node);
  }

 private:
  FileNode& insert(std::string_view path, NodeKind kind, std::uint64_t size,
                   std::uint64_t nowMs);
  static std::string keyFor(std::string_view path);

  std::map<std::string, FileNode> nodes_;  // lower-cased normalized path
  std::map<char, DriveInfo> drives_;
};

}  // namespace scarecrow::winsys
