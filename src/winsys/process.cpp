#include "winsys/process.h"

#include "support/strings.h"

namespace scarecrow::winsys {

bool Process::hasModule(std::string_view name) const noexcept {
  for (const auto& m : modules)
    if (support::iequals(m.name, name)) return true;
  return false;
}

Process& ProcessTable::create(std::string_view imagePath,
                              std::uint32_t parentPid,
                              std::string_view commandLine,
                              std::uint32_t numberOfProcessors) {
  const std::uint32_t pid = nextPid_;
  nextPid_ += 4;  // Windows allocates pids in multiples of 4.
  Process p;
  p.pid = pid;
  p.parentPid = parentPid;
  p.imagePath = support::normalizePath(imagePath);
  p.imageName = support::baseName(p.imagePath);
  p.commandLine = std::string(commandLine);
  p.peb.numberOfProcessors = numberOfProcessors;
  // Every user process maps the core system DLLs.
  p.modules = {
      {"ntdll.dll", "C:\\Windows\\System32\\ntdll.dll"},
      {"kernel32.dll", "C:\\Windows\\System32\\kernel32.dll"},
      {"user32.dll", "C:\\Windows\\System32\\user32.dll"},
      {"advapi32.dll", "C:\\Windows\\System32\\advapi32.dll"},
  };
  auto [it, inserted] = processes_.emplace(pid, std::move(p));
  return it->second;
}

Process* ProcessTable::find(std::uint32_t pid) noexcept {
  auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : &it->second;
}

const Process* ProcessTable::find(std::uint32_t pid) const noexcept {
  return const_cast<ProcessTable*>(this)->find(pid);
}

Process* ProcessTable::findByName(std::string_view imageName) noexcept {
  for (auto& [pid, p] : processes_)
    if (p.state != ProcessState::kTerminated &&
        support::iequals(p.imageName, imageName))
      return &p;
  return nullptr;
}

const Process* ProcessTable::findByName(
    std::string_view imageName) const noexcept {
  return const_cast<ProcessTable*>(this)->findByName(imageName);
}

bool ProcessTable::terminate(std::uint32_t pid, std::uint32_t exitCode) {
  Process* p = find(pid);
  if (p == nullptr || p->state == ProcessState::kTerminated) return false;
  p->state = ProcessState::kTerminated;
  p->exitCode = exitCode;
  return true;
}

std::vector<const Process*> ProcessTable::running() const {
  std::vector<const Process*> out;
  for (const auto& [pid, p] : processes_)
    if (p.state != ProcessState::kTerminated) out.push_back(&p);
  return out;
}

std::vector<const Process*> ProcessTable::all() const {
  std::vector<const Process*> out;
  out.reserve(processes_.size());
  for (const auto& [pid, p] : processes_) out.push_back(&p);
  return out;
}

std::size_t ProcessTable::runningCount() const noexcept {
  std::size_t n = 0;
  for (const auto& [pid, p] : processes_)
    if (p.state != ProcessState::kTerminated) ++n;
  return n;
}

void WindowTable::add(std::string className, std::string title,
                      std::uint32_t ownerPid) {
  windows_.push_back({std::move(className), std::move(title), ownerPid});
}

bool WindowTable::removeByOwner(std::uint32_t pid) {
  bool removed = false;
  for (auto it = windows_.begin(); it != windows_.end();) {
    if (it->ownerPid == pid) {
      it = windows_.erase(it);
      removed = true;
    } else {
      ++it;
    }
  }
  return removed;
}

const Window* WindowTable::find(std::string_view className,
                                std::string_view title) const noexcept {
  for (const auto& w : windows_) {
    const bool classOk =
        className.empty() || support::iequals(w.className, className);
    const bool titleOk = title.empty() || support::iequals(w.title, title);
    if (classOk && titleOk) return &w;
  }
  return nullptr;
}

}  // namespace scarecrow::winsys
