// Hardware / system identity of the simulated machine.
//
// Covers every hardware-adjacent observation channel used by the paper's
// evasive techniques and by Pafish: physical memory, processor count and
// brand, the CPUID hypervisor leaf, BIOS/SMBIOS strings, network adapter
// MACs, input activity (mouse), user and computer names, and uptime. The
// CPUID and RDTSC channels are pseudo-instructions: they bypass the API
// layer entirely and therefore cannot be hooked by Scarecrow — exactly the
// gap Table II documents (rdtsc_diff* checks stay un-deceived).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/clock.h"

namespace scarecrow::winsys {

struct CpuidResult {
  std::uint32_t eax = 0, ebx = 0, ecx = 0, edx = 0;
};

struct AdapterInfo {
  std::string name = "Local Area Connection";
  std::string description = "Intel(R) 82579LM Gigabit Network Connection";
  std::string mac = "3C:97:0E:12:34:56";  // colon-separated uppercase hex
};

class SysInfo {
 public:
  // --- physical configuration -------------------------------------------
  std::uint64_t totalPhysicalMemory = 16ULL << 30;
  std::uint32_t processorCount = 8;
  std::string cpuVendor = "GenuineIntel";   // CPUID leaf 0
  std::string cpuBrand =
      "Intel(R) Core(TM) i7-4790 CPU @ 3.60GHz";  // CPUID leaves 0x80000002-4

  // --- virtualization surface --------------------------------------------
  bool hypervisorPresent = false;           // CPUID.1:ECX bit 31
  std::string hypervisorVendor;             // CPUID leaf 0x40000000 ("VBoxVBoxVBox")
  /// Extra TSC cycles consumed by a CPUID instruction. On bare metal this is
  /// ~150 cycles; under a trapping hypervisor it is thousands (the
  /// rdtsc_diff_vmexit signal). Environments set it to match their substrate.
  std::uint64_t cpuidTrapCycles = 150;
  /// Baseline RDTSC-to-RDTSC cost (covers rdtsc_diff checks).
  std::uint64_t rdtscCostCycles = 25;

  // --- firmware / SMBIOS --------------------------------------------------
  std::string biosVersion = "DELL   - 1072009";  // SystemBiosVersion
  std::string videoBiosVersion = "Hardware Version 0.0";
  std::string systemManufacturer = "Dell Inc.";
  std::string systemProductName = "OptiPlex 9020";
  /// ACPI OEM identifier exposed via GetSystemFirmwareTable (not hooked by
  /// Scarecrow: firmware-table access is one of its documented blind spots).
  std::string acpiOemId = "DELL";

  /// Extra SEH dispatch cycles injected by analysis instrumentation
  /// (shadow-page analyzers, debugger first-chance round trips).
  std::uint64_t exceptionExtraCycles = 0;
  /// Kernel debugger attached (NtQuerySystemInformation check).
  bool kernelDebuggerEnabled = false;
  /// Wine compatibility layer present (kernel32 exports wine_* functions).
  bool wineLayer = false;

  // --- display -------------------------------------------------------------
  int screenWidth = 1920;
  int screenHeight = 1080;

  // --- identity / activity -----------------------------------------------
  std::string computerName = "DESKTOP-4C2A";
  std::string userName = "alice";
  std::vector<AdapterInfo> adapters{AdapterInfo{}};
  /// Whether a human is moving the mouse during execution windows. Cuckoo's
  /// human-emulation module also sets this.
  bool mouseActive = true;
  /// Boot-relative uptime offset applied to GetTickCount at machine build.
  std::uint64_t bootOffsetMs = 86'400'000;  // 1 day by default
  /// Windows version gate: IsNativeVhdBoot exists only on Windows 8+.
  std::uint32_t windowsMajorVersion = 6;  // 6.1 == Windows 7
  std::uint32_t windowsMinorVersion = 1;

  // --- instruction-level channels ----------------------------------------
  /// Executes CPUID for a leaf: fills registers from the fields above and
  /// charges `cpuidTrapCycles` to the clock's TSC.
  CpuidResult cpuid(std::uint32_t leaf, support::VirtualClock& clock) const;

  /// Reads the TSC, charging the baseline RDTSC cost.
  std::uint64_t rdtsc(support::VirtualClock& clock) const;
};

}  // namespace scarecrow::winsys
