#include "winsys/registry.h"

#include "support/strings.h"

namespace scarecrow::winsys {

using support::split;
using support::toLower;

RegValue RegValue::sz(std::string s) {
  RegValue v;
  v.type = RegType::kSz;
  v.str = std::move(s);
  return v;
}

RegValue RegValue::dword(std::uint32_t n) {
  RegValue v;
  v.type = RegType::kDword;
  v.num = n;
  return v;
}

RegValue RegValue::qword(std::uint64_t n) {
  RegValue v;
  v.type = RegType::kQword;
  v.num = n;
  return v;
}

RegValue RegValue::binary(std::uint32_t size) {
  RegValue v;
  v.type = RegType::kBinary;
  v.binarySize = size;
  return v;
}

RegValue RegValue::multiSz(std::vector<std::string> items) {
  RegValue v;
  v.type = RegType::kMultiSz;
  v.str = support::join(items, '\0');
  return v;
}

RegKey& RegKey::ensureChild(std::string_view name) {
  const std::string key = toLower(name);
  auto it = children_.find(key);
  if (it != children_.end()) return *it->second;
  auto child = std::make_unique<RegKey>(std::string(name));
  RegKey& ref = *child;
  children_.emplace(key, std::move(child));
  childOrder_.emplace_back(name);
  return ref;
}

RegKey* RegKey::findChild(std::string_view name) noexcept {
  auto it = children_.find(toLower(name));
  return it == children_.end() ? nullptr : it->second.get();
}

const RegKey* RegKey::findChild(std::string_view name) const noexcept {
  auto it = children_.find(toLower(name));
  return it == children_.end() ? nullptr : it->second.get();
}

bool RegKey::removeChild(std::string_view name) {
  const std::string key = toLower(name);
  auto it = children_.find(key);
  if (it == children_.end()) return false;
  children_.erase(it);
  for (auto order = childOrder_.begin(); order != childOrder_.end(); ++order) {
    if (support::iequals(*order, name)) {
      childOrder_.erase(order);
      break;
    }
  }
  return true;
}

void RegKey::setValue(std::string_view valueName, RegValue value) {
  const std::string key = toLower(valueName);
  if (values_.find(key) == values_.end())
    valueOrder_.emplace_back(valueName);
  values_[key] = std::move(value);
}

const RegValue* RegKey::findValue(std::string_view valueName) const noexcept {
  auto it = values_.find(toLower(valueName));
  return it == values_.end() ? nullptr : &it->second;
}

bool RegKey::removeValue(std::string_view valueName) {
  const std::string key = toLower(valueName);
  auto it = values_.find(key);
  if (it == values_.end()) return false;
  values_.erase(it);
  for (auto order = valueOrder_.begin(); order != valueOrder_.end(); ++order) {
    if (support::iequals(*order, valueName)) {
      valueOrder_.erase(order);
      break;
    }
  }
  return true;
}

std::uint64_t RegKey::subtreeBytes() const noexcept {
  // Approximation modeled on hive cell layout: ~80 bytes per key cell,
  // value name + payload per value.
  std::uint64_t bytes = 80 + name_.size();
  for (const auto& [name, value] : values_) {
    bytes += 24 + name.size();
    switch (value.type) {
      case RegType::kSz:
      case RegType::kMultiSz: bytes += value.str.size() * 2; break;
      case RegType::kDword: bytes += 4; break;
      case RegType::kQword: bytes += 8; break;
      case RegType::kBinary: bytes += value.binarySize; break;
    }
  }
  for (const auto& [name, child] : children_) bytes += child->subtreeBytes();
  return bytes;
}

namespace {

void copyInto(const RegKey& from, RegKey& to) {
  for (const auto& valueName : from.valueNames()) {
    const RegValue* v = from.findValue(valueName);
    if (v != nullptr) to.setValue(valueName, *v);
  }
  for (const auto& childName : from.subkeyNames()) {
    const RegKey* child = from.findChild(childName);
    if (child != nullptr) copyInto(*child, to.ensureChild(childName));
  }
}

std::unique_ptr<RegKey> cloneKey(const RegKey& src) {
  auto dst = std::make_unique<RegKey>(src.name());
  copyInto(src, *dst);
  return dst;
}

}  // namespace

Registry::Registry()
    : hklm_(std::make_unique<RegKey>("HKEY_LOCAL_MACHINE")),
      hkcu_(std::make_unique<RegKey>("HKEY_CURRENT_USER")),
      hku_(std::make_unique<RegKey>("HKEY_USERS")),
      hkcr_(std::make_unique<RegKey>("HKEY_CLASSES_ROOT")) {}

Registry::Registry(const Registry& other)
    : hklm_(cloneKey(*other.hklm_)),
      hkcu_(cloneKey(*other.hkcu_)),
      hku_(cloneKey(*other.hku_)),
      hkcr_(cloneKey(*other.hkcr_)),
      opaqueBytes_(other.opaqueBytes_) {}

Registry& Registry::operator=(const Registry& other) {
  if (this != &other) {
    hklm_ = cloneKey(*other.hklm_);
    hkcu_ = cloneKey(*other.hkcu_);
    hku_ = cloneKey(*other.hku_);
    hkcr_ = cloneKey(*other.hkcr_);
    opaqueBytes_ = other.opaqueBytes_;
  }
  return *this;
}

Registry::PathRef Registry::resolveHive(std::string_view path) noexcept {
  std::string_view rest = path;
  RegKey* hive = hklm_.get();
  auto consume = [&rest](std::string_view prefix) {
    if (support::istartsWith(rest, prefix) &&
        (rest.size() == prefix.size() || rest[prefix.size()] == '\\')) {
      rest.remove_prefix(
          rest.size() == prefix.size() ? prefix.size() : prefix.size() + 1);
      return true;
    }
    return false;
  };
  if (consume("HKEY_LOCAL_MACHINE") || consume("HKLM")) {
    hive = hklm_.get();
  } else if (consume("HKEY_CURRENT_USER") || consume("HKCU")) {
    hive = hkcu_.get();
  } else if (consume("HKEY_USERS") || consume("HKU")) {
    hive = hku_.get();
  } else if (consume("HKEY_CLASSES_ROOT") || consume("HKCR")) {
    hive = hkcr_.get();
  }
  return PathRef{hive, std::string(rest)};
}

RegKey& Registry::ensureKey(std::string_view path) {
  PathRef ref = resolveHive(path);
  RegKey* cur = ref.hive;
  if (ref.remainder.empty()) return *cur;
  for (const auto& part : split(ref.remainder, '\\')) {
    if (part.empty()) continue;
    cur = &cur->ensureChild(part);
  }
  return *cur;
}

RegKey* Registry::findKey(std::string_view path) noexcept {
  PathRef ref = resolveHive(path);
  RegKey* cur = ref.hive;
  if (ref.remainder.empty()) return cur;
  for (const auto& part : split(ref.remainder, '\\')) {
    if (part.empty()) continue;
    cur = cur->findChild(part);
    if (cur == nullptr) return nullptr;
  }
  return cur;
}

const RegKey* Registry::findKey(std::string_view path) const noexcept {
  return const_cast<Registry*>(this)->findKey(path);
}

bool Registry::keyExists(std::string_view path) const noexcept {
  return findKey(path) != nullptr;
}

bool Registry::deleteKey(std::string_view path) {
  const std::string parent = support::parentPath(path);
  const std::string leaf = support::baseName(path);
  if (leaf.empty()) return false;
  RegKey* parentKey = (parent == path) ? nullptr : findKey(parent);
  if (parentKey == nullptr) {
    PathRef ref = resolveHive(path);
    // Deleting a direct hive child: remainder is the child name itself.
    if (ref.remainder.find('\\') == std::string::npos && !ref.remainder.empty())
      return ref.hive->removeChild(ref.remainder);
    return false;
  }
  return parentKey->removeChild(leaf);
}

void Registry::setValue(std::string_view path, std::string_view valueName,
                        RegValue value) {
  ensureKey(path).setValue(valueName, std::move(value));
}

const RegValue* Registry::findValue(std::string_view path,
                                    std::string_view valueName) const noexcept {
  const RegKey* key = findKey(path);
  return key == nullptr ? nullptr : key->findValue(valueName);
}

bool Registry::deleteValue(std::string_view path, std::string_view valueName) {
  RegKey* key = findKey(path);
  return key != nullptr && key->removeValue(valueName);
}

std::size_t Registry::subkeyCount(std::string_view path) const noexcept {
  const RegKey* key = findKey(path);
  return key == nullptr ? 0 : key->subkeyCount();
}

std::size_t Registry::valueCount(std::string_view path) const noexcept {
  const RegKey* key = findKey(path);
  return key == nullptr ? 0 : key->valueCount();
}

std::uint64_t Registry::totalBytes() const noexcept {
  return opaqueBytes_ + hklm_->subtreeBytes() + hkcu_->subtreeBytes() +
         hku_->subtreeBytes() + hkcr_->subtreeBytes();
}

}  // namespace scarecrow::winsys
