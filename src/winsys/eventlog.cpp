#include "winsys/eventlog.h"

namespace scarecrow::winsys {

void EventLog::append(std::string source, std::uint32_t id,
                      std::uint64_t timeMs) {
  events_.push_back({std::move(source), id, timeMs});
}

std::vector<const LogEvent*> EventLog::recent(std::size_t count) const {
  std::vector<const LogEvent*> out;
  const std::size_t n = events_.size();
  const std::size_t take = count < n ? count : n;
  out.reserve(take);
  for (std::size_t i = n - take; i < n; ++i) out.push_back(&events_[i]);
  return out;
}

std::size_t EventLog::distinctSourcesInRecent(std::size_t count) const {
  std::set<std::string> sources;
  for (const LogEvent* e : recent(count)) sources.insert(e->source);
  return sources.size();
}

}  // namespace scarecrow::winsys
