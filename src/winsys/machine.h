// Machine: composition root of the simulated Windows host.
//
// One Machine == one bare-metal box in the paper's Figure 3 cluster. The
// evaluation harness takes a snapshot after environment construction and
// restores it before each sample run — the simulated equivalent of the
// Deep Freeze reset the paper performs between executions.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "obs/flight_recorder.h"
#include "obs/hot_timer.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "support/clock.h"
#include "trace/recorder.h"
#include "winsys/eventlog.h"
#include "winsys/mutex.h"
#include "winsys/network.h"
#include "winsys/process.h"
#include "winsys/registry.h"
#include "winsys/sysinfo.h"
#include "winsys/vfs.h"

namespace scarecrow::winsys {

class Machine;

/// Deep copy of all mutable machine state (traces excluded: they belong to
/// runs, not machines).
struct MachineSnapshot {
  Registry registry;
  Vfs vfs;
  ProcessTable processes;
  WindowTable windows;
  SysInfo sysinfo;
  Network network;
  EventLog eventlog;
  MutexTable mutexes;
  std::uint64_t clockMs = 0;
};

class Machine {
 public:
  Machine() {
    flight_.setDroppedCounter(&metrics_.counter("obs.decisions_dropped"));
  }

  // Machines are identity objects; pass by reference.
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  Registry& registry() noexcept { return registry_; }
  const Registry& registry() const noexcept { return registry_; }
  Vfs& vfs() noexcept { return vfs_; }
  const Vfs& vfs() const noexcept { return vfs_; }
  ProcessTable& processes() noexcept { return processes_; }
  const ProcessTable& processes() const noexcept { return processes_; }
  WindowTable& windows() noexcept { return windows_; }
  const WindowTable& windows() const noexcept { return windows_; }
  SysInfo& sysinfo() noexcept { return sysinfo_; }
  const SysInfo& sysinfo() const noexcept { return sysinfo_; }
  Network& network() noexcept { return network_; }
  const Network& network() const noexcept { return network_; }
  EventLog& eventlog() noexcept { return eventlog_; }
  const EventLog& eventlog() const noexcept { return eventlog_; }
  MutexTable& mutexes() noexcept { return mutexes_; }
  const MutexTable& mutexes() const noexcept { return mutexes_; }
  support::VirtualClock& clock() noexcept { return clock_; }
  const support::VirtualClock& clock() const noexcept { return clock_; }
  trace::Recorder& recorder() noexcept { return recorder_; }

  /// Telemetry ledger for everything that happens on this box: hook
  /// counters, eval-pipeline spans, latency histograms. Unlike the
  /// recorder, it survives restore() — metrics describe the machinery,
  /// not one run; callers that need per-run telemetry reset it themselves
  /// (EvaluationHarness::evaluate does).
  obs::MetricsRegistry& metrics() const noexcept { return metrics_; }

  /// Causal decision trace for everything that happens on this box: hook
  /// dispatches, deceptive values served, IPC sends/drains, pipeline
  /// phases, verdicts. Like the metrics registry it survives restore() —
  /// one evaluation spans several restores; EvaluationHarness::evaluate
  /// clears it at the start of each evaluation so the trace of a
  /// (sample, config) pair is a pure function of its inputs.
  obs::FlightRecorder& flightRecorder() noexcept { return flight_; }
  const obs::FlightRecorder& flightRecorder() const noexcept {
    return flight_;
  }

  /// Wall-clock nanosecond timers for this box's deception hot paths
  /// (hook dispatch, guarded DB lookups, IPC send/drain, injection).
  /// Disarmed by default — a disarmed site costs one array load — and
  /// kept out of metrics()/resetTelemetry() on purpose: hot-timer samples
  /// are real time, so they never touch the byte-identical per-sample
  /// telemetry. Arm via armAll() or SCARECROW_HOT_TIMERS=1 and export
  /// with hotTimers().snapshot() (see DESIGN.md §12).
  obs::HotTimerPlane& hotTimers() const noexcept { return hotTimers_; }

  /// Windowed telemetry stream for this box: periodic MetricsSnapshot
  /// deltas on the virtual clock (DESIGN.md §13). Disabled unless
  /// configured (Config::telemetryWindowMs or SCARECROW_TS_WINDOW_MS);
  /// a disabled plane costs one flag test per tick. Survives restore()
  /// like the other telemetry surfaces; EvaluationHarness re-configures
  /// it per run so window ids stay a pure function of the run.
  obs::TimeSeriesPlane& timeSeries() const noexcept { return timeSeries_; }

  /// Wipes both telemetry ledgers: destroys every metric identity
  /// (MetricsRegistry::clear, not reset — zero-valued leftovers from
  /// earlier evaluations would otherwise leak into later snapshots) and
  /// drops the flight-recorder contents, then re-binds the recorder's
  /// dropped-events counter. After this, a snapshot taken at the end of an
  /// evaluation is a pure function of that evaluation alone — the property
  /// that makes a batch worker's per-sample telemetry byte-identical to a
  /// serial run's. Any other cached metric reference is invalidated.
  void resetTelemetry() {
    metrics_.clear();
    flight_.clear();
    flight_.setDroppedCounter(&metrics_.counter("obs.decisions_dropped"));
  }

  /// Milliseconds since simulated boot (includes the aging boot offset).
  std::uint64_t tickCount() const noexcept {
    return sysinfo_.bootOffsetMs + clock_.nowMs();
  }

  /// Emits a kernel trace event attributed to `pid`.
  void emit(std::uint32_t pid, trace::EventKind kind, std::string target,
            std::string detail = {});

  /// Deep Freeze: capture / restore full machine state.
  MachineSnapshot snapshot() const;
  void restore(const MachineSnapshot& snap);

  /// Human-readable machine label for reports ("bare-metal sandbox" etc.).
  std::string label = "machine";

 private:
  Registry registry_;
  Vfs vfs_;
  ProcessTable processes_;
  WindowTable windows_;
  SysInfo sysinfo_;
  Network network_;
  EventLog eventlog_;
  MutexTable mutexes_;
  support::VirtualClock clock_;
  trace::Recorder recorder_;
  // Mutable so const phases (snapshot) can record their own spans.
  mutable obs::MetricsRegistry metrics_;
  mutable obs::HotTimerPlane hotTimers_;
  mutable obs::TimeSeriesPlane timeSeries_;
  obs::FlightRecorder flight_;
};

}  // namespace scarecrow::winsys
