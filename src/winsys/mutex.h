// Named kernel mutexes (infection markers).
//
// Malware commonly creates a named mutex as a single-instance /
// already-infected marker; vaccination defenses (Wichmann et al. [33],
// AutoVac [34] — the related work the paper contrasts itself with) plant
// exactly those markers so the malware believes the machine is already
// compromised and exits. The table stores only existence; ownership and
// waiting semantics are irrelevant to every consumer.
#pragma once

#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace scarecrow::winsys {

class MutexTable {
 public:
  /// Creates the mutex; returns true if it ALREADY existed (the
  /// ERROR_ALREADY_EXISTS signal of CreateMutex).
  bool create(std::string_view name);

  bool exists(std::string_view name) const;
  bool remove(std::string_view name);

  std::vector<std::string> names() const;
  std::size_t size() const noexcept { return mutexes_.size(); }

 private:
  std::set<std::string> mutexes_;  // lower-cased names
};

}  // namespace scarecrow::winsys
