// Hot-path latency bench: the BENCH_hotpath.json producer (DESIGN.md §12).
//
// Self-timed batches over the pipeline's instrumented seams — hot-timer
// scopes (disarmed and armed), the fault-site check, hooked vs unhooked
// API dispatch, deception-DB lookups, IPC send, DLL injection — each
// reduced to exact p50/p95/p99 over per-batch means and written as one
// schema-versioned perf record that scripts/perf_gate.py diffs against the
// committed baseline. The disarmed hot-timer scope carries a hard 2 ns p50
// budget: the "timers ship compiled-in" claim, gated on every run.
//
// On top of the microbenchmarks, one supervised sample runs with the
// machine's hot-timer plane armed, and the resulting `hot.*_ns` histograms
// flow into the same report (bucket-resolution percentiles) plus the
// bench telemetry dumps — proving the wiring end to end.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/collector.h"
#include "core/engine.h"
#include "core/eval.h"
#include "env/base_image.h"
#include "env/environments.h"
#include "faults/fault_injector.h"
#include "hooking/injector.h"
#include "hooking/ipc.h"
#include "malware/joe.h"
#include "obs/hot_timer.h"
#include "winapi/api.h"

using namespace scarecrow;

namespace {

/// Optimization barrier: forces `p`'s pointee to exist in memory and
/// clobbers the compiler's memory model, so batched no-op-looking work
/// (disarmed scope checks) cannot be folded away.
inline void escape(const void* p) { asm volatile("" : : "g"(p) : "memory"); }

/// R per-batch means of M ops each. Batching amortizes the two clock reads
/// so ~1 ns effects resolve; exact percentiles over the batch means come
/// from PerfReport::addSamples.
template <typename Fn>
std::vector<std::uint64_t> measurePerOpNs(std::size_t batches,
                                          std::size_t opsPerBatch, Fn&& fn) {
  for (std::size_t i = 0; i < opsPerBatch; ++i) fn();  // warm-up batch
  std::vector<std::uint64_t> out;
  out.reserve(batches);
  for (std::size_t b = 0; b < batches; ++b) {
    const std::uint64_t start = obs::nowNs();
    for (std::size_t i = 0; i < opsPerBatch; ++i) fn();
    const std::uint64_t end = obs::nowNs();
    out.push_back((end - start) / opsPerBatch);
  }
  return out;
}

std::uint64_t median(std::vector<std::uint64_t> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

struct World {
  World() : machine(env::buildBareMetalSandbox()) {
    proc = &machine->processes().create("C:\\x\\probe.exe", 0, "probe",
                                        machine->sysinfo().processorCount);
    userspace.deadlineMs = UINT64_MAX;
  }
  std::unique_ptr<winsys::Machine> machine;
  winapi::UserSpace userspace;
  winsys::Process* proc = nullptr;
};

void report(bench::Reporter& reporter, const std::string& metric,
            std::vector<std::uint64_t> ns, std::uint64_t p50BudgetNs = 0) {
  std::printf("  %-28s p50 %6llu ns%s\n", metric.c_str(),
              static_cast<unsigned long long>(median(ns)),
              p50BudgetNs != 0
                  ? ("  (budget " + std::to_string(p50BudgetNs) + " ns)")
                        .c_str()
                  : "");
  reporter.addSamples(metric, std::move(ns), "ns", p50BudgetNs);
}

}  // namespace

int main(int argc, char** argv) {
  bench::printHeader("Hot-path latency — BENCH_hotpath.json producer");
  bench::Reporter reporter("bench_hotpath");
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      reporter.setReportPath(argv[++i]);

  constexpr std::size_t kBatches = 48;
  constexpr std::size_t kCheapOps = 8192;  // one-branch checks
  constexpr std::size_t kMidOps = 512;     // full dispatches / lookups

  // --- hot-timer scope, disarmed (the production default) ------------------
  {
    obs::HotTimerPlane plane;
    plane.disarmAll();
    report(reporter, "hot_timer_disarmed_ns",
           measurePerOpNs(kBatches, kCheapOps,
                          [&] {
                            obs::HotScope scope(&plane,
                                                obs::HotSite::kIpcSend);
                            escape(&scope);
                          }),
           /*p50BudgetNs=*/2);
  }

  // --- hot-timer scope, armed (two clock reads + bucket increment) ---------
  {
    obs::HotTimerPlane plane;
    plane.armAll();
    report(reporter, "hot_timer_armed_ns",
           measurePerOpNs(kBatches, kCheapOps, [&] {
             obs::HotScope scope(&plane, obs::HotSite::kIpcSend);
             escape(&scope);
           }));
  }

  // --- fault-site check, disarmed (the idiom the timers mirror) ------------
  {
    faults::FaultInjector injector;  // no plan: every site disarmed
    report(reporter, "fault_site_disarmed_ns",
           measurePerOpNs(kBatches, kCheapOps, [&] {
             const bool fired =
                 injector.shouldFire(faults::FaultSite::kIpcSend);
             escape(&fired);
           }));
  }

  // --- hooked vs unhooked API dispatch --------------------------------------
  {
    World world;
    winapi::Api api(*world.machine, world.userspace, world.proc->pid);
    report(reporter, "hook_dispatch_unhooked_ns",
           measurePerOpNs(kBatches, kMidOps, [&] {
             const bool present = api.IsDebuggerPresent();
             escape(&present);
           }));
  }
  {
    World world;
    core::DeceptionEngine engine({}, core::buildDefaultResourceDb());
    winapi::Api api(*world.machine, world.userspace, world.proc->pid);
    engine.installInto(api);
    report(reporter, "hook_dispatch_hooked_ns",
           measurePerOpNs(kBatches, kMidOps, [&] {
             const bool present = api.IsDebuggerPresent();
             escape(&present);
           }));
  }

  // --- guarded deception-DB lookups (hit and miss) --------------------------
  {
    const core::ResourceDb db = core::buildDefaultResourceDb();
    report(reporter, "db_lookup_hit_ns",
           measurePerOpNs(kBatches, kMidOps, [&] {
             const auto match = db.matchRegistryKey(
                 "SOFTWARE\\Oracle\\VirtualBox Guest Additions");
             escape(&match);
           }));
    report(reporter, "db_lookup_miss_ns",
           measurePerOpNs(kBatches, kMidOps, [&] {
             const auto match = db.matchRegistryKey(
                 "SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion");
             escape(&match);
           }));
  }

  // --- IPC send (DLL side) --------------------------------------------------
  {
    hooking::IpcChannel channel;
    std::vector<std::uint64_t> ns;
    ns.reserve(kBatches);
    for (std::size_t b = 0; b <= kBatches; ++b) {
      const std::uint64_t start = obs::nowNs();
      for (std::size_t i = 0; i < kMidOps; ++i) {
        hooking::IpcMessage m;
        m.kind = hooking::IpcKind::kFingerprintAttempt;
        m.pid = 42;
        m.api = "IsDebuggerPresent";
        m.resource = "PEB.BeingDebugged";
        const std::uint64_t seq = channel.send(std::move(m));
        escape(&seq);
      }
      const std::uint64_t end = obs::nowNs();
      if (b > 0) ns.push_back((end - start) / kMidOps);  // b==0 is warm-up
      channel.drain();  // keep the queue bounded, outside the timed window
    }
    report(reporter, "ipc_send_ns", std::move(ns));
  }

  // --- DLL injection --------------------------------------------------------
  {
    World world;
    core::DeceptionEngine engine({}, core::buildDefaultResourceDb());
    const hooking::DllImage dll = engine.dllImage();
    constexpr std::size_t kInjectBatches = 24;
    constexpr std::size_t kInjectOps = 32;
    std::vector<std::uint64_t> ns;
    ns.reserve(kInjectBatches);
    std::vector<std::uint32_t> pids;
    for (std::size_t b = 0; b <= kInjectBatches; ++b) {
      pids.clear();
      for (std::size_t i = 0; i < kInjectOps; ++i)
        pids.push_back(
            world.machine->processes().create("C:\\x\\t.exe", 0, "t", 4).pid);
      const std::uint64_t start = obs::nowNs();
      for (const std::uint32_t pid : pids) {
        const bool ok =
            hooking::injectDll(*world.machine, world.userspace, pid, dll);
        escape(&ok);
      }
      const std::uint64_t end = obs::nowNs();
      if (b > 0) ns.push_back((end - start) / kInjectOps);
    }
    report(reporter, "inject_ns", std::move(ns));
  }

  // --- armed-plane supervised run: the end-to-end wiring proof --------------
  {
    auto machine = env::buildBareMetalSandbox();
    machine->hotTimers().armAll();
    malware::ProgramRegistry registry;
    malware::registerJoeSamples(registry);
    core::EvaluationHarness harness(*machine);
    // Two samples cover all five sites: 9fac72a fingerprints via hooked
    // scalar APIs (dispatch, IPC, inject), 9437eab probes VM registry
    // values and driver files (guarded ResourceDb lookups).
    for (const char* sampleId : {"9fac72a", "9437eab"})
      harness.evaluate({.sampleId = sampleId,
                        .imagePath = std::string("C:\\submissions\\") +
                                     sampleId + ".exe",
                        .factory = registry.factory()});
    const obs::MetricsSnapshot hot = machine->hotTimers().snapshot();
    std::printf("\nsupervised runs (9fac72a, 9437eab) with hot timers armed:\n");
    for (const obs::HistogramSample& histogram : hot.histograms) {
      std::printf("  %-28s count %6llu  p50 %6llu ns  p99 %6llu ns\n",
                  histogram.name.c_str(),
                  static_cast<unsigned long long>(histogram.count),
                  static_cast<unsigned long long>(histogram.p50),
                  static_cast<unsigned long long>(histogram.p99));
      reporter.addHistogram(histogram);
    }
    // Every instrumented seam must have fired at least once during a full
    // supervised evaluation — the wiring check the exporters then surface.
    std::printf("  all %zu instrumented sites recorded samples: %s\n",
                obs::kHotSiteCount,
                bench::okMark(hot.histograms.size() == obs::kHotSiteCount));
    reporter.addSnapshot(hot);
  }

  std::printf("\n");
  return reporter.finish();
}
