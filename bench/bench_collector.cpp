// Section II-C reproduction: deceptive-resource collection from public
// sandboxes.
//
// A crawler binary is "submitted" to the VirusTotal and Malwr sandbox
// images, inventories files/processes/registry from user level, and the
// union-minus-clean diff is merged into the deception database — the paper
// reports 17,540 files, 24 processes and 1,457 registry entries. We also
// demonstrate the MalGene continuous-learning feed: an evasion signature
// extracted from a trace pair becomes a new deceptive resource.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/collector.h"
#include "env/base_image.h"
#include "env/environments.h"
#include "trace/malgene.h"

using namespace scarecrow;

int main() {
  bench::printHeader(
      "Section II-C — public-sandbox resource collection (crawler)");

  auto vt = env::buildPublicSandbox(env::PublicSandboxKind::kVirusTotal);
  auto malwr = env::buildPublicSandbox(env::PublicSandboxKind::kMalwr);

  // Clean bare-metal reference: a stock install, no sandbox tooling.
  winsys::Machine clean;
  env::installBaseImage(clean, {});

  const auto vtInventory = core::SandboxResourceCollector::crawl(*vt);
  const auto malwrInventory = core::SandboxResourceCollector::crawl(*malwr);
  const auto cleanInventory = core::SandboxResourceCollector::crawl(clean);

  std::printf("VirusTotal image:  %6zu files %3zu processes %5zu reg keys\n",
              vtInventory.files.size(), vtInventory.processes.size(),
              vtInventory.registryKeys.size());
  std::printf("Malwr image:       %6zu files %3zu processes %5zu reg keys\n",
              malwrInventory.files.size(), malwrInventory.processes.size(),
              malwrInventory.registryKeys.size());
  std::printf("clean reference:   %6zu files %3zu processes %5zu reg keys\n",
              cleanInventory.files.size(), cleanInventory.processes.size(),
              cleanInventory.registryKeys.size());

  const core::CrawlDiff diff = core::SandboxResourceCollector::diff(
      {vtInventory, malwrInventory}, cleanInventory);

  std::printf("\nsandbox-unique resources (union \\ clean):\n");
  std::printf("  files:            %6zu  (paper: 17540)  %s\n",
              diff.files.size(), bench::okMark(diff.files.size() == 17'540));
  std::printf("  processes:        %6zu  (paper:    24)  %s\n",
              diff.processes.size(),
              bench::okMark(diff.processes.size() == 24));
  std::printf("  registry entries: %6zu  (paper:  1457)  %s\n",
              diff.registryKeys.size(),
              bench::okMark(diff.registryKeys.size() == 1'457));

  core::ResourceDb db = core::buildDefaultResourceDb();
  const std::size_t before = db.fileCount();
  core::SandboxResourceCollector::merge(db, diff);
  std::printf("\nmerged into deception DB: %zu crawled resources "
              "(files %zu -> %zu)\n",
              db.crawledCount(), before, db.fileCount());

  // MalGene feed: a synthetic trace pair deviating right after a registry
  // probe yields a new deceptive key.
  trace::Trace a, b;
  auto push = [](trace::Trace& t, trace::EventKind kind,
                 const std::string& target) {
    trace::Event e;
    e.kind = kind;
    e.target = target;
    t.events.push_back(e);
  };
  push(a, trace::EventKind::kRegOpenKey, "SOFTWARE\\NewVendor\\NewSandbox");
  push(a, trace::EventKind::kProcessExit, "sample.exe");
  push(b, trace::EventKind::kRegOpenKey, "SOFTWARE\\NewVendor\\NewSandbox");
  push(b, trace::EventKind::kFileWrite, "C:\\evil.exe");
  const trace::EvasionSignature signature =
      trace::extractEvasionSignature(a, b);
  const bool merged =
      core::SandboxResourceCollector::mergeEvasionSignature(db, signature);
  std::printf("MalGene feed: signature '%s' merged=%s  %s\n",
              signature.probedResource.c_str(), merged ? "Y" : "N",
              bench::okMark(merged &&
                            db.matchRegistryKey(
                                  "SOFTWARE\\NewVendor\\NewSandbox")
                                .has_value()));

  bench::Reporter reporter("bench_collector");
  reporter.addValue("collector.unique_files", diff.files.size());
  reporter.addValue("collector.unique_processes", diff.processes.size());
  reporter.addValue("collector.unique_registry_keys",
                    diff.registryKeys.size());
  reporter.addValue("collector.crawled_merged", db.crawledCount());
  return reporter.finish();
}
