// Ablation benches for the design choices called out in DESIGN.md.
//
// A1a — resource-category contribution: re-run the full MalGene corpus
//       with only one deception category enabled at a time. The paper's
//       Pareto argument (a small subset of resources deactivates most
//       samples) predicts the debugger category alone recovers most of the
//       effectiveness (IsDebuggerPresent dominates the corpus).
// A1b — conflict-aware profiles (Section VI-B, future work, implemented):
//       malware cross-checking mutually exclusive VM vendors detects plain
//       Scarecrow but not the conflict-aware variant.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/batch.h"
#include "core/profiles.h"
#include "env/environments.h"
#include "malware/corpus.h"
#include "support/strings.h"
#include "winapi/api.h"
#include "winapi/runner.h"

using namespace scarecrow;

namespace {

std::size_t deactivatedUnder(core::BatchEvaluator& batch,
                             const malware::ProgramRegistry& registry,
                             const std::vector<const malware::SampleSpec*>&
                                 specs,
                             const core::Config& config) {
  std::vector<core::EvalRequest> requests;
  requests.reserve(specs.size());
  for (const malware::SampleSpec* spec : specs)
    requests.push_back({.sampleId = spec->id,
                        .imagePath = "C:\\submissions\\" + spec->imageName,
                        .factory = registry.factory(),
                        .config = config});
  std::size_t count = 0;
  for (const core::BatchResult& result : batch.evaluateAll(requests))
    if (result.ok() && result.outcome.verdict.deactivated) ++count;
  return count;
}

core::Config onlyCategory(bool software, bool hardware, bool network,
                          bool debugger, bool wearTear) {
  core::Config config;
  config.softwareResources = software;
  config.hardwareResources = hardware;
  config.networkResources = network;
  config.debuggerDeception = debugger;
  config.wearTearExtension = wearTear;
  return config;
}

/// Section VI-B detector: consistency check across VM vendors — a machine
/// claiming to be a VMware guest AND a VirtualBox guest must be deceptive.
class ConflictChecker : public winapi::GuestProgram {
 public:
  struct Result {
    bool scarecrowDetected = false;
    bool evaded = false;
  };
  explicit ConflictChecker(Result& out) : out_(out) {}

  void run(winapi::Api& api) override {
    const bool vmware =
        winapi::ok(api.NtOpenKeyEx("SOFTWARE\\VMware, Inc.\\VMware Tools"));
    const bool vbox = winapi::ok(
        api.RegOpenKeyEx("SOFTWARE\\Oracle\\VirtualBox Guest Additions"));
    if (vmware && vbox) {
      // Impossible combination: the "sandbox" is a deception engine;
      // proceed with the payload regardless.
      out_.scarecrowDetected = true;
      api.WriteFileA("C:\\Users\\Public\\payload.dat", "detonated");
      api.ExitProcess(0);
    }
    if (vmware || vbox) {
      out_.evaded = true;  // ordinary evasive logic: looks like a VM
      api.ExitProcess(0);
    }
    api.WriteFileA("C:\\Users\\Public\\payload.dat", "detonated");
    api.ExitProcess(0);
  }

 private:
  Result& out_;
};

}  // namespace

int main() {
  bench::printHeader("Ablation A1a — per-category deactivation on M_MG");

  auto machine = env::buildBareMetalSandbox();
  malware::ProgramRegistry registry;
  const auto specs = malware::generateMalgeneCorpus(registry);
  // The MalGene corpus sweeps (A1a/A1d/A1c) run on the parallel engine;
  // A1b below drives a Controller directly on `machine`.
  core::BatchEvaluator batch([] { return env::buildBareMetalSandbox(); });

  struct Row {
    const char* label;
    core::Config config;
  };
  const Row rows[] = {
      {"full engine", onlyCategory(true, true, true, true, true)},
      {"software only", onlyCategory(true, false, false, false, false)},
      {"hardware only", onlyCategory(false, true, false, false, false)},
      {"network only", onlyCategory(false, false, true, false, false)},
      {"debugger only", onlyCategory(false, false, false, true, false)},
      {"wear-tear only", onlyCategory(false, false, false, false, true)},
      {"no debugger", onlyCategory(true, true, true, false, true)},
  };

  std::size_t fullCount = 0;
  std::size_t debuggerOnly = 0;
  for (const Row& row : rows) {
    const std::size_t count =
        deactivatedUnder(batch, registry, specs, row.config);
    if (std::string(row.label) == "full engine") fullCount = count;
    if (std::string(row.label) == "debugger only") debuggerOnly = count;
    std::printf("%-15s deactivated %4zu / %zu  (%.2f%%)\n", row.label, count,
                specs.size(),
                100.0 * static_cast<double>(count) /
                    static_cast<double>(specs.size()));
  }
  std::printf(
      "\nPareto check: debugger category alone recovers %.1f%% of the full "
      "engine's deactivations  %s\n",
      100.0 * static_cast<double>(debuggerOnly) /
          static_cast<double>(fullCount),
      bench::okMark(fullCount == 944 && debuggerOnly * 100 >= fullCount * 70));

  bench::printHeader(
      "Ablation A1d — coherent single-sandbox profiles (Section VI-B "
      "\"multiple profiles\") on M_MG");
  for (core::SandboxProfile profile : core::kAllSandboxProfiles) {
    batch.setResourceDbFactory(
        [profile] { return core::buildProfileDb(profile); });
    const std::size_t count =
        deactivatedUnder(batch, registry, specs, core::Config{});
    std::printf(
        "%-20s deactivated %4zu / %zu  (%.2f%%)  [vendor-consistent: %s]\n",
        core::sandboxProfileName(profile), count, specs.size(),
        100.0 * static_cast<double>(count) /
            static_cast<double>(specs.size()),
        core::vendorConsistent(core::buildProfileDb(profile)) ? "yes" : "no");
  }
  batch.setResourceDbFactory({});
  std::printf(
      "(each coherent profile trades a few percentage points of coverage "
      "for surviving cross-vendor consistency checks)\n");

  bench::printHeader(
      "Ablation A1c — kernel/hypervisor extension (Section VI-A future "
      "work, implemented)");
  {
    core::Config kernelOn;
    kernelOn.kernel.enabled = true;
    const std::size_t withKernel =
        deactivatedUnder(batch, registry, specs, kernelOn);
    std::printf(
        "full engine + kernel ext: deactivated %4zu / %zu  (%.2f%%)\n",
        withKernel, specs.size(),
        100.0 * static_cast<double>(withKernel) /
            static_cast<double>(specs.size()));
    // The unhookable PEB/RDTSC evaders (90 samples) flip; only the 20
    // Selfdel indeterminates remain out of reach.
    std::printf(
        "gap closed vs user-level engine: +%zu samples (paper's documented "
        "blind spots)  %s\n",
        withKernel - fullCount,
        bench::okMark(withKernel == specs.size() - 20));
  }

  bench::printHeader(
      "Ablation A1b — conflict-aware profiles vs cross-vendor checking "
      "malware (Section VI-B)");

  for (const bool conflictAware : {false, true}) {
    ConflictChecker::Result result;
    core::Config config;
    config.conflictAwareProfiles = conflictAware;

    const winsys::MachineSnapshot snapshot = machine->snapshot();
    winapi::UserSpace userspace;
    userspace.programFactory =
        [&result](const std::string& image,
                  const std::string&) -> std::unique_ptr<winapi::GuestProgram> {
      if (!support::iendsWith(image, "conflict.exe")) return nullptr;
      return std::make_unique<ConflictChecker>(result);
    };
    core::DeceptionEngine engine(config, core::buildDefaultResourceDb());
    core::Controller controller(*machine, userspace, engine);
    controller.launch("C:\\submissions\\conflict.exe");
    winapi::Runner runner(*machine, userspace);
    runner.drain({});
    machine->restore(snapshot);

    const bool ok = conflictAware ? (!result.scarecrowDetected && result.evaded)
                                  : result.scarecrowDetected;
    std::printf(
        "conflict-aware=%d -> scarecrow detected=%s, malware evaded=%s  %s\n",
        conflictAware ? 1 : 0, result.scarecrowDetected ? "Y" : "N",
        result.evaded ? "Y" : "N", bench::okMark(ok));
  }

  bench::Reporter reporter("bench_ablation");
  reporter.addValue("ablation.full_engine_deactivated", fullCount);
  reporter.addValue("ablation.mismatches", bench::g_mismatches);
  return reporter.finish();
}
