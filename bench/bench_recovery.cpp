// Crash-safety bench: the BENCH_recovery.json producer (DESIGN.md §16).
//
// Three phases against the crash-safe EvalService:
//
//   A. Kill-and-resume zero loss. A ledgered corpus sweep is killed
//      mid-flight; a fresh service replays the admission journal and
//      finishes the residue. The gate-facing numbers are exact: the final
//      ledger carries one run record per admitted request — zero tickets
//      lost, zero duplicated — and the replay latency (journal read +
//      residue resubmission) lands as a perf metric.
//
//   B. Journal replay throughput. replayAdmissionJournal() over a
//      synthetic journal (admits + a half-complete run suffix), timed
//      per full replay — the pure recovery-path cost with no service or
//      disk in the loop.
//
//   C. Supervision determinism. The scripted breaker choreography
//      (threshold trip, re-route, half-open probe success, probe
//      failure) and the quarantine path produce exact counter values —
//      3 breaker trips, 1 shard-unavailable reject, 1 quarantine
//      reject — that the perf gate holds at zero drift.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/eval.h"
#include "core/service.h"
#include "env/environments.h"
#include "obs/ledger.h"
#include "winapi/api.h"
#include "winapi/guest.h"

using namespace scarecrow;

namespace {

/// Exits immediately: the cheapest valid sample, so the bench measures
/// journal and recovery machinery, not sample logic.
class TrivialProgram : public winapi::GuestProgram {
 public:
  void run(winapi::Api& api) override { api.ExitProcess(0); }
};

/// Throws for "poison" images (phase C's deterministic failure source).
winapi::ProgramFactory poisonAwareFactory() {
  return [](const std::string& image,
            const std::string&) -> std::unique_ptr<winapi::GuestProgram> {
    if (image.find("poison") != std::string::npos)
      throw std::runtime_error("poisoned sample");
    return std::make_unique<TrivialProgram>();
  };
}

core::EvalRequest plainRequest(std::string sampleId) {
  return {.sampleId = sampleId,
          .imagePath = "C:\\submissions\\" + sampleId + ".exe",
          .factory = poisonAwareFactory()};
}

/// First id of the form `<prefix><n>` the service routes to `shard`.
std::string idOnShard(const core::EvalService& service,
                      const std::string& prefix, std::size_t shard) {
  for (int i = 0;; ++i) {
    std::string id = prefix + std::to_string(i);
    if (service.shardFor(id) == shard) return id;
  }
}

void removeGenerations(const std::string& path) {
  std::remove(path.c_str());
  for (int g = 1; g <= 8; ++g)
    std::remove((path + "." + std::to_string(g)).c_str());
}

void runKillResumePhase(bench::Reporter& reporter, std::size_t samples) {
  bench::printHeader("Phase A: kill-and-resume zero loss, " +
                     std::to_string(samples) + " samples across 2 shards");
  const std::string path = "bench_recovery_ledger.jsonl";
  removeGenerations(path);

  core::ServiceOptions options;
  options.shardCount = 2;
  options.workersPerShard = 1;
  options.telemetry.ledgerPath = path;

  // Life 1: admit everything, complete a quarter, then die mid-corpus.
  const std::size_t killAfter = samples / 4;
  {
    core::EvalService service([] { return env::buildBareMetalSandbox(); },
                              options);
    std::vector<core::Ticket> tickets;
    tickets.reserve(samples);
    for (std::size_t i = 0; i < samples; ++i)
      tickets.push_back(
          service.submit(plainRequest("s-" + std::to_string(i))));
    for (std::size_t i = 0; i < killAfter; ++i) service.wait(tickets[i]);
    service.kill();
  }

  // Life 2: replay the journal, resubmit the residue, finish the corpus.
  std::uint64_t replayNs = 0;
  core::RecoveryReport report;
  {
    core::EvalService service([] { return env::buildBareMetalSandbox(); },
                              options);
    const std::uint64_t start = bench::nowMicros();
    report = service.recover(
        path, [](const std::string& sampleId, const std::string&) {
          return plainRequest(sampleId);
        });
    replayNs = (bench::nowMicros() - start) * 1000;
    for (const auto& resubmission : report.resubmitted)
      service.wait(resubmission.ticket);
    service.drain();
  }

  // The zero-loss / zero-duplicate audit, straight off the disk: every
  // admitted request has exactly one run record across both lives.
  std::map<std::uint64_t, std::size_t> admits, runs;
  for (const obs::LedgerRecord& record : obs::readLedgerGenerations(path)) {
    if (record.kind == obs::LedgerRecordKind::kAdmit)
      ++admits[record.requestIndex];
    else if (record.kind == obs::LedgerRecordKind::kRun)
      ++runs[record.requestIndex];
  }
  std::uint64_t duplicated = 0;
  for (const auto& [index, count] : runs)
    if (count > 1) duplicated += count - 1;
  const std::uint64_t lost = samples - runs.size();

  std::printf("%-44s %8llu  [%s]\n", "requests journaled",
              static_cast<unsigned long long>(report.journaled),
              bench::okMark(report.journaled == samples &&
                            admits.size() == samples));
  std::printf("%-44s %8llu\n", "completed before kill",
              static_cast<unsigned long long>(report.completed.size()));
  std::printf("%-44s %8llu\n", "residue resubmitted",
              static_cast<unsigned long long>(report.resubmitted.size()));
  std::printf("%-44s %8llu  [%s]\n", "tickets lost",
              static_cast<unsigned long long>(lost),
              bench::okMark(lost == 0));
  std::printf("%-44s %8llu  [%s]\n", "tickets duplicated",
              static_cast<unsigned long long>(duplicated),
              bench::okMark(duplicated == 0));
  std::printf("%-44s %8.2f\n", "recovery replay ms",
              static_cast<double>(replayNs) / 1e6);

  reporter.addValue("tickets_lost", lost);
  reporter.addValue("tickets_duplicated", duplicated);
  // Normalized per journaled request, so the gated number is invariant
  // under --smoke / --samples corpus-size changes.
  reporter.addValue("recovery_replay_per_request_ns",
                    report.journaled != 0 ? replayNs / report.journaled : 0,
                    "ns");
  reporter.gauges().gauge("recovery.journaled")
      .set(static_cast<std::int64_t>(report.journaled));
  removeGenerations(path);
}

void runReplayThroughputPhase(bench::Reporter& reporter,
                              std::size_t records) {
  bench::printHeader("Phase B: journal replay throughput, " +
                     std::to_string(records) + " admits (half completed)");
  std::vector<obs::LedgerRecord> journal;
  journal.reserve(records + records / 2);
  for (std::size_t i = 0; i < records; ++i) {
    obs::LedgerRecord admit;
    admit.kind = obs::LedgerRecordKind::kAdmit;
    admit.requestIndex = i;
    admit.sampleId = "s-" + std::to_string(i);
    journal.push_back(admit);
  }
  for (std::size_t i = 0; i < records / 2; ++i) {
    obs::LedgerRecord run;
    run.kind = obs::LedgerRecordKind::kRun;
    run.requestIndex = i;
    run.sampleId = "s-" + std::to_string(i);
    run.status = "ok";
    journal.push_back(run);
  }

  constexpr std::size_t kIterations = 20;
  std::vector<std::uint64_t> perRecordNs;
  perRecordNs.reserve(kIterations);
  bool consistent = true;
  for (std::size_t i = 0; i < kIterations; ++i) {
    const std::uint64_t start = bench::nowMicros();
    const core::RecoveryReport report =
        core::EvalService::replayAdmissionJournal(journal);
    // Per journal record, so the distribution survives --samples changes.
    perRecordNs.push_back((bench::nowMicros() - start) * 1000 /
                          journal.size());
    consistent = consistent && report.journaled == records &&
                 report.completed.size() == records / 2 &&
                 report.residue.size() == records - records / 2;
  }
  std::printf("%-44s %8s  [%s]\n", "replay partition (completed/residue)",
              consistent ? "exact" : "DRIFT", bench::okMark(consistent));
  reporter.addSamples("journal_replay_per_record_ns", std::move(perRecordNs));
}

void runSupervisionPhase(bench::Reporter& reporter) {
  bench::printHeader(
      "Phase C: supervision determinism (breaker + quarantine)");

  // The scripted breaker choreography from the recovery suite: trip on
  // threshold, re-route, reclose through a successful probe, trip again,
  // reopen on a failed probe — exactly three trips, every run.
  std::uint64_t breakerTrips = 0;
  {
    core::ServiceOptions options;
    options.shardCount = 2;
    options.workersPerShard = 1;
    options.maxAttempts = 1;
    options.breakerThreshold = 2;
    options.breakerCooldown = 2;
    core::EvalService service([] { return env::buildBareMetalSandbox(); },
                              options);
    const auto runOne = [&](const std::string& id) {
      service.wait(service.submit(plainRequest(id)));
    };
    runOne(idOnShard(service, "poison-a", 0));
    runOne(idOnShard(service, "poison-b", 0));  // trip 1 (threshold)
    runOne(idOnShard(service, "ok-a", 0));      // re-routed to shard 1
    runOne(idOnShard(service, "ok-b", 1));
    runOne(idOnShard(service, "ok-c", 0));      // successful probe: close
    runOne(idOnShard(service, "poison-c", 0));
    runOne(idOnShard(service, "poison-d", 0));  // trip 2 (threshold)
    runOne(idOnShard(service, "ok-d", 1));
    runOne(idOnShard(service, "ok-e", 1));
    runOne(idOnShard(service, "poison-e", 0));  // trip 3 (probe failed)
    breakerTrips = service.stats().breakerTrips;
  }

  // Single shard, open breaker, cooldown out of reach: the next
  // submission must be the one-and-only shard-unavailable reject.
  std::uint64_t unavailableRejects = 0;
  {
    core::ServiceOptions options;
    options.shardCount = 1;
    options.workersPerShard = 1;
    options.maxAttempts = 1;
    options.breakerThreshold = 1;
    options.breakerCooldown = 100;
    core::EvalService service([] { return env::buildBareMetalSandbox(); },
                              options);
    service.wait(service.submit(plainRequest("poison-0")));
    service.submit(plainRequest("ok-0"));
    unavailableRejects = service.stats().rejectedShardUnavailable;
  }

  // Quarantine: two exhausted runs trip the threshold, the third
  // submission is rejected at admission.
  std::uint64_t quarantineRejects = 0, quarantined = 0;
  {
    core::ServiceOptions options;
    options.shardCount = 1;
    options.workersPerShard = 1;
    options.maxAttempts = 1;
    options.quarantineThreshold = 2;
    core::EvalService service([] { return env::buildBareMetalSandbox(); },
                              options);
    service.wait(service.submit(plainRequest("poison-0")));
    service.wait(service.submit(plainRequest("poison-0")));
    service.submit(plainRequest("poison-0"));
    const core::ServiceStats stats = service.stats();
    quarantineRejects = stats.rejectedQuarantined;
    quarantined = stats.quarantinedSamples;
  }

  std::printf("%-44s %8llu  [%s]\n", "breaker trips (scripted choreography)",
              static_cast<unsigned long long>(breakerTrips),
              bench::okMark(breakerTrips == 3));
  std::printf("%-44s %8llu  [%s]\n", "shard-unavailable rejects",
              static_cast<unsigned long long>(unavailableRejects),
              bench::okMark(unavailableRejects == 1));
  std::printf("%-44s %8llu  [%s]\n", "samples quarantined",
              static_cast<unsigned long long>(quarantined),
              bench::okMark(quarantined == 1));
  std::printf("%-44s %8llu  [%s]\n", "quarantine rejects",
              static_cast<unsigned long long>(quarantineRejects),
              bench::okMark(quarantineRejects == 1));

  reporter.addValue("breaker_trips", breakerTrips);
  reporter.addValue("shard_unavailable_rejects", unavailableRejects);
  reporter.addValue("quarantine_rejects", quarantineRejects);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("bench_recovery");
  std::size_t samples = 8'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) samples = 800;
    if (std::strcmp(argv[i], "--samples") == 0 && i + 1 < argc)
      samples = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      reporter.setReportPath(argv[++i]);
  }
  bench::printHeader("Scarecrow crash-safe evaluation service bench");
  std::printf("kill-and-resume corpus: %llu samples\n",
              static_cast<unsigned long long>(samples));

  runKillResumePhase(reporter, samples);
  runReplayThroughputPhase(reporter, samples * 4);
  runSupervisionPhase(reporter);
  return reporter.finish();
}
