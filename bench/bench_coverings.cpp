// Covering-routed sweep bench: the BENCH_coverings.json producer
// (DESIGN.md §15).
//
// Three phases against the set-cover planner and the resident service:
//
//   A. Plan determinism. The default universe is planned twice from
//      scratch; the two coveringJson renderings must be byte-identical,
//      and the plan shape (covering count, residue count, covered
//      techniques, covering-dead profiles) lands in the perf record as
//      exact counts the gate holds at zero drift.
//
//   B. Sweep throughput. The Table I corpus through one EvalService
//      configuration, both ways: the full universe sweep (every sample
//      under every universe profile) and the covering-routed sweep (each
//      known sample exactly once, under its covering). Evaluation counts
//      are exact (|samples| x |universe| vs |samples|); wall-clock
//      speedup is reported as a telemetry gauge plus an okMark >= 2.0
//      assertion, never a gated perf metric (faster hardware must not
//      fail the gate). Per-evaluation wall latencies of the routed side
//      land in the perf record.
//
//   C. Byte parity. Every routed run's verdict + telemetry bytes must
//      equal the full sweep's entry for the same (profile, sample), and
//      the routed "deactivated" aggregate must equal the full sweep's
//      "deactivated under any profile" — the proof that routing drops
//      work, not information. Mismatch counts are gated at zero.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/coverings.h"
#include "bench/bench_common.h"
#include "core/eval.h"
#include "core/service.h"
#include "env/environments.h"
#include "malware/joe.h"
#include "malware/sample.h"

using namespace scarecrow;

namespace {

/// Canonical byte rendering of everything a verdict decides, plus the
/// (documented byte-stable) telemetry JSON — the parity unit, shared
/// shape with tests/coverings_drift_test.cpp.
std::string verdictBytes(const core::EvalOutcome& outcome) {
  const trace::DeactivationVerdict& verdict = outcome.verdict;
  std::string out;
  out += verdict.deactivated ? "deactivated;" : "active;";
  out += std::string(trace::deactivationReasonName(verdict.reason)) + ";";
  out += "trigger=" + verdict.firstTrigger + ";";
  out += "spawns=" + std::to_string(verdict.selfSpawnsWithScarecrow) + ";";
  out += "suppressed=";
  for (const std::string& activity : verdict.suppressedActivities)
    out += activity + ",";
  out += ";leaked=";
  for (const std::string& activity : verdict.leakedActivities)
    out += activity + ",";
  out += ";" + outcome.telemetryJson;
  return out;
}

core::ServiceOptions sweepServiceOptions() {
  core::ServiceOptions options;
  options.shardCount = 2;
  options.workersPerShard = 2;
  return options;
}

std::unique_ptr<winsys::Machine> machineFactory() {
  return env::buildBareMetalSandbox();
}

analysis::CoveringPlan runPlanPhase(bench::Reporter& reporter) {
  bench::printHeader("Phase A: plan determinism over the default universe");

  const auto universe = analysis::defaultProfileUniverse();
  const analysis::CoveringPlan plan = analysis::planCoverings(universe);
  const analysis::CoveringPlan replan =
      analysis::planCoverings(analysis::defaultProfileUniverse());

  const std::string json = analysis::coveringJson(plan);
  const bool identical = json == analysis::coveringJson(replan);

  std::printf("%-44s %8s\n", "plan", plan.summary().c_str());
  for (const analysis::CoveringPick& pick : plan.coverings)
    std::printf("  covering[%zu] %-28s newly covers %zu\n",
                static_cast<std::size_t>(&pick - plan.coverings.data()),
                pick.profile.c_str(), pick.covered.size());
  std::printf("%-44s %8zu  [%s]\n", "plan JSON bytes (two fresh plans)",
              json.size(), bench::okMark(identical));

  reporter.addValue("covering_count", plan.coverings.size());
  reporter.addValue("residue_count", plan.residue.size());
  reporter.addValue("covered_techniques", plan.coveredCount);
  reporter.addValue("universe_profiles", plan.universeSize);
  reporter.addValue("covering_dead_profiles", plan.unusedProfiles.size());
  return plan;
}

struct SweepTimings {
  std::uint64_t fullWallMicros = 0;
  std::uint64_t routedWallMicros = 0;
  std::size_t fullEvaluations = 0;
  std::size_t routedEvaluations = 0;
};

void runSweepPhases(bench::Reporter& reporter, std::size_t repeats) {
  bench::printHeader(
      "Phase B: Table I sweep throughput, full universe vs covering-routed (" +
      std::to_string(repeats) + " repeats)");

  auto universe = analysis::defaultProfileUniverse();
  auto plan = analysis::planCoverings(universe);
  const analysis::CoveringRouter router(universe, plan);

  malware::ProgramRegistry registry;
  const auto expected = malware::registerJoeSamples(registry);
  std::vector<core::EvalRequest> requests;
  std::size_t expectDeactivated = 0;
  for (const malware::JoeExpectation& row : expected) {
    core::EvalRequest request;
    request.sampleId = row.idPrefix;
    request.imagePath = "C:\\submissions\\" + row.idPrefix + ".exe";
    request.factory = registry.factory();
    requests.push_back(std::move(request));
    if (row.deactivated) ++expectDeactivated;
  }

  SweepTimings totals;
  std::vector<std::uint64_t> routedEvalNs;
  // Last repeat's data feeds phase C: full-sweep bytes keyed
  // (profile, sample), plus the routed outcomes to compare against.
  std::map<std::pair<std::string, std::string>, std::string> fullBytes;
  std::map<std::string, bool> fullDeactivatedAny;
  std::vector<analysis::RoutedOutcome> routed;

  for (std::size_t pass = 0; pass < repeats; ++pass) {
    fullBytes.clear();
    fullDeactivatedAny.clear();
    {
      core::EvalService service(machineFactory, sweepServiceOptions());
      std::vector<std::pair<std::pair<std::string, std::string>, core::Ticket>>
          tickets;
      const std::uint64_t start = bench::nowMicros();
      for (const analysis::CoveringProfile& profile : universe)
        for (const core::EvalRequest& request : requests)
          tickets.push_back({{profile.name, request.sampleId},
                             service.submit(
                                 analysis::stampProfile(profile, request))});
      for (auto& [key, ticket] : tickets) {
        const auto result = service.wait(ticket);
        if (!result.has_value() || !result->ok()) continue;
        fullBytes[key] = verdictBytes(result->outcome);
        fullDeactivatedAny[key.second] =
            fullDeactivatedAny[key.second] ||
            result->outcome.verdict.deactivated;
      }
      totals.fullWallMicros += bench::nowMicros() - start;
      totals.fullEvaluations += tickets.size();
    }
    {
      core::EvalService service(machineFactory, sweepServiceOptions());
      const std::uint64_t start = bench::nowMicros();
      routed = analysis::runCoveringSweep(
          service, router, requests,
          [&registry](const core::EvalRequest& request) {
            return registry.findSpec(request.sampleId + ".exe");
          });
      totals.routedWallMicros += bench::nowMicros() - start;
      for (const analysis::RoutedOutcome& outcome : routed) {
        totals.routedEvaluations += outcome.runs.size();
        for (const analysis::RoutedRun& run : outcome.runs)
          routedEvalNs.push_back(run.wallMicros * 1000);
      }
    }
  }

  const double speedup =
      totals.routedWallMicros > 0
          ? static_cast<double>(totals.fullWallMicros) /
                static_cast<double>(totals.routedWallMicros)
          : 0.0;
  const std::size_t fullPerPass = totals.fullEvaluations / repeats;
  const std::size_t routedPerPass = totals.routedEvaluations / repeats;

  std::printf("%-44s %8zu  [%s]\n", "full-sweep evaluations / pass",
              fullPerPass,
              bench::okMark(fullPerPass ==
                            universe.size() * requests.size()));
  std::printf("%-44s %8zu  [%s]\n", "routed evaluations / pass",
              routedPerPass, bench::okMark(routedPerPass == requests.size()));
  std::printf("%-44s %8.1f\n", "full-sweep wall ms (total)",
              static_cast<double>(totals.fullWallMicros) / 1e3);
  std::printf("%-44s %8.1f\n", "routed wall ms (total)",
              static_cast<double>(totals.routedWallMicros) / 1e3);
  std::printf("%-44s %7.1fx  [%s]\n", "covering-routed speedup (>= 2.0x)",
              speedup, bench::okMark(speedup >= 2.0));

  reporter.addValue("full_sweep_evaluations", fullPerPass);
  reporter.addValue("routed_evaluations", routedPerPass);
  reporter.addSamples("routed_eval_wall_ns", std::move(routedEvalNs));
  reporter.gauges().gauge("coverings.speedup_x10")
      .set(static_cast<std::int64_t>(speedup * 10.0));
  reporter.gauges().gauge("coverings.universe_profiles")
      .set(static_cast<std::int64_t>(universe.size()));

  bench::printHeader("Phase C: byte parity, routed vs full-sweep verdicts");
  std::size_t byteMismatches = 0, aggregateMismatches = 0;
  std::size_t routedDeactivated = 0, broadcasts = 0;
  for (std::size_t i = 0; i < routed.size(); ++i) {
    const analysis::RoutedOutcome& outcome = routed[i];
    if (outcome.broadcast) ++broadcasts;
    if (outcome.deactivated()) ++routedDeactivated;
    if (outcome.deactivated() != fullDeactivatedAny[requests[i].sampleId])
      ++aggregateMismatches;
    for (const analysis::RoutedRun& run : outcome.runs) {
      if (run.status != core::BatchStatus::kOk) {
        ++byteMismatches;
        continue;
      }
      const auto it = fullBytes.find({run.profile, requests[i].sampleId});
      if (it == fullBytes.end() || verdictBytes(run.outcome) != it->second)
        ++byteMismatches;
    }
  }
  std::printf("%-44s %8zu  [%s]\n", "verdict+telemetry byte mismatches",
              byteMismatches, bench::okMark(byteMismatches == 0));
  std::printf("%-44s %8zu  [%s]\n", "deactivated-aggregate mismatches",
              aggregateMismatches, bench::okMark(aggregateMismatches == 0));
  std::printf("%-44s %8zu  [%s]\n", "samples deactivated (Table I: 12/13)",
              routedDeactivated,
              bench::okMark(routedDeactivated == expectDeactivated));
  std::printf("%-44s %8zu  [%s]\n", "broadcast fallbacks (known corpus)",
              broadcasts, bench::okMark(broadcasts == 0));

  reporter.addValue("parity_byte_mismatches", byteMismatches);
  reporter.addValue("parity_aggregate_mismatches", aggregateMismatches);
  reporter.addValue("routed_deactivated", routedDeactivated);
  reporter.addValue("broadcast_fallbacks", broadcasts);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("bench_coverings");
  std::size_t repeats = 5;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) repeats = 2;
    if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc)
      repeats = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      reporter.setReportPath(argv[++i]);
  }
  if (repeats == 0) repeats = 1;
  bench::printHeader("Scarecrow covering-routed sweep bench");
  std::printf("sweep repeats: %zu\n", repeats);

  const analysis::CoveringPlan plan = runPlanPhase(reporter);
  reporter.addSnapshot(analysis::coveringTelemetry(plan));
  runSweepPhases(reporter, repeats);
  return reporter.finish();
}
