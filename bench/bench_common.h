// Shared reporting helpers for the reproduction benches.
//
// Every bench prints the paper's rows next to the measured values and an
// OK/DIFF marker, so bench_output.txt doubles as the EXPERIMENTS.md data
// source.
#pragma once

#include <cstdio>
#include <string>

namespace scarecrow::bench {

inline int g_mismatches = 0;

inline void printHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline const char* okMark(bool ok) {
  if (!ok) ++g_mismatches;
  return ok ? "OK  " : "DIFF";
}

inline int finish(const std::string& benchName) {
  if (g_mismatches == 0) {
    std::printf("\n[%s] all reproduced values match the paper\n",
                benchName.c_str());
    return 0;
  }
  std::printf("\n[%s] %d value(s) deviate from the paper\n",
              benchName.c_str(), g_mismatches);
  return 1;
}

}  // namespace scarecrow::bench
