// Shared reporting helpers for the reproduction benches.
//
// Every bench prints the paper's rows next to the measured values and an
// OK/DIFF marker, so bench_output.txt doubles as the EXPERIMENTS.md data
// source.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/perf_report.h"

namespace scarecrow::bench {

inline int g_mismatches = 0;

inline void printHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline const char* okMark(bool ok) {
  if (!ok) ++g_mismatches;
  return ok ? "OK  " : "DIFF";
}

/// Wall-clock micros, for serial-vs-parallel throughput numbers.
inline std::uint64_t nowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Writes the snapshot as <benchName>_telemetry.json and .prom next to the
/// binary, so a bench run leaves a machine-readable record (throughput
/// gauges included) alongside the human-readable stdout table.
inline void writeTelemetryDump(const std::string& benchName,
                               const obs::MetricsSnapshot& snapshot) {
  for (const obs::ExportFormat format :
       {obs::ExportFormat::kJson, obs::ExportFormat::kPrometheus}) {
    const std::string path = benchName + "_telemetry." +
                             obs::exportFileExtension(format);
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      const std::string rendered = obs::Exporter(format).render(snapshot);
      std::fwrite(rendered.data(), 1, rendered.size(), f);
      std::fclose(f);
      std::printf("telemetry dump written to %s\n", path.c_str());
    }
  }
}

inline int finish(const std::string& benchName) {
  if (g_mismatches == 0) {
    std::printf("\n[%s] all reproduced values match the paper\n",
                benchName.c_str());
    return 0;
  }
  std::printf("\n[%s] %d value(s) deviate from the paper\n",
              benchName.c_str(), g_mismatches);
  return 1;
}

/// The one way a bench reports: numbers go to stdout as before AND into
/// two machine-readable planes — the telemetry dump
/// (<bench>_telemetry.{json,prom}, via the obs exporters) and the perf
/// trajectory record (BENCH_<name>.json, via obs::PerfReport) that
/// scripts/perf_gate.py diffs against the committed baseline.
class Reporter {
 public:
  /// `benchName` is the binary name ("bench_table1"); the perf report's
  /// short name drops the "bench_" prefix, so the record lands as
  /// BENCH_table1.json next to the binary.
  explicit Reporter(std::string benchName)
      : benchName_(std::move(benchName)),
        report_(obs::makePerfReport(
            benchName_.rfind("bench_", 0) == 0 ? benchName_.substr(6)
                                               : benchName_)) {
    reportPath_ = "BENCH_" + report_.name + ".json";
  }

  /// Overrides where BENCH_<name>.json is written (bench_hotpath --out).
  void setReportPath(std::string path) { reportPath_ = std::move(path); }

  /// Raw latency samples -> exact-percentile perf metric. Optional hard
  /// p50 budget (perf_gate.py fails the run if p50 exceeds it).
  void addSamples(const std::string& metric, std::vector<std::uint64_t> samples,
                  const std::string& unit = "ns",
                  std::uint64_t p50BudgetNs = 0) {
    report_.addSamples(metric, unit, std::move(samples), p50BudgetNs);
  }

  /// Bucket-resolution perf metric from an exported histogram.
  void addHistogram(const obs::HistogramSample& histogram,
                    const std::string& unit = "ns",
                    std::uint64_t p50BudgetNs = 0) {
    report_.addHistogram(histogram, unit, p50BudgetNs);
  }

  /// One scalar (throughput, count) -> perf metric AND telemetry gauge.
  void addValue(const std::string& metric, std::uint64_t value,
                const std::string& unit = "count") {
    report_.addValue(metric, unit, value);
    gauges_.gauge(metric).set(static_cast<std::int64_t>(value));
  }

  /// Merges a run's metrics snapshot into the telemetry dump.
  void addSnapshot(const obs::MetricsSnapshot& snapshot) {
    telemetry_.merge(snapshot);
  }

  /// Ad-hoc gauges (host cores, worker counts) for the telemetry dump only.
  obs::MetricsRegistry& gauges() noexcept { return gauges_; }

  /// Writes the telemetry dump and BENCH_<name>.json, then returns the
  /// process exit code from the OK/DIFF tally (same contract as finish()).
  int finish() {
    obs::MetricsSnapshot dump = telemetry_;
    dump.merge(gauges_.snapshot());
    writeTelemetryDump(benchName_, dump);
    if (writePerfReport(report_, reportPath_))
      std::printf("perf report written to %s\n", reportPath_.c_str());
    else
      std::printf("FAILED to write perf report %s\n", reportPath_.c_str());
    return bench::finish(benchName_);
  }

 private:
  std::string benchName_;
  obs::PerfReport report_;
  std::string reportPath_;
  obs::MetricsSnapshot telemetry_;
  obs::MetricsRegistry gauges_;
};

}  // namespace scarecrow::bench
