// Shared reporting helpers for the reproduction benches.
//
// Every bench prints the paper's rows next to the measured values and an
// OK/DIFF marker, so bench_output.txt doubles as the EXPERIMENTS.md data
// source.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

#include "obs/export.h"
#include "obs/metrics.h"

namespace scarecrow::bench {

inline int g_mismatches = 0;

inline void printHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline const char* okMark(bool ok) {
  if (!ok) ++g_mismatches;
  return ok ? "OK  " : "DIFF";
}

/// Wall-clock micros, for serial-vs-parallel throughput numbers.
inline std::uint64_t nowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Writes the snapshot as <benchName>_telemetry.json and .prom next to the
/// binary, so a bench run leaves a machine-readable record (throughput
/// gauges included) alongside the human-readable stdout table.
inline void writeTelemetryDump(const std::string& benchName,
                               const obs::MetricsSnapshot& snapshot) {
  for (const obs::ExportFormat format :
       {obs::ExportFormat::kJson, obs::ExportFormat::kPrometheus}) {
    const std::string path = benchName + "_telemetry." +
                             obs::exportFileExtension(format);
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      const std::string rendered = obs::Exporter(format).render(snapshot);
      std::fwrite(rendered.data(), 1, rendered.size(), f);
      std::fclose(f);
      std::printf("telemetry dump written to %s\n", path.c_str());
    }
  }
}

inline int finish(const std::string& benchName) {
  if (g_mismatches == 0) {
    std::printf("\n[%s] all reproduced values match the paper\n",
                benchName.c_str());
    return 0;
  }
  std::printf("\n[%s] %d value(s) deviate from the paper\n",
              benchName.c_str(), g_mismatches);
  return 1;
}

}  // namespace scarecrow::bench
