// Performance requirement (paper Section III: "negligible performance
// overhead"). google-benchmark micro-measurements of the deception hot
// paths: hooked vs unhooked API dispatch, deceptive-resource lookups
// against the full crawled database, in-line hook installation, DLL
// injection, and a complete supervised sample execution.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/coverage.h"
#include "core/collector.h"
#include "core/controller.h"
#include "core/engine.h"
#include "core/eval.h"
#include "env/environments.h"
#include "faults/fault_injector.h"
#include "malware/joe.h"
#include "env/base_image.h"
#include "hooking/inline_hook.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/hot_timer.h"
#include "obs/metrics.h"
#include "winapi/runner.h"

using namespace scarecrow;

namespace {

struct World {
  World() : machine(env::buildBareMetalSandbox()) {
    proc = &machine->processes().create("C:\\x\\probe.exe", 0, "probe",
                                        machine->sysinfo().processorCount);
    userspace.deadlineMs = UINT64_MAX;
  }
  std::unique_ptr<winsys::Machine> machine;
  winapi::UserSpace userspace;
  winsys::Process* proc = nullptr;
};

void BM_ApiCall_Unhooked(benchmark::State& state) {
  World world;
  winapi::Api api(*world.machine, world.userspace, world.proc->pid);
  for (auto _ : state)
    benchmark::DoNotOptimize(api.IsDebuggerPresent());
}
BENCHMARK(BM_ApiCall_Unhooked);

void BM_ApiCall_ScarecrowHooked(benchmark::State& state) {
  World world;
  core::DeceptionEngine engine({}, core::buildDefaultResourceDb());
  winapi::Api api(*world.machine, world.userspace, world.proc->pid);
  engine.installInto(api);
  for (auto _ : state)
    benchmark::DoNotOptimize(api.IsDebuggerPresent());
}
BENCHMARK(BM_ApiCall_ScarecrowHooked);

void BM_RegistryOpen_Unhooked(benchmark::State& state) {
  World world;
  winapi::Api api(*world.machine, world.userspace, world.proc->pid);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        api.RegOpenKeyEx("SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion"));
}
BENCHMARK(BM_RegistryOpen_Unhooked);

void BM_RegistryOpen_ScarecrowMiss(benchmark::State& state) {
  // Non-deceptive key: the hook consults the resource DB, misses, and falls
  // through to the original — the common case for benign software.
  World world;
  core::DeceptionEngine engine({}, core::buildDefaultResourceDb());
  winapi::Api api(*world.machine, world.userspace, world.proc->pid);
  engine.installInto(api);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        api.RegOpenKeyEx("SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion"));
}
BENCHMARK(BM_RegistryOpen_ScarecrowMiss);

void BM_RegistryOpen_ScarecrowHit(benchmark::State& state) {
  World world;
  core::DeceptionEngine engine({}, core::buildDefaultResourceDb());
  winapi::Api api(*world.machine, world.userspace, world.proc->pid);
  engine.installInto(api);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        api.RegOpenKeyEx("SOFTWARE\\Oracle\\VirtualBox Guest Additions"));
}
BENCHMARK(BM_RegistryOpen_ScarecrowHit);

void BM_FaultSiteCheck_Disarmed(benchmark::State& state) {
  // The robustness requirement: a production run with no fault plan must
  // pay nothing at the sites. Disarmed shouldFire is one array load and a
  // branch — the target is < 2ns per check.
  faults::FaultInjector injector;  // no plan: every site disarmed
  for (auto _ : state)
    benchmark::DoNotOptimize(
        injector.shouldFire(faults::FaultSite::kIpcSend));
}
BENCHMARK(BM_FaultSiteCheck_Disarmed);

void BM_FaultSiteCheck_Armed(benchmark::State& state) {
  // Armed comparison point: a probabilistic rule consumes an Rng draw per
  // eligible check.
  const faults::FaultPlan plan =
      faults::FaultPlan::parse("ipc-send:p=0.01", 42);
  faults::FaultInjector injector(plan);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        injector.shouldFire(faults::FaultSite::kIpcSend));
}
BENCHMARK(BM_FaultSiteCheck_Armed);

void BM_HotTimer_Disarmed(benchmark::State& state) {
  // The hot-timer contract (obs/hot_timer.h): with the plane disarmed —
  // the production default — a HotScope is one bool load and a branch; the
  // clock is never read. Hard gate: <= 2ns per scope (perf_gate.py budget
  // on hot_timer_disarmed_ns).
  obs::HotTimerPlane plane;
  plane.disarmAll();
  for (auto _ : state) {
    obs::HotScope scope(&plane, obs::HotSite::kIpcSend);
    benchmark::DoNotOptimize(&scope);
  }
}
BENCHMARK(BM_HotTimer_Disarmed);

void BM_HotTimer_Armed(benchmark::State& state) {
  // Armed comparison point: two steady_clock reads plus a bit_width bucket
  // increment — the price SCARECROW_HOT_TIMERS=1 pays per instrumented
  // site.
  obs::HotTimerPlane plane;
  plane.armAll();
  for (auto _ : state) {
    obs::HotScope scope(&plane, obs::HotSite::kIpcSend);
    benchmark::DoNotOptimize(&scope);
  }
  state.counters["recorded"] = static_cast<double>(
      plane.timer(obs::HotSite::kIpcSend).count());
}
BENCHMARK(BM_HotTimer_Armed);

void BM_ResourceDbFileLookup_17kCrawled(benchmark::State& state) {
  // Worst-case DB: the curated set plus all 17,540 crawled files.
  auto vt = env::buildPublicSandbox(env::PublicSandboxKind::kVirusTotal);
  auto malwr = env::buildPublicSandbox(env::PublicSandboxKind::kMalwr);
  winsys::Machine clean;
  env::installBaseImage(clean, {});
  const auto diff = core::SandboxResourceCollector::diff(
      {core::SandboxResourceCollector::crawl(*vt),
       core::SandboxResourceCollector::crawl(*malwr)},
      core::SandboxResourceCollector::crawl(clean));
  core::ResourceDb db = core::buildDefaultResourceDb();
  core::SandboxResourceCollector::merge(db, diff);
  state.counters["db_files"] = static_cast<double>(db.fileCount());
  for (auto _ : state)
    benchmark::DoNotOptimize(
        db.matchFile("C:\\Windows\\System32\\drivers\\notpresent.sys"));
}
BENCHMARK(BM_ResourceDbFileLookup_17kCrawled);

void BM_InlineHookInstallRemove(benchmark::State& state) {
  winapi::ProcessApiState apiState;
  for (auto _ : state) {
    hooking::installInlineHook(apiState, winapi::ApiId::kIsDebuggerPresent);
    hooking::removeInlineHook(apiState, winapi::ApiId::kIsDebuggerPresent);
  }
}
BENCHMARK(BM_InlineHookInstallRemove);

void BM_DllInjection(benchmark::State& state) {
  World world;
  core::DeceptionEngine engine({}, core::buildDefaultResourceDb());
  const hooking::DllImage dll = engine.dllImage();
  for (auto _ : state) {
    state.PauseTiming();
    winsys::Process& target = world.machine->processes().create(
        "C:\\x\\t.exe", 0, "t", 4);
    state.ResumeTiming();
    hooking::injectDll(*world.machine, world.userspace, target.pid, dll);
  }
}
BENCHMARK(BM_DllInjection);

void BM_MetricsCounterIncrement(benchmark::State& state) {
  // The hot-path contract (obs/metrics.h): hooks cache the Counter pointer
  // at install time, so per-dispatch telemetry cost is one increment on a
  // stable address. Target <20ns/op; see DESIGN.md "Observability".
  obs::MetricsRegistry registry;
  obs::Counter& hits = registry.counter("engine.hook_invocations", "bench");
  for (auto _ : state) {
    hits.inc();
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_MetricsCounterIncrement);

void BM_MetricsCounterLookupAndIncrement(benchmark::State& state) {
  // The anti-pattern: resolving the (name, label) key through the map on
  // every dispatch. Kept as a benchmark to document why hooks cache.
  obs::MetricsRegistry registry;
  registry.counter("engine.hook_invocations", "bench");
  for (auto _ : state)
    registry.counter("engine.hook_invocations", "bench").inc();
}
BENCHMARK(BM_MetricsCounterLookupAndIncrement);

void BM_FlightRecorderRecord(benchmark::State& state) {
  // Decision-trace hot path: one record() per hook dispatch. The ring slot
  // is reused in place, so steady-state cost is a handful of string
  // assignments — no allocation once every slot has been written once.
  obs::FlightRecorder recorder;
  for (auto _ : state) {
    obs::DecisionEvent e;
    e.timeMs = 1;
    e.pid = 42;
    e.kind = obs::DecisionKind::kHookDispatch;
    e.api = "IsDebuggerPresent";
    benchmark::DoNotOptimize(recorder.record(std::move(e)));
  }
  state.counters["dropped"] =
      static_cast<double>(recorder.droppedCount());
}
BENCHMARK(BM_FlightRecorderRecord);

void BM_MetricsHistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Histogram& lat = registry.histogram("engine.hook_dispatch_ms");
  std::uint64_t v = 0;
  for (auto _ : state) {
    lat.observe(v++ & 0x3ff);
    benchmark::DoNotOptimize(lat);
  }
}
BENCHMARK(BM_MetricsHistogramObserve);

void BM_StaticCoverage(benchmark::State& state) {
  // The static analyzer's pitch is "prove the deployment in microseconds,
  // not a one-minute supervised run" — this measures the full fold of all
  // technique footprints over the default database, including deriving the
  // hooked-API set from a throwaway engine.
  const core::ResourceDb db = core::buildDefaultResourceDb();
  for (auto _ : state) {
    analysis::CoverageReport report = analysis::analyzeCoverage(db);
    benchmark::DoNotOptimize(report.firesCount);
  }
}
BENCHMARK(BM_StaticCoverage)->Unit(benchmark::kMicrosecond);

void BM_SupervisedSampleExecution(benchmark::State& state) {
  // Full pipeline: Deep Freeze reset + controller launch + injection +
  // evasive sample run under Scarecrow (sample 9fac72a).
  auto machine = env::buildBareMetalSandbox();
  malware::ProgramRegistry registry;
  malware::registerJoeSamples(registry);
  core::EvaluationHarness harness(*machine);
  for (auto _ : state) {
    trace::Trace trace =
        harness
            .runOnce({.sampleId = "9fac72a",
                      .imagePath = "C:\\submissions\\9fac72a.exe",
                      .factory = registry.factory()},
                     /*withScarecrow=*/true)
            .trace;
    benchmark::DoNotOptimize(trace.events.size());
  }
}
BENCHMARK(BM_SupervisedSampleExecution)->Unit(benchmark::kMicrosecond);

/// One supervised run of 9fac72a, exported as the deterministic telemetry
/// JSON snapshot — printed after the timing table so a bench run doubles as
/// a telemetry artifact (diffable across commits like the numbers above).
void dumpTelemetrySnapshot() {
  auto machine = env::buildBareMetalSandbox();
  malware::ProgramRegistry registry;
  malware::registerJoeSamples(registry);
  core::EvaluationHarness harness(*machine);
  harness.runOnce({.sampleId = "9fac72a",
                   .imagePath = "C:\\submissions\\9fac72a.exe",
                   .factory = registry.factory()},
                  /*withScarecrow=*/true);
  std::printf("--- telemetry snapshot (supervised run, 9fac72a) ---\n%s",
              obs::Exporter(obs::ExportFormat::kJson)
                  .render(machine->metrics().snapshot())
                  .c_str());
  const obs::FlightRecorder& flight = machine->flightRecorder();
  std::printf(
      "--- decision trace: %zu retained, %llu recorded, %llu dropped ---\n",
      flight.size(),
      static_cast<unsigned long long>(flight.totalRecorded()),
      static_cast<unsigned long long>(flight.droppedCount()));
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dumpTelemetrySnapshot();
  return 0;
}
