// Performance requirement (paper Section III: "negligible performance
// overhead"). google-benchmark micro-measurements of the deception hot
// paths: hooked vs unhooked API dispatch, deceptive-resource lookups
// against the full crawled database, in-line hook installation, DLL
// injection, and a complete supervised sample execution.
#include <benchmark/benchmark.h>

#include "core/collector.h"
#include "core/controller.h"
#include "core/engine.h"
#include "core/eval.h"
#include "env/environments.h"
#include "malware/joe.h"
#include "env/base_image.h"
#include "hooking/inline_hook.h"
#include "winapi/runner.h"

using namespace scarecrow;

namespace {

struct World {
  World() : machine(env::buildBareMetalSandbox()) {
    proc = &machine->processes().create("C:\\x\\probe.exe", 0, "probe",
                                        machine->sysinfo().processorCount);
    userspace.deadlineMs = UINT64_MAX;
  }
  std::unique_ptr<winsys::Machine> machine;
  winapi::UserSpace userspace;
  winsys::Process* proc = nullptr;
};

void BM_ApiCall_Unhooked(benchmark::State& state) {
  World world;
  winapi::Api api(*world.machine, world.userspace, world.proc->pid);
  for (auto _ : state)
    benchmark::DoNotOptimize(api.IsDebuggerPresent());
}
BENCHMARK(BM_ApiCall_Unhooked);

void BM_ApiCall_ScarecrowHooked(benchmark::State& state) {
  World world;
  core::DeceptionEngine engine({}, core::buildDefaultResourceDb());
  winapi::Api api(*world.machine, world.userspace, world.proc->pid);
  engine.installInto(api);
  for (auto _ : state)
    benchmark::DoNotOptimize(api.IsDebuggerPresent());
}
BENCHMARK(BM_ApiCall_ScarecrowHooked);

void BM_RegistryOpen_Unhooked(benchmark::State& state) {
  World world;
  winapi::Api api(*world.machine, world.userspace, world.proc->pid);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        api.RegOpenKeyEx("SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion"));
}
BENCHMARK(BM_RegistryOpen_Unhooked);

void BM_RegistryOpen_ScarecrowMiss(benchmark::State& state) {
  // Non-deceptive key: the hook consults the resource DB, misses, and falls
  // through to the original — the common case for benign software.
  World world;
  core::DeceptionEngine engine({}, core::buildDefaultResourceDb());
  winapi::Api api(*world.machine, world.userspace, world.proc->pid);
  engine.installInto(api);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        api.RegOpenKeyEx("SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion"));
}
BENCHMARK(BM_RegistryOpen_ScarecrowMiss);

void BM_RegistryOpen_ScarecrowHit(benchmark::State& state) {
  World world;
  core::DeceptionEngine engine({}, core::buildDefaultResourceDb());
  winapi::Api api(*world.machine, world.userspace, world.proc->pid);
  engine.installInto(api);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        api.RegOpenKeyEx("SOFTWARE\\Oracle\\VirtualBox Guest Additions"));
}
BENCHMARK(BM_RegistryOpen_ScarecrowHit);

void BM_ResourceDbFileLookup_17kCrawled(benchmark::State& state) {
  // Worst-case DB: the curated set plus all 17,540 crawled files.
  auto vt = env::buildPublicSandbox(env::PublicSandboxKind::kVirusTotal);
  auto malwr = env::buildPublicSandbox(env::PublicSandboxKind::kMalwr);
  winsys::Machine clean;
  env::installBaseImage(clean, {});
  const auto diff = core::SandboxResourceCollector::diff(
      {core::SandboxResourceCollector::crawl(*vt),
       core::SandboxResourceCollector::crawl(*malwr)},
      core::SandboxResourceCollector::crawl(clean));
  core::ResourceDb db = core::buildDefaultResourceDb();
  core::SandboxResourceCollector::merge(db, diff);
  state.counters["db_files"] = static_cast<double>(db.fileCount());
  for (auto _ : state)
    benchmark::DoNotOptimize(
        db.matchFile("C:\\Windows\\System32\\drivers\\notpresent.sys"));
}
BENCHMARK(BM_ResourceDbFileLookup_17kCrawled);

void BM_InlineHookInstallRemove(benchmark::State& state) {
  winapi::ProcessApiState apiState;
  for (auto _ : state) {
    hooking::installInlineHook(apiState, winapi::ApiId::kIsDebuggerPresent);
    hooking::removeInlineHook(apiState, winapi::ApiId::kIsDebuggerPresent);
  }
}
BENCHMARK(BM_InlineHookInstallRemove);

void BM_DllInjection(benchmark::State& state) {
  World world;
  core::DeceptionEngine engine({}, core::buildDefaultResourceDb());
  const hooking::DllImage dll = engine.dllImage();
  for (auto _ : state) {
    state.PauseTiming();
    winsys::Process& target = world.machine->processes().create(
        "C:\\x\\t.exe", 0, "t", 4);
    state.ResumeTiming();
    hooking::injectDll(*world.machine, world.userspace, target.pid, dll);
  }
}
BENCHMARK(BM_DllInjection);

void BM_SupervisedSampleExecution(benchmark::State& state) {
  // Full pipeline: Deep Freeze reset + controller launch + injection +
  // evasive sample run under Scarecrow (sample 9fac72a).
  auto machine = env::buildBareMetalSandbox();
  malware::ProgramRegistry registry;
  malware::registerJoeSamples(registry);
  core::EvaluationHarness harness(*machine);
  for (auto _ : state) {
    trace::Trace trace = harness.runOnce(
        "9fac72a", "C:\\submissions\\9fac72a.exe", registry.factory(), true);
    benchmark::DoNotOptimize(trace.events.size());
  }
}
BENCHMARK(BM_SupervisedSampleExecution)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
