// Figure 4 + Section IV-C headline reproduction: Scarecrow vs the
// 1,054-sample MalGene corpus (M_MG).
//
// Reported per the paper's aggregates:
//   * 944 samples deactivated (89.56%);
//   * 823 samples (78.08%) self-spawning >10 times under Scarecrow,
//     815 of them fingerprinting via IsDebuggerPresent;
//   * the singled-out Symmi sample 0827287d... respawning 474 times;
//   * the Figure 4 top-10 family breakdown (only Symmi's numbers are given
//     in the paper text: 484 total / 478 deactivated / 473 self-spawners /
//     26 creating processes / 449 modifying files+registries without
//     Scarecrow).
#include <cstdio>
#include <map>

#include "bench/bench_common.h"
#include "core/eval.h"
#include "env/environments.h"
#include "malware/corpus.h"
#include "support/strings.h"
#include "trace/analysis.h"

using namespace scarecrow;

namespace {

struct FamilyStats {
  std::size_t total = 0;
  std::size_t deactivated = 0;
  std::size_t selfSpawners = 0;
  std::size_t createProcWithout = 0;
  std::size_t modifyFileRegWithout = 0;
};

}  // namespace

int main() {
  bench::printHeader(
      "Figure 4 — effectiveness of Scarecrow on the MalGene corpus (M_MG)");

  auto machine = env::buildBareMetalSandbox();
  malware::ProgramRegistry registry;
  const auto specs = malware::generateMalgeneCorpus(registry);
  core::EvaluationHarness harness(*machine);

  std::map<std::string, FamilyStats> families;
  std::size_t deactivated = 0, selfSpawners = 0, idpSelfSpawners = 0;
  std::size_t symmiSpecialSpawns = 0;

  for (const malware::SampleSpec* spec : specs) {
    const core::EvalOutcome outcome = harness.evaluate(
        {.sampleId = spec->id,
         .imagePath = "C:\\submissions\\" + spec->imageName,
         .factory = registry.factory()});

    FamilyStats& family = families[spec->family];
    ++family.total;
    if (outcome.verdict.deactivated) {
      ++deactivated;
      ++family.deactivated;
      if (outcome.verdict.reason == trace::DeactivationReason::kSelfSpawnLoop) {
        ++selfSpawners;
        ++family.selfSpawners;
        if (outcome.verdict.isDebuggerPresentUsed) ++idpSelfSpawners;
      }
      // Payload classification from the without-Scarecrow trace.
      bool createsProc = false, modifiesFileReg = false;
      for (const auto& activity : trace::significantActivities(
               outcome.traceWithout, spec->imageName)) {
        if (support::istartsWith(activity, "ProcessCreate:"))
          createsProc = true;
        else
          modifiesFileReg = true;
      }
      if (createsProc) ++family.createProcWithout;
      if (modifiesFileReg) ++family.modifyFileRegWithout;
    }
    if (spec->id == "0827287d255f9711275e10bda5bda8c2")
      symmiSpecialSpawns = outcome.verdict.selfSpawnsWithScarecrow;
  }

  const double rate = 100.0 * static_cast<double>(deactivated) /
                      static_cast<double>(specs.size());
  const double spawnRate = 100.0 * static_cast<double>(selfSpawners) /
                           static_cast<double>(specs.size());

  std::printf("samples:                %4zu   (paper: 1054)  %s\n",
              specs.size(), bench::okMark(specs.size() == 1054));
  std::printf("deactivated:            %4zu   (paper:  944)  %s\n",
              deactivated, bench::okMark(deactivated == 944));
  std::printf("deactivation rate:    %.2f%%   (paper: 89.56%%) %s\n", rate,
              bench::okMark(rate > 89.0 && rate < 90.1));
  std::printf("self-spawners (>10):    %4zu   (paper:  823, 78.08%%)  %s\n",
              selfSpawners, bench::okMark(selfSpawners == 823));
  std::printf("  spawn rate:         %.2f%%\n", spawnRate);
  std::printf("  via IsDebuggerPresent: %zu  (paper: 815)  %s\n",
              idpSelfSpawners, bench::okMark(idpSelfSpawners == 815));
  std::printf("sample 0827287d... respawned %zu times (paper: 474)  %s\n",
              symmiSpecialSpawns,
              bench::okMark(symmiSpecialSpawns >= 464 &&
                            symmiSpecialSpawns <= 484));

  std::printf("\n%-10s %6s %12s %11s %12s %14s\n", "family", "total",
              "deactivated", "self-spawn", "create-proc", "mod-file/reg");
  for (const malware::FamilySpec& spec : malware::malgeneFamilySpecs()) {
    const FamilyStats& f = families[spec.name];
    if (spec.total < 25) continue;  // top-10 families only (Figure 4)
    std::printf("%-10s %6zu %12zu %11zu %12zu %14zu\n", spec.name.c_str(),
                f.total, f.deactivated, f.selfSpawners,
                f.createProcWithout, f.modifyFileRegWithout);
  }

  const FamilyStats& symmi = families["Symmi"];
  std::printf("\nSymmi row vs paper (484/478/473/26/449): %s\n",
              bench::okMark(symmi.total == 484 && symmi.deactivated == 478 &&
                            symmi.selfSpawners == 473 &&
                            symmi.createProcWithout == 26 &&
                            symmi.modifyFileRegWithout == 449));

  bench::Reporter reporter("bench_figure4");
  reporter.addValue("figure4.samples", specs.size());
  reporter.addValue("figure4.deactivated", deactivated);
  reporter.addValue("figure4.self_spawners", selfSpawners);
  reporter.addValue("figure4.idp_self_spawners", idpSelfSpawners);
  reporter.addValue("figure4.symmi_special_spawns", symmiSpecialSpawns);
  return reporter.finish();
}
