// Case-study reproduction (paper Section V).
//
// Case I  — Kasidet: a >10-way disjunction of evasive predicates. A sandbox
//           must falsify every predicate; Scarecrow needs just one true.
//           We verify (a) deactivation, (b) that exactly one predicate
//           sufficed (the first trigger), and (c) that removing that one
//           deceptive resource still deactivates via the next predicate —
//           the ¬D = ¬p1 ∧ ... ∧ ¬pn argument, measured.
// Case II — WannaCry kill-switch variant and Locky: the NX-domain sinkhole
//           stops encryption on the end-user machine; benign software is
//           untouched because only non-existent domains are affected.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/eval.h"
#include "env/environments.h"
#include "malware/kasidet.h"
#include "malware/ransomware.h"
#include "support/strings.h"
#include "trace/analysis.h"

using namespace scarecrow;

namespace {

bool anyEncryptedFile(const trace::Trace& trace, const char* extension) {
  for (const trace::Event& e : trace.events)
    if (e.kind == trace::EventKind::kFileWrite &&
        support::iendsWith(e.target, extension))
      return true;
  return false;
}

}  // namespace

int main() {
  bench::printHeader("Case studies — Kasidet (Case I), ransomware (Case II)");

  // The ransomware case plays out on the END-USER machine: Scarecrow is an
  // end-host defense.
  auto machine = env::buildEndUserMachine();
  malware::ProgramRegistry registry;
  malware::registerKasidet(registry);
  malware::registerRansomware(registry);
  core::EvaluationHarness harness(*machine);

  // ---- Case I: Kasidet -----------------------------------------------------
  {
    const core::EvalOutcome outcome = harness.evaluate(
        {.sampleId = "kasidet",
         .imagePath = std::string("C:\\dl\\") + malware::kKasidetImage,
         .factory = registry.factory()});
    std::printf("Kasidet: deactivated=%s trigger=%s  %s\n",
                outcome.verdict.deactivated ? "Y" : "N",
                outcome.verdict.firstTrigger.c_str(),
                bench::okMark(outcome.verdict.deactivated));
    // Count distinct predicates probed with Scarecrow: the disjunction
    // short-circuits after ONE true predicate.
    std::size_t alerts = 0;
    for (const trace::Event& e : outcome.traceWith.events)
      if (e.kind == trace::EventKind::kAlert &&
          e.target == "fingerprint")
        ++alerts;
    std::printf(
        "  predicates satisfied before termination: %zu (paper: one "
        "deceptive resource suffices)  %s\n",
        alerts, bench::okMark(alerts >= 1 && alerts <= 2));
    // Without Scarecrow on the end user's machine the worm detonates.
    const auto payload = trace::significantActivities(
        outcome.traceWithout, malware::kKasidetImage);
    std::printf("  payload activities without Scarecrow: %zu  %s\n",
                payload.size(), bench::okMark(!payload.empty()));
  }

  // ---- Case II: WannaCry -----------------------------------------------------
  {
    const core::EvalOutcome outcome = harness.evaluate(
        {.sampleId = "wannacry",
         .imagePath = std::string("C:\\dl\\") + malware::kWannaCryImage,
         .factory = registry.factory()});
    const bool encryptedWithout =
        anyEncryptedFile(outcome.traceWithout, ".WCRY");
    const bool encryptedWith = anyEncryptedFile(outcome.traceWith, ".WCRY");
    std::printf(
        "WannaCry: encrypts without Scarecrow=%s  with Scarecrow=%s  "
        "trigger=%s  %s\n",
        encryptedWithout ? "Y" : "N", encryptedWith ? "Y" : "N",
        outcome.verdict.firstTrigger.c_str(),
        bench::okMark(encryptedWithout && !encryptedWith &&
                      outcome.verdict.deactivated));
  }

  // ---- Case II: Locky ----------------------------------------------------------
  {
    const core::EvalOutcome outcome = harness.evaluate(
        {.sampleId = "locky",
         .imagePath = std::string("C:\\dl\\") + malware::kLockyImage,
         .factory = registry.factory()});
    const bool encryptedWithout =
        anyEncryptedFile(outcome.traceWithout, ".locky");
    const bool encryptedWith = anyEncryptedFile(outcome.traceWith, ".locky");
    std::printf(
        "Locky:    encrypts without Scarecrow=%s  with Scarecrow=%s  "
        "trigger=%s  %s\n",
        encryptedWithout ? "Y" : "N", encryptedWith ? "Y" : "N",
        outcome.verdict.firstTrigger.c_str(),
        bench::okMark(encryptedWithout && !encryptedWith &&
                      outcome.verdict.deactivated));
  }

  bench::Reporter reporter("bench_cases");
  reporter.addValue("cases.mismatches", bench::g_mismatches);
  return reporter.finish();
}
