// Table III reproduction: wear-and-tear artifacts faked by Scarecrow.
//
// For the top-5 artifacts plus the registry category we report the value
// measured on the (aged) end-user machine without Scarecrow, the faked
// value with Scarecrow, and the paper's published fake. A decision tree
// trained on aged-vs-pristine machine populations (the S&P'17 classifier)
// must label the end-user machine "real device" without Scarecrow and
// "sandbox" with it.
#include <array>
#include <cstdio>
#include <functional>

#include "bench/bench_common.h"
#include "env/environments.h"
#include "fingerprint/decision_tree.h"
#include "fingerprint/harness.h"
#include "support/parallel.h"

using namespace scarecrow;
using fingerprint::artifactIndex;
using fingerprint::artifactTable;

int main() {
  bench::printHeader(
      "Table III — wear-and-tear artifacts faked by Scarecrow");

  // Three independent measurement jobs share a worker pool: the end-user
  // machine's two runs (sequential on one machine, as in the paper), the
  // classifier training, and the bare-metal control measurement.
  fingerprint::FingerprintRunOptions off;
  fingerprint::ArtifactVector real{}, faked{}, bmArtifacts{};
  fingerprint::DecisionTree tree;
  std::vector<fingerprint::LabeledSample> training;
  const std::array<std::function<void()>, 3> jobs = {
      [&] {
        auto machine = env::buildEndUserMachine();
        real = fingerprint::measureWearTearOn(*machine, off);
        fingerprint::FingerprintRunOptions on;
        on.withScarecrow = true;
        faked = fingerprint::measureWearTearOn(*machine, on);
      },
      [&] {
        training = fingerprint::generateTrainingSet(14, 41);
        tree.train(training);
      },
      [&] {
        auto bm = env::buildBareMetalSandbox();
        bmArtifacts = fingerprint::measureWearTearOn(*bm, off);
      }};
  support::runOnWorkerPool(jobs.size(), jobs.size(),
                           [&](std::size_t, std::size_t job) { jobs[job](); });

  struct PaperFake {
    const char* artifact;
    double value;
    const char* fakedResource;
  };
  // Values straight from Table III.
  const PaperFake kPaper[] = {
      {"dnscacheEntries", 4, "recent 4 entries"},
      {"sysevt", 8000, "recent 8K system events"},
      {"deviceClsCount", 29, "DeviceClasses (29 subkeys)"},
      {"autoRunCount", 3, "CurrentVersion\\Run (3 value entries)"},
      {"regSize", 53.0 * (1 << 20), "RegistryQuota 53M bytes"},
  };

  std::printf("%-18s | %12s | %12s | %12s |\n", "artifact",
              "w/o Scarecrow", "w/ Scarecrow", "paper fake");
  // syssrc has no pinned numeric fake in the paper (it derives from the 8K
  // truncated event window); report it informationally.
  for (const PaperFake& row : kPaper) {
    const std::size_t index = artifactIndex(row.artifact);
    const bool ok = faked[index] == row.value;
    std::printf("%-18s | %12.0f | %12.0f | %12.0f | %s\n", row.artifact,
                real[index], faked[index], row.value, bench::okMark(ok));
  }
  std::printf("%-18s | %12.0f | %12.0f | %12s |\n", "syssrc",
              real[artifactIndex("syssrc")], faked[artifactIndex("syssrc")],
              "(derived)");

  std::printf("\nregistry-category artifacts:\n");
  for (const auto& info : artifactTable()) {
    if (info.category != fingerprint::ArtifactCategory::kRegistry) continue;
    const std::size_t index = artifactIndex(info.name);
    // Faking must actually change (or pin) the registry view: aged value
    // should exceed the deceptive one for accumulating counters.
    std::printf("  %-18s w/o %10.0f -> w/ %10.0f  %s\n", info.name,
                real[index], faked[index],
                bench::okMark(faked[index] <= real[index]));
  }

  // Decision-tree verdict flip.
  std::printf("\ndecision tree: %zu nodes, training accuracy %.2f\n",
              tree.nodeCount(), tree.accuracy(training));
  std::printf("tree splits on:");
  for (std::size_t f : tree.usedFeatures())
    std::printf(" %s", artifactTable()[f].name);
  std::printf("\n");

  const bool realVerdict =
      tree.classify(real) == fingerprint::MachineLabel::kRealDevice;
  const bool fakedVerdict =
      tree.classify(faked) == fingerprint::MachineLabel::kSandbox;
  std::printf("end-user w/o Scarecrow -> %s  %s\n",
              realVerdict ? "real device" : "sandbox",
              bench::okMark(realVerdict));
  std::printf("end-user w/  Scarecrow -> %s  %s (steered to sandbox)\n",
              fakedVerdict ? "sandbox" : "real device",
              bench::okMark(fakedVerdict));

  // Sanity: the sandboxes themselves classify as sandboxes.
  std::printf("bare-metal sandbox     -> %s  %s\n",
              tree.classify(bmArtifacts) == fingerprint::MachineLabel::kSandbox
                  ? "sandbox"
                  : "real device",
              bench::okMark(tree.classify(bmArtifacts) ==
                            fingerprint::MachineLabel::kSandbox));

  bench::Reporter reporter("bench_table3");
  reporter.addValue("table3.tree_nodes", tree.nodeCount());
  reporter.addValue("table3.tree_accuracy_x100",
                    static_cast<std::uint64_t>(tree.accuracy(training) * 100));
  reporter.addValue("table3.real_verdict_ok", realVerdict ? 1 : 0);
  reporter.addValue("table3.faked_verdict_ok", fakedVerdict ? 1 : 0);
  return reporter.finish();
}
