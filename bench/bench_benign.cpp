// Benign-impact reproduction (paper Section IV-C, B_CNET).
//
// The 20 CNET-model programs are run on the end-user machine with Scarecrow
// supervising them; all must install and operate. The paper's acknowledged
// caveat — software requiring more disk than the deceptive 50 GB — is
// demonstrated with the out-of-set heavy installer.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/controller.h"
#include "core/engine.h"
#include "env/environments.h"
#include "malware/benign.h"
#include "support/strings.h"
#include "winapi/runner.h"

using namespace scarecrow;

namespace {

malware::BenignOutcome runBenign(winsys::Machine& machine,
                                 const malware::BenignSpec& spec,
                                 bool withScarecrow) {
  const winsys::MachineSnapshot snapshot = machine.snapshot();
  malware::BenignOutcome outcome;
  outcome.name = spec.name;

  winapi::UserSpace userspace;
  userspace.programFactory =
      [&spec, &outcome](const std::string& image, const std::string&)
      -> std::unique_ptr<winapi::GuestProgram> {
    if (!support::iendsWith(image, spec.imageName)) return nullptr;
    return std::make_unique<malware::BenignProgram>(spec, outcome);
  };

  winapi::Runner runner(machine, userspace);
  winapi::RunOptions options;
  options.budgetMs = core::Config::kDefaultBudgetMs;
  const std::string path = "C:\\Users\\alice\\Downloads\\" + spec.imageName;
  if (withScarecrow) {
    core::DeceptionEngine engine({}, core::buildDefaultResourceDb());
    core::Controller controller(machine, userspace, engine);
    controller.launch(path);
    runner.drain(options);
  } else {
    runner.run(path, options);
  }
  machine.restore(snapshot);
  return outcome;
}

}  // namespace

int main() {
  bench::printHeader(
      "Benign impact (B_CNET) — top-20 programs under Scarecrow");

  auto machine = env::buildEndUserMachine();
  std::size_t okBoth = 0;
  for (const malware::BenignSpec& spec : malware::cnetTop20()) {
    const malware::BenignOutcome plain = runBenign(*machine, spec, false);
    const malware::BenignOutcome guarded = runBenign(*machine, spec, true);
    const bool ok = plain.installed && plain.ran && guarded.installed &&
                    guarded.ran;
    if (ok) ++okBoth;
    std::printf("%-22s install/run w/o: %s%s  w/: %s%s  %s%s\n",
                spec.name.c_str(), plain.installed ? "Y" : "N",
                plain.ran ? "Y" : "N", guarded.installed ? "Y" : "N",
                guarded.ran ? "Y" : "N", bench::okMark(ok),
                guarded.failureReason.empty()
                    ? ""
                    : ("  [" + guarded.failureReason + "]").c_str());
  }
  std::printf("\n%zu / 20 programs installed and operated under Scarecrow "
              "(paper: all 20, \"without any issues\")\n",
              okBoth);

  // The documented caveat: > 50 GB requirement vs the deceptive disk size.
  const malware::BenignOutcome heavyPlain =
      runBenign(*machine, malware::heavySuiteSpec(), false);
  const malware::BenignOutcome heavyGuarded =
      runBenign(*machine, malware::heavySuiteSpec(), true);
  std::printf(
      "\ncaveat (Section II-B): %s needs 120 GB free — w/o Scarecrow "
      "installs=%s; w/ Scarecrow installs=%s (%s)  %s\n",
      malware::heavySuiteSpec().name.c_str(),
      heavyPlain.installed ? "Y" : "N", heavyGuarded.installed ? "Y" : "N",
      heavyGuarded.failureReason.c_str(),
      bench::okMark(heavyPlain.installed && !heavyGuarded.installed));

  bench::Reporter reporter("bench_benign");
  reporter.addValue("benign.ok_both", okBoth);
  reporter.addValue("benign.heavy_caveat_reproduced",
                    heavyPlain.installed && !heavyGuarded.installed ? 1 : 0);
  return reporter.finish();
}
